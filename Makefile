# Same gates CI runs (.github/workflows/ci.yml), for humans.

GO ?= go

.PHONY: all build test bench bench-json bench-cluster-json lint fmt serve loadgen api-golden

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke run proving they still execute.
# For real measurements: go test -bench <pattern> -benchtime 5s .
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The same artifact CI's bench job uploads: Sweep/Compile/Service
# benchmarks, 3 runs each, averaged into BENCH_sweep.json. Two steps, not
# a pipe, so a failing benchmark run fails the target.
bench-json:
	$(GO) test -bench 'Sweep|Compile|Service' -benchmem -count 3 -run '^$$' ./... > bench.txt
	$(GO) run ./cmd/benchjson < bench.txt > BENCH_sweep.json
	@echo wrote BENCH_sweep.json

# The cluster perf-trajectory artifact: 1-node vs 2-node in-process fleet
# over a 160k-tuple sweep, averaged like bench-json.
bench-cluster-json:
	$(GO) test -bench 'Cluster' -benchmem -count 3 -run '^$$' ./internal/cluster/ > bench_cluster.txt
	$(GO) run ./cmd/benchjson < bench_cluster.txt > BENCH_cluster.json
	@echo wrote BENCH_cluster.json

# Run the policy-checking service locally (see README for the curl
# quickstart) and fire the closed-loop load generator at it.
serve:
	$(GO) run ./cmd/spm serve -addr :8135

loadgen:
	$(GO) run ./cmd/spm loadgen -addr http://127.0.0.1:8135

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) doc -all ./internal/check | diff -u internal/check/api.golden -

# Regenerate the committed API surface of the unified check package after
# an intentional signature change; CI diffs the live `go doc` output
# against this golden and fails on drift.
api-golden:
	$(GO) doc -all ./internal/check > internal/check/api.golden

fmt:
	gofmt -w .
