# Same gates CI runs (.github/workflows/ci.yml), for humans.

GO ?= go

.PHONY: all build test bench lint fmt

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke run proving they still execute.
# For real measurements: go test -bench <pattern> -benchtime 5s .
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

fmt:
	gofmt -w .
