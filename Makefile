# Same gates CI runs (.github/workflows/ci.yml), for humans.

GO ?= go

.PHONY: all build test bench bench-json bench-prefix-json bench-batch-json bench-memostack-json bench-cluster-json bench-store-json lint fmt serve loadgen metrics-smoke api-golden docs-check

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke run proving they still execute.
# For real measurements: go test -bench <pattern> -benchtime 5s .
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The same artifact CI's bench job uploads: Sweep/Compile/Service
# benchmarks, 3 runs each, averaged into BENCH_sweep.json. Two steps, not
# a pipe, so a failing benchmark run fails the target.
bench-json:
	$(GO) test -bench 'Sweep|Compile|Service' -benchmem -count 3 -run '^$$' ./... > bench.txt
	$(GO) run ./cmd/benchjson < bench.txt > BENCH_sweep.json
	@echo wrote BENCH_sweep.json

# The prefix-memoization perf-trajectory artifact: plain compiled RunReuse
# vs the snapshot-memoized innermost axis over the 160k-tuple sweep,
# averaged like bench-json.
bench-prefix-json:
	$(GO) test -bench 'PrefixMemoSweep' -benchmem -count 3 -run '^$$' . > bench_prefix.txt
	$(GO) run ./cmd/benchjson < bench_prefix.txt > BENCH_prefix.json
	@echo wrote BENCH_prefix.json

# The batch-tier perf-trajectory artifact: scalar memoized sweep vs the
# SoA batch runner at widths 8 and 32, 1 and 8 workers, over the
# 160k-tuple sweep, averaged like bench-json.
bench-batch-json:
	$(GO) test -bench 'BatchSweep' -benchmem -count 3 -run '^$$' . > bench_batch.txt
	$(GO) run ./cmd/benchjson < bench_batch.txt > BENCH_batch.json
	@echo wrote BENCH_batch.json

# The snapshot-stack perf-trajectory artifact: the stack tier vs the
# single-axis memo vs no memoization on a deep five-axis 32k-tuple
# domain whose cost concentrates in the outer axes, averaged like
# bench-json.
bench-memostack-json:
	$(GO) test -bench 'SnapshotStack' -benchmem -count 3 -run '^$$' . > bench_memostack.txt
	$(GO) run ./cmd/benchjson < bench_memostack.txt > BENCH_memostack.json
	@echo wrote BENCH_memostack.json

# The cluster perf-trajectory artifact: 1-node vs 2-node in-process fleet
# over a 160k-tuple sweep, plus the straggler scenario (one throttled
# node) under the fixed and the elastic coordinator, averaged like
# bench-json.
bench-cluster-json:
	$(GO) test -bench 'Cluster' -benchmem -count 3 -run '^$$' ./internal/cluster/ > bench_cluster.txt
	$(GO) run ./cmd/benchjson < bench_cluster.txt > BENCH_cluster.json
	@echo wrote BENCH_cluster.json

# The verdict-store perf-trajectory artifact: the same 160k-tuple
# submission cold (full sweep), as a verdict-store hit (answered from
# disk), and resumed from a mid-sweep checkpoint, averaged like
# bench-json.
bench-store-json:
	$(GO) test -bench 'Store' -benchmem -count 3 -run '^$$' ./internal/service/ > bench_store.txt
	$(GO) run ./cmd/benchjson < bench_store.txt > BENCH_store.json
	@echo wrote BENCH_store.json

# Run the policy-checking service locally (see README for the curl
# quickstart) and fire the closed-loop load generator at it.
serve:
	$(GO) run ./cmd/spm serve -addr :8135

loadgen:
	$(GO) run ./cmd/spm loadgen -addr http://127.0.0.1:8135

# The same metrics gate CI's test job runs: a served node with -pprof on,
# loadgen traffic, then one `spm top -once` snapshot — which fetches
# GET /v2/metrics and validates the exposition with the internal/obs
# parser before rendering — plus raw-exposition and pprof probes.
metrics-smoke:
	$(GO) build -o /tmp/spm-metrics-smoke ./cmd/spm
	@set -e; \
	/tmp/spm-metrics-smoke serve -addr 127.0.0.1:8148 -pools 2 -pprof & \
	PID=$$!; \
	trap 'kill $$PID 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 50); do \
		curl -fsS http://127.0.0.1:8148/v2/stats >/dev/null 2>&1 && break; \
		sleep 0.2; \
	done; \
	/tmp/spm-metrics-smoke loadgen -addr http://127.0.0.1:8148 -n 32 -c 8; \
	/tmp/spm-metrics-smoke top -addr http://127.0.0.1:8148 -once; \
	curl -fsS http://127.0.0.1:8148/v2/metrics | grep -q '^spm_jobs_done_total'; \
	curl -fsS http://127.0.0.1:8148/debug/pprof/cmdline >/dev/null; \
	echo "metrics smoke ok"

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -s -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -s needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	@for pkg in check store obs; do \
		if ! $(GO) doc -all ./internal/$$pkg | diff -u internal/$$pkg/api.golden -; then \
			echo "internal/$$pkg API surface drifted from api.golden — run 'make api-golden' and commit the result" >&2; \
			exit 1; \
		fi; \
	done

# The same docs gate CI's docs job runs: internal links in
# README.md/DESIGN.md/doc.go must resolve, and the godoc Example
# functions must run.
docs-check:
	$(GO) run ./cmd/linkcheck README.md DESIGN.md doc.go
	$(GO) test -run 'Example' ./internal/check ./internal/flowchart ./internal/service

# Regenerate the committed API surfaces (the unified check package, the
# persistence layer, and the observability kit) after an intentional
# signature change; CI diffs the live `go doc` output against these
# goldens and fails on drift.
api-golden:
	$(GO) doc -all ./internal/check > internal/check/api.golden
	$(GO) doc -all ./internal/store > internal/store/api.golden
	$(GO) doc -all ./internal/obs > internal/obs/api.golden

fmt:
	gofmt -s -w .
