package main

import (
	"math"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: spm/internal/sweep
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweep/workers=1-16         	     100	    50000 ns/op	     128 B/op	       4 allocs/op
BenchmarkSweep/workers=1-16         	     100	    70000 ns/op	     128 B/op	       4 allocs/op
BenchmarkSweep/workers=1-16         	     100	    60000 ns/op	     128 B/op	       4 allocs/op
BenchmarkCompile-16                 	    5000	     2000 ns/op	     512 B/op	      12 allocs/op
PASS
ok  	spm/internal/sweep	1.234s
pkg: spm/internal/service
BenchmarkServiceSubmitWarm-16       	      10	   100000 ns/op
no test files
--- BENCH: some stray line
`

func TestConvertAveragesRuns(t *testing.T) {
	out, err := convert(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(out.Benchmarks), out.Benchmarks)
	}
	sweep, ok := out.Benchmarks["spm/internal/sweep.BenchmarkSweep/workers=1-16"]
	if !ok {
		t.Fatal("spm/internal/sweep.BenchmarkSweep/workers=1-16 missing")
	}
	if sweep.Runs != 3 {
		t.Errorf("runs = %d, want 3", sweep.Runs)
	}
	if math.Abs(sweep.NsPerOp-60000) > 1e-9 {
		t.Errorf("ns/op = %v, want mean 60000", sweep.NsPerOp)
	}
	if sweep.BPerOp != 128 || sweep.AllocsPerOp != 4 {
		t.Errorf("mem metrics = %v B/op %v allocs/op, want 128/4", sweep.BPerOp, sweep.AllocsPerOp)
	}
}

func TestConvertWithoutBenchmem(t *testing.T) {
	out, err := convert(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	svc := out.Benchmarks["spm/internal/service.BenchmarkServiceSubmitWarm-16"]
	if svc.Runs != 1 || svc.NsPerOp != 100000 {
		t.Errorf("service row = %+v, want 1 run at 100000 ns/op", svc)
	}
	if svc.BPerOp != 0 || svc.AllocsPerOp != 0 {
		t.Errorf("missing -benchmem columns should default to 0, got %+v", svc)
	}
}

func TestConvertRecordsPackages(t *testing.T) {
	out, err := convert(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"spm/internal/service", "spm/internal/sweep"}
	if len(out.Pkg) != len(want) {
		t.Fatalf("packages = %v, want %v", out.Pkg, want)
	}
	for i := range want {
		if out.Pkg[i] != want[i] {
			t.Fatalf("packages = %v, want %v", out.Pkg, want)
		}
	}
}

func TestConvertEmptyInput(t *testing.T) {
	out, err := convert(strings.NewReader("PASS\nok \tspm\t0.01s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 0 {
		t.Errorf("benchmarks = %v, want none", out.Benchmarks)
	}
}
