package main

import (
	"math"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: spm/internal/sweep
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSweep/workers=1-16         	     100	    50000 ns/op	     128 B/op	       4 allocs/op
BenchmarkSweep/workers=1-16         	     100	    70000 ns/op	     128 B/op	       4 allocs/op
BenchmarkSweep/workers=1-16         	     100	    60000 ns/op	     128 B/op	       4 allocs/op
BenchmarkCompile-16                 	    5000	     2000 ns/op	     512 B/op	      12 allocs/op
PASS
ok  	spm/internal/sweep	1.234s
pkg: spm/internal/service
BenchmarkServiceSubmitWarm-16       	      10	   100000 ns/op
no test files
--- BENCH: some stray line
pkg: spm/internal/check
BenchmarkBatchSweep/width=8-16      	      50	    40000 ns/op	  200000 tuples/s	       9 inputs/check	     256 B/op	       2 allocs/op
BenchmarkBatchSweep/width=8-16      	      50	    40000 ns/op	  300000 tuples/s	       9 inputs/check	     256 B/op	       2 allocs/op
BenchmarkBatchSweep/width=8-16      	      50	    40000 ns/op	     256 B/op	       2 allocs/op
`

func TestConvertAveragesRuns(t *testing.T) {
	out, err := convert(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(out.Benchmarks), out.Benchmarks)
	}
	sweep, ok := out.Benchmarks["spm/internal/sweep.BenchmarkSweep/workers=1-16"]
	if !ok {
		t.Fatal("spm/internal/sweep.BenchmarkSweep/workers=1-16 missing")
	}
	if sweep.Runs != 3 {
		t.Errorf("runs = %d, want 3", sweep.Runs)
	}
	if math.Abs(sweep.NsPerOp-60000) > 1e-9 {
		t.Errorf("ns/op = %v, want mean 60000", sweep.NsPerOp)
	}
	if sweep.BPerOp != 128 || sweep.AllocsPerOp != 4 {
		t.Errorf("mem metrics = %v B/op %v allocs/op, want 128/4", sweep.BPerOp, sweep.AllocsPerOp)
	}
	if sweep.Extra != nil {
		t.Errorf("extra = %v, want none for standard-column rows", sweep.Extra)
	}
}

// TestConvertPreservesReportMetric pins the custom-column contract:
// b.ReportMetric pairs survive into Extra keyed by unit, and each unit
// averages over only the runs that reported it.
func TestConvertPreservesReportMetric(t *testing.T) {
	out, err := convert(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	row, ok := out.Benchmarks["spm/internal/check.BenchmarkBatchSweep/width=8-16"]
	if !ok {
		t.Fatal("spm/internal/check.BenchmarkBatchSweep/width=8-16 missing")
	}
	if row.Runs != 3 {
		t.Errorf("runs = %d, want 3", row.Runs)
	}
	// tuples/s appears in 2 of 3 runs: mean of 200000 and 300000.
	if got := row.Extra["tuples/s"]; math.Abs(got-250000) > 1e-9 {
		t.Errorf("tuples/s = %v, want 250000 (mean over reporting runs only)", got)
	}
	if got := row.Extra["inputs/check"]; math.Abs(got-9) > 1e-9 {
		t.Errorf("inputs/check = %v, want 9", got)
	}
	if row.BPerOp != 256 || row.AllocsPerOp != 2 {
		t.Errorf("standard columns disturbed by extras: %+v", row)
	}
}

func TestConvertWithoutBenchmem(t *testing.T) {
	out, err := convert(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	svc := out.Benchmarks["spm/internal/service.BenchmarkServiceSubmitWarm-16"]
	if svc.Runs != 1 || svc.NsPerOp != 100000 {
		t.Errorf("service row = %+v, want 1 run at 100000 ns/op", svc)
	}
	if svc.BPerOp != 0 || svc.AllocsPerOp != 0 {
		t.Errorf("missing -benchmem columns should default to 0, got %+v", svc)
	}
}

func TestConvertRecordsPackages(t *testing.T) {
	out, err := convert(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"spm/internal/check", "spm/internal/service", "spm/internal/sweep"}
	if len(out.Pkg) != len(want) {
		t.Fatalf("packages = %v, want %v", out.Pkg, want)
	}
	for i := range want {
		if out.Pkg[i] != want[i] {
			t.Fatalf("packages = %v, want %v", out.Pkg, want)
		}
	}
}

func TestConvertEmptyInput(t *testing.T) {
	out, err := convert(strings.NewReader("PASS\nok \tspm\t0.01s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 0 {
		t.Errorf("benchmarks = %v, want none", out.Benchmarks)
	}
}
