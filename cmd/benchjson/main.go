// Command benchjson converts `go test -bench` output on stdin to the
// JSON benchmark-trajectory artifact CI uploads on every run
// (BENCH_sweep.json): benchmark name → ns/op, B/op, allocs/op. Multiple
// runs of the same benchmark (-count N) are averaged and the run count
// recorded, so the artifact is stable enough to diff across commits.
//
// Usage:
//
//	go test -bench 'Sweep|Compile|Service' -benchmem -count 3 -run '^$' ./... | benchjson > BENCH_sweep.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's aggregated row. Extra carries custom
// b.ReportMetric columns (inputs/check, tuples/s, MB/s, ...) keyed by
// their unit, so throughput-style metrics survive the conversion instead
// of being dropped on the floor.
type Metrics struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
	Runs        int                `json:"runs"`
}

// Output is the artifact schema.
type Output struct {
	Go         string             `json:"go,omitempty"`
	Pkg        []string           `json:"packages,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	out, err := convert(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// accum sums one benchmark's runs before averaging. Custom columns are
// averaged over the runs that reported them — a unit absent from some
// runs must not be dragged toward zero by the others.
type accum struct {
	ns, b, allocs float64
	runs          int
	extra         map[string]float64
	extraRuns     map[string]int
}

func convert(r io.Reader) (*Output, error) {
	out := &Output{Benchmarks: make(map[string]Metrics)}
	acc := make(map[string]*accum)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	curPkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") || strings.HasPrefix(line, "cpu:"):
			continue
		case strings.HasPrefix(line, "go: ") || strings.HasPrefix(line, "go version"):
			continue
		case strings.HasPrefix(line, "pkg:"):
			curPkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			out.Pkg = append(out.Pkg, curPkg)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		name, m, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		// Qualify by package so same-named benchmarks in different
		// packages never get averaged into one row.
		if curPkg != "" {
			name = curPkg + "." + name
		}
		a := acc[name]
		if a == nil {
			a = &accum{extra: map[string]float64{}, extraRuns: map[string]int{}}
			acc[name] = a
		}
		a.ns += m.NsPerOp
		a.b += m.BPerOp
		a.allocs += m.AllocsPerOp
		a.runs++
		for unit, v := range m.Extra {
			a.extra[unit] += v
			a.extraRuns[unit]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, a := range acc {
		n := float64(a.runs)
		row := Metrics{
			NsPerOp:     a.ns / n,
			BPerOp:      a.b / n,
			AllocsPerOp: a.allocs / n,
			Runs:        a.runs,
		}
		if len(a.extra) > 0 {
			row.Extra = make(map[string]float64, len(a.extra))
			for unit, sum := range a.extra {
				row.Extra[unit] = sum / float64(a.extraRuns[unit])
			}
		}
		out.Benchmarks[name] = row
	}
	sort.Strings(out.Pkg)
	return out, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkSweep/workers=8-16   100   12345 ns/op   120 B/op   3 allocs/op   41483 tuples/s
//
// The -P GOMAXPROCS suffix is kept in the name (it is part of the
// configuration being measured). B/op and allocs/op are present only with
// -benchmem; they default to 0. Any other `value unit` pair — custom
// b.ReportMetric columns and SetBytes's MB/s — lands in Extra keyed by
// its unit.
func parseBenchLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Metrics{}, false
	}
	var m Metrics
	seenNs := false
	for i := 2; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			m.NsPerOp = v
			seenNs = true
		case "B/op":
			m.BPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		default:
			// A unit is a word like tuples/s or inputs/check — never a
			// bare number (that would be the next pair's value).
			if _, err := strconv.ParseFloat(unit, 64); err == nil {
				continue
			}
			if m.Extra == nil {
				m.Extra = map[string]float64{}
			}
			m.Extra[unit] = v
		}
		i++ // consumed the unit
	}
	if !seenNs {
		return "", Metrics{}, false
	}
	return fields[0], m, true
}
