package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"spm/internal/service"
)

// slowServeProg spins a counted loop per tuple so a 256-tuple sweep at
// one worker stays running long enough to kill the server mid-job.
const slowServeProg = `
program slow
inputs x1 x2
    r := 100000 + (x2 & 1)
Loop: if r == 0 goto Done else Body
Body: r := r - 1
      goto Loop
Done: y := x2
      halt
`

func buildSpm(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "spm")
	cmd := exec.Command("go", "build", "-o", bin, "spm/cmd/spm")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building spm: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startServe launches the spm binary serving on addr with the given store
// directory and waits for the listener.
func startServe(t *testing.T, bin, addr, storeDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-addr", addr, "-pools", "1", "-sweep-workers", "1",
		"-store", storeDir, "-checkpoint-every", "32")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			conn.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never came up", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func submitSlow(t *testing.T, base string) service.SubmitResponse {
	t.Helper()
	req := service.CheckRequest{
		Program: slowServeProg,
		Policy:  "{2}",
		Raw:     true,
		Domain:  []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v2/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	return sub
}

func getJob(base, id string) (service.JobStatus, error) {
	var st service.JobStatus
	resp, err := http.Get(base + "/v2/jobs/" + id)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func waitDone(t *testing.T, base, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := getJob(base, id)
		if err == nil && st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not terminal (last: %+v, err %v)", id, st, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// verdictBytes renders a result for byte-identity comparison, with the
// fields that legitimately vary between runs (timing) zeroed.
func verdictBytes(t *testing.T, st service.JobStatus) []byte {
	t.Helper()
	if st.Result == nil {
		t.Fatalf("job %s has no result: %+v", st.ID, st)
	}
	r := *st.Result
	r.ElapsedSeconds = 0
	r.InputsPerSec = 0
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeKillRestartResume is the out-of-process restart-resume
// differential: kill -9 an `spm serve -store` mid-job, restart on the
// same store directory, and require the resumed job — same ID — to
// finish with a byte-identical verdict to an uninterrupted run.
func TestServeKillRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a child process")
	}
	bin := buildSpm(t)

	// Reference: uninterrupted run on a throwaway store.
	refAddr := freeAddr(t)
	refCmd := startServe(t, bin, refAddr, t.TempDir())
	refSub := submitSlow(t, "http://"+refAddr)
	want := waitDone(t, "http://"+refAddr, refSub.ID)
	if want.State != service.StateDone {
		t.Fatalf("reference run ended %q: %+v", want.State, want)
	}
	refCmd.Process.Kill()
	refCmd.Wait()

	// The victim: same spec, killed without warning mid-sweep.
	storeDir := t.TempDir()
	addr := freeAddr(t)
	cmd := startServe(t, bin, addr, storeDir)
	sub := submitSlow(t, "http://"+addr)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := getJob("http://"+addr, sub.ID)
		if err == nil && st.Progress.Done >= 80 {
			break // past at least two 32-tuple checkpoints
		}
		if err == nil && st.State.Terminal() {
			t.Fatalf("job finished before the kill (progress %+v); make the program slower", st.Progress)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached the kill point")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the same store directory: the job resumes under its
	// original ID and completes with the reference verdict.
	addr2 := freeAddr(t)
	startServe(t, bin, addr2, storeDir)
	got := waitDone(t, "http://"+addr2, sub.ID)
	if got.State != service.StateDone {
		t.Fatalf("resumed job ended %q: %+v", got.State, got)
	}
	if wantB, gotB := verdictBytes(t, want), verdictBytes(t, got); !bytes.Equal(wantB, gotB) {
		t.Errorf("resumed verdict differs from uninterrupted run:\n  %s\nvs\n  %s", gotB, wantB)
	}
}
