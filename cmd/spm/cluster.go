package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spm/internal/cluster"
	"spm/internal/service"
)

// cmdCluster distributes one check across a fleet of running `spm serve`
// nodes: the coordinator shards the domain's index space, dispatches the
// shards over the v2 API with retry/reassignment on node failure, and
// prints the merged verdict in exactly the format `spm check` uses —
// followed by one line of cluster accounting.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	nodes := fs.String("nodes", "", "comma-separated worker base URLs, e.g. 127.0.0.1:8135,127.0.0.1:8136 (required)")
	shards := fs.Int("shards", 0, "contiguous index-space shards (0 = 4 per node)")
	retries := fs.Int("retries", 0, "per-shard re-dispatch budget after node failures (0 = default)")
	policy := fs.String("policy", "{}", "allowed input indices, e.g. {1,3} or all")
	variant := fs.String("variant", "untimed", "untimed, timed, or highwater")
	domain := fs.String("domain", "0,1,2", "comma-separated values every input ranges over")
	timed := fs.Bool("time", false, "observe running time as well as the value")
	raw := fs.Bool("raw", false, "check the bare program instead of instrumenting")
	maximal := fs.Bool("maximal", false, "also check maximality against the bare program")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cluster: need exactly one program file")
	}
	if *nodes == "" {
		return fmt.Errorf("cluster: -nodes is required")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	values, err := parseDomain(*domain)
	if err != nil {
		return err
	}
	coord, err := cluster.New(cluster.Config{
		Nodes:   parseNodes(*nodes),
		Shards:  *shards,
		Retries: *retries,
	})
	if err != nil {
		return err
	}
	rep, err := coord.Check(interruptContext(), service.CheckRequest{
		Program: string(src),
		Policy:  *policy,
		Variant: *variant,
		Domain:  values,
		Timed:   *timed,
		Raw:     *raw,
		Maximal: *maximal,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

// parseNodes splits the -nodes list, defaulting bare host:port entries to
// http.
func parseNodes(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		out = append(out, strings.TrimRight(part, "/"))
	}
	return out
}
