package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spm/internal/cluster"
	"spm/internal/service"
)

// cmdCluster distributes one check across a fleet of running `spm serve`
// nodes: the coordinator shards the domain's index space, dispatches the
// shards over the v2 API with retry/reassignment on node failure, and
// prints the merged verdict in exactly the format `spm check` uses —
// followed by one line of cluster accounting.
//
// Any of -steal-threshold, -speculate, -admin, or -nodes-file switches
// the fleet to elastic mode: membership may change mid-check (via the
// admin listener or a SIGHUP reread of the nodes file), stragglers have
// the back half of their remaining range stolen onto idle nodes, and
// with -speculate the last in-flight shards are duplicated so the fastest
// copy wins. The merged verdict is byte-identical either way.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	nodes := fs.String("nodes", "", "comma-separated worker base URLs, e.g. 127.0.0.1:8135,127.0.0.1:8136")
	nodesFile := fs.String("nodes-file", "", "file with one worker base URL per line; SIGHUP rereads it mid-check (joins additions, retires removals)")
	shards := fs.Int("shards", 0, "contiguous index-space shards (0 = 4 per node)")
	retries := fs.Int("retries", 0, "per-shard re-dispatch budget after node failures (0 = default)")
	stealThreshold := fs.Float64("steal-threshold", 0, "steal a straggler's remaining back half when its projected finish exceeds this multiple of the median (0 = off; try 2)")
	speculate := fs.Bool("speculate", false, "duplicate the last in-flight shards on idle nodes; first result wins")
	stealInterval := fs.Duration("steal-interval", 0, "straggler-supervisor cadence (0 = default)")
	admin := fs.String("admin", "", "listen address for the membership admin API (GET /nodes, GET /metrics, POST /join, POST /leave)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the admin listener (needs -admin)")
	policy := fs.String("policy", "{}", "allowed input indices, e.g. {1,3} or all")
	variant := fs.String("variant", "untimed", "untimed, timed, or highwater")
	domain := fs.String("domain", "0,1,2", "comma-separated values every input ranges over")
	timed := fs.Bool("time", false, "observe running time as well as the value")
	raw := fs.Bool("raw", false, "check the bare program instead of instrumenting")
	maximal := fs.Bool("maximal", false, "also check maximality against the bare program")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cluster: need exactly one program file")
	}
	if *nodes == "" && *nodesFile == "" {
		return fmt.Errorf("cluster: -nodes or -nodes-file is required")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	values, err := parseDomain(*domain)
	if err != nil {
		return err
	}
	nodeList := parseNodes(*nodes)
	if *nodesFile != "" {
		fromFile, err := readNodesFile(*nodesFile)
		if err != nil {
			return err
		}
		nodeList = append(nodeList, fromFile...)
	}
	cfg := cluster.Config{
		Nodes:          nodeList,
		Shards:         *shards,
		Retries:        *retries,
		StealThreshold: *stealThreshold,
		Speculate:      *speculate,
		StealInterval:  *stealInterval,
	}
	elastic := *stealThreshold > 0 || *speculate || *admin != "" || *nodesFile != ""
	if elastic {
		cfg.Registry = cluster.NewRegistry(nodeList)
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		return err
	}
	if *pprofOn && *admin == "" {
		return fmt.Errorf("cluster: -pprof needs -admin")
	}
	if *admin != "" {
		handler := coord.AdminHandler()
		if *pprofOn {
			handler = withPprof(handler)
		}
		srv := &http.Server{
			Addr:              *admin,
			Handler:           handler,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "spm cluster: admin listener: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "spm cluster: admin API on %s\n", *admin)
	}
	if *nodesFile != "" {
		stopHUP := watchNodesFile(*nodesFile, cfg.Registry)
		defer stopHUP()
	}
	rep, err := coord.Check(interruptContext(), service.CheckRequest{
		Program: string(src),
		Policy:  *policy,
		Variant: *variant,
		Domain:  values,
		Timed:   *timed,
		Raw:     *raw,
		Maximal: *maximal,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

// parseNodes splits the -nodes list, defaulting bare host:port entries to
// http.
func parseNodes(spec string) []string {
	var out []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, "://") {
			part = "http://" + part
		}
		out = append(out, strings.TrimRight(part, "/"))
	}
	return out
}

// readNodesFile parses a nodes file: one URL per line, blank lines and
// #-comments ignored, bare host:port defaulting to http.
func readNodesFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: nodes file: %w", err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, parseNodes(line)...)
	}
	return out, nil
}

// watchNodesFile rereads the nodes file on SIGHUP and reconciles the
// registry against it: new URLs join the running check, missing ones are
// retired. Returns a stop function for shutdown.
func watchNodesFile(path string, reg *cluster.Registry) func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-ch:
				urls, err := readNodesFile(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "spm cluster: %v\n", err)
					continue
				}
				joined, left := reg.SyncNodes(urls)
				fmt.Fprintf(os.Stderr, "spm cluster: nodes file reloaded (%d joined, %d left)\n", joined, left)
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
