// Command spm is the driver for the security-policy-mechanism library: it
// parses flowchart programs in the DSL, runs them, instruments them with
// the surveillance or high-water protection mechanisms of Jones & Lipton,
// certifies them statically, and checks soundness over finite domains.
//
// Usage:
//
//	spm run       [-trace] file.fc input...
//	spm instrument [-policy {i,j}] [-variant untimed|timed|highwater] file.fc
//	spm certify   [-policy {i,j}] file.fc
//	spm specialize [-policy {i,j}] file.fc
//	spm check     [-policy {i,j}] [-variant ...] [-domain 0,1,2] [-time] file.fc
//	spm sweep     [-policy {i,j}] [-variant ...] [-domain 0,1,2] [-workers N] [-chunk N] [-time] [-maximal] [-raw] file.fc
//	spm serve     [-addr :8135] [-pools N] [-queue N] [-sweep-workers N] [-cache N]
//	spm cluster   -nodes host:port,... [-shards N] [-retries N] [-steal-threshold X] [-speculate] [-admin :addr] [-nodes-file F] [-policy ...] [-domain ...] [-maximal] file.fc
//	spm loadgen   [-addr URL] [-n N] [-c N] [-maximal-every K] [-job-timeout D] [-program file.fc]
//	spm top       [-addr URL] [-interval D] [-once]
//	spm trace     [-addr URL] job-id
//	spm dot       file.fc
//
// Programs use the flowchart DSL (see package spm/internal/flowchart):
//
//	program demo
//	inputs x1 x2
//	    if x2 == 0 goto A else B
//	A:  y := x1
//	    halt
//	B:  violation "denied"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/service"
	"spm/internal/static"
	"spm/internal/surveillance"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spm:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:])
	case "instrument":
		return cmdInstrument(args[1:])
	case "certify":
		return cmdCertify(args[1:])
	case "specialize":
		return cmdSpecialize(args[1:])
	case "check":
		return cmdCheck(args[1:])
	case "sweep":
		return cmdSweep(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "cluster":
		return cmdCluster(args[1:])
	case "loadgen":
		return cmdLoadgen(args[1:])
	case "top":
		return cmdTop(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "dot":
		return cmdDot(args[1:])
	case "help", "-h", "--help":
		return usage()
	default:
		return fmt.Errorf("unknown subcommand %q (try: spm help)", args[0])
	}
}

func usage() error {
	fmt.Fprintln(os.Stderr, `usage:
  spm run        [-trace] file.fc input...
  spm instrument [-policy {i,j}] [-variant untimed|timed|highwater] file.fc
  spm certify    [-policy {i,j}] file.fc
  spm specialize [-policy {i,j}] file.fc
  spm check      [-policy {i,j}] [-variant ...] [-domain 0,1,2] [-time] file.fc
  spm sweep      [-policy {i,j}] [-variant ...] [-domain 0,1,2] [-workers N] [-chunk N] [-time] [-maximal] [-raw] file.fc
  spm serve      [-addr :8135] [-pools N] [-queue N] [-sweep-workers N] [-cache N]
  spm cluster    -nodes host:port,... [-shards N] [-retries N] [-steal-threshold X] [-speculate] [-admin :addr] [-nodes-file F] [-policy ...] [-variant ...] [-domain ...] [-time] [-raw] [-maximal] file.fc
  spm loadgen    [-addr URL] [-n N] [-c N] [-maximal-every K] [-job-timeout D] [-program file.fc] [-policy ...] [-domain ...]
  spm top        [-addr URL] [-interval D] [-once]
  spm trace      [-addr URL] job-id
  spm dot        file.fc`)
	return nil
}

func loadProgram(path string) (*flowchart.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return flowchart.Parse(string(data))
}

func parseDomain(spec string) ([]int64, error) {
	var values []int64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad domain value %q", part)
		}
		values = append(values, v)
	}
	return values, nil
}

// checkSetup is everything a soundness check needs, assembled from the
// flags shared by the check and sweep subcommands.
type checkSetup struct {
	prog *flowchart.Program
	m    core.Mechanism
	pol  core.Policy
	dom  core.Domain
	obs  core.Observation
}

// buildCheck loads the program and constructs the mechanism (instrumented
// or raw), policy, domain, and observation from the common flag values.
func buildCheck(file, policy, variant, domain string, timed, raw bool) (*checkSetup, error) {
	p, err := loadProgram(file)
	if err != nil {
		return nil, err
	}
	allowed, err := service.ParsePolicy(policy, p.Arity())
	if err != nil {
		return nil, err
	}
	values, err := parseDomain(domain)
	if err != nil {
		return nil, err
	}
	var m core.Mechanism
	if raw {
		m = core.FromProgram(p)
	} else {
		v, err := service.ParseVariant(variant)
		if err != nil {
			return nil, err
		}
		m, err = surveillance.Mechanism(p, allowed, v)
		if err != nil {
			return nil, err
		}
	}
	obs := core.ObserveValue
	if timed {
		obs = core.ObserveValueAndTime
	}
	return &checkSetup{
		prog: p,
		m:    m,
		pol:  core.NewAllowSet(p.Arity(), allowed),
		dom:  core.Grid(p.Arity(), values...),
		obs:  obs,
	}, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	trace := fs.Bool("trace", false, "print each executed box")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) < 1 {
		return fmt.Errorf("run: need a program file")
	}
	p, err := loadProgram(rest[0])
	if err != nil {
		return err
	}
	inputs := make([]int64, 0, len(rest)-1)
	for _, a := range rest[1:] {
		v, err := strconv.ParseInt(a, 10, 64)
		if err != nil {
			return fmt.Errorf("run: bad input %q: %v", a, err)
		}
		inputs = append(inputs, v)
	}
	var tracer flowchart.Tracer
	if *trace {
		tracer = func(id flowchart.NodeID, n *flowchart.Node, env flowchart.Env) {
			switch n.Kind {
			case flowchart.KindAssign:
				fmt.Printf("  [%3d] %s := %s\n", id, n.Target, n.Expr)
			case flowchart.KindDecision:
				fmt.Printf("  [%3d] if %s → %v\n", id, n.Cond, n.Cond.Eval(env))
			default:
				fmt.Printf("  [%3d] %s\n", id, n.Kind)
			}
		}
	}
	res, err := p.RunBudget(inputs, flowchart.DefaultMaxSteps, tracer)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

func cmdInstrument(args []string) error {
	fs := flag.NewFlagSet("instrument", flag.ContinueOnError)
	policy := fs.String("policy", "{}", "allowed input indices, e.g. {1,3} or all")
	variant := fs.String("variant", "untimed", "untimed, timed, or highwater")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("instrument: need exactly one program file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	allowed, err := service.ParsePolicy(*policy, p.Arity())
	if err != nil {
		return err
	}
	v, err := service.ParseVariant(*variant)
	if err != nil {
		return err
	}
	m, err := surveillance.Instrument(p, allowed, v)
	if err != nil {
		return err
	}
	fmt.Print(flowchart.Print(m))
	return nil
}

func cmdCertify(args []string) error {
	fs := flag.NewFlagSet("certify", flag.ContinueOnError)
	policy := fs.String("policy", "{}", "allowed input indices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("certify: need exactly one program file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	allowed, err := service.ParsePolicy(*policy, p.Arity())
	if err != nil {
		return err
	}
	rep, err := static.Certify(p, allowed)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func cmdSpecialize(args []string) error {
	fs := flag.NewFlagSet("specialize", flag.ContinueOnError)
	policy := fs.String("policy", "{}", "allowed input indices")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("specialize: need exactly one program file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	allowed, err := service.ParsePolicy(*policy, p.Arity())
	if err != nil {
		return err
	}
	gm, err := static.Specialize(p, allowed, -1)
	if err != nil {
		return err
	}
	accept, deny := gm.Leaves()
	fmt.Printf("specialised mechanism (%d accepting, %d denying residuals):\n%s", accept, deny, gm.Describe())
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	policy := fs.String("policy", "{}", "allowed input indices")
	variant := fs.String("variant", "untimed", "untimed, timed, or highwater")
	domain := fs.String("domain", "0,1,2", "comma-separated values every input ranges over")
	timed := fs.Bool("time", false, "observe running time as well as the value")
	raw := fs.Bool("raw", false, "check the bare program instead of instrumenting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("check: need exactly one program file")
	}
	s, err := buildCheck(fs.Arg(0), *policy, *variant, *domain, *timed, *raw)
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	// One interpreted worker preserves the sequential reference checker's
	// semantics: enumeration order (and therefore the reported witness
	// pair) matches core.CheckSoundness, and every tuple runs through the
	// interpreter rather than the compiled fast path — keeping `spm check`
	// an independent oracle against `spm sweep`'s compiled verdicts.
	v, err := check.Run(interruptContext(), check.Spec{
		Kind:        check.Soundness,
		Mechanism:   s.m,
		Policy:      s.pol,
		Domain:      s.dom,
		Observation: s.obs,
	}, check.WithWorkers(1), check.WithCompiled(false))
	if err != nil {
		return err
	}
	fmt.Println(v)
	return nil
}

// interruptContext is the CLI's check context: ^C cancels the sweep, which
// stops within one chunk instead of grinding out the rest of the domain.
// Once the context is done the handler is released, so a second ^C gets
// the default behaviour and can still kill a chunk that grinds too long.
func interruptContext() context.Context {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	context.AfterFunc(ctx, stop)
	return ctx
}

// cmdSweep is cmdCheck on the parallel sweep engine: it instruments the
// program (or takes it raw), runs the chunked work-stealing soundness check
// — compiled fast path included, since the mechanism wraps a flowchart —
// and reports the verdict with throughput. With -maximal it additionally
// checks whether the mechanism is the Theorem 2 maximal sound mechanism
// for the bare program.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	policy := fs.String("policy", "{}", "allowed input indices, e.g. {1,3} or all")
	variant := fs.String("variant", "untimed", "untimed, timed, or highwater")
	domain := fs.String("domain", "0,1,2", "comma-separated values every input ranges over")
	workers := fs.Int("workers", 0, "sweep workers (0 = all CPUs)")
	chunk := fs.Int("chunk", 0, "tuples claimed per cursor advance (0 = auto)")
	batch := fs.Int("batch", 0, "batch/columnar execution width (0 or 1 = scalar)")
	timed := fs.Bool("time", false, "observe running time as well as the value")
	raw := fs.Bool("raw", false, "check the bare program instead of instrumenting")
	maximal := fs.Bool("maximal", false, "also check maximality against the bare program")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sweep: need exactly one program file")
	}
	s, err := buildCheck(fs.Arg(0), *policy, *variant, *domain, *timed, *raw)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	ctx := interruptContext()
	opts := []check.Option{check.WithWorkers(*workers), check.WithChunk(*chunk), check.WithBatch(*batch)}

	start := time.Now()
	v, err := check.Run(ctx, check.Spec{
		Kind:        check.Soundness,
		Mechanism:   s.m,
		Policy:      s.pol,
		Domain:      s.dom,
		Observation: s.obs,
	}, opts...)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Println(v)
	rate := float64(v.Checked) / elapsed.Seconds()
	fmt.Printf("swept %d inputs in %v (%.0f inputs/s)\n", v.Checked, elapsed.Round(time.Microsecond), rate)

	if *maximal {
		mv, err := check.Run(ctx, check.Spec{
			Kind:        check.Maximality,
			Mechanism:   s.m,
			Program:     core.FromProgram(s.prog),
			Policy:      s.pol,
			Domain:      s.dom,
			Observation: s.obs,
		}, opts...)
		if err != nil {
			return err
		}
		fmt.Println(mv)
	}
	return nil
}

func cmdDot(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dot: need exactly one program file")
	}
	p, err := loadProgram(args[0])
	if err != nil {
		return err
	}
	fmt.Print(flowchart.Dot(p))
	return nil
}
