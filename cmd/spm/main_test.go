package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testProg = `
program demo
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.fc")
	if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestCmdRun(t *testing.T) {
	path := writeProg(t, testProg)
	out, err := capture(t, func() error { return run([]string{"run", path, "7", "0"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 (steps=") {
		t.Errorf("run output = %q", out)
	}
}

func TestCmdRunTrace(t *testing.T) {
	path := writeProg(t, testProg)
	out, err := capture(t, func() error { return run([]string{"run", "-trace", path, "7", "5"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "r := x1") || !strings.Contains(out, "if x2 == 0") {
		t.Errorf("trace output = %q", out)
	}
}

func TestCmdInstrument(t *testing.T) {
	path := writeProg(t, testProg)
	out, err := capture(t, func() error {
		return run([]string{"instrument", "-policy", "{2}", "-variant", "timed", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"x1#", "C#", "violation"} {
		if !strings.Contains(out, want) {
			t.Errorf("instrument output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdCertify(t *testing.T) {
	path := writeProg(t, testProg)
	out, err := capture(t, func() error { return run([]string{"certify", "-policy", "{1,2}", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "certified") {
		t.Errorf("certify output = %q", out)
	}
	out, err = capture(t, func() error { return run([]string{"certify", "-policy", "{2}", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NOT certifiable") {
		t.Errorf("certify output = %q", out)
	}
}

func TestCmdSpecialize(t *testing.T) {
	path := writeProg(t, `
program ex9
inputs x1 x2
    if x1 == 0 goto A else B
A:  y := 1
    goto J
B:  y := x2
    goto J
J:  halt
`)
	out, err := capture(t, func() error { return run([]string{"specialize", "-policy", "{1}", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "if x1 == 0") || !strings.Contains(out, "Λ") {
		t.Errorf("specialize output = %q", out)
	}
}

func TestCmdCheck(t *testing.T) {
	path := writeProg(t, testProg)
	out, err := capture(t, func() error {
		return run([]string{"check", "-policy", "{2}", "-domain", "0,1,2", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SOUND") {
		t.Errorf("check output = %q", out)
	}
	// Raw program under the same policy is unsound.
	out, err = capture(t, func() error {
		return run([]string{"check", "-raw", "-policy", "{2}", "-domain", "0,1,2", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UNSOUND") {
		t.Errorf("raw check output = %q", out)
	}
}

func TestCmdDot(t *testing.T) {
	path := writeProg(t, testProg)
	out, err := capture(t, func() error { return run([]string{"dot", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") {
		t.Errorf("dot output = %q", out)
	}
}

func TestCmdErrors(t *testing.T) {
	path := writeProg(t, testProg)
	cases := [][]string{
		{"nonsense"},
		{"run"},
		{"run", "/does/not/exist"},
		{"run", path, "notanumber"},
		{"instrument"},
		{"instrument", "-policy", "bogus", path},
		{"instrument", "-variant", "bogus", path},
		{"certify"},
		{"check", "-domain", "x", path},
		{"dot"},
		{"specialize"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestCmdPolicyAll(t *testing.T) {
	path := writeProg(t, testProg)
	out, err := capture(t, func() error {
		return run([]string{"check", "-policy", "all", "-domain", "0,1", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SOUND") {
		t.Errorf("allow-all check = %q", out)
	}
}

func TestUsage(t *testing.T) {
	if err := run(nil); err != nil {
		t.Errorf("bare invocation should print usage without error: %v", err)
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestCmdSweep(t *testing.T) {
	path := writeProg(t, testProg)
	out, err := capture(t, func() error {
		return run([]string{"sweep", "-policy", "{2}", "-workers", "4", "-chunk", "2", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SOUND") || !strings.Contains(out, "swept") {
		t.Errorf("sweep output = %q", out)
	}
}

func TestCmdSweepMaximalRaw(t *testing.T) {
	path := writeProg(t, testProg)
	// The bare program is its own maximal mechanism for allow(all).
	out, err := capture(t, func() error {
		return run([]string{"sweep", "-raw", "-policy", "all", "-domain", "0,1", "-maximal", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MAXIMAL") {
		t.Errorf("sweep -maximal output = %q", out)
	}
	// On the p. 49 both-arms program surveillance is sound for allow(2)
	// but always reports Λ, so it must not check as maximal.
	path = writeProg(t, `
program botharms
inputs x1 x2
    if x1 == 0 goto A else B
A:  y := x2
    halt
B:  y := x2
    halt
`)
	out, err = capture(t, func() error {
		return run([]string{"sweep", "-policy", "{2}", "-maximal", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NOT maximal") {
		t.Errorf("sweep -maximal (surveillance) output = %q", out)
	}
}

func TestCmdSweepErrors(t *testing.T) {
	path := writeProg(t, testProg)
	for _, args := range [][]string{
		{"sweep"},
		{"sweep", "-domain", "x", path},
		{"sweep", "-policy", "bogus", path},
		{"sweep", "-variant", "bogus", path},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
