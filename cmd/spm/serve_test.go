package main

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestServeAndLoadgenEndToEnd boots `spm serve` on a free port and drives
// it with `spm loadgen`, the same pairing the CI smoke step uses.
func TestServeAndLoadgenEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run([]string{"serve", "-addr", addr, "-pools", "2", "-sweep-workers", "1"})
	}()

	// Wait for the listener to come up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			conn.Close()
			break
		}
		select {
		case err := <-serveErr:
			t.Fatalf("serve exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never came up", addr)
		}
		time.Sleep(20 * time.Millisecond)
	}

	out, err := capture(t, func() error {
		return run([]string{"loadgen", "-addr", "http://" + addr, "-n", "16", "-c", "4"})
	})
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out)
	}
	if !strings.Contains(out, "16 jobs") || !strings.Contains(out, "failed 0") {
		t.Errorf("loadgen output = %q", out)
	}
	if !strings.Contains(out, "cache hits 15/16") {
		t.Errorf("loadgen output reports unexpected cache hits: %q", out)
	}
}
