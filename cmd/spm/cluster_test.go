package main

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"spm/internal/service"
)

func TestCmdClusterEndToEnd(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		svc := service.New(service.Config{Pools: 1})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			srv.Close()
			svc.Close()
		})
		urls = append(urls, srv.URL)
	}
	path := writeProg(t, testProg)

	// The merged verdict line must byte-match what `spm check` prints for
	// the same program, policy, and domain.
	checkOut, err := capture(t, func() error {
		return cmdCheck([]string{"-policy", "{2}", "-domain", "0,1,2,3,4,5,6,7", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	clusterOut, err := capture(t, func() error {
		return cmdCluster([]string{"-nodes", strings.Join(urls, ","), "-shards", "4",
			"-policy", "{2}", "-domain", "0,1,2,3,4,5,6,7", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	clusterLines := strings.Split(strings.TrimSpace(clusterOut), "\n")
	if clusterLines[0] != strings.TrimSpace(checkOut) {
		t.Fatalf("cluster verdict line %q != spm check verdict %q", clusterLines[0], strings.TrimSpace(checkOut))
	}
	last := clusterLines[len(clusterLines)-1]
	if !strings.Contains(last, "cluster: 4/4 shards on 2 nodes") {
		t.Fatalf("missing cluster accounting line: %q", last)
	}
}

func TestCmdClusterErrors(t *testing.T) {
	path := writeProg(t, testProg)
	for name, args := range map[string][]string{
		"no nodes":     {path},
		"no file":      {"-nodes", "127.0.0.1:1"},
		"bad domain":   {"-nodes", "127.0.0.1:1", "-domain", "zero", path},
		"unreachable":  {"-nodes", "http://127.0.0.1:1", "-retries", "1", path},
		"bad program":  {"-nodes", "127.0.0.1:1", writeProg(t, "not a program")},
		"extra args":   {"-nodes", "127.0.0.1:1", path, "extra"},
		"bad policy 2": {"-nodes", "127.0.0.1:1", "-policy", "{9}", path},
	} {
		if err := cmdCluster(args); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestParseNodes(t *testing.T) {
	got := parseNodes(" 127.0.0.1:8135, http://h:1/ ,, https://x ")
	want := []string{"http://127.0.0.1:8135", "http://h:1", "https://x"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseNodes = %v, want %v", got, want)
	}
}
