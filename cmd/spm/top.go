package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"spm/internal/obs"
	"spm/internal/service"
)

// cmdTop is a live dashboard over a running `spm serve` node: it polls
// GET /v2/metrics (parsed and validated by obs.ParseExposition, so a
// malformed exposition is an error, not a blank panel) and GET /v2/stats,
// and renders job lifecycle tallies, sweep throughput, cache and store
// counters, and per-pool latency quantiles. With -once it prints a single
// snapshot and exits — the CI metrics smoke runs it that way, making the
// exposition parser part of the test.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8135", "server base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh cadence")
	once := fs.Bool("once", false, "print one snapshot and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("top: unexpected arguments %v", fs.Args())
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	var prev topSnapshot
	render := func(clear bool) error {
		snap, err := fetchTop(client, base)
		if err != nil {
			return err
		}
		out := renderTop(base, snap, prev)
		prev = snap
		if clear {
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Print(out)
		return nil
	}
	if *once {
		return render(false)
	}
	ctx := interruptContext()
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		if err := render(true); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return nil
		case <-ticker.C:
		}
	}
}

// topSnapshot is one poll of the two observability surfaces.
type topSnapshot struct {
	at    time.Time
	fams  map[string]*obs.Family
	stats service.Stats
}

func fetchTop(client *http.Client, base string) (topSnapshot, error) {
	snap := topSnapshot{at: time.Now()}
	resp, err := client.Get(base + "/v2/metrics")
	if err != nil {
		return snap, fmt.Errorf("top: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("top: GET /v2/metrics: %s", resp.Status)
	}
	if snap.fams, err = obs.ParseExposition(resp.Body); err != nil {
		return snap, fmt.Errorf("top: %w", err)
	}
	sresp, err := client.Get(base + "/v2/stats")
	if err != nil {
		return snap, fmt.Errorf("top: %w", err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("top: GET /v2/stats: %s", sresp.Status)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&snap.stats); err != nil {
		return snap, fmt.Errorf("top: decoding /v2/stats: %w", err)
	}
	return snap, nil
}

// renderTop formats one frame. prev (zero-valued on the first frame)
// supplies the previous tuple counter for the throughput estimate.
func renderTop(base string, snap, prev topSnapshot) string {
	var b strings.Builder
	val := func(name string) float64 {
		if f := snap.fams[name]; f != nil {
			if v, ok := f.Get(nil); ok {
				return v
			}
		}
		return 0
	}
	j := snap.stats.Jobs
	fmt.Fprintf(&b, "spm top — %s @ %s\n\n", base, snap.at.Format("15:04:05"))
	fmt.Fprintf(&b, "jobs    queued %d  running %d  done %d  failed %d  cancelled %d\n",
		j.Queued, j.Running, j.Done, j.Failed, j.Cancelled)
	fmt.Fprintf(&b, "cache   hits %.0f  misses %.0f  entries %.0f\n",
		val("spm_compile_cache_hits_total"),
		val("spm_compile_cache_misses_total"),
		val("spm_compile_cache_entries"))

	tuples := val("spm_sweep_tuples_total")
	rate := ""
	if !prev.at.IsZero() {
		if dt := snap.at.Sub(prev.at).Seconds(); dt > 0 {
			prevTuples := 0.0
			if f := prev.fams["spm_sweep_tuples_total"]; f != nil {
				prevTuples, _ = f.Get(nil)
			}
			rate = fmt.Sprintf("  (%.0f tuples/s)", (tuples-prevTuples)/dt)
		}
	}
	fmt.Fprintf(&b, "sweep   chunks %.0f  tuples %.0f%s\n",
		val("spm_sweep_chunks_total"), tuples, rate)
	fmt.Fprintf(&b, "memo    captures %.0f  replays %.0f  invalidated %.0f\n",
		val("spm_memo_captures_total"), val("spm_memo_replays_total"),
		val("spm_memo_invalidations_total"))
	fmt.Fprintf(&b, "stack   full %.0f  replays %.0f  constants %.0f  rowhits %.0f\n",
		val("spm_stack_full_total"), val("spm_stack_replays_total"),
		val("spm_stack_constants_total"), val("spm_stack_rowhits_total"))
	fmt.Fprintf(&b, "batch   strides %.0f  lanes %.0f  diverged %.0f\n",
		val("spm_batch_strides_total"), val("spm_batch_lanes_total"),
		val("spm_batch_diverged_total"))
	if st := snap.stats.Store; st != nil {
		fmt.Fprintf(&b, "store   verdicts %d  pending %d  hits %d  lookups %d  resumed %d\n",
			st.Verdicts, st.Pending, st.VerdictHits, st.Lookups, st.ResumedJobs)
	}

	fmt.Fprintf(&b, "\npool  depth  peak  dispatched  completed  %-22s %s\n",
		"wait p50/p90/p99", "run p50/p90/p99")
	wait, run := snap.fams["spm_job_queue_wait_seconds"], snap.fams["spm_job_run_seconds"]
	for i, p := range snap.stats.Pools {
		labels := map[string]string{"pool": fmt.Sprint(i)}
		fmt.Fprintf(&b, "%-5d %-6d %-5d %-11d %-10d %-22s %s\n",
			i, p.Depth, p.Peak, p.Dispatched, p.Completed,
			quantiles(wait, labels), quantiles(run, labels))
	}

	if ts := snap.stats.Tenants; len(ts) > 0 {
		sort.Slice(ts, func(i, k int) bool { return ts[i].Tenant < ts[k].Tenant })
		fmt.Fprintf(&b, "\ntenant            queued  admitted  rejected  tuples\n")
		for _, t := range ts {
			fmt.Fprintf(&b, "%-17s %-7d %-9d %-9d %d\n",
				t.Tenant, t.Queued, t.Admitted, t.Rejected, t.TuplesAdmitted)
		}
	}
	return b.String()
}

// quantiles renders a histogram series' p50/p90/p99 estimates, or "-"
// while it has no observations.
func quantiles(f *obs.Family, labels map[string]string) string {
	if f == nil {
		return "-"
	}
	bkts := f.Buckets(labels)
	p50 := obs.Quantile(0.50, bkts)
	if math.IsNaN(p50) {
		return "-"
	}
	return fmt.Sprintf("%s/%s/%s",
		fmtSeconds(p50), fmtSeconds(obs.Quantile(0.90, bkts)), fmtSeconds(obs.Quantile(0.99, bkts)))
}

// fmtSeconds renders a float seconds estimate at duration-style
// precision.
func fmtSeconds(s float64) string {
	if math.IsNaN(s) {
		return "-"
	}
	d := time.Duration(s * float64(time.Second))
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(100 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// cmdTrace fetches and renders one job's recorded timeline from
// GET /v2/jobs/{id}/trace: every event with its offset from submission,
// span durations where recorded, and the detail string.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8135", "server base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace: need exactly one job ID")
	}
	id := fs.Arg(0)
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(strings.TrimRight(*addr, "/") + "/v2/jobs/" + id + "/trace")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return fmt.Errorf("trace: GET /v2/jobs/%s/trace: %s: %s",
			id, resp.Status, strings.TrimSpace(string(body)))
	}
	var td obs.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
		return fmt.Errorf("trace: decoding response: %w", err)
	}
	printTrace(os.Stdout, td)
	return nil
}

func printTrace(w io.Writer, td obs.TraceData) {
	fmt.Fprintf(w, "job %s  started %s", td.ID, td.Start.Format(time.RFC3339Nano))
	if td.Dropped > 0 {
		fmt.Fprintf(w, "  (%d events dropped mid-timeline)", td.Dropped)
	}
	fmt.Fprintln(w)
	for _, e := range td.Events {
		dur := ""
		if e.Dur > 0 {
			dur = " [" + e.Dur.Round(time.Microsecond).String() + "]"
		}
		fmt.Fprintf(w, "  %12s  %-10s%s  %s\n",
			"+"+e.At.Round(time.Microsecond).String(), e.Name, dur, e.Detail)
	}
}
