package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"spm/internal/service"
	"spm/internal/store"
)

// withPprof mounts the net/http/pprof handlers under /debug/pprof/ in
// front of h. The serve and cluster-admin listeners use it behind their
// -pprof flags; the explicit registrations are needed because neither
// listener uses http.DefaultServeMux, which is all importing the package
// wires up on its own.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// defaultLoadgenProg is the program loadgen submits when no -program file
// is given: sound under allow(2) once instrumented, unsound raw.
const defaultLoadgenProg = `program loadgen
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

// cmdServe runs the policy-checking service: a JSQ-scheduled worker fleet
// with a content-addressed compile cache behind a JSON API. With -store it
// also persists verdicts and job checkpoints, so repeated submissions
// answer from disk and jobs interrupted by a crash resume on restart.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8135", "listen address")
	pools := fs.Int("pools", 0, "worker pools (0 = default)")
	queue := fs.Int("queue", 0, "per-pool queue bound (0 = default)")
	sweepWorkers := fs.Int("sweep-workers", 0, "sweep parallelism per job (0 = CPUs/pools)")
	sweepBatch := fs.Int("sweep-batch", 0, "batch/columnar execution width per job (0 = default, 1 = scalar)")
	cacheCap := fs.Int("cache", 0, "compile-cache entries (0 = default)")
	maxTuples := fs.Int64("max-tuples", 0, "reject domains larger than this (0 = default)")
	storeDir := fs.String("store", "", "verdict-store directory; enables persistence and crash resume")
	ckptEvery := fs.Int64("checkpoint-every", 0, "tuples between job checkpoints (0 = default; needs -store)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant token refill, tuples/s (0 = default; needs -tenant-burst)")
	tenantBurst := fs.Int64("tenant-burst", 0, "per-tenant bucket capacity in tuples; > 0 enables tenant quotas")
	tenantQueue := fs.Int("tenant-queue", 0, "per-tenant dispatch backlog in jobs (0 = default)")
	throttleD := fs.Duration("throttle", 0, "test hook: pause every sweep worker this long per chunk (makes this node a deterministic straggler)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	cfg := service.Config{
		Pools:           *pools,
		QueueCap:        *queue,
		SweepWorkers:    *sweepWorkers,
		SweepBatch:      *sweepBatch,
		CacheCap:        *cacheCap,
		MaxTuples:       *maxTuples,
		CheckpointEvery: *ckptEvery,
		Tenant: service.TenantConfig{
			Rate:     *tenantRate,
			Burst:    *tenantBurst,
			QueueCap: *tenantQueue,
		},
		Throttle: *throttleD,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("serve: opening store: %w", err)
		}
		defer st.Close()
		cfg.Store = st
	}
	svc := service.New(cfg)
	defer svc.Close()
	cfg = svc.Config()
	fmt.Fprintf(os.Stderr, "spm serve: listening on %s (%d pools × queue %d, %d sweep workers/job)\n",
		*addr, cfg.Pools, cfg.QueueCap, cfg.SweepWorkers)
	if *storeDir != "" {
		st := svc.Stats().Store
		fmt.Fprintf(os.Stderr, "spm serve: store %s (%d verdicts, %d jobs resumed)\n",
			*storeDir, st.Verdicts, st.ResumedJobs)
	}
	handler := svc.Handler()
	if *pprofOn {
		handler = withPprof(handler)
		fmt.Fprintln(os.Stderr, "spm serve: pprof on /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}

// cmdLoadgen fires a closed-loop stream of check jobs at a running
// `spm serve` and reports latency percentiles; CI uses it as the service
// smoke test.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8135", "server base URL")
	jobs := fs.Int("n", 256, "total jobs")
	concurrency := fs.Int("c", 64, "concurrent closed-loop clients")
	maximalEvery := fs.Int("maximal-every", 4, "every k-th job also checks maximality (0 = never)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job deadline; late jobs are cancelled server-side (0 = default 60s)")
	program := fs.String("program", "", "flowchart file to submit (default: built-in demo)")
	policy := fs.String("policy", "{2}", "allowed input indices, e.g. {1,3} or all")
	variant := fs.String("variant", "untimed", "untimed, timed, or highwater")
	domain := fs.String("domain", "0,1,2,3,4,5,6,7", "comma-separated values every input ranges over")
	timed := fs.Bool("time", false, "observe running time as well as the value")
	raw := fs.Bool("raw", false, "check the bare program instead of instrumenting")
	tenant := fs.String("tenant", "", "X-SPM-Tenant header value; 429 rejections are retried after Retry-After")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("loadgen: unexpected arguments %v", fs.Args())
	}
	src := defaultLoadgenProg
	if *program != "" {
		data, err := os.ReadFile(*program)
		if err != nil {
			return err
		}
		src = string(data)
	}
	values, err := parseDomain(*domain)
	if err != nil {
		return err
	}
	rep, err := service.Loadgen(service.LoadgenConfig{
		BaseURL:      *addr,
		Jobs:         *jobs,
		Concurrency:  *concurrency,
		MaximalEvery: *maximalEvery,
		JobTimeout:   *jobTimeout,
		Tenant:       *tenant,
		Request: service.CheckRequest{
			Program: src,
			Policy:  *policy,
			Variant: *variant,
			Domain:  values,
			Timed:   *timed,
			Raw:     *raw,
		},
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if rep.Failed > 0 {
		return fmt.Errorf("loadgen: %d of %d jobs failed", rep.Failed, rep.Jobs)
	}
	return nil
}
