// Command spm-experiments regenerates the paper's evaluation artifacts
// (experiments E1–E20; `spm-experiments -list` prints the index). With no
// arguments it runs everything; with experiment IDs it runs just those.
//
//	spm-experiments            # all experiments
//	spm-experiments E3 E10     # selected experiments
//	spm-experiments -list      # list IDs and titles
package main

import (
	"flag"
	"fmt"
	"os"

	"spm/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()
	if err := run(*list, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "spm-experiments:", err)
		os.Exit(1)
	}
}

func run(list bool, ids []string) error {
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s (%s)\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}
	if len(ids) == 0 {
		return experiments.RunAll(os.Stdout)
	}
	for _, id := range ids {
		e, ok := experiments.Get(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		fmt.Printf("== %s: %s\n   (%s)\n\n", e.ID, e.Title, e.Paper)
		if err := e.Run(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
