package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Performance":                                    "performance",
		"The policy-checking service":                    "the-policy-checking-service",
		"v2: batching, cancellation, progress streaming": "v2-batching-cancellation-progress-streaming",
		"Where to add things":                            "where-to-add-things",
		"`spm serve` quickstart":                         "spm-serve-quickstart",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckMarkdown(t *testing.T) {
	// The tool runs from the repo root with repo-relative paths; that is
	// what makes "resolves outside the repo" detectable as a leading "..".
	t.Chdir(t.TempDir())
	write := func(name, content string) string {
		t.Helper()
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return name
	}
	write("TARGET.md", "# Title\n\n## Real Heading\n")
	doc := write("doc.md", "[ok](TARGET.md) [anchored](TARGET.md#real-heading) "+
		"[ext](https://example.com/x) [out](../../outside/thing.yml) "+
		"[missing](NOPE.md) [badanchor](TARGET.md#gone)\n")
	data, _ := os.ReadFile(doc)
	problems, checked := checkMarkdown(doc, string(data))
	// External link skipped entirely; out-of-repo counted but tolerated.
	if checked != 5 {
		t.Fatalf("checked = %d, want 5", checked)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want 2 (missing file, bad anchor)", problems)
	}
}

func TestCheckProse(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "doc.go")
	if err := os.WriteFile(p, []byte("// See SIBLING.md and ALSO_GONE.md.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "SIBLING.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, checked := checkProse(p, "// See SIBLING.md and ALSO_GONE.md.\n")
	if checked != 2 {
		t.Fatalf("checked = %d, want 2", checked)
	}
	if len(problems) != 1 {
		t.Fatalf("problems = %v, want exactly the missing reference", problems)
	}
}
