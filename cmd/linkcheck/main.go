// Command linkcheck verifies the repository's documentation references:
// markdown links in .md files (relative targets must exist; #anchors must
// match a heading in the target) and file references in .go doc comments
// (tokens like README.md or bench_test.go must exist). External http(s)
// links are not fetched — CI stays hermetic — and links that resolve
// outside the repository (GitHub-web relative links like
// ../../actions/...) are skipped.
//
// Usage: go run ./cmd/linkcheck [files...]; with no arguments it checks
// README.md, DESIGN.md, and doc.go. Exits non-zero listing every broken
// reference, which is what CI's docs job gates on.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	// [text](target) — target up to the first closing paren or space.
	mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// A file-looking token in prose: path characters ending in a source
	// or markdown extension.
	fileToken = regexp.MustCompile(`[A-Za-z0-9_\-./]*[A-Za-z0-9_\-]\.(?:md|go)\b`)
	// Markdown headings, for anchor checking.
	heading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)
)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		files = []string{"README.md", "DESIGN.md", "doc.go"}
	}
	var problems []string
	checked := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", f, err))
			continue
		}
		var probs []string
		var n int
		if strings.HasSuffix(f, ".md") {
			probs, n = checkMarkdown(f, string(data))
		} else {
			probs, n = checkProse(f, string(data))
		}
		problems = append(problems, probs...)
		checked += n
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "linkcheck:", p)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken reference(s) in %d checked\n", len(problems), checked)
		os.Exit(1)
	}
	fmt.Printf("linkcheck: %d reference(s) OK across %d file(s)\n", checked, len(files))
}

// checkMarkdown verifies every [text](target) link in a markdown file.
func checkMarkdown(file, content string) (problems []string, checked int) {
	for _, m := range mdLink.FindAllStringSubmatch(content, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue // external; not fetched
		}
		checked++
		path, anchor, _ := strings.Cut(target, "#")
		resolved := file
		if path != "" {
			resolved = filepath.Join(filepath.Dir(file), path)
			if strings.HasPrefix(filepath.Clean(resolved), "..") {
				continue // GitHub-web relative link outside the repo
			}
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: link %q: %s does not exist", file, target, resolved))
				continue
			}
		}
		if anchor != "" && strings.HasSuffix(resolved, ".md") {
			if !anchorExists(resolved, anchor) {
				problems = append(problems, fmt.Sprintf("%s: link %q: no heading for anchor #%s in %s", file, target, anchor, resolved))
			}
		}
	}
	return problems, checked
}

// checkProse verifies file-looking tokens in a Go doc comment (or any
// prose file): each must exist relative to the repo root or to the
// containing file.
func checkProse(file, content string) (problems []string, checked int) {
	seen := map[string]bool{}
	for _, tok := range fileToken.FindAllString(content, -1) {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		checked++
		if _, err := os.Stat(tok); err == nil {
			continue
		}
		if _, err := os.Stat(filepath.Join(filepath.Dir(file), tok)); err == nil {
			continue
		}
		problems = append(problems, fmt.Sprintf("%s: reference %q does not exist", file, tok))
	}
	return problems, checked
}

// anchorExists reports whether the markdown file has a heading whose
// GitHub-style slug matches the anchor.
func anchorExists(file, anchor string) bool {
	data, err := os.ReadFile(file)
	if err != nil {
		return false
	}
	for _, h := range heading.FindAllStringSubmatch(string(data), -1) {
		if slug(h[1]) == strings.ToLower(anchor) {
			return true
		}
	}
	return false
}

// slug approximates GitHub's heading-to-anchor rule: lower-case, drop
// everything but letters, digits, spaces, and hyphens, then turn spaces
// into hyphens.
func slug(h string) string {
	// Strip inline code markers down to their text first.
	h = strings.NewReplacer("`", "", "*", "").Replace(h)
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}
