// Timingchannel: the Section 2 example behind the observability
// postulate. A program can compute a constant and still leak its input
// through running time; the timed surveillance variant M′ (Theorem 3′)
// closes the channel by halting before any disallowed test.
package main

import (
	"context"
	"fmt"
	"log"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
)

// sound decides soundness through the unified check API.
func sound(m core.Mechanism, pol core.Policy, dom core.Domain, obs core.Observation) check.Verdict {
	v, err := check.Run(context.Background(), check.Spec{
		Kind: check.Soundness, Mechanism: m, Policy: pol, Domain: dom, Observation: obs,
	})
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	// Q(x) = 1 for every x — but the loop runs x times.
	q := flowchart.MustParse(`
program constant
inputs x1
Loop: if x1 == 0 goto Done else Body
Body: x1 := x1 - 1
      goto Loop
Done: y := 1
      halt
`)
	qm := core.FromProgram(q)
	fmt.Println("the 'constant' program:")
	for _, x := range []int64{0, 3, 6} {
		o, err := qm.Run([]int64{x})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Q(%d) = %d in %d steps\n", x, o.Value, o.Steps)
	}

	pol := core.NewAllow(1) // allow(): reveal nothing about x
	dom := core.Grid(1, 0, 1, 2, 3, 4, 5, 6)

	repV := sound(qm, pol, dom, core.ObserveValue)
	repT := sound(qm, pol, dom, core.ObserveValueAndTime)
	fmt.Println("\nQ as its own mechanism:")
	fmt.Println("  value only:  ", repV.Sound, "(constant output)")
	fmt.Println("  value + time:", repT.Sound, "(steps encode x — the forgotten observable)")

	// M′ halts at the first disallowed test, in time independent of x.
	mp := surveillance.MustMechanism(q, lattice.EmptySet, surveillance.Timed)
	fmt.Println("\ntimed surveillance M′:")
	for _, x := range []int64{0, 3, 6} {
		o, err := mp.Run([]int64{x})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  M′(%d) = %s in %d steps\n", x, o, o.Steps)
	}
	fmt.Println("\n" + sound(mp, pol, dom, core.ObserveValueAndTime).String())
}
