// Passwordattack: the "now classic" case from Section 2. A password
// system is not a protection mechanism — it necessarily gives out
// information about (user, password) pairs — and its security rests on a
// work factor of n^k guesses. If the page movement caused by the check is
// observable, the work factor collapses to n·k.
package main

import (
	"fmt"
	"log"

	"spm/internal/logon"
	"spm/internal/paging"
)

func main() {
	const n = 8 // alphabet a..h
	stored := []byte("hfcbe")

	// Brute force against the checker.
	memB := paging.MustNew(64, 16)
	brute, err := logon.NewChecker(memB, stored, 0)
	if err != nil {
		log.Fatal(err)
	}
	bf, err := logon.BruteForceAgainst(brute, n)
	if err != nil {
		log.Fatal(err)
	}

	// The page-boundary attack: place each guess so the page boundary
	// splits it after the position under test; a fault on the second page
	// means every character before the boundary matched.
	memA := paging.MustNew(64, 16)
	victim, err := logon.NewChecker(memA, stored, 0)
	if err != nil {
		log.Fatal(err)
	}
	atk, err := logon.PageBoundaryAttack(victim, n)
	if err != nil {
		log.Fatal(err)
	}

	k := len(stored)
	pow := 1
	for i := 0; i < k; i++ {
		pow *= n
	}
	fmt.Printf("alphabet n=%d, password length k=%d (%q)\n\n", n, k, stored)
	fmt.Printf("  brute force:          %6d guesses (worst case n^k = %d)\n", bf.Guesses, pow)
	fmt.Printf("  page-boundary attack: %6d guesses (bound n·k = %d), recovered %q\n",
		atk.Guesses, n*k, atk.Recovered)
	fmt.Printf("\nwork factor reduced by %.0fx — the 'forgotten observable' at work\n",
		float64(bf.Guesses)/float64(atk.Guesses))
}
