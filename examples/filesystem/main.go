// Filesystem: Example 2 of the paper. A content-dependent policy — the
// i-th file is visible exactly when the i-th directory says YES — is not
// of the allow(...) form, yet the framework handles it: the gatekeeper is
// sound for it and the raw file system is not.
package main

import (
	"context"
	"fmt"
	"log"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/filesys"
)

func main() {
	fs, err := filesys.New(2)
	if err != nil {
		log.Fatal(err)
	}
	gate := fs.Gatekeeper()
	raw := fs.Program()

	// Inputs: d1 d2 f1 f2 q — directory entries, file contents, query.
	scenarios := [][]int64{
		{filesys.YES, 0, 70, 90, 1}, // read file 1: permitted
		{filesys.YES, 0, 70, 90, 2}, // read file 2: denied by directory 2
	}
	fmt.Println("gatekeeper vs raw program:")
	for _, in := range scenarios {
		g, err := gate.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		r, err := raw.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  input %v → gatekeeper %-45s raw %s\n", in, g, r)
	}

	pol := fs.Policy()
	dom := fs.Domain([]int64{0, 1, 2}, false)
	for _, m := range []core.Mechanism{gate, raw} {
		rep, err := check.Run(context.Background(), check.Spec{
			Kind:        check.Soundness,
			Mechanism:   m,
			Policy:      pol,
			Domain:      dom,
			Observation: core.ObserveValue,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", rep)
	}
}
