// Fenton: the data-mark machine of Example 1 and the halt-semantics trap
// of Example 6. The machine suppresses updates to low registers under a
// priv program counter (so the output never encodes priv data), but the
// "halt as error" interpretation leaks one bit by negative inference —
// the error message appears exactly when the priv register is zero.
package main

import (
	"context"
	"fmt"
	"log"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/fenton"
	"spm/internal/lattice"
)

func main() {
	leak := fenton.MustAssemble("leak", `
    brz r1 ZERO      // branch on the priv register r1
    jmp JOIN
ZERO: halt           // reached only when r1 == 0, counter still priv
JOIN: halt           // the join: counter mark discharged here
`)
	fmt.Println("the program:")
	fmt.Print(fenton.Disassemble(leak))

	for _, sem := range []fenton.HaltSemantics{fenton.HaltAsNoop, fenton.HaltAsError} {
		m, err := fenton.NewMechanism(leak, 1, lattice.EmptySet, sem) // r1 priv
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nunder %s:\n", sem)
		for _, x := range []int64{0, 1, 2} {
			o, err := m.Run([]int64{x})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  x=%d → %s\n", x, o)
		}
		rep, err := check.Run(context.Background(), check.Spec{
			Kind:      check.Soundness,
			Mechanism: m,
			Policy:    core.NewAllow(1),
			Domain:    core.Grid(1, 0, 1, 2),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sound for allow(): %v\n", rep.Sound)
	}

	fmt.Println("\nHolmes: \"That was the curious incident\" — the absence of the")
	fmt.Println("error message tells the user that x ≠ 0.")
}
