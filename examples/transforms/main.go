// Transforms: Section 4 and 5 in action. The if-then-else transform makes
// Example 7's mechanism maximal, makes Example 8's strictly worse, and on
// Example 9 the duplication/specialisation transform beats both it and
// whole-program certification.
package main

import (
	"fmt"
	"log"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/static"
	"spm/internal/surveillance"
	"spm/internal/transform"
)

func passCount(m core.Mechanism, dom core.Domain) int {
	n := 0
	err := dom.Enumerate(func(in []int64) error {
		o, err := m.Run(in)
		if err != nil {
			return err
		}
		if !o.Violation {
			n++
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return n
}

func main() {
	dom := core.Grid(2, 0, 1, 2)
	allow2 := lattice.NewIndexSet(2)

	// Example 7: the branch outcome is dead; transforming the diamond
	// into ite selections removes the program-counter taint entirely.
	ex7 := flowchart.MustParse(`
program ex7
inputs x1 x2
    if x1 == 1 goto A else B
A:  r := 1
    goto J
B:  r := 2
    goto J
J:  y := 1
    halt
`)
	t7, n7, err := transform.IfThenElseAll(ex7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 7 (allow(2)), %d diamond transformed:\n", n7)
	fmt.Printf("  plain surveillance passes:       %d/%d\n",
		passCount(surveillance.MustMechanism(ex7, allow2, surveillance.Untimed), dom), dom.Size())
	fmt.Printf("  transformed surveillance passes: %d/%d  ← maximal\n\n",
		passCount(surveillance.MustMechanism(t7, allow2, surveillance.Untimed), dom), dom.Size())

	// Example 8: the transform forces both arms' classes on every run.
	ex8 := flowchart.MustParse(`
program ex8
inputs x1 x2
    if x2 == 1 goto A else B
A:  y := 1
    goto J
B:  y := x1
    goto J
J:  halt
`)
	t8, _, err := transform.IfThenElseAll(ex8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 8 (allow(2)): the same transform hurts:")
	fmt.Printf("  plain surveillance passes:       %d/%d\n",
		passCount(surveillance.MustMechanism(ex8, allow2, surveillance.Untimed), dom), dom.Size())
	fmt.Printf("  transformed surveillance passes: %d/%d  ← strictly worse\n\n",
		passCount(surveillance.MustMechanism(t8, allow2, surveillance.Untimed), dom), dom.Size())

	// Example 9: compile-time enforcement. Whole-program certification
	// fails; splitting on the allowed branch certifies one residual.
	ex9 := flowchart.MustParse(`
program ex9
inputs x1 x2
    if x1 == 0 goto A else B
A:  y := 1
    goto J
B:  y := x2
    goto J
J:  halt
`)
	allow1 := lattice.NewIndexSet(1)
	whole, rep, err := static.Mechanism(ex9, allow1)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := static.Specialize(ex9, allow1, -1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 9 (allow(1)), compile-time mechanisms:")
	fmt.Printf("  whole-program certification: %v → passes %d/%d\n",
		rep.OK, passCount(whole, dom), dom.Size())
	fmt.Printf("  specialised mechanism:        passes %d/%d\n", passCount(spec, dom), dom.Size())
	fmt.Print(indent(spec.Describe(), "    "))
}

func indent(s, pre string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += pre + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
