// Quickstart: write a flowchart program, attach the surveillance
// protection mechanism of Jones & Lipton for a policy allow(J), run it,
// and verify soundness exhaustively over a finite domain.
package main

import (
	"context"
	"fmt"
	"log"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
)

func main() {
	// A program over two inputs. Under allow(2) the x2 = 0 path is fine
	// (r's dependence on x1 was overwritten) but the other path copies
	// the disallowed x1 into the output.
	q := flowchart.MustParse(`
program demo
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`)

	// allow(2): the user may learn x2, nothing about x1.
	allowed := lattice.NewIndexSet(2)
	m := surveillance.MustMechanism(q, allowed, surveillance.Untimed)

	fmt.Println("running the protected program:")
	for _, in := range [][]int64{{7, 0}, {7, 5}} {
		o, err := m.Run(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  M%v = %s\n", in, o)
	}

	// Soundness, checked extensionally through the unified check API: the
	// mechanism's observable output must factor through the policy view.
	rep, err := check.Run(context.Background(), check.Spec{
		Kind:        check.Soundness,
		Mechanism:   m,
		Policy:      core.NewAllowSet(2, allowed),
		Domain:      core.Grid(2, 0, 1, 2, 3),
		Observation: core.ObserveValue,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsoundness:", rep)

	// The instrumented mechanism is itself a flowchart program — print it.
	inst, err := surveillance.Instrument(q, allowed, surveillance.Untimed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe mechanism as a flowchart (shadow variables use '#'):")
	fmt.Print(flowchart.Print(inst))
}
