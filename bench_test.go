// Benchmarks: one per experiment in the registry (E1–E20, see
// internal/experiments), plus ablations for the design choices the core
// library makes. The benchmarks
// measure the cost of the artifact each experiment regenerates — a
// mechanism run, a soundness sweep, a transform, an attack — so the
// relative shapes (surveillance overhead vs raw execution, attack vs
// brute force, zero-overhead certification) are visible in ns/op.
package spm_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"spm/internal/accesscontrol"
	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/experiments"
	"spm/internal/fenton"
	"spm/internal/filesys"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/logon"
	"spm/internal/paging"
	"spm/internal/progen"
	"spm/internal/querydb"
	"spm/internal/static"
	"spm/internal/surveillance"
	"spm/internal/sweep"
	"spm/internal/tape"
	"spm/internal/transform"
)

const benchForgetful = `
program forgetful
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

const benchEx7 = `
program ex7
inputs x1 x2
    if x1 == 1 goto A else B
A:  r := 1
    goto J
B:  r := 2
    goto J
J:  y := 1
    halt
`

const benchEx8 = `
program ex8
inputs x1 x2
    if x2 == 1 goto A else B
A:  y := 1
    goto J
B:  y := x1
    goto J
J:  halt
`

const benchEx9 = `
program ex9
inputs x1 x2
    if x1 == 0 goto A else B
A:  y := 1
    goto J
B:  y := x2
    goto J
J:  halt
`

const benchTiming = `
program timing
inputs x1
Loop: if x1 == 0 goto Done else Body
Body: x1 := x1 - 1
      goto Loop
Done: y := 1
      halt
`

func mustRun(b *testing.B, m core.Mechanism, in []int64) core.Outcome {
	b.Helper()
	o, err := m.Run(in)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkE01TrivialMechanisms measures the two Example 3 mechanisms.
func BenchmarkE01TrivialMechanisms(b *testing.B) {
	b.Run("null", func(b *testing.B) {
		m := core.NewNull(3)
		in := []int64{1, 2, 3}
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	b.Run("program-as-mechanism", func(b *testing.B) {
		m := logon.Program()
		in := []int64{0, 73, 3}
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkE02LogonSoundness measures the exhaustive soundness check that
// exposes the logon leak.
func BenchmarkE02LogonSoundness(b *testing.B) {
	q := logon.Program()
	pol := logon.Policy()
	dom := logon.Domain(3)
	b.ReportMetric(float64(dom.Size()), "inputs/check")
	for i := 0; i < b.N; i++ {
		rep, err := core.CheckSoundness(q, pol, dom, core.ObserveValue)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Sound {
			b.Fatal("logon should be unsound")
		}
	}
}

// BenchmarkE03SurveillanceVsHighWater compares the two dynamic
// mechanisms' per-run cost against the bare program.
func BenchmarkE03SurveillanceVsHighWater(b *testing.B) {
	q := flowchart.MustParse(benchForgetful)
	J := lattice.NewIndexSet(2)
	in := []int64{7, 0}
	b.Run("Q", func(b *testing.B) {
		m := core.FromProgram(q)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	b.Run("surveillance", func(b *testing.B) {
		m := surveillance.MustMechanism(q, J, surveillance.Untimed)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	b.Run("high-water", func(b *testing.B) {
		m := surveillance.MustMechanism(q, J, surveillance.Monotone)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkE04SurveillanceNotMaximal measures the maximal mechanism (Q
// itself) against surveillance on the p. 49 program.
func BenchmarkE04SurveillanceNotMaximal(b *testing.B) {
	q := flowchart.MustParse(`
program botharms
inputs x1 x2
    if x1 == 0 goto A else B
A:  y := x2
    halt
B:  y := x2
    halt
`)
	in := []int64{1, 2}
	b.Run("Mmax=Q", func(b *testing.B) {
		m := core.FromProgram(q)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	b.Run("Ms", func(b *testing.B) {
		m := surveillance.MustMechanism(q, lattice.NewIndexSet(2), surveillance.Untimed)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkE05IfThenElseTransform measures the Example 7 transform and the
// resulting mechanism.
func BenchmarkE05IfThenElseTransform(b *testing.B) {
	q := flowchart.MustParse(benchEx7)
	b.Run("transform", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := transform.IfThenElseAll(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("transformed-run", func(b *testing.B) {
		qt, _, err := transform.IfThenElseAll(q)
		if err != nil {
			b.Fatal(err)
		}
		m := surveillance.MustMechanism(qt, lattice.NewIndexSet(2), surveillance.Untimed)
		in := []int64{1, 2}
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkE06TransformHurts measures the Example 8 comparison pair.
func BenchmarkE06TransformHurts(b *testing.B) {
	q := flowchart.MustParse(benchEx8)
	qt, _, err := transform.IfThenElseAll(q)
	if err != nil {
		b.Fatal(err)
	}
	in := []int64{1, 1}
	b.Run("plain", func(b *testing.B) {
		m := surveillance.MustMechanism(q, lattice.NewIndexSet(2), surveillance.Untimed)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	b.Run("transformed", func(b *testing.B) {
		m := surveillance.MustMechanism(qt, lattice.NewIndexSet(2), surveillance.Untimed)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkE07SoundnessSweep measures one generated-program soundness
// check, the unit of the Theorem 3/3' property sweep.
func BenchmarkE07SoundnessSweep(b *testing.B) {
	q := progen.Generate(rand.New(rand.NewSource(1975)), progen.DefaultConfig(2))
	J := lattice.NewIndexSet(1)
	m := surveillance.MustMechanism(q, J, surveillance.Untimed)
	pol := core.NewAllowSet(2, J)
	dom := core.Grid(2, 0, 1, 2)
	for i := 0; i < b.N; i++ {
		rep, err := core.CheckSoundness(m, pol, dom, core.ObserveValue)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Sound {
			b.Fatal("Theorem 3 violated")
		}
	}
}

// BenchmarkE08TimingChannel compares the untimed mechanism (which lets the
// loop run) with the timed one (which halts immediately).
func BenchmarkE08TimingChannel(b *testing.B) {
	q := flowchart.MustParse(benchTiming)
	in := []int64{64}
	b.Run("untimed-M", func(b *testing.B) {
		m := surveillance.MustMechanism(q, lattice.EmptySet, surveillance.Untimed)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	b.Run("timed-M'", func(b *testing.B) {
		m := surveillance.MustMechanism(q, lattice.EmptySet, surveillance.Timed)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkE09Specialization measures building and running the Example 9
// compile-time mechanism.
func BenchmarkE09Specialization(b *testing.B) {
	q := flowchart.MustParse(benchEx9)
	J := lattice.NewIndexSet(1)
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := static.Specialize(q, J, -1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("run", func(b *testing.B) {
		gm, err := static.Specialize(q, J, -1)
		if err != nil {
			b.Fatal(err)
		}
		in := []int64{0, 2}
		for i := 0; i < b.N; i++ {
			mustRun(b, gm, in)
		}
	})
}

// BenchmarkE10PasswordWorkFactor measures the attack and the brute-force
// baseline; the ratio is the paper's n^k → n·k reduction.
func BenchmarkE10PasswordWorkFactor(b *testing.B) {
	const n = 8
	stored := []byte("hfcb")
	b.Run("attack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mem := paging.MustNew(64, 16)
			c, err := logon.NewChecker(mem, stored, 0)
			if err != nil {
				b.Fatal(err)
			}
			wf, err := logon.PageBoundaryAttack(c, n)
			if err != nil || !wf.Found {
				b.Fatal(err)
			}
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mem := paging.MustNew(64, 16)
			c, err := logon.NewChecker(mem, stored, 0)
			if err != nil {
				b.Fatal(err)
			}
			wf, err := logon.BruteForceAgainst(c, n)
			if err != nil || !wf.Found {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11FentonHalt measures data-mark machine runs under both halt
// semantics.
func BenchmarkE11FentonHalt(b *testing.B) {
	p := fenton.MustAssemble("leak", `
    brz r1 ZERO
    jmp JOIN
ZERO: halt
JOIN: halt
`)
	for _, sem := range []fenton.HaltSemantics{fenton.HaltAsNoop, fenton.HaltAsError} {
		sem := sem
		b.Run(sem.String(), func(b *testing.B) {
			m, err := fenton.NewMechanism(p, 1, lattice.EmptySet, sem)
			if err != nil {
				b.Fatal(err)
			}
			in := []int64{0}
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12UnionTheorem measures the union mechanism against a single
// member.
func BenchmarkE12UnionTheorem(b *testing.B) {
	q := flowchart.MustParse(benchForgetful)
	J := lattice.NewIndexSet(2)
	ms := surveillance.MustMechanism(q, J, surveillance.Untimed)
	mh := surveillance.MustMechanism(q, J, surveillance.Monotone)
	in := []int64{7, 0}
	b.Run("member", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mustRun(b, ms, in)
		}
	})
	b.Run("union", func(b *testing.B) {
		u := core.MustUnion("u", ms, mh)
		for i := 0; i < b.N; i++ {
			mustRun(b, u, in)
		}
	})
}

// BenchmarkE13TapeTab measures the three tape readers; constant tab's cost
// is independent of block 1, walk's is not.
func BenchmarkE13TapeTab(b *testing.B) {
	in := []int64{123456789012345, 42}
	readers := []core.Mechanism{
		&tape.Reader{UseTab: false},
		&tape.Reader{UseTab: true, Cost: tape.TabLinear},
		&tape.Reader{UseTab: true, Cost: tape.TabConstant},
	}
	for _, m := range readers {
		m := m
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mustRun(b, m, in)
			}
		})
	}
}

// BenchmarkE14MaximalReduction measures the finite-domain soundness test
// at the heart of the Theorem 4 demonstration.
func BenchmarkE14MaximalReduction(b *testing.B) {
	a := []int64{0, 0, 1, 0}
	q := core.NewFunc("Q_A", 1, func(in []int64) core.Outcome {
		x := in[0]
		if x < 0 || x >= int64(len(a)) {
			return core.Outcome{Value: 0, Steps: 1}
		}
		return core.Outcome{Value: a[x], Steps: 1}
	})
	pol := core.NewAllow(1)
	dom := core.Grid(1, 0, 1, 2, 3)
	for i := 0; i < b.N; i++ {
		if _, err := core.CheckSoundness(q, pol, dom, core.ObserveValue); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15FileSystem measures the gatekeeper against the raw program.
func BenchmarkE15FileSystem(b *testing.B) {
	s, err := filesys.New(2)
	if err != nil {
		b.Fatal(err)
	}
	in := []int64{filesys.YES, 0, 70, 90, 1}
	b.Run("gatekeeper", func(b *testing.B) {
		m := s.Gatekeeper()
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	b.Run("raw", func(b *testing.B) {
		m := s.Program()
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkE16WhileTransform measures loop unrolling and the unrolled
// mechanism.
func BenchmarkE16WhileTransform(b *testing.B) {
	q := flowchart.MustParse(`
program whileloop
inputs x1 x2
    r := x1
Loop: if r > 0 goto Body else Done
Body: r := r - 1
      goto Loop
Done: y := x2
      halt
`)
	loops, err := transform.FindLoops(q)
	if err != nil || len(loops) != 1 {
		b.Fatal("loop detection failed")
	}
	b.Run("unroll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := transform.Unroll(q, loops[0], 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unrolled-run", func(b *testing.B) {
		qt, err := transform.Unroll(q, loops[0], 8)
		if err != nil {
			b.Fatal(err)
		}
		m := surveillance.MustMechanism(qt, lattice.NewIndexSet(2), surveillance.Untimed)
		in := []int64{8, 3}
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkE17HistoryPolicy measures the history-aware gatekeeper's
// per-query cost as the answered history grows.
func BenchmarkE17HistoryPolicy(b *testing.B) {
	db, err := querydb.NewDB([]int64{30, 50, 20, 40, 10, 60, 70, 80})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("size-only", func(b *testing.B) {
		s := querydb.NewSession(db, querydb.SizeOnly, 2)
		for i := 0; i < b.N; i++ {
			s.Query([]int{i % 7, (i + 1) % 7})
		}
	})
	b.Run("history-aware", func(b *testing.B) {
		s := querydb.NewSession(db, querydb.HistoryAware, 2)
		for i := 0; i < b.N; i++ {
			s.Query([]int{i % 7, (i + 1) % 7, (i + 3) % 7})
		}
	})
}

// BenchmarkAblationInstrumentationOverhead quantifies the design decision
// to express mechanisms as instrumented flowcharts: the factor
// between raw interpretation and each instrumented variant on a
// loop-heavy program.
func BenchmarkAblationInstrumentationOverhead(b *testing.B) {
	q := flowchart.MustParse(benchTiming)
	in := []int64{128}
	J := lattice.AllInputs(1) // allow everything so the loop actually runs
	b.Run("raw", func(b *testing.B) {
		m := core.FromProgram(q)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	for _, v := range []surveillance.Variant{surveillance.Untimed, surveillance.Timed, surveillance.Monotone} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			m := surveillance.MustMechanism(q, J, v)
			for i := 0; i < b.N; i++ {
				mustRun(b, m, in)
			}
		})
	}
}

// BenchmarkAblationStaticZeroOverhead shows certified programs run at raw
// speed while dynamic surveillance pays per-box costs.
func BenchmarkAblationStaticZeroOverhead(b *testing.B) {
	q := flowchart.MustParse("program clean\ninputs x1 x2\n y := x2 + 1\n halt\n")
	J := lattice.NewIndexSet(2)
	in := []int64{5, 9}
	b.Run("certified", func(b *testing.B) {
		m, rep, err := static.Mechanism(q, J)
		if err != nil || !rep.OK {
			b.Fatal("certification should succeed")
		}
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
	b.Run("surveillance", func(b *testing.B) {
		m := surveillance.MustMechanism(q, J, surveillance.Untimed)
		for i := 0; i < b.N; i++ {
			mustRun(b, m, in)
		}
	})
}

// BenchmarkExperimentTables measures regenerating the full experiment
// report, the unit of work of cmd/spm-experiments.
func BenchmarkExperimentTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkAblationCompiledVsInterpreted separates the execution engine's
// cost from the instrumentation's: the same (instrumented) program run by
// the map-environment interpreter and by the slot-compiled executor.
func BenchmarkAblationCompiledVsInterpreted(b *testing.B) {
	q := flowchart.MustParse(benchTiming)
	inst, err := surveillance.Instrument(q, lattice.AllInputs(1), surveillance.Untimed)
	if err != nil {
		b.Fatal(err)
	}
	in := []int64{128}
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := inst.RunBudget(in, flowchart.DefaultMaxSteps, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		c, err := inst.Compile()
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := c.Run(in, flowchart.DefaultMaxSteps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

const benchSweep = `
program sweepdemo
inputs x1 x2
    i := x1 & 127
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: y := x2
      halt
`

// BenchmarkAblationSweepEngine is the sequential-vs-engine ablation for the
// shared sweep engine: the same soundness verdict over a ≥10⁵-tuple domain,
// computed by the sequential tree-walking checker and by the chunked
// work-stealing engine at increasing worker counts. The engine rows include
// the compiled fast path (the mechanism wraps a flowchart program), which
// is where most of the single-core factor comes from; extra workers then
// scale it across CPUs.
func BenchmarkAblationSweepEngine(b *testing.B) {
	q := flowchart.MustParse(benchSweep)
	m := core.FromProgram(q)
	pol := core.NewAllow(2, 2)
	dom := core.Grid(2, core.Range(0, 399)...) // 400² = 160,000 tuples
	b.Run("sequential", func(b *testing.B) {
		b.ReportMetric(float64(dom.Size()), "inputs/check")
		for i := 0; i < b.N; i++ {
			rep, err := core.CheckSoundness(m, pol, dom, core.ObserveValue)
			if err != nil || !rep.Sound {
				b.Fatalf("rep=%v err=%v", rep, err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("engine-%dw", workers), func(b *testing.B) {
			b.ReportMetric(float64(dom.Size()), "inputs/check")
			for i := 0; i < b.N; i++ {
				rep, err := core.CheckSoundnessSweep(m, pol, dom, core.ObserveValue, sweep.Config{Workers: workers})
				if err != nil || !rep.Sound {
					b.Fatalf("rep=%v err=%v", rep, err)
				}
			}
		})
	}
}

// BenchmarkPrefixMemoSweep is the prefix-memoization ablation on the same
// 160,000-tuple domain as BenchmarkAblationSweepEngine: the sweep walks
// each chunk in odometer order, and benchSweep's loop depends only on the
// outer input, so the memoized path records one execution snapshot per
// row of 400 innermost values and replays just the tail (`y := x2`; halt)
// for the other 399 — versus the plain compiled path re-running the loop
// on every tuple. CI's bench job runs this with -count 3 and uploads the
// result as the BENCH_prefix.json trajectory artifact.
func BenchmarkPrefixMemoSweep(b *testing.B) {
	q := flowchart.MustParse(benchSweep)
	m := core.FromProgram(q)
	pol := core.NewAllow(2, 2)
	dom := core.Grid(2, core.Range(0, 399)...) // 400² = 160,000 tuples
	for _, workers := range []int{1, 8} {
		for _, memo := range []bool{false, true} {
			name := fmt.Sprintf("reuse-%dw", workers)
			if memo {
				name = fmt.Sprintf("memo-%dw", workers)
			}
			b.Run(name, func(b *testing.B) {
				b.ReportMetric(float64(dom.Size()), "inputs/check")
				for i := 0; i < b.N; i++ {
					v, err := check.Run(context.Background(), check.Spec{
						Kind: check.Soundness, Mechanism: m, Policy: pol, Domain: dom,
					}, check.WithWorkers(workers), check.WithMemo(memo))
					if err != nil || !v.Sound {
						b.Fatalf("v=%+v err=%v", v, err)
					}
				}
			})
		}
	}
}

// BenchmarkBatchSweep is the batch/columnar-tier ablation on the same
// 160,000-tuple domain as BenchmarkPrefixMemoSweep: batch1 is the scalar
// prefix-memoized tier (WithBatch(1) keeps the scalar path), batch8 and
// batch32 stride the innermost axis 8 and 32 lanes at a time over
// structure-of-arrays columns — each row's snapshot capture feeding every
// lane, instruction dispatch paid once per stride. The 1-worker rows
// isolate per-tuple dispatch cost (where memo-1w ≈ memo-8w showed the
// engine no longer worker-bound); the 8-worker rows show the tiers
// compose. CI's bench job uploads this as BENCH_batch.json.
func BenchmarkBatchSweep(b *testing.B) {
	q := flowchart.MustParse(benchSweep)
	m := core.FromProgram(q)
	pol := core.NewAllow(2, 2)
	dom := core.Grid(2, core.Range(0, 399)...) // 400² = 160,000 tuples
	for _, workers := range []int{1, 8} {
		for _, width := range []int{1, 8, 32} {
			name := fmt.Sprintf("batch%d-%dw", width, workers)
			b.Run(name, func(b *testing.B) {
				b.ReportMetric(float64(dom.Size()), "inputs/check")
				for i := 0; i < b.N; i++ {
					v, err := check.Run(context.Background(), check.Spec{
						Kind: check.Soundness, Mechanism: m, Policy: pol, Domain: dom,
					}, check.WithWorkers(workers), check.WithBatch(width))
					if err != nil || !v.Sound {
						b.Fatalf("v=%+v err=%v", v, err)
					}
				}
			})
		}
	}
}

// benchStack is a deep-domain program whose cost concentrates in the
// outer axes: each input read is followed by a burn loop whose length
// halves with depth (x1's ≈ 96 iterations, x4's ≈ 12) and the x5 tail is
// a bare copy. A sweep tier is rewarded exactly for the prefix work it
// avoids re-running: the single-axis memo skips the whole prefix only
// while the row lasts and re-runs all four loops on every fresh row; the
// snapshot stack resumes from the deepest unchanged axis, re-running
// just the loops below the odometer carry.
const benchStack = `
program stackdemo
inputs x1 x2 x3 x4 x5
    i := (x1 & 7) + 768
L1: if i == 0 goto S2 else B1
B1: i := i - 1
    goto L1
S2: i := (x2 & 7) + 384
L2: if i == 0 goto S3 else B2
B2: i := i - 1
    goto L2
S3: i := (x3 & 7) + 192
L3: if i == 0 goto S4 else B3
B3: i := i - 1
    goto L3
S4: i := (x4 & 7) + 96
L4: if i == 0 goto S5 else B4
B4: i := i - 1
    goto L4
S5: y := x5
    halt
`

// BenchmarkSnapshotStack is the snapshot-stack ablation on a deep
// five-axis domain (8⁵ = 32,768 tuples) where prefix work dominates:
// stack is the default tier (per-axis captures — an odometer carry at
// digit d replays only the loops below d), memo the single-axis prefix
// memo (WithMemoStack(false), the PR-5 baseline — fresh rows re-run all
// five loops), reuse the compiled path with no memoization at all. The
// 1-worker rows are the headline superlinear-vs-depth comparison; the
// 8-worker row shows the stack composes with work stealing. CI's bench
// job uploads this as BENCH_memostack.json.
func BenchmarkSnapshotStack(b *testing.B) {
	q := flowchart.MustParse(benchStack)
	m := core.FromProgram(q)
	pol := core.NewAllow(5, 5)
	dom := core.Grid(5, core.Range(0, 7)...) // 8⁵ = 32,768 tuples
	run := func(name string, opts ...check.Option) {
		b.Run(name, func(b *testing.B) {
			b.ReportMetric(float64(dom.Size()), "inputs/check")
			for i := 0; i < b.N; i++ {
				v, err := check.Run(context.Background(), check.Spec{
					Kind: check.Soundness, Mechanism: m, Policy: pol, Domain: dom,
				}, opts...)
				if err != nil || !v.Sound {
					b.Fatalf("v=%+v err=%v", v, err)
				}
			}
		})
	}
	run("stack-1w", check.WithWorkers(1))
	run("memo-1w", check.WithWorkers(1), check.WithMemoStack(false))
	run("reuse-1w", check.WithWorkers(1), check.WithMemo(false))
	run("stack-batch32-1w", check.WithWorkers(1), check.WithBatch(32))
	run("stack-8w", check.WithWorkers(8))
}

// BenchmarkAblationSweepMaximality measures the two-pass parallel
// maximality checker against its sequential counterpart on the same
// flowchart-backed mechanism.
func BenchmarkAblationSweepMaximality(b *testing.B) {
	q := flowchart.MustParse(benchSweep)
	m := core.FromProgram(q)
	pol := core.NewAllow(2, 2)
	dom := core.Grid(2, core.Range(0, 63)...)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := core.CheckMaximality(m, m, pol, dom, core.ObserveValue)
			if err != nil || !rep.Maximal {
				b.Fatalf("rep=%v err=%v", rep, err)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := core.CheckMaximalityParallel(m, m, pol, dom, core.ObserveValue, 8)
			if err != nil || !rep.Maximal {
				b.Fatalf("rep=%v err=%v", rep, err)
			}
		}
	})
}

// BenchmarkE19AccessVsFlowControl measures the Example 6 monitors on the
// laundering script.
func BenchmarkE19AccessVsFlowControl(b *testing.B) {
	script := accesscontrol.MustScript("laundered", 2, accesscontrol.Copy(1, 2), accesscontrol.Read(2))
	protected := lattice.NewIndexSet(1)
	in := []int64{7, 9}
	for _, mon := range []accesscontrol.Monitor{accesscontrol.AccessControl, accesscontrol.FlowControl} {
		mon := mon
		b.Run(mon.String(), func(b *testing.B) {
			m, err := accesscontrol.NewMechanism(script, protected, mon)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE18IntegrityDual measures surveillance enforcing the integrity
// dual (trusted-inputs-only influence).
func BenchmarkE18IntegrityDual(b *testing.B) {
	q := flowchart.MustParse(`
program mixer
inputs x1 x2
    if x1 == 0 goto Clean else Dirty
Clean: y := x1
       halt
Dirty: y := x1 + x2
       halt
`)
	m := surveillance.MustMechanism(q, lattice.NewIndexSet(1), surveillance.Untimed)
	in := []int64{1, 2}
	for i := 0; i < b.N; i++ {
		mustRun(b, m, in)
	}
}
