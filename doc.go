// Package spm reproduces Jones & Lipton, "The Enforcement of Security
// Policies for Computation" (SOSP 1975; JCSS 17:35–55, 1978), as a Go
// library: the formal model of security policies, protection mechanisms,
// soundness and completeness (internal/core); the flowchart language and
// the surveillance protection mechanism (internal/flowchart,
// internal/surveillance); the high-water-mark comparison, the program
// transforms, and static certification (internal/highwater,
// internal/transform, internal/static); and the paper's worked-example
// machines — Fenton's data-mark machine, the one-way tape, the paged
// memory behind the password attack, the logon program, the file system,
// and the history-dependent statistical database.
//
// See README.md for the quickstart and the package map. The experiment
// registry in internal/experiments maps each ID (E1–E20) to the paper
// artifact it reproduces; the benchmarks in bench_test.go regenerate one
// measurement per experiment, and the cmd/spm-experiments binary prints
// the full tables. Exhaustive checks run on the parallel sweep engine in
// internal/sweep (see `spm sweep`).
package spm
