// Package spm reproduces Jones & Lipton, "The Enforcement of Security
// Policies for Computation" (SOSP 1975; JCSS 17:35–55, 1978), as a Go
// library: the formal model of security policies, protection mechanisms,
// soundness and completeness (internal/core); the flowchart language and
// the surveillance protection mechanism (internal/flowchart,
// internal/surveillance); the high-water-mark comparison, the program
// transforms, and static certification (internal/highwater,
// internal/transform, internal/static); and the paper's worked-example
// machines — Fenton's data-mark machine, the one-way tape, the paged
// memory behind the password attack, the logon program, the file system,
// and the history-dependent statistical database.
//
// Every exhaustive verdict goes through one entry point, internal/check:
//
//	v, err := check.Run(ctx, check.Spec{
//	    Kind:        check.Soundness, // or Maximality, PassCount
//	    Mechanism:   m,
//	    Policy:      pol,
//	    Domain:      core.Grid(2, 0, 1, 2),
//	    Observation: core.ObserveValue,
//	}, check.WithWorkers(8))
//
// check.Run sweeps the domain on the parallel work-stealing engine in
// internal/sweep (compiled fast path included) and honours ctx: cancelling
// it stops the enumeration within one chunk. The CLI (`spm check`,
// `spm sweep`), the policy-checking service (`spm serve`, v1 and v2 HTTP
// APIs in internal/service), and the experiment tables all route through
// it; the older core.CheckSoundnessParallel/CheckMaximalitySweep families
// remain as deprecated wrappers over the same engine.
//
// The sweep walks each chunk in odometer order (innermost input fastest)
// and memoizes the shared execution prefix across that axis: a compiled
// program (flowchart.Compile) records a Snapshot — register file, program
// counter, step count — at the first instruction that touches the
// innermost input (flowchart.Compiled.RunSnapshot), and every further
// tuple of the row replays only the program tail
// (flowchart.Compiled.RunFromSnapshot), falling back to full runs
// whenever no valid snapshot exists. Verdicts are byte-identical with
// memoization on or off; check.WithMemo(false) and check.WithCompiled(false)
// are the ablation knobs.
//
// The same verdict scales out in three layers of the one sharding idea.
// Inside one process, internal/sweep hands contiguous chunks of the
// domain's mixed-radix index space [0, Size) to worker goroutines, and the
// checkers merge per-worker view tables. Inside one node, internal/service
// wraps that in a JSQ-scheduled job fleet with a content-addressed compile
// cache. Across nodes, internal/cluster — the coordinator behind
// `spm cluster` — splits the same index space into contiguous shards
// (Spec.Shard, wire fields offset/count), dispatches them to `spm serve`
// workers over the v2 API, and folds the partial verdicts with
// check.Merge: each shard's result carries per-class evidence tables, so a
// conflict between inputs that landed on different nodes is caught exactly
// as a conflict between two workers' tables is. Failed or refused shards
// are re-dispatched to surviving nodes (the verdict stays exact), and a
// definitive counterexample cancels the outstanding shards via
// DELETE /v2/jobs/{id}.
//
// See README.md for the quickstart, the package map, the endpoint table
// of the v1/v2 service APIs (batch submit, job cancellation, progress
// streaming, offset/count sharding), the measured performance trajectory,
// and the cluster-mode two-terminal walkthrough. DESIGN.md holds the
// architecture: the four layers, the mixed-radix index space they share,
// the snapshot-validity rules behind prefix memoization, and the guide
// for adding a new machine, policy, or verdict kind. The experiment
// registry in
// internal/experiments maps each ID (E1–E20) to the paper artifact it
// reproduces; the benchmarks in bench_test.go regenerate one measurement
// per experiment, and the cmd/spm-experiments binary prints the full
// tables.
package spm
