module spm

go 1.24
