// Package tape implements the one-way read-only input tape machine of
// Section 2 of Jones & Lipton: inputs are blocks of characters laid out
// left to right, the head starts at the leftmost character, and reading or
// skipping a character costs one step.
//
// The paper's observation: under the policy allow(2) — only block 2's
// contents may be revealed — no program that walks to block 2 can be
// sound when running time is observable, because crossing block 1 encodes
// block 1's *length* into the running time. The repair is a tab(i)
// operation that jumps the head to block i; but tab must itself run in
// constant time, or the problem reappears. The package provides both tab
// cost models so the experiment can show the repair and its failure mode.
package tape

import (
	"fmt"

	"spm/internal/core"
)

// TabCost selects how the tab(i) operation is charged.
type TabCost uint8

// Tab cost models.
const (
	// TabConstant charges one step regardless of distance — the sound
	// implementation the paper calls for.
	TabConstant TabCost = iota
	// TabLinear charges one step per character skipped — the broken
	// implementation the paper warns about ("Perhaps tab(i) takes time
	// dependent on the length of x1,...,xi−1?").
	TabLinear
)

// String names the cost model.
func (c TabCost) String() string {
	if c == TabLinear {
		return "tab-linear"
	}
	return "tab-constant"
}

// Tape is a one-way read-only input tape divided into blocks. Block
// contents are the decimal digits of non-negative integers, so a block's
// value determines its length — exactly the coupling the paper's example
// needs.
type Tape struct {
	blocks [][]byte
	block  int // current block index (0-based)
	offset int // offset within the current block
	steps  int64
}

// New builds a tape whose i-th block holds the decimal digits of
// values[i] (negative values are clamped to 0).
func New(values ...int64) *Tape {
	t := &Tape{blocks: make([][]byte, len(values))}
	for i, v := range values {
		if v < 0 {
			v = 0
		}
		t.blocks[i] = []byte(fmt.Sprintf("%d", v))
	}
	return t
}

// Steps returns the running time so far.
func (t *Tape) Steps() int64 { return t.steps }

// Blocks returns the number of blocks.
func (t *Tape) Blocks() int { return len(t.blocks) }

// AtEnd reports whether the head has passed the last character of the
// current block.
func (t *Tape) AtEnd() bool { return t.offset >= len(t.blocks[t.block]) }

// Read returns the character under the head and advances one position,
// costing one step. It reports false when the head is at the end of the
// current block (the read itself still costs the step, as a real head
// motion would).
func (t *Tape) Read() (byte, bool) {
	t.steps++
	if t.block >= len(t.blocks) || t.AtEnd() {
		return 0, false
	}
	c := t.blocks[t.block][t.offset]
	t.offset++
	return c, true
}

// NextBlock moves the head to the start of the next block by walking over
// the remaining characters of the current one (one step each, plus one for
// the block gap). The head cannot move backwards.
func (t *Tape) NextBlock() error {
	if t.block+1 >= len(t.blocks) {
		return fmt.Errorf("tape: no block after %d", t.block)
	}
	remaining := len(t.blocks[t.block]) - t.offset
	t.steps += int64(remaining) + 1
	t.block++
	t.offset = 0
	return nil
}

// Tab jumps the head directly to the start of block i (1-based), under the
// given cost model. The one-way restriction still applies: tabbing
// backwards is an error.
func (t *Tape) Tab(i int, cost TabCost) error {
	bi := i - 1
	if bi < 0 || bi >= len(t.blocks) {
		return fmt.Errorf("tape: tab(%d) out of range", i)
	}
	if bi < t.block || (bi == t.block && t.offset > 0) {
		return fmt.Errorf("tape: tab(%d) would move the one-way head backwards", i)
	}
	switch cost {
	case TabConstant:
		t.steps++
	case TabLinear:
		// Charge every character between the head and the target.
		skipped := int64(len(t.blocks[t.block]) - t.offset)
		for b := t.block + 1; b < bi; b++ {
			skipped += int64(len(t.blocks[b]))
		}
		t.steps += skipped + 1
	}
	t.block = bi
	t.offset = 0
	return nil
}

// ReadBlockValue reads the rest of the current block as a decimal number,
// one step per digit.
func (t *Tape) ReadBlockValue() int64 {
	var v int64
	for {
		c, ok := t.Read()
		if !ok {
			return v
		}
		v = v*10 + int64(c-'0')
	}
}

// Reader is a core.Mechanism that reads block 2 of a two-block tape and
// returns its value: the paper's program Q for the policy allow(2). The
// strategy field selects how the head gets to block 2.
type Reader struct {
	// Strategy: "walk" crosses block 1 character by character; "tab"
	// uses the tab(2) operation with the configured cost.
	UseTab bool
	Cost   TabCost
}

// Name implements core.Mechanism.
func (r *Reader) Name() string {
	if !r.UseTab {
		return "tape-walk"
	}
	return "tape-" + r.Cost.String()
}

// Arity implements core.Mechanism.
func (r *Reader) Arity() int { return 2 }

// Run implements core.Mechanism: the output is block 2's value and the
// observable running time is the tape's step count.
func (r *Reader) Run(input []int64) (core.Outcome, error) {
	if len(input) != 2 {
		return core.Outcome{}, fmt.Errorf("tape: reader wants 2 blocks, got %d", len(input))
	}
	t := New(input[0], input[1])
	if r.UseTab {
		if err := t.Tab(2, r.Cost); err != nil {
			return core.Outcome{}, err
		}
	} else {
		if err := t.NextBlock(); err != nil {
			return core.Outcome{}, err
		}
	}
	v := t.ReadBlockValue()
	return core.Outcome{Value: v, Steps: t.Steps()}, nil
}
