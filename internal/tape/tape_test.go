package tape

import (
	"testing"

	"spm/internal/core"
)

// blockDomain holds block values with different digit lengths, so block 1's
// length varies: {5, 1234} have lengths 1 and 4.
func blockDomain() core.Domain {
	return core.Domain{{5, 1234}, {7, 42}}
}

func TestTapeBasics(t *testing.T) {
	tp := New(12, 345)
	if tp.Blocks() != 2 {
		t.Fatalf("Blocks = %d", tp.Blocks())
	}
	c, ok := tp.Read()
	if !ok || c != '1' {
		t.Errorf("Read = %c %v", c, ok)
	}
	if err := tp.NextBlock(); err != nil {
		t.Fatal(err)
	}
	if got := tp.ReadBlockValue(); got != 345 {
		t.Errorf("block 2 value = %d", got)
	}
}

func TestReadPastEnd(t *testing.T) {
	tp := New(7)
	tp.ReadBlockValue()
	if _, ok := tp.Read(); ok {
		t.Error("Read past end should fail")
	}
	if err := tp.NextBlock(); err == nil {
		t.Error("NextBlock past last block should fail")
	}
}

func TestTabValidation(t *testing.T) {
	tp := New(1, 2, 3)
	if err := tp.Tab(0, TabConstant); err == nil {
		t.Error("tab(0) accepted")
	}
	if err := tp.Tab(4, TabConstant); err == nil {
		t.Error("tab past end accepted")
	}
	if err := tp.Tab(3, TabConstant); err != nil {
		t.Fatal(err)
	}
	if err := tp.Tab(1, TabConstant); err == nil {
		t.Error("backwards tab accepted on a one-way tape")
	}
}

func TestWalkTimeDependsOnBlock1Length(t *testing.T) {
	short := New(5, 7)
	if err := short.NextBlock(); err != nil {
		t.Fatal(err)
	}
	long := New(123456, 7)
	if err := long.NextBlock(); err != nil {
		t.Fatal(err)
	}
	if short.Steps() >= long.Steps() {
		t.Errorf("walking a longer block 1 must cost more: %d vs %d", short.Steps(), long.Steps())
	}
}

func TestTabConstantTimeIndependent(t *testing.T) {
	short := New(5, 7)
	if err := short.Tab(2, TabConstant); err != nil {
		t.Fatal(err)
	}
	long := New(123456, 7)
	if err := long.Tab(2, TabConstant); err != nil {
		t.Fatal(err)
	}
	if short.Steps() != long.Steps() {
		t.Errorf("constant tab must not depend on block 1: %d vs %d", short.Steps(), long.Steps())
	}
}

func TestReaderSoundnessMatrix(t *testing.T) {
	// The paper's claim set for allow(2) with observable running time:
	//   walk:          unsound (crossing z1 encodes its length)
	//   tab, constant: sound
	//   tab, linear:   unsound (the problem reappears)
	// All three are sound when time is unobservable.
	pol := core.NewAllow(2, 2)
	dom := blockDomain()
	cases := []struct {
		m         core.Mechanism
		wantTimed bool
	}{
		{&Reader{UseTab: false}, false},
		{&Reader{UseTab: true, Cost: TabConstant}, true},
		{&Reader{UseTab: true, Cost: TabLinear}, false},
	}
	for _, tc := range cases {
		repV, err := core.CheckSoundness(tc.m, pol, dom, core.ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if !repV.Sound {
			t.Errorf("%s: value-only should be sound: %s", tc.m.Name(), repV)
		}
		repT, err := core.CheckSoundness(tc.m, pol, dom, core.ObserveValueAndTime)
		if err != nil {
			t.Fatal(err)
		}
		if repT.Sound != tc.wantTimed {
			t.Errorf("%s under value+time: sound=%v, want %v", tc.m.Name(), repT.Sound, tc.wantTimed)
		}
	}
}

func TestReaderOutputsBlock2(t *testing.T) {
	for _, m := range []core.Mechanism{
		&Reader{UseTab: false},
		&Reader{UseTab: true, Cost: TabConstant},
		&Reader{UseTab: true, Cost: TabLinear},
	} {
		o, err := m.Run([]int64{99, 1234})
		if err != nil {
			t.Fatal(err)
		}
		if o.Value != 1234 || o.Violation {
			t.Errorf("%s = %v, want 1234", m.Name(), o)
		}
	}
}

func TestReaderArity(t *testing.T) {
	m := &Reader{}
	if m.Arity() != 2 {
		t.Error("arity")
	}
	if _, err := m.Run([]int64{1}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestNegativeBlockClamped(t *testing.T) {
	tp := New(-5)
	if got := tp.ReadBlockValue(); got != 0 {
		t.Errorf("negative block value = %d, want 0", got)
	}
}

func TestCostNames(t *testing.T) {
	if TabConstant.String() != "tab-constant" || TabLinear.String() != "tab-linear" {
		t.Error("cost names")
	}
	if (&Reader{UseTab: false}).Name() != "tape-walk" {
		t.Error("reader name")
	}
}
