// Package filesys implements Example 2 of Jones & Lipton: a simple file
// system Q(d1,...,dk, f1,...,fk, q) where di is the directory entry
// governing file fi and q selects the file to read. The interesting
// security policy is content dependent — not of the allow(...) form:
//
//	I(d1,...,dk, f1,...,fk, q) = (d1,...,dk, f1',...,fk', q)
//	where fi' = fi if di = YES and 0 otherwise.
//
// The user may always see every directory entry, but a file's contents
// only when its directory permits. The gatekeeper mechanism checks the
// directory before releasing the file and is sound for this policy; the
// raw program (the file system without its gatekeeper) is not.
package filesys

import (
	"fmt"

	"spm/internal/core"
)

// YES is the directory value granting access; any other value denies.
const YES int64 = 1

// NoticeDenied is the paper's violation notice text for this example.
const NoticeDenied = "Illegal access attempted, run aborted."

// System models a k-file file system.
type System struct {
	K int
}

// New builds a file system with k files.
func New(k int) (*System, error) {
	if k < 1 {
		return nil, fmt.Errorf("filesys: need at least one file, got %d", k)
	}
	return &System{K: k}, nil
}

// Arity returns the mechanism arity: k directories, k files, one query.
func (s *System) Arity() int { return 2*s.K + 1 }

// inputLayout: input[0..K-1] directories, input[K..2K-1] files,
// input[2K] = query (1-based file index).

// Program returns the raw file system Q: it returns file q's contents
// regardless of the directory — the program as its own (unsound)
// protection mechanism.
func (s *System) Program() core.Mechanism {
	return core.NewFunc(fmt.Sprintf("filesys%d-raw", s.K), s.Arity(), func(in []int64) core.Outcome {
		q := in[2*s.K]
		if q < 1 || q > int64(s.K) {
			return core.Outcome{Value: 0, Steps: 1}
		}
		return core.Outcome{Value: in[s.K+int(q)-1], Steps: 1}
	})
}

// Gatekeeper returns the protected file system: file q is released only
// when directory q says YES; otherwise the run aborts with the paper's
// violation notice. Note the mechanism also releases directory contents —
// the policy permits that (the user "can always obtain the value of all
// the directories").
func (s *System) Gatekeeper() core.Mechanism {
	return core.NewFunc(fmt.Sprintf("filesys%d-gatekeeper", s.K), s.Arity(), func(in []int64) core.Outcome {
		q := in[2*s.K]
		if q < 1 || q > int64(s.K) {
			return core.Outcome{Value: 0, Steps: 2}
		}
		if in[int(q)-1] != YES {
			return core.Outcome{Violation: true, Notice: NoticeDenied, Steps: 2}
		}
		return core.Outcome{Value: in[s.K+int(q)-1], Steps: 2}
	})
}

// Policy returns the content-dependent policy described above.
func (s *System) Policy() core.Policy {
	k := s.K
	return core.NewContent(fmt.Sprintf("dir-gated(%d files)", k), s.Arity(), func(in []int64) string {
		view := make([]int64, 0, len(in))
		view = append(view, in[:k]...) // directories always visible
		for i := 0; i < k; i++ {
			if in[i] == YES {
				view = append(view, in[k+i])
			} else {
				view = append(view, 0)
			}
		}
		view = append(view, in[2*k]) // the query is the user's own
		return core.FormatInputs(view)
	})
}

// Domain builds an exhaustive test domain: directories over {0, YES},
// files over fileValues, queries over 1..K (plus an out-of-range probe
// when includeBadQuery is set).
func (s *System) Domain(fileValues []int64, includeBadQuery bool) core.Domain {
	d := make(core.Domain, 0, s.Arity())
	for i := 0; i < s.K; i++ {
		d = append(d, []int64{0, YES})
	}
	for i := 0; i < s.K; i++ {
		d = append(d, fileValues)
	}
	queries := make([]int64, 0, s.K+1)
	for q := 1; q <= s.K; q++ {
		queries = append(queries, int64(q))
	}
	if includeBadQuery {
		queries = append(queries, int64(s.K+1))
	}
	d = append(d, queries)
	return d
}
