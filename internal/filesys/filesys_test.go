package filesys

import (
	"testing"

	"spm/internal/core"
)

func sys(t *testing.T, k int) *System {
	t.Helper()
	s, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero files accepted")
	}
}

func TestGatekeeperBehaviour(t *testing.T) {
	s := sys(t, 2)
	gk := s.Gatekeeper()
	// d1=YES, d2=NO, f1=7, f2=9.
	in := []int64{YES, 0, 7, 9, 1}
	o, err := gk.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if o.Violation || o.Value != 7 {
		t.Errorf("permitted read = %v, want 7", o)
	}
	in[4] = 2 // query the denied file
	o, err = gk.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Violation || o.Notice != NoticeDenied {
		t.Errorf("denied read = %v, want %q", o, NoticeDenied)
	}
}

func TestRawProgramReturnsAnything(t *testing.T) {
	s := sys(t, 2)
	q := s.Program()
	o, err := q.Run([]int64{0, 0, 7, 9, 2})
	if err != nil {
		t.Fatal(err)
	}
	if o.Violation || o.Value != 9 {
		t.Errorf("raw Q = %v, want 9 (no protection)", o)
	}
}

func TestGatekeeperSoundRawUnsound(t *testing.T) {
	s := sys(t, 2)
	pol := s.Policy()
	dom := s.Domain([]int64{0, 1, 2}, false)
	gk := s.Gatekeeper()
	rep, err := core.CheckSoundness(gk, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("gatekeeper should be sound for the content policy: %s", rep)
	}
	raw := s.Program()
	rep, err = core.CheckSoundness(raw, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Error("raw file system should be unsound")
	}
}

func TestGatekeeperIsAMechanismForQ(t *testing.T) {
	s := sys(t, 2)
	dom := s.Domain([]int64{0, 1}, true)
	ok, w, err := core.VerifyMechanism(s.Gatekeeper(), s.Program(), dom)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("gatekeeper fails the mechanism property at %v", w)
	}
}

func TestPolicyNotAllowForm(t *testing.T) {
	// The content policy distinguishes inputs that any allow(...) policy
	// would conflate or conflates ones allow would distinguish: with
	// d1=NO, the file value is filtered.
	s := sys(t, 1)
	pol := s.Policy()
	if pol.View([]int64{0, 5, 1}) != pol.View([]int64{0, 9, 1}) {
		t.Error("denied file should be filtered from the view")
	}
	if pol.View([]int64{YES, 5, 1}) == pol.View([]int64{YES, 9, 1}) {
		t.Error("granted file must appear in the view")
	}
	// Directories always visible.
	if pol.View([]int64{0, 5, 1}) == pol.View([]int64{YES, 5, 1}) {
		t.Error("directory values must always be visible")
	}
}

func TestBadQueryHandling(t *testing.T) {
	s := sys(t, 2)
	dom := s.Domain([]int64{0, 1}, true)
	// Out-of-range queries return 0 from both raw and gatekeeper, keeping
	// the mechanism property intact; soundness still holds.
	rep, err := core.CheckSoundness(s.Gatekeeper(), s.Policy(), dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("gatekeeper with bad queries: %s", rep)
	}
}

func TestArity(t *testing.T) {
	s := sys(t, 3)
	if s.Arity() != 7 {
		t.Errorf("Arity = %d, want 7", s.Arity())
	}
	if len(s.Domain([]int64{0}, false)) != 7 {
		t.Error("domain arity mismatch")
	}
}
