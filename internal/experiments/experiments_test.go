package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllRegistered(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
		"E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20"}
	all := All()
	if len(all) != len(want) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registered %v, want %v", ids, want)
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("position %d: %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("E3"); !ok {
		t.Error("Get(E3) failed")
	}
	if _, ok := Get("E99"); ok {
		t.Error("Get(E99) succeeded")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "== "+e.ID+":") {
			t.Errorf("RunAll output missing section %s", e.ID)
		}
	}
}

// Claim-shape checks: the experiments must reproduce the *direction* of
// the paper's results, not just run.

func TestE3Shape(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Get("E3")
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "M_s > M_h") {
		t.Errorf("E3 should conclude M_s > M_h:\n%s", buf.String())
	}
}

func TestE5E6OppositeDirections(t *testing.T) {
	var b5, b6 bytes.Buffer
	e5, _ := Get("E5")
	e6, _ := Get("E6")
	if err := e5.Run(&b5); err != nil {
		t.Fatal(err)
	}
	if err := e6.Run(&b6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b5.String(), "transformed > plain") {
		t.Errorf("E5 should show the transform helping:\n%s", b5.String())
	}
	if !strings.Contains(b6.String(), "transformed < plain") {
		t.Errorf("E6 should show the transform hurting:\n%s", b6.String())
	}
}

func TestE10AttackBeatsBruteForce(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Get("E10")
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "yes") {
		t.Errorf("E10 should recover every password:\n%s", out)
	}
	if strings.Contains(out, "no") {
		t.Errorf("E10 had a failed recovery:\n%s", out)
	}
}

func TestE11Directions(t *testing.T) {
	var buf bytes.Buffer
	e, _ := Get("E11")
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "halt-as-noop") || !strings.Contains(out, "halt-as-error") {
		t.Fatalf("E11 output incomplete:\n%s", out)
	}
	// Table rows (the ones showing outcomes, with a Λ cell for x=0 under
	// halt-as-error): noop ends sound=yes, error ends sound=no.
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(line, "halt-as-noop") && !strings.HasSuffix(trimmed, "yes") {
			t.Errorf("halt-as-noop should be sound: %s", line)
		}
		if strings.HasPrefix(line, "halt-as-error") && strings.Contains(line, "Λ") && !strings.HasSuffix(trimmed, "no") {
			t.Errorf("halt-as-error should be unsound: %s", line)
		}
	}
}
