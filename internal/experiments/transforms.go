package experiments

import (
	"fmt"
	"io"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/static"
	"spm/internal/surveillance"
	"spm/internal/transform"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "If-then-else transform yields a maximal mechanism on Example 7",
		Paper: "Example 7",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "The same transform makes Example 8's mechanism strictly less complete",
		Paper: "Example 8",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E9",
		Title: "Duplication/specialisation beats whole-program certification and the transform",
		Paper: "Example 9, Section 5",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E16",
		Title: "While transform (bounded unrolling) removes loop-test classes",
		Paper: "Section 4, while transform",
		Run:   runE16,
	})
}

// transformComparison runs plain vs transformed surveillance over a
// domain, printing pass counts and the completeness relation.
func transformComparison(w io.Writer, src string, J lattice.IndexSet, dom core.Domain) error {
	q := flowchart.MustParse(src)
	qt, applied, err := transform.IfThenElseAll(q)
	if err != nil {
		return err
	}
	if ok, witness, err := transform.Equivalent(q, qt, dom); err != nil || !ok {
		return fmt.Errorf("transform not equivalent (witness %v): %v", witness, err)
	}
	ms := surveillance.MustMechanism(q, J, surveillance.Untimed)
	mt := surveillance.MustMechanism(qt, J, surveillance.Untimed)
	pol := core.NewAllowSet(q.Arity(), J)

	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tsound\tpasses")
	for _, m := range []core.Mechanism{ms, mt} {
		rep, err := soundness(m, pol, dom, core.ObserveValue)
		if err != nil {
			return err
		}
		pass, err := passes(m, dom)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\n", m.Name(), mark(rep.Sound), pass, dom.Size())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	cr, err := core.Compare(mt, ms, dom)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "transformed %s plain (diamonds rewritten: %d)\n", relSym(cr.Relation), applied)
	return nil
}

func runE5(w io.Writer) error {
	return transformComparison(w, progEx7, lattice.NewIndexSet(2), core.Grid(2, 0, 1, 2))
}

func runE6(w io.Writer) error {
	return transformComparison(w, progEx8, lattice.NewIndexSet(2), core.Grid(2, 0, 1, 2))
}

func runE9(w io.Writer) error {
	q := flowchart.MustParse(progEx9)
	J := lattice.NewIndexSet(1)
	pol := core.NewAllowSet(2, J)
	dom := core.Grid(2, 0, 1, 2)

	// Candidate compile-time mechanisms.
	whole, rep, err := static.Mechanism(q, J)
	if err != nil {
		return err
	}
	spec, err := static.Specialize(q, J, -1)
	if err != nil {
		return err
	}
	qt, _, err := transform.IfThenElseAll(q)
	if err != nil {
		return err
	}
	ifte := surveillance.MustMechanism(qt, J, surveillance.Untimed)
	ms := surveillance.MustMechanism(q, J, surveillance.Untimed)

	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tsound\tpasses")
	for _, m := range []core.Mechanism{whole, ifte, ms, spec} {
		sr, err := soundness(m, pol, dom, core.CoarseNotices(core.ObserveValue))
		if err != nil {
			return err
		}
		pass, err := passes(m, dom)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\n", m.Name(), mark(sr.Sound), pass, dom.Size())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "whole-program certification: %s\n", rep)
	fmt.Fprintf(w, "specialised mechanism:\n%s", spec.Describe())
	return nil
}

func runE16(w io.Writer) error {
	q := flowchart.MustParse(progWhile)
	J := lattice.NewIndexSet(2)
	pol := core.NewAllowSet(2, J)
	dom := core.Grid(2, 0, 1, 2)
	loops, err := transform.FindLoops(q)
	if err != nil {
		return err
	}
	if len(loops) != 1 {
		return fmt.Errorf("expected one loop, found %d", len(loops))
	}
	qt, err := transform.Unroll(q, loops[0], 2)
	if err != nil {
		return err
	}
	if ok, witness, err := transform.Equivalent(q, qt, dom); err != nil || !ok {
		return fmt.Errorf("unroll not equivalent (witness %v): %v", witness, err)
	}
	ms := surveillance.MustMechanism(q, J, surveillance.Untimed)
	mt := surveillance.MustMechanism(qt, J, surveillance.Untimed)
	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tsound\tpasses")
	for _, m := range []core.Mechanism{ms, mt} {
		rep, err := soundness(m, pol, dom, core.ObserveValue)
		if err != nil {
			return err
		}
		pass, err := passes(m, dom)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\n", m.Name(), mark(rep.Sound), pass, dom.Size())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	cr, err := core.Compare(mt, ms, dom)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "unrolled %s plain: the loop test's classes no longer reach the counter\n", relSym(cr.Relation))
	return nil
}
