package experiments

import (
	"fmt"
	"io"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Data security (the operator-function dual): integrity enforced by the same machinery",
		Paper: "Section 2 (second security question)",
		Run:   runE18,
	})
}

// runE18 demonstrates the paper's assertion that "the same methods used
// here to study this case can also be used to study the second case": an
// integrity policy — the output may be influenced only by trusted inputs —
// is formally an allow policy over the trusted indices, so the
// surveillance mechanism enforces it unchanged. The program mixes a
// trusted input x1 with an untrusted x2 on one path only.
func runE18(w io.Writer) error {
	q := flowchart.MustParse(`
program mixer
inputs x1 x2
    if x1 == 0 goto Clean else Dirty
Clean: y := x1
       halt
Dirty: y := x1 + x2
       halt
`)
	trusted := lattice.NewIndexSet(1)
	pol := core.NewIntegrity(2, 1)
	dom := core.Grid(2, 0, 1, 2)
	m := surveillance.MustMechanism(q, trusted, surveillance.Untimed)
	qm := core.FromProgram(q)

	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tsound for integrity(1)\tpasses")
	for _, mm := range []core.Mechanism{qm, m} {
		rep, err := soundness(mm, pol, dom, core.ObserveValue)
		if err != nil {
			return err
		}
		pass, err := passes(mm, dom)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\n", mm.Name(), mark(rep.Sound), pass, dom.Size())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "surveillance with J = trusted inputs enforces the integrity dual unchanged")
	return nil
}
