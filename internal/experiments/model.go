package experiments

import (
	"fmt"
	"io"

	"spm/internal/core"
	"spm/internal/filesys"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/logon"
	"spm/internal/surveillance"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Trivial mechanisms: null is sound for every policy; Q itself may or may not be",
		Paper: "Example 3",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Logon program: unsound for allow(1,3) but leaks at most one bit per query",
		Paper: "Example 5",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Union of sound mechanisms is sound and at least as complete as each member",
		Paper: "Theorem 1",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E14",
		Title: "Maximal-mechanism construction decides ∀x A(x)=0 (finite demonstration)",
		Paper: "Theorem 4",
		Run:   runE14,
	})
	register(Experiment{
		ID:    "E15",
		Title: "File system: gatekeeper sound for the content-dependent policy, raw Q unsound",
		Paper: "Example 2",
		Run:   runE15,
	})
	register(Experiment{
		ID:    "E17",
		Title: "History-dependent policy: tracker attack vs history-aware gatekeeper",
		Paper: "Section 2 (data base remark)",
		Run:   runE17,
	})
}

func runE1(w io.Writer) error {
	dom := logon.Domain(3)
	cases := []struct {
		m   core.Mechanism
		pol core.Policy
	}{
		{core.NewNull(3), core.NewAllow(3)},
		{core.NewNull(3), core.NewAllow(3, 1, 2, 3)},
		{core.NewNull(3), logon.Policy()},
		{logon.Program(), core.NewAllow(3, 1, 2, 3)},
		{logon.Program(), logon.Policy()},
	}
	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tpolicy\tsound\tpasses")
	for _, tc := range cases {
		rep, err := soundness(tc.m, tc.pol, dom, core.ObserveValue)
		if err != nil {
			return err
		}
		pass, err := passes(tc.m, dom)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d/%d\n", tc.m.Name(), tc.pol.Name(), mark(rep.Sound), pass, dom.Size())
	}
	return tw.Flush()
}

func runE2(w io.Writer) error {
	q := logon.Program()
	pol := logon.Policy()
	dom := logon.Domain(3)
	rep, err := soundness(q, pol, dom, core.ObserveValue)
	if err != nil {
		return err
	}
	leak, err := core.MeasureLeak(q, pol, dom, core.ObserveValue)
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "property\tvalue")
	fmt.Fprintf(tw, "sound for %s\t%s\n", pol.Name(), mark(rep.Sound))
	if !rep.Sound {
		fmt.Fprintf(tw, "counterexample\t%s vs %s → %q vs %q\n",
			core.FormatInputs(rep.WitnessA), core.FormatInputs(rep.WitnessB), rep.ObsA, rep.ObsB)
	}
	fmt.Fprintf(tw, "policy classes\t%d\n", leak.Classes)
	fmt.Fprintf(tw, "worst-class outcomes\t%d\n", leak.MaxOutcomes)
	fmt.Fprintf(tw, "bits leaked per query\t%.2f\n", leak.Bits)
	return tw.Flush()
}

func runE12(w io.Writer) error {
	// Members from E3's program: surveillance and high-water for
	// allow(2), plus the null mechanism; the union dominates all.
	q := flowchart.MustParse(progForgetful)
	J := lattice.NewIndexSet(2)
	pol := core.NewAllowSet(2, J)
	dom := core.Grid(2, 0, 1, 2)
	ms := surveillance.MustMechanism(q, J, surveillance.Untimed)
	mh := surveillance.MustMechanism(q, J, surveillance.Monotone)
	null := core.NewNull(2)
	u := core.MustUnion("Ms∨Mh∨null", ms, mh, null)

	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tsound\tpasses\tunion vs member")
	for _, m := range []core.Mechanism{ms, mh, null, u} {
		rep, err := soundness(m, pol, dom, core.CoarseNotices(core.ObserveValue))
		if err != nil {
			return err
		}
		pass, err := passes(m, dom)
		if err != nil {
			return err
		}
		rel := "-"
		if m != u {
			cr, err := core.Compare(u, m, dom)
			if err != nil {
				return err
			}
			rel = "union " + relSym(cr.Relation) + " member"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%s\n", m.Name(), mark(rep.Sound), pass, dom.Size(), rel)
	}
	return tw.Flush()
}

func relSym(r core.Relation) string {
	switch r {
	case core.Equal:
		return "="
	case core.MoreComplete:
		return ">"
	case core.LessComplete:
		return "<"
	default:
		return "<>"
	}
}

func runE14(w io.Writer) error {
	// Theorem 4's reduction, exhibited on finite function tables: Q_A
	// computes y := A(x1) with A(0) = 0, under allow(). The maximal sound
	// mechanism M is constant; M(0) = 0 iff ∀x A(x) = 0. Constructing M
	// therefore decides the ∀x question — which is undecidable for
	// general A, so no effective maximal-mechanism constructor exists.
	// Here we tabulate finite As and the resulting maximal mechanism
	// behaviour on the test domain.
	tables := []struct {
		name string
		a    []int64 // A(0..3), A(0) = 0 always
	}{
		{"A ≡ 0", []int64{0, 0, 0, 0}},
		{"A(2) = 1", []int64{0, 0, 1, 0}},
		{"A(x) = x", []int64{0, 1, 2, 3}},
	}
	dom := core.Grid(1, 0, 1, 2, 3)
	pol := core.NewAllow(1)
	tw := table(w)
	fmt.Fprintln(tw, "A\t∀x A(x)=0\tQ_A sound for allow()\tmaximal M(0)")
	for _, tc := range tables {
		a := tc.a
		q := core.NewFunc("Q_A", 1, func(in []int64) core.Outcome {
			x := in[0]
			if x < 0 || x >= int64(len(a)) {
				return core.Outcome{Value: 0, Steps: 1}
			}
			return core.Outcome{Value: a[x], Steps: 1}
		})
		rep, err := soundness(q, pol, dom, core.ObserveValue)
		if err != nil {
			return err
		}
		allZero := true
		for _, v := range a {
			if v != 0 {
				allZero = false
			}
		}
		// Over the finite domain the maximal sound mechanism is Q itself
		// when Q is constant, and the constant-Λ mechanism otherwise.
		maxAt0 := "Λ"
		if rep.Sound {
			maxAt0 = "0"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", tc.name, mark(allZero), mark(rep.Sound), maxAt0)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "M(0) = 0 exactly when ∀x A(x) = 0: an effective maximal-mechanism")
	fmt.Fprintln(w, "constructor would decide the (undecidable) all-zero question.")
	return nil
}

func runE15(w io.Writer) error {
	s, err := filesys.New(2)
	if err != nil {
		return err
	}
	pol := s.Policy()
	dom := s.Domain([]int64{0, 1, 2}, false)
	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tsound\tmechanism-property vs Q")
	for _, m := range []core.Mechanism{s.Gatekeeper(), s.Program()} {
		rep, err := soundness(m, pol, dom, core.ObserveValue)
		if err != nil {
			return err
		}
		ok, _, err := core.VerifyMechanism(m, s.Program(), dom)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", m.Name(), mark(rep.Sound), mark(ok))
	}
	return tw.Flush()
}

func runE17(w io.Writer) error {
	db, err := newStatDB()
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "guard\tq1 sum{0,1,2}\tq2 sum{1,2}\trecord 0 isolated")
	for _, mode := range statModes() {
		s := newStatSession(db, mode)
		r1 := s.Query([]int{0, 1, 2})
		r2 := s.Query([]int{1, 2})
		isolated := "no"
		if !r1.Violation && !r2.Violation {
			isolated = fmt.Sprintf("yes: %d", r1.Sum-r2.Sum)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", mode, statOutcome(r1), statOutcome(r2), isolated)
	}
	return tw.Flush()
}
