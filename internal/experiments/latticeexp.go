package experiments

import (
	"fmt"
	"io"

	"spm/internal/core"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Sound mechanisms form a lattice: union is join, intersection is meet",
		Paper: "Section 2 (remark after Theorem 1)",
		Run:   runE20,
	})
}

// runE20 exhibits the lattice structure on two incomparable sound
// mechanisms for Q(x1,x2) = x2 under allow(2): one passes when x2 is
// even, the other when x2 is small. Union passes where either does
// (the join), intersection where both do (the meet); all four are sound.
func runE20(w io.Writer) error {
	q := core.NewFunc("Q:x2", 2, func(in []int64) core.Outcome {
		return core.Outcome{Value: in[1], Steps: 1}
	})
	pol := core.NewAllow(2, 2)
	dom := core.Grid(2, 0, 1, 2, 3)
	gate := func(name string, pred func(int64) bool) core.Mechanism {
		return core.NewFunc(name, 2, func(in []int64) core.Outcome {
			if pred(in[1]) {
				o, _ := q.Run(in)
				return core.Outcome{Value: o.Value, Steps: 1}
			}
			return core.Outcome{Violation: true, Notice: name, Steps: 1}
		})
	}
	a := gate("pass-if-x2-even", func(v int64) bool { return v%2 == 0 })
	b := gate("pass-if-x2-small", func(v int64) bool { return v < 2 })
	join := core.MustUnion("A∨B", a, b)
	meet := core.MustIntersect("A∧B", a, b)

	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tsound\tpasses")
	for _, m := range []core.Mechanism{a, b, join, meet} {
		rep, err := soundness(m, pol, dom, core.CoarseNotices(core.ObserveValue))
		if err != nil {
			return err
		}
		pass, err := passes(m, dom)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\n", m.Name(), mark(rep.Sound), pass, dom.Size())
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	ab, err := core.Compare(a, b, dom)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "A %s B (incomparable members)\n", relSym(ab.Relation))
	for _, pair := range [][2]core.Mechanism{{join, a}, {join, b}, {meet, a}, {meet, b}} {
		cr, err := core.Compare(pair[0], pair[1], dom)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s %s %s\n", pair[0].Name(), relSym(cr.Relation), pair[1].Name())
	}
	return nil
}
