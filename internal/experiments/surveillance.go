package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/progen"
	"spm/internal/surveillance"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Surveillance vs high-water mark: M_s > M_h (surveillance forgets)",
		Paper: "Section 4, flowchart p. 48",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Surveillance is not maximal: M_max = Q sound while M_s always reports Λ",
		Paper: "Section 4, flowchart p. 49",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Soundness sweep over random programs (Theorems 3 and 3')",
		Paper: "Theorems 3, 3'",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Timing channel: constant value, revealing running time; M' closes it",
		Paper: "Section 2 timing program",
		Run:   runE8,
	})
}

func runE3(w io.Writer) error {
	q := flowchart.MustParse(progForgetful)
	J := lattice.NewIndexSet(2)
	dom := core.Grid(2, 0, 1, 2)
	ms := surveillance.MustMechanism(q, J, surveillance.Untimed)
	mh := surveillance.MustMechanism(q, J, surveillance.Monotone)

	tw := table(w)
	fmt.Fprintln(tw, "input\tQ\tM_s (surveillance)\tM_h (high-water)")
	if err := dom.Enumerate(func(in []int64) error {
		qo, err := core.FromProgram(q).Run(in)
		if err != nil {
			return err
		}
		so, err := ms.Run(in)
		if err != nil {
			return err
		}
		ho, err := mh.Run(in)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", core.FormatInputs(in), outcomeCell(qo), outcomeCell(so), outcomeCell(ho))
		return nil
	}); err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	cr, err := core.Compare(ms, mh, dom)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "relation: M_s %s M_h (pass %d vs %d of %d)\n",
		relSym(cr.Relation), cr.PassM1, cr.PassM2, cr.Checked)
	return nil
}

func outcomeCell(o core.Outcome) string {
	if o.Violation {
		return "Λ"
	}
	return fmt.Sprintf("%d", o.Value)
}

func runE4(w io.Writer) error {
	q := flowchart.MustParse(progBothArms)
	J := lattice.NewIndexSet(2)
	pol := core.NewAllowSet(2, J)
	dom := core.Grid(2, 0, 1, 2)
	ms := surveillance.MustMechanism(q, J, surveillance.Untimed)
	qm := core.FromProgram(q)

	msPass, err := passes(ms, dom)
	if err != nil {
		return err
	}
	rep, err := soundness(qm, pol, dom, core.ObserveValue)
	if err != nil {
		return err
	}
	qSound := rep.Sound
	cr, err := core.Compare(qm, ms, dom)
	if err != nil {
		return err
	}
	// The Theorem 2 maximal mechanism, tabulated over the domain, should
	// coincide with Q here (Q is sound, so nothing can beat it).
	max, err := core.Maximal(qm, pol, dom, core.ObserveValue)
	if err != nil {
		return err
	}
	maxPass, maxTotal := max.PassCount()
	agree, err := core.Compare(max, qm, dom)
	if err != nil {
		return err
	}
	// The direct maximality verdicts: Q checks as maximal, M_s does not.
	qMax, err := maximality(qm, qm, pol, dom, core.ObserveValue)
	if err != nil {
		return err
	}
	msMax, err := maximality(ms, qm, pol, dom, core.ObserveValue)
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tsound for allow(2)\tmaximal\tpasses")
	fmt.Fprintf(tw, "M_s\tyes (Thm 3)\t%s\t%d/%d\n", mark(msMax.Maximal), msPass, dom.Size())
	fmt.Fprintf(tw, "Q\t%s\t%s\t%d/%d\n", mark(qSound), mark(qMax.Maximal), dom.Size(), dom.Size())
	fmt.Fprintf(tw, "M_max (Thm 2 tabulation)\tyes\tyes\t%d/%d\n", maxPass, maxTotal)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "relation: Q %s M_s — surveillance is sound but not maximal; tabulated M_max %s Q\n",
		relSym(cr.Relation), relSym(agree.Relation))
	return nil
}

func runE7(w io.Writer) error {
	r := rand.New(rand.NewSource(1975))
	cfg := progen.DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	const trials = 25
	type row struct {
		variant string
		obs     core.Observation
		sound   int
		total   int
	}
	rows := []row{
		{"untimed M", core.ObserveValue, 0, 0},
		{"untimed M", core.ObserveValueAndTime, 0, 0},
		{"timed M'", core.ObserveValueAndTime, 0, 0},
	}
	variants := []surveillance.Variant{surveillance.Untimed, surveillance.Untimed, surveillance.Timed}
	for trial := 0; trial < trials; trial++ {
		q := progen.Generate(r, cfg)
		for _, J := range lattice.Subsets(2) {
			pol := core.NewAllowSet(2, J)
			for i := range rows {
				m, err := surveillance.Mechanism(q, J, variants[i])
				if err != nil {
					return err
				}
				rep, err := soundness(m, pol, dom, rows[i].obs)
				if err != nil {
					return err
				}
				rows[i].total++
				if rep.Sound {
					rows[i].sound++
				}
			}
		}
	}
	tw := table(w)
	fmt.Fprintln(tw, "mechanism\tobservation\tsound\texpected")
	expect := []string{"all (Thm 3)", "not all (time leaks)", "all (Thm 3')"}
	for i, rw := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%s\n", rw.variant, rw.obs.ObsName, rw.sound, rw.total, expect[i])
	}
	return tw.Flush()
}

func runE8(w io.Writer) error {
	q := flowchart.MustParse(progTiming)
	dom := core.Grid(1, 0, 1, 2, 3)
	pol := core.NewAllow(1)
	qm := core.FromProgram(q)
	ms := surveillance.MustMechanism(q, lattice.EmptySet, surveillance.Untimed)
	mp := surveillance.MustMechanism(q, lattice.EmptySet, surveillance.Timed)

	tw := table(w)
	fmt.Fprintln(tw, "x1\tQ value\tQ steps\tM steps\tM' outcome\tM' steps")
	if err := dom.Enumerate(func(in []int64) error {
		qo, err := qm.Run(in)
		if err != nil {
			return err
		}
		so, err := ms.Run(in)
		if err != nil {
			return err
		}
		po, err := mp.Run(in)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\t%d\n", in[0], qo.Value, qo.Steps, so.Steps, outcomeCell(po), po.Steps)
		return nil
	}); err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, tc := range []struct {
		name string
		m    core.Mechanism
		obs  core.Observation
	}{
		{"Q under value", qm, core.ObserveValue},
		{"Q under value+time", qm, core.ObserveValueAndTime},
		{"M (untimed) under value+time", ms, core.ObserveValueAndTime},
		{"M' (timed) under value+time", mp, core.ObserveValueAndTime},
	} {
		rep, err := soundness(tc.m, pol, dom, tc.obs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-32s sound=%s\n", tc.name, mark(rep.Sound))
	}
	return nil
}
