package experiments

import (
	"fmt"

	"spm/internal/querydb"
)

// The paper's flowchart programs, shared across experiments. Each constant
// names the figure or example it reproduces.

// progForgetful is the Section 4 flowchart (p. 48) separating surveillance
// from high-water mark.
const progForgetful = `
program forgetful
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

// progBothArms is the p. 49 flowchart showing surveillance is not maximal.
const progBothArms = `
program botharms
inputs x1 x2
    if x1 == 0 goto A else B
A:  y := x2
    halt
B:  y := x2
    halt
`

// progEx7 is Example 7: the if-then-else transform yields a maximal
// mechanism.
const progEx7 = `
program ex7
inputs x1 x2
    if x1 == 1 goto A else B
A:  r := 1
    goto J
B:  r := 2
    goto J
J:  y := 1
    halt
`

// progEx8 is Example 8: the transform makes the mechanism less complete.
const progEx8 = `
program ex8
inputs x1 x2
    if x2 == 1 goto A else B
A:  y := 1
    goto J
B:  y := x1
    goto J
J:  halt
`

// progEx9 is Example 9: specialisation beats whole-program certification.
const progEx9 = `
program ex9
inputs x1 x2
    if x1 == 0 goto A else B
A:  y := 1
    goto J
B:  y := x2
    goto J
J:  halt
`

// progTiming is the Section 2 constant-value program whose running time
// reveals its input.
const progTiming = `
program timing
inputs x1
Loop: if x1 == 0 goto Done else Body
Body: x1 := x1 - 1
      goto Loop
Done: y := 1
      halt
`

// progWhile drives the while/unroll transform experiment (E16).
const progWhile = `
program whileloop
inputs x1 x2
    r := x1
Loop: if r > 0 goto Body else Done
Body: r := r - 1
      goto Loop
Done: y := x2
      halt
`

// Statistical-database fixtures for E17.

func newStatDB() (*querydb.DB, error) {
	return querydb.NewDB([]int64{30, 50, 20, 40})
}

func statModes() []querydb.GuardMode {
	return []querydb.GuardMode{querydb.SizeOnly, querydb.HistoryAware}
}

func newStatSession(db *querydb.DB, mode querydb.GuardMode) *querydb.Session {
	return querydb.NewSession(db, mode, 2)
}

func statOutcome(r querydb.QueryResult) string {
	if r.Violation {
		return "Λ"
	}
	return fmt.Sprintf("%d", r.Sum)
}
