package experiments

import (
	"fmt"
	"io"

	"spm/internal/core"
	"spm/internal/fenton"
	"spm/internal/lattice"
	"spm/internal/logon"
	"spm/internal/paging"
	"spm/internal/tape"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Password work factor: n^k brute force vs n·k page-boundary attack",
		Paper: "Section 2 (classic attack)",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "Fenton halt semantics: halt-as-error leaks by negative inference",
		Paper: "Examples 1 and 6",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E13",
		Title: "One-way tape: reading block 2 is sound only with constant-time tab",
		Paper: "Section 2 tape program",
		Run:   runE13,
	})
}

func runE10(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "n\tk\tn^k\tbrute guesses\tattack guesses\tn·k bound\trecovered")
	type cfg struct {
		n      int
		stored string
	}
	cases := []cfg{
		{4, "cb"},
		{4, "dacb"},
		{8, "hfc"},
		{8, "hgfeh"[0:4] + "b"}, // "hgfeb", k=5
		{16, "ponm"},
		{16, "ponmlk"},
	}
	for _, tc := range cases {
		k := len(tc.stored)
		memA := paging.MustNew(64, 16)
		cA, err := logon.NewChecker(memA, []byte(tc.stored), 0)
		if err != nil {
			return err
		}
		attack, err := logon.PageBoundaryAttack(cA, tc.n)
		if err != nil {
			return err
		}
		memB := paging.MustNew(64, 16)
		cB, err := logon.NewChecker(memB, []byte(tc.stored), 0)
		if err != nil {
			return err
		}
		brute, err := logon.BruteForceAgainst(cB, tc.n)
		if err != nil {
			return err
		}
		pow := 1
		for i := 0; i < k; i++ {
			pow *= tc.n
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			tc.n, k, pow, brute.Guesses, attack.Guesses, tc.n*k, mark(attack.Found && brute.Found))
	}
	return tw.Flush()
}

func runE11(w io.Writer) error {
	leak := fenton.MustAssemble("leak", `
    brz r1 ZERO
    jmp JOIN
ZERO: halt
JOIN: halt
`)
	dom := core.Grid(1, 0, 1, 2)
	pol := core.NewAllow(1) // r1 is priv
	tw := table(w)
	fmt.Fprintln(tw, "halt semantics\tx=0 outcome\tx=1 outcome\tsound for allow()")
	for _, sem := range []fenton.HaltSemantics{fenton.HaltAsNoop, fenton.HaltAsError} {
		m, err := fenton.NewMechanism(leak, 1, lattice.EmptySet, sem)
		if err != nil {
			return err
		}
		o0, err := m.Run([]int64{0})
		if err != nil {
			return err
		}
		o1, err := m.Run([]int64{1})
		if err != nil {
			return err
		}
		rep, err := soundness(m, pol, dom, core.ObserveValue)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", sem, outcomeCell(o0), outcomeCell(o1), mark(rep.Sound))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "halt-as-error emits the message iff x = 0: the dog that did nothing in the nighttime.")
	return nil
}

func runE13(w io.Writer) error {
	pol := core.NewAllow(2, 2)
	dom := core.Domain{{5, 1234, 987654}, {7, 42}}
	tw := table(w)
	fmt.Fprintln(tw, "reader\tsound (value)\tsound (value+time)")
	for _, m := range []core.Mechanism{
		&tape.Reader{UseTab: false},
		&tape.Reader{UseTab: true, Cost: tape.TabLinear},
		&tape.Reader{UseTab: true, Cost: tape.TabConstant},
	} {
		rv, err := soundness(m, pol, dom, core.ObserveValue)
		if err != nil {
			return err
		}
		rt, err := soundness(m, pol, dom, core.ObserveValueAndTime)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", m.Name(), mark(rv.Sound), mark(rt.Sound))
	}
	return tw.Flush()
}
