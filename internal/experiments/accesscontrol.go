package experiments

import (
	"fmt"
	"io"

	"spm/internal/accesscontrol"
	"spm/internal/core"
	"spm/internal/lattice"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Access control is not information control: COPYFILE launders a forbidden READFILE",
		Paper: "Example 6",
		Run:   runE19,
	})
}

func runE19(w io.Writer) error {
	script := accesscontrol.MustScript("laundered", 2, accesscontrol.Copy(1, 2), accesscontrol.Read(2))
	protected := lattice.NewIndexSet(1)
	dom := core.Grid(2, 0, 1, 2)

	tw := table(w)
	fmt.Fprintln(tw, "monitor\toutcome on (7,9)\tsound for allow(2)")
	for _, mon := range []accesscontrol.Monitor{
		accesscontrol.NoMonitor, accesscontrol.AccessControl, accesscontrol.FlowControl,
	} {
		m, err := accesscontrol.NewMechanism(script, protected, mon)
		if err != nil {
			return err
		}
		o, err := m.Run([]int64{7, 9})
		if err != nil {
			return err
		}
		rep, err := soundness(m, m.Policy(), dom, core.ObserveValue)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", mon, outcomeCell(o), mark(rep.Sound))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "script: %s — no READFILE(1) is ever issued, yet access control releases file 1's contents\n", script)
	return nil
}
