// Package experiments regenerates every evaluation artifact of Jones &
// Lipton's paper as a text table: the worked examples (Ex. 1–9), the
// flowchart comparisons of Section 4, the theorems' demonstrations, and
// the Section 2 side-channel studies. Each registered Experiment names the
// paper artifact it reproduces; cmd/spm-experiments prints the full tables
// and the top-level bench_test.go measures one unit of work per experiment.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"spm/internal/check"
	"spm/internal/core"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the experiment identifier (e.g. "E3").
	ID string
	// Title is a one-line description.
	Title string
	// Paper identifies the paper artifact being reproduced.
	Paper string
	// Run regenerates the artifact, writing a table to w.
	Run func(w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// Numeric ID ordering: E2 < E10.
		return idKey(out[i].ID) < idKey(out[j].ID)
	})
	return out
}

func idKey(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, writing a titled section per
// experiment.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		fmt.Fprintf(w, "== %s: %s\n   (%s)\n\n", e.ID, e.Title, e.Paper)
		if err := e.Run(w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// table starts a tabwriter with the conventions used by all experiments.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// mark renders a boolean as the symbols used across the tables.
func mark(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// Every verdict in the tables goes through the unified check.Run entry
// point (parallel workers, compiled fast path for flowchart-backed
// mechanisms); the helpers below adapt it to the call shapes the
// experiments use. Experiments run to completion, so the context is
// Background.

// passes counts the inputs on which m returns real output. Every
// pass-count column in the tables goes through here.
func passes(m core.Mechanism, dom core.Domain) (int, error) {
	v, err := check.Run(context.Background(), check.Spec{
		Kind:      check.PassCount,
		Mechanism: m,
		Domain:    dom,
	})
	return v.Passes, err
}

// soundness decides whether m is sound for pol under obs over dom.
func soundness(m core.Mechanism, pol core.Policy, dom core.Domain, obs core.Observation) (core.SoundnessReport, error) {
	v, err := check.Run(context.Background(), check.Spec{
		Kind:        check.Soundness,
		Mechanism:   m,
		Policy:      pol,
		Domain:      dom,
		Observation: obs,
	})
	return v.SoundnessReport(), err
}

// maximality decides whether m is the Theorem 2 maximal sound mechanism
// for q and pol under obs over dom.
func maximality(m, q core.Mechanism, pol core.Policy, dom core.Domain, obs core.Observation) (core.MaximalityReport, error) {
	v, err := check.Run(context.Background(), check.Spec{
		Kind:        check.Maximality,
		Mechanism:   m,
		Program:     q,
		Policy:      pol,
		Domain:      dom,
		Observation: obs,
	})
	return v.MaximalityReport(), err
}
