// Package highwater implements the high-water-mark protection mechanism
// that Section 4 of Jones & Lipton compares against surveillance (the
// mechanism family of Weissman's ADEPT-50, the paper's reference [16]).
//
// High-water marking differs from surveillance in exactly one way: a
// variable's security class only ever rises. When a tainted variable is
// overwritten with clean data, surveillance forgets the old class but the
// high-water mark does not. The paper's p. 48 flowchart (package
// surveillance's progForgetful test program) exploits this: M_s > M_h,
// strictly.
//
// The implementation reuses the surveillance instrumentation engine with
// the Monotone update discipline; the resulting mechanism, like
// surveillance, is itself a flowchart program.
package highwater

import (
	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
)

// Instrument builds the high-water-mark protection mechanism for program q
// and policy allow(J) as a new flowchart program.
func Instrument(q *flowchart.Program, allowed lattice.IndexSet) (*flowchart.Program, error) {
	return surveillance.Instrument(q, allowed, surveillance.Monotone)
}

// Mechanism instruments q and wraps the result as a core.Mechanism.
func Mechanism(q *flowchart.Program, allowed lattice.IndexSet) (core.Mechanism, error) {
	return surveillance.Mechanism(q, allowed, surveillance.Monotone)
}

// MustMechanism is Mechanism but panics on error.
func MustMechanism(q *flowchart.Program, allowed lattice.IndexSet) core.Mechanism {
	return surveillance.MustMechanism(q, allowed, surveillance.Monotone)
}
