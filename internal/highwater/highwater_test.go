package highwater

import (
	"testing"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
)

const progForgetful = `
program forgetful
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

func TestHighWaterSoundAndMonotone(t *testing.T) {
	q := flowchart.MustParse(progForgetful)
	dom := core.Grid(2, 0, 1, 2)
	for _, J := range lattice.Subsets(2) {
		m := MustMechanism(q, J)
		pol := core.NewAllowSet(2, J)
		rep, err := core.CheckSoundness(m, pol, dom, core.ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sound {
			t.Errorf("high-water unsound for %s: %s", pol.Name(), rep)
		}
	}
}

func TestHighWaterStickyClass(t *testing.T) {
	// Overwriting r with the constant 0 does not lower r's class, so
	// every run under allow(2) is a violation.
	q := flowchart.MustParse(progForgetful)
	m := MustMechanism(q, lattice.NewIndexSet(2))
	err := core.Grid(2, 0, 1, 2).Enumerate(func(in []int64) error {
		o, err := m.Run(in)
		if err != nil {
			return err
		}
		if !o.Violation {
			t.Errorf("M_h%v = %v, want Λ (high water never recedes)", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHighWaterPassesCleanPrograms(t *testing.T) {
	// A program that never touches disallowed data passes.
	q := flowchart.MustParse(`
inputs x1 x2
    y := x2 + 1
    halt
`)
	m := MustMechanism(q, lattice.NewIndexSet(2))
	o, err := m.Run([]int64{9, 4})
	if err != nil {
		t.Fatal(err)
	}
	if o.Violation || o.Value != 5 {
		t.Errorf("clean program blocked: %v", o)
	}
}

func TestInstrumentNames(t *testing.T) {
	q := flowchart.MustParse(progForgetful)
	p, err := Instrument(q, lattice.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name == q.Name {
		t.Error("instrumented program should carry a distinct name")
	}
}
