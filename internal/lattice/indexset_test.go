package lattice

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIndexSet(t *testing.T) {
	s := NewIndexSet(1, 3, 5)
	for _, i := range []int{1, 3, 5} {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false, want true", i)
		}
	}
	for _, i := range []int{2, 4, 6, 63} {
		if s.Contains(i) {
			t.Errorf("Contains(%d) = true, want false", i)
		}
	}
	if got := s.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
}

func TestEmptySet(t *testing.T) {
	if !EmptySet.IsEmpty() {
		t.Error("EmptySet.IsEmpty() = false")
	}
	if EmptySet.Len() != 0 {
		t.Errorf("EmptySet.Len() = %d", EmptySet.Len())
	}
	if got := EmptySet.String(); got != "{}" {
		t.Errorf("EmptySet.String() = %q, want {}", got)
	}
	if !EmptySet.SubsetOf(NewIndexSet(1)) {
		t.Error("∅ ⊆ {1} should hold")
	}
}

func TestAllInputs(t *testing.T) {
	tests := []struct {
		k    int
		want []int
	}{
		{0, nil},
		{1, []int{1}},
		{3, []int{1, 2, 3}},
	}
	for _, tc := range tests {
		got := AllInputs(tc.k).Indices()
		if len(got) != len(tc.want) {
			t.Errorf("AllInputs(%d) = %v, want %v", tc.k, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("AllInputs(%d) = %v, want %v", tc.k, got, tc.want)
				break
			}
		}
	}
}

func TestAllInputsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AllInputs(64) did not panic")
		}
	}()
	AllInputs(64)
}

func TestAddRemove(t *testing.T) {
	s := EmptySet.Add(7)
	if !s.Contains(7) {
		t.Error("Add(7) lost the element")
	}
	s = s.Remove(7)
	if s.Contains(7) {
		t.Error("Remove(7) did not remove the element")
	}
	// Removing an absent element is a no-op.
	if got := NewIndexSet(1).Remove(2); got != NewIndexSet(1) {
		t.Errorf("Remove absent = %v", got)
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	for _, i := range []int{0, -1, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", i)
				}
			}()
			EmptySet.Add(i)
		}()
	}
}

func TestContainsOutOfRangeIsFalse(t *testing.T) {
	s := NewIndexSet(1)
	if s.Contains(0) || s.Contains(-5) || s.Contains(64) {
		t.Error("Contains out of range should be false, not panic")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewIndexSet(1, 2, 3)
	b := NewIndexSet(3, 4)
	if got := a.Union(b); got != NewIndexSet(1, 2, 3, 4) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewIndexSet(3) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != NewIndexSet(1, 2) {
		t.Errorf("Minus = %v", got)
	}
	if !NewIndexSet(1, 2).SubsetOf(a) {
		t.Error("{1,2} ⊆ {1,2,3} should hold")
	}
	if b.SubsetOf(a) {
		t.Error("{3,4} ⊆ {1,2,3} should not hold")
	}
}

func TestMaskRoundTrip(t *testing.T) {
	s := NewIndexSet(1, 5, 63)
	if got := FromMask(s.Mask()); got != s {
		t.Errorf("FromMask(Mask()) = %v, want %v", got, s)
	}
	// Bit 0 is stripped.
	if got := FromMask(1); got != EmptySet {
		t.Errorf("FromMask(1) = %v, want {}", got)
	}
}

func TestStringAndParse(t *testing.T) {
	cases := []IndexSet{EmptySet, NewIndexSet(1), NewIndexSet(2, 7), NewIndexSet(1, 2, 3, 10)}
	for _, s := range cases {
		got, err := ParseIndexSet(s.String())
		if err != nil {
			t.Errorf("ParseIndexSet(%q): %v", s.String(), err)
			continue
		}
		if got != s {
			t.Errorf("round trip %q = %v", s.String(), got)
		}
	}
}

func TestParseIndexSetErrors(t *testing.T) {
	for _, text := range []string{"", "1,2", "{1", "1}", "{a}", "{0}", "{64}", "{1,,2}"} {
		if _, err := ParseIndexSet(text); err == nil {
			t.Errorf("ParseIndexSet(%q) succeeded, want error", text)
		}
	}
	// Whitespace tolerated.
	got, err := ParseIndexSet(" { 1 , 2 } ")
	if err != nil || got != NewIndexSet(1, 2) {
		t.Errorf("ParseIndexSet with spaces = %v, %v", got, err)
	}
}

func TestSubsets(t *testing.T) {
	subs := Subsets(3)
	if len(subs) != 8 {
		t.Fatalf("Subsets(3) has %d entries, want 8", len(subs))
	}
	seen := map[IndexSet]bool{}
	for _, s := range subs {
		if seen[s] {
			t.Errorf("duplicate subset %v", s)
		}
		seen[s] = true
		if !s.SubsetOf(AllInputs(3)) {
			t.Errorf("subset %v not within universe", s)
		}
	}
	if !seen[EmptySet] || !seen[AllInputs(3)] {
		t.Error("Subsets must include ∅ and the universe")
	}
}

func TestSubsetsZero(t *testing.T) {
	subs := Subsets(0)
	if len(subs) != 1 || subs[0] != EmptySet {
		t.Errorf("Subsets(0) = %v, want [∅]", subs)
	}
}

// randomSet draws a set over {1..12} for property tests.
func randomSet(r *rand.Rand) IndexSet {
	return FromMask(int64(r.Uint64()) & AllInputs(12).Mask())
}

func TestIndexSetLatticeProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Join is commutative, associative, idempotent; subset order agrees.
	prop := func(am, bm, cm uint16) bool {
		a := FromMask(int64(am) << 1)
		b := FromMask(int64(bm) << 1)
		c := FromMask(int64(cm) << 1)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Union(b.Union(c)) != a.Union(b).Union(c) {
			return false
		}
		if a.Union(a) != a {
			return false
		}
		// Absorption with meet.
		if a.Union(a.Intersect(b)) != a {
			return false
		}
		if a.Intersect(a.Union(b)) != a {
			return false
		}
		// a ⊆ a∪b and a∩b ⊆ a.
		if !a.SubsetOf(a.Union(b)) || !a.Intersect(b).SubsetOf(a) {
			return false
		}
		// SubsetOf ⟺ union is absorbing.
		if a.SubsetOf(b) != (a.Union(b) == b) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestIndicesSorted(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		s := randomSet(r)
		idx := s.Indices()
		for i := 1; i < len(idx); i++ {
			if idx[i-1] >= idx[i] {
				t.Fatalf("Indices() not strictly increasing: %v", idx)
			}
		}
		if len(idx) != s.Len() {
			t.Fatalf("len(Indices()) = %d, Len() = %d", len(idx), s.Len())
		}
	}
}
