package lattice

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a security class in a finite lattice of classes, identified by a
// small integer handle issued by its Lattice.
type Class int

// Lattice is a finite lattice of named security classes with an explicit
// flow relation, after Denning's lattice model (the paper's reference [2]).
// It supports the two-point {null ≤ priv} lattice of Fenton's machine, the
// linear Unclassified ≤ ... ≤ TopSecret chains of military policy, and
// arbitrary finite lattices built from an explicit cover relation.
//
// The zero value is not usable; construct with NewLattice or a helper.
type Lattice struct {
	names []string
	index map[string]Class
	// leq[a][b] reports a ≤ b (information may flow from a to b).
	leq [][]bool
	// join[a][b] is the least upper bound of a and b.
	join [][]Class
	// meet[a][b] is the greatest lower bound of a and b.
	meet [][]Class
	bot  Class
	top  Class
}

// NewLattice builds a lattice from class names and a cover relation given as
// pairs (lo, hi) meaning lo ≤ hi. The reflexive-transitive closure is taken
// automatically. NewLattice verifies the result is a lattice: a partial
// order in which every pair of classes has a unique least upper bound and a
// unique greatest lower bound, with global bottom and top.
func NewLattice(names []string, covers [][2]string) (*Lattice, error) {
	n := len(names)
	if n == 0 {
		return nil, fmt.Errorf("lattice: no classes")
	}
	l := &Lattice{names: append([]string(nil), names...), index: make(map[string]Class, n)}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("lattice: empty class name at position %d", i)
		}
		if _, dup := l.index[name]; dup {
			return nil, fmt.Errorf("lattice: duplicate class name %q", name)
		}
		l.index[name] = Class(i)
	}
	l.leq = make([][]bool, n)
	for i := range l.leq {
		l.leq[i] = make([]bool, n)
		l.leq[i][i] = true
	}
	for _, c := range covers {
		lo, ok := l.index[c[0]]
		if !ok {
			return nil, fmt.Errorf("lattice: unknown class %q in cover relation", c[0])
		}
		hi, ok := l.index[c[1]]
		if !ok {
			return nil, fmt.Errorf("lattice: unknown class %q in cover relation", c[1])
		}
		l.leq[lo][hi] = true
	}
	// Transitive closure (Warshall).
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !l.leq[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if l.leq[k][j] {
					l.leq[i][j] = true
				}
			}
		}
	}
	// Antisymmetry.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && l.leq[i][j] && l.leq[j][i] {
				return nil, fmt.Errorf("lattice: cycle between %q and %q", names[i], names[j])
			}
		}
	}
	if err := l.computeBounds(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Lattice) computeBounds() error {
	n := len(l.names)
	l.join = make([][]Class, n)
	l.meet = make([][]Class, n)
	for i := range l.join {
		l.join[i] = make([]Class, n)
		l.meet[i] = make([]Class, n)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			j, err := l.uniqueBound(Class(a), Class(b), true)
			if err != nil {
				return err
			}
			l.join[a][b] = j
			m, err := l.uniqueBound(Class(a), Class(b), false)
			if err != nil {
				return err
			}
			l.meet[a][b] = m
		}
	}
	// Bottom: the unique class below all others; top: above all others.
	bot, top := -1, -1
	for c := 0; c < n; c++ {
		isBot, isTop := true, true
		for d := 0; d < n; d++ {
			if !l.leq[c][d] {
				isBot = false
			}
			if !l.leq[d][c] {
				isTop = false
			}
		}
		if isBot {
			bot = c
		}
		if isTop {
			top = c
		}
	}
	if bot < 0 || top < 0 {
		return fmt.Errorf("lattice: missing global bottom or top")
	}
	l.bot, l.top = Class(bot), Class(top)
	return nil
}

// uniqueBound finds the least upper bound (upper=true) or greatest lower
// bound (upper=false) of a and b, erroring if it does not exist or is not
// unique.
func (l *Lattice) uniqueBound(a, b Class, upper bool) (Class, error) {
	n := len(l.names)
	var candidates []Class
	for c := 0; c < n; c++ {
		ok := false
		if upper {
			ok = l.leq[a][c] && l.leq[b][c]
		} else {
			ok = l.leq[c][a] && l.leq[c][b]
		}
		if ok {
			candidates = append(candidates, Class(c))
		}
	}
	if len(candidates) == 0 {
		return 0, fmt.Errorf("lattice: classes %q and %q have no common bound", l.names[a], l.names[b])
	}
	// The extremal candidate must dominate (or be dominated by) all others.
	for _, c := range candidates {
		extremal := true
		for _, d := range candidates {
			if upper && !l.leq[c][d] {
				extremal = false
				break
			}
			if !upper && !l.leq[d][c] {
				extremal = false
				break
			}
		}
		if extremal {
			return c, nil
		}
	}
	kind := "least upper"
	if !upper {
		kind = "greatest lower"
	}
	return 0, fmt.Errorf("lattice: classes %q and %q have no unique %s bound", l.names[a], l.names[b], kind)
}

// TwoPoint returns the lattice {lo ≤ hi}; Fenton's machine uses
// TwoPoint("null", "priv").
func TwoPoint(lo, hi string) *Lattice {
	l, err := NewLattice([]string{lo, hi}, [][2]string{{lo, hi}})
	if err != nil {
		panic(err) // cannot happen for a two-point chain
	}
	return l
}

// Chain returns a linear lattice with the given names ordered from bottom to
// top, e.g. Chain("U", "C", "S", "TS").
func Chain(names ...string) (*Lattice, error) {
	covers := make([][2]string, 0, len(names))
	for i := 0; i+1 < len(names); i++ {
		covers = append(covers, [2]string{names[i], names[i+1]})
	}
	return NewLattice(names, covers)
}

// Class returns the handle for a named class.
func (l *Lattice) Class(name string) (Class, bool) {
	c, ok := l.index[name]
	return c, ok
}

// MustClass is Class but panics on unknown names; for literals in tests and
// examples.
func (l *Lattice) MustClass(name string) Class {
	c, ok := l.index[name]
	if !ok {
		panic(fmt.Sprintf("lattice: unknown class %q", name))
	}
	return c
}

// Name returns the name of a class handle.
func (l *Lattice) Name(c Class) string {
	if int(c) < 0 || int(c) >= len(l.names) {
		return fmt.Sprintf("<invalid class %d>", int(c))
	}
	return l.names[c]
}

// Size returns the number of classes.
func (l *Lattice) Size() int { return len(l.names) }

// Bottom returns the global bottom class (public information).
func (l *Lattice) Bottom() Class { return l.bot }

// Top returns the global top class.
func (l *Lattice) Top() Class { return l.top }

// CanFlow reports whether information may flow from class a to class b,
// i.e. a ≤ b in the lattice.
func (l *Lattice) CanFlow(a, b Class) bool { return l.leq[a][b] }

// Join returns a ⊔ b, the class of information derived from both a and b.
func (l *Lattice) Join(a, b Class) Class { return l.join[a][b] }

// Meet returns a ⊓ b.
func (l *Lattice) Meet(a, b Class) Class { return l.meet[a][b] }

// JoinAll folds Join over a non-empty list, or returns Bottom for an empty
// one (the identity of join).
func (l *Lattice) JoinAll(cs ...Class) Class {
	acc := l.bot
	for _, c := range cs {
		acc = l.Join(acc, c)
	}
	return acc
}

// Classes returns all class handles in issue order.
func (l *Lattice) Classes() []Class {
	out := make([]Class, l.Size())
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// String renders the lattice as its Hasse-style cover list.
func (l *Lattice) String() string {
	var pairs []string
	n := len(l.names)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b || !l.leq[a][b] {
				continue
			}
			// Report only covers: no c strictly between a and b.
			cover := true
			for c := 0; c < n; c++ {
				if c != a && c != b && l.leq[a][c] && l.leq[c][b] {
					cover = false
					break
				}
			}
			if cover {
				pairs = append(pairs, l.names[a]+"<"+l.names[b])
			}
		}
	}
	sort.Strings(pairs)
	return "lattice(" + strings.Join(pairs, ", ") + ")"
}
