// Package lattice provides the label lattices used throughout the library.
//
// Two lattices appear in Jones & Lipton's paper. The first, used by the
// surveillance protection mechanism of Section 3, is the powerset lattice of
// input indices {1..k}: the surveillance variable v̄ attached to a program
// variable v holds the set of input indices that may have affected v's
// current value. The second, from Denning's lattice model of secure
// information flow (the paper's reference [2]), is an arbitrary finite
// lattice of security classes; it underlies the high-water-mark mechanism
// and static certification.
package lattice

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxIndex is the largest input index an IndexSet can hold. Input indices
// are 1-based, matching the paper's x1..xk notation.
const MaxIndex = 63

// IndexSet is a subset of the input indices {1..MaxIndex}, represented as a
// bitmask so that set union is a single OR instruction. This is exactly the
// value domain of the paper's surveillance variables, and the bitmask
// representation is what lets the instrumented program of Section 3 remain
// an ordinary flowchart program over integers.
type IndexSet uint64

// EmptySet is the bottom element of the index-set lattice (the paper's ∅,
// written D̸ in the scanned text).
const EmptySet IndexSet = 0

// NewIndexSet builds the set {indices...}. Indices outside [1, MaxIndex]
// cause a panic: they indicate a programming error, since programs have a
// statically known arity.
func NewIndexSet(indices ...int) IndexSet {
	var s IndexSet
	for _, i := range indices {
		s = s.Add(i)
	}
	return s
}

// AllInputs returns the full set {1..k}.
func AllInputs(k int) IndexSet {
	if k < 0 || k > MaxIndex {
		panic(fmt.Sprintf("lattice: arity %d out of range [0,%d]", k, MaxIndex))
	}
	if k == 0 {
		return 0
	}
	return IndexSet((uint64(1)<<uint(k) - 1) << 1)
}

// Add returns s ∪ {i}.
func (s IndexSet) Add(i int) IndexSet {
	if i < 1 || i > MaxIndex {
		panic(fmt.Sprintf("lattice: index %d out of range [1,%d]", i, MaxIndex))
	}
	return s | 1<<uint(i)
}

// Remove returns s \ {i}.
func (s IndexSet) Remove(i int) IndexSet {
	if i < 1 || i > MaxIndex {
		panic(fmt.Sprintf("lattice: index %d out of range [1,%d]", i, MaxIndex))
	}
	return s &^ (1 << uint(i))
}

// Contains reports whether i ∈ s.
func (s IndexSet) Contains(i int) bool {
	if i < 1 || i > MaxIndex {
		return false
	}
	return s&(1<<uint(i)) != 0
}

// Union returns s ∪ t, the lattice join.
func (s IndexSet) Union(t IndexSet) IndexSet { return s | t }

// Intersect returns s ∩ t, the lattice meet.
func (s IndexSet) Intersect(t IndexSet) IndexSet { return s & t }

// Minus returns s \ t.
func (s IndexSet) Minus(t IndexSet) IndexSet { return s &^ t }

// SubsetOf reports whether s ⊆ t. Soundness of the surveillance mechanism
// reduces to checks of the form v̄ ∪ C̄ ⊆ J.
func (s IndexSet) SubsetOf(t IndexSet) bool { return s&^t == 0 }

// IsEmpty reports whether s = ∅.
func (s IndexSet) IsEmpty() bool { return s == 0 }

// Len returns |s|.
func (s IndexSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Indices returns the members of s in increasing order.
func (s IndexSet) Indices() []int {
	out := make([]int, 0, s.Len())
	for i := 1; i <= MaxIndex; i++ {
		if s.Contains(i) {
			out = append(out, i)
		}
	}
	return out
}

// Mask returns the raw bitmask. The surveillance transformation embeds this
// value as an integer constant in the instrumented flowchart.
func (s IndexSet) Mask() int64 { return int64(s) }

// FromMask reconstructs an IndexSet from a raw bitmask, discarding bit 0
// (index 0 does not exist; inputs are 1-based).
func FromMask(m int64) IndexSet { return IndexSet(uint64(m)) &^ 1 }

// String renders the set in the paper's notation, e.g. "{1,3}".
func (s IndexSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for n, i := range s.Indices() {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", i)
	}
	b.WriteByte('}')
	return b.String()
}

// ParseIndexSet parses the String form: "{}", "{1}", "{1,3}". Whitespace
// around elements is tolerated.
func ParseIndexSet(text string) (IndexSet, error) {
	t := strings.TrimSpace(text)
	if len(t) < 2 || t[0] != '{' || t[len(t)-1] != '}' {
		return 0, fmt.Errorf("lattice: %q is not an index set (want {i,j,...})", text)
	}
	inner := strings.TrimSpace(t[1 : len(t)-1])
	if inner == "" {
		return EmptySet, nil
	}
	var s IndexSet
	for _, part := range strings.Split(inner, ",") {
		var i int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &i); err != nil {
			return 0, fmt.Errorf("lattice: bad index %q in %q", part, text)
		}
		if i < 1 || i > MaxIndex {
			return 0, fmt.Errorf("lattice: index %d out of range [1,%d]", i, MaxIndex)
		}
		s = s.Add(i)
	}
	return s, nil
}

// Subsets enumerates every subset of the universe {1..k} in mask order.
// It is used by exhaustive soundness sweeps over all allow(J) policies.
func Subsets(k int) []IndexSet {
	universe := AllInputs(k)
	// Enumerate submasks of universe including ∅.
	out := make([]IndexSet, 0, 1<<uint(k))
	out = append(out, EmptySet)
	for sub := universe; sub != 0; sub = (sub - 1) & universe {
		out = append(out, sub)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
