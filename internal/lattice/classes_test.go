package lattice

import (
	"strings"
	"testing"
)

func TestTwoPoint(t *testing.T) {
	l := TwoPoint("null", "priv")
	null := l.MustClass("null")
	priv := l.MustClass("priv")
	if l.Bottom() != null || l.Top() != priv {
		t.Fatalf("bottom/top = %s/%s", l.Name(l.Bottom()), l.Name(l.Top()))
	}
	if !l.CanFlow(null, priv) {
		t.Error("null → priv should be allowed")
	}
	if l.CanFlow(priv, null) {
		t.Error("priv → null should be forbidden")
	}
	if l.Join(null, priv) != priv {
		t.Error("null ⊔ priv ≠ priv")
	}
	if l.Meet(null, priv) != null {
		t.Error("null ⊓ priv ≠ null")
	}
}

func TestChain(t *testing.T) {
	l, err := Chain("U", "C", "S", "TS")
	if err != nil {
		t.Fatal(err)
	}
	u, c, s, ts := l.MustClass("U"), l.MustClass("C"), l.MustClass("S"), l.MustClass("TS")
	if !l.CanFlow(u, ts) || !l.CanFlow(c, s) {
		t.Error("chain flow up should hold")
	}
	if l.CanFlow(ts, u) || l.CanFlow(s, c) {
		t.Error("chain flow down should fail")
	}
	if l.Join(c, s) != s || l.Meet(c, s) != c {
		t.Error("chain join/meet wrong")
	}
	if l.Size() != 4 {
		t.Errorf("Size() = %d", l.Size())
	}
}

func TestDiamondLattice(t *testing.T) {
	l, err := NewLattice(
		[]string{"bot", "left", "right", "top"},
		[][2]string{{"bot", "left"}, {"bot", "right"}, {"left", "top"}, {"right", "top"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	left, right := l.MustClass("left"), l.MustClass("right")
	if l.CanFlow(left, right) || l.CanFlow(right, left) {
		t.Error("left and right should be incomparable")
	}
	if got := l.Join(left, right); l.Name(got) != "top" {
		t.Errorf("left ⊔ right = %s, want top", l.Name(got))
	}
	if got := l.Meet(left, right); l.Name(got) != "bot" {
		t.Errorf("left ⊓ right = %s, want bot", l.Name(got))
	}
	if got := l.JoinAll(left, right, l.Bottom()); l.Name(got) != "top" {
		t.Errorf("JoinAll = %s", l.Name(got))
	}
	if got := l.JoinAll(); got != l.Bottom() {
		t.Errorf("JoinAll() = %s, want bottom", l.Name(got))
	}
}

func TestNewLatticeErrors(t *testing.T) {
	if _, err := NewLattice(nil, nil); err == nil {
		t.Error("empty lattice accepted")
	}
	if _, err := NewLattice([]string{"a", "a"}, nil); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewLattice([]string{"a", ""}, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewLattice([]string{"a", "b"}, [][2]string{{"a", "c"}}); err == nil {
		t.Error("unknown cover class accepted")
	}
	if _, err := NewLattice([]string{"a", "b"}, [][2]string{{"a", "b"}, {"b", "a"}}); err == nil {
		t.Error("cyclic order accepted")
	}
	// Two incomparable elements without top/bottom: not a lattice.
	if _, err := NewLattice([]string{"a", "b"}, nil); err == nil {
		t.Error("orderless two-point set accepted as lattice")
	}
	// M-shaped poset: a,b below both c,d — join of a,b not unique.
	_, err := NewLattice(
		[]string{"a", "b", "c", "d", "bot", "top"},
		[][2]string{
			{"bot", "a"}, {"bot", "b"},
			{"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"},
			{"c", "top"}, {"d", "top"},
		},
	)
	if err == nil {
		t.Error("poset with non-unique bounds accepted as lattice")
	}
}

func TestClassLookup(t *testing.T) {
	l := TwoPoint("null", "priv")
	if _, ok := l.Class("nothere"); ok {
		t.Error("Class on unknown name should report !ok")
	}
	if c, ok := l.Class("priv"); !ok || l.Name(c) != "priv" {
		t.Error("Class round trip failed")
	}
	if got := l.Name(Class(99)); !strings.Contains(got, "invalid") {
		t.Errorf("Name of bad handle = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustClass on unknown name did not panic")
		}
	}()
	l.MustClass("nothere")
}

func TestLatticeString(t *testing.T) {
	l := TwoPoint("null", "priv")
	got := l.String()
	if !strings.Contains(got, "null<priv") {
		t.Errorf("String() = %q, want cover null<priv", got)
	}
}

func TestClasses(t *testing.T) {
	l, err := Chain("a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	cs := l.Classes()
	if len(cs) != 3 {
		t.Fatalf("Classes() returned %d handles", len(cs))
	}
	// Join/meet are total over all pairs and respect order.
	for _, a := range cs {
		for _, b := range cs {
			j, m := l.Join(a, b), l.Meet(a, b)
			if !l.CanFlow(a, j) || !l.CanFlow(b, j) {
				t.Errorf("join %s⊔%s not above operands", l.Name(a), l.Name(b))
			}
			if !l.CanFlow(m, a) || !l.CanFlow(m, b) {
				t.Errorf("meet %s⊓%s not below operands", l.Name(a), l.Name(b))
			}
		}
	}
}
