package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func key(n byte) Key {
	return Key{
		Fingerprint: string([]byte{'a' + n}) + "bcdef",
		Policy:      "allow",
		Variant:     "untimed",
		Domain:      "grid(2;0,1)",
		Count:       8,
	}
}

func TestVerdictRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	k := key(0)
	if _, ok := s.Verdict(k); ok {
		t.Fatal("empty store returned a verdict")
	}
	want := json.RawMessage(`{"kind":"soundness","sound":true,"checked":8}`)
	if err := s.PutVerdict(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Verdict(k)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("Verdict = %s, %v; want %s", got, ok, want)
	}
	// A different shard of the same check is a different key.
	other := k
	other.Offset = 4
	if _, ok := s.Verdict(other); ok {
		t.Fatal("shard-distinct key hit the wrong verdict")
	}

	// Survives a close/reopen cycle.
	s.Close()
	s2 := open(t, dir)
	got, ok = s2.Verdict(k)
	if !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("after reopen: Verdict = %s, %v; want %s", got, ok, want)
	}
	st := s2.Stats()
	if st.Verdicts != 1 || st.Hits != 1 {
		t.Errorf("stats after reopen = %+v", st)
	}
}

func TestPendingLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	p := Pending{ID: "job-3", Key: key(1), Payload: json.RawMessage(`{"source":"x := 1"}`)}
	if err := s.PutPending(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Cursor("job-3", 40); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint("job-3", json.RawMessage(`{"cursor":64,"partial":{"kind":"soundness"}}`), 64); err != nil {
		t.Fatal(err)
	}
	if err := s.Cursor("job-3", 80); err != nil {
		t.Fatal(err)
	}

	// Unknown-job checkpoints are errors — they'd otherwise be silently lost.
	if err := s.Checkpoint("job-99", nil, 1); err == nil {
		t.Error("Checkpoint for unknown job succeeded")
	}
	if err := s.Cursor("job-99", 1); err == nil {
		t.Error("Cursor for unknown job succeeded")
	}

	// Simulate a crash: reopen without ClearPending.
	s.Close()
	s2 := open(t, dir)
	jobs := s2.PendingJobs()
	if len(jobs) != 1 {
		t.Fatalf("PendingJobs = %v, want one", jobs)
	}
	got := jobs[0]
	if got.ID != "job-3" || got.Key != p.Key || string(got.Payload) != string(p.Payload) {
		t.Errorf("recovered pending = %+v, want %+v", got, p)
	}
	if got.Cursor != 80 {
		t.Errorf("recovered cursor = %d, want 80 (fine cursor past last checkpoint)", got.Cursor)
	}
	var ck struct{ Cursor int64 }
	if err := json.Unmarshal(got.Checkpoint, &ck); err != nil || ck.Cursor != 64 {
		t.Errorf("recovered checkpoint = %s (err %v), want cursor 64", got.Checkpoint, err)
	}

	// Finish the job: clear survives reopen.
	if err := s2.ClearPending("job-3"); err != nil {
		t.Fatal(err)
	}
	if err := s2.ClearPending("job-3"); err != nil {
		t.Errorf("double clear: %v", err)
	}
	s2.Close()
	s3 := open(t, dir)
	if jobs := s3.PendingJobs(); len(jobs) != 0 {
		t.Fatalf("cleared job resurrected: %v", jobs)
	}
}

func TestTornTailIsDropped(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.PutVerdict(key(0), json.RawMessage(`{"sound":true}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: a partial record with no newline.
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"verdict","key":{"fingerprint":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir)
	if _, ok := s2.Verdict(key(0)); !ok {
		t.Fatal("intact record lost with the torn tail")
	}
	if st := s2.Stats(); st.Verdicts != 1 {
		t.Errorf("stats = %+v, want exactly the intact verdict", st)
	}
	// The store must still be appendable after truncating the tail.
	if err := s2.PutVerdict(key(1), json.RawMessage(`{"sound":false}`)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := open(t, dir)
	if _, ok := s3.Verdict(key(1)); !ok {
		t.Fatal("append after torn-tail recovery lost")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	p := Pending{ID: "job-1", Key: key(2)}
	if err := s.PutPending(p); err != nil {
		t.Fatal(err)
	}
	// Flood the log with superseded cursor records.
	for i := int64(1); i <= 200; i++ {
		if err := s.Cursor("job-1", i*8); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutVerdict(key(3), json.RawMessage(`{"sound":true}`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	before, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if st := s2.Stats(); !st.Compacted {
		t.Fatal("cursor-flooded log not compacted on open")
	}
	after, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log: %d → %d bytes", before.Size(), after.Size())
	}
	// Live state survives the rewrite.
	if _, ok := s2.Verdict(key(3)); !ok {
		t.Fatal("verdict lost in compaction")
	}
	jobs := s2.PendingJobs()
	if len(jobs) != 1 || jobs[0].ID != "job-1" || jobs[0].Cursor != 1600 {
		t.Fatalf("pending state after compaction = %+v", jobs)
	}
}

func TestStatsCounters(t *testing.T) {
	s := open(t, t.TempDir())
	k := key(4)
	s.Verdict(k) // miss
	if err := s.PutVerdict(k, json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	s.Verdict(k) // hit
	s.Verdict(k) // hit
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Verdicts != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 1 verdict", st)
	}
	if st.BytesAppended == 0 {
		t.Error("BytesAppended not counted")
	}
}

func TestClosedStore(t *testing.T) {
	s := open(t, t.TempDir())
	s.Close()
	if err := s.PutVerdict(key(5), json.RawMessage(`{}`)); err != ErrClosed {
		t.Errorf("PutVerdict on closed store: %v, want ErrClosed", err)
	}
	if err := s.Sync(); err != ErrClosed {
		t.Errorf("Sync on closed store: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestKeyID(t *testing.T) {
	a := Key{Fingerprint: "f", Policy: "p", Variant: "v", Domain: "d", Offset: 1, Count: 2}
	b := a
	b.Count = 3
	if a.ID() == b.ID() {
		t.Error("distinct keys share an ID")
	}
	if a.ID() != a.ID() {
		t.Error("ID not deterministic")
	}
}
