// Package store is the single-binary persistent verdict store behind
// `spm serve -store`: an append-only JSON-line log plus an in-memory
// index, embedded in the server process — no external database.
//
// Two kinds of state live in the log:
//
//   - Verdicts, content-addressed by Key — the check's canonical
//     fingerprint, policy, variant, domain and shard — so a re-submission
//     of work the store has already decided is answered without running
//     anything. Verdict records are fsync'd: once PutVerdict returns, the
//     verdict survives a crash.
//
//   - Pending jobs: the admission payload plus the latest sweep
//     checkpoint of a job that was running when the process died. On
//     restart the server re-enqueues each pending job from its
//     checkpoint cursor instead of from zero. Checkpoints are written
//     without fsync (losing one re-sweeps at most a segment); the
//     terminal ClearPending/PutVerdict pair is fsync'd.
//
// The log tolerates a torn tail — a crash mid-write leaves a final
// partial line, which Open drops — and compacts itself on Open when
// superseded records dominate, rewriting live state into a fresh log.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Key content-addresses a verdict: every coordinate that determines the
// check's outcome, and nothing that doesn't (worker counts, chunk sizes
// and scheduling are deliberately absent). Fingerprint is the canonical
// program fingerprint (flowchart.Fingerprint of the compiled source), so
// textually different submissions of the same program share verdicts.
type Key struct {
	Fingerprint string `json:"fingerprint"`
	Policy      string `json:"policy"`
	Variant     string `json:"variant"`
	Domain      string `json:"domain"`
	Offset      int64  `json:"offset,omitempty"`
	Count       int64  `json:"count,omitempty"`
}

// ID renders the key's canonical string form, used as the index key and
// in log records. It is unambiguous: fields are joined with a separator
// that cannot appear in a hex fingerprint, policy, variant or the
// canonical domain form.
func (k Key) ID() string {
	return fmt.Sprintf("%s|%s|%s|%s|%d+%d", k.Fingerprint, k.Policy, k.Variant, k.Domain, k.Offset, k.Count)
}

// Pending is a job the server admitted but has not finished: everything
// needed to re-create and resume it after a restart.
type Pending struct {
	// ID is the job's public identifier ("job-17"); a resumed job keeps
	// it, so clients polling across a restart see the same job complete.
	ID string `json:"id"`
	// Key addresses the verdict the job is computing.
	Key Key `json:"key"`
	// Payload is the service's own serialized admission state (request
	// source, options). The store does not interpret it.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Checkpoint is the service's serialized sweep checkpoint — cursor
	// plus folded partial evidence. Nil until the first checkpoint lands.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	// Cursor mirrors the checkpoint's committed tuple count, kept
	// separately so progress is readable without decoding the evidence.
	Cursor int64 `json:"cursor,omitempty"`
}

// Stats counts what the store has done since Open.
type Stats struct {
	// Verdicts is the number of distinct verdicts currently indexed.
	Verdicts int `json:"verdicts"`
	// Pending is the number of unfinished jobs currently indexed.
	Pending int `json:"pending"`
	// Hits counts Verdict lookups that found a stored verdict.
	Hits int64 `json:"hits"`
	// Misses counts Verdict lookups that found nothing.
	Misses int64 `json:"misses"`
	// BytesAppended counts log bytes written since Open (excluding the
	// compaction rewrite itself).
	BytesAppended int64 `json:"bytes_appended"`
	// ResumedJobs counts pending jobs recovered by PendingJobs calls.
	ResumedJobs int64 `json:"resumed_jobs"`
	// Compacted reports whether Open rewrote the log.
	Compacted bool `json:"compacted"`
}

// record is one log line. T selects which of the optional fields are
// meaningful.
type record struct {
	T string `json:"t"` // "verdict" | "pending" | "ckpt" | "cur" | "clear"

	// verdict
	Key     *Key            `json:"key,omitempty"`
	Verdict json.RawMessage `json:"verdict,omitempty"`

	// pending / ckpt / cur / clear
	ID         string          `json:"id,omitempty"`
	PKey       *Key            `json:"pkey,omitempty"`
	Payload    json.RawMessage `json:"payload,omitempty"`
	Checkpoint json.RawMessage `json:"ckpt,omitempty"`
	Cursor     int64           `json:"cursor,omitempty"`
}

// verdictEntry pairs the stored verdict bytes with the structured key,
// so compaction can rewrite the record without parsing Key.ID() back.
type verdictEntry struct {
	key  Key
	data json.RawMessage
}

// Store is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	dir      string
	f        *os.File
	w        *bufio.Writer
	verdicts map[string]verdictEntry // Key.ID() → verdict
	pending  map[string]*Pending     // job ID → pending state
	records  int                     // log lines appended since Open (live + superseded)
	stats    Stats
	closed   bool
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

const logName = "verdicts.log"

// compactWasteFactor triggers an Open-time rewrite when the log holds
// more than this many records per live entry — i.e. superseded
// checkpoint/cursor lines dominate.
const compactWasteFactor = 4

// Open loads (or creates) the store rooted at dir. The log is replayed
// into the in-memory index; a torn final line (crash mid-append) is
// discarded. If superseded records dominate, the log is compacted —
// live state rewritten to a fresh log and atomically swapped in.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		verdicts: make(map[string]verdictEntry),
		pending:  make(map[string]*Pending),
	}
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w", err)
	}
	lines := 0
	if len(data) > 0 {
		// Drop a torn tail: everything after the last newline is a
		// partial record from a crash mid-write. Truncate the file too,
		// or the next append would fuse with the partial line.
		if i := bytes.LastIndexByte(data, '\n'); i < len(data)-1 {
			data = data[:i+1]
			if err := os.Truncate(path, int64(len(data))); err != nil {
				return nil, fmt.Errorf("store: truncate torn tail: %w", err)
			}
		}
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			lines++
			var r record
			if err := json.Unmarshal(line, &r); err != nil {
				// A corrupt interior line loses that record but not the
				// log; keep replaying.
				continue
			}
			s.apply(r)
		}
	}

	live := len(s.verdicts) + len(s.pending)
	if lines > compactWasteFactor*(live+1) {
		if err := s.compact(path); err != nil {
			return nil, err
		}
		s.stats.Compacted = true
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return s, nil
}

// apply folds one replayed record into the index.
func (s *Store) apply(r record) {
	switch r.T {
	case "verdict":
		if r.Key != nil && len(r.Verdict) > 0 {
			s.verdicts[r.Key.ID()] = verdictEntry{key: *r.Key, data: r.Verdict}
		}
	case "pending":
		if r.ID != "" && r.PKey != nil {
			s.pending[r.ID] = &Pending{ID: r.ID, Key: *r.PKey, Payload: r.Payload}
		}
	case "ckpt":
		if p, ok := s.pending[r.ID]; ok {
			p.Checkpoint = r.Checkpoint
			p.Cursor = r.Cursor
		}
	case "cur":
		if p, ok := s.pending[r.ID]; ok && r.Cursor > p.Cursor {
			p.Cursor = r.Cursor
		}
	case "clear":
		delete(s.pending, r.ID)
	}
}

// compact rewrites live state into a fresh log and renames it over the
// old one. Called with the index loaded, before the append handle opens.
func (s *Store) compact(path string) error {
	tmp := path + ".compact"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	w := bufio.NewWriter(f)
	write := func(r record) {
		if err == nil {
			var line []byte
			line, err = json.Marshal(r)
			if err == nil {
				line = append(line, '\n')
				_, err = w.Write(line)
			}
		}
	}
	for _, id := range sortedIDs(s.verdicts) {
		e := s.verdicts[id]
		k := e.key
		write(record{T: "verdict", Key: &k, Verdict: e.data})
	}
	for _, id := range sortedPending(s.pending) {
		p := s.pending[id]
		pk := p.Key
		write(record{T: "pending", ID: p.ID, PKey: &pk, Payload: p.Payload})
		if p.Checkpoint != nil || p.Cursor > 0 {
			write(record{T: "ckpt", ID: p.ID, Checkpoint: p.Checkpoint, Cursor: p.Cursor})
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	s.records = len(s.verdicts) + len(s.pending)
	return nil
}

// append writes one record; sync forces it (and everything before it)
// to stable storage before returning.
func (s *Store) append(r record, sync bool) error {
	if s.closed {
		return ErrClosed
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.records++
	s.stats.BytesAppended += int64(len(line))
	if sync {
		if err := s.w.Flush(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Verdict returns the stored verdict for key, if any. The returned
// bytes are the exact JSON previously given to PutVerdict.
func (s *Store) Verdict(key Key) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.verdicts[key.ID()]
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return e.data, ok
}

// PutVerdict durably records the verdict for key, replacing any previous
// one. It fsyncs before returning: a crash after PutVerdict cannot lose
// the verdict.
func (s *Store) PutVerdict(key Key, verdict json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key
	if err := s.append(record{T: "verdict", Key: &k, Verdict: verdict}, true); err != nil {
		return err
	}
	s.verdicts[key.ID()] = verdictEntry{key: key, data: append(json.RawMessage(nil), verdict...)}
	return nil
}

// PutPending durably records an admitted-but-unfinished job. Call once
// at admission; follow with Checkpoint/Cursor as the sweep progresses
// and ClearPending (or PutVerdict+ClearPending) at completion.
func (s *Store) PutPending(p Pending) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pk := p.Key
	if err := s.append(record{T: "pending", ID: p.ID, PKey: &pk, Payload: p.Payload}, true); err != nil {
		return err
	}
	cp := p
	s.pending[p.ID] = &cp
	return nil
}

// Checkpoint records job id's latest sweep checkpoint (serialized cursor
// plus folded evidence). Not fsync'd: a crash loses at most the tail
// checkpoints, and the job resumes from the last one that reached disk.
func (s *Store) Checkpoint(id string, checkpoint json.RawMessage, cursor int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pending[id]
	if !ok {
		return fmt.Errorf("store: checkpoint for unknown job %q", id)
	}
	if err := s.append(record{T: "ckpt", ID: id, Checkpoint: checkpoint, Cursor: cursor}, false); err != nil {
		return err
	}
	p.Checkpoint = append(json.RawMessage(nil), checkpoint...)
	p.Cursor = cursor
	return nil
}

// Cursor records job id's fine-grained contiguous sweep prefix — the
// chunk-level commit between checkpoints. Cheap (no fsync, no evidence);
// it only narrows the window of work a crash loses to re-sweeping.
func (s *Store) Cursor(id string, cursor int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pending[id]
	if !ok {
		return fmt.Errorf("store: cursor for unknown job %q", id)
	}
	if err := s.append(record{T: "cur", ID: id, Cursor: cursor}, false); err != nil {
		return err
	}
	if cursor > p.Cursor {
		p.Cursor = cursor
	}
	return nil
}

// ClearPending durably removes job id from the pending set — the job
// finished (its verdict stored via PutVerdict), failed, or was
// cancelled. Clearing an unknown id is a no-op.
func (s *Store) ClearPending(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pending[id]; !ok {
		return nil
	}
	if err := s.append(record{T: "clear", ID: id}, true); err != nil {
		return err
	}
	delete(s.pending, id)
	return nil
}

// PendingJobs returns the jobs that were admitted but never cleared —
// after a restart, the jobs to re-enqueue — sorted by ID for a
// deterministic resume order. The returned values are copies.
func (s *Store) PendingJobs() []Pending {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Pending, 0, len(s.pending))
	for _, id := range sortedPending(s.pending) {
		out = append(out, *s.pending[id])
	}
	s.stats.ResumedJobs += int64(len(out))
	return out
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Verdicts = len(s.verdicts)
	st.Pending = len(s.pending)
	return st
}

// Sync flushes buffered appends to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close flushes and closes the log. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.w.Flush()
	if serr := s.f.Sync(); err == nil {
		err = serr
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

func sortedIDs(m map[string]verdictEntry) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedPending(m map[string]*Pending) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
