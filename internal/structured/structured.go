// Package structured provides a structured programming layer — sequences,
// if/else, and bounded while loops — that lowers to the flowchart language
// of Section 3. It exists for the augmentation Section 4 describes:
// "the surveillance mechanism can be augmented to recognize higher level
// language constructs", and "transforms can be created for all
// single-entry and single-exit structures".
//
// Lowering has two modes. Plain lowering emits ordinary decision boxes;
// surveillance on the result taints the program counter at every test.
// Transform lowering emits the functionally equivalent branch-free forms —
// the if-then-else transform for If (both arms become guarded conditional
// selects) and bounded unrolling for While — so the resulting program has
// no data-dependent control flow at all and surveillance never taints the
// counter. Example 7 vs Example 8 says neither mode dominates: the caller
// chooses per program, and CompareLowerings reports which is more complete
// for a given policy and domain.
package structured

import (
	"fmt"

	"spm/internal/flowchart"
)

// Stmt is a structured statement.
type Stmt interface {
	// lower emits the statement into the emitter.
	lower(e *emitter, mode Mode) error
	// assignedVars adds every variable the statement may assign to set.
	assignedVars(set map[string]bool)
}

// Assign is v := expr.
type Assign struct {
	Target string
	Expr   flowchart.Expr
}

// If is if Cond { Then } else { Else }; either arm may be empty.
type If struct {
	Cond flowchart.Pred
	Then []Stmt
	Else []Stmt
}

// While is while Cond { Body }, with MaxTrips bounding the trip count for
// transform lowering (and the step budget standing guard in plain mode).
type While struct {
	Cond     flowchart.Pred
	Body     []Stmt
	MaxTrips int
}

// Program is a structured program: inputs, a body, and an expression-free
// contract that the output variable is "y" (the flowchart default).
type Program struct {
	Name   string
	Inputs []string
	Body   []Stmt
}

// Mode selects the lowering strategy.
type Mode uint8

// Lowering modes.
const (
	// Plain emits decision boxes: ordinary control flow.
	Plain Mode = iota
	// Transformed emits the branch-free equivalents: guarded selects for
	// If, bounded unrolling for While.
	Transformed
)

// String names the mode.
func (m Mode) String() string {
	if m == Transformed {
		return "transformed"
	}
	return "plain"
}

type emitter struct {
	b       *flowchart.Builder
	tail    flowchart.NodeID // node whose Next awaits the following stmt
	tmpSeq  int
	program *Program
}

func (e *emitter) fresh(prefix string) string {
	e.tmpSeq++
	return fmt.Sprintf("%s_%d", prefix, e.tmpSeq)
}

// link appends a node after the current tail.
func (e *emitter) link(id flowchart.NodeID) {
	e.b.SetNext(e.tail, id)
	e.tail = id
}

// Lower compiles the structured program to a flowchart.
func (p *Program) Lower(mode Mode) (*flowchart.Program, error) {
	for _, in := range p.Inputs {
		if !flowchart.ValidUserIdent(in) {
			return nil, fmt.Errorf("structured: invalid input name %q", in)
		}
	}
	name := p.Name
	if name == "" {
		name = "structured"
	}
	b := flowchart.NewBuilder(name+"_"+mode.String(), p.Inputs...)
	e := &emitter{b: b, tail: b.StartID(), program: p}
	if err := lowerBlock(e, p.Body, mode); err != nil {
		return nil, err
	}
	e.link(b.Halt())
	prog := b.Program()
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("structured: lowering produced invalid flowchart: %w", err)
	}
	return prog, nil
}

func lowerBlock(e *emitter, body []Stmt, mode Mode) error {
	for _, s := range body {
		if err := s.lower(e, mode); err != nil {
			return err
		}
	}
	return nil
}

// ------------------------------------------------------------------ Assign

func (a *Assign) lower(e *emitter, mode Mode) error {
	if !flowchart.ValidUserIdent(a.Target) {
		return fmt.Errorf("structured: invalid assignment target %q", a.Target)
	}
	if a.Expr == nil {
		return fmt.Errorf("structured: assignment to %q has no expression", a.Target)
	}
	e.link(e.b.Assign(a.Target, a.Expr))
	return nil
}

func (a *Assign) assignedVars(set map[string]bool) { set[a.Target] = true }

// ---------------------------------------------------------------------- If

func (s *If) lower(e *emitter, mode Mode) error {
	if s.Cond == nil {
		return fmt.Errorf("structured: if with no condition")
	}
	if mode == Transformed {
		return s.lowerTransformed(e)
	}
	d := e.b.Decision(s.Cond)
	e.b.SetNext(e.tail, d)

	// Then arm.
	thenEntry, thenExit, err := lowerArm(e, s.Then, mode)
	if err != nil {
		return err
	}
	// Else arm.
	elseEntry, elseExit, err := lowerArm(e, s.Else, mode)
	if err != nil {
		return err
	}
	// Join node: a no-op is unnecessary — wire both exits to whatever
	// comes next by making the join the new tail via a fresh dead assign.
	join := e.b.Assign(e.fresh("join"), flowchart.C(0))
	wireArm := func(entry, exit flowchart.NodeID, taken bool) {
		target := entry
		if target == flowchart.NoNode { // empty arm: decision goes to join
			target = join
		}
		prog := e.b.Program()
		if taken {
			prog.Node(d).True = target
		} else {
			prog.Node(d).False = target
		}
		if entry != flowchart.NoNode {
			e.b.SetNext(exit, join)
		}
	}
	wireArm(thenEntry, thenExit, true)
	wireArm(elseEntry, elseExit, false)
	e.tail = join
	return nil
}

// lowerTransformed applies the if-then-else transform at lowering time:
// t := ite(B,1,0); every then-assignment guarded by t == 1; every
// else-assignment guarded by t == 0. Nested Ifs/Whiles inside arms are
// rejected unless they contain only assignments after their own
// transformation — we handle this by recursively lowering arms in
// Transformed mode into a sub-list of guarded assignments.
func (s *If) lowerTransformed(e *emitter) error {
	t := e.fresh("t_if")
	e.link(e.b.Assign(t, flowchart.Ite(s.Cond, flowchart.C(1), flowchart.C(0))))
	if err := emitGuarded(e, s.Then, flowchart.Eq(flowchart.V(t), flowchart.C(1))); err != nil {
		return err
	}
	return emitGuarded(e, s.Else, flowchart.Eq(flowchart.V(t), flowchart.C(0)))
}

func (s *If) assignedVars(set map[string]bool) {
	for _, st := range s.Then {
		st.assignedVars(set)
	}
	for _, st := range s.Else {
		st.assignedVars(set)
	}
}

// lowerArm lowers a block off to the side, returning its entry and exit
// nodes (NoNode for an empty arm). The emitter's tail is preserved.
func lowerArm(e *emitter, body []Stmt, mode Mode) (entry, exit flowchart.NodeID, err error) {
	if len(body) == 0 {
		return flowchart.NoNode, flowchart.NoNode, nil
	}
	// Anchor: temporary node to collect the arm chain.
	anchor := e.b.Assign(e.fresh("arm"), flowchart.C(0))
	savedTail := e.tail
	e.tail = anchor
	if err := lowerBlock(e, body, mode); err != nil {
		return flowchart.NoNode, flowchart.NoNode, err
	}
	armExit := e.tail
	e.tail = savedTail
	return anchor, armExit, nil
}

// emitGuarded lowers body as straight-line guarded assignments: each
// assignment v := E becomes v := ite(guard && ..., E, v). Nested control
// flow is flattened recursively with conjoined guards.
func emitGuarded(e *emitter, body []Stmt, guard flowchart.Pred) error {
	for _, st := range body {
		switch s := st.(type) {
		case *Assign:
			if !flowchart.ValidUserIdent(s.Target) {
				return fmt.Errorf("structured: invalid assignment target %q", s.Target)
			}
			e.link(e.b.Assign(s.Target,
				flowchart.Ite(guard, s.Expr, flowchart.V(s.Target))))
		case *If:
			t := e.fresh("t_if")
			// t records whether this nested test held AND the outer
			// guard held; untaken regions must not update t's influence.
			e.link(e.b.Assign(t, flowchart.Ite(&flowchart.AndP{L: guard, R: s.Cond}, flowchart.C(1), flowchart.C(0))))
			inner := flowchart.Eq(flowchart.V(t), flowchart.C(1))
			if err := emitGuarded(e, s.Then, inner); err != nil {
				return err
			}
			// Else arm: taken iff the outer guard held and the recorded
			// test t is 0. Deriving it from t (captured before the then
			// arm ran) keeps the decision stable even if the then arm
			// mutated the condition's variables.
			te := e.fresh("t_else")
			e.link(e.b.Assign(te, flowchart.Ite(&flowchart.AndP{L: guard, R: flowchart.Eq(flowchart.V(t), flowchart.C(0))}, flowchart.C(1), flowchart.C(0))))
			if err := emitGuarded(e, s.Else, flowchart.Eq(flowchart.V(te), flowchart.C(1))); err != nil {
				return err
			}
		case *While:
			if s.MaxTrips < 1 {
				return fmt.Errorf("structured: while needs MaxTrips ≥ 1 for transformed lowering")
			}
			for i := 0; i < s.MaxTrips; i++ {
				t := e.fresh("t_while")
				e.link(e.b.Assign(t, flowchart.Ite(&flowchart.AndP{L: guard, R: s.Cond}, flowchart.C(1), flowchart.C(0))))
				if err := emitGuarded(e, s.Body, flowchart.Eq(flowchart.V(t), flowchart.C(1))); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("structured: unknown statement type %T", st)
		}
	}
	return nil
}

// ------------------------------------------------------------------- While

func (s *While) lower(e *emitter, mode Mode) error {
	if s.Cond == nil {
		return fmt.Errorf("structured: while with no condition")
	}
	if mode == Transformed {
		if s.MaxTrips < 1 {
			return fmt.Errorf("structured: while needs MaxTrips ≥ 1 for transformed lowering")
		}
		return emitGuarded(e, []Stmt{s}, flowchart.BoolConst(true))
	}
	d := e.b.Decision(s.Cond)
	e.b.SetNext(e.tail, d)
	entry, exit, err := lowerArm(e, s.Body, mode)
	if err != nil {
		return err
	}
	after := e.b.Assign(e.fresh("endwhile"), flowchart.C(0))
	if entry == flowchart.NoNode {
		// Empty body: a while over an invariant condition; to stay total
		// we reject it (it either never runs or never ends).
		return fmt.Errorf("structured: while with empty body cannot terminate")
	}
	e.b.SetBranch(d, entry, after)
	e.b.SetNext(exit, d)
	e.tail = after
	return nil
}

func (s *While) assignedVars(set map[string]bool) {
	for _, st := range s.Body {
		st.assignedVars(set)
	}
}
