package structured

import (
	"testing"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
	"spm/internal/transform"
)

// ex7 is Example 7 as a structured program: the branch outcome is dead.
func ex7() *Program {
	return &Program{
		Name:   "ex7",
		Inputs: []string{"x1", "x2"},
		Body: []Stmt{
			&If{
				Cond: flowchart.Eq(flowchart.V("x1"), flowchart.C(1)),
				Then: []Stmt{&Assign{Target: "r", Expr: flowchart.C(1)}},
				Else: []Stmt{&Assign{Target: "r", Expr: flowchart.C(2)}},
			},
			&Assign{Target: "y", Expr: flowchart.C(1)},
		},
	}
}

// ex8 is Example 8: the transform hurts.
func ex8() *Program {
	return &Program{
		Name:   "ex8",
		Inputs: []string{"x1", "x2"},
		Body: []Stmt{
			&If{
				Cond: flowchart.Eq(flowchart.V("x2"), flowchart.C(1)),
				Then: []Stmt{&Assign{Target: "y", Expr: flowchart.C(1)}},
				Else: []Stmt{&Assign{Target: "y", Expr: flowchart.V("x1")}},
			},
		},
	}
}

func dom2() core.Domain { return core.Grid(2, 0, 1, 2) }

func TestPlainLoweringRuns(t *testing.T) {
	p, err := ex8().Lower(Plain)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Run([]int64{7, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 1 {
		t.Errorf("ex8(7,1) = %v, want 1", r)
	}
	r, err = p.Run([]int64{7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 7 {
		t.Errorf("ex8(7,0) = %v, want 7", r)
	}
}

func TestLoweringsAgree(t *testing.T) {
	for _, mk := range []func() *Program{ex7, ex8} {
		sp := mk()
		plain, err := sp.Lower(Plain)
		if err != nil {
			t.Fatal(err)
		}
		trans, err := sp.Lower(Transformed)
		if err != nil {
			t.Fatal(err)
		}
		ok, w, err := transform.Equivalent(plain, trans, dom2())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s: lowerings disagree at %v", sp.Name, w)
		}
	}
}

func TestCompareLoweringsExample7(t *testing.T) {
	cmp, err := CompareLowerings(ex7(), lattice.NewIndexSet(2), dom2())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Relation != core.MoreComplete {
		t.Errorf("ex7: transformed should win: %v (pass %d vs %d)",
			cmp.Relation, cmp.PassTransformed, cmp.PassPlain)
	}
	if cmp.PassTransformed != dom2().Size() {
		t.Errorf("ex7 transformed should be maximal: %d/%d", cmp.PassTransformed, dom2().Size())
	}
}

func TestCompareLoweringsExample8(t *testing.T) {
	cmp, err := CompareLowerings(ex8(), lattice.NewIndexSet(2), dom2())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Relation != core.LessComplete {
		t.Errorf("ex8: transformed should lose: %v (pass %d vs %d)",
			cmp.Relation, cmp.PassTransformed, cmp.PassPlain)
	}
}

func TestWhileLowering(t *testing.T) {
	// y = 2 * x1 via a loop; both lowerings agree when MaxTrips covers
	// the domain.
	sp := &Program{
		Name:   "doubler",
		Inputs: []string{"x1"},
		Body: []Stmt{
			&Assign{Target: "r", Expr: flowchart.V("x1")},
			&While{
				Cond:     flowchart.Gt(flowchart.V("r"), flowchart.C(0)),
				MaxTrips: 3,
				Body: []Stmt{
					&Assign{Target: "y", Expr: flowchart.Add(flowchart.V("y"), flowchart.C(2))},
					&Assign{Target: "r", Expr: flowchart.Sub(flowchart.V("r"), flowchart.C(1))},
				},
			},
		},
	}
	plain, err := sp.Lower(Plain)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x <= 3; x++ {
		r, err := plain.Run([]int64{x})
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != 2*x {
			t.Errorf("plain doubler(%d) = %v", x, r)
		}
	}
	trans, err := sp.Lower(Transformed)
	if err != nil {
		t.Fatal(err)
	}
	ok, w, err := transform.Equivalent(plain, trans, core.Grid(1, 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("lowerings disagree at %v\n%s", w, flowchart.Print(trans))
	}
	// The transformed lowering has no decision boxes at all.
	for i := range trans.Nodes {
		if trans.Nodes[i].Kind == flowchart.KindDecision {
			t.Fatal("transformed lowering must be branch-free")
		}
	}
}

func TestWhileTransformedSurveillanceGain(t *testing.T) {
	// Loop over x1, output x2: plain surveillance always violates under
	// allow(2), transformed never does (the E16 scenario, structured).
	sp := &Program{
		Name:   "loopy",
		Inputs: []string{"x1", "x2"},
		Body: []Stmt{
			&Assign{Target: "r", Expr: flowchart.V("x1")},
			&While{
				Cond:     flowchart.Gt(flowchart.V("r"), flowchart.C(0)),
				MaxTrips: 2,
				Body:     []Stmt{&Assign{Target: "r", Expr: flowchart.Sub(flowchart.V("r"), flowchart.C(1))}},
			},
			&Assign{Target: "y", Expr: flowchart.V("x2")},
		},
	}
	cmp, err := CompareLowerings(sp, lattice.NewIndexSet(2), dom2())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.PassPlain != 0 || cmp.PassTransformed != dom2().Size() {
		t.Errorf("pass plain=%d transformed=%d", cmp.PassPlain, cmp.PassTransformed)
	}
}

func TestNestedIfTransformed(t *testing.T) {
	// Nested ifs flatten with conjoined guards and stay equivalent.
	sp := &Program{
		Name:   "nested",
		Inputs: []string{"a", "b"},
		Body: []Stmt{
			&If{
				Cond: flowchart.Eq(flowchart.V("a"), flowchart.C(0)),
				Then: []Stmt{
					&If{
						Cond: flowchart.Eq(flowchart.V("b"), flowchart.C(0)),
						Then: []Stmt{&Assign{Target: "y", Expr: flowchart.C(1)}},
						Else: []Stmt{&Assign{Target: "y", Expr: flowchart.C(2)}},
					},
				},
				Else: []Stmt{&Assign{Target: "y", Expr: flowchart.C(3)}},
			},
		},
	}
	plain, err := sp.Lower(Plain)
	if err != nil {
		t.Fatal(err)
	}
	trans, err := sp.Lower(Transformed)
	if err != nil {
		t.Fatal(err)
	}
	ok, w, err := transform.Equivalent(plain, trans, dom2())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("nested lowerings disagree at %v\nplain:\n%s\ntrans:\n%s",
			w, flowchart.Print(plain), flowchart.Print(trans))
	}
}

func TestThenArmMutatesConditionVariable(t *testing.T) {
	// The then arm changes the condition's variable; the else decision
	// must still be based on the condition's value at entry.
	sp := &Program{
		Name:   "mutate",
		Inputs: []string{"a"},
		Body: []Stmt{
			&If{
				Cond: flowchart.Eq(flowchart.V("a"), flowchart.C(0)),
				Then: []Stmt{&Assign{Target: "a", Expr: flowchart.C(5)}},
				Else: []Stmt{&Assign{Target: "y", Expr: flowchart.C(9)}},
			},
			&Assign{Target: "y", Expr: flowchart.Add(flowchart.V("y"), flowchart.V("a"))},
		},
	}
	plain, err := sp.Lower(Plain)
	if err != nil {
		t.Fatal(err)
	}
	trans, err := sp.Lower(Transformed)
	if err != nil {
		t.Fatal(err)
	}
	ok, w, err := transform.Equivalent(plain, trans, core.Grid(1, 0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("lowerings disagree at %v", w)
	}
}

func TestSoundnessOfBothLowerings(t *testing.T) {
	// Theorem 3 applies to whatever flowchart we produce, in both modes.
	for _, mk := range []func() *Program{ex7, ex8} {
		for _, mode := range []Mode{Plain, Transformed} {
			p, err := mk().Lower(mode)
			if err != nil {
				t.Fatal(err)
			}
			for _, J := range lattice.Subsets(2) {
				m, err := surveillance.Mechanism(p, J, surveillance.Untimed)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := core.CheckSoundness(m, core.NewAllowSet(2, J), dom2(), core.ObserveValue)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Sound {
					t.Errorf("%s/%s allow%v: %s", mk().Name, mode, J, rep)
				}
			}
		}
	}
}

func TestLoweringErrors(t *testing.T) {
	cases := []*Program{
		{Name: "badinput", Inputs: []string{"x#"}, Body: []Stmt{&Assign{Target: "y", Expr: flowchart.C(1)}}},
		{Name: "badtarget", Inputs: []string{"x"}, Body: []Stmt{&Assign{Target: "y#", Expr: flowchart.C(1)}}},
		{Name: "noexpr", Inputs: []string{"x"}, Body: []Stmt{&Assign{Target: "y"}}},
		{Name: "nocond", Inputs: []string{"x"}, Body: []Stmt{&If{}}},
		{Name: "emptywhile", Inputs: []string{"x"}, Body: []Stmt{&While{Cond: flowchart.BoolConst(false)}}},
	}
	for _, sp := range cases {
		if _, err := sp.Lower(Plain); err == nil {
			t.Errorf("%s: Lower(Plain) succeeded, want error", sp.Name)
		}
	}
	// Transformed while without MaxTrips.
	sp := &Program{Name: "nobound", Inputs: []string{"x"}, Body: []Stmt{
		&While{Cond: flowchart.Gt(flowchart.V("x"), flowchart.C(0)),
			Body: []Stmt{&Assign{Target: "x", Expr: flowchart.Sub(flowchart.V("x"), flowchart.C(1))}}},
	}}
	if _, err := sp.Lower(Transformed); err == nil {
		t.Error("transformed while without MaxTrips accepted")
	}
}

func TestModeString(t *testing.T) {
	if Plain.String() != "plain" || Transformed.String() != "transformed" {
		t.Error("mode names")
	}
}

func TestAssignedVars(t *testing.T) {
	set := map[string]bool{}
	sp := ex7()
	for _, s := range sp.Body {
		s.assignedVars(set)
	}
	if !set["r"] || !set["y"] || len(set) != 2 {
		t.Errorf("assignedVars = %v", set)
	}
	wset := map[string]bool{}
	(&While{Body: []Stmt{&Assign{Target: "q"}}}).assignedVars(wset)
	if !wset["q"] {
		t.Errorf("while assignedVars = %v", wset)
	}
}
