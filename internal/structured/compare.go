package structured

import (
	"fmt"

	"spm/internal/core"
	"spm/internal/lattice"
	"spm/internal/surveillance"
	"spm/internal/transform"
)

// Comparison reports how the two lowerings of a structured program fare
// under surveillance for a given policy: which is more complete, per the
// Section 4 discussion that applying a transform "is not necessarily a
// clearcut decision".
type Comparison struct {
	Plain       core.Mechanism
	Transformed core.Mechanism
	// Relation is Transformed vs Plain.
	Relation core.Relation
	// PassPlain and PassTransformed count non-violation outputs.
	PassPlain, PassTransformed int
}

// CompareLowerings lowers p both ways, verifies the lowerings compute the
// same function over dom, instruments both with untimed surveillance for
// allow(J), and compares completeness. It is the programmatic form of the
// E5/E6 experiments for arbitrary structured programs.
func CompareLowerings(p *Program, allowed lattice.IndexSet, dom core.Domain) (*Comparison, error) {
	plain, err := p.Lower(Plain)
	if err != nil {
		return nil, err
	}
	trans, err := p.Lower(Transformed)
	if err != nil {
		return nil, err
	}
	ok, witness, err := transform.Equivalent(plain, trans, dom)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("structured: lowerings disagree at %v (check While.MaxTrips)", witness)
	}
	mp, err := surveillance.Mechanism(plain, allowed, surveillance.Untimed)
	if err != nil {
		return nil, err
	}
	mt, err := surveillance.Mechanism(trans, allowed, surveillance.Untimed)
	if err != nil {
		return nil, err
	}
	rep, err := core.Compare(mt, mp, dom)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Plain:           mp,
		Transformed:     mt,
		Relation:        rep.Relation,
		PassPlain:       rep.PassM2,
		PassTransformed: rep.PassM1,
	}, nil
}
