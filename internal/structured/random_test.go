package structured

import (
	"math/rand"
	"testing"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
	"spm/internal/transform"
)

// randProgram draws a random structured program whose loops are bounded by
// construction: every While condition is `counter > 0` over a fresh
// counter initialised to ≤ maxTrips and decremented in the body, so
// MaxTrips is an honest bound and the two lowerings must agree exactly.
type randGen struct {
	r       *rand.Rand
	counter int
}

func (g *randGen) expr(depth int, vars []string) flowchart.Expr {
	if depth == 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return flowchart.V(vars[g.r.Intn(len(vars))])
		}
		return flowchart.C(int64(g.r.Intn(7) - 3))
	}
	l := g.expr(depth-1, vars)
	rr := g.expr(depth-1, vars)
	switch g.r.Intn(4) {
	case 0:
		return flowchart.Add(l, rr)
	case 1:
		return flowchart.Sub(l, rr)
	case 2:
		return flowchart.Mul(l, rr)
	default:
		return flowchart.Ite(g.pred(vars), l, rr)
	}
}

func (g *randGen) pred(vars []string) flowchart.Pred {
	ops := []func(a, b flowchart.Expr) *flowchart.Cmp{
		flowchart.Eq, flowchart.Ne, flowchart.Lt, flowchart.Le, flowchart.Gt, flowchart.Ge,
	}
	return ops[g.r.Intn(len(ops))](g.expr(1, vars), g.expr(1, vars))
}

func (g *randGen) block(depth, maxStmts int, vars []string) []Stmt {
	n := 1 + g.r.Intn(maxStmts)
	out := make([]Stmt, 0, n)
	assignables := []string{"y", "r0", "r1"}
	for i := 0; i < n; i++ {
		roll := g.r.Intn(10)
		switch {
		case depth > 0 && roll >= 8:
			g.counter++
			cv := "lc" + itoa(g.counter)
			trips := 1 + g.r.Intn(2)
			out = append(out,
				&Assign{Target: cv, Expr: flowchart.C(int64(trips))},
				&While{
					Cond:     flowchart.Gt(flowchart.V(cv), flowchart.C(0)),
					MaxTrips: trips,
					Body: append(g.block(depth-1, maxStmts, vars),
						&Assign{Target: cv, Expr: flowchart.Sub(flowchart.V(cv), flowchart.C(1))}),
				})
		case depth > 0 && roll >= 5:
			out = append(out, &If{
				Cond: g.pred(vars),
				Then: g.block(depth-1, maxStmts, vars),
				Else: g.block(depth-1, maxStmts, vars),
			})
		default:
			out = append(out, &Assign{
				Target: assignables[g.r.Intn(len(assignables))],
				Expr:   g.expr(2, vars),
			})
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func randomStructured(r *rand.Rand) *Program {
	g := &randGen{r: r}
	vars := []string{"x1", "x2", "y", "r0", "r1"}
	return &Program{
		Name:   "rand",
		Inputs: []string{"x1", "x2"},
		Body:   g.block(2, 3, vars),
	}
}

// TestLoweringsEquivalentProperty: on random structured programs, plain
// and transformed lowering compute the same function.
func TestLoweringsEquivalentProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	dom := core.Grid(2, -1, 0, 2)
	trials := 60
	if testing.Short() {
		trials = 15
	}
	for trial := 0; trial < trials; trial++ {
		sp := randomStructured(r)
		plain, err := sp.Lower(Plain)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		trans, err := sp.Lower(Transformed)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ok, w, err := transform.Equivalent(plain, trans, dom)
		if err != nil {
			t.Fatalf("trial %d: %v\nplain:\n%s", trial, err, flowchart.Print(plain))
		}
		if !ok {
			t.Fatalf("trial %d: lowerings disagree at %v\nplain:\n%s\ntrans:\n%s",
				trial, w, flowchart.Print(plain), flowchart.Print(trans))
		}
	}
}

// TestTransformedLoweringBranchFreeProperty: transformed lowering never
// emits a decision box, so surveillance on it never taints the counter —
// and it is still sound (Theorem 3 on the equivalent program).
func TestTransformedLoweringBranchFreeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	dom := core.Grid(2, 0, 1, 2)
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		sp := randomStructured(r)
		trans, err := sp.Lower(Transformed)
		if err != nil {
			t.Fatal(err)
		}
		for i := range trans.Nodes {
			if trans.Nodes[i].Kind == flowchart.KindDecision {
				t.Fatalf("trial %d: decision box in transformed lowering:\n%s",
					trial, flowchart.Print(trans))
			}
		}
		for _, J := range lattice.Subsets(2) {
			m, err := surveillance.Mechanism(trans, J, surveillance.Untimed)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.CheckSoundness(m, core.NewAllowSet(2, J), dom, core.ObserveValue)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sound {
				t.Fatalf("trial %d: transformed lowering unsound for allow%v:\n%s",
					trial, J, flowchart.Print(trans))
			}
		}
	}
}
