package querydb

import (
	"strings"
	"testing"
)

func db(t *testing.T) *DB {
	t.Helper()
	d, err := NewDB([]int64{30, 50, 20, 40})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDBValidation(t *testing.T) {
	if _, err := NewDB(nil); err == nil {
		t.Error("empty database accepted")
	}
}

func TestSizeGuard(t *testing.T) {
	s := NewSession(db(t), SizeOnly, 2)
	r := s.Query([]int{0})
	if !r.Violation || !strings.Contains(r.Notice, "smaller") {
		t.Errorf("singleton query = %+v, want size violation", r)
	}
	r = s.Query([]int{0, 1})
	if r.Violation || r.Sum != 80 {
		t.Errorf("sum(0,1) = %+v, want 80", r)
	}
	// Duplicates collapse before the size check.
	r = s.Query([]int{0, 0})
	if !r.Violation {
		t.Errorf("duplicated singleton accepted: %+v", r)
	}
}

func TestOutOfRange(t *testing.T) {
	s := NewSession(db(t), SizeOnly, 2)
	r := s.Query([]int{0, 9})
	if !r.Violation || !strings.Contains(r.Notice, "out of range") {
		t.Errorf("out of range = %+v", r)
	}
}

func TestTrackerAttackDefeatsSizeOnly(t *testing.T) {
	// The tracker: sum{0,1,2} - sum{1,2} isolates record 0, despite every
	// individual query having size ≥ 2.
	s := NewSession(db(t), SizeOnly, 2)
	a := s.Query([]int{0, 1, 2})
	b := s.Query([]int{1, 2})
	if a.Violation || b.Violation {
		t.Fatalf("size-only guard refused legal-size queries: %+v %+v", a, b)
	}
	if got := a.Sum - b.Sum; got != 30 {
		t.Errorf("tracker recovered %d, want record 0 = 30", got)
	}
}

func TestHistoryAwareBlocksTracker(t *testing.T) {
	s := NewSession(db(t), HistoryAware, 2)
	a := s.Query([]int{0, 1, 2})
	if a.Violation {
		t.Fatalf("first query refused: %+v", a)
	}
	b := s.Query([]int{1, 2})
	if !b.Violation || !strings.Contains(b.Notice, "individual") {
		t.Errorf("tracker's second query should be refused: %+v", b)
	}
	// A non-isolating follow-up is still answered.
	c := s.Query([]int{1, 2, 3})
	if c.Violation {
		t.Errorf("harmless query refused: %+v", c)
	}
	if s.Answered() != 2 {
		t.Errorf("answered = %d, want 2", s.Answered())
	}
}

func TestHistoryAwareBlocksMultiStepIsolation(t *testing.T) {
	// Isolation via three queries: {0,1} + {0,2} - {1,2} = 2·record0.
	// The guard must refuse the last one.
	s := NewSession(db(t), HistoryAware, 2)
	if r := s.Query([]int{0, 1}); r.Violation {
		t.Fatalf("q1 refused: %+v", r)
	}
	if r := s.Query([]int{0, 2}); r.Violation {
		t.Fatalf("q2 refused: %+v", r)
	}
	r := s.Query([]int{1, 2})
	if !r.Violation {
		t.Errorf("three-query isolation not blocked: %+v", r)
	}
}

func TestRefusalsDoNotPoisonHistory(t *testing.T) {
	s := NewSession(db(t), HistoryAware, 2)
	if r := s.Query([]int{0, 1, 2}); r.Violation {
		t.Fatal(r.Notice)
	}
	// Refused query...
	if r := s.Query([]int{1, 2}); !r.Violation {
		t.Fatal("expected refusal")
	}
	// ...does not block a query that would have been fine anyway.
	if r := s.Query([]int{0, 3}); r.Violation {
		t.Errorf("query after refusal wrongly blocked: %+v", r)
	}
}

func TestRepeatQueryAllowed(t *testing.T) {
	// Re-asking an answered query adds no information and stays allowed.
	s := NewSession(db(t), HistoryAware, 2)
	if r := s.Query([]int{0, 1}); r.Violation {
		t.Fatal(r.Notice)
	}
	if r := s.Query([]int{0, 1}); r.Violation {
		t.Errorf("repeat query refused: %+v", r)
	}
}

func TestWholeTableThenComplementBlocked(t *testing.T) {
	// sum(all) answered; sum(all but one) must be refused: the difference
	// is an individual.
	s := NewSession(db(t), HistoryAware, 2)
	if r := s.Query([]int{0, 1, 2, 3}); r.Violation {
		t.Fatal(r.Notice)
	}
	if r := s.Query([]int{0, 1, 2}); !r.Violation {
		t.Errorf("complement query not blocked: %+v", r)
	}
}

func TestGuardModeString(t *testing.T) {
	if SizeOnly.String() != "size-only" || HistoryAware.String() != "history-aware" {
		t.Error("mode names")
	}
}
