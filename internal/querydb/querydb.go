// Package querydb implements the history-dependent policy that Section 2
// of Jones & Lipton mentions in passing: "policies (such as might be found
// in a data base system) where what a user is permitted to view is
// dependent upon a history of the user's previous queries."
//
// The model is a small statistical database of k confidential values. A
// user may ask for the sum over any subset of records; individual values
// are to stay secret. A stateless size check (|S| ≥ minSize) is not
// enough: the classic tracker attack asks two large overlapping queries
// whose difference isolates one record. The history-dependent gatekeeper
// additionally refuses any query whose answer, combined with previously
// answered queries, would determine a single record — checked exactly, by
// Gaussian elimination over the query subspace.
package querydb

import (
	"fmt"
)

// DB is a statistical database of confidential values.
type DB struct {
	values []int64
}

// NewDB builds a database.
func NewDB(values []int64) (*DB, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("querydb: empty database")
	}
	return &DB{values: append([]int64(nil), values...)}, nil
}

// Size returns the number of records.
func (d *DB) Size() int { return len(d.values) }

// sum computes the sum over the subset, ignoring out-of-range indices.
func (d *DB) sum(set []int) int64 {
	var s int64
	for _, i := range set {
		if i >= 0 && i < len(d.values) {
			s += d.values[i]
		}
	}
	return s
}

// GuardMode selects the gatekeeper's policy.
type GuardMode uint8

// Guard modes.
const (
	// SizeOnly enforces only the minimum query-set size: the stateless
	// policy that the tracker attack defeats.
	SizeOnly GuardMode = iota
	// HistoryAware additionally refuses queries that, together with the
	// answered history, would determine any single record.
	HistoryAware
)

// String names the mode.
func (m GuardMode) String() string {
	if m == HistoryAware {
		return "history-aware"
	}
	return "size-only"
}

// Session is a stateful query session against a database: the mechanism
// whose policy depends on the history of previous queries.
type Session struct {
	db      *DB
	mode    GuardMode
	minSize int
	// answered holds the characteristic vectors of answered queries.
	answered [][]float64
}

// NewSession opens a session with the given guard mode and minimum query
// size.
func NewSession(db *DB, mode GuardMode, minSize int) *Session {
	return &Session{db: db, mode: mode, minSize: minSize}
}

// QueryResult is a session query's outcome.
type QueryResult struct {
	Sum       int64
	Violation bool
	Notice    string
}

// Query asks for the sum over the given record indices. A refusal does
// not change the history (refusals reveal only allowed information: the
// query itself and the history, both known to the user — this keeps the
// violation notices information-free in the paper's sense).
func (s *Session) Query(set []int) QueryResult {
	uniq := make(map[int]bool)
	for _, i := range set {
		if i < 0 || i >= s.db.Size() {
			return QueryResult{Violation: true, Notice: fmt.Sprintf("record %d out of range", i)}
		}
		uniq[i] = true
	}
	if len(uniq) < s.minSize {
		return QueryResult{Violation: true, Notice: fmt.Sprintf("query set smaller than %d", s.minSize)}
	}
	vec := make([]float64, s.db.Size())
	for i := range uniq {
		vec[i] = 1
	}
	if s.mode == HistoryAware && s.wouldIsolate(vec) {
		return QueryResult{Violation: true, Notice: "query would determine an individual record"}
	}
	s.answered = append(s.answered, vec)
	return QueryResult{Sum: s.db.sum(setFromMap(uniq))}
}

// Answered returns the number of answered queries.
func (s *Session) Answered() int { return len(s.answered) }

func setFromMap(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	return out
}

// wouldIsolate reports whether adding vec to the answered query space
// makes some unit vector e_i expressible as a linear combination — i.e.
// whether record i's exact value would become computable from the
// answers.
func (s *Session) wouldIsolate(vec []float64) bool {
	n := s.db.Size()
	rows := make([][]float64, 0, len(s.answered)+1)
	for _, r := range s.answered {
		rows = append(rows, append([]float64(nil), r...))
	}
	rows = append(rows, append([]float64(nil), vec...))
	basis := rowReduce(rows, n)
	for i := 0; i < n; i++ {
		unit := make([]float64, n)
		unit[i] = 1
		if inSpan(basis, unit) {
			return true
		}
	}
	return false
}

const eps = 1e-9

// rowReduce Gaussian-eliminates the rows, returning a reduced basis of
// the row space.
func rowReduce(rows [][]float64, n int) [][]float64 {
	var basis [][]float64
	for _, r := range rows {
		r = reduceAgainst(basis, r, n)
		if lead(r, n) >= 0 {
			basis = append(basis, normalize(r, n))
		}
	}
	return basis
}

func lead(r []float64, n int) int {
	for i := 0; i < n; i++ {
		if r[i] > eps || r[i] < -eps {
			return i
		}
	}
	return -1
}

func normalize(r []float64, n int) []float64 {
	l := lead(r, n)
	if l < 0 {
		return r
	}
	p := r[l]
	out := make([]float64, n)
	for i := range out {
		out[i] = r[i] / p
	}
	return out
}

func reduceAgainst(basis [][]float64, r []float64, n int) []float64 {
	out := append([]float64(nil), r...)
	for _, b := range basis {
		l := lead(b, n)
		if l < 0 {
			continue
		}
		f := out[l] / b[l]
		if f == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			out[i] -= f * b[i]
		}
	}
	return out
}

// inSpan reports whether v lies in the span of the (reduced) basis.
func inSpan(basis [][]float64, v []float64) bool {
	n := len(v)
	r := reduceAgainst(basis, v, n)
	return lead(r, n) < 0
}
