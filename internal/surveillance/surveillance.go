// Package surveillance implements the surveillance protection mechanism of
// Section 3 of Jones & Lipton, as a flowchart-to-flowchart transformation:
// the instrumented mechanism is itself an ordinary flowchart program over
// integers, exactly as in the paper's construction.
//
// Every variable v of the subject program gets a surveillance variable v̄
// (spelled "v#" here) holding the set of input indices that may have
// affected v's current value, encoded as a bitmask so that set union is the
// language's | operator. The program counter's class is tracked in the
// dedicated shadow C#.
//
// Two variants are provided, matching Theorems 3 and 3′:
//
//   - Untimed (the paper's M): decision boxes accumulate their test's
//     classes into C#; the halt box releases the output only when
//     ȳ ∪ C̄ ⊆ J. Sound provided running time is not observable.
//   - Timed (the paper's M′): execution halts with a violation notice the
//     moment a disallowed variable is about to be tested, so the branch
//     structure — and hence the running time — never depends on disallowed
//     data. Sound even when running time is observable.
//
// A third update discipline, Monotone, implements the high-water-mark
// mechanism used for comparison in Section 4 (see package highwater):
// shadows only ever grow, so the mechanism cannot "forget".
package surveillance

import (
	"fmt"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
)

// Variant selects the instrumentation discipline.
type Variant int

// Instrumentation variants.
const (
	// Untimed is the paper's surveillance mechanism M (Theorem 3): checks
	// happen at halt boxes; sound when running time is unobservable.
	Untimed Variant = iota
	// Timed is the paper's M′ (Theorem 3′): a disallowed test halts
	// execution immediately, keeping running time independent of
	// disallowed data.
	Timed
	// Monotone is the high-water-mark discipline: like Untimed, but
	// shadow variables join with their previous value on assignment, so
	// classes are never forgotten.
	Monotone
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Untimed:
		return "surveillance"
	case Timed:
		return "surveillance-timed"
	case Monotone:
		return "high-water"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Notices issued by instrumented programs.
const (
	// NoticeOutput is issued when ȳ ∪ C̄ ⊈ J at a halt box.
	NoticeOutput = "disallowed information would reach the output"
	// NoticeTest is issued by the timed variant when a disallowed
	// variable is about to be tested.
	NoticeTest = "disallowed variable about to be tested"
)

// Instrument builds the surveillance protection mechanism for program q
// and security policy allow(J), returning a new flowchart program. The
// subject program is not modified. It returns an error if q does not
// validate, if q's arity exceeds the index-set capacity, or if q already
// contains instrumentation variables.
func Instrument(q *flowchart.Program, allowed lattice.IndexSet, variant Variant) (*flowchart.Program, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("surveillance: subject program invalid: %w", err)
	}
	k := q.Arity()
	if k > lattice.MaxIndex {
		return nil, fmt.Errorf("surveillance: arity %d exceeds %d", k, lattice.MaxIndex)
	}
	if !allowed.SubsetOf(lattice.AllInputs(k)) {
		return nil, fmt.Errorf("surveillance: allow%v names inputs beyond arity %d", allowed, k)
	}
	for _, v := range q.Variables() {
		if flowchart.IsShadowVar(v) {
			return nil, fmt.Errorf("surveillance: program already instrumented (variable %q)", v)
		}
	}

	m := &flowchart.Program{
		Name:   identName(q.Name + "_" + variant.String()),
		Inputs: append([]string(nil), q.Inputs...),
		Output: q.Output,
		Funcs:  q.Funcs,
	}
	jmask := flowchart.C(allowed.Mask())

	// Shared violation halts.
	violOutput := m.AddNode(flowchart.Node{Kind: flowchart.KindHalt, Violation: true, Notice: NoticeOutput})
	violTest := flowchart.NoNode
	if variant == Timed {
		violTest = m.AddNode(flowchart.Node{Kind: flowchart.KindHalt, Violation: true, Notice: NoticeTest})
	}

	// Pass 1: translate each subject node into a chain; successor fields
	// temporarily hold subject-node IDs and are patched in pass 2.
	entry := make([]flowchart.NodeID, len(q.Nodes))
	type patch struct {
		at    flowchart.NodeID // node in m to fix up
		field int              // 0 Next, 1 True, 2 False
		to    flowchart.NodeID // subject-node ID the field should reach
	}
	var patches []patch
	addPatch := func(at flowchart.NodeID, field int, to flowchart.NodeID) {
		patches = append(patches, patch{at, field, to})
	}

	for i := range q.Nodes {
		src := &q.Nodes[i]
		switch src.Kind {
		case flowchart.KindStart:
			// START, then x̄i := {i} for each input. Program-variable
			// shadows start at 0 (= ∅) by the language's initialisation
			// rule, so no explicit clearing is needed.
			start := m.AddNode(flowchart.Node{Kind: flowchart.KindStart, Next: flowchart.NoNode})
			m.Start = start
			prev := start
			for idx, in := range q.Inputs {
				a := m.AddNode(flowchart.Node{
					Kind:   flowchart.KindAssign,
					Target: flowchart.ShadowVar(in),
					Expr:   flowchart.C(lattice.NewIndexSet(idx + 1).Mask()),
					Next:   flowchart.NoNode,
				})
				m.Node(prev).Next = a
				prev = a
			}
			addPatch(prev, 0, src.Next)
			entry[i] = start

		case flowchart.KindAssign:
			shadow := shadowUnion(src.Expr, true)
			if variant == Monotone {
				// High-water: the target's class can only rise.
				shadow = flowchart.Or(flowchart.V(flowchart.ShadowVar(src.Target)), shadow)
			}
			s := m.AddNode(flowchart.Node{
				Kind:   flowchart.KindAssign,
				Target: flowchart.ShadowVar(src.Target),
				Expr:   shadow,
				Next:   flowchart.NoNode,
				Label:  src.Label,
			})
			a := m.AddNode(flowchart.Node{
				Kind:   flowchart.KindAssign,
				Target: src.Target,
				Expr:   src.Expr,
				Next:   flowchart.NoNode,
			})
			m.Node(s).Next = a
			addPatch(a, 0, src.Next)
			entry[i] = s

		case flowchart.KindDecision:
			testClasses := shadowUnion(src.Cond, true) // C̄ ∪ w̄1 ∪ ... ∪ w̄p
			first := flowchart.NoNode
			var beforeDecision flowchart.NodeID = flowchart.NoNode
			if variant == Timed {
				// if (C̄ ∪ w̄s) ⊈ J then halt with a violation — now.
				chk := m.AddNode(flowchart.Node{
					Kind:  flowchart.KindDecision,
					Cond:  flowchart.Ne(flowchart.B(flowchart.OpAndNot, testClasses, jmask), flowchart.C(0)),
					True:  violTest,
					False: flowchart.NoNode,
					Label: src.Label,
				})
				first = chk
				beforeDecision = chk
			}
			upd := m.AddNode(flowchart.Node{
				Kind:   flowchart.KindAssign,
				Target: flowchart.CounterShadow,
				Expr:   testClasses,
				Next:   flowchart.NoNode,
			})
			if first == flowchart.NoNode {
				first = upd
				m.Node(upd).Label = src.Label
			} else {
				m.Node(beforeDecision).False = upd
			}
			d := m.AddNode(flowchart.Node{
				Kind:  flowchart.KindDecision,
				Cond:  src.Cond,
				True:  flowchart.NoNode,
				False: flowchart.NoNode,
			})
			m.Node(upd).Next = d
			addPatch(d, 1, src.True)
			addPatch(d, 2, src.False)
			entry[i] = first

		case flowchart.KindHalt:
			if src.Violation {
				// A violation halt already suppresses the output; keep it.
				entry[i] = m.AddNode(*src)
				continue
			}
			// if (ȳ ∪ C̄) ⊆ J then halt y else Λ.
			outClasses := flowchart.Or(
				flowchart.V(flowchart.ShadowVar(q.OutputVar())),
				flowchart.V(flowchart.CounterShadow),
			)
			chk := m.AddNode(flowchart.Node{
				Kind:  flowchart.KindDecision,
				Cond:  flowchart.Eq(flowchart.B(flowchart.OpAndNot, outClasses, jmask), flowchart.C(0)),
				True:  flowchart.NoNode,
				False: violOutput,
				Label: src.Label,
			})
			h := m.AddNode(flowchart.Node{Kind: flowchart.KindHalt})
			m.Node(chk).True = h
			entry[i] = chk
		}
	}

	// Pass 2: patch successor fields to chain entries.
	for _, pt := range patches {
		n := m.Node(pt.at)
		switch pt.field {
		case 0:
			n.Next = entry[pt.to]
		case 1:
			n.True = entry[pt.to]
		case 2:
			n.False = entry[pt.to]
		}
	}

	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("surveillance: instrumented program invalid: %w", err)
	}
	return m, nil
}

// identName rewrites a display name into a legal DSL identifier so that
// printed instrumented programs re-parse.
func identName(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		out = append(out, '_')
	}
	return string(out)
}

// shadowUnion builds w̄1 | w̄2 | ... | w̄p over the variables mentioned by
// the expression or predicate, optionally joined with C̄. An expression
// with no variables yields C̄ alone (or the constant 0 = ∅).
func shadowUnion(node interface{ AddVars(map[string]bool) }, withCounter bool) flowchart.Expr {
	vars := flowchart.Vars(node)
	var e flowchart.Expr
	if withCounter {
		e = flowchart.V(flowchart.CounterShadow)
	}
	for _, v := range vars {
		sv := flowchart.V(flowchart.ShadowVar(v))
		if e == nil {
			e = sv
		} else {
			e = flowchart.Or(e, sv)
		}
	}
	if e == nil {
		e = flowchart.C(0)
	}
	return e
}

// Mechanism instruments q for allow(J) under the given variant and wraps
// the result as a core.Mechanism.
func Mechanism(q *flowchart.Program, allowed lattice.IndexSet, variant Variant) (core.Mechanism, error) {
	m, err := Instrument(q, allowed, variant)
	if err != nil {
		return nil, err
	}
	return core.FromProgram(m), nil
}

// MustMechanism is Mechanism but panics on error; for experiment tables
// whose programs are compile-time constants.
func MustMechanism(q *flowchart.Program, allowed lattice.IndexSet, variant Variant) core.Mechanism {
	m, err := Mechanism(q, allowed, variant)
	if err != nil {
		panic(err)
	}
	return m
}
