package surveillance

import (
	"strings"
	"testing"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
)

// progForgetful is the paper's Section 4 program (p. 48) separating
// surveillance from high-water mark: the class of r is forgotten when r is
// overwritten with a constant.
const progForgetful = `
program forgetful
inputs x1 x2

    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

// progBothArms is the paper's p. 49 program showing surveillance is not
// maximal: both arms assign y := x2, so Q itself is sound for allow(2),
// yet surveillance always reports a violation.
const progBothArms = `
program botharms
inputs x1 x2

    if x1 == 0 goto A else B
A:  y := x2
    halt
B:  y := x2
    halt
`

// progOneArm assigns y only on one branch of a disallowed test — the
// classic case where the program-counter class C̄ is essential.
const progOneArm = `
program onearm
inputs x1
    if x1 == 1 goto A else B
A:  y := 1
    halt
B:  halt
`

// progTiming is the Section 2 timing program: constant value, running time
// proportional to x1.
const progTiming = `
program timing
inputs x1
Loop: if x1 == 0 goto Done else Body
Body: x1 := x1 - 1
      goto Loop
Done: y := 1
      halt
`

func dom2() core.Domain { return core.Grid(2, 0, 1, 2) }

func TestForgetfulSurveillancePasses(t *testing.T) {
	q := flowchart.MustParse(progForgetful)
	allow2 := lattice.NewIndexSet(2)
	ms := MustMechanism(q, allow2, Untimed)

	// x2 = 0 path: r's class was forgotten, output should flow.
	o, err := ms.Run([]int64{7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if o.Violation {
		t.Errorf("M_s(7,0) = %v, want real output (surveillance forgets)", o)
	}
	if o.Value != 0 {
		t.Errorf("M_s(7,0) value = %d, want 0", o.Value)
	}
	// x2 ≠ 0 path: y := x1 is disallowed.
	o, err = ms.Run([]int64{7, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Violation {
		t.Errorf("M_s(7,5) = %v, want Λ", o)
	}
	if o.Notice != NoticeOutput {
		t.Errorf("notice = %q", o.Notice)
	}
}

func TestHighWaterNeverForgets(t *testing.T) {
	q := flowchart.MustParse(progForgetful)
	allow2 := lattice.NewIndexSet(2)
	mh := MustMechanism(q, allow2, Monotone)
	// M_h always outputs Λ on this program: r's class {1} is sticky.
	err := dom2().Enumerate(func(in []int64) error {
		o, err := mh.Run(in)
		if err != nil {
			return err
		}
		if !o.Violation {
			t.Errorf("M_h%v = %v, want Λ", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSurveillanceMoreCompleteThanHighWater(t *testing.T) {
	q := flowchart.MustParse(progForgetful)
	allow2 := lattice.NewIndexSet(2)
	ms := MustMechanism(q, allow2, Untimed)
	mh := MustMechanism(q, allow2, Monotone)
	rep, err := core.Compare(ms, mh, dom2())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relation != core.MoreComplete {
		t.Errorf("M_s vs M_h: %s, want more complete", rep)
	}
	// Both remain sound.
	pol := core.NewAllowSet(2, allow2)
	for _, m := range []core.Mechanism{ms, mh} {
		sr, err := core.CheckSoundness(m, pol, dom2(), core.ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Sound {
			t.Errorf("%s unsound: %s", m.Name(), sr)
		}
	}
}

func TestSurveillanceNotMaximal(t *testing.T) {
	q := flowchart.MustParse(progBothArms)
	allow2 := lattice.NewIndexSet(2)
	ms := MustMechanism(q, allow2, Untimed)
	// Surveillance always outputs Λ: the branch on x1 taints C̄.
	err := dom2().Enumerate(func(in []int64) error {
		o, err := ms.Run(in)
		if err != nil {
			return err
		}
		if !o.Violation {
			t.Errorf("M_s%v = %v, want Λ", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// But Q itself is sound for allow(2): M_max = Q here.
	pol := core.NewAllowSet(2, allow2)
	qm := core.FromProgram(q)
	sr, err := core.CheckSoundness(qm, pol, dom2(), core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Sound {
		t.Errorf("Q should be sound for allow(2): %s", sr)
	}
	rep, err := core.Compare(qm, ms, dom2())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Relation != core.MoreComplete {
		t.Errorf("Q vs M_s: %s, want Q more complete", rep)
	}
}

func TestCounterClassEssential(t *testing.T) {
	// progOneArm under allow(): the output value differs between the two
	// paths only via the branch. Without C̄ tracking the mechanism would
	// leak x1 by negative inference; with it, both paths report Λ.
	q := flowchart.MustParse(progOneArm)
	ms := MustMechanism(q, lattice.EmptySet, Untimed)
	pol := core.NewAllow(1)
	dom := core.Grid(1, 0, 1, 2)
	sr, err := core.CheckSoundness(ms, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Sound {
		t.Errorf("surveillance must be sound on one-armed if: %s", sr)
	}
	// And it is Λ everywhere, on both paths.
	for _, x := range []int64{0, 1} {
		o, err := ms.Run([]int64{x})
		if err != nil {
			t.Fatal(err)
		}
		if !o.Violation {
			t.Errorf("M_s(%d) = %v, want Λ", x, o)
		}
	}
}

func TestTheorem3Soundness(t *testing.T) {
	// Untimed surveillance is sound (value observation) for every allow
	// policy on these programs.
	progs := []string{progForgetful, progBothArms, progTiming, progOneArm}
	for _, src := range progs {
		q := flowchart.MustParse(src)
		k := q.Arity()
		dom := core.Grid(k, 0, 1, 2)
		for _, J := range lattice.Subsets(k) {
			ms := MustMechanism(q, J, Untimed)
			pol := core.NewAllowSet(k, J)
			sr, err := core.CheckSoundness(ms, pol, dom, core.ObserveValue)
			if err != nil {
				t.Fatal(err)
			}
			if !sr.Sound {
				t.Errorf("program %s, policy %s: %s", q.Name, pol.Name(), sr)
			}
		}
	}
}

func TestTheorem3PrimeTimedSoundness(t *testing.T) {
	// The timed variant M′ is sound even under the value+time observation.
	progs := []string{progForgetful, progBothArms, progTiming, progOneArm}
	for _, src := range progs {
		q := flowchart.MustParse(src)
		k := q.Arity()
		dom := core.Grid(k, 0, 1, 2)
		for _, J := range lattice.Subsets(k) {
			mp := MustMechanism(q, J, Timed)
			pol := core.NewAllowSet(k, J)
			sr, err := core.CheckSoundness(mp, pol, dom, core.ObserveValueAndTime)
			if err != nil {
				t.Fatal(err)
			}
			if !sr.Sound {
				t.Errorf("program %s, policy %s: %s", q.Name, pol.Name(), sr)
			}
		}
	}
}

func TestUntimedUnsoundUnderTimeObservation(t *testing.T) {
	// The paper: "it is easy to see that M is unsound when running time is
	// observable." The timing program's loop length leaks x1 through the
	// untimed mechanism's running time.
	q := flowchart.MustParse(progTiming)
	ms := MustMechanism(q, lattice.EmptySet, Untimed)
	pol := core.NewAllow(1)
	dom := core.Grid(1, 0, 1, 2, 3)
	sr, err := core.CheckSoundness(ms, pol, dom, core.ObserveValueAndTime)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Sound {
		t.Error("untimed surveillance should be unsound when time is observable")
	}
	// The timed variant halts at the first disallowed test, in constant
	// time, and is sound.
	mp := MustMechanism(q, lattice.EmptySet, Timed)
	srp, err := core.CheckSoundness(mp, pol, dom, core.ObserveValueAndTime)
	if err != nil {
		t.Fatal(err)
	}
	if !srp.Sound {
		t.Errorf("timed surveillance should close the timing channel: %s", srp)
	}
	o, err := mp.Run([]int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Violation || o.Notice != NoticeTest {
		t.Errorf("M'(3) = %v, want immediate test violation", o)
	}
}

func TestTimedAllowsPermittedLoops(t *testing.T) {
	// When the loop variable is allowed, M′ lets the loop run and the
	// output through.
	q := flowchart.MustParse(progTiming)
	mp := MustMechanism(q, lattice.NewIndexSet(1), Timed)
	o, err := mp.Run([]int64{3})
	if err != nil {
		t.Fatal(err)
	}
	if o.Violation || o.Value != 1 {
		t.Errorf("M'(3) with allow(1) = %v, want 1", o)
	}
}

func TestMechanismProperty(t *testing.T) {
	// Instrumented programs satisfy the mechanism property: when they
	// pass, the value equals Q's value.
	for _, src := range []string{progForgetful, progBothArms} {
		q := flowchart.MustParse(src)
		qm := core.FromProgram(q)
		for _, variant := range []Variant{Untimed, Timed, Monotone} {
			for _, J := range lattice.Subsets(q.Arity()) {
				m := MustMechanism(q, J, variant)
				ok, w, err := core.VerifyMechanism(m, qm, dom2())
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Errorf("%s violates mechanism property at %v", m.Name(), w)
				}
			}
		}
	}
}

func TestFullAllowPassesEverything(t *testing.T) {
	q := flowchart.MustParse(progForgetful)
	all := lattice.AllInputs(2)
	for _, variant := range []Variant{Untimed, Timed, Monotone} {
		m := MustMechanism(q, all, variant)
		err := dom2().Enumerate(func(in []int64) error {
			o, err := m.Run(in)
			if err != nil {
				return err
			}
			if o.Violation {
				t.Errorf("%s%v = %v, want pass under allow(1,2)", variant, in, o)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestInstrumentErrors(t *testing.T) {
	q := flowchart.MustParse(progOneArm)
	// Re-instrumenting an instrumented program is rejected.
	m1, err := Instrument(q, lattice.EmptySet, Untimed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(m1, lattice.EmptySet, Untimed); err == nil {
		t.Error("double instrumentation accepted")
	}
	// Policy naming inputs beyond arity is rejected.
	if _, err := Instrument(q, lattice.NewIndexSet(5), Untimed); err == nil {
		t.Error("allow(5) on arity-1 program accepted")
	}
	// Invalid subject program is rejected.
	bad := &flowchart.Program{Name: "bad"}
	if _, err := Instrument(bad, lattice.EmptySet, Untimed); err == nil {
		t.Error("invalid subject accepted")
	}
}

func TestInstrumentedProgramPrints(t *testing.T) {
	// The instrumented mechanism is itself a flowchart program; it prints
	// and re-parses in shadow-allowing mode.
	q := flowchart.MustParse(progForgetful)
	m, err := Instrument(q, lattice.NewIndexSet(2), Timed)
	if err != nil {
		t.Fatal(err)
	}
	text := flowchart.Print(m)
	if !strings.Contains(text, "x1#") || !strings.Contains(text, "C#") {
		t.Errorf("printed instrumentation lacks shadows:\n%s", text)
	}
	m2, err := flowchart.ParseWithOptions(text, flowchart.ParseOptions{AllowShadows: true})
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	// Behavioural agreement.
	err = dom2().Enumerate(func(in []int64) error {
		r1, err1 := m.Run(in)
		r2, err2 := m2.Run(in)
		if err1 != nil || err2 != nil {
			t.Fatalf("%v %v", err1, err2)
		}
		if r1 != r2 {
			t.Errorf("reparsed instrumented program diverges on %v: %v vs %v", in, r1, r2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVariantString(t *testing.T) {
	if Untimed.String() != "surveillance" || Timed.String() != "surveillance-timed" || Monotone.String() != "high-water" {
		t.Error("variant names")
	}
	if !strings.Contains(Variant(9).String(), "9") {
		t.Error("unknown variant name")
	}
}

func TestMustMechanismPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMechanism on bad input did not panic")
		}
	}()
	MustMechanism(&flowchart.Program{Name: "bad"}, lattice.EmptySet, Untimed)
}

func TestViolationHaltsPreserved(t *testing.T) {
	// Subject programs may already contain violation halts; they pass
	// through instrumentation unchanged.
	q := flowchart.MustParse(`
inputs x1
    if x1 < 0 goto Bad else OK
Bad: violation "negative input"
OK:  y := 1
     halt
`)
	m := MustMechanism(q, lattice.AllInputs(1), Untimed)
	o, err := m.Run([]int64{-1})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Violation || o.Notice != "negative input" {
		t.Errorf("original violation halt lost: %v", o)
	}
}
