package surveillance

import (
	"testing"

	"spm/internal/flowchart"
	"spm/internal/lattice"
)

func benchProgram(b *testing.B) *flowchart.Program {
	b.Helper()
	return flowchart.MustParse(progForgetful)
}

func BenchmarkInstrument(b *testing.B) {
	q := benchProgram(b)
	J := lattice.NewIndexSet(2)
	for _, v := range []Variant{Untimed, Timed, Monotone} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Instrument(q, J, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInstrumentedRun(b *testing.B) {
	q := benchProgram(b)
	J := lattice.NewIndexSet(2)
	in := []int64{7, 0}
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.Run(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, v := range []Variant{Untimed, Timed, Monotone} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			m, err := Instrument(q, J, v)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
