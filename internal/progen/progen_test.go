package progen

import (
	"math/rand"
	"testing"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/static"
	"spm/internal/surveillance"
	"spm/internal/transform"
)

func TestGeneratedProgramsAreTotal(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, -1, 0, 2)
	for trial := 0; trial < 50; trial++ {
		p := Generate(r, cfg)
		err := dom.Enumerate(func(in []int64) error {
			_, err := p.RunBudget(in, 1<<16, nil)
			return err
		})
		if err != nil {
			t.Fatalf("trial %d: generated program not total: %v\n%s", trial, err, flowchart.Print(p))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), DefaultConfig(2))
	b := Generate(rand.New(rand.NewSource(7)), DefaultConfig(2))
	if flowchart.Print(a) != flowchart.Print(b) {
		t.Error("same seed must yield the same program")
	}
}

func TestGeneratedProgramsVary(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		seen[flowchart.Print(Generate(r, DefaultConfig(2)))] = true
	}
	if len(seen) < 15 {
		t.Errorf("only %d distinct programs in 20 draws", len(seen))
	}
}

func TestGenerateZeroArity(t *testing.T) {
	p := Generate(rand.New(rand.NewSource(3)), DefaultConfig(0))
	if p.Arity() != 0 {
		t.Fatalf("arity = %d", p.Arity())
	}
	if _, err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem3PropertySweep is the E7 property check: for every generated
// program and every allow(J) policy, the untimed surveillance mechanism is
// sound under the value observation and the timed variant is sound under
// the value+time observation.
func TestTheorem3PropertySweep(t *testing.T) {
	r := rand.New(rand.NewSource(1975))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	subsets := lattice.Subsets(2)
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		for _, J := range subsets {
			pol := core.NewAllowSet(2, J)

			ms, err := surveillance.Mechanism(q, J, surveillance.Untimed)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			rep, err := core.CheckSoundness(ms, pol, dom, core.ObserveValue)
			if err != nil {
				t.Fatalf("trial %d: %v\n%s", trial, err, flowchart.Print(q))
			}
			if !rep.Sound {
				t.Fatalf("trial %d: Theorem 3 violated for %s:\n%s\n%s",
					trial, pol.Name(), rep, flowchart.Print(q))
			}

			mp, err := surveillance.Mechanism(q, J, surveillance.Timed)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			rep, err = core.CheckSoundness(mp, pol, dom, core.ObserveValueAndTime)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !rep.Sound {
				t.Fatalf("trial %d: Theorem 3' violated for %s:\n%s\n%s",
					trial, pol.Name(), rep, flowchart.Print(q))
			}
		}
	}
}

// TestHighWaterSoundnessProperty extends the sweep to the high-water-mark
// discipline.
func TestHighWaterSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		for _, J := range lattice.Subsets(2) {
			mh, err := surveillance.Mechanism(q, J, surveillance.Monotone)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.CheckSoundness(mh, core.NewAllowSet(2, J), dom, core.ObserveValue)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sound {
				t.Fatalf("trial %d: high-water unsound for allow%v:\n%s\n%s",
					trial, J, rep, flowchart.Print(q))
			}
		}
	}
}

// TestSurveillanceAtLeastAsCompleteAsHighWater checks M_s ≥ M_h on random
// programs (Section 4's comparison, generalised).
func TestSurveillanceAtLeastAsCompleteAsHighWater(t *testing.T) {
	r := rand.New(rand.NewSource(4848))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		for _, J := range lattice.Subsets(2) {
			ms, err := surveillance.Mechanism(q, J, surveillance.Untimed)
			if err != nil {
				t.Fatal(err)
			}
			mh, err := surveillance.Mechanism(q, J, surveillance.Monotone)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.Compare(ms, mh, dom)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Relation == core.LessComplete || rep.Relation == core.Incomparable {
				t.Fatalf("trial %d allow%v: M_s %s M_h\n%s",
					trial, J, rep.Relation, flowchart.Print(q))
			}
		}
	}
}

// TestStaticCertificationSoundProperty: whenever static certification
// accepts (q, allow(J)), the bare program must be sound for allow(J) —
// the semantic guarantee behind Section 5's zero-overhead enforcement.
func TestStaticCertificationSoundProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	trials := 40
	if testing.Short() {
		trials = 8
	}
	certified := 0
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		for _, J := range lattice.Subsets(2) {
			rep, err := static.Certify(q, J)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK {
				continue
			}
			certified++
			sr, err := core.CheckSoundness(core.FromProgram(q), core.NewAllowSet(2, J), dom, core.ObserveValue)
			if err != nil {
				t.Fatal(err)
			}
			if !sr.Sound {
				t.Fatalf("trial %d: certified but unsound for allow%v:\n%s\n%s",
					trial, J, sr, flowchart.Print(q))
			}
		}
	}
	if certified == 0 {
		t.Error("sweep never certified anything; generator or analysis too conservative to test the property")
	}
}

// TestUnionTheoremProperty: the union of the three sound mechanisms for
// the same (Q, I) is sound and at least as complete as each member.
func TestUnionTheoremProperty(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		for _, J := range lattice.Subsets(2) {
			pol := core.NewAllowSet(2, J)
			ms, err := surveillance.Mechanism(q, J, surveillance.Untimed)
			if err != nil {
				t.Fatal(err)
			}
			mh, err := surveillance.Mechanism(q, J, surveillance.Monotone)
			if err != nil {
				t.Fatal(err)
			}
			stat, _, err := static.Mechanism(q, J)
			if err != nil {
				t.Fatal(err)
			}
			u := core.MustUnion("union", ms, mh, stat)
			rep, err := core.CheckSoundness(u, pol, dom, core.CoarseNotices(core.ObserveValue))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sound {
				t.Fatalf("trial %d: union unsound for allow%v:\n%s\n%s",
					trial, J, rep, flowchart.Print(q))
			}
			for _, m := range []core.Mechanism{ms, mh, stat} {
				cr, err := core.Compare(u, m, dom)
				if err != nil {
					t.Fatal(err)
				}
				if cr.Relation == core.LessComplete || cr.Relation == core.Incomparable {
					t.Fatalf("trial %d: union %s %s", trial, cr.Relation, m.Name())
				}
			}
		}
	}
}

// TestMaximalDominatesEverythingProperty: the tabulated Theorem 2 maximal
// mechanism is sound and at least as complete as surveillance, high-water,
// and static certification on random programs.
func TestMaximalDominatesEverythingProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1976))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		qm := core.FromProgram(q)
		for _, J := range lattice.Subsets(2) {
			pol := core.NewAllowSet(2, J)
			max, err := core.Maximal(qm, pol, dom, core.ObserveValue)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.CheckSoundness(max, pol, dom, core.ObserveValue)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sound {
				t.Fatalf("trial %d: maximal unsound for allow%v:\n%s", trial, J, flowchart.Print(q))
			}
			ms, err := surveillance.Mechanism(q, J, surveillance.Untimed)
			if err != nil {
				t.Fatal(err)
			}
			mh, err := surveillance.Mechanism(q, J, surveillance.Monotone)
			if err != nil {
				t.Fatal(err)
			}
			stat, _, err := static.Mechanism(q, J)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []core.Mechanism{ms, mh, stat} {
				cr, err := core.Compare(max, m, dom)
				if err != nil {
					t.Fatal(err)
				}
				if cr.Relation == core.LessComplete || cr.Relation == core.Incomparable {
					t.Fatalf("trial %d allow%v: maximal %s %s\n%s",
						trial, J, cr.Relation, m.Name(), flowchart.Print(q))
				}
			}
		}
	}
}

// TestIfThenElseTransformSoundnessProperty: on random programs, wherever a
// diamond exists, the transformed program is functionally equivalent and
// surveillance on it stays sound for every policy.
func TestIfThenElseTransformSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	trials := 30
	if testing.Short() {
		trials = 8
	}
	transformed := 0
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		qt, n, err := transform.IfThenElseAll(q)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			continue
		}
		transformed++
		ok, w, err := transform.Equivalent(q, qt, dom)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: transform changed the function at %v\nbefore:\n%s\nafter:\n%s",
				trial, w, flowchart.Print(q), flowchart.Print(qt))
		}
		for _, J := range lattice.Subsets(2) {
			m, err := surveillance.Mechanism(qt, J, surveillance.Untimed)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.CheckSoundness(m, core.NewAllowSet(2, J), dom, core.ObserveValue)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sound {
				t.Fatalf("trial %d: transformed program unsound for allow%v:\n%s",
					trial, J, flowchart.Print(qt))
			}
		}
	}
	if transformed == 0 {
		t.Error("sweep never found a diamond; generator shape too restrictive to test the property")
	}
}

// TestSpecializationSoundnessProperty: the Example 9 specialised mechanism
// is sound for every allow(J) on random programs.
func TestSpecializationSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		for _, J := range lattice.Subsets(2) {
			gm, err := static.Specialize(q, J, 4)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := core.CheckSoundness(gm, core.NewAllowSet(2, J), dom, core.CoarseNotices(core.ObserveValue))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Sound {
				t.Fatalf("trial %d: specialised mechanism unsound for allow%v:\n%s",
					trial, J, flowchart.Print(q))
			}
		}
	}
}

// TestCompiledEquivalenceProperty: the slot-compiled executor agrees with
// the tree-walking interpreter — value, steps, and violations — on random
// programs and their surveillance instrumentations.
func TestCompiledEquivalenceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	cfg := DefaultConfig(2)
	dom := core.Grid(2, -1, 0, 3)
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		q := Generate(r, cfg)
		inst, err := surveillance.Instrument(q, lattice.NewIndexSet(1), surveillance.Untimed)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []*flowchart.Program{q, inst} {
			c, err := p.Compile()
			if err != nil {
				t.Fatalf("trial %d: compile: %v", trial, err)
			}
			err = dom.Enumerate(func(in []int64) error {
				ri, erri := p.RunBudget(in, 1<<16, nil)
				rc, errc := c.Run(in, 1<<16)
				if (erri == nil) != (errc == nil) {
					t.Fatalf("trial %d: error divergence on %v: %v vs %v", trial, in, erri, errc)
				}
				if erri == nil && ri != rc {
					t.Fatalf("trial %d: divergence on %v: %+v vs %+v\n%s",
						trial, in, ri, rc, flowchart.Print(p))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}
