// Package progen generates random flowchart programs that are total by
// construction (all loops are counter-bounded), for property-based testing
// of the paper's theorems: Theorem 3 and 3′ (surveillance soundness) and
// the soundness of static certification are checked over thousands of
// generated program × policy × domain combinations.
//
// Programs are produced as DSL text and parsed, so the generator also
// exercises the parser and printer continuously.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"spm/internal/flowchart"
)

// Config bounds the generated programs.
type Config struct {
	// Arity is the number of inputs x1..xk (k ≥ 0).
	Arity int
	// MaxDepth bounds if/loop nesting.
	MaxDepth int
	// MaxStmts bounds statements per block.
	MaxStmts int
	// MaxConst bounds integer literals (inclusive; literals are drawn
	// from [-MaxConst, MaxConst]).
	MaxConst int64
	// Loops enables counter-bounded loops.
	Loops bool
	// MaxLoopTrips bounds each loop's trip count (1..MaxLoopTrips).
	MaxLoopTrips int
}

// DefaultConfig returns a config producing small, varied programs.
func DefaultConfig(arity int) Config {
	return Config{
		Arity:        arity,
		MaxDepth:     3,
		MaxStmts:     4,
		MaxConst:     3,
		Loops:        true,
		MaxLoopTrips: 3,
	}
}

// generator carries the emission state.
type generator struct {
	r      *rand.Rand
	cfg    Config
	lines  []string
	labels int
	loops  int
	vars   []string // assignable variables
	reads  []string // readable variables (assignables + inputs)
}

// Generate produces a random total program. The same seed yields the same
// program.
func Generate(r *rand.Rand, cfg Config) *flowchart.Program {
	if cfg.MaxStmts < 1 {
		cfg.MaxStmts = 1
	}
	if cfg.MaxLoopTrips < 1 {
		cfg.MaxLoopTrips = 1
	}
	g := &generator{r: r, cfg: cfg}
	inputs := make([]string, cfg.Arity)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("x%d", i+1)
	}
	g.vars = []string{"y", "r0", "r1", "r2"}
	g.reads = append(append([]string(nil), g.vars...), inputs...)

	g.emitf("program gen")
	g.emitf("inputs %s", strings.Join(inputs, " "))
	g.block(cfg.MaxDepth)
	// Ensure the output is touched at least once so programs are not all
	// constantly zero.
	g.emitf("y := %s", g.expr(1))
	g.emitf("halt")

	src := strings.Join(g.lines, "\n") + "\n"
	p, err := flowchart.Parse(src)
	if err != nil {
		// Generation is closed over the DSL grammar; a parse failure is a
		// bug in this package, not an input condition.
		panic(fmt.Sprintf("progen: generated invalid program: %v\n%s", err, src))
	}
	return p
}

func (g *generator) emitf(format string, args ...interface{}) {
	g.lines = append(g.lines, fmt.Sprintf(format, args...))
}

func (g *generator) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

// block emits 1..MaxStmts statements.
func (g *generator) block(depth int) {
	n := 1 + g.r.Intn(g.cfg.MaxStmts)
	for i := 0; i < n; i++ {
		g.stmt(depth)
	}
}

func (g *generator) stmt(depth int) {
	roll := g.r.Intn(10)
	switch {
	case depth > 0 && roll >= 8 && g.cfg.Loops:
		g.loop(depth - 1)
	case depth > 0 && roll >= 5:
		g.ifElse(depth - 1)
	default:
		g.assign()
	}
}

func (g *generator) assign() {
	v := g.vars[g.r.Intn(len(g.vars))]
	g.emitf("%s := %s", v, g.expr(2))
}

func (g *generator) ifElse(depth int) {
	t, f, j := g.label("T"), g.label("F"), g.label("J")
	g.emitf("if %s goto %s else %s", g.pred(), t, f)
	g.emitf("%s:", t)
	g.block(depth)
	g.emitf("goto %s", j)
	g.emitf("%s:", f)
	g.block(depth)
	g.emitf("goto %s", j)
	g.emitf("%s:", j)
}

// loop emits a counter-bounded loop: total by construction regardless of
// what the body does, because the counter is fresh and only the loop
// header touches it.
func (g *generator) loop(depth int) {
	g.loops++
	counter := fmt.Sprintf("lc%d", g.loops)
	head, body, done := g.label("L"), g.label("B"), g.label("D")
	trips := 1 + g.r.Intn(g.cfg.MaxLoopTrips)
	g.emitf("%s := %d", counter, trips)
	g.emitf("%s:", head)
	g.emitf("if %s > 0 goto %s else %s", counter, body, done)
	g.emitf("%s:", body)
	g.block(depth)
	g.emitf("%s := %s - 1", counter, counter)
	g.emitf("goto %s", head)
	g.emitf("%s:", done)
}

// expr emits a random integer expression of bounded depth.
func (g *generator) expr(depth int) string {
	if depth == 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 && len(g.reads) > 0 {
			return g.reads[g.r.Intn(len(g.reads))]
		}
		return fmt.Sprintf("%d", g.r.Int63n(2*g.cfg.MaxConst+1)-g.cfg.MaxConst)
	}
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("ite(%s, %s, %s)", g.pred(), g.expr(depth-1), g.expr(depth-1))
	default:
		return fmt.Sprintf("(%s %% 4)", g.expr(depth-1))
	}
}

// pred emits a random comparison.
func (g *generator) pred() string {
	ops := []string{"==", "!=", "<", "<=", ">", ">="}
	return fmt.Sprintf("%s %s %s", g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
}
