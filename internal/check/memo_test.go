package check_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/fenton"
	"spm/internal/filesys"
	"spm/internal/lattice"
	"spm/internal/logon"
	"spm/internal/paging"
	"spm/internal/progen"
	"spm/internal/querydb"
	"spm/internal/tape"
)

// verdictJSON renders a Verdict for byte-identical comparison.
func verdictJSON(t *testing.T, v check.Verdict) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal verdict: %v", err)
	}
	return string(b)
}

// runPaths decides spec under the three execution paths that must be
// extensionally identical — prefix-memoized (the default), compiled
// without memoization, and the tree-walking interpreter — at one worker,
// where enumeration order (and therefore witness choice) is
// deterministic, and requires byte-identical verdicts.
func runPaths(t *testing.T, tag string, spec check.Spec, opts ...check.Option) check.Verdict {
	t.Helper()
	base := append([]check.Option{check.WithWorkers(1), check.WithChunk(7)}, opts...)
	memo, err := check.Run(context.Background(), spec, base...)
	if err != nil {
		t.Fatalf("%s: memoized Run: %v", tag, err)
	}
	plain, err := check.Run(context.Background(), spec, append(base, check.WithMemo(false))...)
	if err != nil {
		t.Fatalf("%s: WithMemo(false) Run: %v", tag, err)
	}
	interp, err := check.Run(context.Background(), spec, append(base, check.WithCompiled(false))...)
	if err != nil {
		t.Fatalf("%s: WithCompiled(false) Run: %v", tag, err)
	}
	if got, want := verdictJSON(t, memo), verdictJSON(t, plain); got != want {
		t.Fatalf("%s: memoized verdict differs from non-memoized:\n memo: %s\nplain: %s", tag, got, want)
	}
	if got, want := verdictJSON(t, memo), verdictJSON(t, interp); got != want {
		t.Fatalf("%s: memoized verdict differs from interpreter:\n  memo: %s\ninterp: %s", tag, got, want)
	}
	return memo
}

// TestMemoDifferentialProgen is the tentpole's correctness gate: on ≥ 25
// randomized total programs, the prefix-memoized sweep must produce
// byte-identical verdicts — soundness, maximality, and pass count — to
// the non-memoized compiled path and to the interpreter, whole-domain and
// sharded, merged and per-part.
func TestMemoDifferentialProgen(t *testing.T) {
	axis := []int64{-2, -1, 0, 1, 2, 3}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		arity := 2 + int(seed)%2
		p := progen.Generate(r, progen.DefaultConfig(arity))
		m := core.FromProgram(p)
		pol := core.NewAllow(arity, arity) // allow only the innermost input
		if seed%3 == 0 {
			pol = core.NewAllow(arity, 1)
		}
		dom := make(core.Domain, arity)
		for i := range dom {
			dom[i] = axis
		}
		for _, kind := range []check.Kind{check.Soundness, check.Maximality, check.PassCount} {
			spec := check.Spec{Kind: kind, Mechanism: m, Program: m, Policy: pol, Domain: dom}
			tag := p.Name + "/" + kind.String()
			runPaths(t, tag, spec)

			// Sharded halves: the evidence tables (Views/Classes) and the
			// merged whole-domain verdict must also be path-independent.
			size := 1
			for i := range dom {
				size *= len(dom[i])
			}
			half := int64(size / 2)
			var memoParts, plainParts []check.Verdict
			for _, shard := range []check.Shard{{Offset: 0, Count: half}, {Offset: half}} {
				s := spec
				s.Shard = shard
				memoParts = append(memoParts, runPaths(t, tag+"/sharded", s))
				plain, err := check.Run(context.Background(), s,
					check.WithWorkers(1), check.WithChunk(7), check.WithMemo(false))
				if err != nil {
					t.Fatalf("%s: sharded plain Run: %v", tag, err)
				}
				plainParts = append(plainParts, plain)
			}
			mergedMemo, err := check.Merge(memoParts...)
			if err != nil {
				t.Fatalf("%s: Merge memo parts: %v", tag, err)
			}
			mergedPlain, err := check.Merge(plainParts...)
			if err != nil {
				t.Fatalf("%s: Merge plain parts: %v", tag, err)
			}
			if got, want := verdictJSON(t, mergedMemo), verdictJSON(t, mergedPlain); got != want {
				t.Fatalf("%s: merged memoized verdict differs:\n memo: %s\nplain: %s", tag, got, want)
			}
		}
	}
}

// TestMemoDifferentialParallel covers the multi-worker engine, where
// witness choice is scheduling-dependent: the decision fields (sound,
// maximal, checked, passes) must still agree between the memoized and
// non-memoized paths.
func TestMemoDifferentialParallel(t *testing.T) {
	axis := []int64{-2, -1, 0, 1, 2, 3, 4, 5}
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		p := progen.Generate(r, progen.DefaultConfig(2))
		m := core.FromProgram(p)
		pol := core.NewAllow(2, 2)
		dom := core.Domain{axis, axis}
		for _, kind := range []check.Kind{check.Soundness, check.Maximality, check.PassCount} {
			spec := check.Spec{Kind: kind, Mechanism: m, Program: m, Policy: pol, Domain: dom}
			memo, err := check.Run(context.Background(), spec, check.WithWorkers(4), check.WithChunk(5))
			if err != nil {
				t.Fatalf("%s/%v: memo Run: %v", p.Name, kind, err)
			}
			plain, err := check.Run(context.Background(), spec, check.WithWorkers(4), check.WithChunk(5), check.WithMemo(false))
			if err != nil {
				t.Fatalf("%s/%v: plain Run: %v", p.Name, kind, err)
			}
			if memo.Sound != plain.Sound || memo.Maximal != plain.Maximal ||
				memo.Checked != plain.Checked || memo.Passes != plain.Passes {
				t.Fatalf("%s/%v: parallel verdicts disagree:\n memo: %+v\nplain: %+v", p.Name, kind, memo, plain)
			}
		}
	}
}

// TestMemoDifferentialMachines sweeps the paper's six worked-example
// machines through the same three execution paths. The machines are not
// flowchart-backed, so the memoized path must degrade to plain runs
// without disturbing enumeration order, view tables, or verdicts.
func TestMemoDifferentialMachines(t *testing.T) {
	fs, err := filesys.New(2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := querydb.NewDB([]int64{30, 50, 20, 40, 10, 60, 70, 80})
	if err != nil {
		t.Fatal(err)
	}
	// The statistical database as a mechanism: two queries derived from
	// the input tuple against a fresh history-aware session, so each Run
	// is a pure function of its input.
	queryMech := core.NewFunc("querydb", 2, func(in []int64) core.Outcome {
		s := querydb.NewSession(db, querydb.HistoryAware, 2)
		first := s.Query([]int{int(in[0] % 8), int((in[0] + 1) % 8)})
		second := s.Query([]int{int(in[0] % 8), int(in[1] % 8)})
		if second.Violation {
			return core.Outcome{Violation: true, Notice: second.Notice}
		}
		return core.Outcome{Value: first.Sum + second.Sum}
	})
	// The paged-memory password checker: a fresh two-page memory per run,
	// guess digits taken from the input.
	pagingMech := core.NewFunc("paging-check", 2, func(in []int64) core.Outcome {
		mem := paging.MustNew(64, 16)
		c, err := logon.NewChecker(mem, []byte{byte('0' + in[0]%10)}, 0)
		if err != nil {
			return core.Outcome{Violation: true, Notice: err.Error()}
		}
		ok, err := c.Check([]byte{byte('0' + in[1]%10)}, 15)
		if err != nil {
			return core.Outcome{Violation: true, Notice: err.Error()}
		}
		if ok {
			return core.Outcome{Value: 1}
		}
		return core.Outcome{Value: 0}
	})
	leak := fenton.MustAssemble("leak", `
    brz r1 ZERO
    jmp JOIN
ZERO: halt
JOIN: halt
`)
	fentonMech, err := fenton.NewMechanism(leak, 1, lattice.EmptySet, fenton.HaltAsError)
	if err != nil {
		t.Fatal(err)
	}

	machines := []struct {
		name string
		spec check.Spec
	}{
		{"fenton", check.Spec{Mechanism: fentonMech, Policy: core.NewAllow(1), Domain: core.Grid(1, 0, 1, 2)}},
		{"tape", check.Spec{Mechanism: &tape.Reader{UseTab: true, Cost: tape.TabConstant},
			Policy: core.NewAllow(2, 2), Domain: core.Domain{{5, 1234}, {7, 42}},
			Observation: core.ObserveValueAndTime}},
		{"logon", check.Spec{Mechanism: logon.Program(), Policy: logon.Policy(), Domain: logon.Domain(2)}},
		{"filesys", check.Spec{Mechanism: fs.Gatekeeper(), Policy: fs.Policy(),
			Domain: fs.Domain([]int64{0, 1}, false)}},
		{"querydb", check.Spec{Mechanism: queryMech, Policy: core.NewAllow(2, 1), Domain: core.Grid(2, 0, 1, 2, 3)}},
		{"paging", check.Spec{Mechanism: pagingMech, Policy: core.NewAllow(2, 2), Domain: core.Grid(2, 0, 1, 2)}},
	}
	for _, mc := range machines {
		for _, kind := range []check.Kind{check.Soundness, check.Maximality, check.PassCount} {
			spec := mc.spec
			spec.Kind = kind
			spec.Program = spec.Mechanism
			runPaths(t, mc.name+"/"+kind.String(), spec)
		}
	}
}
