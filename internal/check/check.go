// Package check is the single entry point for every exhaustive verdict the
// library produces. A Spec names what to decide — soundness of a mechanism
// for a policy, maximality against a reference program, or the pass count
// behind the experiment tables' utility columns — and Run decides it over
// the Spec's finite domain on the shared parallel sweep engine, honouring
// the caller's context: cancelling ctx stops the enumeration within one
// chunk of tuples.
//
//	verdict, err := check.Run(ctx, check.Spec{
//	    Kind:        check.Soundness,
//	    Mechanism:   m,
//	    Policy:      pol,
//	    Domain:      core.Grid(2, 0, 1, 2),
//	    Observation: core.ObserveValue,
//	}, check.WithWorkers(8))
//
// Functional options replace the positional knobs of the deprecated
// CheckSoundnessParallel/CheckMaximalitySweep families: WithWorkers and
// WithChunk tune the engine, WithProgress exposes the chunk cursor to
// long-running callers (the policy-checking service's job lifecycle), and
// WithCompiled(false)/WithMemo(false) force the interpreter and disable
// prefix memoization for ablations.
package check

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"spm/internal/core"
	"spm/internal/sweep"
)

// ErrBadSpec wraps every Spec-validation failure: a missing mechanism or
// policy, a maximality check without its reference program, or an unknown
// kind.
var ErrBadSpec = errors.New("check: bad spec")

// Kind selects which verdict Run decides.
type Kind int

// The verdict kinds.
const (
	// Soundness decides whether the observation of the mechanism's output
	// is constant on every policy class of the domain.
	Soundness Kind = iota
	// Maximality decides whether the mechanism is the Theorem 2 maximal
	// sound mechanism for Spec.Program and Spec.Policy over the domain.
	Maximality
	// PassCount counts the domain inputs on which the mechanism returns
	// real output (no violation notice) — utility in the paper's sense.
	PassCount
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Soundness:
		return "soundness"
	case Maximality:
		return "maximality"
	case PassCount:
		return "passcount"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalText renders the kind by name, so persisted verdicts (the
// verdict store's log records) stay readable and stable across reorderings
// of the constants.
func (k Kind) MarshalText() ([]byte, error) {
	switch k {
	case Soundness, Maximality, PassCount:
		return []byte(k.String()), nil
	}
	return nil, fmt.Errorf("check: cannot marshal unknown kind %d", int(k))
}

// UnmarshalText parses a kind name written by MarshalText.
func (k *Kind) UnmarshalText(text []byte) error {
	switch string(text) {
	case "soundness":
		*k = Soundness
	case "maximality":
		*k = Maximality
	case "passcount":
		*k = PassCount
	default:
		return fmt.Errorf("check: unknown kind %q", text)
	}
	return nil
}

// Passes returns how many enumeration passes over the domain the kind
// costs: soundness and pass counting visit every tuple once; maximality
// tabulates Q-constant classes and then verifies, visiting twice. Callers
// sizing progress totals (the service's done/total fraction) multiply the
// domain size by this. A sharded maximality run (Spec.Shard non-zero) is
// the exception: it gathers evidence in a single pass, so sharded callers
// count 1 regardless of kind.
func (k Kind) Passes() int64 {
	if k == Maximality {
		return 2
	}
	return 1
}

// Shard restricts a Run to the contiguous slice [Offset, Offset+Count) of
// the domain's mixed-radix index space — the unit the cluster coordinator
// dispatches to one node. The zero value means the whole domain; Count 0
// with a non-zero Offset means "from Offset through the end". Bounds are
// clamped to the domain size; negative values are ErrBadSpec.
//
// A sharded verdict is partial evidence, not a final answer: Run populates
// Verdict.Views (soundness) or Verdict.Classes (maximality) so that Merge
// over every shard of a partition reproduces exactly the whole-domain
// verdict, including conflicts between inputs that landed in different
// shards.
type Shard struct {
	Offset int64 `json:"offset"`
	Count  int64 `json:"count,omitempty"`
}

// IsZero reports whether the shard denotes the whole domain.
func (s Shard) IsZero() bool { return s == Shard{} }

// SplitRemaining cuts the shard in two at the midpoint of its remaining
// range: with done tuples already swept from the front, the remainder
// [Offset+done, Offset+Count) is halved with integer arithmetic and the
// shard becomes front = [Offset, mid) — the already-swept prefix plus the
// first half of the remainder — and back = [mid, Offset+Count). front and
// back partition the original exactly, which is what lets an elastic
// cluster coordinator steal a straggler's back half to an idle node and
// re-dispatch the shrunken front without perturbing the merged verdict.
//
// ok is false — and both halves zero — when there is nothing to split:
// done is negative, Count is zero (an unbounded "through the end" shard
// has no known remainder), done has consumed the shard, or fewer than two
// tuples remain (a split would leave an empty half).
func (s Shard) SplitRemaining(done int64) (front, back Shard, ok bool) {
	if done < 0 || s.Count <= 0 || done > s.Count-2 {
		return Shard{}, Shard{}, false
	}
	rem := s.Count - done
	mid := s.Offset + done + rem/2
	front = Shard{Offset: s.Offset, Count: mid - s.Offset}
	back = Shard{Offset: mid, Count: s.Offset + s.Count - mid}
	return front, back, true
}

// Spec names one verdict: what kind, about which mechanism, against which
// policy, over which finite domain, under which observation.
type Spec struct {
	// Kind selects the verdict; the zero value is Soundness.
	Kind Kind
	// Mechanism is the mechanism under test. Required.
	Mechanism core.Mechanism
	// Program is the maximality reference Q — the bare program the
	// mechanism protects. Required for Maximality, ignored otherwise.
	Program core.Mechanism
	// Policy is the information filter. Required for Soundness and
	// Maximality, ignored by PassCount.
	Policy core.Policy
	// Domain is the finite test domain whose cartesian product is swept.
	Domain core.Domain
	// Observation selects what the user can see of an outcome; the zero
	// value means core.ObserveValue.
	Observation core.Observation
	// Shard restricts the run to a contiguous slice of the index space;
	// the zero value sweeps the whole domain. Sharded verdicts carry the
	// cross-shard evidence Merge needs.
	Shard Shard
}

// Options collects the resolved functional options.
type Options struct {
	// Workers is the sweep parallelism; ≤ 0 means runtime.NumCPU().
	Workers int
	// Chunk is the tuples claimed per cursor advance; ≤ 0 picks a default.
	Chunk int
	// Progress, when non-nil, is advanced by the sweep engine as chunks
	// complete — the cursor behind job progress reporting.
	Progress *atomic.Int64
	// Compiled enables the compiled fast path for flowchart-backed
	// mechanisms; Run defaults it to true.
	Compiled bool
	// Memo enables prefix memoization on the compiled fast path; Run
	// defaults it to true.
	Memo bool
	// MemoStack enables the snapshot-stack tier on top of Memo — one
	// capture per domain axis, constant-suffix pruning, and the
	// content-addressed row cache; Run defaults it to true. It has no
	// effect when Memo is off.
	MemoStack bool
	// Batch is the batch/columnar execution width; values ≤ 1 keep the
	// scalar tiers.
	Batch int
	// Commit, when non-nil, receives the contiguous completed prefix of
	// the run's range (in tuples, relative to the range start) as it
	// grows — the resumable cursor behind crash-safe checkpointing.
	Commit func(done int64)
	// Throttle, when positive, makes every sweep worker pause this long
	// after each completed chunk — the artificial slow-node hook behind
	// straggler testing.
	Throttle time.Duration
	// Observer, when non-nil, receives the sweep engine's per-chunk
	// callbacks (worker, tuples, duration) — the seam behind chunk
	// counters and chunk-latency histograms.
	Observer sweep.Observer
	// Exec, when non-nil, accumulates execution-tier counters: memo
	// snapshot captures/replays/invalidations and batch
	// strides/lanes/divergence.
	Exec *core.ExecTally
}

// Option tunes one Run call.
type Option func(*Options)

// WithWorkers sets the sweep parallelism (≤ 0 means all CPUs).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithChunk sets the tuples claimed per cursor advance (≤ 0 means auto).
// The chunk also bounds cancellation latency: a cancelled sweep stops
// after at most one chunk per worker.
func WithChunk(n int) Option { return func(o *Options) { o.Chunk = n } }

// WithProgress installs the atomic cursor the sweep engine advances as
// chunks complete, so long-running checks can report done/total without
// per-tuple overhead.
func WithProgress(p *atomic.Int64) Option { return func(o *Options) { o.Progress = p } }

// WithCompiled toggles the compiled fast path for flowchart-backed
// mechanisms (default true). WithCompiled(false) forces every tuple
// through Mechanism.Run — the interpreter ablation.
func WithCompiled(on bool) Option { return func(o *Options) { o.Compiled = on } }

// WithCommit installs the sweep engine's contiguous-prefix hook: fn is
// called (serialized, strictly monotone, chunk granularity) with the
// number of leading tuples of the run's range that have all been visited.
// Unlike WithProgress — whose counter advances as chunks complete in any
// order — the committed prefix is a valid resumption point, which is what
// the persistent verdict store records as a job's crash-resume cursor.
func WithCommit(fn func(done int64)) Option { return func(o *Options) { o.Commit = fn } }

// WithMemo toggles prefix memoization on the compiled fast path (default
// true): the sweep walks each chunk in odometer order, and when only the
// innermost input changed since the previous tuple the compiled runner
// resumes from an execution snapshot — replaying just the instructions
// after the first read of that input — instead of starting at instruction
// zero. The verdict is identical either way (differential tests pin
// this); WithMemo(false) is the ablation baseline the prefix benchmarks
// compare against. It has no effect under WithCompiled(false).
func WithMemo(on bool) Option { return func(o *Options) { o.Memo = on } }

// WithMemoStack toggles the snapshot-stack tier (default true): instead
// of one snapshot at the innermost axis, each sweep worker keeps one
// capture per domain axis — taken at the first instruction that reads
// that axis's input — so an odometer carry at depth d invalidates only
// the captures below d and the next tuple replays just the tail beyond
// the shallowest changed input. Axes a program never reads collapse to
// constant entries answered without executing anything, and innermost
// rows whose captured state content-addresses equal reuse each other's
// results. The verdict is identical either way (differential tests pin
// this); WithMemoStack(false) falls back to the single-axis prefix memo —
// the ablation baseline the snapshot-stack benchmarks compare against.
// It has no effect under WithCompiled(false) or WithMemo(false).
func WithMemoStack(on bool) Option { return func(o *Options) { o.MemoStack = on } }

// WithBatch selects the batch/columnar execution tier: each sweep worker
// executes strides of up to n innermost-axis tuples in lockstep over
// structure-of-arrays register columns, amortizing instruction dispatch
// across the stride and letting the hot var⊕const / var⊕var loops
// auto-vectorize. Lanes that diverge at a branch, and strides whose
// mechanism is not batch-compilable, fall back to the scalar tiers
// transparently. Composes with WithMemo: one prefix snapshot per odometer
// row feeds every lane of the row's strides. n ≤ 1 keeps the scalar tiers
// (the default); the verdict is byte-identical at every width
// (differential tests pin this). It has no effect under
// WithCompiled(false).
func WithBatch(n int) Option { return func(o *Options) { o.Batch = n } }

// WithThrottle makes every sweep worker pause d after each completed
// chunk (d ≤ 0 is free, the default). It never changes which tuples are
// visited — only how fast — so the verdict is identical with and without
// it. It exists as a test hook: an artificially throttled node is how the
// elastic cluster coordinator's straggler detection (shard stealing,
// speculative re-dispatch) is exercised deterministically.
func WithThrottle(d time.Duration) Option { return func(o *Options) { o.Throttle = d } }

// WithObserver installs a sweep engine observer: obs.ChunkDone is called
// once per completed chunk with the worker index, the tuples covered,
// and the chunk's wall-clock duration. Implementations must be safe for
// concurrent use. The default (nil) pays one branch per chunk and
// nothing per tuple — the no-op cost rule the observability layer is
// built on.
func WithObserver(obs sweep.Observer) Option { return func(o *Options) { o.Observer = obs } }

// WithExecTally directs execution-tier counters into t: the memoized
// tiers count snapshot captures, replays, and invalidation fallbacks;
// the batch tier counts strides, lanes (utilization of the configured
// width), and lanes lost to branch divergence. Counters accumulate
// per-worker and uncontended (see core.ExecTally); nil — the default —
// keeps the execution hot paths entirely unobserved.
func WithExecTally(t *core.ExecTally) Option { return func(o *Options) { o.Exec = t } }

// Run decides the Spec's verdict over its domain, sweeping in parallel and
// honouring ctx: cancellation stops every worker within one chunk and
// returns ctx's error. Run is the only code path in the repository that
// executes verdicts — the deprecated core.Check*Parallel/Sweep functions,
// the spm CLI, the v1 and v2 HTTP services, and the experiment tables all
// reduce to it.
func Run(ctx context.Context, spec Spec, opts ...Option) (Verdict, error) {
	o := Options{Compiled: true, Memo: true, MemoStack: true}
	for _, opt := range opts {
		opt(&o)
	}
	if spec.Mechanism == nil {
		return Verdict{Kind: spec.Kind}, fmt.Errorf("%w: nil Mechanism", ErrBadSpec)
	}
	if spec.Shard.Offset < 0 || spec.Shard.Count < 0 {
		return Verdict{Kind: spec.Kind}, fmt.Errorf("%w: negative shard offset or count", ErrBadSpec)
	}
	if spec.Shard.Offset > math.MaxInt || spec.Shard.Count > math.MaxInt {
		return Verdict{Kind: spec.Kind}, fmt.Errorf("%w: shard bounds overflow int", ErrBadSpec)
	}
	if spec.Observation.Render == nil {
		spec.Observation = core.ObserveValue
	}
	sharded := !spec.Shard.IsZero()
	var commit func(done int)
	if o.Commit != nil {
		fn := o.Commit
		commit = func(done int) { fn(int64(done)) }
	}
	cc := core.CheckConfig{
		Config: sweep.Config{
			Workers:  o.Workers,
			Chunk:    o.Chunk,
			Offset:   int(spec.Shard.Offset),
			Count:    int(spec.Shard.Count),
			Progress: o.Progress,
			Commit:   commit,
			Throttle: o.Throttle,
			Observer: o.Observer,
		},
		Interpreted:  !o.Compiled,
		NoMemo:       !o.Memo,
		NoStack:      !o.MemoStack,
		CollectViews: sharded,
		Batch:        o.Batch,
		Exec:         o.Exec,
	}
	v := Verdict{Kind: spec.Kind, Mechanism: spec.Mechanism.Name(), Observation: spec.Observation.ObsName, Shard: spec.Shard}
	switch spec.Kind {
	case Soundness:
		if spec.Policy == nil {
			return v, fmt.Errorf("%w: soundness needs a Policy", ErrBadSpec)
		}
		rep, err := core.CheckSoundnessContext(ctx, spec.Mechanism, spec.Policy, spec.Domain, spec.Observation, cc)
		if err != nil {
			return v, err
		}
		v.Policy = rep.Policy
		v.Checked = rep.Checked
		v.Sound = rep.Sound
		v.WitnessA, v.WitnessB = rep.WitnessA, rep.WitnessB
		v.ObsA, v.ObsB = rep.ObsA, rep.ObsB
		v.Views = rep.Views
		return v, nil
	case Maximality:
		if spec.Policy == nil {
			return v, fmt.Errorf("%w: maximality needs a Policy", ErrBadSpec)
		}
		if spec.Program == nil {
			return v, fmt.Errorf("%w: maximality needs the reference Program", ErrBadSpec)
		}
		var rep core.MaximalityReport
		var err error
		if sharded {
			// One evidence-gathering pass; the verdict is rendered by
			// Merge once every shard's Classes table is in.
			rep, err = core.CheckMaximalityShard(ctx, spec.Mechanism, spec.Program, spec.Policy, spec.Domain, spec.Observation, cc)
		} else {
			// Whole-domain maximality enumerates the domain twice, so a
			// single monotone commit cursor cannot describe it; the hook
			// applies only to single-sweep runs.
			cc.Config.Commit = nil
			rep, err = core.CheckMaximalityContext(ctx, spec.Mechanism, spec.Program, spec.Policy, spec.Domain, spec.Observation, cc)
		}
		if err != nil {
			return v, err
		}
		v.Program = rep.Program
		v.Policy = rep.Policy
		v.Checked = rep.Checked
		v.Maximal = rep.Maximal
		v.Witness = rep.Witness
		v.Reason = rep.Reason
		v.Classes = rep.Classes
		return v, nil
	case PassCount:
		n, err := core.PassCountContext(ctx, spec.Mechanism, spec.Domain, cc)
		if err != nil {
			return v, err
		}
		lo, hi, err := cc.Bounds(sweep.Size(spec.Domain))
		if err != nil {
			return v, err
		}
		v.Checked = hi - lo
		v.Passes = n
		return v, nil
	default:
		return v, fmt.Errorf("%w: unknown kind %v", ErrBadSpec, spec.Kind)
	}
}
