package check

import (
	"context"
	"fmt"

	"spm/internal/core"
	"spm/internal/sweep"
)

// DefaultCheckpointEvery is the segment size RunCheckpointed uses when the
// caller passes every ≤ 0: large enough that the per-segment fold and save
// are noise against the sweep, small enough that a crash loses at most a
// few hundred milliseconds of compiled-runner work.
const DefaultCheckpointEvery = 1 << 16

// Checkpoint is the durable state of a partially-swept RunCheckpointed: a
// cursor into the spec's index range and the evidence-preserving fold of
// every segment below it. It round-trips through encoding/json (Verdict
// carries full wire tags), which is how the persistent verdict store
// records it; a job resumed from a Checkpoint sweeps only the remaining
// [Cursor, span) suffix and folds it onto Partial.
//
// Partial handed to a save callback aliases RunCheckpointed's accumulator
// and is only valid for the duration of the call — serialize it (the
// store does) or deep-copy it before returning.
type Checkpoint struct {
	// Cursor counts the tuples of the range already folded into Partial,
	// relative to the range start. It always lands on a segment boundary,
	// so resuming reproduces the uninterrupted run's segmentation.
	Cursor int64 `json:"cursor"`
	// Partial is the folded evidence of [0, Cursor): a sharded Verdict
	// whose Views/Classes tables carry everything Merge needs to finish
	// the job without revisiting the prefix.
	Partial *Verdict `json:"partial,omitempty"`
}

// RunCheckpointed decides the same verdict as Run, but resumably: the
// spec's index range is cut into every-tuple segments, each segment runs
// as a sharded Run (evidence collection on), its partial verdict is folded
// into an accumulator, and save is called with the updated Checkpoint
// after each fold. A caller that persists every Checkpoint can crash at
// any point and resume by passing the last saved state as from: the prefix
// below from.Cursor is never re-swept.
//
// The final verdict matches Run's: for a whole-domain spec the folded
// evidence is rendered through Merge into a whole-domain verdict (Shard
// zero, evidence tables dropped); for a sharded spec the fold itself — a
// partial verdict over spec.Shard with its evidence tables — is returned,
// ready for a coordinator's Merge. Sound/maximal bits, Checked totals, and
// pass counts are identical to an unsegmented Run. Witnesses follow the
// cluster-merge contract: with one worker the run is fully deterministic —
// an interrupted run resumed from its last checkpoint is byte-identical to
// an uninterrupted one, witnesses included — while with several workers
// witness choice inside a segment is scheduling-dependent, exactly as it
// already is between the workers of a plain Run.
//
// A save error aborts the run. Cancelling ctx stops the current segment
// within one chunk and returns ctx's error; the last saved Checkpoint
// remains the resumption point. A WithCommit hook observes the contiguous
// swept prefix across the whole run (resume offset included), at chunk
// granularity between checkpoints — the fine cursor the store logs to
// measure work a crash would lose.
func RunCheckpointed(ctx context.Context, spec Spec, from *Checkpoint, every int64, save func(Checkpoint) error, opts ...Option) (Verdict, error) {
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	if spec.Shard.Offset < 0 || spec.Shard.Count < 0 {
		return Verdict{Kind: spec.Kind}, fmt.Errorf("%w: negative shard offset or count", ErrBadSpec)
	}
	size := sweep.Size(core.Domain(spec.Domain))
	lo, hi, err := (sweep.Config{Offset: clampInt(spec.Shard.Offset), Count: clampInt(spec.Shard.Count)}).Bounds(size)
	if err != nil {
		return Verdict{Kind: spec.Kind}, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	span := int64(hi - lo)

	var acc *Verdict
	var cur int64
	if from != nil {
		cur = from.Cursor
		if from.Partial != nil {
			cp := *from.Partial
			acc = &cp
		}
		if cur < 0 || cur > span {
			return Verdict{Kind: spec.Kind}, fmt.Errorf("%w: resume cursor %d outside range of %d tuples", ErrBadSpec, cur, span)
		}
		if cur > 0 && acc == nil {
			return Verdict{Kind: spec.Kind}, fmt.Errorf("%w: resume cursor %d without partial evidence", ErrBadSpec, cur)
		}
	}

	// Degenerate range: nothing to segment, and a sharded Run over an
	// empty range would produce no evidence to fold. Delegate to Run so
	// validation and the empty-domain conventions stay identical.
	if span == 0 {
		return Run(ctx, spec, opts...)
	}

	// The commit hook must describe the whole checkpointed run, so each
	// segment's range-relative commits are rebased onto the segment start.
	base := int64(lo)
	for cur < span {
		segLen := every - cur%every // stay on every-aligned boundaries after any resume cursor
		if cur+segLen > span {
			segLen = span - cur
		}
		seg := spec
		seg.Shard = Shard{Offset: base + cur, Count: segLen}
		segOpts := opts
		segStart := cur
		segOpts = append(segOpts[:len(segOpts):len(segOpts)], Option(func(o *Options) {
			if fn := o.Commit; fn != nil {
				o.Commit = func(done int64) { fn(segStart + done) }
			}
		}))
		part, err := Run(ctx, seg, segOpts...)
		if err != nil {
			return part, err
		}
		if acc == nil {
			cp := part
			acc = &cp
		} else {
			folded, err := foldPartial(*acc, part)
			if err != nil {
				return folded, err
			}
			*acc = folded
		}
		cur += segLen
		if save != nil {
			if err := save(Checkpoint{Cursor: cur, Partial: acc}); err != nil {
				return *acc, fmt.Errorf("check: checkpoint save at cursor %d: %w", cur, err)
			}
		}
	}

	if !spec.Shard.IsZero() {
		// A sharded spec's answer is partial evidence by definition; hand
		// the fold — which spans exactly spec.Shard — to the coordinator.
		return *acc, nil
	}
	return Merge(*acc)
}

// foldPartial folds b — the partial verdict of the segment immediately
// following acc's range — into acc, preserving the evidence tables that
// Merge drops: the result is itself a partial verdict over the combined
// range, so the fold can continue segment by segment with bounded state.
// It applies exactly Merge's cross-shard semantics (first-seen view
// entries win, the first cross-segment disagreement decides soundness,
// class summaries fold with core.MergeClassSummaries), so Merge of the
// final fold equals Merge of all the segments.
func foldPartial(acc, b Verdict) (Verdict, error) {
	if b.Kind != acc.Kind {
		return acc, fmt.Errorf("%w: mixed kinds %v and %v", ErrBadMerge, acc.Kind, b.Kind)
	}
	if b.Mechanism != acc.Mechanism || b.Program != acc.Program ||
		b.Policy != acc.Policy || b.Observation != acc.Observation {
		return acc, fmt.Errorf("%w: parts describe different checks (%s/%s/%s/%s vs %s/%s/%s/%s)",
			ErrBadMerge, acc.Mechanism, acc.Program, acc.Policy, acc.Observation,
			b.Mechanism, b.Program, b.Policy, b.Observation)
	}
	if want := acc.Shard.Offset + acc.Shard.Count; b.Shard.Offset != want {
		return acc, fmt.Errorf("%w: segment at offset %d does not extend fold ending at %d", ErrBadMerge, b.Shard.Offset, want)
	}
	acc.Checked += b.Checked
	acc.Shard.Count += b.Shard.Count
	switch acc.Kind {
	case Soundness:
		if acc.Sound && !b.Sound {
			acc.Sound = false
			acc.WitnessA, acc.WitnessB = b.WitnessA, b.WitnessB
			acc.ObsA, acc.ObsB = b.ObsA, b.ObsB
		}
		views := make(map[string]core.ViewObs, len(acc.Views)+len(b.Views))
		for k, v := range acc.Views {
			views[k] = v
		}
		for _, view := range sortedKeys(b.Views) {
			e := b.Views[view]
			prev, ok := views[view]
			if !ok {
				views[view] = e
				continue
			}
			if prev.Obs != e.Obs && acc.Sound {
				acc.Sound = false
				acc.WitnessA, acc.WitnessB = prev.Witness, e.Witness
				acc.ObsA, acc.ObsB = prev.Obs, e.Obs
			}
		}
		acc.Views = views
	case Maximality:
		if acc.Maximal && !b.Maximal {
			acc.Maximal = false
			acc.Witness = b.Witness
			acc.Reason = b.Reason
		}
		classes := make(map[string]core.ClassSummary, len(acc.Classes)+len(b.Classes))
		for k, v := range acc.Classes {
			classes[k] = v
		}
		for view, cs := range b.Classes {
			if prev, ok := classes[view]; ok {
				classes[view] = core.MergeClassSummaries(prev, cs)
			} else {
				classes[view] = cs
			}
		}
		acc.Classes = classes
	case PassCount:
		acc.Passes += b.Passes
	default:
		return acc, fmt.Errorf("%w: unknown kind %v", ErrBadMerge, acc.Kind)
	}
	return acc, nil
}

// clampInt narrows an int64 shard bound to int, saturating rather than
// wrapping on 32-bit platforms; Run re-validates the exact bounds.
func clampInt(v int64) int {
	const maxInt = int(^uint(0) >> 1)
	if v > int64(maxInt) {
		return maxInt
	}
	return int(v)
}
