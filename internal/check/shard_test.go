package check

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"spm/internal/core"
	"spm/internal/sweep"
)

// shardRun runs spec over nShards contiguous shards and merges the parts.
func shardRun(t *testing.T, spec Spec, nShards int, opts ...Option) Verdict {
	t.Helper()
	size := sweep.Size(spec.Domain)
	base, rem := size/nShards, size%nShards
	offset := int64(0)
	parts := make([]Verdict, 0, nShards)
	for i := 0; i < nShards; i++ {
		count := int64(base)
		if i < rem {
			count++
		}
		s := spec
		s.Shard = Shard{Offset: offset, Count: count}
		v, err := Run(context.Background(), s, opts...)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		parts = append(parts, v)
		offset += count
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return merged
}

// normalize strips the fields a whole-domain verdict never carries, so a
// merged verdict can be compared to it with reflect.DeepEqual once the
// (legitimately nondeterministic) witness fields are aligned.
func witnessFree(v Verdict) Verdict {
	v.WitnessA, v.WitnessB, v.ObsA, v.ObsB = nil, nil, "", ""
	v.Witness, v.Reason = nil, ""
	return v
}

func TestShardedSoundnessMergesToWholeVerdict(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	for name, mech := range map[string]core.Mechanism{"instrumented": m, "bare": q} {
		whole, err := Run(context.Background(), Spec{Kind: Soundness, Mechanism: mech, Policy: pol, Domain: dom})
		if err != nil {
			t.Fatal(err)
		}
		for _, nShards := range []int{1, 2, 3, 5, 9} {
			merged := shardRun(t, Spec{Kind: Soundness, Mechanism: mech, Policy: pol, Domain: dom}, nShards, WithWorkers(2), WithChunk(1))
			if merged.Sound != whole.Sound || merged.Checked != whole.Checked {
				t.Errorf("%s %d shards: merged (sound=%v checked=%d) != whole (sound=%v checked=%d)",
					name, nShards, merged.Sound, merged.Checked, whole.Sound, whole.Checked)
			}
			if !merged.Sound {
				if merged.WitnessA == nil || merged.WitnessB == nil || merged.ObsA == merged.ObsB {
					t.Errorf("%s %d shards: unsound merge lacks a valid witness pair: %+v", name, nShards, merged)
				}
				// The witness pair must be a genuine counterexample: same
				// policy view, different observation.
				if pol.View(merged.WitnessA) != pol.View(merged.WitnessB) {
					t.Errorf("%s %d shards: witnesses %v / %v do not share a view", name, nShards, merged.WitnessA, merged.WitnessB)
				}
			}
			if !reflect.DeepEqual(witnessFree(merged), witnessFree(whole)) {
				t.Errorf("%s %d shards: merged verdict differs beyond witnesses:\n  %+v\nvs\n  %+v",
					name, nShards, witnessFree(merged), witnessFree(whole))
			}
		}
	}
}

// TestCrossShardConflictOnly builds a mechanism whose soundness violation
// is invisible inside every shard — the two conflicting inputs land in
// different shards — so only the Views-table merge can catch it.
func TestCrossShardConflictOnly(t *testing.T) {
	// Output = x1; policy allows only x2. Views (x2 values) are constant
	// within each x1-slice, which is exactly how contiguous shards split a
	// 2-input grid: shard by x1. Every shard is internally sound; the
	// whole domain is not.
	leak := core.NewFunc("leak-x1", 2, func(in []int64) core.Outcome {
		return core.Outcome{Value: in[0], Steps: 1}
	})
	pol := core.NewAllow(2, 2)
	dom := core.Grid(2, 0, 1, 2)
	merged := shardRun(t, Spec{Kind: Soundness, Mechanism: leak, Policy: pol, Domain: dom}, 3)
	if merged.Sound {
		t.Fatalf("cross-shard conflict not detected: %+v", merged)
	}
	if pol.View(merged.WitnessA) != pol.View(merged.WitnessB) || merged.ObsA == merged.ObsB {
		t.Fatalf("bogus witness pair: %+v", merged)
	}
	// Sanity: each shard alone is sound, so the conflict really is
	// cross-shard.
	for i := int64(0); i < 3; i++ {
		v, err := Run(context.Background(), Spec{
			Kind: Soundness, Mechanism: leak, Policy: pol, Domain: dom,
			Shard: Shard{Offset: i * 3, Count: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !v.Sound {
			t.Fatalf("shard %d unexpectedly unsound on its own", i)
		}
	}
}

func TestShardedMaximalityMergesToWholeVerdict(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	mechs := map[string]core.Mechanism{
		"instrumented": m,               // maximal for this fixture
		"null":         core.NewNull(2), // withholds on constant classes
		"bare":         q,               // leaks on varying classes
	}
	for name, mech := range mechs {
		whole, err := Run(context.Background(), Spec{Kind: Maximality, Mechanism: mech, Program: q, Policy: pol, Domain: dom})
		if err != nil {
			t.Fatal(err)
		}
		for _, nShards := range []int{1, 2, 4, 9} {
			merged := shardRun(t, Spec{Kind: Maximality, Mechanism: mech, Program: q, Policy: pol, Domain: dom}, nShards)
			if merged.Maximal != whole.Maximal || merged.Checked != whole.Checked {
				t.Errorf("%s %d shards: merged (maximal=%v checked=%d) != whole (maximal=%v checked=%d)",
					name, nShards, merged.Maximal, merged.Checked, whole.Maximal, whole.Checked)
			}
			if merged.Reason != whole.Reason {
				t.Errorf("%s %d shards: merged reason %q != whole reason %q", name, nShards, merged.Reason, whole.Reason)
			}
			if !reflect.DeepEqual(witnessFree(merged), witnessFree(whole)) {
				t.Errorf("%s %d shards: merged verdict differs beyond witnesses:\n  %+v\nvs\n  %+v",
					name, nShards, witnessFree(merged), witnessFree(whole))
			}
		}
	}
}

func TestShardedPassCountSums(t *testing.T) {
	_, m, _, dom := fixtures(t)
	whole, err := Run(context.Background(), Spec{Kind: PassCount, Mechanism: m, Domain: dom})
	if err != nil {
		t.Fatal(err)
	}
	merged := shardRun(t, Spec{Kind: PassCount, Mechanism: m, Domain: dom}, 4)
	if merged.Passes != whole.Passes || merged.Checked != whole.Checked {
		t.Fatalf("merged (passes=%d checked=%d) != whole (passes=%d checked=%d)",
			merged.Passes, merged.Checked, whole.Passes, whole.Checked)
	}
}

func TestShardedRunPopulatesEvidence(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	v, err := Run(context.Background(), Spec{
		Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom,
		Shard: Shard{Offset: 0, Count: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Checked != 4 || len(v.Views) == 0 || v.Shard.IsZero() {
		t.Fatalf("sharded soundness verdict lacks evidence: %+v", v)
	}
	mv, err := Run(context.Background(), Spec{
		Kind: Maximality, Mechanism: m, Program: q, Policy: pol, Domain: dom,
		Shard: Shard{Offset: 3, Count: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mv.Checked != 3 || len(mv.Classes) == 0 {
		t.Fatalf("sharded maximality verdict lacks evidence: %+v", mv)
	}
	// Whole-domain runs stay evidence-free: the wire format only pays for
	// the tables when a merge will need them.
	whole, err := Run(context.Background(), Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom})
	if err != nil {
		t.Fatal(err)
	}
	if whole.Views != nil || !whole.Shard.IsZero() {
		t.Fatalf("whole verdict unexpectedly carries shard evidence: %+v", whole)
	}
}

func TestShardedRunRejectsNegativeShard(t *testing.T) {
	_, m, pol, dom := fixtures(t)
	for _, sh := range []Shard{{Offset: -1}, {Count: -2}} {
		_, err := Run(context.Background(), Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom, Shard: sh})
		if !errors.Is(err, ErrBadSpec) {
			t.Fatalf("shard %+v: err = %v, want ErrBadSpec", sh, err)
		}
	}
}
