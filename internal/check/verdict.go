package check

import (
	"fmt"

	"spm/internal/core"
)

// Verdict is the common result of Run: the fields relevant to the Spec's
// kind are populated, the rest stay zero. It flattens the three legacy
// report types so callers (the service's wire format, the CLI) handle one
// shape.
//
// Verdict round-trips through encoding/json without loss — including the
// Views/Classes evidence tables — which is what lets the persistent
// verdict store checkpoint a partially-swept job's folded evidence and
// resume it after a restart (see RunCheckpointed and internal/store).
type Verdict struct {
	Kind Kind `json:"kind"`
	// Names, as reported by the checked artifacts.
	Mechanism   string `json:"mechanism,omitempty"`
	Program     string `json:"program,omitempty"` // Maximality only: the reference Q
	Policy      string `json:"policy,omitempty"`
	Observation string `json:"observation,omitempty"`
	// Checked counts the tuples visited by the verdict pass.
	Checked int `json:"checked"`

	// Soundness: whether the observation factors through the policy view;
	// on failure, two inputs sharing a view with different observations.
	Sound    bool    `json:"sound,omitempty"`
	WitnessA []int64 `json:"witness_a,omitempty"`
	WitnessB []int64 `json:"witness_b,omitempty"`
	ObsA     string  `json:"obs_a,omitempty"`
	ObsB     string  `json:"obs_b,omitempty"`

	// Maximality: whether the mechanism is the Theorem 2 maximal sound
	// mechanism; on failure, the deviating input and how it deviated.
	Maximal bool    `json:"maximal,omitempty"`
	Witness []int64 `json:"witness,omitempty"`
	Reason  string  `json:"reason,omitempty"`

	// PassCount: inputs on which the mechanism returned real output.
	Passes int `json:"passes,omitempty"`

	// Shard echoes Spec.Shard: zero for whole-domain verdicts, the index
	// range for partial ones. Merge folds partial verdicts back into a
	// whole one.
	Shard Shard `json:"shard,omitzero"`

	// Views is the soundness evidence of a sharded run: per policy class,
	// the first observation and a witness input. Two shards each
	// internally sound can still disagree on a class spanning them; Merge
	// needs these tables to catch that. Nil on whole-domain verdicts.
	Views map[string]core.ViewObs `json:"views,omitempty"`

	// Classes is the maximality evidence of a sharded run: per policy
	// class, Q's behaviour and m's deviations within the shard. Maximality
	// hinges on whole-domain class constancy, so a sharded run returns
	// evidence (plus any locally-definitive leak) and Merge renders the
	// verdict. Nil on whole-domain verdicts.
	Classes map[string]core.ClassSummary `json:"classes,omitempty"`
}

// SoundnessReport rebuilds the legacy report for a Soundness verdict.
func (v Verdict) SoundnessReport() core.SoundnessReport {
	return core.SoundnessReport{
		Mechanism:   v.Mechanism,
		Policy:      v.Policy,
		Observation: v.Observation,
		Sound:       v.Sound,
		Checked:     v.Checked,
		WitnessA:    v.WitnessA,
		WitnessB:    v.WitnessB,
		ObsA:        v.ObsA,
		ObsB:        v.ObsB,
	}
}

// MaximalityReport rebuilds the legacy report for a Maximality verdict.
func (v Verdict) MaximalityReport() core.MaximalityReport {
	return core.MaximalityReport{
		Mechanism:   v.Mechanism,
		Program:     v.Program,
		Policy:      v.Policy,
		Observation: v.Observation,
		Maximal:     v.Maximal,
		Checked:     v.Checked,
		Witness:     v.Witness,
		Reason:      v.Reason,
	}
}

// String renders the verdict in the same style as the legacy reports.
func (v Verdict) String() string {
	switch v.Kind {
	case Maximality:
		return v.MaximalityReport().String()
	case PassCount:
		return fmt.Sprintf("%s passes on %d of %d inputs", v.Mechanism, v.Passes, v.Checked)
	default:
		return v.SoundnessReport().String()
	}
}
