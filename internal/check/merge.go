package check

import (
	"errors"
	"fmt"
	"sort"

	"spm/internal/core"
)

// ErrBadMerge wraps every Merge-validation failure: no parts, mixed kinds,
// or parts naming different mechanisms, programs, policies, or
// observations.
var ErrBadMerge = errors.New("check: cannot merge verdicts")

// Merge folds the partial verdicts of a sharded run into the whole-domain
// verdict, using the same cross-shard semantics the in-process parallel
// checkers apply between workers (internal/core/parallel.go): per-worker
// tables there, per-node tables here.
//
// All parts must have the same Kind and name the same mechanism, program,
// policy, and observation. Checked totals and pass counts sum, so when the
// parts partition the index space the merged Checked equals the
// whole-domain count; overlapping parts (a shard retried on two nodes with
// both results kept) stay sound — duplicate evidence is idempotent — but
// inflate Checked, which is why the cluster coordinator keeps exactly one
// result per shard.
//
// Soundness: the merged verdict is unsound if any part is, or if two parts
// observed the same policy view differently — the conflict no single shard
// can see. Maximality: the parts' Classes tables are folded into the global
// class table (constancy = constant in every shard with one agreed
// observation) and the Theorem 2 conditions are applied per class; a part
// carrying a locally-definitive failure is honoured first. Witness choice
// prefers the lowest-offset shard and is deterministic for a given set of
// parts, but — exactly as with the in-process parallel checkers — may
// differ from the sequential checker's witness when several exist.
//
// The merged verdict is a whole-domain one: Shard is zero and the evidence
// tables are dropped.
func Merge(parts ...Verdict) (Verdict, error) {
	if len(parts) == 0 {
		return Verdict{}, fmt.Errorf("%w: no parts", ErrBadMerge)
	}
	sorted := make([]Verdict, len(parts))
	copy(sorted, parts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Shard.Offset < sorted[j].Shard.Offset })

	out := Verdict{
		Kind:        sorted[0].Kind,
		Mechanism:   sorted[0].Mechanism,
		Program:     sorted[0].Program,
		Policy:      sorted[0].Policy,
		Observation: sorted[0].Observation,
	}
	for _, p := range sorted {
		if p.Kind != out.Kind {
			return out, fmt.Errorf("%w: mixed kinds %v and %v", ErrBadMerge, out.Kind, p.Kind)
		}
		if p.Mechanism != out.Mechanism || p.Program != out.Program ||
			p.Policy != out.Policy || p.Observation != out.Observation {
			return out, fmt.Errorf("%w: parts describe different checks (%s/%s/%s/%s vs %s/%s/%s/%s)",
				ErrBadMerge, out.Mechanism, out.Program, out.Policy, out.Observation,
				p.Mechanism, p.Program, p.Policy, p.Observation)
		}
		out.Checked += p.Checked
	}

	switch out.Kind {
	case Soundness:
		mergeSoundness(&out, sorted)
	case Maximality:
		mergeMaximality(&out, sorted)
	case PassCount:
		for _, p := range sorted {
			out.Passes += p.Passes
		}
	default:
		return out, fmt.Errorf("%w: unknown kind %v", ErrBadMerge, out.Kind)
	}
	return out, nil
}

// mergeSoundness folds shard soundness verdicts: any locally-unsound part
// decides the verdict; otherwise the per-shard view tables are merged and
// the first cross-shard disagreement on a class does.
func mergeSoundness(out *Verdict, parts []Verdict) {
	out.Sound = true
	for _, p := range parts {
		if !p.Sound && out.Sound {
			out.Sound = false
			out.WitnessA, out.WitnessB = p.WitnessA, p.WitnessB
			out.ObsA, out.ObsB = p.ObsA, p.ObsB
		}
	}
	merged := make(map[string]core.ViewObs)
	for _, p := range parts {
		for _, view := range sortedKeys(p.Views) {
			e := p.Views[view]
			prev, ok := merged[view]
			if !ok {
				merged[view] = e
				continue
			}
			if prev.Obs != e.Obs && out.Sound {
				out.Sound = false
				out.WitnessA, out.WitnessB = prev.Witness, e.Witness
				out.ObsA, out.ObsB = prev.Obs, e.Obs
			}
		}
	}
}

// mergeMaximality folds shard evidence tables into the global class table
// and applies the Theorem 2 conditions: on a globally varying class m must
// withhold (a pass leaks); on a globally constant violating class m must
// violate (a pass alters); on a globally constant passing class m must
// reproduce Q's observation everywhere (withholding or altering fails).
func mergeMaximality(out *Verdict, parts []Verdict) {
	out.Maximal = true
	for _, p := range parts {
		if !p.Maximal && out.Maximal {
			out.Maximal = false
			out.Witness = p.Witness
			out.Reason = p.Reason
		}
	}
	global := make(map[string]core.ClassSummary)
	for _, p := range parts {
		for view, cs := range p.Classes {
			if prev, ok := global[view]; ok {
				global[view] = core.MergeClassSummaries(prev, cs)
			} else {
				global[view] = cs
			}
		}
	}
	for _, view := range sortedKeys(global) {
		if !out.Maximal {
			return
		}
		cs := global[view]
		switch {
		case !cs.QConstant:
			if cs.PassWitness != nil {
				out.Maximal = false
				out.Witness = cs.PassWitness
				out.Reason = core.ReasonLeaks
			}
		case cs.QViolates:
			if cs.AlterWitness != nil {
				out.Maximal = false
				out.Witness = cs.AlterWitness
				out.Reason = core.ReasonAlters
			}
		default:
			if cs.WithholdWitness != nil {
				out.Maximal = false
				out.Witness = cs.WithholdWitness
				out.Reason = core.ReasonWithholds
			} else if cs.AlterWitness != nil {
				out.Maximal = false
				out.Witness = cs.AlterWitness
				out.Reason = core.ReasonAlters
			}
		}
	}
}

// sortedKeys returns m's keys in sorted order, so merge results are
// deterministic for a given set of parts.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
