package check

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
)

// testProg leaks x1 into the output on the x2 != 0 path, so under allow(2)
// the bare program is unsound and the instrumented one sound.
const testProg = `
program demo
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

func fixtures(t *testing.T) (q *core.Program, m core.Mechanism, pol core.Policy, dom core.Domain) {
	t.Helper()
	p := flowchart.MustParse(testProg)
	mech, err := surveillance.Mechanism(p, lattice.NewIndexSet(2), surveillance.Untimed)
	if err != nil {
		t.Fatal(err)
	}
	return core.FromProgram(p), mech, core.NewAllow(2, 2), core.Grid(2, 0, 1, 2)
}

func TestRunSoundnessMatchesSequential(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	for name, mech := range map[string]core.Mechanism{"instrumented": m, "bare": q} {
		want, err := core.CheckSoundness(mech, pol, dom, core.ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range [][]Option{
			nil,
			{WithWorkers(1)},
			{WithWorkers(4), WithChunk(2)},
			{WithCompiled(false)},
		} {
			v, err := Run(context.Background(), Spec{
				Kind: Soundness, Mechanism: mech, Policy: pol, Domain: dom,
			}, opts...)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if v.Sound != want.Sound || v.Checked != want.Checked {
				t.Errorf("%s opts %d: verdict (sound=%v checked=%d) != sequential (sound=%v checked=%d)",
					name, len(opts), v.Sound, v.Checked, want.Sound, want.Checked)
			}
			if !v.Sound && (v.WitnessA == nil || v.WitnessB == nil) {
				t.Errorf("%s: unsound verdict without witnesses", name)
			}
		}
	}
}

func TestRunDefaultsObservation(t *testing.T) {
	_, m, pol, dom := fixtures(t)
	v, err := Run(context.Background(), Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom})
	if err != nil {
		t.Fatal(err)
	}
	if v.Observation != core.ObserveValue.ObsName {
		t.Errorf("observation defaulted to %q, want %q", v.Observation, core.ObserveValue.ObsName)
	}
}

func TestRunMaximality(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	want, err := core.CheckMaximality(m, q, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Run(context.Background(), Spec{
		Kind: Maximality, Mechanism: m, Program: q, Policy: pol, Domain: dom,
	}, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if v.Maximal != want.Maximal || v.Checked != want.Checked {
		t.Errorf("verdict (maximal=%v checked=%d) != sequential (maximal=%v checked=%d)",
			v.Maximal, v.Checked, want.Maximal, want.Checked)
	}
	if !v.Maximal && v.Reason == "" {
		t.Error("non-maximal verdict without a reason")
	}
}

func TestRunPassCount(t *testing.T) {
	_, m, _, dom := fixtures(t)
	v, err := Run(context.Background(), Spec{Kind: PassCount, Mechanism: m, Domain: dom})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: sequential enumeration.
	want := 0
	if err := dom.Enumerate(func(in []int64) error {
		o, err := m.Run(in)
		if err != nil {
			return err
		}
		if !o.Violation {
			want++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if v.Passes != want {
		t.Errorf("passes = %d, want %d", v.Passes, want)
	}
	if v.Checked != dom.Size() {
		t.Errorf("checked = %d, want %d", v.Checked, dom.Size())
	}
}

func TestRunProgressReachesTotal(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	var progress atomic.Int64
	if _, err := Run(context.Background(), Spec{
		Kind: Maximality, Mechanism: m, Program: q, Policy: pol, Domain: dom,
	}, WithProgress(&progress)); err != nil {
		t.Fatal(err)
	}
	if want := Maximality.Passes() * int64(dom.Size()); progress.Load() != want {
		t.Errorf("progress = %d, want %d (%d passes over %d tuples)",
			progress.Load(), want, Maximality.Passes(), dom.Size())
	}
}

func TestRunBadSpecs(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	cases := []struct {
		name string
		spec Spec
	}{
		{"nil mechanism", Spec{Kind: Soundness, Policy: pol, Domain: dom}},
		{"soundness without policy", Spec{Kind: Soundness, Mechanism: m, Domain: dom}},
		{"maximality without policy", Spec{Kind: Maximality, Mechanism: m, Program: q, Domain: dom}},
		{"maximality without program", Spec{Kind: Maximality, Mechanism: m, Policy: pol, Domain: dom}},
		{"unknown kind", Spec{Kind: Kind(42), Mechanism: m, Policy: pol, Domain: dom}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(context.Background(), tc.spec); !errors.Is(err, ErrBadSpec) {
				t.Errorf("err = %v, want ErrBadSpec", err)
			}
		})
	}
}

func TestRunCancelled(t *testing.T) {
	_, m, pol, _ := fixtures(t)
	big := core.Grid(2, core.Range(0, 127)...) // 16k tuples
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: big})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestKindStringsAndPasses(t *testing.T) {
	if Soundness.String() != "soundness" || Maximality.String() != "maximality" || PassCount.String() != "passcount" {
		t.Error("kind names changed")
	}
	if Soundness.Passes() != 1 || Maximality.Passes() != 2 || PassCount.Passes() != 1 {
		t.Error("kind pass counts changed")
	}
}

func TestVerdictStrings(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	sv, err := Run(context.Background(), Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom})
	if err != nil {
		t.Fatal(err)
	}
	if sv.String() != sv.SoundnessReport().String() {
		t.Errorf("soundness verdict string %q != report string", sv.String())
	}
	mv, err := Run(context.Background(), Spec{Kind: Maximality, Mechanism: m, Program: q, Policy: pol, Domain: dom})
	if err != nil {
		t.Fatal(err)
	}
	if mv.String() != mv.MaximalityReport().String() {
		t.Errorf("maximality verdict string %q != report string", mv.String())
	}
}
