package check

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"spm/internal/core"
)

// sv builds a shard soundness verdict with the shared fixture names.
func sv(shard Shard, checked int, views map[string]core.ViewObs) Verdict {
	return Verdict{
		Kind: Soundness, Mechanism: "m", Policy: "allow(2)", Observation: "value",
		Sound: true, Checked: checked, Shard: shard, Views: views,
	}
}

func TestMergeEmptyShard(t *testing.T) {
	// A shard clamped to nothing (offset at the end of the index space)
	// checks zero tuples and carries no views; merging it in must change
	// nothing.
	full := sv(Shard{Offset: 0, Count: 6}, 6, map[string]core.ViewObs{
		"0|": {Obs: "v=1", Witness: []int64{0, 0}},
		"1|": {Obs: "v=2", Witness: []int64{0, 1}},
	})
	empty := sv(Shard{Offset: 6}, 0, map[string]core.ViewObs{})
	merged, err := Merge(full, empty)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Sound || merged.Checked != 6 {
		t.Fatalf("merge with empty shard: %+v", merged)
	}
	alone, err := Merge(empty)
	if err != nil {
		t.Fatal(err)
	}
	if !alone.Sound || alone.Checked != 0 {
		t.Fatalf("empty shard alone: %+v", alone)
	}
}

func TestMergeAllShardsPass(t *testing.T) {
	parts := []Verdict{
		sv(Shard{Offset: 0, Count: 3}, 3, map[string]core.ViewObs{"a": {Obs: "v=1", Witness: []int64{0}}}),
		sv(Shard{Offset: 3, Count: 3}, 3, map[string]core.ViewObs{"b": {Obs: "v=2", Witness: []int64{3}}}),
		sv(Shard{Offset: 6, Count: 3}, 3, map[string]core.ViewObs{"a": {Obs: "v=1", Witness: []int64{6}}}),
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Sound || merged.Checked != 9 {
		t.Fatalf("all-pass merge: %+v", merged)
	}
	if merged.Views != nil || !merged.Shard.IsZero() {
		t.Fatalf("merged verdict should be whole-domain shaped: %+v", merged)
	}
}

func TestMergeWitnessInFirstVsLastShard(t *testing.T) {
	unsound := sv(Shard{}, 3, map[string]core.ViewObs{"a": {Obs: "v=1", Witness: []int64{9}}})
	unsound.Sound = false
	unsound.WitnessA, unsound.WitnessB = []int64{1, 0}, []int64{1, 1}
	unsound.ObsA, unsound.ObsB = "v=1", "v=2"

	clean := func(shard Shard) Verdict {
		return sv(shard, 3, map[string]core.ViewObs{"b": {Obs: "v=0", Witness: []int64{5}}})
	}
	for _, tc := range []struct {
		name  string
		parts []Verdict
	}{
		{"first", func() []Verdict {
			u := unsound
			u.Shard = Shard{Offset: 0, Count: 3}
			return []Verdict{u, clean(Shard{Offset: 3, Count: 3}), clean(Shard{Offset: 6, Count: 3})}
		}()},
		{"last", func() []Verdict {
			u := unsound
			u.Shard = Shard{Offset: 6, Count: 3}
			return []Verdict{clean(Shard{Offset: 0, Count: 3}), clean(Shard{Offset: 3, Count: 3}), u}
		}()},
	} {
		merged, err := Merge(tc.parts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if merged.Sound {
			t.Fatalf("%s: unsound shard lost in merge: %+v", tc.name, merged)
		}
		if !reflect.DeepEqual(merged.WitnessA, []int64{1, 0}) || !reflect.DeepEqual(merged.WitnessB, []int64{1, 1}) {
			t.Fatalf("%s: witness pair not preserved: %+v", tc.name, merged)
		}
		if merged.Checked != 9 {
			t.Fatalf("%s: checked = %d, want 9", tc.name, merged.Checked)
		}
	}
}

func TestMergeCrossShardViewConflict(t *testing.T) {
	a := sv(Shard{Offset: 0, Count: 3}, 3, map[string]core.ViewObs{"shared": {Obs: "v=1", Witness: []int64{0, 0}}})
	b := sv(Shard{Offset: 3, Count: 3}, 3, map[string]core.ViewObs{"shared": {Obs: "v=2", Witness: []int64{1, 0}}})
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Sound {
		t.Fatalf("cross-shard conflict missed: %+v", merged)
	}
	if !reflect.DeepEqual(merged.WitnessA, []int64{0, 0}) || !reflect.DeepEqual(merged.WitnessB, []int64{1, 0}) {
		t.Fatalf("conflict witnesses wrong: %+v", merged)
	}
	if merged.ObsA != "v=1" || merged.ObsB != "v=2" {
		t.Fatalf("conflict observations wrong: %+v", merged)
	}
}

func TestMergeDuplicateWitnessesAcrossOverlappingRetries(t *testing.T) {
	// The same shard executed twice (a retry whose first result was kept
	// anyway) must not fabricate a cross-shard conflict out of identical
	// evidence, and an unsound duplicate must stay a single witness pair.
	dup := sv(Shard{Offset: 0, Count: 4}, 4, map[string]core.ViewObs{
		"a": {Obs: "v=1", Witness: []int64{0, 0}},
		"b": {Obs: "v=2", Witness: []int64{0, 1}},
	})
	merged, err := Merge(dup, dup)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Sound {
		t.Fatalf("duplicate evidence fabricated a conflict: %+v", merged)
	}
	if merged.Checked != 8 {
		t.Fatalf("checked = %d, want 8 (overlap inflates Checked by design)", merged.Checked)
	}

	bad := dup
	bad.Sound = false
	bad.WitnessA, bad.WitnessB = []int64{0, 0}, []int64{0, 1}
	bad.ObsA, bad.ObsB = "v=1", "v=2"
	merged, err = Merge(bad, bad)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Sound || !reflect.DeepEqual(merged.WitnessA, []int64{0, 0}) || !reflect.DeepEqual(merged.WitnessB, []int64{0, 1}) {
		t.Fatalf("duplicate unsound shards merged wrong: %+v", merged)
	}
}

// TestMergeFullyDuplicatedShard is the speculative-re-dispatch shape: two
// complete results for the same range (the loser's cancel missed and both
// copies finished) reach the merge alongside a distinct shard. The
// verdict must be byte-identical to the duplicate-free merge in every
// field except Checked, which sums over inputs — overlap inflates it by
// design, which is exactly why the cluster runner keeps one result per
// offset.
func TestMergeFullyDuplicatedShard(t *testing.T) {
	a := sv(Shard{Offset: 0, Count: 4}, 4, map[string]core.ViewObs{
		"a": {Obs: "v=1", Witness: []int64{0, 0}},
		"b": {Obs: "v=2", Witness: []int64{0, 1}},
	})
	b := sv(Shard{Offset: 4, Count: 4}, 4, map[string]core.ViewObs{
		"a": {Obs: "v=1", Witness: []int64{1, 0}},
		"c": {Obs: "v=3", Witness: []int64{1, 1}},
	})
	clean, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	withDup, err := Merge(a, b, b)
	if err != nil {
		t.Fatal(err)
	}
	if withDup.Checked != clean.Checked+4 {
		t.Fatalf("duplicate shard's tuples not summed: %d vs %d+4", withDup.Checked, clean.Checked)
	}
	withDup.Checked = clean.Checked
	cleanJSON, _ := json.Marshal(clean)
	dupJSON, _ := json.Marshal(withDup)
	if !bytes.Equal(cleanJSON, dupJSON) {
		t.Fatalf("fully duplicated shard changed the merge:\n  %s\nvs\n  %s", dupJSON, cleanJSON)
	}
	if !reflect.DeepEqual(clean, withDup) {
		t.Fatalf("fully duplicated shard changed the merge: %+v vs %+v", withDup, clean)
	}

	// The same tolerance must hold when the duplicated shard carries the
	// counterexample: one witness pair, not a fabricated second conflict.
	u := sv(Shard{Offset: 4, Count: 4}, 4, map[string]core.ViewObs{
		"a": {Obs: "v=1", Witness: []int64{1, 0}},
	})
	u.Sound = false
	u.WitnessA, u.WitnessB = []int64{1, 0}, []int64{1, 1}
	u.ObsA, u.ObsB = "v=1", "v=9"
	cleanU, err := Merge(a, u)
	if err != nil {
		t.Fatal(err)
	}
	dupU, err := Merge(a, u, u)
	if err != nil {
		t.Fatal(err)
	}
	dupU.Checked = cleanU.Checked
	if !reflect.DeepEqual(cleanU, dupU) {
		t.Fatalf("duplicated unsound shard changed the merge: %+v vs %+v", dupU, cleanU)
	}
}

func TestMergeMaximalityClasses(t *testing.T) {
	mv := func(shard Shard, checked int, classes map[string]core.ClassSummary) Verdict {
		return Verdict{
			Kind: Maximality, Mechanism: "m", Program: "q", Policy: "allow(2)", Observation: "value",
			Maximal: true, Checked: checked, Shard: shard, Classes: classes,
		}
	}
	// Class "c" looks constant inside each shard but with different Q
	// observations — globally varying — and m passed on it in the second
	// shard: the merge must call it a leak.
	a := mv(Shard{Offset: 0, Count: 3}, 3, map[string]core.ClassSummary{
		"c": {QObs: "v=1", QConstant: true},
	})
	b := mv(Shard{Offset: 3, Count: 3}, 3, map[string]core.ClassSummary{
		"c": {QObs: "v=2", QConstant: true, PassWitness: []int64{1, 1}},
	})
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Maximal || merged.Reason != core.ReasonLeaks || !reflect.DeepEqual(merged.Witness, []int64{1, 1}) {
		t.Fatalf("cross-shard leak missed: %+v", merged)
	}

	// Same split, but m withheld instead: the class stays globally
	// varying, withholding there is correct, so the merge is maximal.
	b2 := mv(Shard{Offset: 3, Count: 3}, 3, map[string]core.ClassSummary{
		"c": {QObs: "v=2", QConstant: true, WithholdWitness: []int64{1, 0}},
	})
	a2 := mv(Shard{Offset: 0, Count: 3}, 3, map[string]core.ClassSummary{
		"c": {QObs: "v=1", QConstant: true, WithholdWitness: []int64{0, 0}},
	})
	merged, err = Merge(a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Maximal {
		t.Fatalf("withholding on a varying class wrongly failed: %+v", merged)
	}

	// Globally constant class where one shard withheld: not maximal.
	c1 := mv(Shard{Offset: 0, Count: 3}, 3, map[string]core.ClassSummary{
		"c": {QObs: "v=1", QConstant: true},
	})
	c2 := mv(Shard{Offset: 3, Count: 3}, 3, map[string]core.ClassSummary{
		"c": {QObs: "v=1", QConstant: true, WithholdWitness: []int64{1, 2}},
	})
	merged, err = Merge(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Maximal || merged.Reason != core.ReasonWithholds || !reflect.DeepEqual(merged.Witness, []int64{1, 2}) {
		t.Fatalf("cross-shard withhold missed: %+v", merged)
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(); !errors.Is(err, ErrBadMerge) {
		t.Fatalf("no parts: err = %v, want ErrBadMerge", err)
	}
	a := sv(Shard{Offset: 0, Count: 3}, 3, nil)
	kindMismatch := a
	kindMismatch.Kind = PassCount
	if _, err := Merge(a, kindMismatch); !errors.Is(err, ErrBadMerge) {
		t.Fatalf("mixed kinds: err = %v, want ErrBadMerge", err)
	}
	nameMismatch := a
	nameMismatch.Mechanism = "other"
	if _, err := Merge(a, nameMismatch); !errors.Is(err, ErrBadMerge) {
		t.Fatalf("mixed names: err = %v, want ErrBadMerge", err)
	}
}
