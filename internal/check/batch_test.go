package check_test

import (
	"context"
	"math/rand"
	"testing"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/progen"
)

// runBatchPaths extends runPaths with the batch tier: at one worker the
// batch verdict at every width — with and without memo composition — must
// be byte-identical to the scalar memoized verdict (which runPaths has
// already pinned to the plain and interpreter paths).
func runBatchPaths(t *testing.T, tag string, spec check.Spec, widths []int, opts ...check.Option) check.Verdict {
	t.Helper()
	scalar := runPaths(t, tag, spec, opts...)
	want := verdictJSON(t, scalar)
	base := append([]check.Option{check.WithWorkers(1), check.WithChunk(7)}, opts...)
	for _, w := range widths {
		batch, err := check.Run(context.Background(), spec, append(base, check.WithBatch(w))...)
		if err != nil {
			t.Fatalf("%s: WithBatch(%d) Run: %v", tag, w, err)
		}
		if got := verdictJSON(t, batch); got != want {
			t.Fatalf("%s: batch width %d verdict differs:\n batch: %s\nscalar: %s", tag, w, got, want)
		}
		nomemo, err := check.Run(context.Background(), spec, append(base, check.WithBatch(w), check.WithMemo(false))...)
		if err != nil {
			t.Fatalf("%s: WithBatch(%d)+WithMemo(false) Run: %v", tag, w, err)
		}
		if got := verdictJSON(t, nomemo); got != want {
			t.Fatalf("%s: unmemoized batch width %d verdict differs:\n batch: %s\nscalar: %s", tag, w, got, want)
		}
	}
	return scalar
}

// TestBatchDifferentialProgen is the batch tier's correctness gate: on 30
// randomized total programs, the batch sweep must produce byte-identical
// verdicts — soundness, maximality, and pass count — to the memoized,
// plain-compiled, and interpreted paths, whole-domain and sharded.
func TestBatchDifferentialProgen(t *testing.T) {
	axis := []int64{-2, -1, 0, 1, 2, 3}
	widths := []int{4, 32}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		arity := 2 + int(seed)%2
		p := progen.Generate(r, progen.DefaultConfig(arity))
		m := core.FromProgram(p)
		pol := core.NewAllow(arity, arity)
		if seed%3 == 0 {
			pol = core.NewAllow(arity, 1)
		}
		dom := make(core.Domain, arity)
		for i := range dom {
			dom[i] = axis
		}
		for _, kind := range []check.Kind{check.Soundness, check.Maximality, check.PassCount} {
			spec := check.Spec{Kind: kind, Mechanism: m, Program: m, Policy: pol, Domain: dom}
			tag := p.Name + "/" + kind.String()
			runBatchPaths(t, tag, spec, widths)

			// Sharded halves: shard cuts land mid-row, so batch strides clip
			// against shard bounds too; parts and the merged whole must
			// still be byte-identical to the scalar paths.
			size := 1
			for i := range dom {
				size *= len(dom[i])
			}
			half := int64(size / 2)
			var batchParts, scalarParts []check.Verdict
			for _, shard := range []check.Shard{{Offset: 0, Count: half}, {Offset: half}} {
				s := spec
				s.Shard = shard
				scalarParts = append(scalarParts, runBatchPaths(t, tag+"/sharded", s, widths))
				part, err := check.Run(context.Background(), s,
					check.WithWorkers(1), check.WithChunk(7), check.WithBatch(8))
				if err != nil {
					t.Fatalf("%s: sharded batch Run: %v", tag, err)
				}
				batchParts = append(batchParts, part)
			}
			mergedBatch, err := check.Merge(batchParts...)
			if err != nil {
				t.Fatalf("%s: Merge batch parts: %v", tag, err)
			}
			mergedScalar, err := check.Merge(scalarParts...)
			if err != nil {
				t.Fatalf("%s: Merge scalar parts: %v", tag, err)
			}
			if got, want := verdictJSON(t, mergedBatch), verdictJSON(t, mergedScalar); got != want {
				t.Fatalf("%s: merged batch verdict differs:\nbatch: %s\nscalar: %s", tag, got, want)
			}
		}
	}
}

// TestBatchDifferentialDivergenceHeavy sweeps handcrafted programs whose
// branches split on the innermost input — every stride diverges — plus
// loops that exhaust the step budget on some lanes only, through the full
// verdict path. The domains are chosen so chunk boundaries fall mid-row
// (batch width > remaining chunk) and rows are narrower than the widest
// batch.
func TestBatchDifferentialDivergenceHeavy(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"alternate", `
program alternate
inputs x1 x2
    if x2 % 2 == 0 goto Even else Odd
Even: y := x1 + x2
      halt
Odd:  y := x1 * x2
      halt
`},
		{"three-way-split", `
program threeway
inputs x1 x2
    if x2 > 1 goto Hi else Rest
Rest: if x2 < 0 goto Lo else Mid
Hi:  y := x1 + 100
     halt
Mid: violation "mid band"
Lo:  y := x1 - 100
     halt
`},
		{"lane-dependent-spin", `
program spinlanes
inputs x1 x2
    i := x2 & 15
    y := x1
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      y := y + 1
      goto Loop
Done: halt
`},
	}
	axis := []int64{-3, -2, -1, 0, 1, 2, 3, 4}
	for _, tc := range cases {
		p := flowchart.MustParse(tc.src)
		m := core.FromProgram(p)
		dom := core.Domain{axis, axis}
		for _, kind := range []check.Kind{check.Soundness, check.Maximality, check.PassCount} {
			spec := check.Spec{Kind: kind, Mechanism: m, Program: m, Policy: core.NewAllow(2, 1), Domain: dom}
			// Chunk 5 < widths 8 and 32: every chunk tail is narrower than
			// the batch, and width 1 must equal the scalar path exactly.
			runBatchPaths(t, tc.name+"/"+kind.String(), spec, []int{1, 8, 32}, check.WithChunk(5))
		}
	}
}

// TestBatchDifferentialParallel covers the multi-worker engine: witness
// choice is scheduling-dependent there, but the decision fields must agree
// between the batch and scalar paths.
func TestBatchDifferentialParallel(t *testing.T) {
	axis := []int64{-2, -1, 0, 1, 2, 3, 4, 5}
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		p := progen.Generate(r, progen.DefaultConfig(2))
		m := core.FromProgram(p)
		spec0 := check.Spec{Mechanism: m, Program: m, Policy: core.NewAllow(2, 2), Domain: core.Domain{axis, axis}}
		for _, kind := range []check.Kind{check.Soundness, check.Maximality, check.PassCount} {
			spec := spec0
			spec.Kind = kind
			batch, err := check.Run(context.Background(), spec, check.WithWorkers(4), check.WithChunk(5), check.WithBatch(8))
			if err != nil {
				t.Fatalf("%s/%v: batch Run: %v", p.Name, kind, err)
			}
			scalar, err := check.Run(context.Background(), spec, check.WithWorkers(4), check.WithChunk(5))
			if err != nil {
				t.Fatalf("%s/%v: scalar Run: %v", p.Name, kind, err)
			}
			if batch.Sound != scalar.Sound || batch.Maximal != scalar.Maximal ||
				batch.Checked != scalar.Checked || batch.Passes != scalar.Passes {
				t.Fatalf("%s/%v: parallel verdicts disagree:\n batch: %+v\nscalar: %+v", p.Name, kind, batch, scalar)
			}
		}
	}
}

// TestBatchNonFlowchartFallback: WithBatch on a mechanism the batch tier
// cannot compile (a plain Go function) must silently take the scalar path
// — identical verdicts, no error.
func TestBatchNonFlowchartFallback(t *testing.T) {
	m := core.NewFunc("parity", 2, func(in []int64) core.Outcome {
		if (in[0]+in[1])%2 != 0 {
			return core.Outcome{Violation: true, Notice: "odd"}
		}
		return core.Outcome{Value: in[0]}
	})
	spec := check.Spec{Kind: check.Soundness, Mechanism: m, Policy: core.NewAllow(2, 1), Domain: core.Grid(2, 0, 1, 2, 3)}
	runBatchPaths(t, "func-mechanism", spec, []int{4, 16})
}
