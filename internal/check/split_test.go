package check

import "testing"

// checkSplitRemaining asserts the SplitRemaining contract for one input:
// when ok, front and back partition the original range exactly — front
// keeps the origin (and everything already swept), back is non-empty and
// abuts front — and when not ok the inputs were genuinely unsplittable.
func checkSplitRemaining(t *testing.T, s Shard, done int64) {
	t.Helper()
	front, back, ok := s.SplitRemaining(done)
	if !ok {
		if done >= 0 && s.Count > 0 && done <= s.Count-2 {
			t.Fatalf("SplitRemaining(%+v, %d): refused a splittable range", s, done)
		}
		return
	}
	if done < 0 || s.Count <= 0 || done > s.Count-2 {
		t.Fatalf("SplitRemaining(%+v, %d): split an unsplittable range into %+v / %+v", s, done, front, back)
	}
	if front.Offset != s.Offset {
		t.Fatalf("SplitRemaining(%+v, %d): front moved to %d", s, done, front.Offset)
	}
	if front.Count < 1 || back.Count < 1 {
		t.Fatalf("SplitRemaining(%+v, %d): empty half: %+v / %+v", s, done, front, back)
	}
	if back.Offset != front.Offset+front.Count {
		t.Fatalf("SplitRemaining(%+v, %d): gap or overlap: %+v / %+v", s, done, front, back)
	}
	if front.Count+back.Count != s.Count {
		t.Fatalf("SplitRemaining(%+v, %d): coverage changed: %+v / %+v", s, done, front, back)
	}
	if done > front.Count {
		t.Fatalf("SplitRemaining(%+v, %d): swept work leaked into the stolen back half: %+v", s, done, front)
	}
	// The split halves what remains: the halves of Count-done differ by
	// at most one, with the larger half going to the back (the thief is
	// the faster party; the front's holder re-sweeps its prefix anyway).
	remFront, remBack := front.Count-done, back.Count
	if d := remBack - remFront; d < 0 || d > 1 {
		t.Fatalf("SplitRemaining(%+v, %d): unbalanced remainder split %d/%d", s, done, remFront, remBack)
	}
}

// TestSplitRemainingProperties seeds the contract checker with the
// boundary shapes: nothing done, everything-but-two done, one-past
// splittable, negative cursors, unbounded (Count 0) shards.
func TestSplitRemainingProperties(t *testing.T) {
	for _, tc := range []struct {
		s    Shard
		done int64
	}{
		{Shard{Offset: 0, Count: 10}, 0},
		{Shard{Offset: 0, Count: 10}, 5},
		{Shard{Offset: 0, Count: 10}, 8},  // exactly two remain: last splittable cursor
		{Shard{Offset: 0, Count: 10}, 9},  // one remains: refuse
		{Shard{Offset: 0, Count: 10}, 10}, // nothing remains: refuse
		{Shard{Offset: 0, Count: 10}, -1}, // corrupt cursor: refuse
		{Shard{Offset: 0, Count: 0}, 0},   // unbounded shard: refuse
		{Shard{Offset: 0, Count: 2}, 0},
		{Shard{Offset: 4096, Count: 4096}, 1024},
		{Shard{Offset: 160000 - 13333, Count: 13333}, 13331},
	} {
		checkSplitRemaining(t, tc.s, tc.done)
	}
}

// FuzzSplitRemaining drives the contract from arbitrary cursors and
// ranges — the same invariants the cluster coordinator's shard stealing
// relies on for exactness: front ∪ back must be exactly the original
// range or the merged verdict would double-count or miss tuples.
func FuzzSplitRemaining(f *testing.F) {
	f.Add(int64(0), int64(10), int64(3))
	f.Add(int64(4096), int64(4096), int64(0))
	f.Add(int64(1)<<40, int64(1)<<20, int64(1)<<19)
	f.Add(int64(5), int64(2), int64(-7))
	f.Fuzz(func(t *testing.T, offset, count, done int64) {
		if offset < 0 || count < 0 || offset > (int64(1)<<60) || count > (int64(1)<<60) {
			t.Skip()
		}
		if done > (int64(1)<<60) || done < -(int64(1)<<60) {
			t.Skip()
		}
		checkSplitRemaining(t, Shard{Offset: offset, Count: count}, done)
	})
}
