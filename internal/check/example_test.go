package check_test

import (
	"context"
	"errors"
	"fmt"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/flowchart"
)

// exampleProg leaks x1 whenever x2 != 0, so it is unsound for the policy
// that allows only x2 to be seen.
const exampleProg = `
program demo
inputs x1 x2
    if x2 == 0 goto Zero else NonZero
Zero:    y := 0
         halt
NonZero: y := x1
         halt
`

// Run decides a verdict over the Spec's finite domain on the parallel
// sweep engine; one worker keeps the witness choice deterministic.
func ExampleRun() {
	m := core.FromProgram(flowchart.MustParse(exampleProg))
	v, err := check.Run(context.Background(), check.Spec{
		Kind:      check.Soundness,
		Mechanism: m,
		Policy:    core.NewAllow(2, 2), // the user may see x2 only
		Domain:    core.Grid(2, 0, 1, 2),
	}, check.WithWorkers(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("sound=%v checked=%d witnesses=%v,%v\n", v.Sound, v.Checked, v.WitnessA, v.WitnessB)
	// Output: sound=false checked=9 witnesses=[0 1],[1 1]
}

// Run honours its context: a cancelled context stops the sweep within one
// chunk of tuples and surfaces the context's error.
func ExampleRun_cancellation() {
	m := core.FromProgram(flowchart.MustParse(exampleProg))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // a deadline or a user abort in real code
	_, err := check.Run(ctx, check.Spec{
		Kind:      check.Soundness,
		Mechanism: m,
		Policy:    core.NewAllow(2, 2),
		Domain:    core.Grid(2, core.Range(0, 99)...),
	})
	fmt.Println(errors.Is(err, context.Canceled))
	// Output: true
}

// A sharded run covers a contiguous slice of the domain's mixed-radix
// index space and returns partial evidence; Merge folds the shards into
// exactly the whole-domain verdict — including conflicts between inputs
// that landed in different shards.
func ExampleMerge() {
	m := core.FromProgram(flowchart.MustParse(exampleProg))
	spec := check.Spec{
		Kind:      check.Soundness,
		Mechanism: m,
		Policy:    core.NewAllow(2, 2),
		Domain:    core.Grid(2, 0, 1, 2),
	}
	var parts []check.Verdict
	for _, shard := range []check.Shard{{Offset: 0, Count: 5}, {Offset: 5}} {
		s := spec
		s.Shard = shard
		v, err := check.Run(context.Background(), s, check.WithWorkers(1))
		if err != nil {
			panic(err)
		}
		parts = append(parts, v)
	}
	whole, err := check.Merge(parts...)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sound=%v checked=%d\n", whole.Sound, whole.Checked)
	// Output: sound=false checked=9
}
