package check_test

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/progen"
)

type chunkTally struct {
	chunks atomic.Int64
	tuples atomic.Int64
}

func (c *chunkTally) ChunkDone(worker, tuples int, d time.Duration) {
	c.chunks.Add(1)
	c.tuples.Add(int64(tuples))
}

// TestObserverAndTally pins the observability seams end to end through
// check.Run: the sweep observer must see every tuple exactly once, and
// the execution tally must account for the memo and batch tiers'
// activity — on both the scalar memoized path and the batch path.
func TestObserverAndTally(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := progen.Generate(r, progen.DefaultConfig(2))
	m := core.FromProgram(p)
	pol := core.NewAllow(2, 1)
	axis := []int64{-2, -1, 0, 1, 2, 3, 4, 5}
	dom := core.Domain{axis, axis}
	size := int64(len(axis) * len(axis))
	spec := check.Spec{Kind: check.Soundness, Mechanism: m, Policy: pol, Domain: dom}

	t.Run("scalar", func(t *testing.T) {
		obs := &chunkTally{}
		tally := &core.ExecTally{}
		v, err := check.Run(context.Background(), spec,
			check.WithWorkers(2), check.WithChunk(8),
			check.WithObserver(obs), check.WithExecTally(tally))
		if err != nil {
			t.Fatal(err)
		}
		if obs.tuples.Load() != size {
			t.Errorf("observer saw %d tuples, want %d (checked %d)", obs.tuples.Load(), size, v.Checked)
		}
		if obs.chunks.Load() != (size+7)/8 {
			t.Errorf("observer saw %d chunks, want %d", obs.chunks.Load(), (size+7)/8)
		}
		c := tally.Counts()
		if c.StackFull == 0 {
			t.Errorf("no full stack recordings: %+v", c)
		}
		// Every tuple is answered exactly once by the stack: a full
		// recording, a tail replay, a constant suffix, or a row hit.
		if got := c.StackFull + c.StackReplays + c.StackConstants + c.StackRowHits; got != size {
			t.Errorf("stack answers %d != %d tuples: %+v", got, size, c)
		}
		var depths int64
		for _, d := range c.StackReplayDepth {
			depths += d
		}
		if depths != c.StackReplays {
			t.Errorf("depth buckets sum to %d, want %d replays: %+v", depths, c.StackReplays, c)
		}
		if c.BatchStrides != 0 || c.BatchLanes != 0 {
			t.Errorf("scalar run recorded batch activity: %+v", c)
		}
		if c.MemoCaptures != 0 || c.MemoReplays != 0 {
			t.Errorf("stack run recorded single-axis memo activity: %+v", c)
		}
	})

	t.Run("scalar-nostack", func(t *testing.T) {
		tally := &core.ExecTally{}
		_, err := check.Run(context.Background(), spec,
			check.WithWorkers(2), check.WithChunk(8),
			check.WithMemoStack(false), check.WithExecTally(tally))
		if err != nil {
			t.Fatal(err)
		}
		c := tally.Counts()
		if c.MemoCaptures == 0 {
			t.Errorf("no memo captures recorded: %+v", c)
		}
		// Every tuple either captured or replayed (invalidations re-run
		// as captures, so the identity still holds).
		if c.MemoCaptures+c.MemoReplays != size {
			t.Errorf("captures %d + replays %d != %d tuples", c.MemoCaptures, c.MemoReplays, size)
		}
		if c.StackFull+c.StackReplays+c.StackConstants+c.StackRowHits != 0 {
			t.Errorf("ablated run recorded stack activity: %+v", c)
		}
	})

	t.Run("batch", func(t *testing.T) {
		obs := &chunkTally{}
		tally := &core.ExecTally{}
		_, err := check.Run(context.Background(), spec,
			check.WithWorkers(1), check.WithChunk(16), check.WithBatch(4),
			check.WithObserver(obs), check.WithExecTally(tally))
		if err != nil {
			t.Fatal(err)
		}
		if obs.tuples.Load() != size {
			t.Errorf("observer saw %d tuples, want %d", obs.tuples.Load(), size)
		}
		c := tally.Counts()
		// Stack composition runs lane 0 of each fresh stride through the
		// snapshot stack; every remaining tuple rides a batch lane (or a
		// constant replication). Stack answers count per stride, not per
		// lane, so the sum over-covers the domain.
		if c.BatchLanes+c.StackFull+c.StackReplays+c.StackConstants+c.StackRowHits < size {
			t.Errorf("batch lanes + stack answers do not cover %d tuples: %+v", size, c)
		}
		if c.BatchStrides == 0 {
			t.Errorf("no batch strides recorded: %+v", c)
		}
		if c.StackFull == 0 {
			t.Errorf("no full stack recordings: %+v", c)
		}
	})

	t.Run("disabled", func(t *testing.T) {
		// The defaults must stay observation-free: nothing to assert but
		// that nil options run — the no-op cost rule's correctness half.
		if _, err := check.Run(context.Background(), spec, check.WithWorkers(2)); err != nil {
			t.Fatal(err)
		}
	})
}
