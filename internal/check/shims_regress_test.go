package check

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"spm/internal/core"
	"spm/internal/lattice"
	"spm/internal/progen"
	"spm/internal/surveillance"
	"spm/internal/sweep"
)

// TestDeprecatedShimsMatchRun pins the deprecated
// core.CheckSoundnessParallel/Sweep, core.CheckMaximalityParallel/Sweep,
// and core.PassCountParallel/Sweep wrappers to check.Run on randomized
// programs, so a later PR can delete the shims knowing every caller that
// migrates to check.Run gets verdicts identical to what it had.
//
// With one worker the engine is fully deterministic (sequential chunk
// order), so the reports must match field for field, witnesses included.
// A multi-worker spot check then confirms verdict agreement where witness
// choice is legitimately scheduling-dependent.
func TestDeprecatedShimsMatchRun(t *testing.T) {
	r := rand.New(rand.NewSource(1975))
	cfg := progen.DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2)
	obs := core.ObserveValue
	det := sweep.Config{Workers: 1, Chunk: 4}

	for i := 0; i < 25; i++ {
		q := progen.Generate(r, cfg)
		allowed := lattice.NewIndexSet()
		if r.Intn(2) == 1 {
			allowed = lattice.NewIndexSet(2)
		}
		pol := core.NewAllowSet(2, allowed)
		bare := core.FromProgram(q)
		instr, err := surveillance.Mechanism(q, allowed, surveillance.Untimed)
		if err != nil {
			t.Fatalf("program %d: instrument: %v", i, err)
		}

		for name, m := range map[string]core.Mechanism{"bare": bare, "instrumented": instr} {
			// Soundness: the one-worker shim must equal check.Run exactly.
			shim, err := core.CheckSoundnessSweep(m, pol, dom, obs, det)
			if err != nil {
				t.Fatalf("program %d %s: shim: %v", i, name, err)
			}
			v, err := Run(context.Background(), Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom},
				WithWorkers(det.Workers), WithChunk(det.Chunk))
			if err != nil {
				t.Fatalf("program %d %s: run: %v", i, name, err)
			}
			if !reflect.DeepEqual(shim, v.SoundnessReport()) {
				t.Errorf("program %d %s: CheckSoundnessSweep diverged from check.Run:\n  %+v\nvs\n  %+v",
					i, name, shim, v.SoundnessReport())
			}
			// Multi-worker shim: verdict and count must agree (witness
			// choice is scheduling-dependent by documented contract).
			par, err := core.CheckSoundnessParallel(m, pol, dom, obs, 4)
			if err != nil {
				t.Fatalf("program %d %s: parallel shim: %v", i, name, err)
			}
			if par.Sound != v.Sound || par.Checked != v.Checked {
				t.Errorf("program %d %s: CheckSoundnessParallel verdict (sound=%v checked=%d) != check.Run (sound=%v checked=%d)",
					i, name, par.Sound, par.Checked, v.Sound, v.Checked)
			}

			// PassCount.
			n, err := core.PassCountSweep(m, dom, det)
			if err != nil {
				t.Fatalf("program %d %s: passcount shim: %v", i, name, err)
			}
			pv, err := Run(context.Background(), Spec{Kind: PassCount, Mechanism: m, Domain: dom},
				WithWorkers(det.Workers), WithChunk(det.Chunk))
			if err != nil {
				t.Fatalf("program %d %s: passcount run: %v", i, name, err)
			}
			if n != pv.Passes {
				t.Errorf("program %d %s: PassCountSweep %d != check.Run %d", i, name, n, pv.Passes)
			}
		}

		// Maximality of the instrumented mechanism against the bare
		// program.
		shim, err := core.CheckMaximalitySweep(instr, bare, pol, dom, obs, det)
		if err != nil {
			t.Fatalf("program %d: maximality shim: %v", i, err)
		}
		mv, err := Run(context.Background(), Spec{Kind: Maximality, Mechanism: instr, Program: bare, Policy: pol, Domain: dom},
			WithWorkers(det.Workers), WithChunk(det.Chunk))
		if err != nil {
			t.Fatalf("program %d: maximality run: %v", i, err)
		}
		if !reflect.DeepEqual(shim, mv.MaximalityReport()) {
			t.Errorf("program %d: CheckMaximalitySweep diverged from check.Run:\n  %+v\nvs\n  %+v",
				i, shim, mv.MaximalityReport())
		}
		par, err := core.CheckMaximalityParallel(instr, bare, pol, dom, obs, 4)
		if err != nil {
			t.Fatalf("program %d: maximality parallel shim: %v", i, err)
		}
		if par.Maximal != mv.Maximal || par.Checked != mv.Checked {
			t.Errorf("program %d: CheckMaximalityParallel verdict (maximal=%v checked=%d) != check.Run (maximal=%v checked=%d)",
				i, par.Maximal, par.Checked, mv.Maximal, mv.Checked)
		}
	}
}
