package check

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"spm/internal/core"
	"spm/internal/lattice"
	"spm/internal/progen"
	"spm/internal/surveillance"
)

// ckRun runs RunCheckpointed discarding checkpoints.
func ckRun(t *testing.T, spec Spec, every int64, opts ...Option) Verdict {
	t.Helper()
	v, err := RunCheckpointed(context.Background(), spec, nil, every,
		func(Checkpoint) error { return nil }, opts...)
	if err != nil {
		t.Fatalf("RunCheckpointed(every=%d): %v", every, err)
	}
	return v
}

func TestRunCheckpointedMatchesRunOnFixtures(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	specs := map[string]Spec{
		"soundness":  {Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom},
		"maximality": {Kind: Maximality, Mechanism: m, Program: q, Policy: pol, Domain: dom},
		"passcount":  {Kind: PassCount, Mechanism: m, Domain: dom},
	}
	for name, spec := range specs {
		whole, err := Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, every := range []int64{1, 2, 3, 7, 9, 1000} {
			for _, workers := range []int{1, 4} {
				got := ckRun(t, spec, every, WithWorkers(workers), WithChunk(2))
				if !reflect.DeepEqual(witnessFree(got), witnessFree(whole)) {
					t.Errorf("%s every=%d workers=%d: checkpointed verdict differs beyond witnesses:\n  %+v\nvs\n  %+v",
						name, every, workers, witnessFree(got), witnessFree(whole))
				}
			}
		}
	}
}

// TestRunCheckpointedMatchesRunOnRandomPrograms is the differential
// harness: randomized progen programs, bare and instrumented, soundness
// and maximality, segmented at several granularities against the plain
// whole-domain Run.
func TestRunCheckpointedMatchesRunOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	cfg := progen.DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2, 3)
	for i := 0; i < 15; i++ {
		prog := progen.Generate(r, cfg)
		allowed := lattice.NewIndexSet()
		if r.Intn(2) == 1 {
			allowed = lattice.NewIndexSet(2)
		}
		pol := core.NewAllowSet(2, allowed)
		bare := core.FromProgram(prog)
		instr, err := surveillance.Mechanism(prog, allowed, surveillance.Untimed)
		if err != nil {
			t.Fatalf("program %d: instrument: %v", i, err)
		}
		for name, m := range map[string]core.Mechanism{"bare": bare, "instrumented": instr} {
			for _, spec := range []Spec{
				{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom},
				{Kind: Maximality, Mechanism: m, Program: bare, Policy: pol, Domain: dom},
			} {
				whole, err := Run(context.Background(), spec)
				if err != nil {
					t.Fatalf("program %d %s: %v", i, name, err)
				}
				for _, every := range []int64{3, 8, 16} {
					got := ckRun(t, spec, every, WithWorkers(2), WithChunk(2))
					if !reflect.DeepEqual(witnessFree(got), witnessFree(whole)) {
						t.Errorf("program %d %s %v every=%d: checkpointed differs beyond witnesses:\n  %+v\nvs\n  %+v",
							i, name, spec.Kind, every, witnessFree(got), witnessFree(whole))
					}
					if !got.Sound && spec.Kind == Soundness {
						if pol.View(got.WitnessA) != pol.View(got.WitnessB) || got.ObsA == got.ObsB {
							t.Errorf("program %d %s every=%d: unsound witnesses %v/%v not a counterexample",
								i, name, every, got.WitnessA, got.WitnessB)
						}
					}
				}
			}
		}
	}
}

// TestRunCheckpointedResumeByteIdentical interrupts a run mid-way, JSON
// round-trips the last checkpoint (the store's representation), resumes
// from it, and requires the final verdict to equal the uninterrupted run's
// field for field. One worker pins full determinism, witnesses included.
func TestRunCheckpointedResumeByteIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(1942))
	cfg := progen.DefaultConfig(2)
	dom := core.Grid(2, 0, 1, 2, 3)
	const every = 3
	opts := []Option{WithWorkers(1), WithChunk(2)}
	for i := 0; i < 10; i++ {
		prog := progen.Generate(r, cfg)
		pol := core.NewAllowSet(2, lattice.NewIndexSet(2))
		bare := core.FromProgram(prog)
		for _, spec := range []Spec{
			{Kind: Soundness, Mechanism: bare, Policy: pol, Domain: dom},
			{Kind: Maximality, Mechanism: bare, Program: bare, Policy: pol, Domain: dom},
		} {
			uninterrupted := ckRun(t, spec, every, opts...)

			// Interrupt: cancel after the second checkpoint lands.
			ctx, cancel := context.WithCancel(context.Background())
			var saved []byte
			saves := 0
			_, err := RunCheckpointed(ctx, spec, nil, every, func(ck Checkpoint) error {
				saves++
				data, err := json.Marshal(ck)
				if err != nil {
					return err
				}
				saved = data
				if saves == 2 {
					cancel()
				}
				return nil
			}, opts...)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("program %d %v: interrupted run returned %v, want context.Canceled", i, spec.Kind, err)
			}

			var ck Checkpoint
			if err := json.Unmarshal(saved, &ck); err != nil {
				t.Fatalf("program %d %v: checkpoint round-trip: %v", i, spec.Kind, err)
			}
			if ck.Cursor != 2*every || ck.Partial == nil {
				t.Fatalf("program %d %v: unexpected checkpoint %s", i, spec.Kind, saved)
			}
			resumed, err := RunCheckpointed(context.Background(), spec, &ck, every,
				func(Checkpoint) error { return nil }, opts...)
			if err != nil {
				t.Fatalf("program %d %v: resume: %v", i, spec.Kind, err)
			}
			if !reflect.DeepEqual(resumed, uninterrupted) {
				t.Errorf("program %d %v: resumed verdict not byte-identical:\n  %+v\nvs\n  %+v",
					i, spec.Kind, resumed, uninterrupted)
			}
		}
	}
}

// TestRunCheckpointedShardedSpec checks that a sharded spec returns an
// evidence-preserving partial verdict whose Merge with the complementary
// shard reproduces the whole-domain verdict.
func TestRunCheckpointedShardedSpec(t *testing.T) {
	_, m, pol, dom := fixtures(t)
	spec := Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom}
	whole, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	left := spec
	left.Shard = Shard{Offset: 0, Count: 4}
	right := spec
	right.Shard = Shard{Offset: 4}
	lv := ckRun(t, left, 3, WithWorkers(1))
	rv := ckRun(t, right, 3, WithWorkers(1))
	if lv.Views == nil || rv.Views == nil {
		t.Fatalf("sharded checkpointed runs must carry evidence: %+v / %+v", lv, rv)
	}
	if lv.Shard != left.Shard {
		t.Errorf("left shard echo = %+v, want %+v", lv.Shard, left.Shard)
	}
	merged, err := Merge(lv, rv)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(witnessFree(merged), witnessFree(whole)) {
		t.Errorf("merged sharded checkpointed halves differ from whole:\n  %+v\nvs\n  %+v",
			witnessFree(merged), witnessFree(whole))
	}
}

func TestRunCheckpointedCommitSpansResume(t *testing.T) {
	_, m, pol, dom := fixtures(t)
	spec := Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom}

	var ck Checkpoint
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := RunCheckpointed(ctx, spec, nil, 3, func(c Checkpoint) error {
		data, _ := json.Marshal(c)
		_ = json.Unmarshal(data, &ck)
		cancel()
		return nil
	}, WithWorkers(1), WithChunk(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}

	var commits []int64
	if _, err := RunCheckpointed(context.Background(), spec, &ck, 3, nil,
		WithWorkers(1), WithChunk(2), WithCommit(func(done int64) {
			commits = append(commits, done)
		})); err != nil {
		t.Fatal(err)
	}
	if len(commits) == 0 {
		t.Fatal("no commits observed")
	}
	prev := ck.Cursor
	for _, c := range commits {
		if c <= prev {
			t.Fatalf("commit %d not past previous %d (resume cursor %d): %v", c, prev, ck.Cursor, commits)
		}
		prev = c
	}
	if span := int64(9); commits[len(commits)-1] != span {
		t.Errorf("final commit = %d, want %d", commits[len(commits)-1], span)
	}
}

func TestRunCheckpointedBadResume(t *testing.T) {
	_, m, pol, dom := fixtures(t)
	spec := Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom}
	for name, from := range map[string]*Checkpoint{
		"cursor without evidence": {Cursor: 3},
		"negative cursor":         {Cursor: -1},
		"cursor beyond range":     {Cursor: 99, Partial: &Verdict{}},
	} {
		if _, err := RunCheckpointed(context.Background(), spec, from, 3, nil); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: err = %v, want ErrBadSpec", name, err)
		}
	}
}

func TestRunCheckpointedSaveErrorAborts(t *testing.T) {
	_, m, pol, dom := fixtures(t)
	boom := errors.New("disk full")
	_, err := RunCheckpointed(context.Background(),
		Spec{Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom}, nil, 3,
		func(Checkpoint) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped save error", err)
	}
}

// TestVerdictJSONRoundTrip pins the wire form of Verdict: evidence tables,
// witnesses, and kind names all survive marshal/unmarshal — the property
// the persistent store's checkpoint records depend on.
func TestVerdictJSONRoundTrip(t *testing.T) {
	q, m, pol, dom := fixtures(t)
	for name, spec := range map[string]Spec{
		"sharded soundness":  {Kind: Soundness, Mechanism: m, Policy: pol, Domain: dom, Shard: Shard{Offset: 1, Count: 5}},
		"sharded maximality": {Kind: Maximality, Mechanism: m, Program: q, Policy: pol, Domain: dom, Shard: Shard{Offset: 0, Count: 6}},
		"whole passcount":    {Kind: PassCount, Mechanism: m, Domain: dom},
	} {
		v, err := Run(context.Background(), spec, WithWorkers(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var back Verdict
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(v, back) {
			t.Errorf("%s: round trip lost data:\n  %+v\nvs\n  %+v\n  wire %s", name, v, back, data)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("maximality")); err != nil || k != Maximality {
		t.Errorf("UnmarshalText(maximality) = %v, %v", k, err)
	}
	if err := k.UnmarshalText([]byte("nonsense")); err == nil {
		t.Error("UnmarshalText accepted nonsense")
	}
	if _, err := Kind(42).MarshalText(); err == nil {
		t.Error("MarshalText accepted unknown kind")
	}
}
