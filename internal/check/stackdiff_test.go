package check_test

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/progen"
)

// runStackPaths decides spec under the four execution tiers that must be
// extensionally identical — snapshot-stack memoized (the default),
// single-axis prefix memo (WithMemoStack(false)), compiled without
// memoization, and the tree-walking interpreter — at one worker, where
// enumeration order (and therefore witness choice) is deterministic, and
// requires byte-identical verdicts.
func runStackPaths(t *testing.T, tag string, spec check.Spec, opts ...check.Option) check.Verdict {
	t.Helper()
	base := append([]check.Option{check.WithWorkers(1), check.WithChunk(7)}, opts...)
	stack, err := check.Run(context.Background(), spec, base...)
	if err != nil {
		t.Fatalf("%s: stack Run: %v", tag, err)
	}
	memo, err := check.Run(context.Background(), spec, append(base, check.WithMemoStack(false))...)
	if err != nil {
		t.Fatalf("%s: WithMemoStack(false) Run: %v", tag, err)
	}
	plain, err := check.Run(context.Background(), spec, append(base, check.WithMemo(false))...)
	if err != nil {
		t.Fatalf("%s: WithMemo(false) Run: %v", tag, err)
	}
	interp, err := check.Run(context.Background(), spec, append(base, check.WithCompiled(false))...)
	if err != nil {
		t.Fatalf("%s: WithCompiled(false) Run: %v", tag, err)
	}
	want := verdictJSON(t, stack)
	for _, other := range []struct {
		name string
		v    check.Verdict
	}{{"single-axis memo", memo}, {"no-memo", plain}, {"interpreter", interp}} {
		if got := verdictJSON(t, other.v); got != want {
			t.Fatalf("%s: stack verdict differs from %s:\nstack: %s\nother: %s", tag, other.name, want, got)
		}
	}
	return stack
}

// TestMemoStackDifferentialProgen is the snapshot-stack tier's
// correctness gate: on 30 randomized total programs, the stack-memoized
// sweep must produce byte-identical verdicts to the single-axis memo,
// the non-memoized compiled path, and the interpreter — whole-domain and
// sharded, merged and per-part, scalar and at batch widths 8 and 32.
func TestMemoStackDifferentialProgen(t *testing.T) {
	axis := []int64{-2, -1, 0, 1, 2, 3}
	kinds := []check.Kind{check.Soundness, check.Maximality, check.PassCount}
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		arity := 2 + int(seed)%2
		p := progen.Generate(r, progen.DefaultConfig(arity))
		m := core.FromProgram(p)
		pol := core.NewAllow(arity, arity)
		if seed%3 == 0 {
			pol = core.NewAllow(arity, 1)
		}
		dom := make(core.Domain, arity)
		for i := range dom {
			dom[i] = axis
		}
		kind := kinds[seed%3]
		spec := check.Spec{Kind: kind, Mechanism: m, Program: m, Policy: pol, Domain: dom}
		tag := p.Name + "/" + kind.String()

		for _, width := range []int{1, 8, 32} {
			runStackPaths(t, tag, spec, check.WithBatch(width))
		}

		// Sharded halves: the evidence tables (Views/Classes) and the
		// merged whole-domain verdict must also be tier-independent.
		size := 1
		for i := range dom {
			size *= len(dom[i])
		}
		half := int64(size / 2)
		for _, width := range []int{1, 8} {
			var stackParts, memoParts []check.Verdict
			for _, shard := range []check.Shard{{Offset: 0, Count: half}, {Offset: half}} {
				s := spec
				s.Shard = shard
				stackParts = append(stackParts, runStackPaths(t, tag+"/sharded", s, check.WithBatch(width)))
				memo, err := check.Run(context.Background(), s,
					check.WithWorkers(1), check.WithChunk(7),
					check.WithBatch(width), check.WithMemoStack(false))
				if err != nil {
					t.Fatalf("%s: sharded memo Run: %v", tag, err)
				}
				memoParts = append(memoParts, memo)
			}
			mergedStack, err := check.Merge(stackParts...)
			if err != nil {
				t.Fatalf("%s: Merge stack parts: %v", tag, err)
			}
			mergedMemo, err := check.Merge(memoParts...)
			if err != nil {
				t.Fatalf("%s: Merge memo parts: %v", tag, err)
			}
			if got, want := verdictJSON(t, mergedStack), verdictJSON(t, mergedMemo); got != want {
				t.Fatalf("%s: merged stack verdict differs:\nstack: %s\n memo: %s", tag, got, want)
			}
		}
	}
}

// TestMemoStackConcurrentWorkStealing drives the stack tier with many
// workers and single-tuple chunks — the maximum-stealing schedule, where
// every worker's carry hints interleave across stolen chunks — and pins
// the decision fields against the deterministic single-worker verdict.
// Run under -race this also proves the per-worker snapshot stacks share
// nothing.
func TestMemoStackConcurrentWorkStealing(t *testing.T) {
	axis := []int64{-2, -1, 0, 1, 2, 3, 4, 5}
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(4000 + seed))
		arity := 2 + int(seed)%2
		p := progen.Generate(r, progen.DefaultConfig(arity))
		m := core.FromProgram(p)
		pol := core.NewAllow(arity, 1)
		dom := make(core.Domain, arity)
		for i := range dom {
			dom[i] = axis
		}
		spec := check.Spec{Kind: check.Soundness, Mechanism: m, Policy: pol, Domain: dom}
		ref, err := check.Run(context.Background(), spec, check.WithWorkers(1))
		if err != nil {
			t.Fatalf("seed %d: reference Run: %v", seed, err)
		}
		for _, width := range []int{1, 8} {
			var progress atomic.Int64
			tally := &core.ExecTally{}
			got, err := check.Run(context.Background(), spec,
				check.WithWorkers(8), check.WithChunk(1), check.WithBatch(width),
				check.WithProgress(&progress), check.WithExecTally(tally))
			if err != nil {
				t.Fatalf("seed %d width %d: concurrent Run: %v", seed, width, err)
			}
			if got.Sound != ref.Sound || got.Checked != ref.Checked {
				t.Fatalf("seed %d width %d: concurrent verdict (sound %v, checked %d) != reference (sound %v, checked %d)",
					seed, width, got.Sound, got.Checked, ref.Sound, ref.Checked)
			}
			if progress.Load() != int64(ref.Checked) {
				t.Fatalf("seed %d width %d: progress %d != checked %d", seed, width, progress.Load(), ref.Checked)
			}
			c := tally.Counts()
			if c.StackFull+c.StackReplays+c.StackConstants+c.StackRowHits == 0 {
				t.Fatalf("seed %d width %d: no stack activity under stealing: %+v", seed, width, c)
			}
		}
	}
}
