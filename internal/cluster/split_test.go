package cluster

import "testing"

// checkSplitInvariants asserts the three properties every index-space
// split must satisfy, for any size ≥ 0 and n ≥ 1 — including n > size,
// where the tail shards are legitimately empty:
//
//   - complete: the shards cover exactly [0, size)
//   - disjoint: consecutive shards abut with no gap or overlap
//   - balanced: shard counts differ by at most one
func checkSplitInvariants(t *testing.T, size, n int) {
	t.Helper()
	shards := splitIndexSpace(size, n)
	if len(shards) != n {
		t.Fatalf("split(%d, %d): %d shards", size, n, len(shards))
	}
	next := int64(0)
	total := int64(0)
	minC, maxC := int64(1)<<62, int64(-1)
	for i, sh := range shards {
		if sh.Count < 0 {
			t.Fatalf("split(%d, %d): shard %d has negative count %d", size, n, i, sh.Count)
		}
		if sh.Offset != next {
			t.Fatalf("split(%d, %d): shard %d at offset %d, want %d (gap or overlap)", size, n, i, sh.Offset, next)
		}
		next += sh.Count
		total += sh.Count
		if sh.Count < minC {
			minC = sh.Count
		}
		if sh.Count > maxC {
			maxC = sh.Count
		}
	}
	if total != int64(size) {
		t.Fatalf("split(%d, %d): covers %d of %d", size, n, total, size)
	}
	if maxC-minC > 1 {
		t.Fatalf("split(%d, %d): unbalanced, counts range [%d, %d]", size, n, minC, maxC)
	}
}

// TestSplitIndexSpaceProperties seeds the invariant checker with the
// shapes the coordinator actually produces plus the degenerate corners:
// one shard, shard-per-tuple, more shards than tuples, and empty spaces.
func TestSplitIndexSpaceProperties(t *testing.T) {
	for _, tc := range []struct{ size, n int }{
		{10, 3}, {64, 8}, {7, 7}, {5, 1},
		{1, 1}, {0, 1}, {0, 5},
		{3, 7}, {1, 64}, // n > size: zero-count tails
		{102400, 8}, {160000, 12}, {1 << 20, 1000},
	} {
		checkSplitInvariants(t, tc.size, tc.n)
	}
}

// FuzzSplitIndexSpace drives the same invariants from arbitrary inputs.
func FuzzSplitIndexSpace(f *testing.F) {
	f.Add(10, 3)
	f.Add(7, 7)
	f.Add(3, 11)
	f.Add(0, 1)
	f.Add(1<<20, 64)
	f.Fuzz(func(t *testing.T, size, n int) {
		if size < 0 || n < 1 {
			t.Skip()
		}
		// Cap the shard count: the invariants don't change past the
		// n > size regime and huge n only allocates.
		if n > 1<<16 || size > 1<<40 {
			t.Skip()
		}
		checkSplitInvariants(t, size, n)
	})
}
