package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// NodeState is a member's health in the elastic registry.
type NodeState string

// The membership states. A node is born Alive, turns Suspect after a
// failed health probe, returns to Alive on the next success, and is
// Retired — removed from the shard pool — after sustained probe failures,
// a fatal dispatch error, or an administrative leave. Retired is sticky:
// only an explicit Join revives the node.
const (
	NodeAlive   NodeState = "alive"
	NodeSuspect NodeState = "suspect"
	NodeRetired NodeState = "retired"
)

// Probe defaults for Registry's zero-valued knobs.
const (
	// DefaultProbeInterval is the cadence of the GET /v2/stats health
	// probes while a check is running.
	DefaultProbeInterval = 500 * time.Millisecond
	// DefaultProbeTimeout bounds one probe request.
	DefaultProbeTimeout = 2 * time.Second
	// probeRetireAfter is how many consecutive probe failures retire a
	// node. The first failure already marks it suspect.
	probeRetireAfter = 4
)

// Member is one node's row in the registry: its base URL and health.
type Member struct {
	URL   string    `json:"url"`
	State NodeState `json:"state"`
	// Failures counts consecutive probe failures; reset on success.
	Failures int `json:"failures,omitempty"`
}

// Registry is the dynamic membership table of an elastic cluster: the set
// of serve nodes a coordinator may dispatch shards to, with health states
// fed by periodic probes of each node's GET /v2/stats. Nodes join and
// leave mid-check — the admin surface (Coordinator.AdminHandler, the
// `spm cluster -admin` listener, SIGHUP nodes-file rereads) calls Join
// and Leave, and a running check picks the changes up within one
// scheduling decision: joiners immediately enter the shard pool, leavers
// have their in-flight shard cancelled and requeued.
//
// A Registry is safe for concurrent use and may outlive a single check.
type Registry struct {
	// ProbeInterval is the health-probe cadence; ≤ 0 means
	// DefaultProbeInterval.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request; ≤ 0 means
	// DefaultProbeTimeout.
	ProbeTimeout time.Duration

	mu      sync.Mutex
	members map[string]*Member
	order   []string // join order, for deterministic reports
	joined  int      // Join calls that added or revived a node
	left    int      // Leave calls, probe retirements, dispatch-path deaths
	watch   chan struct{}
}

// NewRegistry builds a registry with the given initial members, all
// alive. Duplicate and empty URLs are dropped.
func NewRegistry(urls []string) *Registry {
	g := &Registry{
		members: make(map[string]*Member),
		watch:   make(chan struct{}, 1),
	}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" || g.members[u] != nil {
			continue
		}
		g.members[u] = &Member{URL: u, State: NodeAlive}
		g.order = append(g.order, u)
	}
	return g
}

// Join adds a node (or revives a retired one) as alive, reporting whether
// the registry changed. A joiner enters the shard pool of any running
// check immediately.
func (g *Registry) Join(url string) bool {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return false
	}
	g.mu.Lock()
	m := g.members[url]
	switch {
	case m == nil:
		g.members[url] = &Member{URL: url, State: NodeAlive}
		g.order = append(g.order, url)
	case m.State == NodeRetired:
		m.State = NodeAlive
		m.Failures = 0
	default:
		g.mu.Unlock()
		return false
	}
	g.joined++
	g.mu.Unlock()
	g.notify()
	return true
}

// Leave retires a node administratively, reporting whether the registry
// changed. A running check cancels and requeues the node's in-flight
// shard.
func (g *Registry) Leave(url string) bool {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	g.mu.Lock()
	m := g.members[url]
	if m == nil || m.State == NodeRetired {
		g.mu.Unlock()
		return false
	}
	m.State = NodeRetired
	g.left++
	g.mu.Unlock()
	g.notify()
	return true
}

// retire marks a node retired when the dispatch path sees it die
// mid-shard. Counted as a leave — the node is gone whether or not it said
// goodbye — so the probe loop, the shard pool, and the report all agree
// on who is usable. Already-retired nodes are a no-op, so a death seen by
// both the probe loop and the dispatch path is counted once.
func (g *Registry) retire(url string) {
	g.mu.Lock()
	m := g.members[url]
	if m == nil || m.State == NodeRetired {
		g.mu.Unlock()
		return
	}
	m.State = NodeRetired
	g.left++
	g.mu.Unlock()
	g.notify()
}

// Members snapshots the registry in join order.
func (g *Registry) Members() []Member {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Member, 0, len(g.order))
	for _, u := range g.order {
		out = append(out, *g.members[u])
	}
	return out
}

// Alive returns the URLs currently usable for dispatch (alive or suspect
// — a suspect node keeps its shard until probes retire it).
func (g *Registry) Alive() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.order))
	for _, u := range g.order {
		if g.members[u].State != NodeRetired {
			out = append(out, u)
		}
	}
	return out
}

// usable reports whether the node may hold a shard.
func (g *Registry) usable(url string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := g.members[url]
	return m != nil && m.State != NodeRetired
}

// counts returns the join/leave tallies accumulated so far.
func (g *Registry) counts() (joined, left int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.joined, g.left
}

// Watch returns a channel that receives (coalesced) a token after every
// membership change. One channel serves all consumers; the elastic runner
// is the intended single reader.
func (g *Registry) Watch() <-chan struct{} { return g.watch }

func (g *Registry) notify() {
	select {
	case g.watch <- struct{}{}:
	default:
	}
}

// probeResult applies one health-probe outcome: success restores a
// suspect node to alive; failure marks alive nodes suspect and retires a
// node after probeRetireAfter consecutive failures (counted as a leave —
// the node is gone whether or not it said goodbye).
func (g *Registry) probeResult(url string, ok bool) {
	changed := false
	g.mu.Lock()
	m := g.members[url]
	if m == nil || m.State == NodeRetired {
		g.mu.Unlock()
		return
	}
	if ok {
		if m.State != NodeAlive {
			m.State = NodeAlive
			changed = true
		}
		m.Failures = 0
	} else {
		m.Failures++
		if m.State == NodeAlive {
			m.State = NodeSuspect
			changed = true
		}
		if m.Failures >= probeRetireAfter {
			m.State = NodeRetired
			g.left++
			changed = true
		}
	}
	g.mu.Unlock()
	if changed {
		g.notify()
	}
}

// probeLoop probes every non-retired member's GET /v2/stats once per
// interval until ctx is cancelled. The coordinator runs it for the
// duration of each elastic check.
func (g *Registry) probeLoop(ctx context.Context, client *http.Client) {
	interval := g.ProbeInterval
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	timeout := g.ProbeTimeout
	if timeout <= 0 {
		timeout = DefaultProbeTimeout
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		for _, url := range g.Alive() {
			g.probeResult(url, probeOnce(ctx, client, url, timeout))
		}
	}
}

// probeOnce reports whether one GET /v2/stats round-trip succeeded.
func probeOnce(ctx context.Context, client *http.Client, url string, timeout time.Duration) bool {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, url+"/v2/stats", nil)
	if err != nil {
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// SyncNodes reconciles the registry against a full desired node list (the
// `spm cluster -nodes-file` SIGHUP path): URLs not yet present join, and
// current members absent from the list leave. It returns how many joins
// and leaves were applied.
func (g *Registry) SyncNodes(urls []string) (joined, left int) {
	want := make(map[string]bool, len(urls))
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		want[u] = true
		if g.Join(u) {
			joined++
		}
	}
	for _, m := range g.Members() {
		if !want[m.URL] && m.State != NodeRetired {
			if g.Leave(m.URL) {
				left++
			}
		}
	}
	return joined, left
}

// AdminHandler is the coordinator's membership surface, served by
// `spm cluster -admin`:
//
//	GET  /nodes        the registry snapshot (JSON array of members)
//	POST /join?node=U  add (or revive) node U
//	POST /leave?node=U retire node U; its in-flight shard is requeued
//	GET  /metrics      coordinator counters, Prometheus text exposition
//
// Responses are JSON (exposition text for /metrics); unknown routes are
// 404.
func (c *Coordinator) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /nodes", func(w http.ResponseWriter, r *http.Request) {
		writeAdminJSON(w, http.StatusOK, c.registry.Members())
	})
	mux.Handle("GET /metrics", c.metrics.reg)
	mux.HandleFunc("POST /join", func(w http.ResponseWriter, r *http.Request) {
		c.adminChange(w, r, c.registry.Join)
	})
	mux.HandleFunc("POST /leave", func(w http.ResponseWriter, r *http.Request) {
		c.adminChange(w, r, c.registry.Leave)
	})
	return mux
}

// adminChange applies one join/leave request. The node is taken from the
// "node" query parameter or a JSON body {"node": "..."}; bare host:port
// values default to http, matching the -nodes flag.
func (c *Coordinator) adminChange(w http.ResponseWriter, r *http.Request, apply func(string) bool) {
	node := r.URL.Query().Get("node")
	if node == "" {
		var body struct {
			Node string `json:"node"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err == nil {
			node = body.Node
		}
	}
	if node = strings.TrimSpace(node); node == "" {
		writeAdminJSON(w, http.StatusBadRequest, map[string]string{"error": "missing node"})
		return
	}
	if !strings.Contains(node, "://") {
		node = "http://" + node
	}
	writeAdminJSON(w, http.StatusOK, map[string]any{
		"node":    strings.TrimRight(node, "/"),
		"changed": apply(node),
	})
}

func writeAdminJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// sortedMemberURLs lists every member URL sorted, for stable test output.
func sortedMemberURLs(ms []Member) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.URL
	}
	sort.Strings(out)
	return out
}
