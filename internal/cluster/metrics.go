package cluster

import "spm/internal/obs"

// clusterMetrics is the coordinator's observability surface, served as
// GET /metrics on the admin mux. Counters are coordinator-lifetime —
// they accumulate across checks, unlike the per-run Report tallies —
// and the membership counts read the registry at scrape time.
type clusterMetrics struct {
	reg        *obs.Registry
	checks     *obs.Counter
	shards     *obs.Counter
	retries    *obs.Counter
	cancelled  *obs.Counter
	stolen     *obs.Counter
	speculated *obs.Counter
}

func newClusterMetrics(c *Coordinator) *clusterMetrics {
	reg := obs.New()
	m := &clusterMetrics{reg: reg}
	m.checks = reg.Counter("spm_cluster_checks_total",
		"Distributed checks started by this coordinator.")
	m.shards = reg.Counter("spm_cluster_shards_completed_total",
		"Shards completed across all checks.")
	m.retries = reg.Counter("spm_cluster_shard_retries_total",
		"Shard re-dispatches forced by node failures or busy refusals.")
	m.cancelled = reg.Counter("spm_cluster_jobs_cancelled_total",
		"In-flight jobs cancelled by short-circuits, steals, and lost races.")
	m.stolen = reg.Counter("spm_cluster_shards_stolen_total",
		"Straggler back halves split off to idle nodes.")
	m.speculated = reg.Counter("spm_cluster_speculative_dispatches_total",
		"Speculative duplicate shard dispatches.")
	reg.CounterFunc("spm_cluster_nodes_joined_total",
		"Nodes that joined (or revived into) the registry.",
		func() float64 { j, _ := c.registry.counts(); return float64(j) })
	reg.CounterFunc("spm_cluster_nodes_left_total",
		"Nodes that left: administrative leaves, probe retirements, dispatch deaths.",
		func() float64 { _, l := c.registry.counts(); return float64(l) })
	reg.GaugeFunc("spm_cluster_nodes_alive",
		"Registry members currently usable for dispatch.",
		func() float64 { return float64(len(c.registry.Alive())) })
	return m
}

// Metrics returns the coordinator's metrics registry — the handler the
// admin mux serves as GET /metrics.
func (c *Coordinator) Metrics() *obs.Registry { return c.metrics.reg }
