package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"spm/internal/service"
)

// benchDomain is 400 values per axis × arity 2 = 160,000 tuples — the
// ≥160k sweep the cluster perf trajectory (BENCH_cluster.json) tracks
// across commits, 1-node vs 2-node.
const benchTuples = 160_000

func benchmarkCluster(b *testing.B, nNodes int) {
	nodes := make([]string, nNodes)
	for i := range nodes {
		svc := service.New(service.Config{Pools: 2})
		srv := httptest.NewServer(svc.Handler())
		b.Cleanup(func() {
			srv.Close()
			svc.Close()
		})
		nodes[i] = srv.URL
	}
	dom := make([]int64, 400)
	for i := range dom {
		dom[i] = int64(i)
	}
	req := service.CheckRequest{Program: soundProg, Policy: "{2}", Domain: dom}
	coord, err := New(Config{Nodes: nodes, Shards: 4 * nNodes, Poll: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := coord.Check(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Soundness.Sound || rep.Soundness.Checked != benchTuples {
			b.Fatalf("bad verdict: %+v", rep.Soundness)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchTuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkClusterCheck measures one whole distributed verdict — shard
// split, HTTP dispatch, remote sweeps, merge — over a 160k-tuple domain.
// The 1-node row isolates the coordination overhead against the in-process
// Sweep benchmarks; the 2-node row is the scaling trajectory (in CI both
// nodes share one machine, so the interesting signal is coordination cost,
// not speedup).
func BenchmarkClusterCheck(b *testing.B) {
	for _, nodes := range []int{1, 2} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			benchmarkCluster(b, nodes)
		})
	}
}

// benchmarkStraggler runs the same 160k-tuple check on a 3-node fleet
// whose third node is a deterministic straggler (the serve-side throttle
// hook naps it every chunk). The fixed row eats the straggler's tail
// latency; the elastic row steals the back half of its remaining range
// and speculates the stragglers away, so the delta between the two rows
// is the price of a slow node under each coordinator.
func benchmarkStraggler(b *testing.B, elastic bool) {
	nodes := make([]string, 3)
	for i := range nodes {
		cfg := service.Config{Pools: 2}
		if i == 2 {
			cfg.Throttle = 10 * time.Millisecond
		}
		svc := service.New(cfg)
		srv := httptest.NewServer(svc.Handler())
		b.Cleanup(func() {
			srv.Close()
			svc.Close()
		})
		nodes[i] = srv.URL
	}
	dom := make([]int64, 400)
	for i := range dom {
		dom[i] = int64(i)
	}
	req := service.CheckRequest{Program: soundProg, Policy: "{2}", Domain: dom}
	cfg := Config{Nodes: nodes, Shards: 6, Poll: 2 * time.Millisecond}
	if elastic {
		cfg.Registry = NewRegistry(nodes)
		cfg.StealThreshold = 2
		cfg.Speculate = true
		cfg.StealInterval = 5 * time.Millisecond
	}
	coord, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var stolen, speculated int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := coord.Check(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Soundness.Sound || rep.Soundness.Checked != benchTuples {
			b.Fatalf("bad verdict: %+v", rep.Soundness)
		}
		stolen += rep.Stolen
		speculated += rep.Speculated
	}
	b.StopTimer()
	b.ReportMetric(float64(benchTuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	b.ReportMetric(float64(stolen)/float64(b.N), "stolen/op")
	b.ReportMetric(float64(speculated)/float64(b.N), "speculated/op")
}

// BenchmarkClusterStraggler is the elastic trajectory row pair in
// BENCH_cluster.json: the same straggler scenario under the fixed and the
// elastic coordinator.
func BenchmarkClusterStraggler(b *testing.B) {
	for _, mode := range []struct {
		name    string
		elastic bool
	}{{"fixed", false}, {"elastic", true}} {
		b.Run(mode.name, func(b *testing.B) {
			benchmarkStraggler(b, mode.elastic)
		})
	}
}
