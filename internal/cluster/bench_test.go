package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"spm/internal/service"
)

// benchDomain is 400 values per axis × arity 2 = 160,000 tuples — the
// ≥160k sweep the cluster perf trajectory (BENCH_cluster.json) tracks
// across commits, 1-node vs 2-node.
const benchTuples = 160_000

func benchmarkCluster(b *testing.B, nNodes int) {
	nodes := make([]string, nNodes)
	for i := range nodes {
		svc := service.New(service.Config{Pools: 2})
		srv := httptest.NewServer(svc.Handler())
		b.Cleanup(func() {
			srv.Close()
			svc.Close()
		})
		nodes[i] = srv.URL
	}
	dom := make([]int64, 400)
	for i := range dom {
		dom[i] = int64(i)
	}
	req := service.CheckRequest{Program: soundProg, Policy: "{2}", Domain: dom}
	coord, err := New(Config{Nodes: nodes, Shards: 4 * nNodes, Poll: 2 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := coord.Check(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Soundness.Sound || rep.Soundness.Checked != benchTuples {
			b.Fatalf("bad verdict: %+v", rep.Soundness)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(benchTuples)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkClusterCheck measures one whole distributed verdict — shard
// split, HTTP dispatch, remote sweeps, merge — over a 160k-tuple domain.
// The 1-node row isolates the coordination overhead against the in-process
// Sweep benchmarks; the 2-node row is the scaling trajectory (in CI both
// nodes share one machine, so the interesting signal is coordination cost,
// not speedup).
func BenchmarkClusterCheck(b *testing.B) {
	for _, nodes := range []int{1, 2} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			benchmarkCluster(b, nodes)
		})
	}
}
