package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/service"
	"spm/internal/surveillance"
)

// soundProg leaks x1 on the x2 != 0 path, so under allow(2) the bare
// program is unsound and the instrumented one sound — the repo's standard
// fixture, here swept over a five-digit-per-axis grid.
const soundProg = `
program demo
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

// startNode brings up one in-process spm serve worker.
func startNode(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server) {
	t.Helper()
	svc := service.New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, srv
}

// bigDomain returns n consecutive values, for building ≥100k-tuple grids.
func bigDomain(n int) []int64 {
	dom := make([]int64, n)
	for i := range dom {
		dom[i] = int64(i)
	}
	return dom
}

// localVerdict runs the same check single-node through check.Run, building
// the mechanism exactly the way the service's compile cache does, so the
// names (and hence the whole verdict) are comparable byte for byte.
func localVerdict(t *testing.T, req service.CheckRequest) check.Verdict {
	t.Helper()
	p := flowchart.MustParse(req.Program)
	allowed, err := service.ParsePolicy(req.Policy, p.Arity())
	if err != nil {
		t.Fatal(err)
	}
	var m core.Mechanism = core.FromProgram(p)
	if !req.Raw {
		m, err = surveillance.Mechanism(p, allowed, surveillance.Untimed)
		if err != nil {
			t.Fatal(err)
		}
	}
	v, err := check.Run(context.Background(), check.Spec{
		Kind:      check.Soundness,
		Mechanism: m,
		Policy:    core.NewAllowSet(p.Arity(), allowed),
		Domain:    core.Grid(p.Arity(), req.Domain...),
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// failFirstSubmit wraps a node handler, injecting one shard failure: the
// first job submitted through it is accepted and then immediately
// cancelled server-side, so the coordinator sees the shard die and must
// re-dispatch it.
func failFirstSubmit(svc *service.Service, inner http.Handler) http.Handler {
	var injected atomic.Bool
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v2/check" && injected.CompareAndSwap(false, true) {
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			if rec.Code == http.StatusAccepted {
				var sub service.SubmitResponse
				if json.Unmarshal(rec.Body.Bytes(), &sub) == nil && sub.ID != "" {
					svc.Cancel(sub.ID)
				}
			}
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			w.Write(rec.Body.Bytes())
			return
		}
		inner.ServeHTTP(w, r)
	})
}

// TestClusterByteIdenticalWithInjectedFailure is the acceptance check: a
// 2-worker cluster over a 102,400-tuple sweep, with one shard killed
// mid-flight on one worker, still produces a verdict byte-identical to
// single-node check.Run.
func TestClusterByteIdenticalWithInjectedFailure(t *testing.T) {
	req := service.CheckRequest{
		Program: soundProg,
		Policy:  "{2}",
		Domain:  bigDomain(320), // 320^2 = 102,400 tuples
	}

	_, srvA := startNode(t, service.Config{Pools: 2})
	svcB := service.New(service.Config{Pools: 2})
	srvB := httptest.NewServer(failFirstSubmit(svcB, svcB.Handler()))
	t.Cleanup(func() {
		srvB.Close()
		svcB.Close()
	})

	coord, err := New(Config{
		Nodes:  []string{srvA.URL, srvB.URL},
		Shards: 8,
		Poll:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Check(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete || rep.Completed != rep.Shards {
		t.Fatalf("run incomplete: %+v", rep)
	}
	if rep.Retries < 1 {
		t.Fatalf("injected shard failure produced no re-dispatch: %+v", rep)
	}

	want := localVerdict(t, req)
	if !reflect.DeepEqual(rep.Soundness, want) {
		t.Fatalf("merged verdict differs from single-node check.Run:\n  %+v\nvs\n  %+v", rep.Soundness, want)
	}
	gotJSON, _ := json.Marshal(rep.Soundness)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("verdicts not byte-identical:\n  %s\nvs\n  %s", gotJSON, wantJSON)
	}
	if rep.Soundness.String() != want.String() {
		t.Fatalf("rendered verdicts differ:\n  %s\nvs\n  %s", rep.Soundness, want)
	}
	if !rep.Soundness.Sound || rep.Soundness.Checked != 102400 {
		t.Fatalf("unexpected verdict content: %+v", rep.Soundness)
	}
}

// TestClusterUnsoundCrossShard distributes the bare (leaky) fixture: the
// counterexamples pair inputs from different index regions, so the verdict
// is only reachable through the cross-shard Views merge.
func TestClusterUnsoundCrossShard(t *testing.T) {
	req := service.CheckRequest{
		Program: soundProg,
		Policy:  "{2}",
		Raw:     true,
		Domain:  bigDomain(32), // 1024 tuples
	}
	_, srvA := startNode(t, service.Config{Pools: 2})
	_, srvB := startNode(t, service.Config{Pools: 2})
	coord, err := New(Config{Nodes: []string{srvA.URL, srvB.URL}, Shards: 4, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Check(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Soundness.Sound {
		t.Fatalf("bare program reported sound: %+v", rep.Soundness)
	}
	want := localVerdict(t, req)
	if want.Sound {
		t.Fatalf("fixture broken: single-node says sound")
	}
	// Witness pairs are scheduling-dependent, but the pair must be a real
	// counterexample under the policy.
	pol := core.NewAllow(2, 2)
	if pol.View(rep.Soundness.WitnessA) != pol.View(rep.Soundness.WitnessB) || rep.Soundness.ObsA == rep.Soundness.ObsB {
		t.Fatalf("merged witness pair is not a counterexample: %+v", rep.Soundness)
	}
}

// slowSoundProg spends ~15k steps per tuple and then reveals only x2 —
// sound under allow(2), slow enough that a node can be killed mid-sweep.
const slowSoundProg = `
program slowsound
inputs x1 x2
    r := 5000 + (x2 & 1)
Loop: if r == 0 goto Done else Body
Body: r := r - 1
      goto Loop
Done: y := x2
      halt
`

func TestClusterNodeDeathMidSweepReassigns(t *testing.T) {
	req := service.CheckRequest{
		Program: slowSoundProg,
		Policy:  "{2}",
		Raw:     true,
		Domain:  bigDomain(128), // 16,384 tuples × ~15k steps
	}
	_, srvA := startNode(t, service.Config{Pools: 2})
	svcB := service.New(service.Config{Pools: 2})
	srvB := httptest.NewServer(svcB.Handler())
	t.Cleanup(svcB.Close)

	coord, err := New(Config{Nodes: []string{srvA.URL, srvB.URL}, Shards: 8, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var rep *Report
	var checkErr error
	go func() {
		defer close(done)
		rep, checkErr = coord.Check(context.Background(), req)
	}()
	// Give the fleet time to start sweeping, then kill node B hard.
	time.Sleep(100 * time.Millisecond)
	srvB.CloseClientConnections()
	srvB.Close()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("cluster check hung after node death")
	}
	if checkErr != nil {
		t.Fatalf("check failed despite a surviving node: %v", checkErr)
	}
	if !rep.Complete {
		t.Fatalf("run incomplete: %+v", rep)
	}
	var dead *NodeReport
	for i := range rep.Nodes {
		if rep.Nodes[i].URL == srvB.URL {
			dead = &rep.Nodes[i]
		}
	}
	if dead == nil || !dead.Dead {
		t.Fatalf("killed node not marked dead: %+v", rep.Nodes)
	}
	want := localVerdict(t, req)
	if !reflect.DeepEqual(rep.Soundness, want) {
		t.Fatalf("verdict after node death differs from single-node:\n  %+v\nvs\n  %+v", rep.Soundness, want)
	}
}

// skewProg is unsound in the cheap x1=0 slice (it reveals x2 under an
// allow-nothing policy) and grinds ~900k steps per tuple everywhere else,
// so the first shard's counterexample lands while later shards are
// mid-sweep — exercising the short-circuit cancellation.
const skewProg = `
program skew
inputs x1 x2
    if x1 == 0 goto Fast else Slow
Fast: y := x2
      halt
Slow: r := 300000 + (x2 & 1)
Loop: if r == 0 goto Done else Body
Body: r := r - 1
      goto Loop
Done: y := 0
      halt
`

func TestClusterCounterexampleShortCircuits(t *testing.T) {
	req := service.CheckRequest{
		Program: skewProg,
		Policy:  "{}",
		Raw:     true,
		Maximal: true,
		Domain:  bigDomain(128), // 16384 tuples; shard 0 is exactly the fast x1=0 slice
	}
	// One sweep worker per node keeps every slow shard genuinely slow
	// (hundreds of milliseconds), so the short-circuit demonstrably beats
	// the sweep instead of racing it.
	_, srvA := startNode(t, service.Config{Pools: 1, SweepWorkers: 1})
	_, srvB := startNode(t, service.Config{Pools: 1, SweepWorkers: 1})
	coord, err := New(Config{Nodes: []string{srvA.URL, srvB.URL}, Shards: 128, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start := time.Now()
	rep, err := coord.Check(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if rep.Soundness.Sound {
		t.Fatalf("counterexample missed: %+v", rep.Soundness)
	}
	if rep.Complete || rep.Completed >= rep.Shards {
		t.Fatalf("short circuit did not stop the fleet: %d/%d shards completed", rep.Completed, rep.Shards)
	}
	if rep.Cancelled < 1 {
		t.Fatalf("no in-flight shard was cancelled: %+v", rep)
	}
	// The bare program leaks on the seen varying class — definitive on any
	// coverage, so the negative maximality verdict survives the short
	// circuit. (An affirmative or withhold verdict would have been
	// withheld: those need every shard.)
	if rep.Maximality == nil {
		t.Fatalf("definitive maximality leak dropped: %+v", rep)
	}
	if rep.Maximality.Maximal || rep.Maximality.Reason == core.ReasonWithholds {
		t.Fatalf("unexpected partial-coverage maximality verdict: %+v", rep.Maximality)
	}
	// 126 slow shards (~300ms+ each) never ran; the run must finish in a
	// small fraction of the ~20s full-sweep time.
	if elapsed > 15*time.Second {
		t.Fatalf("short-circuited run took %v", elapsed)
	}
}

// TestClusterBusyNodeRetriesInPlace drives the 503 path: one node's queues
// are saturated by a tiny fleet config, and the coordinator's submit
// backoff still lands every shard.
func TestClusterBusyNodeRetriesInPlace(t *testing.T) {
	req := service.CheckRequest{
		Program: soundProg,
		Policy:  "{2}",
		Domain:  bigDomain(16),
	}
	_, srvA := startNode(t, service.Config{Pools: 1, QueueCap: 1})
	coord, err := New(Config{Nodes: []string{srvA.URL}, Shards: 6, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Check(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("busy node never drained: %+v", rep)
	}
	want := localVerdict(t, req)
	if !reflect.DeepEqual(rep.Soundness, want) {
		t.Fatalf("verdict differs: %+v vs %+v", rep.Soundness, want)
	}
}

// TestClusterMaximality distributes a maximality check and requires the
// merged verdict to equal the single-node one.
func TestClusterMaximality(t *testing.T) {
	req := service.CheckRequest{
		Program: soundProg,
		Policy:  "{2}",
		Domain:  bigDomain(24), // 576 tuples
		Maximal: true,
	}
	_, srvA := startNode(t, service.Config{Pools: 2})
	_, srvB := startNode(t, service.Config{Pools: 2})
	coord, err := New(Config{Nodes: []string{srvA.URL, srvB.URL}, Shards: 6, Poll: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Check(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Maximality == nil {
		t.Fatalf("no maximality verdict: %+v", rep)
	}

	p := flowchart.MustParse(req.Program)
	allowed := lattice.NewIndexSet(2)
	m, err := surveillance.Mechanism(p, allowed, surveillance.Untimed)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := core.CompileMechanism(core.FromProgram(p))
	if err != nil {
		t.Fatal(err)
	}
	want, err := check.Run(context.Background(), check.Spec{
		Kind:      check.Maximality,
		Mechanism: m,
		Program:   bare,
		Policy:    core.NewAllowSet(2, allowed),
		Domain:    core.Grid(2, req.Domain...),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := *rep.Maximality
	if got.Maximal != want.Maximal || got.Checked != want.Checked || got.Reason != want.Reason {
		t.Fatalf("maximality verdict differs:\n  %+v\nvs\n  %+v", got, want)
	}
}

func TestClusterRejectsShardedRequest(t *testing.T) {
	coord, err := New(Config{Nodes: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Check(context.Background(), service.CheckRequest{Program: soundProg, Offset: 5}); err == nil {
		t.Fatal("sharded request accepted")
	}
}

// splitIndexSpace invariants are property-checked (and fuzzed) in
// split_test.go.
