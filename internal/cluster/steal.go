package cluster

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spm/internal/check"
	"spm/internal/service"
)

// Defaults for the elastic knobs.
const (
	// DefaultStealInterval is the supervisor cadence: how often the
	// coordinator re-evaluates stragglers and idle capacity.
	DefaultStealInterval = 50 * time.Millisecond
	// eventsIntervalMS is the SSE progress cadence the watcher asks a node
	// for — fine enough that the chunk cursor driving steal decisions is
	// fresh, coarse enough to stay cheap.
	eventsIntervalMS = 20
	// stealMinRemaining is the smallest remaining tuple range worth
	// stealing; below it the cancel/resubmit round-trips cost more than
	// the sweep.
	stealMinRemaining = 16
)

// flight is one shard attempt in flight on one node, tracked so the
// supervisor can watch its chunk cursor and intervene. The cursor comes
// from the node's SSE progress events (poll snapshots on fallback);
// lost/evicted/shrink are verdicts the supervisor or a rival's completion
// passes to the flight's watcher, which acts on them when the job reaches
// a terminal state.
type flight struct {
	node    string
	id      string
	sh      check.Shard
	started time.Time
	// shrunk marks the re-run front of a committed steal. It is never
	// stolen from again — each steal restarts the front from scratch, so
	// repeated steals from one straggler turn into a chain of restarts
	// that is slower than just letting it finish. A slow shrunk front is
	// rescued by speculation (duplicate on a fast node, first wins)
	// instead.
	shrunk bool

	// spec marks a speculative twin; cleared (promoted to primary) if the
	// primary attempt dies while this one is still running.
	spec atomic.Bool
	// lost marks a speculative race this flight did not win; its job is
	// cancelled and its outcome discarded.
	lost atomic.Bool
	// evicted marks a flight whose node retired mid-run; its job is
	// cancelled and the shard requeued without charging its retry budget.
	evicted atomic.Bool

	// done/total mirror the node's last reported ProgressInfo.
	done  atomic.Int64
	total atomic.Int64

	mu     sync.Mutex
	intent *splitIntent
	used   bool
}

// splitIntent is a pending steal: the supervisor has asked the node to
// cancel, and upon observing the cancellation the watcher commits the
// split — front re-runs on the same node, back goes to the pool. If the
// job finishes before the cancel lands, the intent is simply dropped.
type splitIntent struct {
	front, back check.Shard
}

func newFlight(node, id string, e pendingEntry) *flight {
	f := &flight{node: node, id: id, sh: e.sh, started: time.Now(), shrunk: e.shrunk}
	f.spec.Store(e.speculative)
	return f
}

// observe folds one status snapshot into the cursor.
func (f *flight) observe(st *service.JobStatus) {
	f.done.Store(st.Progress.Done)
	f.total.Store(st.Progress.Total)
}

// cursor converts the job-relative progress counter into tuples completed
// within the shard. A maximality job sweeps the range twice (soundness
// then evidence), so the raw counter runs to 2×Count; scaling by
// Count/Total folds both passes into a single conservative tuple cursor.
func (f *flight) cursor() int64 {
	done, total := f.done.Load(), f.total.Load()
	if done <= 0 {
		return 0
	}
	span := f.sh.Count
	if total > span {
		done = done * span / total
	}
	if done > span {
		done = span
	}
	return done
}

// projected estimates how long the flight needs to finish at its observed
// rate. ok is false while the flight has made no measurable progress.
func (f *flight) projected(now time.Time) (time.Duration, bool) {
	done := f.cursor()
	elapsed := now.Sub(f.started)
	if done <= 0 || elapsed <= 0 {
		return 0, false
	}
	rem := f.sh.Count - done
	return time.Duration(float64(elapsed) / float64(done) * float64(rem)), true
}

// gone reports that the flight's outcome is already decided against it.
func (f *flight) gone() bool { return f.lost.Load() || f.evicted.Load() }

func (f *flight) hasShrink() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.intent != nil
}

func (f *flight) setShrink(front, back check.Shard) {
	f.mu.Lock()
	if f.intent == nil {
		f.intent = &splitIntent{front: front, back: back}
	}
	f.mu.Unlock()
}

// takeShrink hands the intent to the watcher exactly once.
func (f *flight) takeShrink() (splitIntent, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.intent == nil || f.used {
		return splitIntent{}, false
	}
	f.used = true
	return *f.intent, true
}

// watch follows the job's SSE event stream (GET /v2/jobs/{id}/events),
// replacing the fixed-cadence status poll: progress events keep the
// flight's chunk cursor fresh for the supervisor, and the terminal event
// ends the watch. Any stream failure — setup, disconnect, a node that
// cannot stream — falls back to the poll loop, which reports the same
// terminal states (and still feeds the cursor, just coarser).
func (r *runner) watch(node, id string, f *flight) (*service.Result, error) {
	httpReq, err := http.NewRequestWithContext(r.stopCtx, http.MethodGet,
		node+"/v2/jobs/"+id+"/events?interval_ms="+eventsIntervalStr, nil)
	if err != nil {
		return r.poll(node, id, f)
	}
	resp, err := r.c.stream.Do(httpReq)
	if err != nil {
		if r.stopCtx.Err() != nil {
			r.cancelJob(node, id)
			return nil, errStopped
		}
		return r.poll(node, id, f)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return r.poll(node, id, f)
	}
	sc := bufio.NewScanner(resp.Body)
	// A done event carries the full result payload; let the line buffer
	// grow to the same bound the poll path enforces.
	sc.Buffer(make([]byte, 64<<10), maxResponseBytes+1)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			event = ""
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			if event != "progress" && event != "done" {
				continue
			}
			var st service.JobStatus
			if json.Unmarshal([]byte(strings.TrimSpace(line[len("data:"):])), &st) != nil {
				continue
			}
			f.observe(&st)
			if res, err, terminal := r.terminalStatus(node, id, &st, f); terminal {
				return res, err
			}
		}
	}
	// Stream ended without a terminal event: node restarted, connection
	// dropped, or the line limit tripped. The job may still be running.
	if r.stopCtx.Err() != nil {
		r.cancelJob(node, id)
		return nil, errStopped
	}
	return r.poll(node, id, f)
}

// eventsIntervalStr is eventsIntervalMS pre-rendered for the query string.
const eventsIntervalStr = "20"

// supervise is the elastic control loop: every StealInterval it sizes up
// the in-flight shards against idle capacity and intervenes — stealing
// the back half of a straggler's remaining range, or speculatively
// duplicating in-flight shards on idle nodes.
func (r *runner) supervise() {
	interval := r.c.cfg.StealInterval
	if interval <= 0 {
		interval = DefaultStealInterval
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopCtx.Done():
			return
		case <-ticker.C:
			r.superviseTick()
		}
	}
}

// superviseTick makes one pass of steal/speculate decisions. Both need
// the same precondition — idle nodes with an empty pool, i.e. capacity
// that plain JSQ pull cannot use — so the tick bails cheaply otherwise.
func (r *runner) superviseTick() {
	r.mu.Lock()
	if r.stopped || r.idle == 0 || len(r.pending) > 0 {
		r.mu.Unlock()
		return
	}
	idle := r.idle
	// A shard already covered twice (primary + twin in flight) is out of
	// bounds for both interventions: a third copy is waste, and stealing
	// from under a twin would let the ranges overlap-diverge.
	covered := make(map[int64]int)
	for fl := range r.flights {
		if !fl.gone() {
			covered[fl.sh.Offset]++
		}
	}
	var cands []*flight
	for fl := range r.flights {
		if fl.gone() || fl.spec.Load() || fl.hasShrink() || covered[fl.sh.Offset] > 1 {
			continue
		}
		if !r.c.registry.usable(fl.node) {
			continue
		}
		cands = append(cands, fl)
	}
	durs := append([]time.Duration(nil), r.shardDurs...)
	r.mu.Unlock()
	if len(cands) == 0 {
		return
	}

	now := time.Now()
	projs := make([]projection, 0, len(cands))
	for _, fl := range cands {
		t, ok := fl.projected(now)
		p := projection{f: fl, t: t, ok: ok, rem: fl.sh.Count - fl.cursor()}
		if !ok {
			// No measurable progress yet: the time already waited is the
			// only (lower-bound) estimate of what remains, so a wedged
			// flight grows ever more suspicious.
			p.t = now.Sub(fl.started)
		}
		projs = append(projs, p)
	}
	sort.Slice(projs, func(i, j int) bool { return projs[i].t > projs[j].t }) // slowest first

	if thr := r.c.cfg.StealThreshold; thr > 0 {
		if base, ok := stealBaseline(projs, durs); ok {
			for _, worst := range projs {
				if worst.f.shrunk {
					continue // never re-steal a shrunk front; see flight.shrunk
				}
				if float64(worst.t) > thr*float64(base) && worst.rem >= stealMinRemaining {
					if front, back, ok := worst.f.sh.SplitRemaining(worst.f.cursor()); ok {
						worst.f.setShrink(front, back)
						idle-- // the stolen back half will occupy one idle node
						go r.cancelJob(worst.f.node, worst.f.id)
					}
				}
				break // only the slowest stealable flight is considered per tick
			}
		}
	}

	if r.c.cfg.Speculate {
		for _, p := range projs {
			if idle <= 0 {
				break
			}
			if p.f.hasShrink() { // just stolen from above
				continue
			}
			if r.pushSpeculative(p.f.sh) {
				idle--
			}
		}
	}
}

// projection is one candidate flight's estimated time to finish. When
// the flight has made no measurable progress (ok false), t is the time
// already waited instead — a lower bound that keeps wedged flights in
// the straggler ordering.
type projection struct {
	f   *flight
	t   time.Duration
	ok  bool
	rem int64
}

// stealBaseline is the yardstick a straggler is measured against: the
// median projected finish of the other in-flight shards, or — when the
// straggler is the only flight left — the median wall time of already
// completed shards (what a healthy node would need). No data means no
// steal: the coordinator never guesses.
func stealBaseline(projs []projection, durs []time.Duration) (time.Duration, bool) {
	var ts []time.Duration
	for _, p := range projs[1:] {
		if p.ok {
			ts = append(ts, p.t)
		}
	}
	if len(ts) == 0 {
		ts = durs
	}
	if len(ts) == 0 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), ts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2], true
}

// pushSpeculative queues a duplicate of an in-flight shard for an idle
// node, reporting whether it was queued. check.Merge tolerates the
// overlap by construction, but the runner never lets it reach the merge:
// the first result per offset wins and the loser is cancelled.
func (r *runner) pushSpeculative(sh check.Shard) bool {
	r.mu.Lock()
	defer func() {
		r.mu.Unlock()
		r.cond.Signal()
	}()
	if r.stopped || r.results[sh.Offset] != nil {
		return false
	}
	// Re-check coverage under the lock: a twin may have appeared since
	// the tick snapshot, or an earlier iteration of this very tick.
	n := 0
	for fl := range r.flights {
		if !fl.gone() && fl.sh.Offset == sh.Offset {
			n++
		}
	}
	for _, e := range r.pending {
		if e.sh.Offset == sh.Offset {
			n++
		}
	}
	if n != 1 {
		return false
	}
	r.pending = append(r.pending, pendingEntry{sh: sh, speculative: true})
	r.speculated++
	r.c.metrics.speculated.Inc()
	return true
}

// membershipLoop reacts to registry changes for the duration of a check:
// joiners get a node loop (entering the shard pool immediately), retirees
// have their in-flight shards evicted, and a fleet with no usable node
// left fails the run rather than hanging.
func (r *runner) membershipLoop() {
	for {
		select {
		case <-r.stopCtx.Done():
			return
		case <-r.c.registry.Watch():
			r.reconcile()
		}
	}
}

// reconcile aligns the running check with the registry snapshot.
func (r *runner) reconcile() {
	alive := 0
	for _, m := range r.c.registry.Members() {
		if m.State == NodeRetired {
			r.evictNode(m.URL)
			continue
		}
		alive++
		r.spawnLoop(m.URL)
	}
	if alive == 0 {
		r.mu.Lock()
		if !r.stopped {
			r.failLocked(errNoNodesLeft)
		}
		r.mu.Unlock()
		r.cond.Broadcast()
	}
}

// evictNode cancels every flight on a retired node. The flights' watchers
// observe the cancellations and requeue the shards without charging their
// retry budgets — leaving is not a failure.
func (r *runner) evictNode(url string) {
	r.mu.Lock()
	var victims []*flight
	for fl := range r.flights {
		if fl.node == url && !fl.gone() {
			fl.evicted.Store(true)
			victims = append(victims, fl)
		}
	}
	r.mu.Unlock()
	for _, fl := range victims {
		go r.cancelJob(fl.node, fl.id)
	}
}
