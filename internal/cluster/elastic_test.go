package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"spm/internal/service"
)

// elasticConfig is the common elastic test fleet: fast poll and a fast
// supervisor so steal/speculate decisions land within test timescales.
func elasticConfig(nodes ...string) Config {
	return Config{
		Nodes:         nodes,
		Registry:      NewRegistry(nodes),
		Poll:          5 * time.Millisecond,
		StealInterval: 5 * time.Millisecond,
	}
}

// requireByteIdentical fails unless the merged soundness verdict equals
// the single-node one byte for byte.
func requireByteIdentical(t *testing.T, rep *Report, req service.CheckRequest) {
	t.Helper()
	want := localVerdict(t, req)
	if !reflect.DeepEqual(rep.Soundness, want) {
		t.Fatalf("merged verdict differs from single-node check.Run:\n  %+v\nvs\n  %+v", rep.Soundness, want)
	}
	gotJSON, _ := json.Marshal(rep.Soundness)
	wantJSON, _ := json.Marshal(want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("verdicts not byte-identical:\n  %s\nvs\n  %s", gotJSON, wantJSON)
	}
}

// TestElasticStealFromStraggler is the tentpole steal scenario: one node
// is made a deterministic straggler via the serve-side throttle hook, and
// the coordinator must detect it, steal the back half of its remaining
// range onto the idle fast node, and still merge a verdict byte-identical
// to a single-node check.
func TestElasticStealFromStraggler(t *testing.T) {
	req := service.CheckRequest{
		Program: soundProg,
		Policy:  "{2}",
		Domain:  bigDomain(128), // 16,384 tuples
	}
	_, fast := startNode(t, service.Config{Pools: 2})
	_, slow := startNode(t, service.Config{Pools: 2, Throttle: 10 * time.Millisecond})

	cfg := elasticConfig(fast.URL, slow.URL)
	cfg.Shards = 4
	cfg.StealThreshold = 2
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := coord.Check(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("run incomplete: %+v", rep)
	}
	if rep.Stolen < 1 {
		t.Fatalf("no shard stolen from the straggler: %+v", rep)
	}
	// Stealing grows the shard count: every steal adds one back-half.
	if rep.Shards != 4+rep.Stolen {
		t.Fatalf("shard accounting off: %d shards after %d steals", rep.Shards, rep.Stolen)
	}
	if rep.Soundness.Checked != 16384 {
		t.Fatalf("checked %d of 16384", rep.Soundness.Checked)
	}
	requireByteIdentical(t, rep, req)
}

// TestElasticSpeculateDuplicates drives speculative re-dispatch: with the
// shard pool drained and the fast node idle, the straggler's in-flight
// shard is duplicated; the fast copy wins and the loser is cancelled —
// with exactly one result per range surviving to the merge.
func TestElasticSpeculateDuplicates(t *testing.T) {
	req := service.CheckRequest{
		Program: soundProg,
		Policy:  "{2}",
		Domain:  bigDomain(128),
	}
	_, fast := startNode(t, service.Config{Pools: 2})
	_, slow := startNode(t, service.Config{Pools: 2, Throttle: 20 * time.Millisecond})

	cfg := elasticConfig(fast.URL, slow.URL)
	cfg.Shards = 4
	cfg.Speculate = true
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := coord.Check(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete {
		t.Fatalf("run incomplete: %+v", rep)
	}
	if rep.Speculated < 1 {
		t.Fatalf("no speculative duplicate dispatched: %+v", rep)
	}
	// Speculation duplicates ranges but never the merge input: the shard
	// count is unchanged and coverage exact.
	if rep.Shards != 4 {
		t.Fatalf("speculation changed the shard count: %+v", rep)
	}
	if rep.Soundness.Checked != 16384 {
		t.Fatalf("checked %d of 16384 (duplicate result leaked into the merge?)", rep.Soundness.Checked)
	}
	requireByteIdentical(t, rep, req)
}

// TestElasticJoinLeaveMidCheck exercises dynamic membership end to end
// through the admin surface: a check starts on one (throttled) node, a
// fast node joins mid-sweep and immediately enters the shard pool, then
// the original node leaves — its in-flight shard is requeued without
// charge — and the verdict is still exact.
func TestElasticJoinLeaveMidCheck(t *testing.T) {
	req := service.CheckRequest{
		Program: soundProg,
		Policy:  "{2}",
		Domain:  bigDomain(128),
	}
	_, first := startNode(t, service.Config{Pools: 2, Throttle: 10 * time.Millisecond})
	_, joiner := startNode(t, service.Config{Pools: 2})

	cfg := elasticConfig(first.URL)
	cfg.Shards = 8
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(coord.AdminHandler())
	t.Cleanup(admin.Close)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan struct{})
	var rep *Report
	var checkErr error
	go func() {
		defer close(done)
		rep, checkErr = coord.Check(ctx, req)
	}()

	// Let the throttled node start sweeping, then join the fast node and
	// retire the original, both through the admin API.
	time.Sleep(150 * time.Millisecond)
	adminPost(t, admin.URL+"/join?node="+joiner.URL)
	time.Sleep(50 * time.Millisecond)
	adminPost(t, admin.URL+"/leave?node="+first.URL)

	select {
	case <-done:
	case <-time.After(50 * time.Second):
		t.Fatal("elastic check hung across join/leave")
	}
	if checkErr != nil {
		t.Fatalf("check failed despite the joined node: %v", checkErr)
	}
	if !rep.Complete {
		t.Fatalf("run incomplete: %+v", rep)
	}
	if rep.Joined < 1 || rep.Left < 1 {
		t.Fatalf("membership churn not reported: joined=%d left=%d", rep.Joined, rep.Left)
	}
	states := map[string]NodeState{}
	for _, n := range rep.Nodes {
		states[n.URL] = n.State
	}
	if states[first.URL] != NodeRetired {
		t.Fatalf("left node not retired: %+v", rep.Nodes)
	}
	if states[joiner.URL] != NodeAlive {
		t.Fatalf("joined node not alive: %+v", rep.Nodes)
	}
	if rep.Soundness.Checked != 16384 {
		t.Fatalf("checked %d of 16384", rep.Soundness.Checked)
	}
	requireByteIdentical(t, rep, req)
}

func adminPost(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatalf("admin POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin POST %s: status %d", url, resp.StatusCode)
	}
}

// TestRegistryProbeTransitions pins the health state machine: alive →
// suspect on the first probe failure, back to alive on success, retired
// (counted as a leave) after sustained failures.
func TestRegistryProbeTransitions(t *testing.T) {
	g := NewRegistry([]string{"http://a", "http://b"})
	g.probeResult("http://a", false)
	if ms := g.Members(); ms[0].State != NodeSuspect {
		t.Fatalf("one failure: %+v", ms[0])
	}
	g.probeResult("http://a", true)
	if ms := g.Members(); ms[0].State != NodeAlive || ms[0].Failures != 0 {
		t.Fatalf("recovery: %+v", ms[0])
	}
	for i := 0; i < probeRetireAfter; i++ {
		g.probeResult("http://a", false)
	}
	ms := g.Members()
	if ms[0].State != NodeRetired {
		t.Fatalf("sustained failures did not retire: %+v", ms[0])
	}
	if _, left := g.counts(); left != 1 {
		t.Fatalf("probe retirement not counted as a leave: left=%d", left)
	}
	// Retired is sticky against probes but not against an explicit Join.
	g.probeResult("http://a", true)
	if g.Members()[0].State != NodeRetired {
		t.Fatal("probe revived a retired node")
	}
	if !g.Join("http://a") {
		t.Fatal("join did not revive the retired node")
	}
	if g.Members()[0].State != NodeAlive {
		t.Fatalf("revived node not alive: %+v", g.Members()[0])
	}
}

// TestRegistrySyncNodes covers the nodes-file reload path: additions
// join, removals leave, and the registry converges on the file contents.
func TestRegistrySyncNodes(t *testing.T) {
	g := NewRegistry([]string{"http://a", "http://b"})
	joined, left := g.SyncNodes([]string{"http://b", "http://c"})
	if joined != 1 || left != 1 {
		t.Fatalf("sync applied %d joins, %d leaves", joined, left)
	}
	states := map[string]NodeState{}
	for _, m := range g.Members() {
		states[m.URL] = m.State
	}
	want := map[string]NodeState{"http://a": NodeRetired, "http://b": NodeAlive, "http://c": NodeAlive}
	if !reflect.DeepEqual(states, want) {
		t.Fatalf("after sync: %+v", states)
	}
	if got := g.Alive(); len(got) != 2 {
		t.Fatalf("alive after sync: %v", got)
	}
}

// TestAdminHandlerSurface covers the HTTP membership API directly.
func TestAdminHandlerSurface(t *testing.T) {
	cfg := elasticConfig("http://a")
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.AdminHandler())
	t.Cleanup(srv.Close)

	// Bare host:port joins default to http, like the -nodes flag.
	adminPost(t, srv.URL+"/join?node=127.0.0.1:9999")
	resp, err := http.Get(srv.URL + "/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var members []Member
	if err := json.NewDecoder(resp.Body).Decode(&members); err != nil {
		t.Fatal(err)
	}
	if got := sortedMemberURLs(members); len(got) != 2 || got[0] != "http://127.0.0.1:9999" || got[1] != "http://a" {
		t.Fatalf("members after join: %v", got)
	}
	adminPost(t, srv.URL+"/leave?node=127.0.0.1:9999")
	if alive := cfg.Registry.Alive(); len(alive) != 1 || alive[0] != "http://a" {
		t.Fatalf("alive after leave: %v", alive)
	}
	// Missing node parameter is a 400.
	resp2, err := http.Post(srv.URL+"/join", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("join without node: status %d", resp2.StatusCode)
	}
}

// TestElasticProbeRetiresDeadNode lets the health probes — not a dispatch
// failure — discover a dead node mid-check: the probe loop retires it and
// the survivors absorb its shards.
func TestElasticProbeRetiresDeadNode(t *testing.T) {
	req := service.CheckRequest{
		Program: slowSoundProg,
		Policy:  "{2}",
		Raw:     true,
		Domain:  bigDomain(64), // 4,096 tuples × ~15k steps
	}
	_, alive := startNode(t, service.Config{Pools: 2})
	svcB := service.New(service.Config{Pools: 2})
	srvB := httptest.NewServer(svcB.Handler())
	t.Cleanup(svcB.Close)

	cfg := elasticConfig(alive.URL, srvB.URL)
	cfg.Shards = 8
	cfg.Registry.ProbeInterval = 20 * time.Millisecond
	cfg.Registry.ProbeTimeout = 200 * time.Millisecond
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done := make(chan struct{})
	var rep *Report
	var checkErr error
	go func() {
		defer close(done)
		rep, checkErr = coord.Check(ctx, req)
	}()
	time.Sleep(100 * time.Millisecond)
	srvB.CloseClientConnections()
	srvB.Close()
	select {
	case <-done:
	case <-time.After(50 * time.Second):
		t.Fatal("elastic check hung after node death")
	}
	if checkErr != nil {
		t.Fatalf("check failed despite a surviving node: %v", checkErr)
	}
	if !rep.Complete {
		t.Fatalf("run incomplete: %+v", rep)
	}
	requireByteIdentical(t, rep, req)
}
