// Package cluster distributes one exhaustive check across a fleet of
// `spm serve` nodes: the coordinator splits the domain's mixed-radix index
// space [0, Size) into contiguous shards, dispatches each shard to a node
// over the v2 HTTP surface (POST /v2/check with the shard's offset/count),
// and folds the partial results back into the exact whole-domain verdict
// with check.Merge — the per-node generalisation of the per-worker merge
// the in-process parallel checkers already do.
//
// The loop is closed against failure: a node that refuses a shard (503),
// dies mid-sweep, or fails the job has the shard re-dispatched to another
// node (bounded by Config.Retries per shard), and because every shard's
// result carries its cross-shard evidence tables the re-run verdict is
// still exact. A shard that comes back with a definitive counterexample —
// unsound, or a locally-decidable maximality leak — short-circuits the
// rest: outstanding jobs are cancelled via DELETE /v2/jobs/{id} (the
// service stops them within one sweep chunk) and pending shards are never
// dispatched.
//
// Work placement is join-the-shortest-queue in the degenerate per-node
// form: each node runs one shard at a time and pulls the next pending
// shard the moment it finishes, so faster nodes sweep more of the index
// space — the same dynamic balance the JSQ scheduler gives jobs inside one
// node.
//
// # Elastic mode
//
// With a Registry (or any steal/speculate knob) configured the fleet
// becomes elastic, exploiting the fact that a shard is nothing but a
// contiguous index range [Offset, Offset+Count):
//
//   - Dynamic membership. Nodes join and leave mid-check through the
//     registry (Coordinator.AdminHandler, nodes-file SIGHUP rereads);
//     joiners enter the shard pool immediately, leavers have their
//     in-flight shard cancelled and requeued without charging its retry
//     budget, and health probes of GET /v2/stats retire silently dead
//     nodes.
//
//   - Shard stealing. The coordinator follows each job's chunk cursor
//     over the SSE event stream (GET /v2/jobs/{id}/events, with a poll
//     fallback) and projects every flight's finish time. When a
//     straggler's projection exceeds StealThreshold × the median and
//     idle nodes exist, the remaining range is split at a cursor-aligned
//     midpoint with integer arithmetic: the back half goes to an idle
//     node and the straggler is shrunk by cancel-and-resubmit of the
//     front half.
//
//   - Speculative re-dispatch. When idle nodes outnumber the remaining
//     shards, in-flight shards are duplicated on idle nodes; the first
//     result per shard wins and the loser is cancelled. check.Merge
//     tolerates overlapping duplicates by construction, but the runner
//     keeps exactly one result per shard offset, so the merged verdict
//     stays byte-identical to a single-node check.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/service"
	"spm/internal/sweep"
)

// Defaults for Config's zero values.
const (
	// DefaultShardsPerNode is the shard fan-out per node when
	// Config.Shards is unset: more shards than nodes, so a dead node
	// forfeits only its in-flight shard and the survivors absorb the rest
	// one shard at a time.
	DefaultShardsPerNode = 4
	// DefaultRetries bounds how many times one shard may be re-dispatched
	// after failures before the whole check fails.
	DefaultRetries = 3
	// DefaultPoll is the job-status poll cadence.
	DefaultPoll = 50 * time.Millisecond
)

// maxPollFailures is how many consecutive status-poll failures mark a node
// dead mid-job.
const maxPollFailures = 5

// busySubmitRetries bounds the in-place backoff against a node answering
// 503 before the shard is handed back to the pool (which counts one retry
// against its budget).
const busySubmitRetries = 8

// Config tunes a Coordinator.
type Config struct {
	// Nodes lists the worker base URLs, e.g. "http://127.0.0.1:8135".
	// Required.
	Nodes []string
	// Shards is the number of contiguous index-space shards; ≤ 0 means
	// DefaultShardsPerNode × len(Nodes), clamped to the domain size.
	Shards int
	// Retries is the per-shard re-dispatch budget after node failures;
	// ≤ 0 means DefaultRetries.
	Retries int
	// Poll is the job-status poll cadence; ≤ 0 means DefaultPoll.
	Poll time.Duration
	// Client is the HTTP client; nil means a client with a 30s timeout.
	Client *http.Client

	// Registry, when set, makes the fleet elastic: membership comes from
	// the registry (Nodes, if also given, are joined into it) and may
	// change mid-check. Setting any of the fields below without a
	// Registry creates one implicitly from Nodes.
	Registry *Registry
	// StealThreshold enables shard stealing when > 0: a flight whose
	// projected finish exceeds StealThreshold × the median (of the other
	// flights, or of completed shard times) while idle nodes exist has
	// the back half of its remaining range stolen. Values near 1 steal
	// aggressively; 2–4 is a reasonable range.
	StealThreshold float64
	// Speculate enables speculative re-dispatch: when idle nodes exist
	// and no shards are pending, in-flight shards are duplicated on the
	// idle nodes and the first result per shard wins.
	Speculate bool
	// StealInterval is the supervisor cadence; ≤ 0 means
	// DefaultStealInterval.
	StealInterval time.Duration
}

// elastic reports whether cfg asks for the elastic runner.
func (cfg *Config) elastic() bool {
	return cfg.Registry != nil || cfg.StealThreshold > 0 || cfg.Speculate
}

// Coordinator fans one check out over a fleet of spm serve nodes.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	elastic bool
	// registry is the membership table; in fixed mode it exists but is
	// never consulted or probed.
	registry *Registry
	// stream is client without a deadline, for long-lived SSE watches.
	stream *http.Client
	// metrics accumulates coordinator-lifetime counters (GET /metrics on
	// the admin mux).
	metrics *clusterMetrics
}

// New validates cfg and builds a Coordinator. Duplicate node URLs are
// collapsed: the runner's per-node accounting (live-node count, failure
// tallies) keys on the URL, so one physical node must appear once.
func New(cfg Config) (*Coordinator, error) {
	seen := make(map[string]bool, len(cfg.Nodes))
	deduped := make([]string, 0, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n == "" {
			return nil, errors.New("cluster: empty node URL")
		}
		if !seen[n] {
			seen[n] = true
			deduped = append(deduped, n)
		}
	}
	cfg.Nodes = deduped
	if cfg.Retries <= 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	registry := cfg.Registry
	if registry == nil {
		registry = NewRegistry(cfg.Nodes)
	} else {
		for _, n := range cfg.Nodes {
			registry.Join(n)
		}
	}
	c := &Coordinator{
		cfg:      cfg,
		client:   client,
		elastic:  cfg.elastic(),
		registry: registry,
		stream:   &http.Client{Transport: client.Transport},
	}
	c.metrics = newClusterMetrics(c)
	if c.elastic {
		if len(registry.Alive()) == 0 {
			return nil, errors.New("cluster: no nodes")
		}
	} else if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	return c, nil
}

// NodeReport is one node's row in a Report.
type NodeReport struct {
	URL string `json:"url"`
	// Shards counts shards this node completed; Failures counts submit,
	// poll, and job failures observed against it.
	Shards   int `json:"shards"`
	Failures int `json:"failures"`
	// Dead marks a node the coordinator stopped using mid-run.
	Dead bool `json:"dead,omitempty"`
	// State is the node's membership state at the end of an elastic run;
	// empty in fixed mode.
	State NodeState `json:"state,omitempty"`
}

// Report is the outcome of one distributed check.
type Report struct {
	// Soundness is the merged whole-domain soundness verdict. When the
	// run short-circuited it covers exactly the shards that completed
	// (Complete false, Checked partial) — still exact for every tuple it
	// counts.
	Soundness check.Verdict
	// Maximality is the merged maximality verdict, when requested. After
	// a short-circuited run it is present only when the seen shards are
	// definitive (a leak or alter deviation); affirmative and withhold
	// verdicts need every shard's class table, so incomplete ones are
	// withheld as nil.
	Maximality *check.Verdict
	// Complete reports that every shard finished: Checked totals equal
	// the whole index space. A definitive counterexample short-circuits
	// the run, leaving Complete false with the counterexample in hand.
	Complete bool
	// Shards is the fan-out; Completed how many finished; Retries how
	// many re-dispatches failures forced; Cancelled how many in-flight
	// jobs the short-circuit cancelled on their nodes.
	Shards    int
	Completed int
	Retries   int
	Cancelled int
	// Elastic accounting: nodes that joined and left mid-check, shards
	// whose back half was stolen from a straggler, and speculative
	// duplicates dispatched. All zero in fixed mode.
	Joined     int
	Left       int
	Stolen     int
	Speculated int
	Nodes      []NodeReport
	Elapsed    time.Duration
}

// String summarises the distributed run: the merged verdict(s) first —
// rendered exactly as a single-node verdict renders — then one line of
// cluster accounting.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Soundness.String())
	if r.Maximality != nil {
		b.WriteString("\n")
		b.WriteString(r.Maximality.String())
	}
	fmt.Fprintf(&b, "\ncluster: %d/%d shards on %d nodes (%d retries, %d cancelled) in %v",
		r.Completed, r.Shards, len(r.Nodes), r.Retries, r.Cancelled, r.Elapsed.Round(time.Millisecond))
	if r.Joined+r.Left+r.Stolen+r.Speculated > 0 {
		fmt.Fprintf(&b, "\nelastic: %d joined, %d left, %d stolen, %d speculated",
			r.Joined, r.Left, r.Stolen, r.Speculated)
	}
	return b.String()
}

// errStopped marks a shard run abandoned because the coordinator
// short-circuited; errNodeDown marks the node unusable.
var (
	errStopped  = errors.New("cluster: run stopped")
	errNodeDown = errors.New("cluster: node down")
	errBusy     = errors.New("cluster: node busy")
	// errLost marks a speculative flight whose rival finished first; its
	// outcome is discarded without requeue or charge.
	errLost = errors.New("cluster: speculative race lost")
	// errEvicted marks a flight cancelled because its node retired; the
	// shard is requeued without charging its retry budget.
	errEvicted = errors.New("cluster: node retired mid-shard")
	// errNoNodesLeft fails an elastic run whose registry drained.
	errNoNodesLeft = errors.New("cluster: every node retired")
)

// shrunkError carries a committed steal back to the node loop: the
// straggler's job was cancelled, the back half of its remaining range is
// already in the pool, and the loop must immediately re-run the front
// half on the same node.
type shrunkError struct{ front check.Shard }

func (e *shrunkError) Error() string {
	return fmt.Sprintf("cluster: shard shrunk to [%d,+%d)", e.front.Offset, e.front.Count)
}

// fatalError wraps a node response that retrying elsewhere cannot fix —
// the service rejected the submission as invalid.
type fatalError struct{ msg string }

func (e *fatalError) Error() string { return e.msg }

// Check runs req — a whole-domain submission in the service's wire format
// — across the fleet and returns the merged report. The request must not
// itself be sharded; the coordinator owns the split. Cancelling ctx
// cancels every in-flight job and returns ctx's error.
func (c *Coordinator) Check(ctx context.Context, req service.CheckRequest) (*Report, error) {
	if req.Sharded() {
		return nil, errors.New("cluster: request already sharded; the coordinator owns the split")
	}
	prog, err := flowchart.Parse(req.Program)
	if err != nil {
		return nil, fmt.Errorf("cluster: program: %w", err)
	}
	values := req.Domain
	if len(values) == 0 {
		values = []int64{0, 1, 2}
	}
	req.Domain = values
	size := sweep.Size(core.Grid(prog.Arity(), values...))
	if size == math.MaxInt {
		return nil, errors.New("cluster: domain product overflows the index space")
	}
	shards := splitIndexSpace(size, c.shardCount(size))

	c.metrics.checks.Inc()
	start := time.Now()
	r := newRunner(ctx, c, req, shards)
	if c.elastic {
		go c.registry.probeLoop(r.stopCtx, c.client)
		go r.membershipLoop()
		go r.supervise()
		for _, node := range c.registry.Alive() {
			r.spawnLoop(node)
		}
	} else {
		for _, node := range c.cfg.Nodes {
			r.spawnLoop(node)
		}
	}
	r.waitDone()
	r.stop() // release the stop context in every exit path

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.fatal != nil && !r.definitive {
		return nil, r.fatal
	}
	rep, err := r.report(c.cfg.Nodes)
	if err != nil {
		return nil, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// shardCount resolves the fan-out for a domain of the given size.
func (c *Coordinator) shardCount(size int) int {
	n := c.cfg.Shards
	if n <= 0 {
		nodes := len(c.cfg.Nodes)
		if c.elastic {
			nodes = len(c.registry.Alive())
		}
		if nodes < 1 {
			nodes = 1
		}
		n = DefaultShardsPerNode * nodes
	}
	if size > 0 && n > size {
		n = size
	}
	if n < 1 {
		n = 1
	}
	return n
}

// splitIndexSpace cuts [0, size) into n contiguous near-equal shards.
func splitIndexSpace(size, n int) []check.Shard {
	shards := make([]check.Shard, 0, n)
	base, rem := size/n, size%n
	offset := int64(0)
	for i := 0; i < n; i++ {
		count := int64(base)
		if i < rem {
			count++
		}
		shards = append(shards, check.Shard{Offset: offset, Count: count})
		offset += count
	}
	return shards
}

// pendingEntry is one unit of dispatchable work: a shard, plus whether it
// is a speculative duplicate of a range already in flight elsewhere, or
// the shrunk front of a committed steal.
type pendingEntry struct {
	sh          check.Shard
	speculative bool
	shrunk      bool
}

// runner is the state of one distributed check: a pool of pending shards,
// the per-shard retry ledger, and the completed results. Node goroutines
// pull shards from it; any definitive counterexample or fatal error stops
// the pool. In elastic mode the runner additionally tracks every attempt
// as a flight (for the steal/speculate supervisor) and spawns and retires
// node loops as the registry changes.
type runner struct {
	c   *Coordinator
	req service.CheckRequest

	ctx     context.Context
	stopCtx context.Context
	stop    context.CancelFunc

	mu          sync.Mutex
	cond        *sync.Cond
	pending     []pendingEntry
	outstanding int // shards not yet completed
	attempts    map[int64]int
	results     map[int64]*service.Result
	nodes       map[string]*NodeReport
	live        int
	retries     int
	cancelled   int
	fatal       error
	definitive  bool
	stopped     bool

	// Elastic state. flights is every shard attempt currently on a node;
	// idle counts node loops blocked in next with nothing to pull;
	// loopsActive and started govern the dynamic loop-per-node lifecycle;
	// shardDurs collects completed shard wall times for the steal
	// baseline.
	flights     map[*flight]struct{}
	idle        int
	loopsActive int
	started     map[string]bool
	shardDurs   []time.Duration
	stolen      int
	speculated  int
}

func newRunner(ctx context.Context, c *Coordinator, req service.CheckRequest, shards []check.Shard) *runner {
	stopCtx, stop := context.WithCancel(ctx)
	r := &runner{
		c:           c,
		req:         req,
		ctx:         ctx,
		stopCtx:     stopCtx,
		stop:        stop,
		outstanding: len(shards),
		attempts:    make(map[int64]int),
		results:     make(map[int64]*service.Result),
		nodes:       make(map[string]*NodeReport),
		flights:     make(map[*flight]struct{}),
		started:     make(map[string]bool),
	}
	for _, sh := range shards {
		r.pending = append(r.pending, pendingEntry{sh: sh})
	}
	r.cond = sync.NewCond(&r.mu)
	if c.elastic {
		for _, m := range c.registry.Members() {
			r.nodes[m.URL] = &NodeReport{URL: m.URL}
		}
	} else {
		r.live = len(c.cfg.Nodes)
		for _, n := range c.cfg.Nodes {
			r.nodes[n] = &NodeReport{URL: n}
		}
	}
	// Wake waiters when the caller's context dies so node loops never
	// block past cancellation.
	context.AfterFunc(stopCtx, func() {
		r.mu.Lock()
		r.stopped = true
		r.mu.Unlock()
		r.cond.Broadcast()
	})
	return r
}

// nodeRep returns the node's report row, creating one for nodes that
// joined after the run started. Callers hold r.mu.
func (r *runner) nodeRep(node string) *NodeReport {
	nr := r.nodes[node]
	if nr == nil {
		nr = &NodeReport{URL: node}
		r.nodes[node] = nr
	}
	return nr
}

// spawnLoop starts a node loop unless the run is over or the node already
// has one. Used both for the initial fleet and for mid-check joiners.
func (r *runner) spawnLoop(node string) {
	r.mu.Lock()
	if r.stopped || r.outstanding == 0 || r.started[node] {
		r.mu.Unlock()
		return
	}
	r.started[node] = true
	r.loopsActive++
	r.nodeRep(node)
	r.mu.Unlock()
	go func() {
		defer func() {
			r.mu.Lock()
			r.loopsActive--
			r.started[node] = false
			r.mu.Unlock()
			r.cond.Broadcast()
		}()
		r.nodeLoop(node)
	}()
}

// waitDone blocks until the run is decided (all shards complete, or
// stopped) and every node loop has wound down — after which the results
// map is immutable and safe to merge.
func (r *runner) waitDone() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for !((r.stopped || r.outstanding == 0) && r.loopsActive == 0) {
		r.cond.Wait()
	}
}

// next blocks until a shard is available, every shard has completed, or
// the run stopped. The second return is false when the node should exit.
func (r *runner) next() (pendingEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.stopped || r.outstanding == 0 {
			return pendingEntry{}, false
		}
		if len(r.pending) > 0 {
			e := r.pending[0]
			r.pending = r.pending[1:]
			if e.speculative && r.results[e.sh.Offset] != nil {
				// The primary finished while this duplicate waited.
				continue
			}
			return e, true
		}
		// Shards are all in flight on other nodes; one may yet fail and
		// come back to the pool — and in elastic mode an idle loop here
		// is the capacity signal that triggers stealing and speculation.
		r.idle++
		r.cond.Wait()
		r.idle--
	}
}

// giveBack returns an undispatched entry to the pool (the loop pulled it
// but cannot run it — its node retired between next and submit).
func (r *runner) giveBack(e pendingEntry) {
	r.mu.Lock()
	r.pending = append([]pendingEntry{e}, r.pending...)
	r.mu.Unlock()
	r.cond.Broadcast()
}

// complete records a finished shard and short-circuits the pool when its
// result is a definitive counterexample. Exactly one result per shard
// offset is kept: a speculative duplicate arriving second is discarded
// (keeping the merge input duplicate-free), and a win cancels the losing
// rival flights.
func (r *runner) complete(node string, e pendingEntry, res *service.Result, fl *flight) {
	r.mu.Lock()
	off := e.sh.Offset
	if r.results[off] != nil {
		// A rival already decided this range; this copy lost the race
		// after the cancel missed it. Drop the result.
		r.mu.Unlock()
		return
	}
	r.results[off] = res
	r.outstanding--
	r.nodeRep(node).Shards++
	r.c.metrics.shards.Inc()
	if fl != nil {
		r.shardDurs = append(r.shardDurs, time.Since(fl.started))
	}
	// Settle rivals: in-flight twins lose, queued duplicates evaporate.
	var losers []*flight
	for other := range r.flights {
		if other != fl && other.sh.Offset == off && !other.gone() {
			other.lost.Store(true)
			losers = append(losers, other)
		}
	}
	if len(losers) > 0 || len(r.pending) > 0 {
		kept := r.pending[:0]
		for _, p := range r.pending {
			if !(p.speculative && p.sh.Offset == off) {
				kept = append(kept, p)
			}
		}
		r.pending = kept
	}
	definitive := !res.Sound || (res.Maximal != nil && !*res.Maximal)
	if definitive {
		r.definitive = true
		r.stopped = true
	}
	done := r.outstanding == 0
	r.mu.Unlock()
	for _, other := range losers {
		go r.cancelJob(other.node, other.id)
	}
	if definitive {
		r.stop()
	}
	if definitive || done {
		r.cond.Broadcast()
	} else {
		r.cond.Signal()
	}
}

// addFlight / removeFlight bracket one shard attempt for the supervisor.
func (r *runner) addFlight(fl *flight) {
	r.mu.Lock()
	r.flights[fl] = struct{}{}
	r.mu.Unlock()
}

func (r *runner) removeFlight(fl *flight) {
	r.mu.Lock()
	delete(r.flights, fl)
	r.mu.Unlock()
}

// commitSplit finalizes a steal once the straggler's cancellation is
// observed: the stolen back half enters the pool as a brand-new shard
// (fresh retry budget — it is new work, not a failure) and the shard
// count grows by one.
func (r *runner) commitSplit(intent splitIntent) {
	r.c.metrics.stolen.Inc()
	r.mu.Lock()
	r.outstanding++
	r.stolen++
	r.pending = append(r.pending, pendingEntry{sh: intent.back})
	r.mu.Unlock()
	r.cond.Signal()
}

// requeue hands a failed shard back to the pool. A genuine failure
// charges the shard's retry budget — exhausting it is fatal for the whole
// check — while a busy refusal or an eviction (charge false) does not:
// the node is healthy or merely leaving, and neither must convert into a
// permanent failure. The caller's context bounds how long a perpetually
// busy fleet can spin.
//
// Speculation complicates the ledger: a range whose result already
// arrived (the twin won) needs no requeue at all, a failed speculative
// copy whose primary is still flying is simply dropped, and a failed
// primary whose twin is still flying promotes the twin instead of
// requeuing — the range must be owned by exactly one live attempt or
// pool entry at all times.
func (r *runner) requeue(node string, e pendingEntry, cause error, charge bool) {
	r.mu.Lock()
	defer func() {
		r.mu.Unlock()
		r.cond.Broadcast()
	}()
	r.nodeRep(node).Failures++
	if r.stopped {
		return
	}
	sh := e.sh
	if r.results[sh.Offset] != nil {
		return // a rival already finished this range
	}
	if twin := r.rivalFlightLocked(sh.Offset, node); twin != nil {
		if e.speculative {
			return // the primary is still flying
		}
		// The primary died; its speculative twin inherits the range.
		twin.spec.Store(false)
		return
	}
	// A failing speculative copy with no surviving primary inherits the
	// primary role and requeues under the normal rules.
	if charge {
		r.attempts[sh.Offset]++
		if r.attempts[sh.Offset] > r.c.cfg.Retries {
			r.failLocked(fmt.Errorf("cluster: shard [%d,+%d) failed %d times, last on %s: %w",
				sh.Offset, sh.Count, r.attempts[sh.Offset], node, cause))
			return
		}
	}
	r.retries++
	r.c.metrics.retries.Inc()
	r.pending = append(r.pending, pendingEntry{sh: sh})
}

// rivalFlightLocked finds another live flight covering the offset, if
// any. Callers hold r.mu.
func (r *runner) rivalFlightLocked(offset int64, excludeNode string) *flight {
	for fl := range r.flights {
		if fl.sh.Offset == offset && !fl.gone() && fl.node != excludeNode {
			return fl
		}
	}
	return nil
}

// nodeDead retires a node; with no usable nodes left the check fails. In
// elastic mode the registry is the source of truth (and a later Join can
// revive the URL for the next check); in fixed mode the live counter is.
func (r *runner) nodeDead(node string) {
	if r.c.elastic {
		r.c.registry.retire(node)
		r.mu.Lock()
		r.nodeRep(node).Dead = true
		if len(r.c.registry.Alive()) == 0 && !r.stopped {
			r.failLocked(errNoNodesLeft)
		}
		r.mu.Unlock()
		r.cond.Broadcast()
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node].Dead {
		return
	}
	r.nodes[node].Dead = true
	r.live--
	if r.live == 0 && !r.stopped {
		r.failLocked(errors.New("cluster: every node failed"))
	}
}

// failLocked records a fatal error and stops the pool. Callers hold r.mu;
// stop is safe here because context.AfterFunc runs its callback (which
// re-acquires the mutex) in its own goroutine.
func (r *runner) failLocked(err error) {
	if r.fatal == nil {
		r.fatal = err
	}
	r.stopped = true
	r.stop()
}

// noteCancelled counts an in-flight job the short-circuit cancelled.
func (r *runner) noteCancelled() {
	r.c.metrics.cancelled.Inc()
	r.mu.Lock()
	r.cancelled++
	r.mu.Unlock()
}

// nodeLoop pulls shards and runs them on one node until the pool drains,
// the run stops, the node dies, or (elastic) the node retires. A shrunk
// shard — the supervisor stole its back half — re-runs its front half on
// the same node immediately, without a round-trip through the pool.
func (r *runner) nodeLoop(node string) {
	for {
		e, ok := r.next()
		if !ok {
			return
		}
		if r.c.elastic && !r.c.registry.usable(node) {
			r.giveBack(e)
			return
		}
	attempt:
		res, fl, err := r.runShard(node, e)
		switch {
		case err == nil:
			r.complete(node, e, res, fl)
		case errors.Is(err, errStopped):
			// The pool stopped while this shard was in flight; it is
			// deliberately not completed and not requeued.
			return
		case errors.Is(err, errLost):
			// A speculative rival finished first; nothing to do.
			continue
		case errors.Is(err, errEvicted):
			r.requeue(node, e, err, false)
			return
		case errors.Is(err, errNodeDown):
			r.requeue(node, e, err, true)
			r.nodeDead(node)
			return
		case errors.Is(err, errBusy):
			r.requeue(node, e, err, false)
			continue
		default:
			var se *shrunkError
			if errors.As(err, &se) {
				e = pendingEntry{sh: se.front, shrunk: true}
				goto attempt
			}
			var fe *fatalError
			if errors.As(err, &fe) {
				r.mu.Lock()
				r.failLocked(fmt.Errorf("cluster: node %s rejected shard [%d,+%d): %s", node, e.sh.Offset, e.sh.Count, fe.msg))
				r.mu.Unlock()
				r.cond.Broadcast()
				return
			}
			r.requeue(node, e, err, true)
		}
	}
}

// runShard executes one shard attempt on one node: submit, watch (SSE
// with poll fallback; plain poll in fixed mode) to a terminal state, and
// return the result plus the flight that produced it (nil in fixed
// mode). On coordinator stop the in-flight job is cancelled server-side
// (DELETE /v2/jobs/{id}) before returning.
func (r *runner) runShard(node string, e pendingEntry) (*service.Result, *flight, error) {
	req := r.req
	req.Offset = e.sh.Offset
	req.Count = e.sh.Count
	// Every shard of the run submits the same program text, so after the
	// first shard the node's content-addressed compile cache answers and
	// the job goes straight to the sweep.
	id, err := r.submit(node, req)
	if err != nil {
		return nil, nil, err
	}
	if !r.c.elastic {
		res, err := r.poll(node, id, nil)
		return res, nil, err
	}
	fl := newFlight(node, id, e)
	r.addFlight(fl)
	defer r.removeFlight(fl)
	res, err := r.watch(node, id, fl)
	return res, fl, err
}

// submit POSTs the shard to the node, absorbing transient 503s with a
// short backoff before giving the shard back to the pool.
func (r *runner) submit(node string, req service.CheckRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", &fatalError{msg: err.Error()}
	}
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		if r.stopCtx.Err() != nil {
			return "", errStopped
		}
		httpReq, err := http.NewRequestWithContext(r.stopCtx, http.MethodPost, node+"/v2/check", bytes.NewReader(body))
		if err != nil {
			return "", &fatalError{msg: err.Error()}
		}
		httpReq.Header.Set("Content-Type", "application/json")
		resp, err := r.c.client.Do(httpReq)
		if err != nil {
			if r.stopCtx.Err() != nil {
				return "", errStopped
			}
			return "", fmt.Errorf("%w: %s: %v", errNodeDown, node, err)
		}
		payload, status, err := readBody(resp)
		if errors.Is(err, errResponseTooLarge) {
			return "", &fatalError{msg: err.Error()}
		}
		if err != nil {
			return "", fmt.Errorf("%w: %s: %v", errNodeDown, node, err)
		}
		switch {
		case status == http.StatusAccepted:
			var sub service.SubmitResponse
			if err := json.Unmarshal(payload, &sub); err != nil || sub.ID == "" {
				return "", fmt.Errorf("%w: %s: bad submit response", errNodeDown, node)
			}
			return sub.ID, nil
		case status == http.StatusServiceUnavailable:
			if attempt >= busySubmitRetries {
				return "", fmt.Errorf("%w: %s", errBusy, node)
			}
			select {
			case <-r.stopCtx.Done():
				return "", errStopped
			case <-time.After(backoff):
			}
			if backoff < time.Second {
				backoff *= 2
			}
		case status == http.StatusBadRequest || status == http.StatusRequestEntityTooLarge:
			return "", &fatalError{msg: fmt.Sprintf("%d: %s", status, errorMessage(payload))}
		default:
			return "", fmt.Errorf("%w: %s: unexpected status %d", errNodeDown, node, status)
		}
	}
}

// poll watches the job until it reaches a terminal state, checking
// immediately (small shards on a warm compile cache finish faster than a
// poll interval) and then once per interval. A coordinator stop cancels
// the job server-side; repeated poll failures mark the node dead. In
// elastic mode poll is the fallback behind the SSE watch and keeps the
// flight's cursor fed from the status snapshots.
func (r *runner) poll(node, id string, fl *flight) (*service.Result, error) {
	failures := 0
	for {
		st, err := r.jobStatus(node, id)
		switch {
		case errors.Is(err, errResponseTooLarge):
			// Any node would produce the same oversized result for this
			// shard; retrying elsewhere cannot fix it.
			return nil, &fatalError{msg: err.Error()}
		case err != nil && r.stopCtx.Err() != nil:
			r.cancelJob(node, id)
			return nil, errStopped
		case err != nil:
			failures++
			if failures >= maxPollFailures {
				return nil, fmt.Errorf("%w: %s: %v", errNodeDown, node, err)
			}
		default:
			failures = 0
			if fl != nil {
				fl.observe(st)
			}
			if res, terr, terminal := r.terminalStatus(node, id, st, fl); terminal {
				return res, terr
			}
		}
		select {
		case <-r.stopCtx.Done():
			r.cancelJob(node, id)
			return nil, errStopped
		case <-time.After(r.c.cfg.Poll):
		}
	}
}

// terminalStatus interprets one status snapshot, shared by the SSE watch
// and the poll loop. The third return is false while the job is still
// queued or running. A cancellation is disambiguated by who asked for
// it: the coordinator's short-circuit, a lost speculative race, a node
// eviction, or a steal — in which case the split commits here, exactly
// once, and the loop is told to re-run the shrunk front half. A
// cancellation nobody asked for is an external actor and counts as a
// normal failure.
func (r *runner) terminalStatus(node, id string, st *service.JobStatus, fl *flight) (*service.Result, error, bool) {
	switch st.State {
	case service.StateDone:
		if st.Result == nil {
			return nil, fmt.Errorf("cluster: %s: job %s done without result", node, id), true
		}
		return st.Result, nil, true
	case service.StateFailed:
		return nil, fmt.Errorf("cluster: %s: job %s failed: %s", node, id, st.Error), true
	case service.StateCancelled:
		if r.stopCtx.Err() != nil {
			return nil, errStopped, true
		}
		if fl != nil {
			if fl.lost.Load() {
				return nil, errLost, true
			}
			if fl.evicted.Load() {
				return nil, errEvicted, true
			}
			if intent, ok := fl.takeShrink(); ok {
				r.commitSplit(intent)
				return nil, &shrunkError{front: intent.front}, true
			}
		}
		return nil, fmt.Errorf("cluster: %s: job %s cancelled externally", node, id), true
	}
	return nil, nil, false
}

// jobStatus GETs one status snapshot. The request rides the stop context
// so a short-circuit aborts even a poll blocked on an unresponsive node;
// the poll loop's stop branch then cancels the job and exits.
func (r *runner) jobStatus(node, id string) (*service.JobStatus, error) {
	httpReq, err := http.NewRequestWithContext(r.stopCtx, http.MethodGet, node+"/v2/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.c.client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	payload, status, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", status, errorMessage(payload))
	}
	var st service.JobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// cancelJob best-effort cancels an in-flight job after a short-circuit.
// The request deliberately uses a fresh context: the stop context that
// triggered the cancel is already done.
func (r *runner) cancelJob(node, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodDelete, node+"/v2/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := r.c.client.Do(httpReq)
	if err != nil {
		return
	}
	_, status, _ := readBody(resp)
	if status == http.StatusOK {
		r.noteCancelled()
	}
}

// report merges the completed shard results into the final verdicts.
func (r *runner) report(nodeOrder []string) (*Report, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.results) == 0 {
		if r.fatal != nil {
			return nil, r.fatal
		}
		return nil, errors.New("cluster: no shard completed")
	}
	offsets := make([]int64, 0, len(r.results))
	for off := range r.results {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	soundParts := make([]check.Verdict, 0, len(offsets))
	var maxParts []check.Verdict
	for _, off := range offsets {
		res := r.results[off]
		soundParts = append(soundParts, soundnessVerdict(res))
		if res.Maximal != nil {
			maxParts = append(maxParts, maximalityVerdict(res))
		}
	}
	rep := &Report{
		Complete:   r.outstanding == 0,
		Shards:     r.outstanding + len(r.results),
		Completed:  len(r.results),
		Retries:    r.retries,
		Cancelled:  r.cancelled,
		Stolen:     r.stolen,
		Speculated: r.speculated,
	}
	if r.c.elastic {
		rep.Joined, rep.Left = r.c.registry.counts()
	}
	merged, err := check.Merge(soundParts...)
	if err != nil {
		return nil, err
	}
	rep.Soundness = merged
	if len(maxParts) > 0 {
		mv, err := check.Merge(maxParts...)
		if err != nil {
			return nil, err
		}
		// On full coverage the merged verdict is exact. On partial
		// coverage (a soundness short-circuit) only some negatives are
		// definitive: a leak (Q varied within seen data; passing is wrong
		// either way) or an alter (m passed disagreeing with Q at the same
		// input — a leak instead if the class turns out varying, non-
		// maximal either way). An affirmative, or a withhold verdict —
		// withholding is *correct* if a missing shard flips the class to
		// varying — cannot be settled without every shard, so those are
		// dropped rather than rendered as whole-domain claims.
		if rep.Complete || (!mv.Maximal && mv.Reason != core.ReasonWithholds) {
			rep.Maximality = &mv
		}
	}
	if r.c.elastic {
		// Membership order, with each node's final health state; a
		// retired node reads as dead whether it failed or left politely.
		for _, m := range r.c.registry.Members() {
			nr := r.nodeRep(m.URL)
			nr.State = m.State
			if m.State == NodeRetired {
				nr.Dead = true
			}
			rep.Nodes = append(rep.Nodes, *nr)
		}
	} else {
		for _, n := range nodeOrder {
			rep.Nodes = append(rep.Nodes, *r.nodes[n])
		}
	}
	return rep, nil
}

// soundnessVerdict reconstructs the shard's partial soundness verdict from
// the wire result.
func soundnessVerdict(res *service.Result) check.Verdict {
	return check.Verdict{
		Kind:        check.Soundness,
		Mechanism:   res.Mechanism,
		Policy:      res.Policy,
		Observation: res.Observation,
		Checked:     res.Checked,
		Sound:       res.Sound,
		WitnessA:    res.WitnessA,
		WitnessB:    res.WitnessB,
		ObsA:        res.ObsA,
		ObsB:        res.ObsB,
		Shard:       check.Shard{Offset: res.Offset, Count: res.Count},
		Views:       res.Views,
	}
}

// maximalityVerdict reconstructs the shard's partial maximality verdict.
// The shard sweeps the same index range for both kinds, so its Checked
// count carries over.
func maximalityVerdict(res *service.Result) check.Verdict {
	return check.Verdict{
		Kind:        check.Maximality,
		Mechanism:   res.Mechanism,
		Program:     res.Program,
		Policy:      res.Policy,
		Observation: res.Observation,
		Checked:     res.Checked,
		Maximal:     *res.Maximal,
		Witness:     res.MaximalWitness,
		Reason:      res.MaximalReason,
		Shard:       check.Shard{Offset: res.Offset, Count: res.Count},
		Classes:     res.Classes,
	}
}

// maxResponseBytes bounds one node response. Evidence tables scale with
// the class count, which a permissive policy makes the shard span, so the
// bound is generous — and overflowing it is reported as its own error
// (the shard is misconfigured, not the node dead).
const maxResponseBytes = 64 << 20

// errResponseTooLarge marks a node response over maxResponseBytes:
// retrying it (on this node or another) would produce the same payload,
// so it is escalated as fatal rather than counted as node death.
var errResponseTooLarge = errors.New("cluster: node response exceeds 64MiB (shard evidence too large; use more shards or a narrower policy)")

// readBody drains and closes an HTTP response, bounding the read.
func readBody(resp *http.Response) ([]byte, int, error) {
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(payload) > maxResponseBytes {
		return nil, resp.StatusCode, errResponseTooLarge
	}
	return payload, resp.StatusCode, nil
}

// errorMessage extracts the service's error field, falling back to the
// raw payload.
func errorMessage(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(payload))
}
