// Package cluster distributes one exhaustive check across a fleet of
// `spm serve` nodes: the coordinator splits the domain's mixed-radix index
// space [0, Size) into contiguous shards, dispatches each shard to a node
// over the v2 HTTP surface (POST /v2/check with the shard's offset/count),
// and folds the partial results back into the exact whole-domain verdict
// with check.Merge — the per-node generalisation of the per-worker merge
// the in-process parallel checkers already do.
//
// The loop is closed against failure: a node that refuses a shard (503),
// dies mid-sweep, or fails the job has the shard re-dispatched to another
// node (bounded by Config.Retries per shard), and because every shard's
// result carries its cross-shard evidence tables the re-run verdict is
// still exact. A shard that comes back with a definitive counterexample —
// unsound, or a locally-decidable maximality leak — short-circuits the
// rest: outstanding jobs are cancelled via DELETE /v2/jobs/{id} (the
// service stops them within one sweep chunk) and pending shards are never
// dispatched.
//
// Work placement is join-the-shortest-queue in the degenerate per-node
// form: each node runs one shard at a time and pulls the next pending
// shard the moment it finishes, so faster nodes sweep more of the index
// space — the same dynamic balance the JSQ scheduler gives jobs inside one
// node.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/service"
	"spm/internal/sweep"
)

// Defaults for Config's zero values.
const (
	// DefaultShardsPerNode is the shard fan-out per node when
	// Config.Shards is unset: more shards than nodes, so a dead node
	// forfeits only its in-flight shard and the survivors absorb the rest
	// one shard at a time.
	DefaultShardsPerNode = 4
	// DefaultRetries bounds how many times one shard may be re-dispatched
	// after failures before the whole check fails.
	DefaultRetries = 3
	// DefaultPoll is the job-status poll cadence.
	DefaultPoll = 50 * time.Millisecond
)

// maxPollFailures is how many consecutive status-poll failures mark a node
// dead mid-job.
const maxPollFailures = 5

// busySubmitRetries bounds the in-place backoff against a node answering
// 503 before the shard is handed back to the pool (which counts one retry
// against its budget).
const busySubmitRetries = 8

// Config tunes a Coordinator.
type Config struct {
	// Nodes lists the worker base URLs, e.g. "http://127.0.0.1:8135".
	// Required.
	Nodes []string
	// Shards is the number of contiguous index-space shards; ≤ 0 means
	// DefaultShardsPerNode × len(Nodes), clamped to the domain size.
	Shards int
	// Retries is the per-shard re-dispatch budget after node failures;
	// ≤ 0 means DefaultRetries.
	Retries int
	// Poll is the job-status poll cadence; ≤ 0 means DefaultPoll.
	Poll time.Duration
	// Client is the HTTP client; nil means a client with a 30s timeout.
	Client *http.Client
}

// Coordinator fans one check out over a fleet of spm serve nodes.
type Coordinator struct {
	cfg    Config
	client *http.Client
}

// New validates cfg and builds a Coordinator. Duplicate node URLs are
// collapsed: the runner's per-node accounting (live-node count, failure
// tallies) keys on the URL, so one physical node must appear once.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: no nodes")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	deduped := make([]string, 0, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		if n == "" {
			return nil, errors.New("cluster: empty node URL")
		}
		if !seen[n] {
			seen[n] = true
			deduped = append(deduped, n)
		}
	}
	cfg.Nodes = deduped
	if cfg.Retries <= 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultPoll
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Coordinator{cfg: cfg, client: client}, nil
}

// NodeReport is one node's row in a Report.
type NodeReport struct {
	URL string `json:"url"`
	// Shards counts shards this node completed; Failures counts submit,
	// poll, and job failures observed against it.
	Shards   int `json:"shards"`
	Failures int `json:"failures"`
	// Dead marks a node the coordinator stopped using mid-run.
	Dead bool `json:"dead,omitempty"`
}

// Report is the outcome of one distributed check.
type Report struct {
	// Soundness is the merged whole-domain soundness verdict. When the
	// run short-circuited it covers exactly the shards that completed
	// (Complete false, Checked partial) — still exact for every tuple it
	// counts.
	Soundness check.Verdict
	// Maximality is the merged maximality verdict, when requested. After
	// a short-circuited run it is present only when the seen shards are
	// definitive (a leak or alter deviation); affirmative and withhold
	// verdicts need every shard's class table, so incomplete ones are
	// withheld as nil.
	Maximality *check.Verdict
	// Complete reports that every shard finished: Checked totals equal
	// the whole index space. A definitive counterexample short-circuits
	// the run, leaving Complete false with the counterexample in hand.
	Complete bool
	// Shards is the fan-out; Completed how many finished; Retries how
	// many re-dispatches failures forced; Cancelled how many in-flight
	// jobs the short-circuit cancelled on their nodes.
	Shards    int
	Completed int
	Retries   int
	Cancelled int
	Nodes     []NodeReport
	Elapsed   time.Duration
}

// String summarises the distributed run: the merged verdict(s) first —
// rendered exactly as a single-node verdict renders — then one line of
// cluster accounting.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Soundness.String())
	if r.Maximality != nil {
		b.WriteString("\n")
		b.WriteString(r.Maximality.String())
	}
	fmt.Fprintf(&b, "\ncluster: %d/%d shards on %d nodes (%d retries, %d cancelled) in %v",
		r.Completed, r.Shards, len(r.Nodes), r.Retries, r.Cancelled, r.Elapsed.Round(time.Millisecond))
	return b.String()
}

// errStopped marks a shard run abandoned because the coordinator
// short-circuited; errNodeDown marks the node unusable.
var (
	errStopped  = errors.New("cluster: run stopped")
	errNodeDown = errors.New("cluster: node down")
	errBusy     = errors.New("cluster: node busy")
)

// fatalError wraps a node response that retrying elsewhere cannot fix —
// the service rejected the submission as invalid.
type fatalError struct{ msg string }

func (e *fatalError) Error() string { return e.msg }

// Check runs req — a whole-domain submission in the service's wire format
// — across the fleet and returns the merged report. The request must not
// itself be sharded; the coordinator owns the split. Cancelling ctx
// cancels every in-flight job and returns ctx's error.
func (c *Coordinator) Check(ctx context.Context, req service.CheckRequest) (*Report, error) {
	if req.Sharded() {
		return nil, errors.New("cluster: request already sharded; the coordinator owns the split")
	}
	prog, err := flowchart.Parse(req.Program)
	if err != nil {
		return nil, fmt.Errorf("cluster: program: %w", err)
	}
	values := req.Domain
	if len(values) == 0 {
		values = []int64{0, 1, 2}
	}
	req.Domain = values
	size := sweep.Size(core.Grid(prog.Arity(), values...))
	if size == math.MaxInt {
		return nil, errors.New("cluster: domain product overflows the index space")
	}
	shards := splitIndexSpace(size, c.shardCount(size))

	start := time.Now()
	r := newRunner(ctx, c, req, shards)
	var wg sync.WaitGroup
	for _, node := range c.cfg.Nodes {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			r.nodeLoop(node)
		}(node)
	}
	wg.Wait()
	r.stop() // release the stop context in every exit path

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.fatal != nil && !r.definitive {
		return nil, r.fatal
	}
	rep, err := r.report(c.cfg.Nodes)
	if err != nil {
		return nil, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// shardCount resolves the fan-out for a domain of the given size.
func (c *Coordinator) shardCount(size int) int {
	n := c.cfg.Shards
	if n <= 0 {
		n = DefaultShardsPerNode * len(c.cfg.Nodes)
	}
	if size > 0 && n > size {
		n = size
	}
	if n < 1 {
		n = 1
	}
	return n
}

// splitIndexSpace cuts [0, size) into n contiguous near-equal shards.
func splitIndexSpace(size, n int) []check.Shard {
	shards := make([]check.Shard, 0, n)
	base, rem := size/n, size%n
	offset := int64(0)
	for i := 0; i < n; i++ {
		count := int64(base)
		if i < rem {
			count++
		}
		shards = append(shards, check.Shard{Offset: offset, Count: count})
		offset += count
	}
	return shards
}

// runner is the state of one distributed check: a pool of pending shards,
// the per-shard retry ledger, and the completed results. Node goroutines
// pull shards from it; any definitive counterexample or fatal error stops
// the pool.
type runner struct {
	c   *Coordinator
	req service.CheckRequest

	ctx     context.Context
	stopCtx context.Context
	stop    context.CancelFunc

	mu          sync.Mutex
	cond        *sync.Cond
	pending     []check.Shard
	outstanding int // shards not yet completed
	attempts    map[int64]int
	results     map[int64]*service.Result
	nodes       map[string]*NodeReport
	live        int
	retries     int
	cancelled   int
	fatal       error
	definitive  bool
	stopped     bool
}

func newRunner(ctx context.Context, c *Coordinator, req service.CheckRequest, shards []check.Shard) *runner {
	stopCtx, stop := context.WithCancel(ctx)
	r := &runner{
		c:           c,
		req:         req,
		ctx:         ctx,
		stopCtx:     stopCtx,
		stop:        stop,
		pending:     append([]check.Shard(nil), shards...),
		outstanding: len(shards),
		attempts:    make(map[int64]int),
		results:     make(map[int64]*service.Result),
		nodes:       make(map[string]*NodeReport),
		live:        len(c.cfg.Nodes),
	}
	r.cond = sync.NewCond(&r.mu)
	for _, n := range c.cfg.Nodes {
		r.nodes[n] = &NodeReport{URL: n}
	}
	// Wake waiters when the caller's context dies so node loops never
	// block past cancellation.
	context.AfterFunc(stopCtx, func() {
		r.mu.Lock()
		r.stopped = true
		r.mu.Unlock()
		r.cond.Broadcast()
	})
	return r
}

// next blocks until a shard is available, every shard has completed, or
// the run stopped. The second return is false when the node should exit.
func (r *runner) next() (check.Shard, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.stopped || r.outstanding == 0 {
			return check.Shard{}, false
		}
		if len(r.pending) > 0 {
			sh := r.pending[0]
			r.pending = r.pending[1:]
			return sh, true
		}
		// Shards are all in flight on other nodes; one may yet fail and
		// come back to the pool.
		r.cond.Wait()
	}
}

// complete records a finished shard and short-circuits the pool when its
// result is a definitive counterexample.
func (r *runner) complete(node string, sh check.Shard, res *service.Result) {
	r.mu.Lock()
	r.results[sh.Offset] = res
	r.outstanding--
	r.nodes[node].Shards++
	definitive := !res.Sound || (res.Maximal != nil && !*res.Maximal)
	if definitive {
		r.definitive = true
		r.stopped = true
	}
	done := r.outstanding == 0
	r.mu.Unlock()
	if definitive {
		r.stop()
	}
	if definitive || done {
		r.cond.Broadcast()
	} else {
		r.cond.Signal()
	}
}

// requeue hands a failed shard back to the pool. A genuine failure
// charges the shard's retry budget — exhausting it is fatal for the whole
// check — while a busy refusal (charge false) does not: the node is
// healthy, its queues are just full, and bouncing the shard back to the
// pool after the submit backoff must not convert sustained load into a
// permanent failure. The caller's context bounds how long a perpetually
// busy fleet can spin.
func (r *runner) requeue(node string, sh check.Shard, cause error, charge bool) {
	r.mu.Lock()
	defer func() {
		r.mu.Unlock()
		r.cond.Broadcast()
	}()
	r.nodes[node].Failures++
	if r.stopped {
		return
	}
	if charge {
		r.attempts[sh.Offset]++
		if r.attempts[sh.Offset] > r.c.cfg.Retries {
			r.failLocked(fmt.Errorf("cluster: shard [%d,+%d) failed %d times, last on %s: %w",
				sh.Offset, sh.Count, r.attempts[sh.Offset], node, cause))
			return
		}
	}
	r.retries++
	r.pending = append(r.pending, sh)
}

// nodeDead retires a node; with no live nodes left the check fails.
func (r *runner) nodeDead(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node].Dead {
		return
	}
	r.nodes[node].Dead = true
	r.live--
	if r.live == 0 && !r.stopped {
		r.failLocked(errors.New("cluster: every node failed"))
	}
}

// failLocked records a fatal error and stops the pool. Callers hold r.mu;
// stop is safe here because context.AfterFunc runs its callback (which
// re-acquires the mutex) in its own goroutine.
func (r *runner) failLocked(err error) {
	if r.fatal == nil {
		r.fatal = err
	}
	r.stopped = true
	r.stop()
}

// noteCancelled counts an in-flight job the short-circuit cancelled.
func (r *runner) noteCancelled() {
	r.mu.Lock()
	r.cancelled++
	r.mu.Unlock()
}

// nodeLoop pulls shards and runs them on one node until the pool drains,
// the run stops, or the node dies.
func (r *runner) nodeLoop(node string) {
	for {
		sh, ok := r.next()
		if !ok {
			return
		}
		res, err := r.runShard(node, sh)
		switch {
		case err == nil:
			r.complete(node, sh, res)
		case errors.Is(err, errStopped):
			// The pool stopped while this shard was in flight; it is
			// deliberately not completed and not requeued.
			return
		case errors.Is(err, errNodeDown):
			r.requeue(node, sh, err, true)
			r.nodeDead(node)
			return
		case errors.Is(err, errBusy):
			r.requeue(node, sh, err, false)
		default:
			var fe *fatalError
			if errors.As(err, &fe) {
				r.mu.Lock()
				r.failLocked(fmt.Errorf("cluster: node %s rejected shard [%d,+%d): %s", node, sh.Offset, sh.Count, fe.msg))
				r.mu.Unlock()
				r.cond.Broadcast()
				return
			}
			r.requeue(node, sh, err, true)
		}
	}
}

// runShard executes one shard on one node: submit, poll to a terminal
// state, and return the result. On coordinator stop the in-flight job is
// cancelled server-side (DELETE /v2/jobs/{id}) before returning.
func (r *runner) runShard(node string, sh check.Shard) (*service.Result, error) {
	req := r.req
	req.Offset = sh.Offset
	req.Count = sh.Count
	// Every shard of the run submits the same program text, so after the
	// first shard the node's content-addressed compile cache answers and
	// the job goes straight to the sweep.
	id, err := r.submit(node, req)
	if err != nil {
		return nil, err
	}
	return r.poll(node, id)
}

// submit POSTs the shard to the node, absorbing transient 503s with a
// short backoff before giving the shard back to the pool.
func (r *runner) submit(node string, req service.CheckRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", &fatalError{msg: err.Error()}
	}
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		if r.stopCtx.Err() != nil {
			return "", errStopped
		}
		httpReq, err := http.NewRequestWithContext(r.stopCtx, http.MethodPost, node+"/v2/check", bytes.NewReader(body))
		if err != nil {
			return "", &fatalError{msg: err.Error()}
		}
		httpReq.Header.Set("Content-Type", "application/json")
		resp, err := r.c.client.Do(httpReq)
		if err != nil {
			if r.stopCtx.Err() != nil {
				return "", errStopped
			}
			return "", fmt.Errorf("%w: %s: %v", errNodeDown, node, err)
		}
		payload, status, err := readBody(resp)
		if errors.Is(err, errResponseTooLarge) {
			return "", &fatalError{msg: err.Error()}
		}
		if err != nil {
			return "", fmt.Errorf("%w: %s: %v", errNodeDown, node, err)
		}
		switch {
		case status == http.StatusAccepted:
			var sub service.SubmitResponse
			if err := json.Unmarshal(payload, &sub); err != nil || sub.ID == "" {
				return "", fmt.Errorf("%w: %s: bad submit response", errNodeDown, node)
			}
			return sub.ID, nil
		case status == http.StatusServiceUnavailable:
			if attempt >= busySubmitRetries {
				return "", fmt.Errorf("%w: %s", errBusy, node)
			}
			select {
			case <-r.stopCtx.Done():
				return "", errStopped
			case <-time.After(backoff):
			}
			if backoff < time.Second {
				backoff *= 2
			}
		case status == http.StatusBadRequest || status == http.StatusRequestEntityTooLarge:
			return "", &fatalError{msg: fmt.Sprintf("%d: %s", status, errorMessage(payload))}
		default:
			return "", fmt.Errorf("%w: %s: unexpected status %d", errNodeDown, node, status)
		}
	}
}

// poll watches the job until it reaches a terminal state, checking
// immediately (small shards on a warm compile cache finish faster than a
// poll interval) and then once per interval. A coordinator stop cancels
// the job server-side; repeated poll failures mark the node dead.
func (r *runner) poll(node, id string) (*service.Result, error) {
	failures := 0
	for {
		st, err := r.jobStatus(node, id)
		switch {
		case errors.Is(err, errResponseTooLarge):
			// Any node would produce the same oversized result for this
			// shard; retrying elsewhere cannot fix it.
			return nil, &fatalError{msg: err.Error()}
		case err != nil && r.stopCtx.Err() != nil:
			r.cancelJob(node, id)
			return nil, errStopped
		case err != nil:
			failures++
			if failures >= maxPollFailures {
				return nil, fmt.Errorf("%w: %s: %v", errNodeDown, node, err)
			}
		default:
			failures = 0
			switch st.State {
			case service.StateDone:
				if st.Result == nil {
					return nil, fmt.Errorf("cluster: %s: job %s done without result", node, id)
				}
				return st.Result, nil
			case service.StateFailed:
				return nil, fmt.Errorf("cluster: %s: job %s failed: %s", node, id, st.Error)
			case service.StateCancelled:
				if r.stopCtx.Err() != nil {
					return nil, errStopped
				}
				return nil, fmt.Errorf("cluster: %s: job %s cancelled externally", node, id)
			}
		}
		select {
		case <-r.stopCtx.Done():
			r.cancelJob(node, id)
			return nil, errStopped
		case <-time.After(r.c.cfg.Poll):
		}
	}
}

// jobStatus GETs one status snapshot. The request rides the stop context
// so a short-circuit aborts even a poll blocked on an unresponsive node;
// the poll loop's stop branch then cancels the job and exits.
func (r *runner) jobStatus(node, id string) (*service.JobStatus, error) {
	httpReq, err := http.NewRequestWithContext(r.stopCtx, http.MethodGet, node+"/v2/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.c.client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	payload, status, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", status, errorMessage(payload))
	}
	var st service.JobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// cancelJob best-effort cancels an in-flight job after a short-circuit.
// The request deliberately uses a fresh context: the stop context that
// triggered the cancel is already done.
func (r *runner) cancelJob(node, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodDelete, node+"/v2/jobs/"+id, nil)
	if err != nil {
		return
	}
	resp, err := r.c.client.Do(httpReq)
	if err != nil {
		return
	}
	_, status, _ := readBody(resp)
	if status == http.StatusOK {
		r.noteCancelled()
	}
}

// report merges the completed shard results into the final verdicts.
func (r *runner) report(nodeOrder []string) (*Report, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.results) == 0 {
		if r.fatal != nil {
			return nil, r.fatal
		}
		return nil, errors.New("cluster: no shard completed")
	}
	offsets := make([]int64, 0, len(r.results))
	for off := range r.results {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	soundParts := make([]check.Verdict, 0, len(offsets))
	var maxParts []check.Verdict
	for _, off := range offsets {
		res := r.results[off]
		soundParts = append(soundParts, soundnessVerdict(res))
		if res.Maximal != nil {
			maxParts = append(maxParts, maximalityVerdict(res))
		}
	}
	rep := &Report{
		Complete:  r.outstanding == 0,
		Shards:    r.outstanding + len(r.results),
		Completed: len(r.results),
		Retries:   r.retries,
		Cancelled: r.cancelled,
	}
	merged, err := check.Merge(soundParts...)
	if err != nil {
		return nil, err
	}
	rep.Soundness = merged
	if len(maxParts) > 0 {
		mv, err := check.Merge(maxParts...)
		if err != nil {
			return nil, err
		}
		// On full coverage the merged verdict is exact. On partial
		// coverage (a soundness short-circuit) only some negatives are
		// definitive: a leak (Q varied within seen data; passing is wrong
		// either way) or an alter (m passed disagreeing with Q at the same
		// input — a leak instead if the class turns out varying, non-
		// maximal either way). An affirmative, or a withhold verdict —
		// withholding is *correct* if a missing shard flips the class to
		// varying — cannot be settled without every shard, so those are
		// dropped rather than rendered as whole-domain claims.
		if rep.Complete || (!mv.Maximal && mv.Reason != core.ReasonWithholds) {
			rep.Maximality = &mv
		}
	}
	for _, n := range nodeOrder {
		rep.Nodes = append(rep.Nodes, *r.nodes[n])
	}
	return rep, nil
}

// soundnessVerdict reconstructs the shard's partial soundness verdict from
// the wire result.
func soundnessVerdict(res *service.Result) check.Verdict {
	return check.Verdict{
		Kind:        check.Soundness,
		Mechanism:   res.Mechanism,
		Policy:      res.Policy,
		Observation: res.Observation,
		Checked:     res.Checked,
		Sound:       res.Sound,
		WitnessA:    res.WitnessA,
		WitnessB:    res.WitnessB,
		ObsA:        res.ObsA,
		ObsB:        res.ObsB,
		Shard:       check.Shard{Offset: res.Offset, Count: res.Count},
		Views:       res.Views,
	}
}

// maximalityVerdict reconstructs the shard's partial maximality verdict.
// The shard sweeps the same index range for both kinds, so its Checked
// count carries over.
func maximalityVerdict(res *service.Result) check.Verdict {
	return check.Verdict{
		Kind:        check.Maximality,
		Mechanism:   res.Mechanism,
		Program:     res.Program,
		Policy:      res.Policy,
		Observation: res.Observation,
		Checked:     res.Checked,
		Maximal:     *res.Maximal,
		Witness:     res.MaximalWitness,
		Reason:      res.MaximalReason,
		Shard:       check.Shard{Offset: res.Offset, Count: res.Count},
		Classes:     res.Classes,
	}
}

// maxResponseBytes bounds one node response. Evidence tables scale with
// the class count, which a permissive policy makes the shard span, so the
// bound is generous — and overflowing it is reported as its own error
// (the shard is misconfigured, not the node dead).
const maxResponseBytes = 64 << 20

// errResponseTooLarge marks a node response over maxResponseBytes:
// retrying it (on this node or another) would produce the same payload,
// so it is escalated as fatal rather than counted as node death.
var errResponseTooLarge = errors.New("cluster: node response exceeds 64MiB (shard evidence too large; use more shards or a narrower policy)")

// readBody drains and closes an HTTP response, bounding the read.
func readBody(resp *http.Response) ([]byte, int, error) {
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(payload) > maxResponseBytes {
		return nil, resp.StatusCode, errResponseTooLarge
	}
	return payload, resp.StatusCode, nil
}

// errorMessage extracts the service's error field, falling back to the
// raw payload.
func errorMessage(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(payload))
}
