package paging

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 16); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(64, 0); err == nil {
		t.Error("zero page size accepted")
	}
	m, err := New(33, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Pages() != 3 {
		t.Errorf("Pages = %d, want 3 (rounded up)", m.Pages())
	}
	if m.PageSize() != 16 {
		t.Errorf("PageSize = %d", m.PageSize())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0,0) did not panic")
		}
	}()
	MustNew(0, 0)
}

func TestFaultRecording(t *testing.T) {
	m := MustNew(64, 16)
	if _, err := m.Read(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(20); err != nil {
		t.Fatal(err)
	}
	faults := m.Faults()
	if len(faults) != 2 || faults[0] != 0 || faults[1] != 1 {
		t.Errorf("faults = %v, want [0 1]", faults)
	}
	if !m.Faulted(0) || !m.Faulted(1) || m.Faulted(2) {
		t.Error("Faulted queries wrong")
	}
}

func TestEvictAllResets(t *testing.T) {
	m := MustNew(64, 16)
	if _, err := m.Read(0); err != nil {
		t.Fatal(err)
	}
	m.EvictAll()
	if len(m.Faults()) != 0 {
		t.Error("fault trace not cleared")
	}
	if _, err := m.Read(0); err != nil {
		t.Fatal(err)
	}
	if len(m.Faults()) != 1 {
		t.Error("page should fault again after eviction")
	}
}

func TestWritesDoNotFault(t *testing.T) {
	m := MustNew(64, 16)
	if err := m.Write(40, 'x'); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteString(0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if len(m.Faults()) != 0 {
		t.Error("writes must not fault")
	}
	b, err := m.Read(40)
	if err != nil || b != 'x' {
		t.Errorf("Read(40) = %c, %v", b, err)
	}
}

func TestBoundsChecks(t *testing.T) {
	m := MustNew(16, 16)
	if _, err := m.Read(-1); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := m.Read(16); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := m.Write(16, 0); err == nil {
		t.Error("out-of-range write accepted")
	}
	if err := m.WriteString(14, []byte("long")); err == nil {
		t.Error("overflowing WriteString accepted")
	}
}

func TestPageOf(t *testing.T) {
	m := MustNew(64, 16)
	cases := map[int]int{0: 0, 15: 0, 16: 1, 47: 2, 48: 3}
	for addr, want := range cases {
		if got := m.PageOf(addr); got != want {
			t.Errorf("PageOf(%d) = %d, want %d", addr, got, want)
		}
	}
}
