// Package paging is a toy demand-paged memory with an observable
// page-fault trace. It exists to reproduce the "now classic" attack of
// Section 2 of Jones & Lipton: password checking is not a protection
// mechanism, and when the *page movement* caused by the check is
// observable — an observable the system designer forgot — the work factor
// of guessing a k-character password over an n-character alphabet drops
// from n^k to n·k.
//
// The memory is deliberately minimal: a flat byte array divided into
// fixed-size pages, a residency set, and a fault log. Reading a byte on a
// non-resident page records a fault and makes the page resident. The
// fault log is the attacker's observable, standing in for the drum/core
// traffic of a 1970s time-sharing system.
package paging

import (
	"fmt"
)

// Memory is a paged byte memory with fault accounting.
type Memory struct {
	pageSize int
	data     []byte
	resident []bool
	faults   []int // page numbers, in fault order
}

// New builds a memory of the given total size and page size.
func New(size, pageSize int) (*Memory, error) {
	if size <= 0 || pageSize <= 0 {
		return nil, fmt.Errorf("paging: size %d and pageSize %d must be positive", size, pageSize)
	}
	pages := (size + pageSize - 1) / pageSize
	return &Memory{
		pageSize: pageSize,
		data:     make([]byte, size),
		resident: make([]bool, pages),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(size, pageSize int) *Memory {
	m, err := New(size, pageSize)
	if err != nil {
		panic(err)
	}
	return m
}

// PageSize returns the page size in bytes.
func (m *Memory) PageSize() int { return m.pageSize }

// Pages returns the number of pages.
func (m *Memory) Pages() int { return len(m.resident) }

// PageOf returns the page number containing addr.
func (m *Memory) PageOf(addr int) int { return addr / m.pageSize }

// Write stores a byte without touching residency or faults (the attacker
// prepares buffers "for free"; only the victim's reads are observable).
func (m *Memory) Write(addr int, b byte) error {
	if addr < 0 || addr >= len(m.data) {
		return fmt.Errorf("paging: write at %d out of range [0,%d)", addr, len(m.data))
	}
	m.data[addr] = b
	return nil
}

// WriteString stores a byte string starting at addr.
func (m *Memory) WriteString(addr int, s []byte) error {
	for i, b := range s {
		if err := m.Write(addr+i, b); err != nil {
			return err
		}
	}
	return nil
}

// Read loads a byte, recording a page fault if the page is not resident
// and making it resident.
func (m *Memory) Read(addr int) (byte, error) {
	if addr < 0 || addr >= len(m.data) {
		return 0, fmt.Errorf("paging: read at %d out of range [0,%d)", addr, len(m.data))
	}
	page := m.PageOf(addr)
	if !m.resident[page] {
		m.resident[page] = true
		m.faults = append(m.faults, page)
	}
	return m.data[addr], nil
}

// Faults returns the fault trace since the last EvictAll.
func (m *Memory) Faults() []int {
	return append([]int(nil), m.faults...)
}

// Faulted reports whether the given page appears in the fault trace.
func (m *Memory) Faulted(page int) bool {
	for _, p := range m.faults {
		if p == page {
			return true
		}
	}
	return false
}

// EvictAll pages everything out and clears the fault trace; the attacker
// does this between probes (e.g. by thrashing the machine).
func (m *Memory) EvictAll() {
	for i := range m.resident {
		m.resident[i] = false
	}
	m.faults = m.faults[:0]
}
