package flowchart_test

import (
	"errors"
	"math/rand"
	"testing"

	"spm/internal/flowchart"
	"spm/internal/progen"
)

// TestSnapshotDifferentialProgen sweeps randomized total programs over a
// small grid in odometer order and checks that the prefix-memoized path —
// RunSnapshot once per row, RunFromSnapshot for each further innermost
// value — agrees tuple-for-tuple with a fresh RunReuse. progen programs
// re-read inputs, read them under data-dependent branches, and shadow
// them with assignments, so this is the adversarial half of the
// snapshot-validity story; the handcrafted edge cases live in
// snapshot_test.go.
func TestSnapshotDifferentialProgen(t *testing.T) {
	axis := []int64{-2, -1, 0, 1, 2}
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		arity := 2 + int(seed)%2
		p := progen.Generate(r, progen.DefaultConfig(arity))
		c, err := p.Compile()
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}
		values := make([][]int64, arity)
		for i := range values {
			values[i] = axis
		}
		regs := make([]int64, c.Slots())
		fregs := make([]int64, c.Slots())
		snap := c.NewSnapshot()
		idx := make([]int, arity)
		in := make([]int64, arity)
		for i := range in {
			in[i] = axis[0]
		}
		innerOnly := false
		for {
			wantRes, wantErr := c.RunReuse(fregs, in, flowchart.DefaultMaxSteps)
			var gotRes flowchart.Result
			var gotErr error
			if innerOnly && snap.Valid() {
				gotRes, gotErr = c.RunFromSnapshot(regs, snap, in[arity-1], flowchart.DefaultMaxSteps)
				if errors.Is(gotErr, flowchart.ErrNoSnapshot) {
					gotRes, gotErr = c.RunSnapshot(regs, in, flowchart.DefaultMaxSteps, snap)
				}
			} else {
				gotRes, gotErr = c.RunSnapshot(regs, in, flowchart.DefaultMaxSteps, snap)
			}
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("seed %d at %v: err = %v, fresh err = %v", seed, in, gotErr, wantErr)
			}
			if gotRes != wantRes {
				t.Fatalf("seed %d at %v: result = %+v, fresh = %+v\nprogram:\n%s",
					seed, in, gotRes, wantRes, flowchart.Print(p))
			}
			innerOnly = false
			done := true
			for i := arity - 1; i >= 0; i-- {
				idx[i]++
				if idx[i] < len(axis) {
					in[i] = axis[idx[i]]
					innerOnly = i == arity-1
					done = false
					break
				}
				idx[i] = 0
				in[i] = axis[0]
			}
			if done {
				break
			}
		}
	}
}
