package flowchart

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstAndVar(t *testing.T) {
	env := Env{"x": 42}
	if got := C(7).Eval(env); got != 7 {
		t.Errorf("Const eval = %d", got)
	}
	if got := V("x").Eval(env); got != 42 {
		t.Errorf("Var eval = %d", got)
	}
	if got := V("missing").Eval(env); got != 0 {
		t.Errorf("unset Var eval = %d, want 0", got)
	}
}

func TestBinArithmetic(t *testing.T) {
	env := Env{"a": 10, "b": 3}
	cases := []struct {
		e    Expr
		want int64
	}{
		{Add(V("a"), V("b")), 13},
		{Sub(V("a"), V("b")), 7},
		{Mul(V("a"), V("b")), 30},
		{B(OpDiv, V("a"), V("b")), 3},
		{B(OpMod, V("a"), V("b")), 1},
		{B(OpAnd, C(0b1100), C(0b1010)), 0b1000},
		{Or(C(0b1100), C(0b1010)), 0b1110},
		{B(OpXor, C(0b1100), C(0b1010)), 0b0110},
		{B(OpAndNot, C(0b1100), C(0b1010)), 0b0100},
	}
	for _, tc := range cases {
		if got := tc.e.Eval(env); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.e, got, tc.want)
		}
	}
}

func TestTotalDivision(t *testing.T) {
	env := Env{}
	if got := B(OpDiv, C(5), C(0)).Eval(env); got != 0 {
		t.Errorf("5/0 = %d, want 0 (total semantics)", got)
	}
	if got := B(OpMod, C(5), C(0)).Eval(env); got != 0 {
		t.Errorf("5%%0 = %d, want 0 (total semantics)", got)
	}
	if got := B(OpDiv, C(math.MinInt64), C(-1)).Eval(env); got != math.MinInt64 {
		t.Errorf("MinInt64/-1 = %d, want MinInt64 (wrapping)", got)
	}
	if got := B(OpMod, C(math.MinInt64), C(-1)).Eval(env); got != 0 {
		t.Errorf("MinInt64%%-1 = %d, want 0", got)
	}
}

func TestTotalDivisionNeverPanics(t *testing.T) {
	prop := func(a, b int64) bool {
		B(OpDiv, C(a), C(b)).Eval(nil)
		B(OpMod, C(a), C(b)).Eval(nil)
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestUnary(t *testing.T) {
	env := Env{"x": 5}
	if got := (&Neg{V("x")}).Eval(env); got != -5 {
		t.Errorf("-x = %d", got)
	}
	if got := (&BitNot{C(0)}).Eval(env); got != -1 {
		t.Errorf("^0 = %d", got)
	}
}

func TestCondEvaluatesBothArms(t *testing.T) {
	env := Env{"x": 1}
	e := Ite(Eq(V("x"), C(1)), C(10), B(OpDiv, C(1), C(0)))
	if got := e.Eval(env); got != 10 {
		t.Errorf("ite = %d, want 10", got)
	}
	// The untaken arm is still evaluated (constant-time select); total
	// division means this cannot fault.
	e2 := Ite(Ne(V("x"), C(1)), C(10), C(20))
	if got := e2.Eval(env); got != 20 {
		t.Errorf("ite false arm = %d, want 20", got)
	}
}

func TestComparisons(t *testing.T) {
	env := Env{"a": 1, "b": 2}
	cases := []struct {
		p    Pred
		want bool
	}{
		{Eq(V("a"), V("b")), false},
		{Ne(V("a"), V("b")), true},
		{Lt(V("a"), V("b")), true},
		{Le(V("a"), V("a")), true},
		{Gt(V("a"), V("b")), false},
		{Ge(V("b"), V("a")), true},
	}
	for _, tc := range cases {
		if got := tc.p.Eval(env); got != tc.want {
			t.Errorf("%s = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBoolOps(t *testing.T) {
	env := Env{}
	tr, fa := BoolConst(true), BoolConst(false)
	if (&AndP{tr, fa}).Eval(env) {
		t.Error("true && false")
	}
	if !(&OrP{tr, fa}).Eval(env) {
		t.Error("true || false")
	}
	if (&Not{tr}).Eval(env) {
		t.Error("!true")
	}
	if got := tr.String(); got != "true" {
		t.Errorf("true.String() = %q", got)
	}
	if got := fa.String(); got != "false" {
		t.Errorf("false.String() = %q", got)
	}
}

func TestVarsCollection(t *testing.T) {
	e := Add(Mul(V("b"), V("a")), Ite(Eq(V("c"), C(0)), V("d"), C(1)))
	got := Vars(e)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestExprStringPrecedence(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Add(V("a"), Mul(V("b"), V("c"))), "a + b * c"},
		{Mul(Add(V("a"), V("b")), V("c")), "(a + b) * c"},
		{Sub(V("a"), Sub(V("b"), V("c"))), "a - (b - c)"},
		{Sub(Sub(V("a"), V("b")), V("c")), "a - b - c"},
		{&Neg{Add(V("a"), V("b"))}, "-(a + b)"},
		{&BitNot{V("a")}, "^a"},
		{Or(V("a"), B(OpAnd, V("b"), V("c"))), "a | b & c"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestPredStringPrecedence(t *testing.T) {
	p := &OrP{&AndP{Eq(V("a"), C(0)), Ne(V("b"), C(1))}, Lt(V("c"), C(2))}
	want := "a == 0 && b != 1 || c < 2"
	if got := p.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	q := &AndP{&OrP{Eq(V("a"), C(0)), Ne(V("b"), C(1))}, Lt(V("c"), C(2))}
	want = "(a == 0 || b != 1) && c < 2"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCallExpr(t *testing.T) {
	f := &Func{Name: "double", Arity: 1, Fn: func(a []int64) int64 { return 2 * a[0] }}
	call := &Call{Name: "double", Args: []Expr{V("x")}, Resolved: f}
	if got := call.Eval(Env{"x": 21}); got != 42 {
		t.Errorf("double(21) = %d", got)
	}
	if got := call.String(); got != "double(x)" {
		t.Errorf("call.String() = %q", got)
	}
	// Unresolved calls evaluate to 0 (defensive total semantics).
	raw := &Call{Name: "nope"}
	if got := raw.Eval(Env{}); got != 0 {
		t.Errorf("unresolved call = %d, want 0", got)
	}
}

func TestEnvCloneIndependent(t *testing.T) {
	e := Env{"x": 1}
	c := e.Clone()
	c.Set("x", 2)
	if e.Get("x") != 1 {
		t.Error("Clone is not independent")
	}
}
