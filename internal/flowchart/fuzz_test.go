package flowchart

import (
	"errors"
	"testing"
)

// fuzzSeeds is the shared program corpus both fuzz targets start from.
var fuzzSeeds = []string{
	progE3,
	"inputs x\n y := x\n halt\n",
	"inputs a b\n if a == b goto T else F\nT: halt\nF: violation \"no\"\n",
	"program p\ninputs x\noutput z\n z := ite(x > 0, 1, -1)\n halt\n",
	"inputs x\n y := x | 3 &^ 1 ^ 2 % 4 / 5 * 6 - 7 + 8\n halt\n",
	"inputs x\n if !(x == 0) && true || false goto A else A\nA: halt\n",
	"// comment only\ninputs x\n halt\n",
	"inputs x\nL: x := x - 1\n if x > 0 goto L else D\nD: halt\n",
	"inputs\n y := 0 - -3\n halt\n",
}

// FuzzParse checks the parser's robustness invariants: it never panics,
// and whenever it accepts a program, the program validates, prints, and
// re-parses with a stable printed form (one-step idempotence), and runs
// without unexpected failures.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program does not validate: %v", err)
		}
		text1 := Print(p)
		p2, err := ParseWithOptions(text1, ParseOptions{AllowShadows: true})
		if err != nil {
			t.Fatalf("printed program does not re-parse: %v\n%s", err, text1)
		}
		text2 := Print(p2)
		if text1 != text2 {
			t.Fatalf("print not idempotent:\n--- 1 ---\n%s--- 2 ---\n%s", text1, text2)
		}
		// Accepted programs must run (or hit the budget) without panics;
		// only the step limit is a tolerable failure.
		in := make([]int64, p.Arity())
		if _, err := p.RunBudget(in, 4096, nil); err != nil && !errors.Is(err, ErrStepLimit) {
			t.Fatalf("run failed unexpectedly: %v", err)
		}
	})
}

// FuzzBatchVsScalar is the batch tier's semantic oracle: for any program
// the parser accepts and any fuzz-chosen inputs, stride, and step budget,
// the batch runner's per-lane Results — and its first-lane-ordered error —
// must match scalar RunReuse exactly. This is the property every
// differential suite pins on fixed corpora, checked on arbitrary programs.
func FuzzBatchVsScalar(f *testing.F) {
	for i, s := range fuzzSeeds {
		f.Add(s, int64(i-4), int64(3*i), uint8(i), uint8(7))
	}
	f.Fuzz(func(t *testing.T, src string, base, stride int64, widthSeed, budgetSeed uint8) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil || p.Arity() == 0 {
			return
		}
		c, err := p.Compile()
		if err != nil {
			return // scalar compile rejections are compile_test's concern
		}
		width := 1 + int(widthSeed%8)
		maxSteps := int64(1) + int64(budgetSeed)*16
		lanes, err := c.NewLanes(width)
		if err != nil {
			t.Fatalf("scalar-compilable program fails batch compile: %v", err)
		}
		in := make([]int64, p.Arity())
		for i := range in {
			in[i] = base + int64(i)*stride
		}
		last := make([]int64, width)
		for i := range last {
			last[i] = in[len(in)-1] + int64(i)*stride
		}
		out := make([]Result, width)
		batchErr := c.RunBatch(lanes, in, last, maxSteps, out)
		regs := make([]int64, c.Slots())
		var wantErr error
		for lane, v := range last {
			in[len(in)-1] = v
			res, err := c.RunReuse(regs, in, maxSteps)
			if err != nil {
				wantErr = err
				break
			}
			if batchErr == nil && out[lane] != res {
				t.Fatalf("lane %d of %d (input %v): batch = %+v, scalar = %+v\n%s",
					lane, width, in, out[lane], res, src)
			}
		}
		if (batchErr == nil) != (wantErr == nil) ||
			errors.Is(batchErr, ErrStepLimit) != errors.Is(wantErr, ErrStepLimit) {
			t.Fatalf("batch err = %v, scalar err = %v (width %d, budget %d)\n%s",
				batchErr, wantErr, width, maxSteps, src)
		}
	})
}
