package flowchart

import (
	"errors"
	"testing"
)

// FuzzParse checks the parser's robustness invariants: it never panics,
// and whenever it accepts a program, the program validates, prints, and
// re-parses with a stable printed form (one-step idempotence), and runs
// without unexpected failures.
func FuzzParse(f *testing.F) {
	seeds := []string{
		progE3,
		"inputs x\n y := x\n halt\n",
		"inputs a b\n if a == b goto T else F\nT: halt\nF: violation \"no\"\n",
		"program p\ninputs x\noutput z\n z := ite(x > 0, 1, -1)\n halt\n",
		"inputs x\n y := x | 3 &^ 1 ^ 2 % 4 / 5 * 6 - 7 + 8\n halt\n",
		"inputs x\n if !(x == 0) && true || false goto A else A\nA: halt\n",
		"// comment only\ninputs x\n halt\n",
		"inputs x\nL: x := x - 1\n if x > 0 goto L else D\nD: halt\n",
		"inputs\n y := 0 - -3\n halt\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted program does not validate: %v", err)
		}
		text1 := Print(p)
		p2, err := ParseWithOptions(text1, ParseOptions{AllowShadows: true})
		if err != nil {
			t.Fatalf("printed program does not re-parse: %v\n%s", err, text1)
		}
		text2 := Print(p2)
		if text1 != text2 {
			t.Fatalf("print not idempotent:\n--- 1 ---\n%s--- 2 ---\n%s", text1, text2)
		}
		// Accepted programs must run (or hit the budget) without panics;
		// only the step limit is a tolerable failure.
		in := make([]int64, p.Arity())
		if _, err := p.RunBudget(in, 4096, nil); err != nil && !errors.Is(err, ErrStepLimit) {
			t.Fatalf("run failed unexpectedly: %v", err)
		}
	})
}
