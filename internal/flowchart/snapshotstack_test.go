package flowchart_test

import (
	"errors"
	"math/rand"
	"testing"

	"spm/internal/flowchart"
	"spm/internal/progen"
)

// mustCompile parses and compiles src or fails the test.
func mustCompile(t *testing.T, src string) *flowchart.Compiled {
	t.Helper()
	p, err := flowchart.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c, err := p.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// sweepStack walks values in odometer order (innermost fastest), feeding
// the stack exact carry hints, and checks every Run against a fresh
// RunReuse. It returns the op-kind histogram of the walk.
func sweepStack(t *testing.T, c *flowchart.Compiled, st *flowchart.SnapshotStack, values [][]int64, maxSteps int64) map[flowchart.StackOpKind]int {
	t.Helper()
	k := len(values)
	idx := make([]int, k)
	in := make([]int64, k)
	for i := range in {
		in[i] = values[i][0]
	}
	fregs := make([]int64, c.Slots())
	ops := make(map[flowchart.StackOpKind]int)
	carry := 0
	for {
		wantRes, wantErr := c.RunReuse(fregs, in, maxSteps)
		gotRes, op, gotErr := st.Run(in, carry, maxSteps)
		ops[op.Kind]++
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("at %v (carry %d): err = %v, fresh err = %v", in, carry, gotErr, wantErr)
		}
		if gotErr == nil && gotRes != wantRes {
			t.Fatalf("at %v (carry %d, op %v): result = %+v, fresh = %+v", in, carry, op, gotRes, wantRes)
		}
		done := true
		for i := k - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(values[i]) {
				in[i] = values[i][idx[i]]
				carry = i
				done = false
				break
			}
			idx[i] = 0
			in[i] = values[i][0]
		}
		if done {
			return ops
		}
	}
}

// TestSnapshotStackConstantAxes: a program that never reads its inner
// input collapses the whole inner radix to constant answers — one full
// recording for the first outer value, one replay per further outer
// value, constants everywhere else.
func TestSnapshotStackConstantAxes(t *testing.T) {
	c := mustCompile(t, "inputs a b\n y := a + 1\n halt\n")
	st := c.NewSnapshotStack()
	values := [][]int64{{0, 1, 2, 3}, {10, 20, 30, 40, 50}}
	ops := sweepStack(t, c, st, values, flowchart.DefaultMaxSteps)
	if ops[flowchart.StackFull] != 1 {
		t.Errorf("full recordings = %d, want 1 (ops %v)", ops[flowchart.StackFull], ops)
	}
	if ops[flowchart.StackReplay] != 3 {
		t.Errorf("replays = %d, want 3 (ops %v)", ops[flowchart.StackReplay], ops)
	}
	if want := 4 * 4; ops[flowchart.StackConstant] != want {
		t.Errorf("constants = %d, want %d (ops %v)", ops[flowchart.StackConstant], want, ops)
	}
}

// TestSnapshotStackNeverReadAnything: a program reading no input at all
// answers the entire product with one execution.
func TestSnapshotStackNeverReadAnything(t *testing.T) {
	c := mustCompile(t, "inputs a b c\n y := 42\n halt\n")
	st := c.NewSnapshotStack()
	values := [][]int64{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	ops := sweepStack(t, c, st, values, flowchart.DefaultMaxSteps)
	if ops[flowchart.StackFull] != 1 {
		t.Errorf("full recordings = %d, want 1 (ops %v)", ops[flowchart.StackFull], ops)
	}
	if want := 27 - 1; ops[flowchart.StackConstant] != want {
		t.Errorf("constants = %d, want %d (ops %v)", ops[flowchart.StackConstant], want, ops)
	}
}

// TestSnapshotStackRowCollapse: rows whose captured state at the
// innermost capture point coincide (here, outer values congruent mod 2
// after `a := a % 2` shadows the input) reuse each other's tail results
// through the content-addressed row cache.
func TestSnapshotStackRowCollapse(t *testing.T) {
	c := mustCompile(t, "inputs a b\n a := a % 2\n y := a * 100 + b\n halt\n")
	st := c.NewSnapshotStack()
	values := [][]int64{{0, 1, 2, 3, 4, 5}, {7, 8, 9}}
	ops := sweepStack(t, c, st, values, flowchart.DefaultMaxSteps)
	// Rows a=0 and a=1 execute their tails (one full + replays); rows
	// a=2..5 land on the two cached row states and answer every tuple
	// from the cache.
	if want := 4 * 3; ops[flowchart.StackRowHit] != want {
		t.Errorf("row hits = %d, want %d (ops %v)", ops[flowchart.StackRowHit], want, ops)
	}
	rows, results := st.RowStats()
	if rows != 2 {
		t.Errorf("distinct row states = %d, want 2", rows)
	}
	if results != 6 {
		t.Errorf("cached results = %d, want 6", results)
	}
}

// TestSnapshotStackUnreadInputExcluded: an input no instruction touches
// must not poison the row hash — rows differing only in that coordinate
// share one cached state.
func TestSnapshotStackUnreadInputExcluded(t *testing.T) {
	c := mustCompile(t, "inputs dead b\n y := b * 2\n halt\n")
	st := c.NewSnapshotStack()
	values := [][]int64{{0, 1, 2, 3}, {5, 6}}
	ops := sweepStack(t, c, st, values, flowchart.DefaultMaxSteps)
	rows, _ := st.RowStats()
	if rows != 1 {
		t.Errorf("distinct row states = %d, want 1 (dead input leaked into the hash); ops %v", rows, ops)
	}
	if want := 3 * 2; ops[flowchart.StackRowHit] != want {
		t.Errorf("row hits = %d, want %d (ops %v)", ops[flowchart.StackRowHit], want, ops)
	}
}

// TestSnapshotStackReadUnderBranch: an outer input read only under a
// branch on the inner input — the capture points sit before the
// decision, so replays at any depth reinstall both coordinates
// correctly.
func TestSnapshotStackReadUnderBranch(t *testing.T) {
	c := mustCompile(t, "inputs a b\n if b > 0 goto R else S\nR: y := a\n halt\nS: y := 0 - a\n halt\n")
	st := c.NewSnapshotStack()
	values := [][]int64{{-3, -1, 0, 2, 4}, {-1, 0, 1, 2}}
	sweepStack(t, c, st, values, flowchart.DefaultMaxSteps)
}

// TestSnapshotStackWriteBeforeRead: the program shadows an input with an
// assignment before reading it; replays must restore the captured
// (pre-shadow) state, not the shadowed one.
func TestSnapshotStackWriteBeforeRead(t *testing.T) {
	c := mustCompile(t, "inputs a b\n a := a + b\n y := a\n halt\n")
	st := c.NewSnapshotStack()
	values := [][]int64{{1, 2, 3}, {10, 20, 30}}
	sweepStack(t, c, st, values, flowchart.DefaultMaxSteps)
}

// TestSnapshotStackBudgetExhaustion: a budget that dies between the
// outer and inner capture points leaves the inner entries invalid, and
// every tuple falls back exactly as a fresh run would — including the
// error.
func TestSnapshotStackBudgetExhaustion(t *testing.T) {
	src := "inputs a b\n i := a\nL: i := i - 1\n if i > 0 goto L else D\nD: y := b\n halt\n"
	c := mustCompile(t, src)
	values := [][]int64{{1, 100, 2}, {0, 1, 2}}
	for _, budget := range []int64{4, 8, 64, flowchart.DefaultMaxSteps} {
		st := c.NewSnapshotStack()
		sweepStack(t, c, st, values, budget)
	}
}

// TestSnapshotStackBudgetChange: cached row results must not leak across
// step-budget regimes — the same sweep at a different budget re-executes
// rather than row-hitting stale entries.
func TestSnapshotStackBudgetChange(t *testing.T) {
	c := mustCompile(t, "inputs a b\n a := a % 2\n y := a + b\n halt\n")
	st := c.NewSnapshotStack()
	values := [][]int64{{0, 2}, {0, 1}}
	sweepStack(t, c, st, values, flowchart.DefaultMaxSteps)
	// Same walk, fresh carries, different budget: results identical (the
	// program is far under either budget), but none may come from the
	// other regime's cache without re-verification.
	sweepStack(t, c, st, values, flowchart.DefaultMaxSteps/2)
}

// TestSnapshotStackUnderReportedCarry: a carry lower than the true
// prefix agreement is always safe — it only wastes reuse.
func TestSnapshotStackUnderReportedCarry(t *testing.T) {
	c := mustCompile(t, "inputs a b c\n y := a * 100 + b * 10 + c\n halt\n")
	st := c.NewSnapshotStack()
	fregs := make([]int64, c.Slots())
	in := []int64{1, 2, 3}
	r := rand.New(rand.NewSource(11))
	prev := []int64{0, 0, 0}
	for step := 0; step < 200; step++ {
		for i := range in {
			if r.Intn(3) == 0 {
				in[i] = int64(r.Intn(4))
			}
		}
		agree := 0
		for agree < len(in) && in[agree] == prev[agree] {
			agree++
		}
		if agree > len(in)-1 {
			agree = len(in) - 1
		}
		carry := r.Intn(agree + 1)
		want, werr := c.RunReuse(fregs, in, flowchart.DefaultMaxSteps)
		got, op, gerr := st.Run(in, carry, flowchart.DefaultMaxSteps)
		if werr != nil || gerr != nil {
			t.Fatalf("unexpected error: %v / %v", werr, gerr)
		}
		if got != want {
			t.Fatalf("step %d at %v (carry %d, op %v): got %+v, want %+v", step, in, carry, op, got, want)
		}
		copy(prev, in)
	}
}

// TestSnapshotStackInvalidate: after Invalidate the next Run records from
// scratch regardless of the carry hint.
func TestSnapshotStackInvalidate(t *testing.T) {
	c := mustCompile(t, "inputs a b\n y := a + b\n halt\n")
	st := c.NewSnapshotStack()
	in := []int64{1, 2}
	if _, op, err := st.Run(in, 0, flowchart.DefaultMaxSteps); err != nil || op.Kind != flowchart.StackFull {
		t.Fatalf("first run: op %v, err %v", op, err)
	}
	if st.Depth() != 1 {
		t.Fatalf("Depth after record = %d, want 1", st.Depth())
	}
	st.Invalidate()
	if st.Depth() != -1 {
		t.Fatalf("Depth after Invalidate = %d, want -1", st.Depth())
	}
	in[1] = 3
	if _, op, err := st.Run(in, 1, flowchart.DefaultMaxSteps); err != nil || op.Kind != flowchart.StackFull {
		t.Fatalf("post-invalidate run: op %v, err %v (carry must not resurrect entries)", op, err)
	}
}

// TestSnapshotStackNullary: arity-0 programs have no per-axis trace; the
// stack degrades to plain full runs.
func TestSnapshotStackNullary(t *testing.T) {
	c := mustCompile(t, "inputs\n y := 9\n halt\n")
	st := c.NewSnapshotStack()
	for i := 0; i < 3; i++ {
		res, op, err := st.Run(nil, 0, flowchart.DefaultMaxSteps)
		if err != nil || res.Value != 9 || op.Kind != flowchart.StackFull {
			t.Fatalf("run %d: res %+v, op %v, err %v", i, res, op, err)
		}
	}
}

// TestSnapshotStackArityMismatch mirrors the scalar runners' contract.
func TestSnapshotStackArityMismatch(t *testing.T) {
	c := mustCompile(t, "inputs a b\n y := a\n halt\n")
	st := c.NewSnapshotStack()
	if _, _, err := st.Run([]int64{1}, 0, flowchart.DefaultMaxSteps); !errors.Is(err, flowchart.ErrArity) {
		t.Fatalf("err = %v, want ErrArity", err)
	}
}

// TestSnapshotStackDifferentialProgen is the randomized half of the
// stack-validity story: generated programs re-read inputs, read them
// under data-dependent branches, and shadow them with assignments, and
// over a full odometer sweep with exact carries the stack must agree
// with fresh runs tuple for tuple. It also checks the walk actually
// exercised the stack (replays happened) rather than vacuously running
// everything in full.
func TestSnapshotStackDifferentialProgen(t *testing.T) {
	axis := []int64{-2, -1, 0, 1, 2}
	totalReplays := 0
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		arity := 2 + int(seed)%3
		p := progen.Generate(r, progen.DefaultConfig(arity))
		c, err := p.Compile()
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}
		values := make([][]int64, arity)
		for i := range values {
			values[i] = axis
		}
		st := c.NewSnapshotStack()
		ops := sweepStack(t, c, st, values, flowchart.DefaultMaxSteps)
		totalReplays += ops[flowchart.StackReplay] + ops[flowchart.StackConstant] + ops[flowchart.StackRowHit]
	}
	if totalReplays == 0 {
		t.Error("no stack reuse across the whole corpus — the differential ran vacuously")
	}
}

// stackFuzzSeeds seeds FuzzSnapshotStackVsScalar with the adversarial
// shapes the stack's validity argument leans on: an input shadowed by a
// write before its read, an outer input read only under a branch on the
// inner one, and a burn loop that exhausts small step budgets between
// the two capture points.
var stackFuzzSeeds = []string{
	"inputs a b\n a := a + b\n y := a\n halt\n",
	"inputs a b\n if b > 0 goto R else S\nR: y := a\n halt\nS: y := 0 - a\n halt\n",
	"inputs a b\n i := a\nL: i := i - 1\n if i > 0 goto L else D\nD: y := b\n halt\n",
	"inputs a b\n y := a + 1\n halt\n",
	"inputs a b\n a := a % 2\n y := a * 100 + b\n halt\n",
}

// FuzzSnapshotStackVsScalar is the snapshot stack's semantic oracle: for
// any accepted program and any fuzz-chosen walk over a small domain —
// including under-reported carries, which the contract allows — every
// stack answer must match a fresh scalar run exactly, and errors must
// agree. This is the property the fixed-corpus differentials pin, checked
// on arbitrary programs and walks.
func FuzzSnapshotStackVsScalar(f *testing.F) {
	for i, s := range stackFuzzSeeds {
		f.Add(s, int64(i-2), int64(2*i+1), uint8(16*i+3), []byte{0, 3, 7, 0x85, 42, 0xff, 9})
		f.Add(s, int64(-1), int64(3), uint8(40), []byte{1, 2, 3, 4, 5})
	}
	f.Fuzz(func(t *testing.T, src string, base, stride int64, budgetSeed uint8, walk []byte) {
		p, err := flowchart.Parse(src)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil || p.Arity() == 0 || p.Arity() > 8 {
			return
		}
		c, err := p.Compile()
		if err != nil {
			return
		}
		k := p.Arity()
		axis := []int64{base, base + stride, base + 2*stride, base + 3*stride}
		maxSteps := int64(1) + int64(budgetSeed)*16
		st := c.NewSnapshotStack()
		fregs := make([]int64, c.Slots())
		idx := make([]int, k)
		in := make([]int64, k)
		prev := make([]int64, k)
		first := true
		for _, b := range walk {
			if len(walk) > 64 {
				walk = walk[:64]
			}
			j := int(b) % k
			idx[j] = (idx[j] + 1 + int(b>>4)) % len(axis)
			for i := range in {
				in[i] = axis[idx[i]]
			}
			carry := 0
			if !first {
				agree := 0
				for agree < k && in[agree] == prev[agree] {
					agree++
				}
				if agree > k-1 {
					agree = k - 1
				}
				carry = agree
				if b&0x80 != 0 && carry > 0 {
					carry-- // under-report: allowed by the hint contract
				}
			}
			wantRes, wantErr := c.RunReuse(fregs, in, maxSteps)
			gotRes, op, gotErr := st.Run(in, carry, maxSteps)
			if (gotErr == nil) != (wantErr == nil) ||
				errors.Is(gotErr, flowchart.ErrStepLimit) != errors.Is(wantErr, flowchart.ErrStepLimit) {
				t.Fatalf("at %v (carry %d): err = %v, scalar err = %v\n%s", in, carry, gotErr, wantErr, src)
			}
			if gotErr == nil && gotRes != wantRes {
				t.Fatalf("at %v (carry %d, op %v): stack = %+v, scalar = %+v\n%s",
					in, carry, op, gotRes, wantRes, src)
			}
			copy(prev, in)
			first = false
		}
	})
}
