package flowchart

import (
	"errors"
	"fmt"
)

// ErrNoSnapshot is returned by RunFromSnapshot when the snapshot is
// invalid: the recording run never reached a valid capture point (it
// exhausted its step budget or failed first), the snapshot belongs to a
// different Compiled program, or RunSnapshot has not been called yet.
// Callers fall back to a full RunReuse.
var ErrNoSnapshot = errors.New("flowchart: no valid snapshot")

// snapState is the lifecycle of a Snapshot.
type snapState uint8

const (
	// snapInvalid: no usable capture; RunFromSnapshot refuses.
	snapInvalid snapState = iota
	// snapCaptured: state captured just before the first instruction that
	// touches the innermost input; RunFromSnapshot replays the tail.
	snapCaptured
	// snapConstant: the recording run halted without ever touching the
	// innermost input, so its result holds for every value of that input;
	// RunFromSnapshot returns it without executing anything.
	snapConstant
)

// Snapshot captures the execution state of a Compiled program — register
// file, program counter, and steps spent — at the first executed
// instruction that reads or writes the innermost input's register. Because
// no earlier instruction touches that register (that is what "first"
// means, and the compiler's per-instruction input trace is what detects
// it), the captured prefix is identical for every value of the innermost
// input: two runs that agree on all other inputs execute the same
// instructions, on the same data, up to the capture point. RunFromSnapshot
// exploits that to replay only the program tail when an enumeration in
// odometer order varies the innermost input — the prefix-memoized fast
// path of the sweep engine.
//
// The capture point is found dynamically, so inputs read under
// data-dependent branches and inputs read more than once are handled
// soundly: whichever instruction touches the innermost input first on the
// actual execution path is where the state is captured, and every later
// read sees the value RunFromSnapshot installed. The snapshot is invalid
// (and RunFromSnapshot falls back with ErrNoSnapshot) when the recording
// run exhausted maxSteps or failed before any instruction touched the
// innermost input.
//
// A Snapshot is single-goroutine state, like the register file it wraps:
// each sweep worker owns one. It stays bound to the Compiled program that
// created it.
type Snapshot struct {
	c     *Compiled
	regs  []int64
	pc    int32
	steps int64
	state snapState
	res   Result
}

// NewSnapshot returns an empty (invalid) snapshot for the program. Pass it
// to RunSnapshot to record a capture, then to RunFromSnapshot to replay
// tails.
func (c *Compiled) NewSnapshot() *Snapshot {
	return &Snapshot{c: c, regs: make([]int64, len(c.slotOf))}
}

// Valid reports whether RunFromSnapshot can use the snapshot.
func (s *Snapshot) Valid() bool { return s.state != snapInvalid }

// Invalidate discards the capture; the next RunFromSnapshot returns
// ErrNoSnapshot until RunSnapshot records again.
func (s *Snapshot) Invalidate() { s.state = snapInvalid }

// String renders the snapshot state for logs and examples.
func (s *Snapshot) String() string {
	switch s.state {
	case snapCaptured:
		return fmt.Sprintf("snapshot@pc=%d steps=%d", s.pc, s.steps)
	case snapConstant:
		return "snapshot: result constant in innermost input"
	default:
		return "snapshot: invalid"
	}
}

// RunSnapshot is RunReuse with snapshot recording: it executes the program
// in full and, as a side effect, captures into snap the register file,
// program counter, and step count at the first instruction that touches
// the innermost input's register. If the program halts without touching it
// the result is independent of the innermost input and the snapshot
// records the result itself; if the run exhausts maxSteps (or fails)
// before a capture, snap is left invalid and the caller keeps using full
// runs.
//
// regs and snap must both be owned by the calling goroutine; snap must
// have been created by this program's NewSnapshot.
func (c *Compiled) RunSnapshot(regs []int64, inputs []int64, maxSteps int64, snap *Snapshot) (Result, error) {
	if snap == nil || snap.c != c {
		return Result{}, fmt.Errorf("flowchart %q: snapshot belongs to a different program", c.Source.Name)
	}
	snap.state = snapInvalid
	if len(inputs) != len(c.inputSlots) {
		return Result{}, fmt.Errorf("%w: got %d inputs, program %q wants %d",
			ErrArity, len(inputs), c.Source.Name, len(c.inputSlots))
	}
	if len(regs) < len(c.slotOf) {
		return Result{}, fmt.Errorf("flowchart %q: register file has %d slots, need %d",
			c.Source.Name, len(regs), len(c.slotOf))
	}
	regs = regs[:len(c.slotOf)]
	for i := range regs {
		regs[i] = 0
	}
	for i, s := range c.inputSlots {
		regs[s] = inputs[i]
	}
	if c.lastBit == 0 {
		// No innermost input to memoize against (arity 0, or more inputs
		// than the 64-bit trace can name): plain run, snapshot stays
		// invalid.
		return c.runLoop(regs, c.start, 0, maxSteps)
	}
	pc := c.start
	var steps int64
	for {
		if steps >= maxSteps {
			// Budget exhausted before any instruction touched the
			// innermost input: no capture (the caller falls back to full
			// runs, which will exhaust identically).
			return Result{Steps: steps}, fmt.Errorf("%w: budget %d, program %q", ErrStepLimit, maxSteps, c.Source.Name)
		}
		n := &c.code[pc]
		if n.touch&c.lastBit != 0 {
			copy(snap.regs, regs)
			snap.pc, snap.steps = pc, steps
			snap.state = snapCaptured
			return c.runLoop(regs, pc, steps, maxSteps)
		}
		steps++
		switch n.kind {
		case KindStart:
			pc = n.next
		case KindAssign:
			regs[n.target] = n.expr(regs)
			pc = n.next
		case KindDecision:
			if n.cond(regs) {
				pc = n.onTrue
			} else {
				pc = n.onFalse
			}
		case KindHalt:
			// Halted without touching the innermost input (a violation
			// halt, or an output variable it never flowed into): the
			// result is the same for every value of that input.
			snap.state = snapConstant
			if n.violation {
				snap.res = Result{Steps: steps, Violation: true, Notice: n.notice}
			} else {
				snap.res = Result{Value: regs[c.outputSlot], Steps: steps}
			}
			return snap.res, nil
		default:
			return Result{Steps: steps}, fmt.Errorf("flowchart %q: node %d has unknown kind %d", c.Source.Name, pc, n.kind)
		}
	}
}

// RunFromSnapshot replays only the program tail: it restores snap's
// register file, installs last as the innermost input's value, and resumes
// execution at the captured instruction with the captured step count — so
// the result (value, steps, violations, and budget accounting) is exactly
// what a fresh run on the same inputs would produce, at the cost of only
// the instructions after the capture point.
//
// The caller must guarantee the row contract: since snap was recorded (or
// last replayed), only the innermost input may have changed. The sweep
// engine's innerOnly hint (sweep.RunHintContext) is precisely that
// guarantee. A snapshot whose recording run never touched the innermost
// input returns the recorded result directly; an invalid snapshot returns
// ErrNoSnapshot and the caller falls back to RunReuse or RunSnapshot.
func (c *Compiled) RunFromSnapshot(regs []int64, snap *Snapshot, last int64, maxSteps int64) (Result, error) {
	if snap == nil || snap.c != c || snap.state == snapInvalid {
		return Result{}, ErrNoSnapshot
	}
	if snap.state == snapConstant {
		return snap.res, nil
	}
	if len(regs) < len(c.slotOf) {
		return Result{}, fmt.Errorf("flowchart %q: register file has %d slots, need %d",
			c.Source.Name, len(regs), len(c.slotOf))
	}
	regs = regs[:len(c.slotOf)]
	copy(regs, snap.regs)
	regs[c.lastSlot] = last
	return c.runLoop(regs, snap.pc, snap.steps, maxSteps)
}

// InputTrace returns the compiler's static input trace: for each input
// position, the instruction indices (Program.Nodes indices) that may read
// or write that input's register. It is the analysis behind the snapshot
// fast path — the capture point of a recording run is always the first
// executed member of the innermost input's trace — exposed for tests,
// tooling, and DESIGN.md's worked examples. Inputs beyond the 64th are
// reported as touched nowhere (the fast path is disabled for such
// programs).
func (c *Compiled) InputTrace() [][]int {
	trace := make([][]int, len(c.inputSlots))
	for i := range c.code {
		mask := c.code[i].touch
		for b := 0; mask != 0 && b < len(trace); b++ {
			if mask&(1<<b) != 0 {
				trace[b] = append(trace[b], i)
				mask &^= 1 << b
			}
		}
	}
	return trace
}
