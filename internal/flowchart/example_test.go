package flowchart_test

import (
	"fmt"

	"spm/internal/flowchart"
)

// Compiling lowers a flowchart to slot-indexed code; Run executes it with
// the same semantics as the tree-walking interpreter.
func ExampleProgram_Compile() {
	p := flowchart.MustParse(`
program double
inputs x1
    y := x1 * 2
    halt
`)
	c, err := p.Compile()
	if err != nil {
		panic(err)
	}
	res, err := c.Run([]int64{21}, flowchart.DefaultMaxSteps)
	if err != nil {
		panic(err)
	}
	fmt.Println(res)
	// Output: 42 (steps=3)
}

// A sweep in odometer order varies the innermost input fastest. The
// snapshot pair exploits that: RunSnapshot records the execution state at
// the first instruction that touches x2, and RunFromSnapshot replays only
// the program tail for each further x2 — here skipping the x1-controlled
// loop entirely. Every replayed Result, including the step count, is
// exactly what a fresh run would produce.
func ExampleCompiled_RunFromSnapshot() {
	p := flowchart.MustParse(`
program lateread
inputs x1 x2
    i := x1
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: y := x2
      halt
`)
	c, err := p.Compile()
	if err != nil {
		panic(err)
	}
	regs := make([]int64, c.Slots())
	snap := c.NewSnapshot()

	res, err := c.RunSnapshot(regs, []int64{3, 10}, flowchart.DefaultMaxSteps, snap)
	if err != nil {
		panic(err)
	}
	fmt.Println(res, "--", snap.Valid())

	for _, x2 := range []int64{11, 12} {
		res, err := c.RunFromSnapshot(regs, snap, x2, flowchart.DefaultMaxSteps)
		if err != nil {
			panic(err)
		}
		fmt.Println(res)
	}
	// Output:
	// 10 (steps=11) -- true
	// 11 (steps=11)
	// 12 (steps=11)
}
