package flowchart

import (
	"fmt"
)

// This file generalizes the single-axis prefix memo of snapshot.go into a
// per-axis snapshot stack with subdomain pruning. Where a Snapshot keeps
// one capture — the state before the first instruction touching the
// innermost input — a SnapshotStack keeps one capture per domain axis: the
// state before the first executed instruction touching *any* input of that
// axis or deeper. The captures are nested along the execution path
// (suffix[d] ⊇ suffix[d+1], so entry d is reached no later than entry
// d+1), which makes the sweep engine's carry hint exactly the right
// invalidation rule: an odometer carry that stops at digit c leaves every
// capture at depth ≤ c valid and stales exactly the stack suffix above it.
//
// Two pruning layers ride on the stack:
//
//   - Constant suffixes. A run that halts without ever touching inputs
//     d..k-1 has a result independent of those axes; the stack records it
//     as a constant entry at every untouched depth, so the whole radix
//     product of those axes collapses to one execution — the wholesale
//     skip for axes the program never reads.
//
//   - Row collapse. Two odometer rows whose captured register files at the
//     innermost capture point are equal (ignoring registers that cannot
//     influence the tail: the innermost input's own slot, which every
//     replay overwrites, and the slots of inputs no instruction ever
//     touches) have identical tails for every innermost value. The stack
//     content-addresses rows the way the service's compile cache addresses
//     programs — hash first, verify with a full compare — and reuses tail
//     results across matching rows.
//
// Everything falls back to a full recording run, so the result of every
// tuple is exactly RunReuse's; the differential suites and
// FuzzSnapshotStackVsScalar pin the equivalence byte-for-byte.

// maxStackRows bounds the distinct captured row states the row cache
// retains; maxStackResults bounds the cached tail results across all rows.
// Saturation stops insertion (lookups keep working), trading speed for a
// hard memory bound — never correctness. rowCacheProbation is the
// adaptive cutoff: once that many distinct row states have been inserted
// without a single collapse (two rows content-addressing equal) or cached
// result reused, the sweep's rows are evidently all distinct and the
// cache drops itself — the per-tuple hash/insert cost stops, the stack's
// per-axis replays continue unaffected.
const (
	maxStackRows      = 4096
	maxStackResults   = 1 << 16
	rowCacheProbation = 512
)

// StackOpKind classifies how SnapshotStack.Run answered one tuple.
type StackOpKind uint8

const (
	// StackFull: no valid capture applied; the run recorded from
	// instruction zero.
	StackFull StackOpKind = iota
	// StackReplay: the run resumed from the deepest valid per-axis
	// capture, re-recording the stack suffix above it.
	StackReplay
	// StackConstant: a constant entry answered the tuple without
	// executing anything — the program never touches the axes that
	// changed.
	StackConstant
	// StackRowHit: the row cache answered the tuple without executing
	// the tail — another row with identical captured state already ran
	// this innermost value.
	StackRowHit
)

// String names the op kind for logs and test output.
func (k StackOpKind) String() string {
	switch k {
	case StackFull:
		return "full"
	case StackReplay:
		return "replay"
	case StackConstant:
		return "constant"
	case StackRowHit:
		return "rowhit"
	default:
		return fmt.Sprintf("StackOpKind(%d)", int(k))
	}
}

// StackOp reports what one SnapshotStack.Run did: the kind of answer and
// the stack depth it keyed on — the depth resumed from for a replay, the
// depth of the constant entry for a constant answer. Execution tallies
// (core.ExecTally) aggregate these per axis.
type StackOp struct {
	Kind  StackOpKind
	Depth int
}

// stackEntry is one per-axis capture: the register file, program counter,
// and step count before the first executed instruction touching any input
// at this depth or deeper — or, for a constant entry, the halt result that
// holds for every value of the axes at this depth and deeper.
type stackEntry struct {
	regs  []int64
	pc    int32
	steps int64
	state snapState
	res   Result
}

// rowKey is the first level of the row cache's content addressing: the
// innermost capture point plus a hash of the masked register file. The
// step budget is part of the key so cached tails can never cross budget
// regimes.
type rowKey struct {
	pc     int32
	steps  int64
	budget int64
	hash   uint64
}

// rowEntry is one distinct captured row state and its cached tail results
// keyed by innermost value. regs is the masked register file (excluded
// slots zeroed) the second-level verify compares against.
type rowEntry struct {
	regs    []int64
	budget  int64
	results map[int64]Result
}

// SnapshotStack is the per-axis generalization of Snapshot: one capture
// point per domain axis, invalidated exactly by the sweep's odometer
// carries, plus constant-suffix skipping and content-addressed row
// collapse. Like a Snapshot or a register file it is single-goroutine
// state — each sweep worker owns one — and stays bound to the Compiled
// program that created it.
type SnapshotStack struct {
	c       *Compiled
	regs    []int64
	entries []stackEntry
	// suffix[d] is the OR of the touch-mask bits of inputs d..k-1
	// (suffix[k] == 0): entry d captures before the first instruction
	// whose touch mask intersects suffix[d].
	suffix []uint64
	// excluded marks register slots the row cache must ignore: the
	// innermost input's slot (every replay overwrites it) and the slots
	// of inputs no instruction ever touches (their values are
	// unreadable, so rows differing only there still share tails).
	excluded []bool
	hashBuf  []int64

	rows     map[rowKey][]*rowEntry
	row      *rowEntry
	nResults int
	rowHit   bool
	// rowInserts and rowWins drive the probation cutoff: inserts counts
	// distinct row states added, wins counts collapses and reused
	// results. A cache that only ever inserts gets dropped.
	rowInserts int
	rowWins    int
}

// NewSnapshotStack returns an empty snapshot stack for the program. For
// programs outside the fast path's reach (no inputs, or more than 64) the
// stack still answers every Run — it just records nothing and executes
// each tuple in full.
func (c *Compiled) NewSnapshotStack() *SnapshotStack {
	s := &SnapshotStack{c: c, regs: make([]int64, len(c.slotOf))}
	if c.lastBit == 0 {
		return s
	}
	k := len(c.inputSlots)
	s.entries = make([]stackEntry, k)
	for d := range s.entries {
		s.entries[d].regs = make([]int64, len(c.slotOf))
	}
	s.suffix = make([]uint64, k+1)
	for d := k - 1; d >= 0; d-- {
		s.suffix[d] = s.suffix[d+1] | 1<<d
	}
	var touched uint64
	for i := range c.code {
		touched |= c.code[i].touch
	}
	s.excluded = make([]bool, len(c.slotOf))
	s.excluded[c.lastSlot] = true
	for i, slot := range c.inputSlots {
		if touched&(1<<i) == 0 {
			s.excluded[slot] = true
		}
	}
	s.hashBuf = make([]int64, len(c.slotOf))
	s.rows = make(map[rowKey][]*rowEntry)
	return s
}

// Depth returns the deepest currently-valid capture (−1 when none) —
// exposed for tests and tooling.
func (s *SnapshotStack) Depth() int {
	for d := len(s.entries) - 1; d >= 0; d-- {
		if s.entries[d].state != snapInvalid {
			return d
		}
	}
	return -1
}

// RowStats reports the row cache's occupancy: distinct captured row
// states and cached tail results.
func (s *SnapshotStack) RowStats() (rows, results int) {
	for _, chain := range s.rows {
		rows += len(chain)
	}
	return rows, s.nResults
}

// Invalidate discards every capture and forgets the bound row (the row
// cache itself survives — its entries are content-addressed, not
// positional). The next Run records from scratch.
func (s *SnapshotStack) Invalidate() {
	for d := range s.entries {
		s.entries[d].state = snapInvalid
	}
	s.row = nil
}

// Run executes the program on input, reusing every capture the carry hint
// proves valid: carry is the number of leading coordinates unchanged since
// the previous Run on this stack (sweep.HintFunc's guarantee; pass 0 when
// nothing is known). Entries above the carry are invalidated, the deepest
// surviving entry answers — a constant entry immediately, a captured entry
// by replaying the tail while re-recording the stack above it, the row
// cache without executing at all when another row already ran this tuple's
// tail — and a tuple with no usable capture records from scratch. The
// Result (value, steps, violations, budget accounting) is exactly what
// RunReuse would produce for input.
func (s *SnapshotStack) Run(input []int64, carry int, maxSteps int64) (Result, StackOp, error) {
	c := s.c
	if len(input) != len(c.inputSlots) {
		return Result{}, StackOp{}, fmt.Errorf("%w: got %d inputs, program %q wants %d",
			ErrArity, len(input), c.Source.Name, len(c.inputSlots))
	}
	if c.lastBit == 0 {
		// No per-axis trace (arity 0, or more inputs than the 64-bit
		// masks can name): plain full runs forever.
		res, err := c.RunReuse(s.regs, input, maxSteps)
		return res, StackOp{Kind: StackFull}, err
	}
	k := len(c.inputSlots)
	if carry < 0 {
		carry = 0
	}
	if carry > k-1 {
		carry = k - 1
	}
	for d := carry + 1; d < k; d++ {
		s.entries[d].state = snapInvalid
	}
	if carry < k-1 {
		// New odometer row: the bound row entry no longer describes the
		// current prefix.
		s.row = nil
	}
	d := carry
	for d >= 0 && s.entries[d].state == snapInvalid {
		d--
	}
	if d >= 0 && s.entries[d].state == snapConstant {
		return s.entries[d].res, StackOp{Kind: StackConstant, Depth: d}, nil
	}
	s.rowHit = false
	if d < 0 {
		regs := s.regs
		for i := range regs {
			regs[i] = 0
		}
		for i, slot := range c.inputSlots {
			regs[slot] = input[i]
		}
		res, err := s.record(input, 0, c.start, 0, maxSteps)
		return res, s.op(StackFull, 0), err
	}
	e := &s.entries[d]
	if d == k-1 && s.row != nil && s.row.budget == maxSteps {
		if res, ok := s.row.results[input[k-1]]; ok {
			s.rowWins++
			return res, StackOp{Kind: StackRowHit, Depth: d}, nil
		}
	}
	copy(s.regs, e.regs)
	// Inputs at the entry's depth and deeper were untouched at its
	// capture point (anything touching them would have captured first),
	// so installing the current coordinates over their stale initial
	// values reconstructs exactly the state a fresh run would reach.
	for i := d; i < k; i++ {
		s.regs[c.inputSlots[i]] = input[i]
	}
	res, err := s.record(input, d+1, e.pc, e.steps, maxSteps)
	return res, s.op(StackReplay, d), err
}

// op folds a mid-record row hit into the reported operation.
func (s *SnapshotStack) op(kind StackOpKind, depth int) StackOp {
	if s.rowHit {
		return StackOp{Kind: StackRowHit, Depth: len(s.entries) - 1}
	}
	return StackOp{Kind: kind, Depth: depth}
}

// record is the recording execution loop: runLoop with multi-point
// capture. Before executing each instruction it captures every pending
// stack entry whose suffix mask the instruction touches (several depths
// may capture at the same instruction); a halt turns the still-pending
// depths into constant entries and feeds the row cache; budget exhaustion
// or an execution fault leaves them invalid, so later tuples fall back
// exactly as a fresh run would.
func (s *SnapshotStack) record(input []int64, nextCapture int, pc int32, steps, maxSteps int64) (Result, error) {
	c := s.c
	k := len(c.inputSlots)
	regs := s.regs
	for {
		if steps >= maxSteps {
			return Result{Steps: steps}, fmt.Errorf("%w: budget %d, program %q", ErrStepLimit, maxSteps, c.Source.Name)
		}
		n := &c.code[pc]
		for nextCapture < k && n.touch&s.suffix[nextCapture] != 0 {
			e := &s.entries[nextCapture]
			copy(e.regs, regs)
			e.pc, e.steps = pc, steps
			e.state = snapCaptured
			nextCapture++
			if nextCapture == k {
				if res, hit := s.bindRow(pc, steps, maxSteps, input[k-1]); hit {
					s.rowHit = true
					return res, nil
				}
			}
		}
		steps++
		switch n.kind {
		case KindStart:
			pc = n.next
		case KindAssign:
			regs[n.target] = n.expr(regs)
			pc = n.next
		case KindDecision:
			if n.cond(regs) {
				pc = n.onTrue
			} else {
				pc = n.onFalse
			}
		case KindHalt:
			var res Result
			if n.violation {
				res = Result{Steps: steps, Violation: true, Notice: n.notice}
			} else {
				res = Result{Value: regs[c.outputSlot], Steps: steps}
			}
			// Axes never touched on this path: the result holds for every
			// value of each still-pending depth's radix suffix.
			for m := nextCapture; m < k; m++ {
				e := &s.entries[m]
				e.state = snapConstant
				e.res = res
			}
			s.storeRow(input[k-1], maxSteps, res)
			return res, nil
		default:
			return Result{Steps: steps}, fmt.Errorf("flowchart %q: node %d has unknown kind %d", c.Source.Name, pc, n.kind)
		}
	}
}

// bindRow content-addresses the just-captured innermost state: hash the
// masked register file, verify candidates with a full compare (hash
// collisions must never cross-contaminate rows — verdicts are
// byte-identical by contract), and bind the matching or freshly inserted
// row entry. Reports a cached tail result for last when the bound row
// already ran it.
func (s *SnapshotStack) bindRow(pc int32, steps, maxSteps int64, last int64) (Result, bool) {
	s.row = nil
	if s.rows == nil {
		return Result{}, false
	}
	copy(s.hashBuf, s.regs)
	for slot, ex := range s.excluded {
		if ex {
			s.hashBuf[slot] = 0
		}
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, v := range s.hashBuf {
		h ^= uint64(v)
		h *= fnvPrime
	}
	key := rowKey{pc: pc, steps: steps, budget: maxSteps, hash: h}
	chain := s.rows[key]
	for _, r := range chain {
		match := true
		for i, v := range r.regs {
			if s.hashBuf[i] != v {
				match = false
				break
			}
		}
		if match {
			// Two rows collapsed onto one captured state — the cache is
			// earning its keep.
			s.rowWins++
			s.row = r
			if res, ok := r.results[last]; ok {
				return res, true
			}
			return Result{}, false
		}
	}
	if len(s.rows) >= maxStackRows {
		return Result{}, false
	}
	s.rowInserts++
	if s.rowWins == 0 && s.rowInserts >= rowCacheProbation {
		// Every row state so far has been distinct: stop paying the
		// per-row hash and per-tuple result bookkeeping for a cache that
		// never answers.
		s.rows = nil
		return Result{}, false
	}
	r := &rowEntry{
		regs:    append([]int64(nil), s.hashBuf...),
		budget:  maxSteps,
		results: make(map[int64]Result),
	}
	s.rows[key] = append(chain, r)
	s.row = r
	return Result{}, false
}

// storeRow caches a completed tail result on the bound row. Error results
// are never cached (the error paths re-execute and fail identically), and
// saturation simply stops caching.
func (s *SnapshotStack) storeRow(last int64, maxSteps int64, res Result) {
	if s.row == nil || s.row.budget != maxSteps || s.nResults >= maxStackResults {
		return
	}
	if _, ok := s.row.results[last]; !ok {
		s.row.results[last] = res
		s.nResults++
	}
}
