package flowchart

import (
	"fmt"
	"strings"
)

// NodeID identifies a box within a Program. IDs are indices into
// Program.Nodes.
type NodeID int32

// NoNode is the absent successor.
const NoNode NodeID = -1

// Kind distinguishes the four box forms of the paper's flowchart language.
type Kind uint8

// Box kinds.
const (
	KindStart    Kind = iota // the unique entry box
	KindAssign               // v := E(w1,...,wp)
	KindDecision             // branch on B(w1,...,wp)
	KindHalt                 // halt with output, or with a violation notice
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindAssign:
		return "assign"
	case KindDecision:
		return "decision"
	case KindHalt:
		return "halt"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Node is one box of a flowchart. Which fields are meaningful depends on
// Kind:
//
//	KindStart:    Next
//	KindAssign:   Target, Expr, Next
//	KindDecision: Cond, True, False
//	KindHalt:     Violation, Notice
//
// A halt box with Violation set produces a violation notice instead of the
// output value; the surveillance transformation introduces such boxes (the
// paper's Λ output).
type Node struct {
	Kind  Kind
	Label string // optional name for printing and DSL round trips

	Target string // KindAssign
	Expr   Expr   // KindAssign
	Cond   Pred   // KindDecision

	Next  NodeID // KindStart, KindAssign
	True  NodeID // KindDecision
	False NodeID // KindDecision

	Violation bool   // KindHalt
	Notice    string // KindHalt, when Violation
}

// Succs returns the node's successor IDs (0, 1, or 2 of them).
func (n *Node) Succs() []NodeID {
	switch n.Kind {
	case KindStart, KindAssign:
		return []NodeID{n.Next}
	case KindDecision:
		return []NodeID{n.True, n.False}
	default:
		return nil
	}
}

// Program is a flowchart: a program Q : Z^k → Z in the paper's sense, where
// k = len(Inputs). Program variables not listed in Inputs start at 0; the
// variable named Output carries the result at a halt box.
type Program struct {
	Name   string
	Inputs []string // x1..xk, in input-position order
	Output string   // result variable; "y" if empty
	Nodes  []Node
	Start  NodeID
	// Funcs is the table of named total functions available to Call
	// expressions.
	Funcs map[string]*Func
}

// DefaultOutput is the output variable used when Program.Output is empty.
const DefaultOutput = "y"

// OutputVar returns the effective output variable name.
func (p *Program) OutputVar() string {
	if p.Output == "" {
		return DefaultOutput
	}
	return p.Output
}

// Arity returns k, the number of inputs.
func (p *Program) Arity() int { return len(p.Inputs) }

// InputIndex returns the 1-based input position of name, or 0 if name is
// not an input. The 1-based convention matches the paper's allow(i1,...,im)
// notation and the lattice.IndexSet domain.
func (p *Program) InputIndex(name string) int {
	for i, in := range p.Inputs {
		if in == name {
			return i + 1
		}
	}
	return 0
}

// Node returns a pointer to the node with the given ID. It panics on
// out-of-range IDs, which indicate a malformed program (use Validate).
func (p *Program) Node(id NodeID) *Node {
	return &p.Nodes[id]
}

// AddNode appends a node and returns its ID.
func (p *Program) AddNode(n Node) NodeID {
	p.Nodes = append(p.Nodes, n)
	return NodeID(len(p.Nodes) - 1)
}

// InstallFunc registers a named total function for Call expressions.
func (p *Program) InstallFunc(f *Func) {
	if p.Funcs == nil {
		p.Funcs = make(map[string]*Func)
	}
	p.Funcs[f.Name] = f
}

// Variables returns every variable mentioned by the program (inputs,
// assignment targets, and variables read by expressions and predicates),
// sorted. The output variable is always included.
type varCollector struct{ set map[string]bool }

// Variables returns the sorted set of all variables the program mentions.
func (p *Program) Variables() []string {
	set := make(map[string]bool)
	for _, in := range p.Inputs {
		set[in] = true
	}
	set[p.OutputVar()] = true
	for i := range p.Nodes {
		n := &p.Nodes[i]
		switch n.Kind {
		case KindAssign:
			set[n.Target] = true
			if n.Expr != nil {
				n.Expr.AddVars(set)
			}
		case KindDecision:
			if n.Cond != nil {
				n.Cond.AddVars(set)
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

// Clone returns a deep-enough copy of the program: the node slice and the
// function table are copied; expression trees are shared (they are
// immutable after construction).
func (p *Program) Clone() *Program {
	q := &Program{
		Name:   p.Name,
		Inputs: append([]string(nil), p.Inputs...),
		Output: p.Output,
		Nodes:  append([]Node(nil), p.Nodes...),
		Start:  p.Start,
	}
	if p.Funcs != nil {
		q.Funcs = make(map[string]*Func, len(p.Funcs))
		for k, v := range p.Funcs {
			q.Funcs[k] = v
		}
	}
	return q
}

// Validate checks structural well-formedness: exactly one start box at
// p.Start, all successor IDs in range, assignment/decision payloads present,
// every call expression resolvable against the function table, at least one
// halt box reachable, and no successor pointing at the start box (the start
// box has in-degree zero in the paper's figures).
func (p *Program) Validate() error {
	if len(p.Nodes) == 0 {
		return fmt.Errorf("flowchart %q: no nodes", p.Name)
	}
	if p.Start < 0 || int(p.Start) >= len(p.Nodes) {
		return fmt.Errorf("flowchart %q: start id %d out of range", p.Name, p.Start)
	}
	if p.Nodes[p.Start].Kind != KindStart {
		return fmt.Errorf("flowchart %q: start node has kind %s", p.Name, p.Nodes[p.Start].Kind)
	}
	seenInputs := make(map[string]bool, len(p.Inputs))
	for _, in := range p.Inputs {
		if in == "" {
			return fmt.Errorf("flowchart %q: empty input name", p.Name)
		}
		if seenInputs[in] {
			return fmt.Errorf("flowchart %q: duplicate input %q", p.Name, in)
		}
		seenInputs[in] = true
	}
	starts := 0
	halts := 0
	for i := range p.Nodes {
		n := &p.Nodes[i]
		id := NodeID(i)
		switch n.Kind {
		case KindStart:
			starts++
			if id != p.Start {
				return fmt.Errorf("flowchart %q: extra start box at node %d", p.Name, i)
			}
			if err := p.checkSucc(id, n.Next); err != nil {
				return err
			}
		case KindAssign:
			if n.Target == "" {
				return fmt.Errorf("flowchart %q: assign box %d has no target", p.Name, i)
			}
			if n.Expr == nil {
				return fmt.Errorf("flowchart %q: assign box %d has no expression", p.Name, i)
			}
			if err := p.resolveCalls(n.Expr); err != nil {
				return fmt.Errorf("flowchart %q: assign box %d: %v", p.Name, i, err)
			}
			if err := p.checkSucc(id, n.Next); err != nil {
				return err
			}
		case KindDecision:
			if n.Cond == nil {
				return fmt.Errorf("flowchart %q: decision box %d has no predicate", p.Name, i)
			}
			if err := p.resolveCalls(n.Cond); err != nil {
				return fmt.Errorf("flowchart %q: decision box %d: %v", p.Name, i, err)
			}
			if err := p.checkSucc(id, n.True); err != nil {
				return err
			}
			if err := p.checkSucc(id, n.False); err != nil {
				return err
			}
		case KindHalt:
			halts++
		default:
			return fmt.Errorf("flowchart %q: node %d has unknown kind %d", p.Name, i, n.Kind)
		}
	}
	if starts != 1 {
		return fmt.Errorf("flowchart %q: %d start boxes, want exactly 1", p.Name, starts)
	}
	if halts == 0 {
		return fmt.Errorf("flowchart %q: no halt box", p.Name)
	}
	return nil
}

func (p *Program) checkSucc(from, to NodeID) error {
	if to < 0 || int(to) >= len(p.Nodes) {
		return fmt.Errorf("flowchart %q: node %d has successor %d out of range", p.Name, from, to)
	}
	if p.Nodes[to].Kind == KindStart {
		return fmt.Errorf("flowchart %q: node %d jumps back to the start box", p.Name, from)
	}
	return nil
}

// resolveCalls binds every Call expression in the tree to the program's
// function table, reporting unknown names and arity mismatches.
func (p *Program) resolveCalls(node interface{ AddVars(map[string]bool) }) error {
	var walkExpr func(e Expr) error
	var walkPred func(q Pred) error
	walkExpr = func(e Expr) error {
		switch x := e.(type) {
		case *Bin:
			if err := walkExpr(x.L); err != nil {
				return err
			}
			return walkExpr(x.R)
		case *Neg:
			return walkExpr(x.X)
		case *BitNot:
			return walkExpr(x.X)
		case *Cond:
			if err := walkPred(x.P); err != nil {
				return err
			}
			if err := walkExpr(x.A); err != nil {
				return err
			}
			return walkExpr(x.B)
		case *Call:
			f, ok := p.Funcs[x.Name]
			if !ok {
				return fmt.Errorf("call to unknown function %q", x.Name)
			}
			if f.Arity != len(x.Args) {
				return fmt.Errorf("function %q called with %d args, want %d", x.Name, len(x.Args), f.Arity)
			}
			x.Resolved = f
			for _, a := range x.Args {
				if err := walkExpr(a); err != nil {
					return err
				}
			}
			return nil
		default:
			return nil
		}
	}
	walkPred = func(q Pred) error {
		switch x := q.(type) {
		case *Cmp:
			if err := walkExpr(x.L); err != nil {
				return err
			}
			return walkExpr(x.R)
		case *Not:
			return walkPred(x.X)
		case *AndP:
			if err := walkPred(x.L); err != nil {
				return err
			}
			return walkPred(x.R)
		case *OrP:
			if err := walkPred(x.L); err != nil {
				return err
			}
			return walkPred(x.R)
		default:
			return nil
		}
	}
	switch x := node.(type) {
	case Expr:
		return walkExpr(x)
	case Pred:
		return walkPred(x)
	default:
		return nil
	}
}

// ------------------------------------------------------------------ builder

// Builder constructs programs programmatically. It is the API used by the
// surveillance and transform packages; examples and tests mostly use the
// DSL parser instead.
type Builder struct {
	p *Program
}

// NewBuilder starts a program with the given name and input variables. The
// start box is created immediately; wire its successor with SetNext or by
// making the first added statement node the entry via Entry().
func NewBuilder(name string, inputs ...string) *Builder {
	b := &Builder{p: &Program{Name: name, Inputs: inputs}}
	b.p.Start = b.p.AddNode(Node{Kind: KindStart, Next: NoNode})
	return b
}

// Program finalises and returns the program. It does not validate; call
// Program.Validate separately so callers can decide how to handle errors.
func (b *Builder) Program() *Program { return b.p }

// StartID returns the ID of the start box.
func (b *Builder) StartID() NodeID { return b.p.Start }

// Assign appends an assignment box target := e with unset successor.
func (b *Builder) Assign(target string, e Expr) NodeID {
	return b.p.AddNode(Node{Kind: KindAssign, Target: target, Expr: e, Next: NoNode})
}

// Decision appends a decision box with unset successors.
func (b *Builder) Decision(cond Pred) NodeID {
	return b.p.AddNode(Node{Kind: KindDecision, Cond: cond, True: NoNode, False: NoNode})
}

// Halt appends a normal halt box.
func (b *Builder) Halt() NodeID {
	return b.p.AddNode(Node{Kind: KindHalt})
}

// ViolationHalt appends a halt box that yields a violation notice.
func (b *Builder) ViolationHalt(notice string) NodeID {
	return b.p.AddNode(Node{Kind: KindHalt, Violation: true, Notice: notice})
}

// SetNext wires the single successor of a start or assignment box.
func (b *Builder) SetNext(from, to NodeID) {
	n := b.p.Node(from)
	switch n.Kind {
	case KindStart, KindAssign:
		n.Next = to
	default:
		panic(fmt.Sprintf("flowchart: SetNext on %s box", n.Kind))
	}
}

// SetBranch wires both successors of a decision box.
func (b *Builder) SetBranch(from, onTrue, onFalse NodeID) {
	n := b.p.Node(from)
	if n.Kind != KindDecision {
		panic(fmt.Sprintf("flowchart: SetBranch on %s box", n.Kind))
	}
	n.True = onTrue
	n.False = onFalse
}

// Seq wires a linear chain: start/assign nodes are linked in order; the
// final node's successor is left untouched. It panics if an interior node
// is a decision or halt box.
func (b *Builder) Seq(ids ...NodeID) {
	for i := 0; i+1 < len(ids); i++ {
		b.SetNext(ids[i], ids[i+1])
	}
}

// ---------------------------------------------------------------- identifiers

// ReservedMarker is the character reserved for instrumentation-generated
// variables (surveillance shadows like "x1#" and the program-counter class
// "C#"). The DSL lexer rejects it in user identifiers, so instrumented
// variables can never collide with user variables.
const ReservedMarker = '#'

// ValidUserIdent reports whether name is a legal user-written identifier:
// a letter or underscore followed by letters, digits, or underscores, with
// no reserved marker.
func ValidUserIdent(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return !strings.ContainsRune(name, ReservedMarker)
}

// ShadowVar returns the surveillance variable name for v (the paper's v̄).
func ShadowVar(v string) string { return v + string(ReservedMarker) }

// IsShadowVar reports whether name is an instrumentation-generated shadow.
func IsShadowVar(name string) bool {
	return strings.HasSuffix(name, string(ReservedMarker))
}

// CounterShadow is the shadow variable of the program counter (the paper's
// C̄).
const CounterShadow = "C#"
