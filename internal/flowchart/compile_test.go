package flowchart

import (
	"errors"
	"testing"
)

func TestCompiledMatchesInterpreter(t *testing.T) {
	sources := []string{
		progE3,
		"inputs x\nLoop: if x == 0 goto Done else Body\nBody: x := x - 1\n goto Loop\nDone: y := 1\n halt\n",
		"inputs a b\n y := ite(a == b, a * 3, a &^ b) % 5\n halt\n",
		"inputs a b\n if (a == 0) && (b > 1 || a >= b) goto T else F\nT: y := -a\n halt\nF: y := ^b\n halt\n",
		"inputs a\n y := a / 0 + a % 0\n halt\n",
	}
	for _, src := range sources {
		p := MustParse(src)
		c, err := p.Compile()
		if err != nil {
			t.Fatalf("compile: %v\n%s", err, src)
		}
		for v1 := int64(-3); v1 <= 3; v1++ {
			for v2 := int64(-3); v2 <= 3; v2++ {
				in := make([]int64, p.Arity())
				if len(in) > 0 {
					in[0] = v1
				}
				if len(in) > 1 {
					in[1] = v2
				}
				ri, erri := p.RunBudget(in, 4096, nil)
				rc, errc := c.Run(in, 4096)
				if (erri == nil) != (errc == nil) {
					t.Fatalf("error divergence on %v: %v vs %v", in, erri, errc)
				}
				if erri == nil && ri != rc {
					t.Fatalf("result divergence on %v: %+v vs %+v\n%s", in, ri, rc, src)
				}
			}
		}
	}
}

func TestCompiledStepLimit(t *testing.T) {
	p := MustParse(`
inputs x
Loop: x := x + 1
      if x == x + 1 goto Done else Loop
Done: halt
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run([]int64{0}, 50); !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestCompiledArity(t *testing.T) {
	p := MustParse("inputs a b\n y := a\n halt\n")
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run([]int64{1}, 100); !errors.Is(err, ErrArity) {
		t.Errorf("err = %v, want ErrArity", err)
	}
}

func TestCompileInvalidProgram(t *testing.T) {
	p := &Program{Name: "bad"}
	if _, err := p.Compile(); err == nil {
		t.Error("invalid program compiled")
	}
}

func TestCompiledWithCalls(t *testing.T) {
	sq := &Func{Name: "sq", Arity: 1, Fn: func(a []int64) int64 { return a[0] * a[0] }}
	p, err := ParseWithOptions("inputs x\n y := sq(x + 1)\n halt\n", ParseOptions{Funcs: []*Func{sq}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]int64{5}, 100)
	if err != nil || r.Value != 36 {
		t.Errorf("sq(6) = %+v, %v", r, err)
	}
}

func TestCompiledViolationHalts(t *testing.T) {
	p := MustParse(`
inputs x
    if x < 0 goto Bad else OK
Bad: violation "negative"
OK:  y := x
     halt
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run([]int64{-1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Violation || r.Notice != "negative" {
		t.Errorf("violation = %+v", r)
	}
}

func TestCompiledSlots(t *testing.T) {
	p := MustParse(progE3) // variables: x1 x2 r y
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Slots() != 4 {
		t.Errorf("Slots = %d, want 4", c.Slots())
	}
}

func TestRunReuseMatchesRun(t *testing.T) {
	p := MustParse(progE3)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]int64, c.Slots())
	for v1 := int64(-2); v1 <= 2; v1++ {
		for v2 := int64(-2); v2 <= 2; v2++ {
			in := []int64{v1, v2}
			fresh, err1 := c.Run(in, 4096)
			reused, err2 := c.RunReuse(regs, in, 4096)
			if err1 != nil || err2 != nil {
				t.Fatalf("run errors: %v, %v", err1, err2)
			}
			if fresh != reused {
				t.Fatalf("RunReuse diverged on %v: %+v vs %+v", in, fresh, reused)
			}
		}
	}
	if _, err := c.RunReuse(make([]int64, c.Slots()-1), []int64{0, 0}, 100); err == nil {
		t.Error("undersized register file accepted")
	}
}
