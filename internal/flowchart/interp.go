package flowchart

import (
	"errors"
	"fmt"
)

// Result is the outcome of executing a flowchart.
//
// Under the observability postulate the output of a program may be taken to
// be either Value alone (time unobservable) or the pair (Value, Steps)
// (time observable); Section 3 of the paper studies both cases. Steps is
// the number of boxes executed, including the start and halt boxes.
type Result struct {
	Value     int64
	Steps     int64
	Violation bool
	Notice    string
}

// String renders a result; violation notices print as the paper's Λ.
func (r Result) String() string {
	if r.Violation {
		if r.Notice == "" {
			return fmt.Sprintf("Λ (steps=%d)", r.Steps)
		}
		return fmt.Sprintf("Λ[%s] (steps=%d)", r.Notice, r.Steps)
	}
	return fmt.Sprintf("%d (steps=%d)", r.Value, r.Steps)
}

// ErrStepLimit is returned when execution exceeds the step budget. The
// paper assumes programs are total functions; the budget turns a violation
// of that assumption into an error distinct from any violation notice.
var ErrStepLimit = errors.New("flowchart: step limit exceeded (program may not be total)")

// ErrArity is returned when the input vector length does not match the
// program's arity.
var ErrArity = errors.New("flowchart: input arity mismatch")

// DefaultMaxSteps is the step budget used by Run.
const DefaultMaxSteps = 1 << 20

// Tracer receives a callback before each box executes. Env must not be
// mutated by the tracer.
type Tracer func(id NodeID, n *Node, env Env)

// Run executes the program on the given inputs with the default step
// budget.
func (p *Program) Run(inputs []int64) (Result, error) {
	return p.RunBudget(inputs, DefaultMaxSteps, nil)
}

// RunBudget executes the program with an explicit step budget and an
// optional tracer.
//
// Execution begins at the start box with every program and output variable
// initialised to 0 and input variable xi initialised to inputs[i-1],
// exactly as in Section 3. At a decision box the branch corresponding to
// the predicate's truth value is taken. Execution ends at a halt box; the
// result carries the output variable's value (or a violation notice) and
// the number of boxes executed.
func (p *Program) RunBudget(inputs []int64, maxSteps int64, trace Tracer) (Result, error) {
	if len(inputs) != len(p.Inputs) {
		return Result{}, fmt.Errorf("%w: got %d inputs, program %q wants %d",
			ErrArity, len(inputs), p.Name, len(p.Inputs))
	}
	env := make(Env, len(p.Inputs)+8)
	for i, name := range p.Inputs {
		env[name] = inputs[i]
	}
	var steps int64
	id := p.Start
	for {
		if steps >= maxSteps {
			return Result{Steps: steps}, fmt.Errorf("%w: budget %d, program %q", ErrStepLimit, maxSteps, p.Name)
		}
		if id < 0 || int(id) >= len(p.Nodes) {
			return Result{Steps: steps}, fmt.Errorf("flowchart %q: control reached invalid node %d", p.Name, id)
		}
		n := &p.Nodes[id]
		if trace != nil {
			trace(id, n, env)
		}
		steps++
		switch n.Kind {
		case KindStart:
			id = n.Next
		case KindAssign:
			env[n.Target] = n.Expr.Eval(env)
			id = n.Next
		case KindDecision:
			if n.Cond.Eval(env) {
				id = n.True
			} else {
				id = n.False
			}
		case KindHalt:
			if n.Violation {
				return Result{Steps: steps, Violation: true, Notice: n.Notice}, nil
			}
			return Result{Value: env.Get(p.OutputVar()), Steps: steps}, nil
		default:
			return Result{Steps: steps}, fmt.Errorf("flowchart %q: node %d has unknown kind %d", p.Name, id, n.Kind)
		}
	}
}

// RunEnv executes the program and additionally returns the final
// environment. It is used by tests and by mechanisms that inspect shadow
// variables after a run.
func (p *Program) RunEnv(inputs []int64, maxSteps int64) (Result, Env, error) {
	if len(inputs) != len(p.Inputs) {
		return Result{}, nil, fmt.Errorf("%w: got %d inputs, program %q wants %d",
			ErrArity, len(inputs), p.Name, len(p.Inputs))
	}
	env := make(Env, len(p.Inputs)+8)
	for i, name := range p.Inputs {
		env[name] = inputs[i]
	}
	var steps int64
	id := p.Start
	for {
		if steps >= maxSteps {
			return Result{Steps: steps}, env, fmt.Errorf("%w: budget %d, program %q", ErrStepLimit, maxSteps, p.Name)
		}
		n := &p.Nodes[id]
		steps++
		switch n.Kind {
		case KindStart:
			id = n.Next
		case KindAssign:
			env[n.Target] = n.Expr.Eval(env)
			id = n.Next
		case KindDecision:
			if n.Cond.Eval(env) {
				id = n.True
			} else {
				id = n.False
			}
		case KindHalt:
			if n.Violation {
				return Result{Steps: steps, Violation: true, Notice: n.Notice}, env, nil
			}
			return Result{Value: env.Get(p.OutputVar()), Steps: steps}, env, nil
		default:
			return Result{Steps: steps}, env, fmt.Errorf("flowchart %q: node %d has unknown kind %d", p.Name, id, n.Kind)
		}
	}
}
