package flowchart

import (
	"fmt"
	"strconv"
	"strings"
)

// tokKind classifies DSL tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokString
	tokAssignOp // :=
	tokColon    // :
	tokComma    // ,
	tokLParen   // (
	tokRParen   // )
	tokOp       // arithmetic / comparison / boolean operator
)

type token struct {
	kind tokKind
	text string
	num  int64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "end of line"
	case tokNumber:
		return fmt.Sprintf("number %d", t.num)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexError is a scan error with a line number.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

// lex scans DSL source into tokens. Comments run from "//" to end of line.
// Newlines are significant (they terminate statements) and are emitted as
// tokens; consecutive newlines collapse to one.
func lex(src string, allowShadows bool) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	emit := func(t token) { toks = append(toks, t) }
	lastWasNewline := true // swallow leading blank lines
	emitNewline := func() {
		if !lastWasNewline {
			emit(token{kind: tokNewline, line: line})
			lastWasNewline = true
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			emitNewline()
			line++
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			continue
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
			continue
		}
		lastWasNewline = false
		switch {
		case isIdentStart(c):
			start := i
			for i < n && (isIdentStart(src[i]) || isDigit(src[i]) || (allowShadows && src[i] == byte(ReservedMarker))) {
				i++
			}
			emit(token{kind: tokIdent, text: src[start:i], line: line})
		case isDigit(c):
			start := i
			for i < n && isDigit(src[i]) {
				i++
			}
			v, err := strconv.ParseInt(src[start:i], 10, 64)
			if err != nil {
				return nil, &lexError{line, fmt.Sprintf("bad number %q: %v", src[start:i], err)}
			}
			emit(token{kind: tokNumber, num: v, line: line})
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < n && src[j] != '"' {
				if src[j] == '\n' {
					return nil, &lexError{line, "unterminated string"}
				}
				if src[j] == '\\' && j+1 < n {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= n {
				return nil, &lexError{line, "unterminated string"}
			}
			emit(token{kind: tokString, text: sb.String(), line: line})
			i = j + 1
		case c == ':':
			if i+1 < n && src[i+1] == '=' {
				emit(token{kind: tokAssignOp, text: ":=", line: line})
				i += 2
			} else {
				emit(token{kind: tokColon, text: ":", line: line})
				i++
			}
		case c == ',':
			emit(token{kind: tokComma, text: ",", line: line})
			i++
		case c == '(':
			emit(token{kind: tokLParen, text: "(", line: line})
			i++
		case c == ')':
			emit(token{kind: tokRParen, text: ")", line: line})
			i++
		default:
			op, width := scanOp(src[i:])
			if op == "" {
				return nil, &lexError{line, fmt.Sprintf("unexpected character %q", c)}
			}
			emit(token{kind: tokOp, text: op, line: line})
			i += width
		}
	}
	emitNewline()
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

// scanOp greedily matches the longest operator at the front of s.
func scanOp(s string) (string, int) {
	two := []string{"==", "!=", "<=", ">=", "&&", "||", "&^"}
	if len(s) >= 2 {
		for _, op := range two {
			if s[:2] == op {
				return op, 2
			}
		}
	}
	switch s[0] {
	case '+', '-', '*', '/', '%', '&', '|', '^', '<', '>', '!':
		return s[:1], 1
	}
	return "", 0
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
