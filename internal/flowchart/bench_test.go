package flowchart

import "testing"

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(progE3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrint(b *testing.B) {
	p := MustParse(progE3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Print(p)
	}
}

func BenchmarkInterpret(b *testing.B) {
	p := MustParse(`
inputs x
Loop: if x == 0 goto Done else Body
Body: x := x - 1
      goto Loop
Done: y := 1
      halt
`)
	in := []int64{256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunBudget(in, DefaultMaxSteps, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompiledRun(b *testing.B) {
	p := MustParse(`
inputs x
Loop: if x == 0 goto Done else Body
Body: x := x - 1
      goto Loop
Done: y := 1
      halt
`)
	c, err := p.Compile()
	if err != nil {
		b.Fatal(err)
	}
	in := []int64{256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(in, DefaultMaxSteps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompile(b *testing.B) {
	p := MustParse(progE3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}
