package flowchart

import (
	"fmt"
	"strings"
)

// Print renders the program in DSL syntax. The output re-parses (with
// ParseOptions.AllowShadows set when the program contains instrumentation
// variables) to a behaviourally identical program; reachable nodes are
// emitted in depth-first order from the start box, unreachable nodes after
// them.
func Print(p *Program) string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "program %s\n", p.Name)
	}
	fmt.Fprintf(&b, "inputs %s\n", strings.Join(p.Inputs, " "))
	if p.Output != "" && p.Output != DefaultOutput {
		fmt.Fprintf(&b, "output %s\n", p.Output)
	}
	b.WriteString("\n")

	order, reachable := printOrder(p)
	// A node needs a label if any edge other than the immediately preceding
	// fallthrough targets it.
	needLabel := make([]bool, len(p.Nodes))
	posInOrder := make([]int, len(p.Nodes))
	for i := range posInOrder {
		posInOrder[i] = -1
	}
	for pos, id := range order {
		posInOrder[id] = pos
	}
	fallsTo := func(pos int, target NodeID) bool {
		return posInOrder[target] == pos+1
	}
	for pos, id := range order {
		n := &p.Nodes[id]
		switch n.Kind {
		case KindStart, KindAssign:
			if !fallsTo(pos, n.Next) {
				needLabel[n.Next] = true
			}
		case KindDecision:
			needLabel[n.True] = true
			needLabel[n.False] = true
		}
	}
	labelOf := makeLabels(p, order, needLabel)

	emitted := 0
	for pos, id := range order {
		n := &p.Nodes[id]
		if n.Kind == KindStart {
			// The start box is implicit in the DSL; if it does not fall
			// through to the next emitted node, emit an explicit goto.
			if !fallsTo(pos, n.Next) {
				fmt.Fprintf(&b, "    goto %s\n", labelOf[n.Next])
			}
			continue
		}
		prefix := "    "
		if needLabel[id] {
			prefix = fmt.Sprintf("%s: ", labelOf[id])
		}
		switch n.Kind {
		case KindAssign:
			fmt.Fprintf(&b, "%s%s := %s\n", prefix, n.Target, n.Expr)
			if !fallsTo(pos, n.Next) {
				fmt.Fprintf(&b, "    goto %s\n", labelOf[n.Next])
			}
		case KindDecision:
			fmt.Fprintf(&b, "%sif %s goto %s else %s\n", prefix, n.Cond, labelOf[n.True], labelOf[n.False])
		case KindHalt:
			if n.Violation {
				if n.Notice != "" {
					fmt.Fprintf(&b, "%sviolation %q\n", prefix, n.Notice)
				} else {
					fmt.Fprintf(&b, "%sviolation\n", prefix)
				}
			} else {
				fmt.Fprintf(&b, "%shalt\n", prefix)
			}
		}
		emitted++
	}
	_ = reachable
	return b.String()
}

// printOrder returns node IDs in emission order: depth-first from the start
// (false branch explored before returning to true-branch continuation so
// that fallthrough chains stay contiguous), followed by unreachable nodes.
func printOrder(p *Program) (order []NodeID, reachable []bool) {
	reachable = make([]bool, len(p.Nodes))
	var visit func(id NodeID)
	visit = func(id NodeID) {
		for id != NoNode && int(id) < len(p.Nodes) && !reachable[id] {
			reachable[id] = true
			order = append(order, id)
			n := &p.Nodes[id]
			switch n.Kind {
			case KindStart, KindAssign:
				id = n.Next
			case KindDecision:
				// Emit the true arm as the fallthrough chain, then the
				// false arm; labels make the order immaterial.
				visit(n.True)
				id = n.False
			default:
				return
			}
		}
	}
	visit(p.Start)
	for i := range p.Nodes {
		if !reachable[i] {
			order = append(order, NodeID(i))
		}
	}
	return order, reachable
}

// makeLabels assigns a printable label to every node that needs one,
// preferring the node's own Label when it is unique.
func makeLabels(p *Program, order []NodeID, need []bool) map[NodeID]string {
	used := make(map[string]bool)
	labels := make(map[NodeID]string, len(p.Nodes))
	for _, id := range order {
		if !need[id] {
			continue
		}
		lab := p.Nodes[id].Label
		if lab == "" || used[lab] {
			lab = ""
		}
		if lab != "" {
			labels[id] = lab
			used[lab] = true
		}
	}
	seq := 0
	for _, id := range order {
		if !need[id] || labels[id] != "" {
			continue
		}
		for {
			cand := fmt.Sprintf("L%d", seq)
			seq++
			if !used[cand] {
				labels[id] = cand
				used[cand] = true
				break
			}
		}
	}
	return labels
}

// Dot renders the flowchart in Graphviz dot syntax, with the box shapes of
// the paper's figures: ovals for start/halt, rectangles for assignments,
// diamonds for decisions.
func Dot(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", p.Name)
	b.WriteString("  node [fontname=\"monospace\"];\n")
	for i := range p.Nodes {
		n := &p.Nodes[i]
		var shape, label string
		switch n.Kind {
		case KindStart:
			shape, label = "oval", "START"
		case KindAssign:
			shape, label = "box", fmt.Sprintf("%s := %s", n.Target, n.Expr)
		case KindDecision:
			shape, label = "diamond", n.Cond.String()
		case KindHalt:
			shape = "oval"
			if n.Violation {
				label = "Λ"
				if n.Notice != "" {
					label = "Λ: " + n.Notice
				}
			} else {
				label = "HALT"
			}
		}
		fmt.Fprintf(&b, "  n%d [shape=%s, label=%q];\n", i, shape, label)
	}
	for i := range p.Nodes {
		n := &p.Nodes[i]
		switch n.Kind {
		case KindStart, KindAssign:
			fmt.Fprintf(&b, "  n%d -> n%d;\n", i, n.Next)
		case KindDecision:
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"T\"];\n", i, n.True)
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"F\"];\n", i, n.False)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
