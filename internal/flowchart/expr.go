// Package flowchart implements the flowchart programming language of
// Section 3 of Jones & Lipton: finite connected directed graphs of start,
// decision, assignment, and halt boxes over integer variables.
//
// The paper allows "any reasonable choice" of predicates and expressions so
// long as they are recursive; we provide total integer arithmetic
// (division and remainder by zero yield 0, so every expression is a total
// function, matching the paper's totality assumption), bitwise operations
// (which let the surveillance transformation of Section 3 express set union
// on index-set bitmasks inside the language itself), and a constant-time
// conditional select ite(p, a, b) used by the if-then-else transform of
// Section 4.
//
// Running time is modelled as the number of boxes executed, which the paper
// explicitly admits as a time measure. Each box costs one step regardless of
// its expression, matching the Section 3 requirement that expressions be
// implementable in time independent of data values.
package flowchart

import (
	"fmt"
	"math"
	"strings"
)

// Env holds the current value of every variable during execution. Absent
// variables read as 0, matching the paper's initialisation of program and
// output variables.
type Env map[string]int64

// Get returns the value of name, 0 if unset.
func (e Env) Get(name string) int64 { return e[name] }

// Set assigns name := v.
func (e Env) Set(name string, v int64) { e[name] = v }

// Clone returns an independent copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Expr is an integer-valued expression E(w1,...,wp) appearing in an
// assignment box. All expressions are total.
type Expr interface {
	// Eval computes the expression's value in env.
	Eval(env Env) int64
	// AddVars inserts every variable mentioned by the expression into set.
	// The surveillance transformation uses this to form w̄1 ∪ ... ∪ w̄p.
	AddVars(set map[string]bool)
	// String renders the expression in DSL syntax.
	String() string
}

// Pred is a boolean-valued predicate B(w1,...,wp) appearing in a decision
// box. All predicates are total.
type Pred interface {
	Eval(env Env) bool
	AddVars(set map[string]bool)
	String() string
}

// Vars returns the sorted variable set of an expression or predicate. The
// argument may be an Expr or a Pred.
func Vars(node interface{ AddVars(map[string]bool) }) []string {
	set := make(map[string]bool)
	node.AddVars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	// Insertion sort: variable lists are tiny and this avoids an import.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ---------------------------------------------------------------- literals

// Const is an integer literal.
type Const int64

// C is shorthand for Const(v) in programmatic construction.
func C(v int64) Const { return Const(v) }

// Eval implements Expr.
func (c Const) Eval(Env) int64          { return int64(c) }
func (c Const) AddVars(map[string]bool) {}
func (c Const) String() string          { return fmt.Sprintf("%d", int64(c)) }

// Var is a variable reference.
type Var string

// V is shorthand for Var(name) in programmatic construction.
func V(name string) Var { return Var(name) }

// Eval implements Expr.
func (v Var) Eval(env Env) int64          { return env.Get(string(v)) }
func (v Var) AddVars(set map[string]bool) { set[string(v)] = true }
func (v Var) String() string              { return string(v) }

// ------------------------------------------------------------- arithmetic

// BinOp identifies a binary integer operator.
type BinOp uint8

// Binary operators. Division and remainder are total: x/0 = 0 and x%0 = 0,
// and MinInt64 / -1 = MinInt64 (wrapping), so that every flowchart denotes a
// total function as the paper requires.
const (
	OpAdd    BinOp = iota // +
	OpSub                 // -
	OpMul                 // *
	OpDiv                 // / (total)
	OpMod                 // % (total)
	OpAnd                 // & (set intersection on index masks)
	OpOr                  // | (set union on index masks)
	OpXor                 // ^
	OpAndNot              // &^ (set difference on index masks)
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpAndNot: "&^",
}

// String returns the operator's DSL spelling.
func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("BinOp(%d)", uint8(op))
}

// precedence groups for printing: higher binds tighter.
func (op BinOp) precedence() int {
	switch op {
	case OpMul, OpDiv, OpMod, OpAnd, OpAndNot:
		return 5
	default: // + - | ^
		return 4
	}
}

// Bin is a binary arithmetic/bitwise expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// B is shorthand for &Bin{op, l, r}.
func B(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Add returns l + r.
func Add(l, r Expr) *Bin { return B(OpAdd, l, r) }

// Sub returns l - r.
func Sub(l, r Expr) *Bin { return B(OpSub, l, r) }

// Mul returns l * r.
func Mul(l, r Expr) *Bin { return B(OpMul, l, r) }

// Or returns l | r, set union on index masks.
func Or(l, r Expr) *Bin { return B(OpOr, l, r) }

// Eval implements Expr with total semantics.
func (b *Bin) Eval(env Env) int64 {
	l := b.L.Eval(env)
	r := b.R.Eval(env)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		if r == 0 {
			return 0
		}
		if l == math.MinInt64 && r == -1 {
			return math.MinInt64
		}
		return l / r
	case OpMod:
		if r == 0 {
			return 0
		}
		if l == math.MinInt64 && r == -1 {
			return 0
		}
		return l % r
	case OpAnd:
		return l & r
	case OpOr:
		return l | r
	case OpXor:
		return l ^ r
	case OpAndNot:
		return l &^ r
	default:
		panic(fmt.Sprintf("flowchart: unknown binary op %d", b.Op))
	}
}

// AddVars implements Expr.
func (b *Bin) AddVars(set map[string]bool) {
	b.L.AddVars(set)
	b.R.AddVars(set)
}

// String implements Expr, parenthesising by precedence.
func (b *Bin) String() string {
	return fmt.Sprintf("%s %s %s",
		childString(b.L, b.Op.precedence(), false),
		b.Op, childString(b.R, b.Op.precedence(), true))
}

// childString parenthesises child if it binds looser than parent (or equal,
// on the right, since all our operators are left-associative).
func childString(e Expr, parentPrec int, right bool) string {
	var p int
	switch c := e.(type) {
	case *Bin:
		p = c.Op.precedence()
	default:
		return e.String()
	}
	if p < parentPrec || (p == parentPrec && right) {
		return "(" + e.String() + ")"
	}
	return e.String()
}

// Neg is unary minus.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n *Neg) Eval(env Env) int64          { return -n.X.Eval(env) }
func (n *Neg) AddVars(set map[string]bool) { n.X.AddVars(set) }
func (n *Neg) String() string              { return "-" + atomString(n.X) }

// BitNot is unary bitwise complement (^x in Go syntax).
type BitNot struct{ X Expr }

// Eval implements Expr.
func (n *BitNot) Eval(env Env) int64          { return ^n.X.Eval(env) }
func (n *BitNot) AddVars(set map[string]bool) { n.X.AddVars(set) }
func (n *BitNot) String() string              { return "^" + atomString(n.X) }

func atomString(e Expr) string {
	switch e.(type) {
	case Const, Var:
		return e.String()
	case *Call:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// Cond is the constant-time conditional select ite(p, a, b): its value is a
// if p holds, b otherwise. Both arms are always evaluated, so evaluation
// time is independent of the data — this is the "f(x1)" selection function
// of Example 7, and the vehicle of the if-then-else transform.
type Cond struct {
	P    Pred
	A, B Expr
}

// Ite is shorthand for &Cond{p, a, b}.
func Ite(p Pred, a, b Expr) *Cond { return &Cond{P: p, A: a, B: b} }

// Eval implements Expr; note both arms are evaluated unconditionally.
func (c *Cond) Eval(env Env) int64 {
	a := c.A.Eval(env)
	b := c.B.Eval(env)
	if c.P.Eval(env) {
		return a
	}
	return b
}

// AddVars implements Expr.
func (c *Cond) AddVars(set map[string]bool) {
	c.P.AddVars(set)
	c.A.AddVars(set)
	c.B.AddVars(set)
}

// String implements Expr.
func (c *Cond) String() string {
	return fmt.Sprintf("ite(%s, %s, %s)", c.P, c.A, c.B)
}

// Func is a named total function that may be installed in a program's
// function table and invoked by Call expressions. It lets examples model
// the paper's arbitrary total functions A(x) (Theorem 4) and tabulated
// selection functions f(x1) (Example 7).
type Func struct {
	Name  string
	Arity int
	Fn    func(args []int64) int64
}

// Call invokes a named function from the enclosing program's function table.
// The binding is resolved at validation time; Resolved caches the function.
type Call struct {
	Name     string
	Args     []Expr
	Resolved *Func
}

// Eval implements Expr. Calling an unresolved function yields 0 (total
// semantics); Program.Validate reports unresolved calls as errors before
// execution, so this is defensive only.
func (c *Call) Eval(env Env) int64 {
	if c.Resolved == nil || c.Resolved.Fn == nil {
		return 0
	}
	args := make([]int64, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.Eval(env)
	}
	return c.Resolved.Fn(args)
}

// AddVars implements Expr.
func (c *Call) AddVars(set map[string]bool) {
	for _, a := range c.Args {
		a.AddVars(set)
	}
}

// String implements Expr.
func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

// ------------------------------------------------------------- predicates

// CmpOp identifies a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota // ==
	CmpNe              // !=
	CmpLt              // <
	CmpLe              // <=
	CmpGt              // >
	CmpGe              // >=
)

var cmpOpNames = [...]string{
	CmpEq: "==", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
}

// String returns the operator's DSL spelling.
func (op CmpOp) String() string {
	if int(op) < len(cmpOpNames) {
		return cmpOpNames[op]
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(op))
}

// Cmp compares two integer expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eq returns l == r.
func Eq(l, r Expr) *Cmp { return &Cmp{Op: CmpEq, L: l, R: r} }

// Ne returns l != r.
func Ne(l, r Expr) *Cmp { return &Cmp{Op: CmpNe, L: l, R: r} }

// Lt returns l < r.
func Lt(l, r Expr) *Cmp { return &Cmp{Op: CmpLt, L: l, R: r} }

// Le returns l <= r.
func Le(l, r Expr) *Cmp { return &Cmp{Op: CmpLe, L: l, R: r} }

// Gt returns l > r.
func Gt(l, r Expr) *Cmp { return &Cmp{Op: CmpGt, L: l, R: r} }

// Ge returns l >= r.
func Ge(l, r Expr) *Cmp { return &Cmp{Op: CmpGe, L: l, R: r} }

// Eval implements Pred.
func (c *Cmp) Eval(env Env) bool {
	l := c.L.Eval(env)
	r := c.R.Eval(env)
	switch c.Op {
	case CmpEq:
		return l == r
	case CmpNe:
		return l != r
	case CmpLt:
		return l < r
	case CmpLe:
		return l <= r
	case CmpGt:
		return l > r
	case CmpGe:
		return l >= r
	default:
		panic(fmt.Sprintf("flowchart: unknown comparison op %d", c.Op))
	}
}

// AddVars implements Pred.
func (c *Cmp) AddVars(set map[string]bool) {
	c.L.AddVars(set)
	c.R.AddVars(set)
}

// String implements Pred.
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}

// BoolConst is the constant predicate true or false.
type BoolConst bool

// Eval implements Pred.
func (b BoolConst) Eval(Env) bool           { return bool(b) }
func (b BoolConst) AddVars(map[string]bool) {}
func (b BoolConst) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Not negates a predicate.
type Not struct{ X Pred }

// Eval implements Pred.
func (n *Not) Eval(env Env) bool           { return !n.X.Eval(env) }
func (n *Not) AddVars(set map[string]bool) { n.X.AddVars(set) }
func (n *Not) String() string {
	switch n.X.(type) {
	case BoolConst:
		return "!" + n.X.String()
	default:
		return "!(" + n.X.String() + ")"
	}
}

// AndP is predicate conjunction. Both operands are always evaluated
// (no short-circuit), keeping evaluation time data-independent.
type AndP struct{ L, R Pred }

// Eval implements Pred.
func (a *AndP) Eval(env Env) bool {
	l := a.L.Eval(env)
	r := a.R.Eval(env)
	return l && r
}

// AddVars implements Pred.
func (a *AndP) AddVars(set map[string]bool) {
	a.L.AddVars(set)
	a.R.AddVars(set)
}

// String implements Pred.
func (a *AndP) String() string {
	return predChild(a.L, 2) + " && " + predChild(a.R, 2)
}

// OrP is predicate disjunction, also without short-circuit.
type OrP struct{ L, R Pred }

// Eval implements Pred.
func (o *OrP) Eval(env Env) bool {
	l := o.L.Eval(env)
	r := o.R.Eval(env)
	return l || r
}

// AddVars implements Pred.
func (o *OrP) AddVars(set map[string]bool) {
	o.L.AddVars(set)
	o.R.AddVars(set)
}

// String implements Pred.
func (o *OrP) String() string {
	return predChild(o.L, 1) + " || " + predChild(o.R, 1)
}

func predPrecedence(p Pred) int {
	switch p.(type) {
	case *OrP:
		return 1
	case *AndP:
		return 2
	default:
		return 3
	}
}

func predChild(p Pred, parentPrec int) string {
	if predPrecedence(p) < parentPrec {
		return "(" + p.String() + ")"
	}
	return p.String()
}
