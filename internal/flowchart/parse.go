package flowchart

import (
	"fmt"
)

// ParseOptions controls DSL parsing.
type ParseOptions struct {
	// AllowShadows permits instrumentation-generated identifiers (those
	// containing the reserved marker '#'), so that printed instrumented
	// programs can be re-parsed. User programs must leave this false.
	AllowShadows bool
	// Funcs is an optional function table made available to call
	// expressions in the parsed program.
	Funcs []*Func
}

// Parse parses a program in the flowchart DSL. The syntax, line oriented
// with // comments:
//
//	program NAME            // optional
//	inputs x1 x2 ...        // zero or more input variables
//	output y                // optional, default "y"
//
//	L1: r := x1 + 2         // assignment, fallthrough to next line
//	    if x2 == 0 goto L2 else L3
//	L2: halt                // halt with the output variable's value
//	L3: violation "denied"  // halt with a violation notice
//	    goto L1             // explicit transfer
//
// A label may also stand on a line of its own and attaches to the next
// statement. The paper's flowcharts translate line by line.
func Parse(src string) (*Program, error) {
	return ParseWithOptions(src, ParseOptions{})
}

// MustParse is Parse but panics on error; for program literals in tests,
// examples, and experiment definitions.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseWithOptions parses with explicit options.
func ParseWithOptions(src string, opts ParseOptions) (*Program, error) {
	toks, err := lex(src, opts.AllowShadows)
	if err != nil {
		return nil, err
	}
	pr := &parser{toks: toks, opts: opts}
	prog, err := pr.parseProgram()
	if err != nil {
		return nil, err
	}
	for _, f := range opts.Funcs {
		prog.InstallFunc(f)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// stmtKind classifies parsed statements before lowering to nodes.
type stmtKind uint8

const (
	stmtAssign stmtKind = iota
	stmtIf
	stmtGoto
	stmtHalt
	stmtViolation
)

type stmt struct {
	kind   stmtKind
	labels []string
	line   int

	target  string // assign
	expr    Expr   // assign
	cond    Pred   // if
	onTrue  string // if
	onFalse string // if
	dest    string // goto
	notice  string // violation
}

type parser struct {
	toks []token
	pos  int
	opts ParseOptions
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.next()
	}
}

func (p *parser) expectIdent(what string) (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) expectOp(op string) error {
	t := p.next()
	if t.kind != tokOp || t.text != op {
		return p.errf(t, "expected %q, got %s", op, t)
	}
	return nil
}

func (p *parser) endOfStatement() error {
	t := p.next()
	if t.kind != tokNewline && t.kind != tokEOF {
		return p.errf(t, "unexpected %s at end of statement", t)
	}
	return nil
}

func isKeyword(s string) bool {
	switch s {
	case "program", "inputs", "output", "if", "goto", "else", "halt",
		"violation", "true", "false", "ite":
		return true
	}
	return false
}

func (p *parser) checkIdent(t token, what string) error {
	if isKeyword(t.text) {
		return p.errf(t, "keyword %q cannot be used as %s", t.text, what)
	}
	if !p.opts.AllowShadows && !ValidUserIdent(t.text) {
		return p.errf(t, "invalid %s %q", what, t.text)
	}
	return nil
}

// parseProgram handles headers and the statement list, then lowers to a
// node graph.
func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{Name: "main"}
	p.skipNewlines()
	// Headers.
	for p.peek().kind == tokIdent {
		switch p.peek().text {
		case "program":
			p.next()
			t, err := p.expectIdent("program name")
			if err != nil {
				return nil, err
			}
			prog.Name = t.text
			if err := p.endOfStatement(); err != nil {
				return nil, err
			}
		case "inputs":
			p.next()
			for p.peek().kind == tokIdent {
				t := p.next()
				if err := p.checkIdent(t, "input name"); err != nil {
					return nil, err
				}
				prog.Inputs = append(prog.Inputs, t.text)
			}
			if err := p.endOfStatement(); err != nil {
				return nil, err
			}
		case "output":
			p.next()
			t, err := p.expectIdent("output variable")
			if err != nil {
				return nil, err
			}
			if err := p.checkIdent(t, "output variable"); err != nil {
				return nil, err
			}
			prog.Output = t.text
			if err := p.endOfStatement(); err != nil {
				return nil, err
			}
		default:
			goto body
		}
		p.skipNewlines()
	}
body:
	stmts, err := p.parseStatements()
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("program %q has no statements", prog.Name)
	}
	if err := lower(prog, stmts); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *parser) parseStatements() ([]stmt, error) {
	var stmts []stmt
	var pendingLabels []string
	for {
		p.skipNewlines()
		t := p.peek()
		if t.kind == tokEOF {
			if len(pendingLabels) > 0 {
				return nil, p.errf(t, "label %q attached to no statement", pendingLabels[0])
			}
			return stmts, nil
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected statement, got %s", t)
		}
		// Label? IDENT ':' not followed by '=' (that is tokAssignOp already).
		if p.toks[p.pos+1].kind == tokColon {
			lab := p.next()
			p.next() // colon
			if err := p.checkIdent(lab, "label"); err != nil {
				return nil, err
			}
			pendingLabels = append(pendingLabels, lab.text)
			continue // label may precede a newline; loop
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		s.labels = pendingLabels
		pendingLabels = nil
		stmts = append(stmts, s)
	}
}

func (p *parser) parseStatement() (stmt, error) {
	t := p.peek()
	switch t.text {
	case "if":
		p.next()
		cond, err := p.parsePred()
		if err != nil {
			return stmt{}, err
		}
		kw := p.next()
		if kw.kind != tokIdent || kw.text != "goto" {
			return stmt{}, p.errf(kw, "expected 'goto' after if predicate, got %s", kw)
		}
		lt, err := p.expectIdent("label")
		if err != nil {
			return stmt{}, err
		}
		kw = p.next()
		if kw.kind != tokIdent || kw.text != "else" {
			return stmt{}, p.errf(kw, "expected 'else', got %s", kw)
		}
		lf, err := p.expectIdent("label")
		if err != nil {
			return stmt{}, err
		}
		if err := p.endOfStatement(); err != nil {
			return stmt{}, err
		}
		return stmt{kind: stmtIf, line: t.line, cond: cond, onTrue: lt.text, onFalse: lf.text}, nil
	case "goto":
		p.next()
		lt, err := p.expectIdent("label")
		if err != nil {
			return stmt{}, err
		}
		if err := p.endOfStatement(); err != nil {
			return stmt{}, err
		}
		return stmt{kind: stmtGoto, line: t.line, dest: lt.text}, nil
	case "halt":
		p.next()
		if err := p.endOfStatement(); err != nil {
			return stmt{}, err
		}
		return stmt{kind: stmtHalt, line: t.line}, nil
	case "violation":
		p.next()
		s := stmt{kind: stmtViolation, line: t.line}
		if p.peek().kind == tokString {
			s.notice = p.next().text
		}
		if err := p.endOfStatement(); err != nil {
			return stmt{}, err
		}
		return s, nil
	default:
		// Assignment: IDENT := expr
		id := p.next()
		if err := p.checkIdent(id, "variable"); err != nil {
			return stmt{}, err
		}
		at := p.next()
		if at.kind != tokAssignOp {
			return stmt{}, p.errf(at, "expected ':=' after %q, got %s", id.text, at)
		}
		e, err := p.parseExpr()
		if err != nil {
			return stmt{}, err
		}
		if err := p.endOfStatement(); err != nil {
			return stmt{}, err
		}
		return stmt{kind: stmtAssign, line: t.line, target: id.text, expr: e}, nil
	}
}

// ------------------------------------------------------------- expressions
//
// Precedence (binding tighter downward), mirroring Go:
//
//	orPred   := andPred { "||" andPred }
//	andPred  := relPred { "&&" relPred }
//	relPred  := "!" relPred | "true" | "false" | "(" orPred ")" | expr cmp expr
//	expr     := term { ("+"|"-"|"|"|"^") term }
//	term     := unary { ("*"|"/"|"%"|"&"|"&^") unary }
//	unary    := ("-"|"^") unary | atom
//	atom     := NUMBER | IDENT | IDENT "(" args ")" | "ite" "(" pred "," e "," e ")" | "(" expr ")"

func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp {
		var op BinOp
		switch p.peek().text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "|":
			op = OpOr
		case "^":
			op = OpXor
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp {
		var op BinOp
		switch p.peek().text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		case "&":
			op = OpAnd
		case "&^":
			op = OpAndNot
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().kind == tokOp {
		switch p.peek().text {
		case "-":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if c, ok := x.(Const); ok {
				return Const(-int64(c)), nil
			}
			return &Neg{X: x}, nil
		case "^":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &BitNot{X: x}, nil
		}
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		return Const(t.num), nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if c := p.next(); c.kind != tokRParen {
			return nil, p.errf(c, "expected ')', got %s", c)
		}
		return e, nil
	case tokIdent:
		if t.text == "ite" {
			if c := p.next(); c.kind != tokLParen {
				return nil, p.errf(c, "expected '(' after ite, got %s", c)
			}
			cond, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			if c := p.next(); c.kind != tokComma {
				return nil, p.errf(c, "expected ',' in ite, got %s", c)
			}
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if c := p.next(); c.kind != tokComma {
				return nil, p.errf(c, "expected ',' in ite, got %s", c)
			}
			b, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if c := p.next(); c.kind != tokRParen {
				return nil, p.errf(c, "expected ')' after ite, got %s", c)
			}
			return Ite(cond, a, b), nil
		}
		if isKeyword(t.text) {
			return nil, p.errf(t, "keyword %q cannot appear in an expression", t.text)
		}
		if p.peek().kind == tokLParen {
			p.next()
			call := &Call{Name: t.text}
			if p.peek().kind != tokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.peek().kind != tokComma {
						break
					}
					p.next()
				}
			}
			if c := p.next(); c.kind != tokRParen {
				return nil, p.errf(c, "expected ')' after call arguments, got %s", c)
			}
			return call, nil
		}
		if err := p.checkIdent(t, "variable"); err != nil {
			return nil, err
		}
		return Var(t.text), nil
	default:
		return nil, p.errf(t, "expected expression, got %s", t)
	}
}

func (p *parser) parsePred() (Pred, error) {
	l, err := p.parseAndPred()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "||" {
		p.next()
		r, err := p.parseAndPred()
		if err != nil {
			return nil, err
		}
		l = &OrP{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAndPred() (Pred, error) {
	l, err := p.parseRelPred()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "&&" {
		p.next()
		r, err := p.parseRelPred()
		if err != nil {
			return nil, err
		}
		l = &AndP{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseRelPred() (Pred, error) {
	t := p.peek()
	if t.kind == tokOp && t.text == "!" {
		p.next()
		x, err := p.parseRelPred()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	if t.kind == tokIdent && (t.text == "true" || t.text == "false") {
		p.next()
		return BoolConst(t.text == "true"), nil
	}
	// "(" could open a parenthesised predicate or a parenthesised
	// arithmetic sub-expression; try predicate first and backtrack.
	if t.kind == tokLParen {
		save := p.pos
		p.next()
		inner, err := p.parsePred()
		if err == nil {
			if c := p.peek(); c.kind == tokRParen {
				// Only accept if what follows is not a comparison
				// operator (which would mean the parens were an
				// arithmetic grouping like (a+b) == c).
				after := p.toks[p.pos+1]
				if !(after.kind == tokOp && isCmpText(after.text)) &&
					!(after.kind == tokOp && isArithText(after.text)) {
					p.next() // consume ')'
					return inner, nil
				}
			}
		}
		p.pos = save
	}
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	op := p.next()
	if op.kind != tokOp || !isCmpText(op.text) {
		return nil, p.errf(op, "expected comparison operator, got %s", op)
	}
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Cmp{Op: cmpFromText(op.text), L: l, R: r}, nil
}

func isCmpText(s string) bool {
	switch s {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func isArithText(s string) bool {
	switch s {
	case "+", "-", "*", "/", "%", "&", "|", "^", "&^":
		return true
	}
	return false
}

func cmpFromText(s string) CmpOp {
	switch s {
	case "==":
		return CmpEq
	case "!=":
		return CmpNe
	case "<":
		return CmpLt
	case "<=":
		return CmpLe
	case ">":
		return CmpGt
	default:
		return CmpGe
	}
}

// ---------------------------------------------------------------- lowering

// lower converts the statement list to the node graph, resolving labels and
// goto chains.
func lower(prog *Program, stmts []stmt) error {
	labels := make(map[string]int) // label -> statement index
	for i, s := range stmts {
		for _, lab := range s.labels {
			if prev, dup := labels[lab]; dup {
				return fmt.Errorf("line %d: label %q already defined at statement %d", s.line, lab, prev)
			}
			labels[lab] = i
		}
	}
	// entry(i) = node that begins execution of statement i, following goto
	// chains. -1 in memo means "unresolved", -2 means "in progress" (cycle
	// detection).
	nodeOf := make([]NodeID, len(stmts))
	for i, s := range stmts {
		switch s.kind {
		case stmtAssign:
			nodeOf[i] = prog.AddNode(Node{Kind: KindAssign, Target: s.target, Expr: s.expr, Next: NoNode, Label: firstLabel(s)})
		case stmtIf:
			nodeOf[i] = prog.AddNode(Node{Kind: KindDecision, Cond: s.cond, True: NoNode, False: NoNode, Label: firstLabel(s)})
		case stmtHalt:
			nodeOf[i] = prog.AddNode(Node{Kind: KindHalt, Label: firstLabel(s)})
		case stmtViolation:
			nodeOf[i] = prog.AddNode(Node{Kind: KindHalt, Violation: true, Notice: s.notice, Label: firstLabel(s)})
		case stmtGoto:
			nodeOf[i] = NoNode // resolved by entry()
		}
	}
	state := make([]int8, len(stmts)) // 0 fresh, 1 in progress, 2 done
	entryMemo := make([]NodeID, len(stmts))
	var entry func(i int) (NodeID, error)
	entry = func(i int) (NodeID, error) {
		if i >= len(stmts) {
			return NoNode, fmt.Errorf("control falls off the end of the program (add halt or goto)")
		}
		if state[i] == 2 {
			return entryMemo[i], nil
		}
		if state[i] == 1 {
			return NoNode, fmt.Errorf("line %d: goto cycle with no intervening statement", stmts[i].line)
		}
		state[i] = 1
		var id NodeID
		var err error
		if stmts[i].kind == stmtGoto {
			j, ok := labels[stmts[i].dest]
			if !ok {
				return NoNode, fmt.Errorf("line %d: undefined label %q", stmts[i].line, stmts[i].dest)
			}
			id, err = entry(j)
			if err != nil {
				return NoNode, err
			}
		} else {
			id = nodeOf[i]
		}
		state[i] = 2
		entryMemo[i] = id
		return id, nil
	}
	resolveLabel := func(line int, lab string) (NodeID, error) {
		j, ok := labels[lab]
		if !ok {
			return NoNode, fmt.Errorf("line %d: undefined label %q", line, lab)
		}
		return entry(j)
	}
	// Wire edges.
	for i, s := range stmts {
		switch s.kind {
		case stmtAssign:
			next, err := entry(i + 1)
			if err != nil {
				return fmt.Errorf("line %d: %v", s.line, err)
			}
			prog.Node(nodeOf[i]).Next = next
		case stmtIf:
			tID, err := resolveLabel(s.line, s.onTrue)
			if err != nil {
				return err
			}
			fID, err := resolveLabel(s.line, s.onFalse)
			if err != nil {
				return err
			}
			n := prog.Node(nodeOf[i])
			n.True = tID
			n.False = fID
		case stmtGoto:
			if _, err := entry(i); err != nil {
				return err
			}
		}
	}
	first, err := entry(0)
	if err != nil {
		return err
	}
	prog.Start = prog.AddNode(Node{Kind: KindStart, Next: first})
	return nil
}

func firstLabel(s stmt) string {
	if len(s.labels) > 0 {
		return s.labels[0]
	}
	return ""
}
