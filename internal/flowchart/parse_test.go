package flowchart

import (
	"errors"
	"strings"
	"testing"
)

// progE3 is the Section 4 program used to separate surveillance from
// high-water mark (paper p. 48).
const progE3 = `
program forgetful
inputs x1 x2

    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

func TestParseAndRun(t *testing.T) {
	p, err := Parse(progE3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "forgetful" || p.Arity() != 2 {
		t.Fatalf("header parse: name=%q arity=%d", p.Name, p.Arity())
	}
	res, err := p.Run([]int64{7, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 || res.Violation {
		t.Errorf("Run(7,0) = %v, want 0", res)
	}
	res, err = p.Run([]int64{7, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 7 {
		t.Errorf("Run(7,5) = %v, want 7", res)
	}
}

func TestStepCounting(t *testing.T) {
	p := MustParse(`
inputs x
Loop: if x == 0 goto Done else Body
Body: x := x - 1
      goto Loop
Done: y := 1
      halt
`)
	r0, err := p.Run([]int64{0})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := p.Run([]int64{3})
	if err != nil {
		t.Fatal(err)
	}
	// Each loop iteration adds one decision plus one assignment.
	if r3.Steps-r0.Steps != 6 {
		t.Errorf("steps(3)-steps(0) = %d, want 6", r3.Steps-r0.Steps)
	}
	if r0.Value != 1 || r3.Value != 1 {
		t.Error("constant function should output 1")
	}
	// This is the paper's Section 2 timing program: the value is constant
	// but the running time encodes x, so (value, steps) violates allow().
	if r0.Steps == r3.Steps {
		t.Error("running time should depend on x — that is the point of the example")
	}
}

func TestStepLimit(t *testing.T) {
	p := MustParse(`
inputs x
Loop: x := x + 1
      if x == x + 1 goto Done else Loop
Done: halt
`)
	_, err := p.RunBudget([]int64{0}, 100, nil)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestArityMismatch(t *testing.T) {
	p := MustParse("inputs x1 x2\n y := x1\n halt\n")
	if _, err := p.Run([]int64{1}); !errors.Is(err, ErrArity) {
		t.Errorf("err = %v, want ErrArity", err)
	}
}

func TestViolationStatement(t *testing.T) {
	p := MustParse(`
inputs x
    if x == 0 goto OK else Bad
OK:  y := 1
     halt
Bad: violation "denied"
`)
	r, err := p.Run([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Violation || r.Notice != "denied" {
		t.Errorf("Run(1) = %v, want violation 'denied'", r)
	}
	if !strings.Contains(r.String(), "Λ") {
		t.Errorf("violation String() = %q, want Λ", r.String())
	}
}

func TestOutputHeader(t *testing.T) {
	p := MustParse(`
inputs x
output result
    result := x * 2
    halt
`)
	r, err := p.Run([]int64{21})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 42 {
		t.Errorf("Run = %v, want 42", r)
	}
}

func TestZeroInputProgram(t *testing.T) {
	p := MustParse("inputs\n y := 7\n halt\n")
	r, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 7 {
		t.Errorf("Run = %v", r)
	}
}

func TestIteExpression(t *testing.T) {
	p := MustParse(`
inputs x1
    y := ite(x1 == 1, 1, 2)
    halt
`)
	r1, _ := p.Run([]int64{1})
	r2, _ := p.Run([]int64{9})
	if r1.Value != 1 || r2.Value != 2 {
		t.Errorf("ite program: f(1)=%d f(9)=%d", r1.Value, r2.Value)
	}
	// Constant-time: both inputs take the same number of steps.
	if r1.Steps != r2.Steps {
		t.Errorf("ite should be constant time: %d vs %d steps", r1.Steps, r2.Steps)
	}
}

func TestGotoChains(t *testing.T) {
	p := MustParse(`
inputs x
    goto A
B:  y := 2
    halt
A:  goto C
C:  y := 1
    halt
`)
	r, err := p.Run([]int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 1 {
		t.Errorf("goto chain result = %v, want 1", r)
	}
}

func TestCallInProgram(t *testing.T) {
	sq := &Func{Name: "sq", Arity: 1, Fn: func(a []int64) int64 { return a[0] * a[0] }}
	p, err := ParseWithOptions("inputs x\n y := sq(x) + 1\n halt\n", ParseOptions{Funcs: []*Func{sq}})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := p.Run([]int64{6})
	if r.Value != 37 {
		t.Errorf("sq(6)+1 = %d", r.Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty", "", "no statements"},
		{"fall off end", "inputs x\n y := x\n", "falls off the end"},
		{"undefined label", "inputs x\n goto Nowhere\n", "undefined label"},
		{"goto cycle", "inputs x\nA: goto B\nB: goto A\n", "goto cycle"},
		{"dup label", "inputs x\nA: halt\nA: halt\n", "already defined"},
		{"dangling label", "inputs x\n halt\nEnd:\n", "attached to no statement"},
		{"keyword var", "inputs x\n else := 3\n halt\n", "keyword"},
		{"shadow ident", "inputs x\n y := x1#\n halt\n", "unexpected character"},
		{"bad op seq", "inputs x\n y := x +\n halt\n", "expected expression"},
		{"missing else", "inputs x\n if x == 0 goto A\nA: halt\n", "expected 'else'"},
		{"bad predicate", "inputs x\n if x goto A else A\nA: halt\n", "comparison"},
		{"unterminated string", "inputs x\n violation \"oops\n halt\n", "unterminated"},
		{"unknown func", "inputs x\n y := f(x)\n halt\n", "unknown function"},
		{"stray token", "inputs x\n halt extra\n", "unexpected"},
		{"dup input", "inputs x x\n halt\n", "duplicate input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestFuncArityChecked(t *testing.T) {
	f := &Func{Name: "f", Arity: 2, Fn: func(a []int64) int64 { return a[0] }}
	_, err := ParseWithOptions("inputs x\n y := f(x)\n halt\n", ParseOptions{Funcs: []*Func{f}})
	if err == nil || !strings.Contains(err.Error(), "want 2") {
		t.Errorf("arity mismatch not reported: %v", err)
	}
}

func TestParenthesisedPredicates(t *testing.T) {
	p := MustParse(`
inputs a b
    if (a == 0) && (b == 0 || a > b) goto T else F
T:  y := 1
    halt
F:  y := 0
    halt
`)
	r, _ := p.Run([]int64{0, 0})
	if r.Value != 1 {
		t.Errorf("(0,0) = %d, want 1", r.Value)
	}
	r, _ = p.Run([]int64{1, 0})
	if r.Value != 0 {
		t.Errorf("(1,0) = %d, want 0", r.Value)
	}
}

func TestParenthesisedArithInPredicate(t *testing.T) {
	p := MustParse(`
inputs a b
    if (a + b) * 2 == 6 goto T else F
T:  y := 1
    halt
F:  y := 0
    halt
`)
	r, _ := p.Run([]int64{1, 2})
	if r.Value != 1 {
		t.Errorf("(1+2)*2==6 should hold, got %d", r.Value)
	}
}

func TestNegativeLiterals(t *testing.T) {
	p := MustParse("inputs x\n y := -3 + x\n halt\n")
	r, _ := p.Run([]int64{5})
	if r.Value != 2 {
		t.Errorf("-3+5 = %d", r.Value)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on bad source did not panic")
		}
	}()
	MustParse("inputs x\n")
}

func TestPrintRoundTrip(t *testing.T) {
	sources := []string{
		progE3,
		"inputs x\nLoop: if x == 0 goto Done else Body\nBody: x := x - 1\n goto Loop\nDone: y := 1\n halt\n",
		"inputs a b c\n y := ite(a == b, c, a &^ b)\n halt\n",
		"inputs x\n if x < 0 goto N else P\nN: violation \"negative\"\nP: y := x % 7\n halt\n",
	}
	for _, src := range sources {
		p1 := MustParse(src)
		text1 := Print(p1)
		p2, err := ParseWithOptions(text1, ParseOptions{AllowShadows: true})
		if err != nil {
			t.Fatalf("re-parse of printed program failed: %v\n%s", err, text1)
		}
		text2 := Print(p2)
		if text1 != text2 {
			t.Errorf("Print not stable after one round trip:\n--- first ---\n%s--- second ---\n%s", text1, text2)
		}
		// Behavioural agreement on a small input grid.
		for v1 := int64(-2); v1 <= 2; v1++ {
			for v2 := int64(-2); v2 <= 2; v2++ {
				in := make([]int64, p1.Arity())
				if len(in) > 0 {
					in[0] = v1
				}
				if len(in) > 1 {
					in[1] = v2
				}
				r1, err1 := p1.Run(in)
				r2, err2 := p2.Run(in)
				if (err1 == nil) != (err2 == nil) || r1 != r2 {
					t.Fatalf("behaviour diverged on %v: %v/%v vs %v/%v", in, r1, err1, r2, err2)
				}
			}
		}
	}
}

func TestDotOutput(t *testing.T) {
	p := MustParse(progE3)
	dot := Dot(p)
	for _, want := range []string{"digraph", "diamond", "START", "HALT"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	// Hand-built malformed programs.
	t.Run("no nodes", func(t *testing.T) {
		p := &Program{Name: "x"}
		if err := p.Validate(); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad start kind", func(t *testing.T) {
		p := &Program{Name: "x"}
		p.Start = p.AddNode(Node{Kind: KindHalt})
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "start node has kind") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("successor out of range", func(t *testing.T) {
		p := &Program{Name: "x"}
		p.Start = p.AddNode(Node{Kind: KindStart, Next: 99})
		p.AddNode(Node{Kind: KindHalt})
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("jump to start", func(t *testing.T) {
		p := &Program{Name: "x"}
		p.Start = p.AddNode(Node{Kind: KindStart, Next: 0})
		p.AddNode(Node{Kind: KindHalt})
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "start box") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("assign without expr", func(t *testing.T) {
		p := &Program{Name: "x"}
		p.Start = p.AddNode(Node{Kind: KindStart, Next: 1})
		p.AddNode(Node{Kind: KindAssign, Target: "y", Next: 2})
		p.AddNode(Node{Kind: KindHalt})
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no expression") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("no halt", func(t *testing.T) {
		p := &Program{Name: "x"}
		d := p.AddNode(Node{Kind: KindDecision, Cond: BoolConst(true), True: 0, False: 0})
		p.Start = p.AddNode(Node{Kind: KindStart, Next: d})
		if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no halt") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestBuilder(t *testing.T) {
	b := NewBuilder("built", "x1")
	a := b.Assign("y", Add(V("x1"), C(1)))
	h := b.Halt()
	b.SetNext(b.StartID(), a)
	b.Seq(a, h)
	p := b.Program()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := p.Run([]int64{41})
	if err != nil {
		t.Fatal(err)
	}
	if r.Value != 42 {
		t.Errorf("built program = %v", r)
	}
}

func TestBuilderBranch(t *testing.T) {
	b := NewBuilder("built2", "x")
	d := b.Decision(Eq(V("x"), C(0)))
	t1 := b.Assign("y", C(1))
	t2 := b.Assign("y", C(2))
	h := b.Halt()
	b.SetNext(b.StartID(), d)
	b.SetBranch(d, t1, t2)
	b.SetNext(t1, h)
	b.SetNext(t2, h)
	p := b.Program()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r0, _ := p.Run([]int64{0})
	r1, _ := p.Run([]int64{1})
	if r0.Value != 1 || r1.Value != 2 {
		t.Errorf("branch program: %d/%d", r0.Value, r1.Value)
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder("p", "x")
	h := b.Halt()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetNext on halt did not panic")
			}
		}()
		b.SetNext(h, h)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetBranch on halt did not panic")
			}
		}()
		b.SetBranch(h, h, h)
	}()
}

func TestCloneIsolation(t *testing.T) {
	p := MustParse(progE3)
	q := p.Clone()
	q.Nodes[1] = Node{Kind: KindHalt}
	q.Inputs[0] = "zz"
	if p.Nodes[1].Kind == KindHalt || p.Inputs[0] == "zz" {
		t.Error("Clone shares mutable state")
	}
}

func TestTracer(t *testing.T) {
	p := MustParse("inputs x\n y := x\n halt\n")
	var visited []Kind
	_, err := p.RunBudget([]int64{1}, 100, func(id NodeID, n *Node, env Env) {
		visited = append(visited, n.Kind)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindStart, KindAssign, KindHalt}
	if len(visited) != len(want) {
		t.Fatalf("trace = %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("trace = %v, want %v", visited, want)
		}
	}
}

func TestVariables(t *testing.T) {
	p := MustParse(progE3)
	vars := p.Variables()
	want := map[string]bool{"r": true, "x1": true, "x2": true, "y": true}
	if len(vars) != len(want) {
		t.Fatalf("Variables() = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected variable %q", v)
		}
	}
}

func TestShadowHelpers(t *testing.T) {
	if ShadowVar("x1") != "x1#" {
		t.Error("ShadowVar")
	}
	if !IsShadowVar("x1#") || IsShadowVar("x1") {
		t.Error("IsShadowVar")
	}
	if ValidUserIdent("x1#") {
		t.Error("shadow should not be a valid user ident")
	}
	if !ValidUserIdent("abc_2") || ValidUserIdent("2abc") || ValidUserIdent("") {
		t.Error("ValidUserIdent basic cases")
	}
}

func TestInputIndex(t *testing.T) {
	p := MustParse(progE3)
	if p.InputIndex("x1") != 1 || p.InputIndex("x2") != 2 || p.InputIndex("r") != 0 {
		t.Error("InputIndex wrong")
	}
}
