package flowchart

import "testing"

const fpBase = `
program demo
inputs x1 x2
    r := x1
    if x2 == 0 goto A else B
A:  y := r
    halt
B:  y := x1
    halt
`

// Same flowchart, different layout: extra blank lines, tabs vs spaces,
// and a different (but consistent) label spelling position.
const fpReformatted = `program demo

inputs x1 x2

	r := x1
	if x2 == 0 goto A else B

A:	y := r
	halt
B:	y := x1
	halt
`

const fpDifferent = `
program demo
inputs x1 x2
    r := x1
    if x2 == 1 goto A else B
A:  y := r
    halt
B:  y := x1
    halt
`

func TestFingerprintStableAcrossFormatting(t *testing.T) {
	a := MustParse(fpBase)
	b := MustParse(fpReformatted)
	if Fingerprint(a) != Fingerprint(b) {
		t.Errorf("reformatted source changed the fingerprint:\n%q\nvs\n%q",
			Fingerprint(a), Fingerprint(b))
	}
}

func TestFingerprintSensitiveToBehaviour(t *testing.T) {
	a := MustParse(fpBase)
	c := MustParse(fpDifferent)
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("behaviourally different programs share a fingerprint")
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	p := MustParse(fpBase)
	first := Fingerprint(p)
	for i := 0; i < 3; i++ {
		if got := Fingerprint(p); got != first {
			t.Fatalf("fingerprint not deterministic: %q vs %q", first, got)
		}
	}
	if len(first) != 64 {
		t.Errorf("fingerprint length = %d, want 64 hex chars", len(first))
	}
}
