package flowchart

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a stable content hash of the program: the SHA-256 of
// its canonical Print rendering, hex-encoded. Print emits reachable nodes
// in depth-first order from the start box with normalised labels and
// spacing, so two sources that differ only in layout, comments, or label
// spelling-preserving formatting hash equal, while any behavioural edit
// (node, edge, expression, input list) changes the hash. The
// content-addressed compile cache in internal/service keys on it.
func Fingerprint(p *Program) string {
	sum := sha256.Sum256([]byte(Print(p)))
	return hex.EncodeToString(sum[:])
}
