package flowchart

import (
	"fmt"
	"math"
	"sync"
)

// This file is the library's third execution tier. The tree-walking
// interpreter (interp.go) establishes semantics; the compiled scalar runner
// (compile.go) removes per-step map lookups; the batch runner here removes
// per-tuple instruction dispatch. It executes one instruction across a
// stride of N register files laid out structure-of-arrays — one column of N
// values per register slot — so the var⊕const and var⊕var inner loops that
// dominate sweep workloads become tight counted loops over contiguous
// int64s, which the Go compiler can unroll and auto-vectorize, and the
// closure-call and switch overhead of instruction dispatch is paid once per
// N lanes instead of once per tuple.
//
// Lanes execute in lockstep. When a decision splits the live lanes — or an
// instruction only the scalar engine can express is reached — the lanes
// that leave the common path are extracted (their column values gathered
// into an ordinary register file) and finished on the scalar runLoop, so
// every lane's Result (value, steps, violations, budget accounting) is
// byte-identical to what RunReuse would have produced for that tuple. The
// equivalence is pinned by differential tests and FuzzBatchVsScalar.

// bnode is one instruction of the batch-compiled program: the same control
// fields as cnode plus the columnar evaluators. vexpr evaluates an assign's
// expression across lanes [0, n); for the hot var⊕const/var⊕var/const/var
// shapes it is a branch-free vector kernel that may compute garbage in dead
// lanes (all covered operators are total), while the generic fallback
// consults the live mask so arbitrary expressions — including registered
// Call functions — only ever see lanes the scalar engine would have run.
// lcond evaluates a decision's predicate for one lane; decisions are
// inherently per-lane because the uniformity check needs each live lane's
// direction.
type bnode struct {
	kind      Kind
	target    int
	vexpr     func(cols [][]int64, out []int64, n int, live []bool)
	lcond     func(cols [][]int64, lane int) bool
	next      int32
	onTrue    int32
	onFalse   int32
	violation bool
	notice    string
}

// ensureBatch lowers the program to batch form on first use. Compilation is
// lazy — interpreter- and scalar-only callers never pay for it — and
// happens once per Compiled, shared by every worker's Lanes.
func (c *Compiled) ensureBatch() error {
	c.batchOnce.Do(func() {
		code := make([]bnode, len(c.code))
		for i := range c.Source.Nodes {
			n := &c.Source.Nodes[i]
			bn := bnode{kind: n.Kind, next: int32(n.Next), onTrue: int32(n.True), onFalse: int32(n.False),
				violation: n.Violation, notice: n.Notice}
			switch n.Kind {
			case KindAssign:
				bn.target = c.slotOf[n.Target]
				e, err := compileExprBatch(n.Expr, c.slotOf)
				if err != nil {
					c.batchErr = fmt.Errorf("flowchart %q: node %d: %w", c.Source.Name, i, err)
					return
				}
				bn.vexpr = e
			case KindDecision:
				q, err := compilePredLane(n.Cond, c.slotOf)
				if err != nil {
					c.batchErr = fmt.Errorf("flowchart %q: node %d: %w", c.Source.Name, i, err)
					return
				}
				bn.lcond = q
			}
			code[i] = bn
		}
		c.bcode = code
	})
	return c.batchErr
}

// batchState is the lazily-built batch tier of a Compiled program; embedded
// in Compiled so the scalar structure stays unchanged.
type batchState struct {
	batchOnce sync.Once
	bcode     []bnode
	batchErr  error
}

// Lanes is the mutable state of one batch execution stream: a
// structure-of-arrays register file (one contiguous column of Width values
// per slot), the live mask, and the scratch register file used to extract
// diverging lanes onto the scalar engine. Like a register file or a
// Snapshot, a Lanes is single-goroutine state — each sweep worker owns one
// — and stays bound to the Compiled program that created it.
type Lanes struct {
	c     *Compiled
	width int
	flat  []int64   // slots × width backing store
	cols  [][]int64 // cols[slot][lane]
	live  []bool
	conds []bool
	errs  []error
	regs  []int64 // scratch for divergence extraction

	// Stats accumulates lane-level execution counts across the Lanes'
	// lifetime. Like the rest of the Lanes it is single-goroutine state:
	// read it from the owning worker (or after the sweep), not
	// concurrently with execution.
	Stats BatchStats
}

// BatchStats counts what the batch tier did: Strides is the number of
// lockstep executions, Lanes the tuples they carried (Lanes/Strides
// against the configured width is lane utilization), and Diverged the
// lanes that left the lockstep on a split decision and were finished on
// the scalar engine (Diverged/Lanes is the divergence rate).
type BatchStats struct {
	Strides  int64
	Lanes    int64
	Diverged int64
}

// NewLanes allocates batch-execution state for up to width lanes. width
// must be ≥ 1; RunBatch and RunBatchFromSnapshot accept any batch size up
// to it, so sweep tails narrower than the configured stride reuse the same
// allocation.
func (c *Compiled) NewLanes(width int) (*Lanes, error) {
	if width < 1 {
		return nil, fmt.Errorf("flowchart %q: batch width %d, need ≥ 1", c.Source.Name, width)
	}
	if err := c.ensureBatch(); err != nil {
		return nil, err
	}
	slots := len(c.slotOf)
	l := &Lanes{
		c:     c,
		width: width,
		flat:  make([]int64, slots*width),
		cols:  make([][]int64, slots),
		live:  make([]bool, width),
		conds: make([]bool, width),
		errs:  make([]error, width),
		regs:  make([]int64, slots),
	}
	for s := 0; s < slots; s++ {
		l.cols[s] = l.flat[s*width : (s+1)*width : (s+1)*width]
	}
	return l, nil
}

// Width returns the lane capacity the Lanes was allocated with.
func (l *Lanes) Width() int { return l.width }

// RunBatch executes the program once per lane: lane i runs on the input
// tuple whose first len(inputs)-1 coordinates come from inputs and whose
// innermost coordinate is last[i] — the shape of a sweep stride along the
// fastest-varying axis. Results land in out (out[i] for lane i); the first
// error in lane order (a step-budget exhaustion, typically) is returned,
// matching the error the scalar sweep would have hit first. The program
// must have at least one input; len(last) must equal len(out) and fit in
// l's width.
//
// Every lane's Result is exactly what RunReuse would produce for the same
// tuple: lanes execute in lockstep while they agree and are finished on the
// scalar engine when they diverge.
func (c *Compiled) RunBatch(l *Lanes, inputs []int64, last []int64, maxSteps int64, out []Result) error {
	n, err := c.batchPreflight(l, len(last), len(out))
	if err != nil {
		return err
	}
	if len(c.inputSlots) == 0 {
		return fmt.Errorf("flowchart %q: batch execution needs at least one input", c.Source.Name)
	}
	if len(inputs) != len(c.inputSlots) {
		return fmt.Errorf("%w: got %d inputs, program %q wants %d",
			ErrArity, len(inputs), c.Source.Name, len(c.inputSlots))
	}
	for s := range l.cols {
		col := l.cols[s][:n]
		for i := range col {
			col[i] = 0
		}
	}
	for i, s := range c.inputSlots {
		col := l.cols[s][:n]
		for lane := range col {
			col[lane] = inputs[i]
		}
	}
	copy(l.cols[c.inputSlots[len(c.inputSlots)-1]][:n], last)
	return c.runBatchLoop(l, n, c.start, 0, maxSteps, out)
}

// RunBatchFromSnapshot is RunBatch resuming from a prefix snapshot: the
// captured register file feeds every lane, lane i installs last[i] as the
// innermost input, and execution resumes in lockstep at the captured
// instruction with the captured step count — the batch counterpart of
// RunFromSnapshot, and the composition that lets one snapshot capture
// amortize across a whole stride of the sweep's innermost axis. The same
// row contract applies: since snap was recorded, only the innermost input
// may have changed. An invalid snapshot returns ErrNoSnapshot; a snapshot
// whose recording run never touched the innermost input replicates its
// recorded result into every lane.
func (c *Compiled) RunBatchFromSnapshot(l *Lanes, snap *Snapshot, last []int64, maxSteps int64, out []Result) error {
	if snap == nil || snap.c != c || snap.state == snapInvalid {
		return ErrNoSnapshot
	}
	n, err := c.batchPreflight(l, len(last), len(out))
	if err != nil {
		return err
	}
	if snap.state == snapConstant {
		l.Stats.Strides++
		l.Stats.Lanes += int64(n)
		for i := 0; i < n; i++ {
			out[i] = snap.res
		}
		return nil
	}
	for s := range l.cols {
		col := l.cols[s][:n]
		v := snap.regs[s]
		for lane := range col {
			col[lane] = v
		}
	}
	copy(l.cols[c.lastSlot][:n], last)
	return c.runBatchLoop(l, n, snap.pc, snap.steps, maxSteps, out)
}

// RunBatchFromStack is RunBatchFromSnapshot against a snapshot stack's
// innermost capture: the stride's lanes resume in lockstep from the state
// the stack recorded before the first instruction touching the innermost
// input, each lane installing its own innermost value. The same row
// contract applies — since the innermost entry was recorded (a
// SnapshotStack.Run on this worker), only the innermost input may have
// changed — which is exactly what a sweep carry of k-1 guarantees. A
// constant innermost entry replicates its recorded result into every
// lane; an invalid one returns ErrNoSnapshot and the caller falls back to
// RunBatch.
func (c *Compiled) RunBatchFromStack(l *Lanes, st *SnapshotStack, last []int64, maxSteps int64, out []Result) error {
	if st == nil || st.c != c || len(st.entries) == 0 {
		return ErrNoSnapshot
	}
	e := &st.entries[len(st.entries)-1]
	if e.state == snapInvalid {
		return ErrNoSnapshot
	}
	n, err := c.batchPreflight(l, len(last), len(out))
	if err != nil {
		return err
	}
	if e.state == snapConstant {
		l.Stats.Strides++
		l.Stats.Lanes += int64(n)
		for i := 0; i < n; i++ {
			out[i] = e.res
		}
		return nil
	}
	for s := range l.cols {
		col := l.cols[s][:n]
		v := e.regs[s]
		for lane := range col {
			col[lane] = v
		}
	}
	copy(l.cols[c.lastSlot][:n], last)
	return c.runBatchLoop(l, n, e.pc, e.steps, maxSteps, out)
}

// batchPreflight validates the lanes/batch-size/output agreement shared by
// both batch entry points and resets per-run lane state.
func (c *Compiled) batchPreflight(l *Lanes, nLast, nOut int) (int, error) {
	if l == nil || l.c != c {
		return 0, fmt.Errorf("flowchart %q: lanes belong to a different program", c.Source.Name)
	}
	if nLast == 0 || nLast > l.width || nLast != nOut {
		return 0, fmt.Errorf("flowchart %q: batch of %d lanes with %d results (lane capacity %d)",
			c.Source.Name, nLast, nOut, l.width)
	}
	for i := 0; i < nLast; i++ {
		l.live[i] = true
		l.errs[i] = nil
	}
	return nLast, nil
}

// runBatchLoop is the lockstep execution core: one instruction fetched per
// iteration and applied across every live lane. Divergence — a decision
// whose live lanes disagree — keeps the larger side in the batch and
// finishes each lane of the smaller side on the scalar runLoop from its
// current state, so divergence costs exactly the scalar execution of the
// lanes that left. Budget exhaustion hits all live lanes at the same step
// (they are in lockstep); diverged lanes account their budgets
// independently on the scalar engine.
func (c *Compiled) runBatchLoop(l *Lanes, n int, pc int32, steps, maxSteps int64, out []Result) error {
	l.Stats.Strides++
	l.Stats.Lanes += int64(n)
	liveCount := n
	for liveCount > 0 {
		if steps >= maxSteps {
			err := fmt.Errorf("%w: budget %d, program %q", ErrStepLimit, maxSteps, c.Source.Name)
			for lane := 0; lane < n; lane++ {
				if l.live[lane] {
					out[lane] = Result{Steps: steps}
					l.errs[lane] = err
				}
			}
			break
		}
		node := &c.bcode[pc]
		steps++
		switch node.kind {
		case KindStart:
			pc = node.next
		case KindAssign:
			node.vexpr(l.cols, l.cols[node.target], n, l.live)
			pc = node.next
		case KindDecision:
			nTrue := 0
			for lane := 0; lane < n; lane++ {
				if l.live[lane] {
					t := node.lcond(l.cols, lane)
					l.conds[lane] = t
					if t {
						nTrue++
					}
				}
			}
			switch {
			case nTrue == liveCount:
				pc = node.onTrue
			case nTrue == 0:
				pc = node.onFalse
			default:
				// Divergence: the majority side (ties go to the true arm)
				// stays batched; each minority lane is gathered into the
				// scratch register file and finished scalar from its branch
				// target with the common step count.
				stay := nTrue*2 >= liveCount
				stayPC, leavePC := node.onTrue, node.onFalse
				if !stay {
					stayPC, leavePC = node.onFalse, node.onTrue
				}
				for lane := 0; lane < n; lane++ {
					if !l.live[lane] || l.conds[lane] == stay {
						continue
					}
					for s := range l.cols {
						l.regs[s] = l.cols[s][lane]
					}
					out[lane], l.errs[lane] = c.runLoop(l.regs, leavePC, steps, maxSteps)
					l.live[lane] = false
					l.Stats.Diverged++
					liveCount--
				}
				pc = stayPC
			}
		case KindHalt:
			if node.violation {
				for lane := 0; lane < n; lane++ {
					if l.live[lane] {
						out[lane] = Result{Steps: steps, Violation: true, Notice: node.notice}
						l.live[lane] = false
					}
				}
			} else {
				outCol := l.cols[c.outputSlot]
				for lane := 0; lane < n; lane++ {
					if l.live[lane] {
						out[lane] = Result{Value: outCol[lane], Steps: steps}
						l.live[lane] = false
					}
				}
			}
			liveCount = 0
		default:
			err := fmt.Errorf("flowchart %q: node %d has unknown kind %d", c.Source.Name, pc, node.kind)
			for lane := 0; lane < n; lane++ {
				if l.live[lane] {
					out[lane] = Result{Steps: steps}
					l.errs[lane] = err
					l.live[lane] = false
				}
			}
			liveCount = 0
		}
	}
	for lane := 0; lane < n; lane++ {
		if l.errs[lane] != nil {
			return l.errs[lane]
		}
	}
	return nil
}

// compileExprBatch lowers an assign's expression to a columnar kernel. The
// var⊕const, var⊕var, const, and var shapes — the bulk of sweep-hot
// programs, mirroring compileBinFast — become branch-free counted loops
// over the columns (computing harmlessly in dead lanes: every covered
// operator is total). Everything else falls back to a per-lane evaluation
// of a lane-indexed closure, guarded by the live mask so expressions with
// operator-level guards (division) or registered Call functions only run
// where the scalar engine would have run them.
func compileExprBatch(e Expr, slotOf map[string]int) (func(cols [][]int64, out []int64, n int, live []bool), error) {
	if f := compileExprVec(e, slotOf); f != nil {
		return f, nil
	}
	lane, err := compileExprLane(e, slotOf)
	if err != nil {
		return nil, err
	}
	return func(cols [][]int64, out []int64, n int, live []bool) {
		for l := 0; l < n; l++ {
			if live[l] {
				out[l] = lane(cols, l)
			}
		}
	}, nil
}

// compileExprVec builds the vectorizable kernel for the hot expression
// shapes, or nil when the shape (or operator) needs the generic path.
func compileExprVec(e Expr, slotOf map[string]int) func(cols [][]int64, out []int64, n int, live []bool) {
	switch x := e.(type) {
	case Const:
		v := int64(x)
		return func(cols [][]int64, out []int64, n int, live []bool) {
			out = out[:n]
			for l := range out {
				out[l] = v
			}
		}
	case Var:
		s := slotOf[string(x)]
		return func(cols [][]int64, out []int64, n int, live []bool) {
			copy(out[:n], cols[s][:n])
		}
	case *Bin:
		lv, ok := x.L.(Var)
		if !ok {
			return nil
		}
		s := slotOf[string(lv)]
		switch r := x.R.(type) {
		case Const:
			cv := int64(r)
			switch x.Op {
			case OpAdd:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a := cols[s][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] + cv
					}
				}
			case OpSub:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a := cols[s][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] - cv
					}
				}
			case OpMul:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a := cols[s][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] * cv
					}
				}
			case OpAnd:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a := cols[s][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] & cv
					}
				}
			case OpOr:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a := cols[s][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] | cv
					}
				}
			case OpXor:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a := cols[s][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] ^ cv
					}
				}
			case OpAndNot:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a := cols[s][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] &^ cv
					}
				}
			}
		case Var:
			t := slotOf[string(r)]
			switch x.Op {
			case OpAdd:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a, b := cols[s][:n], cols[t][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] + b[l]
					}
				}
			case OpSub:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a, b := cols[s][:n], cols[t][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] - b[l]
					}
				}
			case OpMul:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a, b := cols[s][:n], cols[t][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] * b[l]
					}
				}
			case OpAnd:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a, b := cols[s][:n], cols[t][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] & b[l]
					}
				}
			case OpOr:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a, b := cols[s][:n], cols[t][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] | b[l]
					}
				}
			case OpXor:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a, b := cols[s][:n], cols[t][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] ^ b[l]
					}
				}
			case OpAndNot:
				return func(cols [][]int64, out []int64, n int, live []bool) {
					a, b := cols[s][:n], cols[t][:n]
					out = out[:n]
					for l := range out {
						out[l] = a[l] &^ b[l]
					}
				}
			}
		}
	}
	return nil
}

// compileExprLane mirrors compileExpr over the columnar register file: the
// returned closure evaluates the expression for one lane, indexing
// cols[slot][lane] where the scalar form indexes regs[slot]. Evaluation
// order, operator guards (division by zero, MinInt64 overflow), and the
// both-arms rule for Cond match the scalar compiler exactly.
func compileExprLane(e Expr, slotOf map[string]int) (func(cols [][]int64, lane int) int64, error) {
	switch x := e.(type) {
	case Const:
		v := int64(x)
		return func([][]int64, int) int64 { return v }, nil
	case Var:
		s := slotOf[string(x)]
		return func(cols [][]int64, lane int) int64 { return cols[s][lane] }, nil
	case *Neg:
		sub, err := compileExprLane(x.X, slotOf)
		if err != nil {
			return nil, err
		}
		return func(cols [][]int64, lane int) int64 { return -sub(cols, lane) }, nil
	case *BitNot:
		sub, err := compileExprLane(x.X, slotOf)
		if err != nil {
			return nil, err
		}
		return func(cols [][]int64, lane int) int64 { return ^sub(cols, lane) }, nil
	case *Bin:
		l, err := compileExprLane(x.L, slotOf)
		if err != nil {
			return nil, err
		}
		r, err := compileExprLane(x.R, slotOf)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpAdd:
			return func(cols [][]int64, lane int) int64 { return l(cols, lane) + r(cols, lane) }, nil
		case OpSub:
			return func(cols [][]int64, lane int) int64 { return l(cols, lane) - r(cols, lane) }, nil
		case OpMul:
			return func(cols [][]int64, lane int) int64 { return l(cols, lane) * r(cols, lane) }, nil
		case OpDiv:
			return func(cols [][]int64, lane int) int64 {
				lv, rv := l(cols, lane), r(cols, lane)
				if rv == 0 {
					return 0
				}
				if lv == math.MinInt64 && rv == -1 {
					return math.MinInt64
				}
				return lv / rv
			}, nil
		case OpMod:
			return func(cols [][]int64, lane int) int64 {
				lv, rv := l(cols, lane), r(cols, lane)
				if rv == 0 {
					return 0
				}
				if lv == math.MinInt64 && rv == -1 {
					return 0
				}
				return lv % rv
			}, nil
		case OpAnd:
			return func(cols [][]int64, lane int) int64 { return l(cols, lane) & r(cols, lane) }, nil
		case OpOr:
			return func(cols [][]int64, lane int) int64 { return l(cols, lane) | r(cols, lane) }, nil
		case OpXor:
			return func(cols [][]int64, lane int) int64 { return l(cols, lane) ^ r(cols, lane) }, nil
		case OpAndNot:
			return func(cols [][]int64, lane int) int64 { return l(cols, lane) &^ r(cols, lane) }, nil
		default:
			return nil, fmt.Errorf("compile: unknown binary op %d", x.Op)
		}
	case *Cond:
		p, err := compilePredLane(x.P, slotOf)
		if err != nil {
			return nil, err
		}
		a, err := compileExprLane(x.A, slotOf)
		if err != nil {
			return nil, err
		}
		b, err := compileExprLane(x.B, slotOf)
		if err != nil {
			return nil, err
		}
		// Both arms evaluated, like the scalar compiler: constant time.
		return func(cols [][]int64, lane int) int64 {
			av, bv := a(cols, lane), b(cols, lane)
			if p(cols, lane) {
				return av
			}
			return bv
		}, nil
	case *Call:
		if x.Resolved == nil || x.Resolved.Fn == nil {
			return nil, fmt.Errorf("compile: unresolved call to %q", x.Name)
		}
		args := make([]func([][]int64, int) int64, len(x.Args))
		for i, a := range x.Args {
			f, err := compileExprLane(a, slotOf)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
		fn := x.Resolved.Fn
		return func(cols [][]int64, lane int) int64 {
			vals := make([]int64, len(args))
			for i, f := range args {
				vals[i] = f(cols, lane)
			}
			return fn(vals)
		}, nil
	default:
		return nil, fmt.Errorf("compile: unknown expression type %T", e)
	}
}

// compilePredLane mirrors compilePred over the columnar register file.
func compilePredLane(q Pred, slotOf map[string]int) (func(cols [][]int64, lane int) bool, error) {
	switch x := q.(type) {
	case BoolConst:
		v := bool(x)
		return func([][]int64, int) bool { return v }, nil
	case *Not:
		sub, err := compilePredLane(x.X, slotOf)
		if err != nil {
			return nil, err
		}
		return func(cols [][]int64, lane int) bool { return !sub(cols, lane) }, nil
	case *AndP:
		l, err := compilePredLane(x.L, slotOf)
		if err != nil {
			return nil, err
		}
		r, err := compilePredLane(x.R, slotOf)
		if err != nil {
			return nil, err
		}
		return func(cols [][]int64, lane int) bool {
			lv, rv := l(cols, lane), r(cols, lane)
			return lv && rv
		}, nil
	case *OrP:
		l, err := compilePredLane(x.L, slotOf)
		if err != nil {
			return nil, err
		}
		r, err := compilePredLane(x.R, slotOf)
		if err != nil {
			return nil, err
		}
		return func(cols [][]int64, lane int) bool {
			lv, rv := l(cols, lane), r(cols, lane)
			return lv || rv
		}, nil
	case *Cmp:
		l, err := compileExprLane(x.L, slotOf)
		if err != nil {
			return nil, err
		}
		r, err := compileExprLane(x.R, slotOf)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case CmpEq:
			return func(cols [][]int64, lane int) bool { return l(cols, lane) == r(cols, lane) }, nil
		case CmpNe:
			return func(cols [][]int64, lane int) bool { return l(cols, lane) != r(cols, lane) }, nil
		case CmpLt:
			return func(cols [][]int64, lane int) bool { return l(cols, lane) < r(cols, lane) }, nil
		case CmpLe:
			return func(cols [][]int64, lane int) bool { return l(cols, lane) <= r(cols, lane) }, nil
		case CmpGt:
			return func(cols [][]int64, lane int) bool { return l(cols, lane) > r(cols, lane) }, nil
		case CmpGe:
			return func(cols [][]int64, lane int) bool { return l(cols, lane) >= r(cols, lane) }, nil
		default:
			return nil, fmt.Errorf("compile: unknown comparison op %d", x.Op)
		}
	default:
		return nil, fmt.Errorf("compile: unknown predicate type %T", q)
	}
}
