package flowchart

import (
	"errors"
	"fmt"
	"testing"
)

// batchDiffSweep enumerates the cartesian product of values in odometer
// order, strides of up to width tuples along the innermost axis at a time,
// and checks that the batch tier — RunBatch for fresh rows, or the
// snapshot composition (one scalar RunSnapshot capture per row,
// RunBatchFromSnapshot for the row's remaining lanes) when memo is set —
// produces exactly the Result and error class of a fresh RunReuse at every
// tuple. It is diffSweep one tier up.
func batchDiffSweep(t *testing.T, p *Program, values [][]int64, maxSteps int64, width int, memo bool) {
	t.Helper()
	c, err := p.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	k := len(values)
	if k != p.Arity() || k == 0 {
		t.Fatalf("domain arity %d, program arity %d (batch needs ≥ 1)", k, p.Arity())
	}
	lanes, err := c.NewLanes(width)
	if err != nil {
		t.Fatalf("NewLanes: %v", err)
	}
	fregs := make([]int64, c.Slots())
	regs := make([]int64, c.Slots())
	snap := c.NewSnapshot()
	out := make([]Result, width)
	inner := values[k-1]
	idx := make([]int, k)
	in := make([]int64, k)
	for i := range in {
		if len(values[i]) == 0 {
			return
		}
		in[i] = values[i][0]
	}
	for {
		// One row of the odometer: stride over the innermost axis.
		for j := 0; j < len(inner); {
			n := len(inner) - j
			if n > width {
				n = width
			}
			last := inner[j : j+n]
			in[k-1] = last[0]
			var batchErr error
			if memo {
				if j > 0 && snap.Valid() {
					batchErr = c.RunBatchFromSnapshot(lanes, snap, last, maxSteps, out[:n])
				} else {
					var r0 Result
					r0, batchErr = c.RunSnapshot(regs, in, maxSteps, snap)
					out[0] = r0
					if batchErr == nil && n > 1 {
						if snap.Valid() {
							batchErr = c.RunBatchFromSnapshot(lanes, snap, last[1:], maxSteps, out[1:n])
						} else {
							batchErr = c.RunBatch(lanes, in, last[1:], maxSteps, out[1:n])
						}
					}
				}
			} else {
				batchErr = c.RunBatch(lanes, in, last, maxSteps, out[:n])
			}
			// The scalar reference, lane by lane; the batch must return the
			// first error in lane order and every earlier lane's exact
			// Result.
			var wantErr error
			for lane := 0; lane < n; lane++ {
				in[k-1] = last[lane]
				wantRes, werr := c.RunReuse(fregs, in, maxSteps)
				if werr != nil {
					wantErr = werr
					break
				}
				if batchErr == nil && out[lane] != wantRes {
					t.Fatalf("%q at %v lane %d (memo=%v width=%d): batch = %+v, scalar = %+v",
						p.Name, in, lane, memo, width, out[lane], wantRes)
				}
			}
			if (batchErr == nil) != (wantErr == nil) ||
				errors.Is(batchErr, ErrStepLimit) != errors.Is(wantErr, ErrStepLimit) {
				t.Fatalf("%q stride at %v (memo=%v width=%d): batch err = %v, scalar err = %v",
					p.Name, in, memo, width, batchErr, wantErr)
			}
			if batchErr != nil {
				return // the sweep would abort here; so does the comparison
			}
			j += n
		}
		// Carry the outer digits; the innermost axis restarts per row.
		done := true
		for i := k - 2; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(values[i]) {
				in[i] = values[i][idx[i]]
				done = false
				break
			}
			idx[i] = 0
			in[i] = values[i][0]
		}
		if done {
			return
		}
	}
}

// The handcrafted divergence-heavy programs: branches on the innermost
// input split lanes at every width, loops whose trip count is the
// innermost input make lanes leave the batch at different steps, and the
// snapshot edge cases (dead innermost input, output-is-input) cross with
// batching.
func TestBatchDifferentialPrograms(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"diverge-first-instruction", `
program divergefirst
inputs x1 x2
    if x2 > 0 goto Pos else NonPos
Pos:    y := x2 + x1
        halt
NonPos: y := x1 - x2
        halt
`},
		{"diverge-three-way", `
program divergethree
inputs x1 x2
    if x2 > 1 goto Hi else Rest
Rest: if x2 < 0 goto Lo else Mid
Hi:  y := x1 + 100
     halt
Mid: y := x1
     halt
Lo:  y := x1 - 100
     halt
`},
		{"loop-on-innermost", `
program loopinner
inputs x1 x2
    i := x2 & 7
    y := x1
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      y := y + 2
      goto Loop
Done: halt
`},
		{"straightline-vector", `
program vec
inputs x1 x2
    a := x2 + 3
    b := a * x1
    c := b & 255
    y := c ^ a
    halt
`},
		{"guarded-division", `
program guarded
inputs x1 x2
    y := x1 / x2
    y := y + x1 % x2
    halt
`},
		{"violation-on-branch", `
program viol
inputs x1 x2
    if x2 == 2 goto Bad else Ok
Bad: violation "x2 is two"
Ok:  y := x1 + x2
     halt
`},
		{"dead-innermost", `
program deadinput
inputs x1 x2
    x2 := x1 + 1
    y := x2 * 2
    halt
`},
		{"output-is-innermost", `
program outinput
inputs x1 y
    r := x1
    halt
`},
	}
	widths := []int{1, 2, 3, 8, 32}
	for _, tc := range cases {
		p := MustParse(tc.src)
		for _, w := range widths {
			for _, memo := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/w%d/memo=%v", tc.name, w, memo), func(t *testing.T) {
					batchDiffSweep(t, p, grid2(-2, 3), DefaultMaxSteps, w, memo)
				})
			}
		}
	}
}

// TestBatchAllLanesDiverge drives a stride where every live lane leaves
// the batch at the first decision: lanes alternate branch directions, so
// whichever side stays, the other half is extracted scalar immediately —
// and with two lanes of opposite sign the tie rule (true side stays)
// decides.
func TestBatchAllLanesDiverge(t *testing.T) {
	p := MustParse(`
program split
inputs x1 x2
    if x2 > 0 goto Pos else NonPos
Pos:    y := x1 + x2
        halt
NonPos: y := x1 - x2
        halt
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lanes, err := c.NewLanes(8)
	if err != nil {
		t.Fatal(err)
	}
	last := []int64{1, -1, 2, -2, 3, -3, 4, -4}
	out := make([]Result, len(last))
	if err := c.RunBatch(lanes, []int64{7, last[0]}, last, DefaultMaxSteps, out); err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	regs := make([]int64, c.Slots())
	for i, v := range last {
		want, err := c.RunReuse(regs, []int64{7, v}, DefaultMaxSteps)
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("lane %d (x2=%d): batch = %+v, scalar = %+v", i, v, out[i], want)
		}
	}
}

// TestBatchStepLimit exercises budget exhaustion mid-batch: a loop whose
// trip count is the innermost input makes short lanes halt and long lanes
// run out of budget, in the same batch. The batch must return ErrStepLimit
// (the first lane-ordered error) exactly when the scalar runs would, and
// lanes that halted before exhaustion keep their exact results.
func TestBatchStepLimit(t *testing.T) {
	p := MustParse(`
program spin
inputs x1 x2
    i := x2
    y := x1
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: halt
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lanes, err := c.NewLanes(4)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]int64, c.Slots())
	for _, budget := range []int64{1, 5, 10, 20, 100} {
		last := []int64{0, 2, 30, 1}
		out := make([]Result, len(last))
		batchErr := c.RunBatch(lanes, []int64{1, last[0]}, last, budget, out)
		var wantErr error
		for lane, v := range last {
			res, err := c.RunReuse(regs, []int64{1, v}, budget)
			if err != nil {
				wantErr = err
				break
			}
			if batchErr == nil && out[lane] != res {
				t.Fatalf("budget %d lane %d: batch = %+v, scalar = %+v", budget, lane, out[lane], res)
			}
		}
		if (batchErr == nil) != (wantErr == nil) || errors.Is(batchErr, ErrStepLimit) != errors.Is(wantErr, ErrStepLimit) {
			t.Fatalf("budget %d: batch err = %v, scalar err = %v", budget, batchErr, wantErr)
		}
	}
}

// TestBatchNarrowTail checks batches narrower than the allocated width —
// the sweep's chunk tails — including a single lane, and rejects the
// shapes the contract forbids (empty batch, batch wider than the lanes,
// mismatched result buffer, lanes from another program).
func TestBatchNarrowTail(t *testing.T) {
	p := MustParse(`
program tail
inputs x1 x2
    y := x1 * 10 + x2
    halt
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lanes, err := c.NewLanes(8)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]int64, c.Slots())
	for n := 1; n <= 8; n++ {
		last := make([]int64, n)
		for i := range last {
			last[i] = int64(i)
		}
		out := make([]Result, n)
		if err := c.RunBatch(lanes, []int64{3, last[0]}, last, DefaultMaxSteps, out); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range last {
			want, err := c.RunReuse(regs, []int64{3, last[i]}, DefaultMaxSteps)
			if err != nil {
				t.Fatal(err)
			}
			if out[i] != want {
				t.Fatalf("n=%d lane %d: batch = %+v, scalar = %+v", n, i, out[i], want)
			}
		}
	}
	if err := c.RunBatch(lanes, []int64{3, 0}, nil, DefaultMaxSteps, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := c.RunBatch(lanes, []int64{3, 0}, make([]int64, 9), DefaultMaxSteps, make([]Result, 9)); err == nil {
		t.Fatal("batch wider than lane capacity accepted")
	}
	if err := c.RunBatch(lanes, []int64{3, 0}, make([]int64, 4), DefaultMaxSteps, make([]Result, 3)); err == nil {
		t.Fatal("mismatched result buffer accepted")
	}
	other, err := MustParse("program other\ninputs a b\n y := a + b\n halt\n").Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RunBatch(lanes, []int64{1, 0}, make([]int64, 2), DefaultMaxSteps, make([]Result, 2)); err == nil {
		t.Fatal("lanes from another program accepted")
	}
	if _, err := c.NewLanes(0); err == nil {
		t.Fatal("zero-width lanes accepted")
	}
}

// TestBatchFromSnapshotContract pins the snapshot entry point's edge
// cases: an invalid snapshot is ErrNoSnapshot, and a constant snapshot
// (recording run never touched the innermost input) replicates its result
// into every lane.
func TestBatchFromSnapshotContract(t *testing.T) {
	p := MustParse(`
program untouched
inputs x1 x2
    y := x1 * 3
    halt
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lanes, err := c.NewLanes(4)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.NewSnapshot()
	out := make([]Result, 3)
	if err := c.RunBatchFromSnapshot(lanes, snap, make([]int64, 3), DefaultMaxSteps, out); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("invalid snapshot: err = %v, want ErrNoSnapshot", err)
	}
	regs := make([]int64, c.Slots())
	want, err := c.RunSnapshot(regs, []int64{2, 0}, DefaultMaxSteps, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Valid() {
		t.Fatal("snapshot not valid after recording run")
	}
	if err := c.RunBatchFromSnapshot(lanes, snap, []int64{5, 6, 7}, DefaultMaxSteps, out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r != want {
			t.Fatalf("lane %d: %+v, want replicated %+v", i, r, want)
		}
	}
}
