package flowchart

import (
	"fmt"
	"math"
)

// Compiled is a program lowered to slot-indexed form: variable names are
// resolved to positions in a flat register file and expressions become
// closures over it, removing per-step map lookups. Compiled.Run computes
// exactly the same Result (value, steps, violations) as Program.RunBudget;
// the equivalence is property-tested against the tree-walking interpreter.
//
// This is the library's interpreter ablation: the benchmarks compare
// map-environment interpretation against compiled execution so the cost
// attributed to surveillance instrumentation can be separated from the
// cost of the execution engine.
type Compiled struct {
	Source *Program

	slotOf     map[string]int
	inputSlots []int
	outputSlot int
	code       []cnode
	start      int32
	// lastBit is the touch-mask bit of the innermost input (1 << (k-1)),
	// or 0 when the program has no inputs or more than 64 of them — in
	// which case RunSnapshot never captures and callers fall back to full
	// runs. lastSlot is that input's register slot.
	lastBit  uint64
	lastSlot int
	// batchState is the lazily-compiled third execution tier (batch.go):
	// columnar kernels built on first NewLanes, shared by every worker.
	batchState
}

type cnode struct {
	kind      Kind
	target    int
	expr      func(regs []int64) int64
	cond      func(regs []int64) bool
	next      int32
	onTrue    int32
	onFalse   int32
	violation bool
	notice    string
	// touch is the static input trace of this instruction: bit i is set
	// when executing the node may read or write input i's register. An
	// assign touches the inputs its expression mentions plus its target; a
	// decision touches its predicate's inputs; a non-violating halt reads
	// the output variable, which may itself be an input. The snapshot fast
	// path (RunSnapshot/RunFromSnapshot) captures execution state at the
	// first instruction whose mask intersects the innermost input.
	touch uint64
}

// Compile lowers the program. The program must validate.
func (p *Program) Compile() (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Source: p, slotOf: make(map[string]int)}
	slot := func(name string) int {
		if s, ok := c.slotOf[name]; ok {
			return s
		}
		s := len(c.slotOf)
		c.slotOf[name] = s
		return s
	}
	for _, in := range p.Inputs {
		c.inputSlots = append(c.inputSlots, slot(in))
	}
	c.outputSlot = slot(p.OutputVar())
	c.lastSlot = -1
	if k := len(p.Inputs); k > 0 && k <= 64 {
		c.lastBit = 1 << (k - 1)
		c.lastSlot = c.inputSlots[k-1]
	}
	// bitOf maps a variable name to its input-trace bit; non-input
	// variables contribute nothing to a node's touch mask.
	bitOf := make(map[string]uint64, len(p.Inputs))
	if c.lastBit != 0 {
		for i, in := range p.Inputs {
			bitOf[in] = 1 << i
		}
	}
	touchMask := func(n interface{ AddVars(map[string]bool) }, extra ...string) uint64 {
		set := make(map[string]bool)
		if n != nil {
			n.AddVars(set)
		}
		for _, v := range extra {
			set[v] = true
		}
		var mask uint64
		for v := range set {
			mask |= bitOf[v]
		}
		return mask
	}
	c.code = make([]cnode, len(p.Nodes))
	for i := range p.Nodes {
		n := &p.Nodes[i]
		cn := cnode{kind: n.Kind, next: int32(n.Next), onTrue: int32(n.True), onFalse: int32(n.False),
			violation: n.Violation, notice: n.Notice}
		switch n.Kind {
		case KindAssign:
			cn.touch = touchMask(n.Expr, n.Target)
			cn.target = slot(n.Target)
			e, err := compileExpr(n.Expr, slot)
			if err != nil {
				return nil, fmt.Errorf("flowchart %q: node %d: %w", p.Name, i, err)
			}
			cn.expr = e
		case KindDecision:
			cn.touch = touchMask(n.Cond)
			q, err := compilePred(n.Cond, slot)
			if err != nil {
				return nil, fmt.Errorf("flowchart %q: node %d: %w", p.Name, i, err)
			}
			cn.cond = q
		case KindHalt:
			if !n.Violation {
				cn.touch = touchMask(nil, p.OutputVar())
			}
		}
		c.code[i] = cn
	}
	c.start = int32(p.Start)
	return c, nil
}

// Slots returns the register-file size.
func (c *Compiled) Slots() int { return len(c.slotOf) }

// Run executes the compiled program; semantics identical to
// Program.RunBudget.
func (c *Compiled) Run(inputs []int64, maxSteps int64) (Result, error) {
	return c.RunReuse(make([]int64, len(c.slotOf)), inputs, maxSteps)
}

// RunReuse is Run with a caller-owned register file, so enumeration loops
// (the sweep engine's compiled fast path) pay no per-tuple allocation. regs
// must hold at least Slots() entries and is reinitialised here; the caller
// must not share it between concurrent runs.
func (c *Compiled) RunReuse(regs []int64, inputs []int64, maxSteps int64) (Result, error) {
	if len(inputs) != len(c.inputSlots) {
		return Result{}, fmt.Errorf("%w: got %d inputs, program %q wants %d",
			ErrArity, len(inputs), c.Source.Name, len(c.inputSlots))
	}
	if len(regs) < len(c.slotOf) {
		return Result{}, fmt.Errorf("flowchart %q: register file has %d slots, need %d",
			c.Source.Name, len(regs), len(c.slotOf))
	}
	regs = regs[:len(c.slotOf)]
	for i := range regs {
		regs[i] = 0
	}
	for i, s := range c.inputSlots {
		regs[s] = inputs[i]
	}
	return c.runLoop(regs, c.start, 0, maxSteps)
}

// runLoop is the execution core shared by RunReuse, RunSnapshot, and
// RunFromSnapshot: it executes from an arbitrary (pc, steps) point against
// an already-initialised register file.
func (c *Compiled) runLoop(regs []int64, pc int32, steps, maxSteps int64) (Result, error) {
	for {
		if steps >= maxSteps {
			return Result{Steps: steps}, fmt.Errorf("%w: budget %d, program %q", ErrStepLimit, maxSteps, c.Source.Name)
		}
		n := &c.code[pc]
		steps++
		switch n.kind {
		case KindStart:
			pc = n.next
		case KindAssign:
			regs[n.target] = n.expr(regs)
			pc = n.next
		case KindDecision:
			if n.cond(regs) {
				pc = n.onTrue
			} else {
				pc = n.onFalse
			}
		case KindHalt:
			if n.violation {
				return Result{Steps: steps, Violation: true, Notice: n.notice}, nil
			}
			return Result{Value: regs[c.outputSlot], Steps: steps}, nil
		default:
			return Result{Steps: steps}, fmt.Errorf("flowchart %q: node %d has unknown kind %d", c.Source.Name, pc, n.kind)
		}
	}
}

// compileExpr lowers an expression tree to a closure over the register
// file.
func compileExpr(e Expr, slot func(string) int) (func([]int64) int64, error) {
	switch x := e.(type) {
	case Const:
		v := int64(x)
		return func([]int64) int64 { return v }, nil
	case Var:
		s := slot(string(x))
		return func(regs []int64) int64 { return regs[s] }, nil
	case *Neg:
		sub, err := compileExpr(x.X, slot)
		if err != nil {
			return nil, err
		}
		return func(regs []int64) int64 { return -sub(regs) }, nil
	case *BitNot:
		sub, err := compileExpr(x.X, slot)
		if err != nil {
			return nil, err
		}
		return func(regs []int64) int64 { return ^sub(regs) }, nil
	case *Bin:
		if f := compileBinFast(x, slot); f != nil {
			return f, nil
		}
		l, err := compileExpr(x.L, slot)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.R, slot)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpAdd:
			return func(regs []int64) int64 { return l(regs) + r(regs) }, nil
		case OpSub:
			return func(regs []int64) int64 { return l(regs) - r(regs) }, nil
		case OpMul:
			return func(regs []int64) int64 { return l(regs) * r(regs) }, nil
		case OpDiv:
			return func(regs []int64) int64 {
				lv, rv := l(regs), r(regs)
				if rv == 0 {
					return 0
				}
				if lv == math.MinInt64 && rv == -1 {
					return math.MinInt64
				}
				return lv / rv
			}, nil
		case OpMod:
			return func(regs []int64) int64 {
				lv, rv := l(regs), r(regs)
				if rv == 0 {
					return 0
				}
				if lv == math.MinInt64 && rv == -1 {
					return 0
				}
				return lv % rv
			}, nil
		case OpAnd:
			return func(regs []int64) int64 { return l(regs) & r(regs) }, nil
		case OpOr:
			return func(regs []int64) int64 { return l(regs) | r(regs) }, nil
		case OpXor:
			return func(regs []int64) int64 { return l(regs) ^ r(regs) }, nil
		case OpAndNot:
			return func(regs []int64) int64 { return l(regs) &^ r(regs) }, nil
		default:
			return nil, fmt.Errorf("compile: unknown binary op %d", x.Op)
		}
	case *Cond:
		p, err := compilePred(x.P, slot)
		if err != nil {
			return nil, err
		}
		a, err := compileExpr(x.A, slot)
		if err != nil {
			return nil, err
		}
		b, err := compileExpr(x.B, slot)
		if err != nil {
			return nil, err
		}
		// Both arms evaluated, like the interpreter: constant time.
		return func(regs []int64) int64 {
			av, bv := a(regs), b(regs)
			if p(regs) {
				return av
			}
			return bv
		}, nil
	case *Call:
		if x.Resolved == nil || x.Resolved.Fn == nil {
			return nil, fmt.Errorf("compile: unresolved call to %q", x.Name)
		}
		args := make([]func([]int64) int64, len(x.Args))
		for i, a := range x.Args {
			f, err := compileExpr(a, slot)
			if err != nil {
				return nil, err
			}
			args[i] = f
		}
		fn := x.Resolved.Fn
		return func(regs []int64) int64 {
			vals := make([]int64, len(args))
			for i, f := range args {
				vals[i] = f(regs)
			}
			return fn(vals)
		}, nil
	default:
		return nil, fmt.Errorf("compile: unknown expression type %T", e)
	}
}

// compileBinFast specialises the overwhelmingly common var⊕const and
// var⊕var binary shapes into a single closure, so the compiled hot loop
// pays one indirect call per assignment instead of three. Returns nil when
// the shape or operator is not covered; the generic lowering handles it.
func compileBinFast(x *Bin, slot func(string) int) func([]int64) int64 {
	switch l := x.L.(type) {
	case Var:
		s := slot(string(l))
		switch r := x.R.(type) {
		case Const:
			c := int64(r)
			switch x.Op {
			case OpAdd:
				return func(regs []int64) int64 { return regs[s] + c }
			case OpSub:
				return func(regs []int64) int64 { return regs[s] - c }
			case OpMul:
				return func(regs []int64) int64 { return regs[s] * c }
			case OpAnd:
				return func(regs []int64) int64 { return regs[s] & c }
			case OpOr:
				return func(regs []int64) int64 { return regs[s] | c }
			case OpXor:
				return func(regs []int64) int64 { return regs[s] ^ c }
			case OpAndNot:
				return func(regs []int64) int64 { return regs[s] &^ c }
			}
		case Var:
			t := slot(string(r))
			switch x.Op {
			case OpAdd:
				return func(regs []int64) int64 { return regs[s] + regs[t] }
			case OpSub:
				return func(regs []int64) int64 { return regs[s] - regs[t] }
			case OpMul:
				return func(regs []int64) int64 { return regs[s] * regs[t] }
			case OpAnd:
				return func(regs []int64) int64 { return regs[s] & regs[t] }
			case OpOr:
				return func(regs []int64) int64 { return regs[s] | regs[t] }
			case OpXor:
				return func(regs []int64) int64 { return regs[s] ^ regs[t] }
			case OpAndNot:
				return func(regs []int64) int64 { return regs[s] &^ regs[t] }
			}
		}
	}
	return nil
}

// compileCmpFast is compileBinFast for comparisons.
func compileCmpFast(x *Cmp, slot func(string) int) func([]int64) bool {
	l, ok := x.L.(Var)
	if !ok {
		return nil
	}
	s := slot(string(l))
	switch r := x.R.(type) {
	case Const:
		c := int64(r)
		switch x.Op {
		case CmpEq:
			return func(regs []int64) bool { return regs[s] == c }
		case CmpNe:
			return func(regs []int64) bool { return regs[s] != c }
		case CmpLt:
			return func(regs []int64) bool { return regs[s] < c }
		case CmpLe:
			return func(regs []int64) bool { return regs[s] <= c }
		case CmpGt:
			return func(regs []int64) bool { return regs[s] > c }
		case CmpGe:
			return func(regs []int64) bool { return regs[s] >= c }
		}
	case Var:
		t := slot(string(r))
		switch x.Op {
		case CmpEq:
			return func(regs []int64) bool { return regs[s] == regs[t] }
		case CmpNe:
			return func(regs []int64) bool { return regs[s] != regs[t] }
		case CmpLt:
			return func(regs []int64) bool { return regs[s] < regs[t] }
		case CmpLe:
			return func(regs []int64) bool { return regs[s] <= regs[t] }
		case CmpGt:
			return func(regs []int64) bool { return regs[s] > regs[t] }
		case CmpGe:
			return func(regs []int64) bool { return regs[s] >= regs[t] }
		}
	}
	return nil
}

// compilePred lowers a predicate tree.
func compilePred(q Pred, slot func(string) int) (func([]int64) bool, error) {
	switch x := q.(type) {
	case BoolConst:
		v := bool(x)
		return func([]int64) bool { return v }, nil
	case *Not:
		sub, err := compilePred(x.X, slot)
		if err != nil {
			return nil, err
		}
		return func(regs []int64) bool { return !sub(regs) }, nil
	case *AndP:
		l, err := compilePred(x.L, slot)
		if err != nil {
			return nil, err
		}
		r, err := compilePred(x.R, slot)
		if err != nil {
			return nil, err
		}
		return func(regs []int64) bool {
			lv, rv := l(regs), r(regs)
			return lv && rv
		}, nil
	case *OrP:
		l, err := compilePred(x.L, slot)
		if err != nil {
			return nil, err
		}
		r, err := compilePred(x.R, slot)
		if err != nil {
			return nil, err
		}
		return func(regs []int64) bool {
			lv, rv := l(regs), r(regs)
			return lv || rv
		}, nil
	case *Cmp:
		if f := compileCmpFast(x, slot); f != nil {
			return f, nil
		}
		l, err := compileExpr(x.L, slot)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(x.R, slot)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case CmpEq:
			return func(regs []int64) bool { return l(regs) == r(regs) }, nil
		case CmpNe:
			return func(regs []int64) bool { return l(regs) != r(regs) }, nil
		case CmpLt:
			return func(regs []int64) bool { return l(regs) < r(regs) }, nil
		case CmpLe:
			return func(regs []int64) bool { return l(regs) <= r(regs) }, nil
		case CmpGt:
			return func(regs []int64) bool { return l(regs) > r(regs) }, nil
		case CmpGe:
			return func(regs []int64) bool { return l(regs) >= r(regs) }, nil
		default:
			return nil, fmt.Errorf("compile: unknown comparison op %d", x.Op)
		}
	default:
		return nil, fmt.Errorf("compile: unknown predicate type %T", q)
	}
}
