package flowchart

import (
	"errors"
	"fmt"
	"testing"
)

// diffSweep enumerates the cartesian product of values in odometer order
// (last axis fastest) and checks that the snapshot fast path — one
// RunSnapshot per row, RunFromSnapshot for every further value of the
// innermost input — produces exactly the Result and error of a fresh
// RunReuse, and of the tree-walking interpreter, at every tuple.
func diffSweep(t *testing.T, p *Program, values [][]int64, maxSteps int64) {
	t.Helper()
	c, err := p.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	k := len(values)
	if k != p.Arity() {
		t.Fatalf("domain arity %d, program arity %d", k, p.Arity())
	}
	regs := make([]int64, c.Slots())
	fregs := make([]int64, c.Slots())
	snap := c.NewSnapshot()
	idx := make([]int, k)
	in := make([]int64, k)
	for i := range in {
		if len(values[i]) == 0 {
			return
		}
		in[i] = values[i][0]
	}
	innerOnly := false
	for {
		wantRes, wantErr := c.RunReuse(fregs, in, maxSteps)
		var gotRes Result
		var gotErr error
		resumed := false
		if innerOnly && snap.Valid() {
			gotRes, gotErr = c.RunFromSnapshot(regs, snap, in[k-1], maxSteps)
			resumed = true
			if errors.Is(gotErr, ErrNoSnapshot) {
				gotRes, gotErr = c.RunSnapshot(regs, in, maxSteps, snap)
				resumed = false
			}
		} else {
			gotRes, gotErr = c.RunSnapshot(regs, in, maxSteps, snap)
		}
		tag := fmt.Sprintf("%q at %v (resumed=%v)", p.Name, in, resumed)
		if (gotErr == nil) != (wantErr == nil) ||
			errors.Is(gotErr, ErrStepLimit) != errors.Is(wantErr, ErrStepLimit) {
			t.Fatalf("%s: err = %v, fresh run err = %v", tag, gotErr, wantErr)
		}
		if gotRes != wantRes {
			t.Fatalf("%s: result = %+v, fresh run = %+v", tag, gotRes, wantRes)
		}
		if iRes, iErr := p.RunBudget(in, maxSteps, nil); iErr == nil && wantErr == nil && gotRes != iRes {
			t.Fatalf("%s: result = %+v, interpreter = %+v", tag, gotRes, iRes)
		}
		// Advance the odometer; innerOnly records whether only the
		// innermost axis moved.
		innerOnly = false
		done := true
		for i := k - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(values[i]) {
				in[i] = values[i][idx[i]]
				innerOnly = i == k-1
				done = false
				break
			}
			idx[i] = 0
			in[i] = values[i][0]
		}
		if done {
			return
		}
	}
}

func grid2(lo, hi int64) [][]int64 {
	var axis []int64
	for v := lo; v <= hi; v++ {
		axis = append(axis, v)
	}
	return [][]int64{axis, axis}
}

// The edge cases the snapshot-validity rules call out: late single read,
// re-read inputs, reads under data-dependent branches, branching on the
// innermost input itself, writing the innermost input before reading it,
// never touching it, and the output variable being the innermost input.
func TestSnapshotDifferentialEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"late-read", `
program latereads
inputs x1 x2
    i := x1 & 7
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: y := x2
      halt
`},
		{"reread", `
program reread
inputs x1 x2
    a := x2 + 1
    b := x2 * a
    y := b + x1 + x2
    halt
`},
		{"read-under-branch", `
program branchread
inputs x1 x2
    if x1 == 0 goto Zero else NonZero
Zero:    y := x2
         halt
NonZero: y := x1
         halt
`},
		{"branch-on-innermost", `
program branchinner
inputs x1 x2
    if x2 > 0 goto Pos else NonPos
Pos:    y := x2 + x1
        halt
NonPos: y := x1 - x2
        halt
`},
		{"write-before-read", `
program deadinput
inputs x1 x2
    x2 := x1 + 1
    y := x2 * 2
    halt
`},
		{"never-touched", `
program untouched
inputs x1 x2
    y := x1 * 3
    halt
`},
		{"loop-on-innermost", `
program loopinner
inputs x1 x2
    i := x2 & 3
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: y := x1
      halt
`},
		{"output-is-innermost", `
program outinput
inputs x1 y
    r := x1
    halt
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diffSweep(t, MustParse(tc.src), grid2(-2, 3), DefaultMaxSteps)
		})
	}
}

// TestSnapshotStepLimit covers the maxSteps-exhaustion rules: a budget
// that dies before the innermost input is ever touched leaves the
// snapshot invalid (fallback), while a budget that dies after the capture
// point replays to the identical ErrStepLimit at the identical step
// count.
func TestSnapshotStepLimit(t *testing.T) {
	// The loop spins on x1 (prefix), then reads x2; budget 5 dies inside
	// the prefix, budget 1000 dies never.
	pre := MustParse(`
program prefixspin
inputs x1 x2
    i := x1 & 63
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: y := x2
      halt
`)
	t.Run("exhaust-before-capture", func(t *testing.T) {
		c, err := pre.Compile()
		if err != nil {
			t.Fatal(err)
		}
		regs := make([]int64, c.Slots())
		snap := c.NewSnapshot()
		_, err = c.RunSnapshot(regs, []int64{63, 1}, 5, snap)
		if !errors.Is(err, ErrStepLimit) {
			t.Fatalf("err = %v, want ErrStepLimit", err)
		}
		if snap.Valid() {
			t.Fatalf("snapshot valid after pre-capture exhaustion: %v", snap)
		}
		if _, err := c.RunFromSnapshot(regs, snap, 2, 5); !errors.Is(err, ErrNoSnapshot) {
			t.Fatalf("RunFromSnapshot err = %v, want ErrNoSnapshot", err)
		}
	})
	t.Run("exhaust-after-capture", func(t *testing.T) {
		// The tail spins on x2, so a tight budget dies after the capture
		// point; the replay must report the same error and step count as a
		// fresh run.
		post := MustParse(`
program tailspin
inputs x1 x2
    a := x1 + 1
    i := x2 & 63
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: y := a
      halt
`)
		diffSweep(t, post, grid2(0, 5), 20)
	})
	t.Run("differential-under-budget", func(t *testing.T) {
		diffSweep(t, pre, grid2(0, 5), 9)
	})
}

// TestSnapshotArityZero: no innermost input exists, so the snapshot can
// never become valid, but the recording run still behaves like RunReuse.
func TestSnapshotArityZero(t *testing.T) {
	p := MustParse(`
program noinputs
    y := 41 + 1
    halt
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]int64, c.Slots())
	snap := c.NewSnapshot()
	res, err := c.RunSnapshot(regs, nil, DefaultMaxSteps, snap)
	if err != nil || res.Value != 42 {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if snap.Valid() {
		t.Fatalf("snapshot valid for arity-0 program: %v", snap)
	}
}

// TestSnapshotWrongProgram: snapshots stay bound to the Compiled that
// created them.
func TestSnapshotWrongProgram(t *testing.T) {
	a, err := MustParse("program a\ninputs x1\n    y := x1\n    halt\n").Compile()
	if err != nil {
		t.Fatal(err)
	}
	b, err := MustParse("program b\ninputs x1\n    y := x1\n    halt\n").Compile()
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]int64, a.Slots())
	snap := b.NewSnapshot()
	if _, err := a.RunSnapshot(regs, []int64{1}, DefaultMaxSteps, snap); err == nil {
		t.Fatal("RunSnapshot accepted a snapshot from another program")
	}
	if _, err := a.RunFromSnapshot(regs, snap, 1, DefaultMaxSteps); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("RunFromSnapshot err = %v, want ErrNoSnapshot", err)
	}
}

// TestSnapshotViolationConstant: a violation halt reached without touching
// the innermost input is constant evidence — the replay returns the
// recorded Λ without executing anything.
func TestSnapshotViolationConstant(t *testing.T) {
	p := MustParse(`
program lam
inputs x1 x2
    if x1 == 0 goto Ok else Bad
Ok:  y := x2
     halt
Bad: violation "leak"
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]int64, c.Slots())
	snap := c.NewSnapshot()
	res, err := c.RunSnapshot(regs, []int64{1, 7}, DefaultMaxSteps, snap)
	if err != nil || !res.Violation {
		t.Fatalf("res = %+v, err = %v, want violation", res, err)
	}
	if !snap.Valid() {
		t.Fatal("snapshot invalid after constant violation run")
	}
	got, err := c.RunFromSnapshot(regs, snap, -5, DefaultMaxSteps)
	if err != nil || got != res {
		t.Fatalf("replay = %+v, err = %v, want %+v", got, err, res)
	}
	// And the full differential, which mixes both branches per row.
	diffSweep(t, p, grid2(-1, 2), DefaultMaxSteps)
}

// TestInputTrace pins the static trace on a program where it is easy to
// read off: x1 is touched by the first assignment, x2 only by the last
// one before the halt, and the non-violating halt reads the output
// variable.
func TestInputTrace(t *testing.T) {
	p := MustParse(`
program traced
inputs x1 x2
    a := x1 + 1
    y := x2
    halt
`)
	c, err := p.Compile()
	if err != nil {
		t.Fatal(err)
	}
	trace := c.InputTrace()
	if len(trace) != 2 {
		t.Fatalf("trace has %d inputs, want 2", len(trace))
	}
	nodeOf := func(target string) int {
		for i := range p.Nodes {
			if p.Nodes[i].Kind == KindAssign && p.Nodes[i].Target == target {
				return i
			}
		}
		t.Fatalf("no assignment to %s", target)
		return -1
	}
	find := func(nodes []int, want int) bool {
		for _, n := range nodes {
			if n == want {
				return true
			}
		}
		return false
	}
	aNode, yNode := nodeOf("a"), nodeOf("y")
	if !find(trace[0], aNode) || find(trace[0], yNode) {
		t.Fatalf("x1 trace = %v, want assign-a node %d only", trace[0], aNode)
	}
	if !find(trace[1], yNode) || find(trace[1], aNode) {
		t.Fatalf("x2 trace = %v, want assign-y node %d, not %d", trace[1], yNode, aNode)
	}
}
