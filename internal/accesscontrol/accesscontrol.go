// Package accesscontrol reproduces Example 6 of Jones & Lipton: the
// distinction between *access control* policies and *information control*
// policies. "Enforcing an access control policy that specifies that the
// operation READFILE(A) cannot be performed is not the same as ensuring
// that information about A is not extracted. The operating system may have
// a sequence of operations excluding READFILE(A) that has the same effect
// as READFILE(A)."
//
// The model is a minimal file store whose k files are initialised from the
// mechanism's k inputs, driven by a script of operations — COPY(src, dst)
// and READ(f) — standing in for an operating system's file API. Two
// reference monitors guard the same script:
//
//   - AccessControl forbids the *operation* READ(f) for protected files f.
//     It is exactly the policy Example 6 warns about: a script that copies
//     a protected file somewhere readable extracts the information without
//     ever issuing a forbidden operation.
//   - FlowControl tracks, per file, the set of original files whose
//     information it may contain (the surveillance idea transplanted to
//     the file system), and forbids a READ whose result would carry
//     protected information however it got there.
//
// Against the information policy allow(unprotected), FlowControl is sound
// and AccessControl is not — the package's tests and experiment E19 verify
// both directions, including that the two monitors coincide on scripts
// with no copying.
package accesscontrol

import (
	"fmt"
	"strings"

	"spm/internal/core"
	"spm/internal/lattice"
)

// OpKind is a file-system operation kind.
type OpKind uint8

// Operation kinds.
const (
	// OpCopy copies Src's contents to Dst.
	OpCopy OpKind = iota
	// OpRead outputs Src's contents and ends the script.
	OpRead
)

// Op is one scripted operation. File indices are 1-based, matching the
// input positions.
type Op struct {
	Kind OpKind
	Src  int
	Dst  int // OpCopy only
}

// String renders the op in the paper's style.
func (o Op) String() string {
	switch o.Kind {
	case OpCopy:
		return fmt.Sprintf("COPYFILE(%d→%d)", o.Src, o.Dst)
	case OpRead:
		return fmt.Sprintf("READFILE(%d)", o.Src)
	default:
		return fmt.Sprintf("Op(%d)", uint8(o.Kind))
	}
}

// Copy builds a COPYFILE op.
func Copy(src, dst int) Op { return Op{Kind: OpCopy, Src: src, Dst: dst} }

// Read builds a READFILE op.
func Read(src int) Op { return Op{Kind: OpRead, Src: src} }

// Script is a sequence of operations ending in a READ; it denotes a
// program Q : file contents → read value.
type Script struct {
	Name string
	K    int // number of files = mechanism arity
	Ops  []Op
}

// NewScript validates and builds a script.
func NewScript(name string, k int, ops ...Op) (*Script, error) {
	if k < 1 {
		return nil, fmt.Errorf("accesscontrol: need at least one file")
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("accesscontrol: empty script")
	}
	for i, op := range ops {
		if op.Src < 1 || op.Src > k {
			return nil, fmt.Errorf("accesscontrol: op %d: source file %d out of range", i, op.Src)
		}
		if op.Kind == OpCopy && (op.Dst < 1 || op.Dst > k) {
			return nil, fmt.Errorf("accesscontrol: op %d: destination file %d out of range", i, op.Dst)
		}
		if op.Kind == OpRead && i != len(ops)-1 {
			return nil, fmt.Errorf("accesscontrol: READ must be the final operation (op %d)", i)
		}
	}
	if ops[len(ops)-1].Kind != OpRead {
		return nil, fmt.Errorf("accesscontrol: script must end in READ")
	}
	return &Script{Name: name, K: k, Ops: ops}, nil
}

// MustScript is NewScript but panics on error.
func MustScript(name string, k int, ops ...Op) *Script {
	s, err := NewScript(name, k, ops...)
	if err != nil {
		panic(err)
	}
	return s
}

// String renders the script.
func (s *Script) String() string {
	parts := make([]string, len(s.Ops))
	for i, op := range s.Ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, "; ")
}

// Monitor selects the reference monitor guarding the script.
type Monitor uint8

// Monitors.
const (
	// NoMonitor runs the script unguarded: the bare program Q.
	NoMonitor Monitor = iota
	// AccessControl forbids READ of protected files (the operation, not
	// the information).
	AccessControl
	// FlowControl forbids READs whose result would carry protected
	// information, tracking flows through copies.
	FlowControl
)

// String names the monitor.
func (m Monitor) String() string {
	switch m {
	case AccessControl:
		return "access-control"
	case FlowControl:
		return "flow-control"
	default:
		return "unguarded"
	}
}

// Notices issued by the monitors.
const (
	NoticeAccessDenied = "READFILE operation denied by access control"
	NoticeFlowDenied   = "read value would carry protected information"
)

// Mechanism wraps a script under a monitor as a core.Mechanism. Protected
// names the files whose information is to be denied; the corresponding
// information policy is allow({1..k} \ Protected).
type Mechanism struct {
	S         *Script
	Protected lattice.IndexSet
	M         Monitor
}

// NewMechanism validates the protected set against the script.
func NewMechanism(s *Script, protected lattice.IndexSet, m Monitor) (*Mechanism, error) {
	if !protected.SubsetOf(lattice.AllInputs(s.K)) {
		return nil, fmt.Errorf("accesscontrol: protected%v exceeds %d files", protected, s.K)
	}
	return &Mechanism{S: s, Protected: protected, M: m}, nil
}

// Name implements core.Mechanism.
func (m *Mechanism) Name() string {
	return fmt.Sprintf("%s[%s,protect%v]", m.S.Name, m.M, m.Protected)
}

// Arity implements core.Mechanism.
func (m *Mechanism) Arity() int { return m.S.K }

// Policy returns the information policy the monitors are trying to
// enforce: allow everything except the protected files.
func (m *Mechanism) Policy() core.Policy {
	return core.NewAllowSet(m.S.K, lattice.AllInputs(m.S.K).Minus(m.Protected))
}

// Run implements core.Mechanism: the script executes over files loaded
// from the inputs; each operation costs one step.
func (m *Mechanism) Run(input []int64) (core.Outcome, error) {
	if len(input) != m.S.K {
		return core.Outcome{}, fmt.Errorf("accesscontrol: %q: got %d inputs, want %d", m.Name(), len(input), m.S.K)
	}
	contents := make([]int64, m.S.K+1) // 1-based
	taint := make([]lattice.IndexSet, m.S.K+1)
	for i := 0; i < m.S.K; i++ {
		contents[i+1] = input[i]
		taint[i+1] = lattice.NewIndexSet(i + 1)
	}
	var steps int64
	for _, op := range m.S.Ops {
		steps++
		switch op.Kind {
		case OpCopy:
			contents[op.Dst] = contents[op.Src]
			taint[op.Dst] = taint[op.Src]
		case OpRead:
			switch m.M {
			case AccessControl:
				if m.Protected.Contains(op.Src) {
					return core.Outcome{Violation: true, Notice: NoticeAccessDenied, Steps: steps}, nil
				}
			case FlowControl:
				if !taint[op.Src].Intersect(m.Protected).IsEmpty() {
					return core.Outcome{Violation: true, Notice: NoticeFlowDenied, Steps: steps}, nil
				}
			}
			return core.Outcome{Value: contents[op.Src], Steps: steps}, nil
		}
	}
	return core.Outcome{}, fmt.Errorf("accesscontrol: script %q did not end in READ", m.S.Name)
}
