package accesscontrol

import (
	"strings"
	"testing"

	"spm/internal/core"
	"spm/internal/lattice"
)

// laundered is Example 6's counterexample script: copy the protected file
// 1 into file 2, then read file 2 — no READFILE(1) ever happens.
func laundered() *Script {
	return MustScript("laundered", 2, Copy(1, 2), Read(2))
}

// direct reads the protected file outright.
func direct() *Script {
	return MustScript("direct", 2, Read(1))
}

// clean never touches file 1's information.
func clean() *Script {
	return MustScript("clean", 2, Read(2))
}

func protect1() lattice.IndexSet { return lattice.NewIndexSet(1) }

func dom2() core.Domain { return core.Grid(2, 0, 1, 2) }

func TestScriptValidation(t *testing.T) {
	if _, err := NewScript("x", 0, Read(1)); err == nil {
		t.Error("zero files accepted")
	}
	if _, err := NewScript("x", 2); err == nil {
		t.Error("empty script accepted")
	}
	if _, err := NewScript("x", 2, Read(3)); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := NewScript("x", 2, Copy(1, 5), Read(1)); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := NewScript("x", 2, Copy(1, 2)); err == nil {
		t.Error("script without READ accepted")
	}
	if _, err := NewScript("x", 2, Read(1), Copy(1, 2), Read(2)); err == nil {
		t.Error("non-final READ accepted")
	}
}

func TestAccessControlBlocksDirectRead(t *testing.T) {
	m, err := NewMechanism(direct(), protect1(), AccessControl)
	if err != nil {
		t.Fatal(err)
	}
	o, err := m.Run([]int64{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Violation || o.Notice != NoticeAccessDenied {
		t.Errorf("direct read under access control = %v", o)
	}
}

func TestExample6Laundering(t *testing.T) {
	// Access control happily permits the laundered read — and thereby
	// hands over file 1's contents.
	ac, err := NewMechanism(laundered(), protect1(), AccessControl)
	if err != nil {
		t.Fatal(err)
	}
	o, err := ac.Run([]int64{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if o.Violation || o.Value != 7 {
		t.Errorf("laundered read under access control = %v, want the protected 7", o)
	}
	// Flow control follows the information, not the operation name.
	fc, err := NewMechanism(laundered(), protect1(), FlowControl)
	if err != nil {
		t.Fatal(err)
	}
	o, err = fc.Run([]int64{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Violation || o.Notice != NoticeFlowDenied {
		t.Errorf("laundered read under flow control = %v, want Λ", o)
	}
}

func TestSoundnessVerdicts(t *testing.T) {
	// Against the information policy allow(2): flow control is sound on
	// the laundering script, access control is not.
	for _, tc := range []struct {
		mon   Monitor
		sound bool
	}{
		{NoMonitor, false},
		{AccessControl, false},
		{FlowControl, true},
	} {
		m, err := NewMechanism(laundered(), protect1(), tc.mon)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.CheckSoundness(m, m.Policy(), dom2(), core.ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Sound != tc.sound {
			t.Errorf("%s: sound=%v, want %v (%s)", tc.mon, rep.Sound, tc.sound, rep)
		}
	}
}

func TestMonitorsAgreeWithoutCopying(t *testing.T) {
	// On copy-free scripts the two monitors coincide.
	for _, s := range []*Script{direct(), clean()} {
		ac, err := NewMechanism(s, protect1(), AccessControl)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := NewMechanism(s, protect1(), FlowControl)
		if err != nil {
			t.Fatal(err)
		}
		err = dom2().Enumerate(func(in []int64) error {
			oa, err := ac.Run(in)
			if err != nil {
				return err
			}
			of, err := fc.Run(in)
			if err != nil {
				return err
			}
			if oa.Violation != of.Violation || (!oa.Violation && oa.Value != of.Value) {
				t.Errorf("%s: monitors disagree on %v: %v vs %v", s.Name, in, oa, of)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCleanScriptPassesBoth(t *testing.T) {
	for _, mon := range []Monitor{AccessControl, FlowControl} {
		m, err := NewMechanism(clean(), protect1(), mon)
		if err != nil {
			t.Fatal(err)
		}
		o, err := m.Run([]int64{7, 9})
		if err != nil {
			t.Fatal(err)
		}
		if o.Violation || o.Value != 9 {
			t.Errorf("%s on clean script = %v, want 9", mon, o)
		}
		rep, err := core.CheckSoundness(m, m.Policy(), dom2(), core.ObserveValue)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sound {
			t.Errorf("%s on clean script unsound: %s", mon, rep)
		}
	}
}

func TestMultiHopLaundering(t *testing.T) {
	// Two hops: 1 → 2 → 3; flow control still traces it.
	s := MustScript("twohop", 3, Copy(1, 2), Copy(2, 3), Read(3))
	fc, err := NewMechanism(s, protect1(), FlowControl)
	if err != nil {
		t.Fatal(err)
	}
	o, err := fc.Run([]int64{7, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Violation {
		t.Errorf("two-hop laundering not caught: %v", o)
	}
	// Overwriting the copy clears the flow (forgetting, as in
	// surveillance): 1 → 2, then 3 → 2, read 2 is fine.
	s2 := MustScript("overwrite", 3, Copy(1, 2), Copy(3, 2), Read(2))
	fc2, err := NewMechanism(s2, protect1(), FlowControl)
	if err != nil {
		t.Fatal(err)
	}
	o, err = fc2.Run([]int64{7, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if o.Violation || o.Value != 4 {
		t.Errorf("overwritten copy should read clean: %v", o)
	}
	rep, err := core.CheckSoundness(fc2, fc2.Policy(), core.Grid(3, 0, 1), core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("overwrite script unsound: %s", rep)
	}
}

func TestMechanismErrors(t *testing.T) {
	if _, err := NewMechanism(direct(), lattice.NewIndexSet(5), FlowControl); err == nil {
		t.Error("protected set beyond files accepted")
	}
	m, err := NewMechanism(direct(), protect1(), FlowControl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]int64{1}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if !strings.Contains(m.Name(), "flow-control") {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestStrings(t *testing.T) {
	if got := laundered().String(); !strings.Contains(got, "COPYFILE(1→2)") || !strings.Contains(got, "READFILE(2)") {
		t.Errorf("script String = %q", got)
	}
	if NoMonitor.String() != "unguarded" {
		t.Error("monitor names")
	}
}
