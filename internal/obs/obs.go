// Package obs is the library's zero-dependency observability layer: a
// metrics registry exposed in Prometheus text format and a ring-buffered
// per-job trace recorder. It exists so every layer of the stack — the
// sweep engine, the execution tiers, the serve node, and the cluster
// coordinator — can report what it is doing through one seam without
// pulling a third-party client library into a stdlib-only module.
//
// Two rules shape the API. First, instrument handles are resolved once
// and then updated with a single atomic operation: Registry.Counter and
// friends are called at construction time, the returned *Counter /
// *Gauge / *Histogram is cached by the instrumented component, and the
// hot path never touches a map or a lock. Second, everything is nil-safe:
// calling Inc/Set/Observe on a nil instrument, or Event on a nil Trace,
// is a no-op — so library code can thread optional observation through
// without guarding every call site, and benchmarks with observation
// disabled pay only a nil check.
//
// Values that are cheap to read but expensive to push (queue depths,
// cache occupancy) are sampled at scrape time instead: register a
// gather hook with Registry.OnGather and set gauges there, or expose a
// read-only source directly with CounterFunc/GaugeFunc.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// maxSeries bounds the number of label combinations one family will
// track. The registry is meant for bounded label sets (pools, states,
// tenants under quota); past the cap every new combination collapses
// into a single overflow series so a label-cardinality bug cannot grow
// memory without bound.
const maxSeries = 1024

// overflowLabel is the label value the overflow series carries.
const overflowLabel = "overflow"

// Counter is a monotonically increasing metric. The zero value is ready
// to use; a nil *Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative n is ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge ignores
// updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by d (which may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets is the default latency histogram layout: 100µs to 5
// minutes, the span between a verdict-store hit and a large checkpointed
// sweep. Bounds are in seconds, matching the *_seconds naming
// convention.
var DefBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60, 300,
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative in
// the exposition, per-bucket internally; Observe is lock-free (one
// atomic add per observation plus a CAS loop for the sum). A nil
// *Histogram ignores observations.
type Histogram struct {
	bounds []float64      // sorted upper bounds, +Inf implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot returns cumulative bucket counts, the sum, and the count,
// consistent enough for exposition (individual atomics may lag one
// in-flight observation).
func (h *Histogram) snapshot() (cum []int64, sum float64, count int64) {
	cum = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, math.Float64frombits(h.sum.Load()), h.count.Load()
}

// family is one named metric with zero or more labeled series.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label key → *Counter | *Gauge | *Histogram
	order  []string
	lsets  map[string][]string // label key → label values

	fn func() float64 // CounterFunc/GaugeFunc families
}

// Registry holds a set of metric families and renders them in
// Prometheus text exposition format. The zero value is not usable; call
// New. A nil *Registry returns nil instruments from every constructor,
// so a component written against an optional registry degrades to
// no-ops throughout.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	order    []*family
	gatherMu sync.Mutex
	hooks    []func()
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// OnGather registers fn to run at the start of every exposition, before
// any family is rendered — the seam for sampling values that are read
// on demand rather than pushed (queue depths, cache occupancy, stats
// snapshots).
func (r *Registry) OnGather(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.gatherMu.Lock()
	r.hooks = append(r.hooks, fn)
	r.gatherMu.Unlock()
}

// register resolves (or creates) the family for name, enforcing that a
// name keeps one type and label set for the registry's lifetime.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s with %d labels (was %s with %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  map[string]any{},
		lsets:   map[string][]string{},
	}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

// with resolves the series for the given label values, creating it with
// mk on first use and collapsing into the overflow series past
// maxSeries.
func (f *family) with(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if len(f.order) >= maxSeries {
		of := make([]string, len(f.labels))
		for i := range of {
			of[i] = overflowLabel
		}
		key = strings.Join(of, "\xff")
		if s, ok := f.series[key]; ok {
			return s
		}
		values = of
	}
	s := mk()
	f.series[key] = s
	f.order = append(f.order, key)
	f.lsets[key] = append([]string(nil), values...)
	return s
}

// Counter returns the counter named name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, "counter", nil, nil)
	return f.with(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, "gauge", nil, nil)
	return f.with(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram named name with the given bucket
// upper bounds (DefBuckets when nil), creating it on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, "histogram", nil, buckets)
	return f.with(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec declares a labeled counter family; use With to resolve a
// series. A nil registry returns a nil vec whose With returns nil.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, "counter", labels, nil)}
}

// GaugeVec declares a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, "gauge", labels, nil)}
}

// HistogramVec declares a labeled histogram family (DefBuckets when
// buckets is nil).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, "histogram", labels, buckets)}
}

// CounterFunc exposes a counter whose value is read from fn at every
// exposition — for sources that already keep their own monotone count.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, "counter", nil, nil)
	f.fn = fn
}

// GaugeFunc exposes a gauge whose value is read from fn at every
// exposition.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, "gauge", nil, nil)
	f.fn = fn
}

// CounterVec resolves labeled counters. Series handles should be cached
// by the caller when the label set is known up front.
type CounterVec struct{ f *family }

// With returns the series for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec resolves labeled gauges.
type GaugeVec struct{ f *family }

// With returns the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec resolves labeled histograms.
type HistogramVec struct{ f *family }

// With returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	f := v.f
	return f.with(values, func() any { return newHistogram(f.buckets) }).(*Histogram)
}
