package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition media type served by
// Registry.ServeHTTP.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteTo renders every family in registration order in Prometheus text
// exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, one sample line per series, histograms expanded into
// cumulative _bucket series plus _sum and _count. Gather hooks run
// first, so sampled gauges are fresh.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.gatherMu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.gatherMu.Unlock()
	for _, h := range hooks {
		h()
	}

	r.mu.Lock()
	fams := append([]*family{}, r.order...)
	r.mu.Unlock()

	cw := &countWriter{w: bufio.NewWriter(w)}
	for _, f := range fams {
		f.expose(cw)
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ServeHTTP writes the exposition, making a registry mountable directly
// on a mux.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	r.WriteTo(w)
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) printf(format string, args ...any) {
	if c.err != nil {
		return
	}
	n, err := fmt.Fprintf(c.w, format, args...)
	c.n += int64(n)
	c.err = err
}

func (f *family) expose(w *countWriter) {
	if f.help != "" {
		w.printf("# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	w.printf("# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		w.printf("%s %s\n", f.name, fmtFloat(f.fn()))
		return
	}
	f.mu.Lock()
	keys := append([]string{}, f.order...)
	type row struct {
		labels []string
		metric any
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{labels: f.lsets[k], metric: f.series[k]})
	}
	f.mu.Unlock()
	for _, rw := range rows {
		switch m := rw.metric.(type) {
		case *Counter:
			w.printf("%s%s %s\n", f.name, labelString(f.labels, rw.labels, "", ""), fmtFloat(float64(m.Value())))
		case *Gauge:
			w.printf("%s%s %s\n", f.name, labelString(f.labels, rw.labels, "", ""), fmtFloat(m.Value()))
		case *Histogram:
			cum, sum, count := m.snapshot()
			for i, bound := range m.bounds {
				w.printf("%s_bucket%s %d\n", f.name,
					labelString(f.labels, rw.labels, "le", fmtFloat(bound)), cum[i])
			}
			w.printf("%s_bucket%s %d\n", f.name,
				labelString(f.labels, rw.labels, "le", "+Inf"), cum[len(cum)-1])
			w.printf("%s_sum%s %s\n", f.name, labelString(f.labels, rw.labels, "", ""), fmtFloat(sum))
			w.printf("%s_count%s %d\n", f.name, labelString(f.labels, rw.labels, "", ""), count)
		}
	}
}

// labelString renders a {k="v",...} label block, with an optional extra
// pair (the histogram le label); empty when there are no labels at all.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
