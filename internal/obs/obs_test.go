package obs

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryRoundTrip renders a registry with every instrument kind
// and re-reads it through ParseExposition — the same validation the CI
// metrics smoke applies to a live /v2/metrics endpoint.
func TestRegistryRoundTrip(t *testing.T) {
	r := New()
	r.Counter("jobs_total", "jobs ever").Add(3)
	r.CounterVec("state_total", "by state", "state").With("done").Add(2)
	r.CounterVec("state_total", "by state", "state").With("failed").Inc()
	r.Gauge("depth", "queue depth").Set(4.5)
	r.GaugeVec("pool_depth", "per pool", "pool").With("0").Set(2)
	h := r.Histogram("wait_seconds", "queue wait", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.CounterFunc("fn_total", "sampled counter", func() float64 { return 7 })
	r.GaugeFunc("fn_gauge", "sampled gauge", func() float64 { return -1.5 })
	hooked := false
	r.OnGather(func() { hooked = true })

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if !hooked {
		t.Fatal("gather hook did not run")
	}
	text := buf.String()
	fams, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition on own output: %v\n%s", err, text)
	}
	if v, ok := fams["jobs_total"].Get(nil); !ok || v != 3 {
		t.Errorf("jobs_total = %v, %v; want 3", v, ok)
	}
	if v, ok := fams["state_total"].Get(map[string]string{"state": "done"}); !ok || v != 2 {
		t.Errorf("state_total{state=done} = %v, %v; want 2", v, ok)
	}
	if fams["wait_seconds"].Type != "histogram" {
		t.Errorf("wait_seconds type = %q, want histogram", fams["wait_seconds"].Type)
	}
	bks := fams["wait_seconds"].Buckets(nil)
	if len(bks) != 4 || !math.IsInf(bks[3].LE, 1) || bks[3].Count != 3 {
		t.Errorf("wait_seconds buckets = %+v", bks)
	}
	if v, ok := fams["fn_total"].Get(nil); !ok || v != 7 {
		t.Errorf("fn_total = %v, %v; want 7", v, ok)
	}
	if v, ok := fams["fn_gauge"].Get(nil); !ok || v != -1.5 {
		t.Errorf("fn_gauge = %v, %v; want -1.5", v, ok)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.CounterVec("esc_total", "escapes", "k").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseExposition: %v\n%s", err, buf.String())
	}
	if v, ok := fams["esc_total"].Get(map[string]string{"k": "a\"b\\c\nd"}); !ok || v != 1 {
		t.Errorf("escaped label round-trip failed: %v, %v\n%s", v, ok, buf.String())
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                 // no samples at all
		"1bad_name 3\n",    // name starts with a digit
		"x{le=\"oops} 1\n", // unterminated label value
		"x 1 2 3\n",        // too many fields
		"x nope\n",         // non-numeric value
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\n",                          // no +Inf bucket
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n", // not cumulative
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 2\n",            // count mismatch
	}
	for _, text := range bad {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("ParseExposition(%q) accepted malformed input", text)
		}
	}
}

func TestQuantile(t *testing.T) {
	buckets := []Bucket{
		{LE: 0.1, Count: 10},
		{LE: 1, Count: 90},
		{LE: math.Inf(1), Count: 100},
	}
	// Median rank 50 falls in the (0.1, 1] bucket: 0.1 + 0.9*(50-10)/80 = 0.55.
	if q := Quantile(0.5, buckets); math.Abs(q-0.55) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 0.55", q)
	}
	// Rank past every finite bound reports the largest finite bound.
	if q := Quantile(0.99, buckets); q != 1 {
		t.Errorf("Quantile(0.99) = %g, want 1", q)
	}
	if q := Quantile(0.5, nil); !math.IsNaN(q) {
		t.Errorf("Quantile of empty = %g, want NaN", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if _, err := ParseExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
}

func TestSeriesOverflowCollapses(t *testing.T) {
	r := New()
	v := r.CounterVec("many_total", "", "id")
	for i := 0; i < maxSeries+50; i++ {
		v.With(fmt.Sprintf("id-%d", i)).Inc()
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	if v, ok := fams["many_total"].Get(map[string]string{"id": overflowLabel}); !ok || v != 50 {
		t.Errorf("overflow series = %v, %v; want 50", v, ok)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.CounterVec("d", "", "l").With("x").Add(2)
	r.GaugeVec("e", "", "l").With("x").Add(-1)
	r.HistogramVec("f", "", nil, "l").With("x").Observe(1)
	r.CounterFunc("g", "", func() float64 { return 1 })
	r.GaugeFunc("h", "", func() float64 { return 1 })
	r.OnGather(func() {})
	if n, err := r.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Errorf("nil registry WriteTo = %d, %v", n, err)
	}

	var tr *Tracer
	trace := tr.Begin("job-1")
	trace.Event("submit", "")
	trace.Span("sweep", "", time.Second)
	if d := trace.Snapshot(); len(d.Events) != 0 {
		t.Errorf("nil trace snapshot has events: %+v", d)
	}
	if tr.Lookup("job-1") != nil {
		t.Error("nil tracer Lookup returned a trace")
	}
}

func TestTraceRingKeepsHeadAndTail(t *testing.T) {
	tr := NewTracer(2, 8) // keep 4, ring 4
	trace := tr.Begin("job-1")
	for i := 0; i < 20; i++ {
		trace.Event("e", fmt.Sprintf("%d", i))
	}
	d := trace.Snapshot()
	if len(d.Events) != 8 {
		t.Fatalf("len(events) = %d, want 8", len(d.Events))
	}
	if d.Dropped != 12 {
		t.Errorf("dropped = %d, want 12", d.Dropped)
	}
	// First four survive verbatim; last four are the most recent.
	for i := 0; i < 4; i++ {
		if d.Events[i].Detail != fmt.Sprintf("%d", i) {
			t.Errorf("head[%d] = %q", i, d.Events[i].Detail)
		}
	}
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf("%d", 16+i)
		if d.Events[4+i].Detail != want {
			t.Errorf("tail[%d] = %q, want %s", i, d.Events[4+i].Detail, want)
		}
	}
	// Offsets are monotone in event order.
	for i := 1; i < len(d.Events); i++ {
		if d.Events[i].At < d.Events[i-1].At {
			t.Errorf("event %d At %v < previous %v", i, d.Events[i].At, d.Events[i-1].At)
		}
	}
}

func TestTracerEvictsOldest(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.Begin("a")
	tr.Begin("b")
	tr.Begin("c")
	if tr.Lookup("a") != nil {
		t.Error("oldest trace not evicted")
	}
	if tr.Lookup("b") == nil || tr.Lookup("c") == nil {
		t.Error("recent traces evicted")
	}
}

func TestTracerBeginRestarts(t *testing.T) {
	tr := NewTracer(4, 8)
	first := tr.Begin("a")
	first.Event("submit", "")
	second := tr.Begin("a")
	if d := second.Snapshot(); len(d.Events) != 0 {
		t.Errorf("restarted trace kept %d events", len(d.Events))
	}
	if tr.Lookup("a") != second {
		t.Error("Lookup did not return the restarted trace")
	}
}
