package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a metric name (which for histograms
// carries the _bucket/_sum/_count suffix), its label set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: the base name, its declared type,
// and every sample that belongs to it.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

// Get returns the value of the first sample matching every given label
// pair (an empty filter matches the first sample), and whether one
// matched.
func (f *Family) Get(labels map[string]string) (float64, bool) {
	for _, s := range f.Samples {
		if matchLabels(s.Labels, labels) {
			return s.Value, true
		}
	}
	return 0, false
}

func matchLabels(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// Bucket is one cumulative histogram bucket: the count of observations
// at or below LE.
type Bucket struct {
	LE    float64
	Count float64
}

// Buckets extracts the cumulative buckets of a histogram family's
// series matching the given labels (le excluded from matching), sorted
// by bound.
func (f *Family) Buckets(labels map[string]string) []Bucket {
	var out []Bucket
	for _, s := range f.Samples {
		if !strings.HasSuffix(s.Name, "_bucket") {
			continue
		}
		le, ok := s.Labels["le"]
		if !ok || !matchLabels(stripLE(s.Labels), labels) {
			continue
		}
		bound, err := parseFloat(le)
		if err != nil {
			continue
		}
		out = append(out, Bucket{LE: bound, Count: s.Value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LE < out[j].LE })
	return out
}

func stripLE(labels map[string]string) map[string]string {
	m := make(map[string]string, len(labels))
	for k, v := range labels {
		if k != "le" {
			m[k] = v
		}
	}
	return m
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from cumulative
// histogram buckets by linear interpolation within the bucket the
// target rank falls in — the same estimate Prometheus's
// histogram_quantile gives. It returns NaN when the histogram is empty
// and the highest finite bound when the rank lands in the +Inf bucket.
func Quantile(q float64, buckets []Bucket) float64 {
	if len(buckets) == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return math.NaN()
	}
	rank := q * total
	for i, b := range buckets {
		if b.Count < rank {
			continue
		}
		if math.IsInf(b.LE, 1) {
			// Rank past every finite bound: report the largest finite
			// bound rather than inventing a value.
			if i == 0 {
				return math.NaN()
			}
			return buckets[i-1].LE
		}
		lo, prev := 0.0, 0.0
		if i > 0 {
			lo, prev = buckets[i-1].LE, buckets[i-1].Count
		}
		if b.Count == prev {
			return b.LE
		}
		return lo + (b.LE-lo)*(rank-prev)/(b.Count-prev)
	}
	return buckets[len(buckets)-1].LE
}

// ParseExposition parses and validates Prometheus text exposition
// format (version 0.0.4): HELP/TYPE comment handling, metric name and
// label syntax (including escaped label values), float values, and —
// for families declared histogram — the structural invariants that
// buckets are cumulative, an le="+Inf" bucket exists, and _count
// matches it. It returns the families keyed by base name. It is the
// validator behind the CI metrics smoke and the reader behind spm top.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	families := map[string]*Family{}
	var order []string
	get := func(name string) *Family {
		base := baseName(name, families)
		f, ok := families[base]
		if !ok {
			f = &Family{Name: base, Type: "untyped"}
			families[base] = f
			order = append(order, base)
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	sawAny := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				if !validName(name) {
					return nil, fmt.Errorf("obs: line %d: invalid metric name %q", lineNo, name)
				}
				f, ok := families[name]
				if !ok {
					f = &Family{Name: name, Type: "untyped"}
					families[name] = f
					order = append(order, name)
				}
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return nil, fmt.Errorf("obs: line %d: TYPE without a type", lineNo)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
						f.Type = fields[3]
					default:
						return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, fields[3])
					}
				} else if len(fields) >= 4 {
					f.Help = fields[3]
				}
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		sawAny = true
		f := get(s.Name)
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	if !sawAny {
		return nil, fmt.Errorf("obs: exposition contains no samples")
	}
	for _, name := range order {
		f := families[name]
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

// baseName strips the histogram sample suffix when the prefix is a
// declared histogram family, so _bucket/_sum/_count samples group under
// their family.
func baseName(name string, families map[string]*Family) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, exists := families[base]; exists && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

// validateHistogram checks the structural invariants of one histogram
// series group: cumulative non-decreasing buckets, a closing +Inf
// bucket, and agreement between _count and the +Inf bucket.
func validateHistogram(f *Family) error {
	// Partition bucket samples by their non-le label set.
	type group struct {
		labels  map[string]string
		buckets []Bucket
		count   float64
		hasCnt  bool
	}
	var groups []*group
	find := func(labels map[string]string) *group {
		for _, g := range groups {
			if len(g.labels) == len(labels) && matchLabels(g.labels, labels) {
				return g
			}
		}
		g := &group{labels: labels}
		groups = append(groups, g)
		return g
	}
	for _, s := range f.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("obs: histogram %s: bucket sample without le label", f.Name)
			}
			bound, err := parseFloat(le)
			if err != nil {
				return fmt.Errorf("obs: histogram %s: bad le %q", f.Name, le)
			}
			g := find(stripLE(s.Labels))
			g.buckets = append(g.buckets, Bucket{LE: bound, Count: s.Value})
		case strings.HasSuffix(s.Name, "_count"):
			g := find(s.Labels)
			g.count, g.hasCnt = s.Value, true
		}
	}
	for _, g := range groups {
		if len(g.buckets) == 0 {
			return fmt.Errorf("obs: histogram %s: series with no buckets", f.Name)
		}
		sort.Slice(g.buckets, func(i, j int) bool { return g.buckets[i].LE < g.buckets[j].LE })
		last := g.buckets[len(g.buckets)-1]
		if !math.IsInf(last.LE, 1) {
			return fmt.Errorf("obs: histogram %s: missing le=\"+Inf\" bucket", f.Name)
		}
		for i := 1; i < len(g.buckets); i++ {
			if g.buckets[i].Count < g.buckets[i-1].Count {
				return fmt.Errorf("obs: histogram %s: buckets not cumulative at le=%g", f.Name, g.buckets[i].LE)
			}
		}
		if g.hasCnt && g.count != last.Count {
			return fmt.Errorf("obs: histogram %s: _count %g disagrees with +Inf bucket %g", f.Name, g.count, last.Count)
		}
	}
	return nil
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("sample line %q: no metric name", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %s: want value [timestamp], got %q", s.Name, strings.TrimSpace(rest))
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("sample %s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{',
// returning the index just past the closing brace.
func parseLabels(s string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && isNameChar(s[i], i == start) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("bad label name at %q", s[i:])
		}
		name := s[start:i]
		if i >= len(s) || s[i] != '=' {
			return 0, fmt.Errorf("label %s: missing =", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label %s: missing opening quote", name)
		}
		i++
		var b strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					return 0, fmt.Errorf("label %s: bad escape \\%c", name, s[i])
				}
			} else {
				b.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("label %s: unterminated value", name)
		}
		i++ // closing quote
		out[name] = b.String()
	}
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
