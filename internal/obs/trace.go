package obs

import (
	"sync"
	"time"
)

// Event is one point on a job's timeline: a name from the job
// lifecycle vocabulary (submit, compile, queue, dispatch, chunk,
// segment, merge, done, ...), the monotonic offset from the trace's
// start, an optional duration for events that describe a completed
// span, and free-form detail.
type Event struct {
	Name   string        `json:"name"`
	At     time.Duration `json:"at_ns"`
	Dur    time.Duration `json:"dur_ns,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// Trace is the recorded timeline of one job. Offsets come from the
// monotonic clock (time.Since the trace's start), captured under the
// trace's lock, so At is non-decreasing in append order regardless of
// which goroutine records the event. All methods are nil-safe: code
// paths that may run without tracing thread a possibly-nil *Trace and
// never check it.
//
// The event buffer is bounded: the first half of the capacity is kept
// forever (the submit→dispatch prefix of a long job must survive), the
// second half is a ring over the most recent events — so a sweep that
// emits thousands of chunk events keeps its beginning and its end, and
// Dropped counts what the middle lost.
type Trace struct {
	mu      sync.Mutex
	id      string
	start   time.Time
	events  []Event
	max     int
	keep    int // events[:keep] are immortal once the buffer fills
	next    int // ring cursor in [keep, max)
	dropped int
}

// Event records a point event.
func (t *Trace) Event(name, detail string) {
	t.record(Event{Name: name, Detail: detail})
}

// Span records an event describing a span of work that just completed,
// with its duration.
func (t *Trace) Span(name, detail string, d time.Duration) {
	t.record(Event{Name: name, Detail: detail, Dur: d})
}

func (t *Trace) record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.At = time.Since(t.start)
	if len(t.events) < t.max {
		t.events = append(t.events, e)
	} else {
		t.events[t.next] = e
		t.dropped++
		t.next++
		if t.next == t.max {
			t.next = t.keep
		}
	}
	t.mu.Unlock()
}

// TraceData is the wire form of a trace: what GET /v2/jobs/{id}/trace
// returns and spm trace renders.
type TraceData struct {
	ID      string    `json:"id"`
	Start   time.Time `json:"start"`
	Dropped int       `json:"dropped,omitempty"`
	Events  []Event   `json:"events"`
}

// Snapshot returns the trace's current timeline in event order.
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d := TraceData{ID: t.id, Start: t.start, Dropped: t.dropped}
	if t.dropped == 0 {
		d.Events = append([]Event(nil), t.events...)
		return d
	}
	d.Events = make([]Event, 0, len(t.events))
	d.Events = append(d.Events, t.events[:t.keep]...)
	d.Events = append(d.Events, t.events[t.next:]...)
	d.Events = append(d.Events, t.events[t.keep:t.next]...)
	return d
}

// Tracer keeps the traces of the most recent jobs, keyed by job ID,
// evicting the oldest once the job cap is reached. A nil *Tracer
// returns nil traces, so tracing degrades to a no-op end to end.
type Tracer struct {
	mu        sync.Mutex
	capJobs   int
	maxEvents int
	byID      map[string]*Trace
	order     []string
}

// NewTracer returns a tracer retaining up to jobs traces of up to
// events events each (256 and 512 when ≤ 0).
func NewTracer(jobs, events int) *Tracer {
	if jobs <= 0 {
		jobs = 256
	}
	if events <= 0 {
		events = 512
	}
	if events < 4 {
		events = 4
	}
	return &Tracer{capJobs: jobs, maxEvents: events, byID: map[string]*Trace{}}
}

// Begin starts (or restarts — a resumed job records a fresh timeline)
// the trace for a job ID and returns it.
func (tr *Tracer) Begin(id string) *Trace {
	if tr == nil {
		return nil
	}
	keep := tr.maxEvents / 2
	t := &Trace{id: id, start: time.Now(), max: tr.maxEvents, keep: keep, next: keep}
	tr.mu.Lock()
	if _, ok := tr.byID[id]; !ok {
		tr.order = append(tr.order, id)
		if len(tr.order) > tr.capJobs {
			delete(tr.byID, tr.order[0])
			tr.order = tr.order[1:]
		}
	}
	tr.byID[id] = t
	tr.mu.Unlock()
	return t
}

// Lookup returns the trace for a job ID, or nil when the job is unknown
// or already evicted.
func (tr *Tracer) Lookup(id string) *Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.byID[id]
}
