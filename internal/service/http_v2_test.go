package service

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestV2SingleSubmitAndPoll(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	var sub SubmitResponse
	resp := doJSON(t, srv, http.MethodPost, "/v2/check",
		marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}}), &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/check: status %d, want 202", resp.StatusCode)
	}
	// The same job is visible through both API versions.
	for _, path := range []string{"/v1/jobs/", "/v2/jobs/"} {
		var st JobStatus
		if resp := doJSON(t, srv, http.MethodGet, path+sub.ID, "", &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s%s: status %d", path, sub.ID, resp.StatusCode)
		}
	}
	if st := pollDone(t, srv, sub.ID); st.State != StateDone {
		t.Fatalf("state %q, want done", st.State)
	}
}

func TestV2BatchSubmit(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 2})
	good := marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})
	bad := marshalReq(t, CheckRequest{Program: "program broken\ninputs x1\n    y := \n"})
	var batch BatchResponse
	resp := doJSON(t, srv, http.MethodPost, "/v2/check", "["+good+","+bad+","+good+"]", &batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d, want 202", resp.StatusCode)
	}
	if batch.Accepted != 2 || len(batch.Jobs) != 3 {
		t.Fatalf("batch = %+v, want 2 of 3 accepted", batch)
	}
	if batch.Jobs[0].ID == "" || batch.Jobs[2].ID == "" {
		t.Error("accepted batch items missing job IDs")
	}
	if batch.Jobs[1].Error == "" || batch.Jobs[1].ID != "" {
		t.Errorf("rejected item = %+v, want an error and no ID", batch.Jobs[1])
	}
	for _, it := range []BatchItem{batch.Jobs[0], batch.Jobs[2]} {
		if st := pollDone(t, srv, it.ID); st.State != StateDone {
			t.Errorf("batch job %s ended %q", it.ID, st.State)
		}
	}
}

func TestV2BatchAllRejected(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	bad := marshalReq(t, CheckRequest{Program: "nonsense"})
	var batch BatchResponse
	if resp := doJSON(t, srv, http.MethodPost, "/v2/check", "["+bad+"]", &batch); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("all-rejected batch status %d, want 400", resp.StatusCode)
	}
}

func TestV2CancelOverHTTP(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1, SweepWorkers: 1})
	var sub SubmitResponse
	if resp := doJSON(t, srv, http.MethodPost, "/v2/check", marshalReq(t, slowRequest()), &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var cr CancelResponse
	if resp := doJSON(t, srv, http.MethodDelete, "/v2/jobs/"+sub.ID, "", &cr); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d, want 200", resp.StatusCode)
	}
	// Cancellation is asynchronous for running jobs: poll both API
	// versions until the terminal cancelled state is visible.
	deadline := time.Now().Add(10 * time.Second)
	for _, path := range []string{"/v1/jobs/", "/v2/jobs/"} {
		for {
			var st JobStatus
			doJSON(t, srv, http.MethodGet, path+sub.ID, "", &st)
			if st.State == StateCancelled {
				break
			}
			if st.State.Terminal() {
				t.Fatalf("GET %s%s: terminal state %q, want cancelled", path, sub.ID, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("GET %s%s: still %q at deadline", path, sub.ID, st.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestV2CancelErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	if resp := doJSON(t, srv, http.MethodDelete, "/v2/jobs/job-404", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v2/check",
		marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}}), &sub)
	pollDone(t, srv, sub.ID)
	if resp := doJSON(t, srv, http.MethodDelete, "/v2/jobs/"+sub.ID, "", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE finished: status %d, want 409", resp.StatusCode)
	}
}

// readEvents consumes an SSE stream until an event named terminal arrives
// (or the deadline), returning the event names seen in order.
func readEvents(t *testing.T, srv *httptest.Server, path, terminal string) []string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.Client()
	client.Timeout = 30 * time.Second
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, name)
			if name == terminal {
				return events
			}
		} else if !strings.HasPrefix(line, "data: ") && line != "" {
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("stream ended without a %q event (saw %v; scan err %v)", terminal, events, sc.Err())
	return nil
}

func TestV2EventsStreamProgressAndDone(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1, SweepWorkers: 1})
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v2/check", marshalReq(t, slowRequest()), &sub)
	events := readEvents(t, srv, "/v2/jobs/"+sub.ID+"/events?interval_ms=10", "done")
	if events[0] != "progress" {
		t.Errorf("first event %q, want progress", events[0])
	}
	if events[len(events)-1] != "done" {
		t.Errorf("last event %q, want done", events[len(events)-1])
	}
}

func TestV2EventsOnFinishedJob(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v2/check",
		marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}}), &sub)
	pollDone(t, srv, sub.ID)
	// A stream opened after completion still delivers the initial
	// progress snapshot and the terminal done event, then closes.
	events := readEvents(t, srv, "/v2/jobs/"+sub.ID+"/events", "done")
	if len(events) < 2 {
		t.Errorf("events = %v, want at least progress then done", events)
	}
}

func TestV2EventsBadInterval(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v2/check",
		marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}}), &sub)
	if resp := doJSON(t, srv, http.MethodGet, "/v2/jobs/"+sub.ID+"/events?interval_ms=nope", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad interval: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, srv, http.MethodGet, "/v2/jobs/job-404/events", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: status %d, want 404", resp.StatusCode)
	}
}
