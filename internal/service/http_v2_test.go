package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestV2SingleSubmitAndPoll(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	var sub SubmitResponse
	resp := doJSON(t, srv, http.MethodPost, "/v2/check",
		marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}}), &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v2/check: status %d, want 202", resp.StatusCode)
	}
	// The same job is visible through both API versions.
	for _, path := range []string{"/v1/jobs/", "/v2/jobs/"} {
		var st JobStatus
		if resp := doJSON(t, srv, http.MethodGet, path+sub.ID, "", &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s%s: status %d", path, sub.ID, resp.StatusCode)
		}
	}
	if st := pollDone(t, srv, sub.ID); st.State != StateDone {
		t.Fatalf("state %q, want done", st.State)
	}
}

func TestV2BatchSubmit(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 2})
	good := marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})
	bad := marshalReq(t, CheckRequest{Program: "program broken\ninputs x1\n    y := \n"})
	var batch BatchResponse
	resp := doJSON(t, srv, http.MethodPost, "/v2/check", "["+good+","+bad+","+good+"]", &batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status %d, want 202", resp.StatusCode)
	}
	if batch.Accepted != 2 || len(batch.Jobs) != 3 {
		t.Fatalf("batch = %+v, want 2 of 3 accepted", batch)
	}
	if batch.Jobs[0].ID == "" || batch.Jobs[2].ID == "" {
		t.Error("accepted batch items missing job IDs")
	}
	if batch.Jobs[1].Error == "" || batch.Jobs[1].ID != "" {
		t.Errorf("rejected item = %+v, want an error and no ID", batch.Jobs[1])
	}
	for _, it := range []BatchItem{batch.Jobs[0], batch.Jobs[2]} {
		if st := pollDone(t, srv, it.ID); st.State != StateDone {
			t.Errorf("batch job %s ended %q", it.ID, st.State)
		}
	}
}

func TestV2BatchAllRejected(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	bad := marshalReq(t, CheckRequest{Program: "nonsense"})
	var batch BatchResponse
	if resp := doJSON(t, srv, http.MethodPost, "/v2/check", "["+bad+"]", &batch); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("all-rejected batch status %d, want 400", resp.StatusCode)
	}
}

func TestV2CancelOverHTTP(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1, SweepWorkers: 1})
	var sub SubmitResponse
	if resp := doJSON(t, srv, http.MethodPost, "/v2/check", marshalReq(t, slowRequest()), &sub); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var cr CancelResponse
	if resp := doJSON(t, srv, http.MethodDelete, "/v2/jobs/"+sub.ID, "", &cr); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d, want 200", resp.StatusCode)
	}
	// Cancellation is asynchronous for running jobs: poll both API
	// versions until the terminal cancelled state is visible.
	deadline := time.Now().Add(10 * time.Second)
	for _, path := range []string{"/v1/jobs/", "/v2/jobs/"} {
		for {
			var st JobStatus
			doJSON(t, srv, http.MethodGet, path+sub.ID, "", &st)
			if st.State == StateCancelled {
				break
			}
			if st.State.Terminal() {
				t.Fatalf("GET %s%s: terminal state %q, want cancelled", path, sub.ID, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("GET %s%s: still %q at deadline", path, sub.ID, st.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestV2CancelErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	if resp := doJSON(t, srv, http.MethodDelete, "/v2/jobs/job-404", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v2/check",
		marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}}), &sub)
	pollDone(t, srv, sub.ID)
	if resp := doJSON(t, srv, http.MethodDelete, "/v2/jobs/"+sub.ID, "", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE finished: status %d, want 409", resp.StatusCode)
	}
}

// readEvents consumes an SSE stream until an event named terminal arrives
// (or the deadline), returning the event names seen in order.
func readEvents(t *testing.T, srv *httptest.Server, path, terminal string) []string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.Client()
	client.Timeout = 30 * time.Second
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, name)
			if name == terminal {
				return events
			}
		} else if !strings.HasPrefix(line, "data: ") && line != "" {
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	t.Fatalf("stream ended without a %q event (saw %v; scan err %v)", terminal, events, sc.Err())
	return nil
}

func TestV2EventsStreamProgressAndDone(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1, SweepWorkers: 1})
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v2/check", marshalReq(t, slowRequest()), &sub)
	events := readEvents(t, srv, "/v2/jobs/"+sub.ID+"/events?interval_ms=10", "done")
	if events[0] != "progress" {
		t.Errorf("first event %q, want progress", events[0])
	}
	if events[len(events)-1] != "done" {
		t.Errorf("last event %q, want done", events[len(events)-1])
	}
}

func TestV2EventsOnFinishedJob(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v2/check",
		marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}}), &sub)
	pollDone(t, srv, sub.ID)
	// A stream opened after completion still delivers the initial
	// progress snapshot and the terminal done event, then closes.
	events := readEvents(t, srv, "/v2/jobs/"+sub.ID+"/events", "done")
	if len(events) < 2 {
		t.Errorf("events = %v, want at least progress then done", events)
	}
}

// TestV2VerdictStoreHitOverHTTP pins the verdict-cache wire contract: a
// repeat submission of a stored check answers 200 (not 202) with state
// done and cached_verdict set, and GET /v2/stats reports the hit.
func TestV2VerdictStoreHitOverHTTP(t *testing.T) {
	st := openStore(t, t.TempDir())
	t.Cleanup(func() { st.Close() })
	_, srv := newTestServer(t, Config{Pools: 1, Store: st})
	body := marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})

	var first SubmitResponse
	if resp := doJSON(t, srv, http.MethodPost, "/v2/check", body, &first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold submit: status %d, want 202", resp.StatusCode)
	}
	pollDone(t, srv, first.ID)

	var second SubmitResponse
	resp := doJSON(t, srv, http.MethodPost, "/v2/check", body, &second)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict-hit submit: status %d, want 200", resp.StatusCode)
	}
	if !second.CachedVerdict || second.State != StateDone {
		t.Fatalf("verdict-hit response = %+v, want state done with cached_verdict", second)
	}
	var jst JobStatus
	doJSON(t, srv, http.MethodGet, "/v2/jobs/"+second.ID, "", &jst)
	if !jst.CachedVerdict || jst.Result == nil {
		t.Errorf("job status = %+v, want a stored result with cached_verdict", jst)
	}

	var stats Stats
	if resp := doJSON(t, srv, http.MethodGet, "/v2/stats", "", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/stats: status %d", resp.StatusCode)
	}
	if stats.Store == nil || stats.Store.VerdictHits != 1 || stats.Store.Verdicts != 1 {
		t.Errorf("stats.Store = %+v, want one verdict and one hit", stats.Store)
	}
	// The v1 alias serves the same document.
	var v1 Stats
	doJSON(t, srv, http.MethodGet, "/v1/stats", "", &v1)
	if v1.Store == nil || v1.Store.Verdicts != stats.Store.Verdicts {
		t.Errorf("/v1/stats disagrees with /v2/stats: %+v vs %+v", v1.Store, stats.Store)
	}
}

// TestV2TenantQuotaOverHTTP pins the tenant wire contract: X-SPM-Tenant
// attributes submissions, an exhausted bucket answers 429 with the
// over_quota code and a whole-second Retry-After, and the tenant's
// tallies surface in GET /v2/stats.
func TestV2TenantQuotaOverHTTP(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	_, srv := newTestServer(t, Config{Pools: 1, Tenant: TenantConfig{Rate: 100, Burst: 10, Now: clk.Now}})
	body := marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})

	post := func(tenant string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v2/check", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-SPM-Tenant", tenant)
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := post("acme")
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", resp.StatusCode)
	}
	pollDone(t, srv, sub.ID)

	resp = post("acme")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive whole-second value", resp.Header.Get("Retry-After"))
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != CodeOverQuota || !strings.Contains(e.Error.Message, "acme") {
		t.Errorf("429 body = %+v, want code over_quota naming the tenant", e.Error)
	}

	var stats Stats
	doJSON(t, srv, http.MethodGet, "/v2/stats", "", &stats)
	if len(stats.Tenants) != 1 || stats.Tenants[0].Tenant != "acme" ||
		stats.Tenants[0].Admitted != 1 || stats.Tenants[0].Rejected != 1 {
		t.Errorf("stats.Tenants = %+v, want acme with 1 admitted / 1 rejected", stats.Tenants)
	}
}

// TestV2BatchRejectionCodes pins per-item error codes in a mixed batch.
func TestV2BatchRejectionCodes(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	good := marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}})
	bad := marshalReq(t, CheckRequest{Program: "nonsense"})
	var batch BatchResponse
	doJSON(t, srv, http.MethodPost, "/v2/check", "["+good+","+bad+"]", &batch)
	if batch.Jobs[0].Code != "" || batch.Jobs[0].State != StateQueued && batch.Jobs[0].State != StateRunning && batch.Jobs[0].State != StateDone {
		t.Errorf("accepted item = %+v, want no code and a live state", batch.Jobs[0])
	}
	if batch.Jobs[1].Code != CodeBadRequest {
		t.Errorf("rejected item code = %q, want %q", batch.Jobs[1].Code, CodeBadRequest)
	}
	pollDone(t, srv, batch.Jobs[0].ID)
}

func TestV2EventsBadInterval(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v2/check",
		marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}}), &sub)
	if resp := doJSON(t, srv, http.MethodGet, "/v2/jobs/"+sub.ID+"/events?interval_ms=nope", "", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad interval: status %d, want 400", resp.StatusCode)
	}
	if resp := doJSON(t, srv, http.MethodGet, "/v2/jobs/job-404/events", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job events: status %d, want 404", resp.StatusCode)
	}
}
