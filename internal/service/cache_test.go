package service

import (
	"fmt"
	"strings"
	"testing"
)

// progN builds a family of distinct single-input programs.
func progN(n int) string {
	return fmt.Sprintf("program p%d\ninputs x1\n    y := x1 + %d\n    halt\n", n, n)
}

func TestCacheHitAndMissCounters(t *testing.T) {
	c := NewCompileCache(8)
	req := CheckRequest{Program: progN(1), Policy: "{1}"}
	if _, hit, err := c.GetOrCompile(req); err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := c.GetOrCompile(req); err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v, want hit", hit, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate)
	}
}

func TestCacheEvictsLRUBeyondCap(t *testing.T) {
	const cap = 4
	c := NewCompileCache(cap)
	for i := 0; i < 3*cap; i++ {
		if _, _, err := c.GetOrCompile(CheckRequest{Program: progN(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Entries; got != cap {
		t.Errorf("entries = %d, want cap %d", got, cap)
	}
	// The secondary indexes must shrink with the LRU list, not leak.
	c.mu.Lock()
	nText, nCanon := len(c.byText), len(c.byCanon)
	c.mu.Unlock()
	if nCanon != cap || nText != cap {
		t.Errorf("index sizes text=%d canon=%d, want %d each", nText, nCanon, cap)
	}
	// Oldest entry was evicted: looking it up again is a miss.
	if _, hit, err := c.GetOrCompile(CheckRequest{Program: progN(0)}); err != nil || hit {
		t.Errorf("evicted entry: hit=%v err=%v, want recompile miss", hit, err)
	}
	// Most recent entry survived.
	if _, hit, err := c.GetOrCompile(CheckRequest{Program: progN(3*cap - 1)}); err != nil || !hit {
		t.Errorf("recent entry: hit=%v err=%v, want hit", hit, err)
	}
}

func TestCacheKeySeparatesConfig(t *testing.T) {
	c := NewCompileCache(16)
	base := CheckRequest{Program: testProg, Policy: "{2}"}
	if _, _, err := c.GetOrCompile(base); err != nil {
		t.Fatal(err)
	}
	variants := []CheckRequest{
		{Program: testProg, Policy: "{1}"},
		{Program: testProg, Policy: "{2}", Variant: "timed"},
		{Program: testProg, Policy: "{2}", Raw: true},
	}
	for i, req := range variants {
		if _, hit, err := c.GetOrCompile(req); err != nil {
			t.Fatal(err)
		} else if hit {
			t.Errorf("variant %d shares a cache entry with a different mechanism config", i)
		}
	}
	if got := c.Stats().Entries; got != 4 {
		t.Errorf("entries = %d, want 4 distinct configs", got)
	}
}

func TestCacheCanonicalisesVariantSpelling(t *testing.T) {
	c := NewCompileCache(16)
	if _, _, err := c.GetOrCompile(CheckRequest{Program: testProg, Policy: "{2}", Variant: "highwater"}); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := c.GetOrCompile(CheckRequest{Program: testProg, Policy: "{2}", Variant: "high-water"}); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Error(`"high-water" did not share the "highwater" compiled entry`)
	}
	if _, hit, err := c.GetOrCompile(CheckRequest{Program: testProg, Policy: "{2}", Variant: "untimed"}); err != nil {
		t.Fatal(err)
	} else if hit {
		t.Error("untimed wrongly shared the highwater entry")
	}
}

func TestCacheBoundsTextAliases(t *testing.T) {
	c := NewCompileCache(4)
	// One program, many formatting variants: each trailing-blank-line copy
	// is a distinct source text but the same canonical flowchart.
	base := progN(7)
	for i := 0; i < 3*maxTextAliases; i++ {
		src := base + strings.Repeat("\n", i)
		if _, hit, err := c.GetOrCompile(CheckRequest{Program: src}); err != nil {
			t.Fatal(err)
		} else if i > 0 && !hit {
			t.Fatalf("variant %d missed the canonical level", i)
		}
	}
	c.mu.Lock()
	nText := len(c.byText)
	c.mu.Unlock()
	if nText > maxTextAliases {
		t.Errorf("byText holds %d aliases, bound is %d", nText, maxTextAliases)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}
