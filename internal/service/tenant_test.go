package service

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable bucket clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestTenantQuotaRejectsAndRefills(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := newTestService(t, Config{Pools: 1, Tenant: TenantConfig{
		Rate:  100, // tuples per second
		Burst: 10,
		Now:   clk.Now,
	}})
	// testProg has two inputs: domain {0,1,2} is a 9-tuple sweep.
	req := CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}}

	j, err := s.SubmitTenant(req, "acme")
	if err != nil {
		t.Fatalf("first submission within burst rejected: %v", err)
	}
	waitJob(t, j)

	// 1 token left: the second submission must bounce with a retry hint.
	_, err = s.SubmitTenant(req, "acme")
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("over-burst submission: %v, want ErrOverQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("error %v is not a QuotaError", err)
	}
	if qe.Tenant != "acme" || qe.RetryAfter <= 0 {
		t.Errorf("QuotaError = %+v, want tenant acme with positive RetryAfter", qe)
	}
	// At 100 tuples/s the 8 missing tokens take 80ms.
	if qe.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %s, want ≈80ms", qe.RetryAfter)
	}

	// Other tenants have their own bucket.
	if j2, err := s.SubmitTenant(req, "globex"); err != nil {
		t.Errorf("independent tenant rejected: %v", err)
	} else {
		waitJob(t, j2)
	}

	// After the bucket refills, the same tenant admits again.
	clk.Advance(time.Second)
	j3, err := s.SubmitTenant(req, "acme")
	if err != nil {
		t.Fatalf("post-refill submission rejected: %v", err)
	}
	waitJob(t, j3)

	stats := s.Stats().Tenants
	if len(stats) != 2 {
		t.Fatalf("tenant stats = %+v, want two tenants", stats)
	}
	acme := stats[0]
	if acme.Tenant != "acme" || acme.Admitted != 2 || acme.Rejected != 1 || acme.TuplesAdmitted != 18 {
		t.Errorf("acme stats = %+v, want 2 admitted / 1 rejected / 18 tuples", acme)
	}
}

// TestTenantJobLargerThanBurst pins the drain-don't-starve rule: a job
// bigger than the bucket is admitted against a full bucket rather than
// rejected forever.
func TestTenantJobLargerThanBurst(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	s := newTestService(t, Config{Pools: 1, Tenant: TenantConfig{Rate: 1000, Burst: 5, Now: clk.Now}})
	req := CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}} // 9 tuples > burst 5
	j, err := s.SubmitTenant(req, "acme")
	if err != nil {
		t.Fatalf("over-burst-sized job rejected: %v", err)
	}
	waitJob(t, j)
	// The full bucket was drained: an immediate follow-up bounces.
	if _, err := s.SubmitTenant(req, "acme"); !errors.Is(err, ErrOverQuota) {
		t.Errorf("follow-up after drain: %v, want ErrOverQuota", err)
	}
}

// TestTenantDRRFairness pins the fairness property: a light tenant's job
// submitted behind a heavy tenant's backlog completes before the heavy
// tenant's backlog drains — deficit-round-robin interleaves them instead
// of serving arrival order.
func TestTenantDRRFairness(t *testing.T) {
	s := newTestService(t, Config{
		Pools: 1, QueueCap: 1, SweepWorkers: 1,
		Tenant: TenantConfig{Rate: 1e9, Burst: 1 << 40, Quantum: 1 << 20},
	})

	var mu sync.Mutex
	var order []string
	watch := func(name string, j *Job) {
		go func() {
			<-j.Done()
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}()
	}

	// Heavy tenant floods first; its last job is the fairness probe's
	// victim. All jobs are slow so completion order is dispatch order.
	var heavy []*Job
	for i := 0; i < 4; i++ {
		j, err := s.SubmitTenant(slowRequest(), "heavy")
		if err != nil {
			t.Fatal(err)
		}
		watch("heavy", j)
		heavy = append(heavy, j)
	}
	light, err := s.SubmitTenant(slowRequest(), "light")
	if err != nil {
		t.Fatal(err)
	}
	watch("light", light)

	waitJob(t, heavy[len(heavy)-1])
	waitJob(t, light)
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 5 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("only %d of 5 completions observed: %v", len(order), order)
	}
	if order[len(order)-1] == "light" {
		t.Errorf("light tenant's job finished dead last (%v): DRR did not interleave", order)
	}
}

func TestTenantBacklogFull(t *testing.T) {
	s := newTestService(t, Config{
		Pools: 1, QueueCap: 1, SweepWorkers: 1,
		Tenant: TenantConfig{Rate: 1e9, Burst: 1 << 40, QueueCap: 2},
	})
	// Capacity: 1 running + 1 scheduler-queued + 2 backlogged = 4; the
	// rest of 7 submissions must bounce with ErrBusy.
	var jobs []*Job
	busy := 0
	for i := 0; i < 7; i++ {
		j, err := s.SubmitTenant(slowRequest(), "acme")
		switch {
		case err == nil:
			jobs = append(jobs, j)
		case errors.Is(err, ErrBusy):
			busy++
		default:
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	if busy == 0 {
		t.Error("no submission hit the backlog bound")
	}
	for _, j := range jobs {
		s.Cancel(j.ID)
	}
}

func TestTenantsDisabledByDefault(t *testing.T) {
	s := newTestService(t, Config{Pools: 1})
	j, err := s.SubmitTenant(CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}}, "acme")
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if stats := s.Stats(); stats.Tenants != nil {
		t.Errorf("tenant stats present with tenancy disabled: %+v", stats.Tenants)
	}
}
