package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
)

// compiled is one compile-cache value: everything derivable from
// (program, policy, variant, raw) that does not depend on the test domain.
// Both mechanisms are pre-lowered through flowchart.Compile, so a check
// against a cached entry goes straight to the sweep engine's compiled fast
// path with no parse, instrument, or Compile work.
type compiled struct {
	canonKey string
	// textKeys are the source-level keys currently pointing at this entry
	// (formatting variants of the same flowchart share it).
	textKeys map[string]bool

	// fingerprint and variantName are the canonical coordinates the
	// persistent verdict store keys on: the program's flowchart
	// fingerprint and the normalized variant spelling.
	fingerprint string
	variantName string

	prog    *flowchart.Program
	allowed lattice.IndexSet
	polName string
	mech    core.Mechanism          // checked mechanism (instrumented unless raw)
	bare    *core.CompiledMechanism // bare program, the maximality reference
}

// CompileCache is the content-addressed store behind the service. Lookup is
// two-level: the raw submission text hashes to a key that, on a hit, skips
// even the parse; on a textual miss the parsed program's canonical
// flowchart.Fingerprint is tried, so two sources that differ only in
// layout share one compiled entry. Entries are LRU-evicted beyond Cap.
type CompileCache struct {
	mu      sync.Mutex
	cap     int
	byText  map[string]*list.Element
	byCanon map[string]*list.Element
	lru     *list.List // of *compiled; front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

// DefaultCacheCap bounds the cache when Config.CacheCap is unset.
const DefaultCacheCap = 128

// maxTextAliases bounds how many source-level keys may point at one
// compiled entry. Formatting variants beyond the bound still resolve
// through the canonical level (one parse, no compile); without the bound,
// a stream of re-whitespaced copies of one hot program would grow byText
// indefinitely while the LRU length never moves.
const maxTextAliases = 16

// NewCompileCache builds a cache holding at most cap compiled entries
// (DefaultCacheCap when cap ≤ 0).
func NewCompileCache(cap int) *CompileCache {
	if cap <= 0 {
		cap = DefaultCacheCap
	}
	return &CompileCache{
		cap:     cap,
		byText:  make(map[string]*list.Element),
		byCanon: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// CacheStats is the cache section of /v1/stats.
type CacheStats struct {
	Entries int     `json:"entries"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// Stats snapshots the counters.
func (c *CompileCache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.lru.Len()
	c.mu.Unlock()
	h, m := c.hits.Load(), c.misses.Load()
	s := CacheStats{Entries: entries, Hits: h, Misses: m}
	if h+m > 0 {
		s.HitRate = float64(h) / float64(h+m)
	}
	return s
}

// hashKey builds a domain-separated content address from its parts.
func hashKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d\x00%s\x00", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// GetOrCompile returns the compiled entry for the request, building and
// inserting it on a miss. The second return reports whether the compile
// phase was skipped (either cache level). Validation errors (bad program,
// bad policy, bad variant) are returned wrapped in ErrBadRequest.
func (c *CompileCache) GetOrCompile(req CheckRequest) (*compiled, bool, error) {
	textKey := hashKey("text", req.Program, req.Policy, req.Variant, boolKey(req.Raw))

	c.mu.Lock()
	if el, ok := c.byText[textKey]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*compiled), true, nil
	}
	c.mu.Unlock()

	// Textual miss: parse and resolve, then try the canonical level before
	// paying for instrument+Compile.
	prog, err := flowchart.Parse(req.Program)
	if err != nil {
		return nil, false, fmt.Errorf("%w: program: %v", ErrBadRequest, err)
	}
	allowed, err := ParsePolicy(req.Policy, prog.Arity())
	if err != nil {
		return nil, false, fmt.Errorf("%w: policy: %v", ErrBadRequest, err)
	}
	variant, err := ParseVariant(req.Variant)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	// The canonical key normalises every field: the program through its
	// Print-based fingerprint, the policy through the index-set rendering,
	// and the variant through its parsed value — so "highwater" and
	// "high-water" (or "" and "untimed") share one compiled entry.
	fingerprint := flowchart.Fingerprint(prog)
	canonKey := hashKey("canon", fingerprint, allowed.String(),
		fmt.Sprintf("v%d", variant), boolKey(req.Raw))

	c.mu.Lock()
	if el, ok := c.byCanon[canonKey]; ok {
		e := el.Value.(*compiled)
		c.addAliasLocked(el, e, textKey)
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return e, true, nil
	}
	c.mu.Unlock()

	e, err := build(prog, allowed, variant, req.Raw)
	if err != nil {
		return nil, false, err
	}
	e.canonKey = canonKey
	e.fingerprint = fingerprint
	e.variantName = variantString(variant)
	e.textKeys = map[string]bool{textKey: true}

	c.mu.Lock()
	defer c.mu.Unlock()
	// A racing submitter may have inserted the same entry; keep theirs.
	if el, ok := c.byCanon[canonKey]; ok {
		prev := el.Value.(*compiled)
		c.addAliasLocked(el, prev, textKey)
		c.lru.MoveToFront(el)
		c.hits.Add(1)
		return prev, true, nil
	}
	el := c.lru.PushFront(e)
	c.byCanon[canonKey] = el
	c.byText[textKey] = el
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		victim := old.Value.(*compiled)
		c.lru.Remove(old)
		delete(c.byCanon, victim.canonKey)
		for k := range victim.textKeys {
			delete(c.byText, k)
		}
	}
	c.misses.Add(1)
	return e, false, nil
}

// addAliasLocked records textKey as another source-level alias of e,
// respecting the per-entry alias bound. Callers hold c.mu.
func (c *CompileCache) addAliasLocked(el *list.Element, e *compiled, textKey string) {
	if len(e.textKeys) >= maxTextAliases {
		return
	}
	e.textKeys[textKey] = true
	c.byText[textKey] = el
}

// build does the expensive domain-independent work: instrument (unless
// raw) and lower both the checked mechanism and the bare program.
func build(prog *flowchart.Program, allowed lattice.IndexSet, variant surveillance.Variant, raw bool) (*compiled, error) {
	bare, err := core.CompileMechanism(core.FromProgram(prog))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	e := &compiled{
		prog:    prog,
		allowed: allowed,
		polName: allowed.String(),
		bare:    bare,
	}
	if raw {
		e.mech = bare
		return e, nil
	}
	instr, err := surveillance.Instrument(prog, allowed, variant)
	if err != nil {
		return nil, fmt.Errorf("%w: instrument: %v", ErrBadRequest, err)
	}
	mech, err := core.CompileMechanism(core.FromProgram(instr))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	e.mech = mech
	return e, nil
}

func boolKey(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// ParsePolicy resolves a policy spec ("", "all", or "{1,3}") against the
// program arity, rejecting indices beyond it. Shared by the HTTP service
// and the spm CLI so both surfaces accept exactly the same inputs.
func ParsePolicy(spec string, arity int) (lattice.IndexSet, error) {
	if spec == "" {
		return lattice.EmptySet, nil
	}
	if spec == "all" {
		return lattice.AllInputs(arity), nil
	}
	s, err := lattice.ParseIndexSet(spec)
	if err != nil {
		return 0, err
	}
	if !s.SubsetOf(lattice.AllInputs(arity)) {
		return 0, fmt.Errorf("policy %s exceeds program arity %d", s, arity)
	}
	return s, nil
}

// variantString renders a parsed variant in its canonical spelling —
// the inverse of ParseVariant, used in the verdict store's key.
func variantString(v surveillance.Variant) string {
	switch v {
	case surveillance.Timed:
		return "timed"
	case surveillance.Monotone:
		return "highwater"
	default:
		return "untimed"
	}
}

// ParseVariant maps a variant spelling to its surveillance.Variant.
func ParseVariant(spec string) (surveillance.Variant, error) {
	switch spec {
	case "", "untimed":
		return surveillance.Untimed, nil
	case "timed":
		return surveillance.Timed, nil
	case "highwater", "high-water":
		return surveillance.Monotone, nil
	default:
		return 0, fmt.Errorf("unknown variant %q (want untimed, timed, or highwater)", spec)
	}
}
