package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"spm/internal/service"
)

// The service client flow: stand up the policy-checking service, submit a
// check over HTTP, poll the job to completion, and read the verdict. The
// same flow works against a real `spm serve` node; the v2 surface adds
// batch submit (POST /v2/check with a JSON array), cancellation
// (DELETE /v2/jobs/{id}), and SSE progress (GET /v2/jobs/{id}/events).
func Example_clientFlow() {
	srv := httptest.NewServer(service.New(service.Config{Pools: 1, SweepWorkers: 1}).Handler())
	defer srv.Close()

	// Submit: the JSON fields mirror the `spm check` flags. offset/count
	// (not set here) would restrict the job to a shard of the domain's
	// index space, as the cluster coordinator does.
	body, _ := json.Marshal(service.CheckRequest{
		Program: "program demo\ninputs x1 x2\n    y := x2\n    halt\n",
		Policy:  "{2}",
		Raw:     true,
		Domain:  []int64{0, 1, 2},
	})
	resp, err := http.Post(srv.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	var submitted struct {
		ID     string `json:"id"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted id=%s cached=%v\n", submitted.ID, submitted.Cached)

	// Poll until the lifecycle reaches a terminal state
	// (queued → running → done/failed/cancelled).
	var status service.JobStatus
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + submitted.ID)
		if err != nil {
			panic(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			panic(err)
		}
		resp.Body.Close()
		if status.State.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("state=%s sound=%v checked=%d\n", status.State, status.Result.Sound, status.Result.Checked)
	// Output:
	// submitted id=job-1 cached=false
	// state=done sound=true checked=9
}
