package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxBodyBytes bounds a submission body; programs are small DSL texts.
const maxBodyBytes = 1 << 20

// SubmitResponse is the wire form of POST /v1/check.
type SubmitResponse struct {
	ID string `json:"id"`
	// Cached reports a compile-cache hit: the parse/instrument/Compile
	// phases were skipped and the job runs the cached compiled form.
	Cached bool  `json:"cached"`
	Pool   int   `json:"pool"`
	Total  int64 `json:"total"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/check     submit a program+policy+domain; 202 with the job ID
//	GET  /v1/jobs/{id} poll lifecycle state, progress, and verdict
//	GET  /v1/stats     per-queue depths, cache hit rate, job tallies
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

func (s *Service) handleCheck(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds 1 MiB")
		return
	}
	var req CheckRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:     j.ID,
		Cached: j.CacheHit,
		Pool:   j.Pool(),
		Total:  j.Total,
	})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
