package service

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
)

// maxBodyBytes bounds a submission body; programs are small DSL texts.
const maxBodyBytes = 1 << 20

// TenantHeader attributes a submission to a tenant for quota and
// fairness accounting (Config.Tenant). Absent means the anonymous
// tenant "".
const TenantHeader = "X-SPM-Tenant"

// SubmitResponse is the wire form of POST /v2/check (and the deprecated
// /v1/check).
type SubmitResponse struct {
	ID string `json:"id"`
	// State is the job's state at response time: "queued" normally,
	// "done" when the verdict came straight from the persistent store.
	State State `json:"state"`
	// Cached reports a compile-cache hit: the parse/instrument/Compile
	// phases were skipped and the job runs the cached compiled form.
	Cached bool `json:"cached"`
	// CachedVerdict reports a verdict-store hit: the whole sweep was
	// skipped, and GET /v2/jobs/{id} already has the result.
	CachedVerdict bool  `json:"cached_verdict,omitempty"`
	Pool          int   `json:"pool"`
	Total         int64 `json:"total"`
}

// ErrorBody is the unified error envelope of every non-2xx response:
//
//	{"error": {"code": "busy", "message": "..."}}
//
// Code is a stable machine-readable discriminator; Message is for
// humans and not part of the API contract.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// Stable error codes of the ErrorBody envelope.
const (
	CodeBadRequest = "bad_request" // 400: invalid program, policy, domain, or body
	CodeTooLarge   = "too_large"   // 413: request body over the size bound
	CodeNotFound   = "not_found"   // 404: unknown job ID
	CodeConflict   = "conflict"    // 409: cancel of an already-finished job
	CodeOverQuota  = "over_quota"  // 429: tenant token bucket exhausted; Retry-After set
	CodeBusy       = "busy"        // 503: every queue full; Retry-After set
	CodeInternal   = "internal"    // 500: unexpected failure
)

// Handler returns the service's HTTP API.
//
// v2 (the consolidated surface — submit, batch, poll, cancel, stream,
// stats; tenant-aware via the X-SPM-Tenant header):
//
//	POST   /v2/check            submit one spec (JSON object) or a batch
//	                            (JSON array); 202 with job ID(s), or 200
//	                            with state "done" on a verdict-store hit
//	GET    /v2/jobs/{id}        poll lifecycle state, progress, and verdict
//	DELETE /v2/jobs/{id}        cancel a queued or running job
//	GET    /v2/jobs/{id}/events stream progress as server-sent events
//	GET    /v2/jobs/{id}/trace  the job's recorded event timeline
//	GET    /v2/stats            queue depths, cache and verdict-store
//	                            counters, per-tenant admission tallies
//	GET    /v2/metrics          Prometheus text exposition of every
//	                            service counter and histogram
//
// v1 (frozen; thin aliases of the v2 handlers):
//
//	POST /v1/check      Deprecated: use POST /v2/check.
//	GET  /v1/jobs/{id}  Deprecated: use GET /v2/jobs/{id}.
//	GET  /v1/stats      Deprecated: use GET /v2/stats.
//
// Every non-2xx response carries the ErrorBody envelope. Submissions
// rejected by a tenant quota are 429 with Retry-After; a saturated
// fleet is 503 with Retry-After.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v2/check", s.handleCheckV2)
	mux.HandleFunc("GET /v2/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v2/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v2/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v2/stats", s.handleStats)
	mux.Handle("GET /v2/metrics", s.metrics.reg)
	return mux
}

// readBody reads a bounded request body, writing the error response itself
// when the body is unreadable or oversized.
func (s *Service) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "reading body: "+err.Error())
		return nil, false
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge, "request body exceeds 1 MiB")
		return nil, false
	}
	return body, true
}

// handleCheck is POST /v1/check: one spec per request. The decode-and-
// submit path is shared with v2's single-object form.
//
// Deprecated: POST /v2/check accepts the same body and adds batching.
func (s *Service) handleCheck(w http.ResponseWriter, r *http.Request) {
	if body, ok := s.readBody(w, r); ok {
		s.handleCheckBody(w, body, r.Header.Get(TenantHeader))
	}
}

// writeSubmitError maps a Submit error to its status code.
func writeSubmitError(w http.ResponseWriter, err error) {
	var qe *QuotaError
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	case errors.As(err, &qe):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(qe)))
		writeError(w, http.StatusTooManyRequests, CodeOverQuota, err.Error())
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, CodeBusy, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// retryAfterSeconds renders a quota rejection's refill time as the
// whole-second Retry-After header, rounded up so retrying on schedule
// actually succeeds.
func retryAfterSeconds(qe *QuotaError) int {
	secs := int(math.Ceil(qe.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: ErrorBody{Code: code, Message: msg}})
}
