package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxBodyBytes bounds a submission body; programs are small DSL texts.
const maxBodyBytes = 1 << 20

// SubmitResponse is the wire form of POST /v1/check.
type SubmitResponse struct {
	ID string `json:"id"`
	// Cached reports a compile-cache hit: the parse/instrument/Compile
	// phases were skipped and the job runs the cached compiled form.
	Cached bool  `json:"cached"`
	Pool   int   `json:"pool"`
	Total  int64 `json:"total"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API.
//
// v1 (submit and poll):
//
//	POST /v1/check     submit a program+policy+domain; 202 with the job ID
//	GET  /v1/jobs/{id} poll lifecycle state, progress, and verdict
//	GET  /v1/stats     per-queue depths, cache hit rate, job tallies
//
// v2 (adds batching, cancellation, and progress streaming):
//
//	POST   /v2/check           submit one spec (JSON object) or a batch
//	                           (JSON array); 202 with job ID(s)
//	GET    /v2/jobs/{id}        poll, same shape as v1
//	DELETE /v2/jobs/{id}        cancel a queued or running job
//	GET    /v2/jobs/{id}/events stream progress as server-sent events
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/check", s.handleCheck)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v2/check", s.handleCheckV2)
	mux.HandleFunc("GET /v2/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v2/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleEvents)
	return mux
}

// readBody reads a bounded request body, writing the error response itself
// when the body is unreadable or oversized.
func (s *Service) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return nil, false
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds 1 MiB")
		return nil, false
	}
	return body, true
}

// handleCheck is POST /v1/check: one spec per request. The decode-and-
// submit path is shared with v2's single-object form.
func (s *Service) handleCheck(w http.ResponseWriter, r *http.Request) {
	if body, ok := s.readBody(w, r); ok {
		s.handleCheckBody(w, body)
	}
}

// writeSubmitError maps a Submit error to its status code.
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
