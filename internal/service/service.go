// Package service wraps the sweep engine in a long-running policy-checking
// system: a fixed fleet of worker pools with bounded queues and
// join-the-shortest-queue dispatch, a content-addressed compile cache so
// repeated submissions skip parse+instrument+Compile and go straight to
// the compiled fast path, and a queued → running → done/failed job
// lifecycle whose progress counter is the sweep engine's chunk cursor.
// `spm serve` exposes it over HTTP (POST /v1/check, GET /v1/jobs/{id},
// GET /v1/stats) and `spm loadgen` drives it closed-loop for benchmarks
// and CI smoke.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/store"
	"spm/internal/sweep"
)

// ErrBadRequest wraps every submission-validation failure (malformed
// program, bad policy or variant, oversized domain). HTTP maps it to 400.
var ErrBadRequest = errors.New("service: bad request")

// ErrUnknownJob is returned by Job lookups for IDs the service never
// issued (or already evicted). HTTP maps it to 404.
var ErrUnknownJob = errors.New("service: unknown job")

// ErrJobTerminal is returned by Cancel for jobs that already finished
// (done or failed) and so cannot be cancelled. HTTP maps it to 409.
var ErrJobTerminal = errors.New("service: job already finished")

// CheckRequest is one policy-check submission. Domain is the value list
// every input position ranges over (the CLI's -domain flag); it defaults
// to {0,1,2}.
//
// Offset and Count restrict the job to the contiguous shard
// [Offset, Offset+Count) of the domain's mixed-radix index space — the
// wire form of check.Shard, set by the cluster coordinator when it splits
// one logical check across nodes. Count 0 with a non-zero Offset means
// "through the end"; both zero means the whole domain. Sharded results
// carry the cross-shard evidence (Result.Views, Result.Classes) that
// check.Merge folds into the exact whole-domain verdict.
type CheckRequest struct {
	Program string  `json:"program"`
	Policy  string  `json:"policy,omitempty"`
	Variant string  `json:"variant,omitempty"`
	Domain  []int64 `json:"domain,omitempty"`
	Timed   bool    `json:"timed,omitempty"`
	Raw     bool    `json:"raw,omitempty"`
	Maximal bool    `json:"maximal,omitempty"`
	Offset  int64   `json:"offset,omitempty"`
	Count   int64   `json:"count,omitempty"`
}

// Sharded reports whether the request restricts the sweep to a shard of
// the index space.
func (r CheckRequest) Sharded() bool { return r.Offset != 0 || r.Count != 0 }

// Config tunes the service. The zero value picks production-ish defaults.
type Config struct {
	// Pools is the worker-fleet size; ≤ 0 means DefaultPools.
	Pools int
	// QueueCap bounds each pool's queue; ≤ 0 means DefaultQueueCap.
	QueueCap int
	// SweepWorkers is the sweep parallelism of each job; ≤ 0 divides the
	// CPUs evenly across pools (at least 1 each).
	SweepWorkers int
	// SweepBatch is the batch/columnar execution width of each job's sweep
	// (check.WithBatch): ≤ 0 means DefaultSweepBatch, 1 forces the scalar
	// tiers. Mechanisms that cannot batch fall back to scalar transparently.
	SweepBatch int
	// CacheCap bounds the compile cache; ≤ 0 means DefaultCacheCap.
	CacheCap int
	// MaxTuples rejects domains whose cartesian product exceeds it;
	// ≤ 0 means DefaultMaxTuples.
	MaxTuples int64
	// MaxJobs bounds the finished-job history; ≤ 0 means DefaultMaxJobs.
	MaxJobs int
	// Store, when non-nil, persists verdicts and in-flight job
	// checkpoints: repeated submissions of work the store has already
	// decided are answered without a sweep (JobStatus.CachedVerdict), and
	// jobs interrupted by a crash are re-enqueued from their last
	// checkpoint when the service restarts on the same store directory.
	Store *store.Store
	// CheckpointEvery is the tuple interval between persisted sweep
	// checkpoints for store-backed jobs; ≤ 0 means
	// check.DefaultCheckpointEvery.
	CheckpointEvery int64
	// Tenant configures per-tenant admission control; the zero value
	// disables it (every request shares one unlimited lane).
	Tenant TenantConfig
	// Throttle, when positive, makes every job's sweep workers pause this
	// long after each completed chunk (check.WithThrottle). It is a test
	// hook — `spm serve -throttle` turns one node into a deterministic
	// straggler so the elastic cluster's shard stealing and speculative
	// re-dispatch can be exercised; production fleets leave it zero.
	Throttle time.Duration
}

// Service defaults.
const (
	DefaultPools      = 4
	DefaultQueueCap   = 64
	DefaultSweepBatch = 16
	DefaultMaxTuples  = 8 << 20
	DefaultMaxJobs    = 4096
)

func (c Config) normalized() Config {
	if c.Pools <= 0 {
		c.Pools = DefaultPools
	}
	if c.QueueCap <= 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.SweepWorkers <= 0 {
		c.SweepWorkers = runtime.NumCPU() / c.Pools
		if c.SweepWorkers < 1 {
			c.SweepWorkers = 1
		}
	}
	if c.SweepBatch <= 0 {
		c.SweepBatch = DefaultSweepBatch
	}
	if c.MaxTuples <= 0 {
		c.MaxTuples = DefaultMaxTuples
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = DefaultMaxJobs
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = check.DefaultCheckpointEvery
	}
	return c
}

// Service is the policy-checking system: cache + scheduler + job store.
type Service struct {
	cfg     Config
	cache   *CompileCache
	sched   *Scheduler
	store   *store.Store
	tenants *tenantGate
	metrics *serviceMetrics

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // insertion order, for history eviction
	seq   atomic.Uint64

	// Lifecycle tallies for /v1/stats: queued and running are current
	// occupancy; done, failed, and cancelled are lifetime-cumulative. Kept
	// as atomics so Stats never scans the job history under the submission
	// mutex.
	nQueued, nRunning, nDone, nFailed, nCancelled atomic.Int64

	// Persistence tallies: submissions answered from the verdict store and
	// jobs re-enqueued from a checkpoint at startup.
	nVerdictHits, nResumed atomic.Int64
}

// New starts a service with cfg's fleet. When cfg.Store is set, jobs the
// store recorded as unfinished — admitted before a crash, never cleared —
// are re-enqueued immediately, under their original IDs, resuming from
// their last persisted checkpoint.
func New(cfg Config) *Service {
	cfg = cfg.normalized()
	s := &Service{
		cfg:   cfg,
		cache: NewCompileCache(cfg.CacheCap),
		store: cfg.Store,
		jobs:  make(map[string]*Job),
	}
	s.sched = NewScheduler(cfg.Pools, cfg.QueueCap, s.runJob)
	s.tenants = newTenantGate(cfg.Tenant, s)
	s.metrics = newServiceMetrics(s)
	if s.store != nil {
		s.resumePending()
	}
	return s
}

// Close drains the queues and stops the pools. Submit must not be called
// after Close.
func (s *Service) Close() {
	s.tenants.close()
	s.sched.Close()
}

// Config returns the normalized configuration in effect.
func (s *Service) Config() Config { return s.cfg }

// Submit validates the request, resolves it against the compile cache, and
// dispatches a job join-the-shortest-queue. It returns the queued job;
// errors wrap ErrBadRequest (invalid submission) or ErrBusy (every queue
// full).
func (s *Service) Submit(req CheckRequest) (*Job, error) {
	return s.SubmitTenant(req, "")
}

// SubmitTenant is Submit with the request attributed to a tenant (the
// X-SPM-Tenant header). Under tenant admission control (Config.Tenant),
// the tenant's token bucket is charged the job's tuple total — exceeding
// it returns a QuotaError (HTTP 429 with Retry-After) — and dispatch
// order across backlogged tenants is deficit-round-robin, so one noisy
// tenant cannot starve the rest. Store verdict hits bypass the quota:
// they cost no sweep. With tenancy disabled (the default), tenant is
// recorded on the job and admission is unchanged.
func (s *Service) SubmitTenant(req CheckRequest, tenant string) (*Job, error) {
	return s.submit(req, "", nil, tenant)
}

// submit is the single admission path: fresh submissions (id == ""), and
// crash-resumed jobs re-entering under their original id with the
// checkpoint to continue from. Resumed jobs bypass the verdict-store
// lookup (they are pending precisely because no verdict exists) and the
// tenant quota (they were admitted before the restart).
func (s *Service) submit(req CheckRequest, id string, resume *jobCheckpoint, tenant string) (*Job, error) {
	entry, hit, err := s.cache.GetOrCompile(req)
	if err != nil {
		return nil, err
	}
	values := req.Domain
	if len(values) == 0 {
		values = []int64{0, 1, 2}
	}
	if req.Offset < 0 || req.Count < 0 {
		return nil, fmt.Errorf("%w: negative shard offset or count", ErrBadRequest)
	}
	dom := core.Grid(entry.prog.Arity(), values...)
	size := sweep.Size(dom)
	if req.Sharded() && size == math.MaxInt {
		return nil, fmt.Errorf("%w: domain product overflows the index space", ErrBadRequest)
	}
	// The node only sweeps its shard, so the admission bound applies to
	// the shard span, not the whole product — sharding is exactly how a
	// cluster takes on domains no single node would admit. The span comes
	// from the same Bounds clamp the engine applies, so the job's
	// progress denominator always agrees with the tuples actually swept.
	span := int64(size)
	if req.Sharded() {
		off, cnt := req.Offset, req.Count
		if off > int64(size) {
			off = int64(size)
		}
		if cnt > int64(size) {
			cnt = int64(size)
		}
		lo, hi, err := (sweep.Config{Offset: int(off), Count: int(cnt)}).Bounds(size)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		span = int64(hi - lo)
	}
	if span > s.cfg.MaxTuples {
		noun := "domain"
		if req.Sharded() {
			noun = "shard"
		}
		return nil, fmt.Errorf("%w: %s has %d tuples, limit %d", ErrBadRequest, noun, span, s.cfg.MaxTuples)
	}
	// Soundness is one pass over the shard; whole-domain maximality adds
	// two more (class tabulation, then verdicts), while sharded maximality
	// is a single evidence pass (see check.Kind.Passes). Store-backed jobs
	// sweep whole-domain maximality as checkpointable evidence segments —
	// one pass — and render the verdict from the fold (check.RunCheckpointed).
	passes := check.Soundness.Passes()
	if req.Maximal {
		if req.Sharded() || s.store != nil {
			passes++
		} else {
			passes += check.Maximality.Passes()
		}
	}
	if span > 0 && span > math.MaxInt64/passes {
		return nil, fmt.Errorf("%w: domain too large", ErrBadRequest)
	}

	req.Domain = values
	var key store.Key
	if s.store != nil {
		key = storeKey(entry, req)
		if id == "" {
			if raw, ok := s.store.Verdict(key); ok {
				return s.cachedJob(req, entry, passes*span, raw)
			}
		}
	}
	if err := s.tenants.admit(tenant, id, passes*span); err != nil {
		return nil, err
	}

	jid := id
	if jid == "" {
		jid = fmt.Sprintf("job-%d", s.seq.Add(1))
	}
	j := newJob(jid, req, entry, hit, passes*span)
	j.span = span
	j.storeKey = key
	j.resume = resume
	j.tenant = tenant
	j.trace = s.metrics.tracer.Begin(j.ID)
	j.trace.Event("submit", fmt.Sprintf("tenant=%q total=%d", tenant, j.Total))
	if hit {
		j.trace.Event("compile", "cache hit")
	} else {
		j.trace.Event("compile", "compiled")
	}
	if resume != nil {
		j.trace.Event("resume", fmt.Sprintf("phase=%s cursor=%d", resume.Phase, resume.Cursor))
	}
	if resume != nil {
		// The job's progress denominator includes the checkpointed prefix;
		// seed the counter so done/total stays truthful before the sweep
		// re-seeds it phase-accurately.
		cur := resume.Cursor
		if resume.Phase == "max" {
			cur += span
		}
		j.progress.Store(cur)
	}

	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.evictLocked()
	s.mu.Unlock()

	if s.store != nil && id == "" {
		payload, merr := json.Marshal(req)
		if merr == nil {
			merr = s.store.PutPending(store.Pending{ID: j.ID, Key: key, Payload: payload})
		}
		if merr != nil {
			s.dropJob(j.ID)
			return nil, fmt.Errorf("service: persist admission: %w", merr)
		}
	}

	s.nQueued.Add(1)
	j.trace.Event("queue", "awaiting pool")
	if err := s.tenants.dispatch(j); err != nil {
		s.nQueued.Add(-1)
		s.dropJob(j.ID)
		if s.store != nil && id == "" {
			s.store.ClearPending(j.ID)
		}
		return nil, err
	}
	return j, nil
}

// dropJob removes a job that never dispatched from the history.
func (s *Service) dropJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	// Remove id by value — a concurrent Submit may have appended after
	// us, so blind truncation could drop someone else's job.
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// evictLocked trims finished jobs beyond the history bound, oldest first,
// stopping at the first job that is still queued or running — amortized
// O(1) per submission rather than a full history scan.
func (s *Service) evictLocked() {
	for len(s.order) > s.cfg.MaxJobs {
		id := s.order[0]
		if j := s.jobs[id]; j != nil {
			if !j.stateNow().Terminal() {
				// Oldest job still active; history is transiently over
				// budget by at most the fleet's queue capacity.
				return
			}
			delete(s.jobs, id)
		}
		s.order = s.order[1:]
	}
}

// Job returns a submitted job by ID.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Cancel stops a job. A still-queued job transitions straight to cancelled
// and its pool will skip it; a running job's context is cancelled, the
// sweep stops within one chunk, and the pool slot frees for the next job.
// Cancelling an already-cancelled job is an idempotent success; a job that
// finished (done or failed) returns ErrJobTerminal; an unknown ID returns
// ErrUnknownJob.
func (s *Service) Cancel(id string) (*Job, error) {
	j, err := s.Job(id)
	if err != nil {
		return nil, err
	}
	was, acted := j.cancelRequest()
	if acted {
		if was == StateQueued {
			// The job will never reach runJob's accounting: settle its
			// tallies here. The scheduler's dispatched/completed pair still
			// balances when the pool later dequeues and skips it.
			s.nQueued.Add(-1)
			s.nCancelled.Add(1)
			if s.store != nil {
				s.store.ClearPending(j.ID)
			}
			s.tenants.wake()
		}
		return j, nil
	}
	if was == StateCancelled {
		return j, nil // idempotent
	}
	return j, fmt.Errorf("%w: %s is %s", ErrJobTerminal, id, was)
}

// Stats is the wire form of GET /v2/stats (and its deprecated /v1/stats
// alias). Store and Tenants are present only when the corresponding
// subsystem is enabled.
type Stats struct {
	Pools   []PoolStats   `json:"pools"`
	Cache   CacheStats    `json:"cache"`
	Jobs    JobCounts     `json:"jobs"`
	Store   *StoreStats   `json:"store,omitempty"`
	Tenants []TenantStats `json:"tenants,omitempty"`
}

// JobCounts tallies jobs by lifecycle state: Queued and Running are
// current occupancy; Done, Failed, and Cancelled are lifetime totals (they
// survive history eviction).
type JobCounts struct {
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
}

// Stats snapshots queue depths, cache counters, job tallies, and — when
// enabled — verdict-store and per-tenant admission counters.
func (s *Service) Stats() Stats {
	return Stats{
		Pools: s.sched.Stats(),
		Cache: s.cache.Stats(),
		Jobs: JobCounts{
			Queued:    s.nQueued.Load(),
			Running:   s.nRunning.Load(),
			Done:      s.nDone.Load(),
			Failed:    s.nFailed.Load(),
			Cancelled: s.nCancelled.Load(),
		},
		Store:   s.storeStats(),
		Tenants: s.tenants.stats(),
	}
}

// runJob executes one dispatched job on its pool: sweep soundness on the
// compile-cache entry resolved at submission, then maximality if
// requested. The job's progress counter is handed to the sweep engine as
// its chunk cursor, and its context to the engine's cancellation check —
// a cancelled job stops within one chunk and the pool moves on to its next
// queued job. Jobs cancelled while still queued are skipped outright.
func (s *Service) runJob(pool int, j *Job) {
	if !j.tryStart() {
		return // cancelled while queued; Cancel settled the tallies
	}
	s.nQueued.Add(-1)
	s.nRunning.Add(1)
	s.metrics.observeDispatch(j, pool, time.Since(j.created))
	runStart := time.Now()
	var res *Result
	var err error
	if s.store != nil {
		res, err = s.checkStore(j.ctx, j)
	} else {
		res, err = s.check(j.ctx, j)
	}
	s.metrics.observeRun(j, pool, time.Since(runStart))
	if s.store != nil {
		s.settleStore(j, res, err)
	}
	j.finish(res, err)
	s.nRunning.Add(-1)
	switch {
	case err == nil:
		s.nDone.Add(1)
	case errors.Is(err, context.Canceled):
		s.nCancelled.Add(1)
	default:
		s.nFailed.Add(1)
	}
	s.tenants.wake()
}

// check runs the job's verdicts through check.Run — the single verdict
// path shared with the CLI and the experiment tables.
func (s *Service) check(ctx context.Context, j *Job) (*Result, error) {
	entry := j.entry
	pol := core.NewAllowSet(entry.prog.Arity(), entry.allowed)
	dom := core.Grid(entry.prog.Arity(), j.Req.Domain...)
	obs := core.ObserveValue
	if j.Req.Timed {
		obs = core.ObserveValueAndTime
	}
	opts := []check.Option{
		check.WithWorkers(s.cfg.SweepWorkers),
		check.WithBatch(s.cfg.SweepBatch),
		check.WithProgress(&j.progress),
		check.WithThrottle(s.cfg.Throttle),
		check.WithObserver(&jobObserver{m: s.metrics, tr: j.trace}),
		check.WithExecTally(s.metrics.exec),
	}

	shard := check.Shard{Offset: j.Req.Offset, Count: j.Req.Count}

	start := time.Now()
	j.trace.Event("sweep", "phase=sound")
	v, err := check.Run(ctx, check.Spec{
		Kind:        check.Soundness,
		Mechanism:   entry.mech,
		Policy:      pol,
		Domain:      dom,
		Observation: obs,
		Shard:       shard,
	}, opts...)
	if err != nil {
		return nil, err
	}
	j.trace.Span("sound", fmt.Sprintf("checked=%d", v.Checked), time.Since(start))
	res := &Result{
		Mechanism:   v.Mechanism,
		Policy:      v.Policy,
		Observation: v.Observation,
		Sound:       v.Sound,
		Checked:     v.Checked,
		WitnessA:    v.WitnessA,
		WitnessB:    v.WitnessB,
		ObsA:        v.ObsA,
		ObsB:        v.ObsB,
		Offset:      j.Req.Offset,
		Count:       j.Req.Count,
		Views:       v.Views,
	}
	if j.Req.Maximal {
		mstart := time.Now()
		j.trace.Event("sweep", "phase=max")
		mv, err := check.Run(ctx, check.Spec{
			Kind:        check.Maximality,
			Mechanism:   entry.mech,
			Program:     entry.bare,
			Policy:      pol,
			Domain:      dom,
			Observation: obs,
			Shard:       shard,
		}, opts...)
		if err != nil {
			return nil, err
		}
		j.trace.Span("max", fmt.Sprintf("checked=%d", mv.Checked), time.Since(mstart))
		maximal := mv.Maximal
		res.Program = mv.Program
		res.Maximal = &maximal
		res.MaximalWitness = mv.Witness
		res.MaximalReason = mv.Reason
		res.Classes = mv.Classes
	}
	j.trace.Event("merge", "assembling result")
	elapsed := time.Since(start)
	res.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		res.InputsPerSec = float64(j.Progress()) / elapsed.Seconds()
	}
	return res, nil
}
