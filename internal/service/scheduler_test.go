package service

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"
)

// gatedScheduler builds a scheduler whose workers block until release is
// closed, so tests control queue occupancy deterministically. Every job
// start is signalled on started.
func gatedScheduler(pools, cap int) (s *Scheduler, release chan struct{}, started chan struct{}) {
	release = make(chan struct{})
	started = make(chan struct{}, pools*(cap+1))
	s = NewScheduler(pools, cap, func(pool int, j *Job) {
		started <- struct{}{}
		<-release
	})
	return s, release, started
}

// waitStarts drains n start signals.
func waitStarts(t *testing.T, started chan struct{}, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d jobs started", i, n)
		}
	}
}

func TestSubmitPrefersShortestQueue(t *testing.T) {
	const pools, cap = 4, 8
	s, release, started := gatedScheduler(pools, cap)
	defer func() { close(release); s.Close() }()

	// The first `pools` jobs occupy the workers (queue depths stay 0);
	// wait for them so subsequent submissions purely fill queues.
	for i := 0; i < pools; i++ {
		if _, err := s.Submit(&Job{}); err != nil {
			t.Fatal(err)
		}
	}
	waitStarts(t, started, pools)

	// The next 4*pools jobs must spread evenly: JSQ never lets any queue
	// get 2 deeper than another.
	for i := 0; i < 4*pools; i++ {
		if _, err := s.Submit(&Job{}); err != nil {
			t.Fatal(err)
		}
		depths := make([]int, pools)
		min, max := cap, 0
		for p := 0; p < pools; p++ {
			depths[p] = len(s.queues[p])
			if depths[p] < min {
				min = depths[p]
			}
			if depths[p] > max {
				max = depths[p]
			}
		}
		if max-min > 1 {
			t.Fatalf("after %d submissions queue depths %v skew by more than 1", i+1, depths)
		}
	}
}

func TestSubmitBusyWhenAllQueuesFull(t *testing.T) {
	const pools, cap = 2, 2
	s, release, started := gatedScheduler(pools, cap)
	defer func() { close(release); s.Close() }()

	// Occupy every worker first so queue occupancy is deterministic, then
	// fill every queue slot: pools running + pools*cap queued is the
	// system's exact capacity.
	for i := 0; i < pools; i++ {
		if _, err := s.Submit(&Job{}); err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}
	waitStarts(t, started, pools)
	for i := 0; i < pools*cap; i++ {
		if _, err := s.Submit(&Job{}); err != nil {
			t.Fatalf("fill submission %d: %v", i, err)
		}
	}
	if _, err := s.Submit(&Job{}); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
}

func TestSchedulerStatsCounters(t *testing.T) {
	const pools = 3
	s, release, _ := gatedScheduler(pools, 8)
	const jobs = 12
	for i := 0; i < jobs; i++ {
		if _, err := s.Submit(&Job{}); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	s.Close()
	var dispatched, completed int64
	for _, p := range s.Stats() {
		dispatched += p.Dispatched
		completed += p.Completed
	}
	if dispatched != jobs || completed != jobs {
		t.Errorf("dispatched=%d completed=%d, want %d each", dispatched, completed, jobs)
	}
}

// TestJSQSkewUnderConcurrentLoad is the acceptance check: loadgen drives
// ≥ 64 concurrent mixed check/maximality jobs through a served instance
// and JSQ must keep the per-pool load skew within 2× the mean — measured
// both on dispatched-job counts (the time-integral of queue depth) and on
// peak queue depths when the queues actually built up.
func TestJSQSkewUnderConcurrentLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	const (
		pools       = 4
		concurrency = 64
		jobs        = 256
	)
	svc := New(Config{Pools: pools, QueueCap: concurrency, SweepWorkers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// A domain big enough (16k tuples/pass) that jobs outlast the submit
	// path, so the queues genuinely build and JSQ has something to balance.
	values := make([]int64, 128)
	for i := range values {
		values[i] = int64(i)
	}
	rep, err := Loadgen(LoadgenConfig{
		BaseURL:      srv.URL,
		Jobs:         jobs,
		Concurrency:  concurrency,
		MaximalEvery: 4,
		Request: CheckRequest{
			Program: testProg,
			Policy:  "{2}",
			Domain:  values,
		},
		Client: srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d/%d jobs failed", rep.Failed, rep.Jobs)
	}
	if rep.CacheHits < jobs-2 {
		t.Errorf("cache hits = %d, want ≥ %d (identical submissions)", rep.CacheHits, jobs-2)
	}
	// Every job dispatched (no store), so the trace-sourced queue-wait
	// column must be populated. The tracer retains more jobs than this
	// run submits, so eviction cannot explain an empty column.
	if rep.TracedJobs == 0 {
		t.Error("no queue-wait samples from trace spans")
	}

	stats := svc.Stats()
	var totalDispatched, totalPeak, maxDispatched, maxPeak int64
	for _, p := range stats.Pools {
		totalDispatched += p.Dispatched
		totalPeak += p.Peak
		if p.Dispatched > maxDispatched {
			maxDispatched = p.Dispatched
		}
		if p.Peak > maxPeak {
			maxPeak = p.Peak
		}
	}
	if totalDispatched != jobs {
		t.Fatalf("dispatched %d jobs, want %d", totalDispatched, jobs)
	}
	meanDispatched := float64(totalDispatched) / pools
	if float64(maxDispatched) > 2*meanDispatched {
		t.Errorf("dispatch skew: max pool got %d jobs, mean %.1f (> 2× mean)", maxDispatched, meanDispatched)
	}
	// Peak-depth skew is only meaningful if queues built up at all; with
	// 64 closed-loop clients over 4 single-worker pools they always do.
	meanPeak := float64(totalPeak) / pools
	if meanPeak >= 1 && float64(maxPeak) > 2*meanPeak {
		t.Errorf("queue-depth skew: max peak %d, mean peak %.1f (> 2× mean)", maxPeak, meanPeak)
	}
	t.Logf("loadgen: %s", rep)
	t.Logf("pools: %+v", stats.Pools)
}
