package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// waitDone polls a job to a terminal state.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
}

func TestSubmitShardedJob(t *testing.T) {
	svc := New(Config{Pools: 1})
	defer svc.Close()

	// 8 values × arity 2 = 64 tuples; the shard covers [16, 48).
	req := CheckRequest{
		Program: testProg,
		Policy:  "{2}",
		Domain:  []int64{0, 1, 2, 3, 4, 5, 6, 7},
		Offset:  16,
		Count:   32,
	}
	j, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j.Total != 32 {
		t.Fatalf("sharded job total = %d, want 32 (the shard span)", j.Total)
	}
	waitDone(t, j)
	st := j.Status()
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("job did not finish cleanly: %+v", st)
	}
	res := st.Result
	if res.Checked != 32 {
		t.Fatalf("sharded result checked = %d, want 32", res.Checked)
	}
	if res.Offset != 16 || res.Count != 32 {
		t.Fatalf("shard echo wrong: offset=%d count=%d", res.Offset, res.Count)
	}
	if len(res.Views) == 0 {
		t.Fatalf("sharded result carries no views table")
	}
	if res.Mechanism == "" || res.Policy == "" || res.Observation == "" {
		t.Fatalf("sharded result lacks artifact names: %+v", res)
	}
}

func TestSubmitShardedMaximalJob(t *testing.T) {
	svc := New(Config{Pools: 1})
	defer svc.Close()
	req := CheckRequest{
		Program: testProg,
		Policy:  "{2}",
		Domain:  []int64{0, 1, 2, 3},
		Maximal: true,
		Offset:  0,
		Count:   8,
	}
	j, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Sharded maximality is a single evidence pass: soundness + evidence
	// over 8 tuples each.
	if j.Total != 16 {
		t.Fatalf("sharded maximal job total = %d, want 16", j.Total)
	}
	waitDone(t, j)
	res := j.Status().Result
	if res == nil || res.Maximal == nil {
		t.Fatalf("no maximality verdict: %+v", j.Status())
	}
	if len(res.Classes) == 0 {
		t.Fatalf("sharded maximal result carries no classes table")
	}
	if res.Program == "" {
		t.Fatalf("sharded maximal result lacks the reference program name")
	}
}

func TestSubmitRejectsNegativeShard(t *testing.T) {
	svc := New(Config{Pools: 1})
	defer svc.Close()
	for _, req := range []CheckRequest{
		{Program: testProg, Offset: -1},
		{Program: testProg, Count: -1},
	} {
		if _, err := svc.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("offset=%d count=%d: err = %v, want ErrBadRequest", req.Offset, req.Count, err)
		}
	}
}

func TestShardAdmissionBoundsSpanNotProduct(t *testing.T) {
	// With MaxTuples 100, a 32^2 = 1024-tuple whole-domain submission is
	// rejected while a 64-tuple shard of the same domain is admitted —
	// sharding is how a fleet takes on domains one node refuses.
	svc := New(Config{Pools: 1, MaxTuples: 100})
	defer svc.Close()
	dom := make([]int64, 32)
	for i := range dom {
		dom[i] = int64(i)
	}
	whole := CheckRequest{Program: testProg, Policy: "{2}", Domain: dom}
	if _, err := svc.Submit(whole); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("whole domain: err = %v, want ErrBadRequest", err)
	}
	shard := whole
	shard.Offset = 512
	shard.Count = 64
	j, err := svc.Submit(shard)
	if err != nil {
		t.Fatalf("shard within bounds rejected: %v", err)
	}
	waitDone(t, j)
	if res := j.Status().Result; res == nil || res.Checked != 64 {
		t.Fatalf("shard result: %+v", j.Status())
	}
}

func TestV2ShardRoundTrip(t *testing.T) {
	svc := New(Config{Pools: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	body, _ := json.Marshal(CheckRequest{
		Program: testProg,
		Policy:  "{2}",
		Domain:  []int64{0, 1, 2, 3},
		Offset:  4,
		Count:   8,
	})
	resp, err := http.Post(srv.URL+"/v2/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if sub.Total != 8 {
		t.Fatalf("total = %d, want the 8-tuple shard span", sub.Total)
	}

	deadline := time.Now().Add(10 * time.Second)
	var st JobStatus
	for {
		r2, err := http.Get(srv.URL + "/v2/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(r2.Body).Decode(&st)
		r2.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != StateDone || st.Result == nil {
		t.Fatalf("terminal status: %+v", st)
	}
	if st.Result.Offset != 4 || st.Result.Count != 8 || st.Result.Checked != 8 {
		t.Fatalf("wire result shard fields wrong: %+v", st.Result)
	}
	if len(st.Result.Views) == 0 {
		t.Fatalf("wire result lost the views table")
	}
}
