package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// TenantConfig enables per-tenant admission control: a token-bucket
// quota in tuples (the unit every admission bound in the service is
// measured in) plus deficit-round-robin dispatch across backlogged
// tenants, ahead of the join-the-shortest-queue fleet. The zero value
// disables tenancy; Burst > 0 enables it.
type TenantConfig struct {
	// Rate refills each tenant's bucket, in tuples per second; ≤ 0 with
	// Burst > 0 means DefaultTenantRate.
	Rate float64
	// Burst is each tenant's bucket capacity in tuples; > 0 enables
	// admission control. A single job larger than Burst is charged the
	// full bucket rather than rejected forever.
	Burst int64
	// QueueCap bounds each tenant's dispatch backlog in jobs; ≤ 0 means
	// DefaultTenantQueueCap. A full backlog rejects with ErrBusy.
	QueueCap int
	// Quantum is the deficit-round-robin increment in tuples per visit;
	// ≤ 0 means DefaultTenantQuantum. Smaller quanta interleave tenants
	// more finely at the cost of more rounds per dispatch.
	Quantum int64
	// Now overrides the bucket clock, for tests.
	Now func() time.Time
}

// Tenant admission defaults.
const (
	DefaultTenantRate     = float64(1 << 20) // tuples refilled per second
	DefaultTenantQueueCap = 64
	DefaultTenantQuantum  = 1 << 16
)

// ErrOverQuota is the sentinel inside every QuotaError; HTTP maps it
// to 429.
var ErrOverQuota = errors.New("service: tenant over quota")

// QuotaError reports a submission rejected by its tenant's token
// bucket, and when the bucket will have refilled enough to admit it
// (the Retry-After header).
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("%v: tenant %q, retry after %s", ErrOverQuota, e.Tenant, e.RetryAfter.Round(time.Millisecond))
}

func (e *QuotaError) Unwrap() error { return ErrOverQuota }

// TenantStats is one tenant's admission record in Stats.Tenants.
type TenantStats struct {
	Tenant string `json:"tenant"`
	// Admitted and Rejected count submissions past / stopped by the
	// token bucket; TuplesAdmitted is the admitted tuple volume (the
	// quantity the bucket actually meters).
	Admitted       int64 `json:"admitted"`
	Rejected       int64 `json:"rejected"`
	TuplesAdmitted int64 `json:"tuples_admitted"`
	// Queued is the tenant's current DRR backlog, jobs admitted but not
	// yet handed to the worker fleet.
	Queued int `json:"queued"`
}

// tenantState is one tenant's bucket, backlog, and counters.
type tenantState struct {
	tokens  float64
	last    time.Time
	deficit int64
	queue   []*Job

	admitted, rejected, tuples int64
}

// tenantGate sits between request validation and the scheduler. With
// tenancy disabled it is a transparent pass-through (dispatch goes
// straight to the scheduler on the caller's goroutine, exactly the
// pre-tenancy behavior). Enabled, admission charges the tenant's token
// bucket and dispatch runs through per-tenant queues drained
// deficit-round-robin by a single pump goroutine, so tenants with
// backlogs share the fleet in proportion to rounds, not arrival rate.
type tenantGate struct {
	cfg     TenantConfig
	svc     *Service
	enabled bool

	wakeCh  chan struct{}
	closeCh chan struct{}
	doneCh  chan struct{} // closed when the pump goroutine has exited
	closing sync.Once

	mu      sync.Mutex
	tenants map[string]*tenantState
	ring    []string // visit order; grows as tenants appear
	rr      int      // next ring position the DRR scan starts from
}

func newTenantGate(cfg TenantConfig, svc *Service) *tenantGate {
	g := &tenantGate{cfg: cfg, svc: svc, enabled: cfg.Burst > 0}
	if !g.enabled {
		return g
	}
	if g.cfg.Rate <= 0 {
		g.cfg.Rate = DefaultTenantRate
	}
	if g.cfg.QueueCap <= 0 {
		g.cfg.QueueCap = DefaultTenantQueueCap
	}
	if g.cfg.Quantum <= 0 {
		g.cfg.Quantum = DefaultTenantQuantum
	}
	if g.cfg.Now == nil {
		g.cfg.Now = time.Now
	}
	g.tenants = make(map[string]*tenantState)
	g.wakeCh = make(chan struct{}, 1)
	g.closeCh = make(chan struct{})
	g.doneCh = make(chan struct{})
	go g.pump()
	return g
}

// close stops the pump and waits for it to exit, so the scheduler can be
// closed afterwards without a dispatch racing in.
func (g *tenantGate) close() {
	if !g.enabled {
		return
	}
	g.closing.Do(func() { close(g.closeCh) })
	<-g.doneCh
}

// wake nudges the pump: fleet capacity freed or work arrived. Safe (and
// a no-op) with tenancy disabled.
func (g *tenantGate) wake() {
	if !g.enabled {
		return
	}
	select {
	case g.wakeCh <- struct{}{}:
	default:
	}
}

// state returns (creating if needed) the tenant's state. Callers hold g.mu.
func (g *tenantGate) state(tenant string) *tenantState {
	t, ok := g.tenants[tenant]
	if !ok {
		t = &tenantState{tokens: float64(g.cfg.Burst), last: g.cfg.Now()}
		g.tenants[tenant] = t
		g.ring = append(g.ring, tenant)
	}
	return t
}

// admit charges the tenant's bucket for a job of total tuples, rejecting
// with a QuotaError when the bucket cannot cover it. Resumed jobs
// (id != "") were admitted before the restart and pass free; with
// tenancy disabled every request passes.
func (g *tenantGate) admit(tenant, id string, total int64) error {
	if !g.enabled || id != "" {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t := g.state(tenant)
	now := g.cfg.Now()
	t.tokens += g.cfg.Rate * now.Sub(t.last).Seconds()
	if t.tokens > float64(g.cfg.Burst) {
		t.tokens = float64(g.cfg.Burst)
	}
	t.last = now
	charge := total
	if charge > g.cfg.Burst {
		// Larger than the bucket: admittable only against a full bucket,
		// at the cost of draining it — never rejected forever.
		charge = g.cfg.Burst
	}
	if float64(charge) > t.tokens {
		t.rejected++
		need := float64(charge) - t.tokens
		retry := time.Duration(need / g.cfg.Rate * float64(time.Second))
		if retry < time.Millisecond {
			retry = time.Millisecond
		}
		return &QuotaError{Tenant: tenant, RetryAfter: retry}
	}
	t.tokens -= float64(charge)
	t.admitted++
	t.tuples += total
	return nil
}

// dispatch hands an admitted job towards the fleet: directly with
// tenancy disabled, through the tenant's DRR backlog otherwise. A full
// backlog returns the scheduler's ErrBusy.
func (g *tenantGate) dispatch(j *Job) error {
	if !g.enabled {
		_, err := g.svc.sched.Submit(j)
		return err
	}
	g.mu.Lock()
	t := g.state(j.tenant)
	if len(t.queue) >= g.cfg.QueueCap {
		g.mu.Unlock()
		return fmt.Errorf("%w: tenant %q backlog full (%d jobs)", ErrBusy, j.tenant, g.cfg.QueueCap)
	}
	t.queue = append(t.queue, j)
	g.mu.Unlock()
	g.wake()
	return nil
}

// pump drains the tenant backlogs deficit-round-robin into the
// scheduler, pausing whenever the fleet is full until a completion (or
// new work) wakes it.
func (g *tenantGate) pump() {
	defer close(g.doneCh)
	for {
		select {
		case <-g.closeCh:
			return
		case <-g.wakeCh:
		}
		for {
			select {
			case <-g.closeCh:
				return
			default:
			}
			j := g.next()
			if j == nil {
				break
			}
			if _, err := g.svc.sched.Submit(j); err != nil {
				// Fleet saturated: restore the job at the head of its
				// backlog and wait for a slot to free.
				g.requeue(j)
				break
			}
		}
	}
}

// next picks the next job to dispatch: a deficit-round-robin scan over
// the tenant ring, skipping jobs cancelled while backlogged. Each visit
// to a backlogged tenant grows its deficit by one quantum; the head job
// dispatches once the deficit covers its tuple total, so big jobs wait
// proportionally more rounds and light tenants slip between them.
func (g *tenantGate) next() *Job {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		backlogged := false
		for range g.ring {
			name := g.ring[g.rr]
			g.rr = (g.rr + 1) % len(g.ring)
			t := g.tenants[name]
			for len(t.queue) > 0 && t.queue[0].stateNow() != StateQueued {
				t.queue = t.queue[1:] // cancelled while backlogged
			}
			if len(t.queue) == 0 {
				t.deficit = 0
				continue
			}
			backlogged = true
			j := t.queue[0]
			if t.deficit < j.Total {
				t.deficit += g.cfg.Quantum
			}
			if t.deficit >= j.Total {
				t.queue = t.queue[1:]
				t.deficit -= j.Total
				if len(t.queue) == 0 {
					t.deficit = 0
				}
				return j
			}
		}
		if !backlogged {
			return nil
		}
	}
}

// requeue restores a job the scheduler refused to the head of its
// tenant's backlog, with its deficit, so the DRR order is unchanged.
func (g *tenantGate) requeue(j *Job) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t := g.state(j.tenant)
	t.queue = append([]*Job{j}, t.queue...)
	t.deficit += j.Total
}

// stats snapshots every tenant's counters, sorted by name; nil with
// tenancy disabled.
func (g *tenantGate) stats() []TenantStats {
	if !g.enabled {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.tenants))
	for name := range g.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TenantStats, 0, len(names))
	for _, name := range names {
		t := g.tenants[name]
		out = append(out, TenantStats{
			Tenant:         name,
			Admitted:       t.admitted,
			Rejected:       t.rejected,
			TuplesAdmitted: t.tuples,
			Queued:         len(t.queue),
		})
	}
	return out
}
