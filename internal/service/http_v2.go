package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// maxBatchSpecs bounds one POST /v2/check batch. The per-pool queues bound
// admission anyway (overflow items come back busy), but a hard cap keeps a
// single request from monopolising the dispatcher.
const maxBatchSpecs = 256

// defaultEventInterval is the progress-event cadence of
// GET /v2/jobs/{id}/events when the request does not set interval_ms.
const defaultEventInterval = 250 * time.Millisecond

// BatchItem is one entry of a batch submission's response: the submit
// echo for an accepted spec (ID non-empty; Cached/Pool/Total carry the
// same fields v1's SubmitResponse always reports), or the rejection for a
// refused one (Error non-empty, the submit fields zero).
type BatchItem struct {
	ID            string `json:"id,omitempty"`
	State         State  `json:"state,omitempty"`
	Cached        bool   `json:"cached"`
	CachedVerdict bool   `json:"cached_verdict,omitempty"`
	Pool          int    `json:"pool"`
	Total         int64  `json:"total"`
	Error         string `json:"error,omitempty"`
	// Code is the ErrorBody code of a refused spec ("" when accepted).
	Code string `json:"code,omitempty"`
	// Busy marks specs refused because every queue was full; the client
	// should resubmit just those.
	Busy bool `json:"busy,omitempty"`
}

// BatchResponse is the wire form of a batch POST /v2/check.
type BatchResponse struct {
	Jobs     []BatchItem `json:"jobs"`
	Accepted int         `json:"accepted"`
}

// CancelResponse is the wire form of DELETE /v2/jobs/{id}. State is the
// job's state observed immediately after the cancel request: a job caught
// while queued reports "cancelled" at once; a running job may still report
// "running" until the sweep observes the cancellation, within one chunk.
type CancelResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
}

// handleCheckV2 is POST /v2/check: a single CheckRequest object, or a JSON
// array of them submitted as a batch. Batch responses report per-spec
// outcomes; the status is 202 when at least one spec was accepted and 400
// when none were.
func (s *Service) handleCheckV2(w http.ResponseWriter, r *http.Request) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		s.handleBatch(w, trimmed, r.Header.Get(TenantHeader))
		return
	}
	s.handleCheckBody(w, body, r.Header.Get(TenantHeader))
}

// handleCheckBody submits a single decoded spec, v1-style. A submission
// answered from the verdict store is 200 (not 202): the job is already
// done and pollable.
func (s *Service) handleCheckBody(w http.ResponseWriter, body []byte, tenant string) {
	var req CheckRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decoding request: "+err.Error())
		return
	}
	j, err := s.SubmitTenant(req, tenant)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	status := http.StatusAccepted
	if j.CachedVerdict {
		status = http.StatusOK
	}
	writeJSON(w, status, SubmitResponse{
		ID:            j.ID,
		State:         j.stateNow(),
		Cached:        j.CacheHit,
		CachedVerdict: j.CachedVerdict,
		Pool:          j.Pool(),
		Total:         j.Total,
	})
}

// errorCode maps a Submit error to its stable ErrorBody code.
func errorCode(err error) string {
	switch {
	case errors.Is(err, ErrBadRequest):
		return CodeBadRequest
	case errors.Is(err, ErrOverQuota):
		return CodeOverQuota
	case errors.Is(err, ErrBusy):
		return CodeBusy
	default:
		return CodeInternal
	}
}

func (s *Service) handleBatch(w http.ResponseWriter, body []byte, tenant string) {
	var reqs []CheckRequest
	if err := json.Unmarshal(body, &reqs); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decoding batch: "+err.Error())
		return
	}
	if len(reqs) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty batch")
		return
	}
	if len(reqs) > maxBatchSpecs {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("batch has %d specs, limit %d", len(reqs), maxBatchSpecs))
		return
	}
	resp := BatchResponse{Jobs: make([]BatchItem, len(reqs))}
	anyBusy := false
	for i, req := range reqs {
		j, err := s.SubmitTenant(req, tenant)
		if err != nil {
			busy := errors.Is(err, ErrBusy)
			anyBusy = anyBusy || busy
			resp.Jobs[i] = BatchItem{Error: err.Error(), Code: errorCode(err), Busy: busy}
			continue
		}
		resp.Jobs[i] = BatchItem{
			ID: j.ID, State: j.stateNow(),
			Cached: j.CacheHit, CachedVerdict: j.CachedVerdict,
			Pool: j.Pool(), Total: j.Total,
		}
		resp.Accepted++
	}
	status := http.StatusAccepted
	if resp.Accepted == 0 {
		// Nothing admitted: a transiently full fleet keeps v1's retryable
		// 503 contract; pure validation failures are a permanent 400.
		if anyBusy {
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		} else {
			status = http.StatusBadRequest
		}
	}
	writeJSON(w, status, resp)
}

// handleCancel is DELETE /v2/jobs/{id}: 200 with the observed state when
// the cancel took (or the job was already cancelled), 404 for unknown IDs,
// 409 when the job already finished.
func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
		return
	case errors.Is(err, ErrJobTerminal):
		writeError(w, http.StatusConflict, CodeConflict, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CancelResponse{ID: j.ID, State: j.stateNow()})
}

// handleEvents is GET /v2/jobs/{id}/events: a server-sent-event stream of
// the job's status. One "progress" event is sent immediately, then one
// every interval (interval_ms query parameter, default 250), sourced from
// the sweep engine's chunk cursor; a final "done" event carries the
// terminal status — result included — and closes the stream. Disconnecting
// the request ends the stream without affecting the job.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
		return
	}
	interval := defaultEventInterval
	if ms := r.URL.Query().Get("interval_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n < 10 || n > 60_000 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "interval_ms must be an integer in [10, 60000]")
			return
		}
		interval = time.Duration(n) * time.Millisecond
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string) bool {
		data, err := json.Marshal(j.Status())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !emit("progress") {
		return
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			emit("done")
			return
		case <-ticker.C:
			if !emit("progress") {
				return
			}
		}
	}
}
