package service

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"spm/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// storedService builds a service on the given store directory. Closed via
// t.Cleanup in reverse order: service first, then its store.
func storedService(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	st := openStore(t, dir)
	t.Cleanup(func() { st.Close() })
	cfg.Store = st
	return newTestService(t, cfg)
}

// stripTiming zeroes the fields that legitimately differ between two runs
// of the same check.
func stripTiming(r *Result) Result {
	c := *r
	c.ElapsedSeconds = 0
	c.InputsPerSec = 0
	return c
}

func TestVerdictCacheHit(t *testing.T) {
	s := storedService(t, t.TempDir(), Config{Pools: 1})
	req := CheckRequest{Program: testProg, Policy: "{2}", Maximal: true, Domain: []int64{0, 1, 2}}

	j1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitJob(t, j1)
	if st1.State != StateDone || st1.CachedVerdict {
		t.Fatalf("cold job: %+v", st1)
	}

	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := j2.Status() // no wait: a verdict hit is born done
	if st2.State != StateDone || !st2.CachedVerdict {
		t.Fatalf("repeat job not served from the store: %+v", st2)
	}
	if !reflect.DeepEqual(stripTiming(st2.Result), stripTiming(st1.Result)) {
		t.Errorf("stored verdict differs from computed one:\n  %+v\nvs\n  %+v", st2.Result, st1.Result)
	}
	if st2.Progress.Done != st2.Progress.Total {
		t.Errorf("cached job progress = %+v, want complete", st2.Progress)
	}

	stats := s.Stats()
	if stats.Store == nil || stats.Store.VerdictHits != 1 || stats.Store.Verdicts != 1 {
		t.Errorf("store stats = %+v, want one verdict and one hit", stats.Store)
	}

	// A different shard of the same check is not a hit.
	sharded := req
	sharded.Offset, sharded.Count = 0, 9
	j3, err := s.Submit(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if st3 := waitJob(t, j3); st3.CachedVerdict {
		t.Error("sharded variant wrongly served from whole-domain verdict")
	}
}

func TestVerdictSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}}

	st := openStore(t, dir)
	s1 := New(Config{Pools: 1, Store: st})
	j1, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	first := waitJob(t, j1)
	s1.Close()
	st.Close()

	s2 := storedService(t, dir, Config{Pools: 1})
	j2, err := s2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st2 := j2.Status()
	if !st2.CachedVerdict {
		t.Fatalf("verdict did not survive restart: %+v", st2)
	}
	if !reflect.DeepEqual(stripTiming(st2.Result), stripTiming(first.Result)) {
		t.Errorf("restarted verdict differs:\n  %+v\nvs\n  %+v", st2.Result, first.Result)
	}
}

// TestCrashResume is the in-process restart-resume differential: run a
// job to a known checkpoint, abandon the service without clearing the
// pending record (a crash), restart on the same store directory, and
// require the resumed job — same ID — to finish with the verdict an
// uninterrupted run produces.
func TestCrashResume(t *testing.T) {
	for _, maximal := range []bool{false, true} {
		req := slowRequest()
		req.Maximal = maximal

		// Reference: uninterrupted run at one sweep worker (the fully
		// deterministic configuration the byte-identity contract pins).
		ref := storedService(t, t.TempDir(), Config{Pools: 1, SweepWorkers: 1})
		rj, err := ref.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		want := waitJob(t, rj)
		if want.State != StateDone {
			t.Fatalf("reference run: %+v", want)
		}

		// The crash: tiny checkpoint interval, and once the sweep is past
		// its second checkpoint, the store is closed out from under the
		// service — from here on no write lands, exactly like a power
		// cut, so the pending record and its last checkpoint survive
		// while the job's own terminal bookkeeping is lost.
		dir2 := t.TempDir()
		st2 := openStore(t, dir2)
		s2 := New(Config{Pools: 1, SweepWorkers: 1, Store: st2, CheckpointEvery: 32})
		j2, err := s2.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for j2.Progress() < 80 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		st2.Close()
		j2.cancel()
		<-j2.Done()
		s2.Close()

		// Restart on the same directory: the job must come back pending,
		// under its original ID, and run to the reference verdict.
		s3 := storedService(t, dir2, Config{Pools: 1, SweepWorkers: 1, CheckpointEvery: 32})
		j3, err := s3.Job(j2.ID)
		if err != nil {
			t.Fatalf("resumed job %s not found after restart: %v", j2.ID, err)
		}
		got := waitJob(t, j3)
		if got.State != StateDone {
			t.Fatalf("maximal=%t: resumed job: state %s, error %q", maximal, got.State, got.Error)
		}
		if got.Progress.Done < j3.Total {
			t.Errorf("maximal=%t: resumed progress %+v incomplete", maximal, got.Progress)
		}
		if !reflect.DeepEqual(stripTiming(got.Result), stripTiming(want.Result)) {
			t.Errorf("maximal=%t: resumed verdict differs from uninterrupted run:\n  %+v\nvs\n  %+v",
				maximal, stripTiming(got.Result), stripTiming(want.Result))
		}
		if s3.Stats().Store.ResumedJobs != 1 {
			t.Errorf("maximal=%t: resumed-jobs counter = %+v", maximal, s3.Stats().Store)
		}
	}
}

// TestResumeSkipsSweptPrefix pins that a resume actually reuses the
// checkpoint rather than re-sweeping: the resumed run's own progress
// delta stays below the full total.
func TestResumeSkipsSweptPrefix(t *testing.T) {
	req := slowRequest()
	req.Policy = "{2}"

	dir := t.TempDir()
	st := openStore(t, dir)
	s1 := New(Config{Pools: 1, SweepWorkers: 1, Store: st, CheckpointEvery: 32})
	j1, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	// Let it pass at least two checkpoints (64 tuples of 256).
	deadline := time.Now().Add(20 * time.Second)
	for j1.Progress() < 80 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st.Close()
	j1.cancel()
	<-j1.Done()
	s1.Close()

	s2 := storedService(t, dir, Config{Pools: 1, SweepWorkers: 1, CheckpointEvery: 32})
	j2, err := s2.Job(j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The resumed job's progress starts at its checkpoint, not zero.
	if p := j2.Progress(); p < 32 {
		t.Errorf("resumed job progress starts at %d, want ≥ one checkpoint", p)
	}
	got := waitJob(t, j2)
	if got.State != StateDone {
		t.Fatalf("resumed job: %+v", got)
	}
}

func TestCancelledJobIsNotResumed(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s1 := New(Config{Pools: 1, SweepWorkers: 1, Store: st, CheckpointEvery: 32})
	j, err := s1.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 10*time.Second)
	if _, err := s1.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	s1.Close()
	st.Close()

	s2 := storedService(t, dir, Config{Pools: 1})
	if _, err := s2.Job(j.ID); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancelled job resurrected after restart: %v", err)
	}
	if n := s2.Stats().Jobs.Queued + s2.Stats().Jobs.Running; n != 0 {
		t.Errorf("restart re-enqueued %d jobs from a clean store", n)
	}
}

func TestFreshJobIDsDoNotCollideWithResumed(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s1 := New(Config{Pools: 1, SweepWorkers: 1, Store: st, CheckpointEvery: 32})
	var last *Job
	for i := 0; i < 3; i++ {
		j, err := s1.Submit(slowRequest())
		if err != nil {
			t.Fatal(err)
		}
		last = j
	}
	waitState(t, last, StateRunning, 10*time.Second)
	st.Close() // crash with job-1..job-3 pending
	for i := 1; i <= 3; i++ {
		if j, err := s1.Job("job-" + string(rune('0'+i))); err == nil {
			j.cancel()
		}
	}
	s1.Close()

	s2 := storedService(t, dir, Config{Pools: 1, SweepWorkers: 1})
	fresh, err := s2.Submit(CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		id := "job-" + string(rune('0'+i))
		if fresh.ID == id {
			t.Fatalf("fresh job reused resumed ID %s", id)
		}
	}
}
