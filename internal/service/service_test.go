package service

import (
	"errors"
	"testing"
	"time"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/surveillance"
)

// testProg leaks x1 into the output on the x2 != 0 path, so under
// allow(2) the bare program is unsound and the instrumented one sound.
const testProg = `
program demo
inputs x1 x2
    r := x1
    r := 0
    if x2 == 0 goto Zero else NonZero
Zero:    y := r
         halt
NonZero: y := x1
         halt
`

func waitJob(t *testing.T, j *Job) JobStatus {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", j.ID)
	}
	return j.Status()
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func TestSubmitVerdictMatchesDirectCheck(t *testing.T) {
	s := newTestService(t, Config{Pools: 2, SweepWorkers: 2})
	j, err := s.Submit(CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}

	// Reference: the sequential checker on the same setup.
	prog := flowchart.MustParse(testProg)
	mech, err := surveillance.Mechanism(prog, mustPolicy(t, "{2}"), surveillance.Untimed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.CheckSoundness(mech, core.NewAllow(2, 2), core.Grid(2, 0, 1, 2), core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Sound != want.Sound || st.Result.Checked != want.Checked {
		t.Errorf("service verdict (sound=%v checked=%d) != direct (sound=%v checked=%d)",
			st.Result.Sound, st.Result.Checked, want.Sound, want.Checked)
	}
	if !st.Result.Sound {
		t.Error("instrumented program should be sound under allow(2)")
	}
	if st.Progress.Done != st.Progress.Total {
		t.Errorf("progress %d/%d after completion", st.Progress.Done, st.Progress.Total)
	}
}

func TestSubmitRawUnsoundWithWitness(t *testing.T) {
	s := newTestService(t, Config{Pools: 1})
	j, err := s.Submit(CheckRequest{Program: testProg, Policy: "{2}", Raw: true, Domain: []int64{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if st.Result.Sound {
		t.Fatal("bare program should be unsound under allow(2)")
	}
	if st.Result.WitnessA == nil || st.Result.WitnessB == nil {
		t.Error("unsound verdict carries no witness pair")
	}
}

func TestSubmitMaximalProgressCountsAllPasses(t *testing.T) {
	s := newTestService(t, Config{Pools: 1})
	j, err := s.Submit(CheckRequest{Program: testProg, Policy: "{2}", Maximal: true, Domain: []int64{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(3 * 9); j.Total != want {
		t.Errorf("maximal job total = %d, want %d (three passes)", j.Total, want)
	}
	st := waitJob(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if st.Result.Maximal == nil {
		t.Fatal("maximal verdict missing")
	}
	if st.Progress.Done != j.Total {
		t.Errorf("progress %d, want %d", st.Progress.Done, j.Total)
	}
}

func TestSecondIdenticalSubmissionHitsCache(t *testing.T) {
	s := newTestService(t, Config{Pools: 1})
	req := CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}}
	first, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first submission reported a cache hit")
	}
	fst := waitJob(t, first)

	second, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second identical submission missed the compile cache")
	}
	sst := waitJob(t, second)
	if fst.Result.Sound != sst.Result.Sound || fst.Result.Checked != sst.Result.Checked {
		t.Errorf("cached verdict differs: %+v vs %+v", fst.Result, sst.Result)
	}
	// The second submission compiled nothing: exactly one miss (the first
	// submit) and one hit (the second) — workers run off the entry stored
	// on the job, never re-resolving the cache.
	if st := s.cache.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("cache stats = %+v, want exactly 1 miss and 1 hit", st)
	}
}

func TestReformattedSourceSharesCompiledEntry(t *testing.T) {
	s := newTestService(t, Config{Pools: 1})
	if _, err := s.Submit(CheckRequest{Program: testProg, Policy: "{2}"}); err != nil {
		t.Fatal(err)
	}
	// Same flowchart, different whitespace: canonical-level hit.
	reformatted := "\n\nprogram demo\ninputs x1 x2\n\tr := x1\n\tr := 0\n\tif x2 == 0 goto Zero else NonZero\nZero:\ty := r\n\thalt\nNonZero:\ty := x1\n\thalt\n"
	j, err := s.Submit(CheckRequest{Program: reformatted, Policy: "{2}"})
	if err != nil {
		t.Fatal(err)
	}
	if !j.CacheHit {
		t.Error("reformatted source missed the canonical cache level")
	}
	if misses := s.cache.Stats().Misses; misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, Config{Pools: 1, MaxTuples: 100})
	cases := []struct {
		name string
		req  CheckRequest
	}{
		{"malformed program", CheckRequest{Program: "program broken\ninputs x1\n    y := \n"}},
		{"bad policy", CheckRequest{Program: testProg, Policy: "{nope}"}},
		{"policy exceeds arity", CheckRequest{Program: testProg, Policy: "{7}"}},
		{"bad variant", CheckRequest{Program: testProg, Variant: "warp"}},
		{"domain too large", CheckRequest{Program: testProg, Domain: []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Submit(tc.req)
			if !errors.Is(err, ErrBadRequest) {
				t.Errorf("err = %v, want ErrBadRequest", err)
			}
		})
	}
}

func TestUnknownJob(t *testing.T) {
	s := newTestService(t, Config{Pools: 1})
	if _, err := s.Job("job-999"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("err = %v, want ErrUnknownJob", err)
	}
}

func TestStatsTallies(t *testing.T) {
	s := newTestService(t, Config{Pools: 2})
	req := CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}}
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitJob(t, j)
	}
	st := s.Stats()
	if st.Jobs.Done != 6 || st.Jobs.Failed != 0 {
		t.Errorf("job tallies = %+v, want 6 done", st.Jobs)
	}
	var dispatched int64
	for _, p := range st.Pools {
		dispatched += p.Dispatched
	}
	if dispatched != 6 {
		t.Errorf("dispatched across pools = %d, want 6", dispatched)
	}
	if st.Cache.Hits < 5 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want ≥5 hits and exactly 1 miss", st.Cache)
	}
}

func mustPolicy(t *testing.T, spec string) lattice.IndexSet {
	t.Helper()
	s, err := ParsePolicy(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
