package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spm/internal/obs"
)

// LoadgenConfig drives Loadgen: a closed-loop generator where Concurrency
// clients each submit a job, poll it to completion, and immediately submit
// the next, until Jobs jobs have finished. MaximalEvery mixes maximality
// checks into the stream (every k-th job, 0 = never), exercising the
// service's heavier three-pass path alongside plain soundness checks.
type LoadgenConfig struct {
	BaseURL      string
	Jobs         int
	Concurrency  int
	MaximalEvery int
	Request      CheckRequest
	// Tenant is sent as the X-SPM-Tenant header on every submission;
	// empty means anonymous. Submissions rejected 429 by a tenant quota
	// are retried after the server's Retry-After, tallied in
	// QuotaRetries.
	Tenant string
	// PollInterval between job-status polls; default 2ms.
	PollInterval time.Duration
	// JobTimeout is the per-job deadline, bounding one job end to end
	// (submit retries, polling); default 60s. A submitted job that misses
	// it is cancelled server-side via DELETE /v2/jobs/{id} — freeing its
	// pool slot rather than abandoning it to grind on — and reported in
	// the cancelled column. Without the deadline a server that keeps
	// answering 503, or a non-spm endpoint answering 200 with an alien
	// body, would make the closed loop spin forever.
	JobTimeout time.Duration
	// Client overrides the HTTP client (tests pass the httptest client).
	Client *http.Client
}

// LoadgenReport summarises one loadgen run: end-to-end job latency
// percentiles (submit to terminal state, polling included — the latency a
// real client observes), the cache-hit count across submissions, and the
// jobs cancelled server-side at their deadline. Cancelled jobs are tallied
// separately from failures — deadline abandonment is a client decision,
// not a server fault — and their latencies are excluded from the
// percentiles so a slow tail does not masquerade as service time.
type LoadgenReport struct {
	Jobs         int           `json:"jobs"`
	Failed       int           `json:"failed"`
	Cancelled    int           `json:"cancelled"`
	Busy         int           `json:"busy_retries"`
	QuotaRetries int           `json:"quota_retries"`
	CacheHits    int           `json:"cache_hits"`
	VerdictHits  int           `json:"verdict_hits"`
	Concurrency  int           `json:"concurrency"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	JobsPerSec   float64       `json:"jobs_per_sec"`
	P50          time.Duration `json:"p50_ns"`
	P90          time.Duration `json:"p90_ns"`
	P99          time.Duration `json:"p99_ns"`
	Max          time.Duration `json:"max_ns"`
	// Queue-wait percentiles, read from each job's trace span data (the
	// dispatch span's duration on GET /v2/jobs/{id}/trace): time spent
	// waiting for a pool worker, separating scheduling delay from sweep
	// time inside the end-to-end latency above. TracedJobs counts the
	// jobs that contributed — store-answered jobs never dispatch, and a
	// trace may already be evicted — so 0 means the column is absent,
	// not that waits were zero.
	TracedJobs int           `json:"traced_jobs,omitempty"`
	QWaitP50   time.Duration `json:"queue_wait_p50_ns,omitempty"`
	QWaitP90   time.Duration `json:"queue_wait_p90_ns,omitempty"`
	QWaitP99   time.Duration `json:"queue_wait_p99_ns,omitempty"`
}

// String renders the report for the CLI.
func (r *LoadgenReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d jobs × %d clients in %v (%.0f jobs/s)\n",
		r.Jobs, r.Concurrency, r.Elapsed.Round(time.Millisecond), r.JobsPerSec)
	fmt.Fprintf(&b, "  latency p50 %v  p90 %v  p99 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	if r.TracedJobs > 0 {
		fmt.Fprintf(&b, "  queue wait p50 %v  p90 %v  p99 %v  (%d traced jobs)\n",
			r.QWaitP50.Round(time.Microsecond), r.QWaitP90.Round(time.Microsecond),
			r.QWaitP99.Round(time.Microsecond), r.TracedJobs)
	}
	fmt.Fprintf(&b, "  cache hits %d/%d, verdict hits %d, failed %d, cancelled at deadline %d, busy retries %d, quota retries %d",
		r.CacheHits, r.Jobs, r.VerdictHits, r.Failed, r.Cancelled, r.Busy, r.QuotaRetries)
	return b.String()
}

// Loadgen fires cfg.Jobs check jobs at a running server and reports
// latency percentiles. It is the engine of `spm loadgen` and of the CI
// smoke test.
func Loadgen(cfg LoadgenConfig) (*LoadgenReport, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 64
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Concurrency > cfg.Jobs {
		cfg.Concurrency = cfg.Jobs
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 60 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	base := strings.TrimRight(cfg.BaseURL, "/")

	var (
		next        atomic.Int64
		cacheHits   atomic.Int64
		verdictHits atomic.Int64
		failed      atomic.Int64
		cancelled   atomic.Int64
		busy        atomic.Int64
		quota       atomic.Int64
		mu          sync.Mutex
		latencies   []time.Duration
		waits       []time.Duration
		firstErr    error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Jobs) {
					return
				}
				req := cfg.Request
				if cfg.MaximalEvery > 0 && i%int64(cfg.MaximalEvery) == 0 {
					req.Maximal = true
				}
				t0 := time.Now()
				ok, err := runOne(client, base, req, cfg.Tenant, cfg.PollInterval, t0.Add(cfg.JobTimeout), &busy, &quota)
				lat := time.Since(t0)
				mu.Lock()
				if !ok.cancelled {
					latencies = append(latencies, lat)
				}
				if ok.hasWait {
					waits = append(waits, ok.queueWait)
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				switch {
				case ok.cancelled:
					cancelled.Add(1)
				case err != nil || !ok.succeeded:
					failed.Add(1)
				}
				if ok.cached {
					cacheHits.Add(1)
				}
				if ok.verdictHit {
					verdictHits.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep := &LoadgenReport{
		Jobs:         cfg.Jobs,
		Failed:       int(failed.Load()),
		Cancelled:    int(cancelled.Load()),
		Busy:         int(busy.Load()),
		QuotaRetries: int(quota.Load()),
		CacheHits:    int(cacheHits.Load()),
		VerdictHits:  int(verdictHits.Load()),
		Concurrency:  cfg.Concurrency,
		Elapsed:      elapsed,
		P50:          percentile(latencies, 50),
		P90:          percentile(latencies, 90),
		P99:          percentile(latencies, 99),
		Max:          percentile(latencies, 100),
	}
	if elapsed > 0 {
		rep.JobsPerSec = float64(cfg.Jobs) / elapsed.Seconds()
	}
	if len(waits) > 0 {
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		rep.TracedJobs = len(waits)
		rep.QWaitP50 = percentile(waits, 50)
		rep.QWaitP90 = percentile(waits, 90)
		rep.QWaitP99 = percentile(waits, 99)
	}
	return rep, nil
}

type oneResult struct {
	cached     bool
	verdictHit bool
	succeeded  bool
	cancelled  bool
	// queueWait is the dispatch span's duration from the job's trace;
	// hasWait distinguishes a measured zero from no trace at all.
	queueWait time.Duration
	hasWait   bool
}

// fetchQueueWait reads a finished job's dispatch span off the trace
// endpoint. Best-effort by design: a 404 (trace evicted, or an older
// server without the endpoint) or a timeline without a dispatch span —
// a job answered from the verdict store never dispatched — just means
// no sample.
func fetchQueueWait(client *http.Client, base, id string) (time.Duration, bool) {
	resp, err := client.Get(base + "/v2/jobs/" + id + "/trace")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	var td obs.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
		return 0, false
	}
	for _, e := range td.Events {
		if e.Name == "dispatch" {
			return e.Dur, true
		}
	}
	return 0, false
}

// cancelJob asks the server to stop a job the client no longer wants,
// best-effort: 200 (cancelled), 409 (won the race and finished), and 404
// (already evicted) all mean the pool slot is not stuck on our behalf.
func cancelJob(client *http.Client, base, id string) error {
	req, err := http.NewRequest(http.MethodDelete, base+"/v2/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusConflict, http.StatusNotFound:
		return nil
	}
	return fmt.Errorf("loadgen: cancel %s: %s", id, resp.Status)
}

// runOne submits a single job and polls it to a terminal state, retrying
// submission with backoff while the server reports every queue full (503)
// or the tenant's quota drained (429, honouring Retry-After). The
// deadline bounds the whole attempt; a submitted job that misses it is
// cancelled server-side rather than abandoned.
func runOne(client *http.Client, base string, req CheckRequest, tenant string, poll time.Duration, deadline time.Time, busy, quota *atomic.Int64) (oneResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return oneResult{}, err
	}
	var sub SubmitResponse
	for {
		hreq, err := http.NewRequest(http.MethodPost, base+"/v1/check", bytes.NewReader(body))
		if err != nil {
			return oneResult{}, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			hreq.Header.Set(TenantHeader, tenant)
		}
		resp, err := client.Do(hreq)
		if err != nil {
			return oneResult{}, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return oneResult{}, err
		}
		switch resp.StatusCode {
		case http.StatusServiceUnavailable:
			if time.Now().After(deadline) {
				return oneResult{}, fmt.Errorf("loadgen: submit: server still busy at job deadline")
			}
			busy.Add(1)
			time.Sleep(poll)
			continue
		case http.StatusTooManyRequests:
			if time.Now().After(deadline) {
				return oneResult{}, fmt.Errorf("loadgen: submit: tenant still over quota at job deadline")
			}
			quota.Add(1)
			time.Sleep(retryAfterDelay(resp.Header.Get("Retry-After"), poll, deadline))
			continue
		case http.StatusAccepted, http.StatusOK:
			// 202 queued a job; 200 answered it from the verdict store.
		default:
			return oneResult{}, fmt.Errorf("loadgen: submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		if err := json.Unmarshal(data, &sub); err != nil {
			return oneResult{}, fmt.Errorf("loadgen: submit response: %v", err)
		}
		break
	}
	out := oneResult{cached: sub.Cached, verdictHit: sub.CachedVerdict}
	cancelSent := false
	for {
		resp, err := client.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			return out, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return out, fmt.Errorf("loadgen: poll: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			// A 404 here means the job was history-evicted (or the server
			// is not spm); polling further would spin forever.
			return out, fmt.Errorf("loadgen: poll %s: %s: %s", sub.ID, resp.Status, strings.TrimSpace(string(data)))
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return out, fmt.Errorf("loadgen: poll: %v", err)
		}
		switch st.State {
		case StateDone:
			// Includes jobs whose deadline DELETE lost the race with
			// completion: the verdict landed, so it counts as a success,
			// keeping the client's tallies consistent with the server's.
			out.succeeded = true
			out.queueWait, out.hasWait = fetchQueueWait(client, base, sub.ID)
			return out, nil
		case StateFailed:
			return out, nil
		case StateCancelled:
			out.cancelled = true
			return out, nil
		}
		if time.Now().After(deadline) {
			if cancelSent {
				return out, fmt.Errorf("loadgen: job %s not terminal %v after cancel (state %q)",
					sub.ID, cancelGrace, st.State)
			}
			// Deadline: cancel the server-side job so its pool slot frees,
			// instead of abandoning the wait and leaving it to grind. The
			// cancel is asynchronous (and may race completion), so keep
			// polling and classify by the terminal state the job actually
			// reaches.
			if err := cancelJob(client, base, sub.ID); err != nil {
				return out, err
			}
			cancelSent = true
			deadline = time.Now().Add(cancelGrace)
		}
		time.Sleep(poll)
	}
}

// cancelGrace bounds how long runOne waits for a deadline-cancelled job to
// reach a terminal state. The server promises cancellation within one sweep
// chunk; a job still not terminal after this long is a real fault.
const cancelGrace = 30 * time.Second

// retryAfterDelay turns a Retry-After header into a sleep, clamped so a
// large hint never sleeps past the job deadline; fallback is the poll
// interval.
func retryAfterDelay(header string, fallback time.Duration, deadline time.Time) time.Duration {
	d := fallback
	if secs, err := strconv.Atoi(strings.TrimSpace(header)); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if rem := time.Until(deadline); d > rem {
		d = rem
	}
	if d < 0 {
		d = 0
	}
	return d
}

// percentile returns the p-th percentile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
