package service

import (
	"testing"
)

var benchReq = CheckRequest{
	Program: testProg,
	Policy:  "{2}",
	Domain:  []int64{0, 1, 2, 3, 4, 5, 6, 7},
}

// BenchmarkServiceSubmitWarm measures the end-to-end job path with a warm
// compile cache: submit, dispatch JSQ, sweep, verdict.
func BenchmarkServiceSubmitWarm(b *testing.B) {
	s := New(Config{Pools: 2, SweepWorkers: 1})
	defer s.Close()
	if j, err := s.Submit(benchReq); err != nil {
		b.Fatal(err)
	} else {
		<-j.Done()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := s.Submit(benchReq)
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
	}
}

// BenchmarkServiceCompileColdVsWarm separates the compile-cache ablation:
// cold pays parse+instrument+Compile on every lookup, warm only the hash.
func BenchmarkServiceCompileColdVsWarm(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := NewCompileCache(4)
			if _, _, err := c.GetOrCompile(benchReq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := NewCompileCache(4)
		if _, _, err := c.GetOrCompile(benchReq); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, hit, err := c.GetOrCompile(benchReq); err != nil || !hit {
				b.Fatalf("hit=%v err=%v", hit, err)
			}
		}
	})
}

// BenchmarkServiceSchedulerSubmit isolates the JSQ dispatch path: scan,
// enqueue, stat bookkeeping, dequeue by an empty worker.
func BenchmarkServiceSchedulerSubmit(b *testing.B) {
	s := NewScheduler(4, 1024, func(int, *Job) {})
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			if _, err := s.Submit(&Job{}); err == nil {
				break
			}
			// Queue momentarily full; the no-op workers drain fast.
		}
	}
}
