package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Close() })
	return svc, srv
}

func doJSON(t *testing.T, srv *httptest.Server, method, path, body string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp
}

func marshalReq(t *testing.T, req CheckRequest) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// pollDone polls GET /v1/jobs/{id} until the job is terminal.
func pollDone(t *testing.T, srv *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st JobStatus
		resp := doJSON(t, srv, http.MethodGet, "/v1/jobs/"+id, "", &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, resp.StatusCode)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHTTPSubmitErrors(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1, MaxTuples: 1000})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantErrSub string
	}{
		{
			name:   "malformed program is 400",
			method: http.MethodPost, path: "/v1/check",
			body:       marshalReq(t, CheckRequest{Program: "program broken\ninputs x1\n    y := \n"}),
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErrSub: "program",
		},
		{
			name:   "invalid JSON is 400",
			method: http.MethodPost, path: "/v1/check",
			body:       "{not json",
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErrSub: "decoding",
		},
		{
			name:   "bad policy is 400",
			method: http.MethodPost, path: "/v1/check",
			body:       marshalReq(t, CheckRequest{Program: testProg, Policy: "{nope}"}),
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErrSub: "policy",
		},
		{
			name:   "bad variant is 400",
			method: http.MethodPost, path: "/v1/check",
			body:       marshalReq(t, CheckRequest{Program: testProg, Variant: "warp"}),
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErrSub: "variant",
		},
		{
			name:   "oversized domain is 400",
			method: http.MethodPost, path: "/v1/check",
			body: marshalReq(t, CheckRequest{Program: testProg,
				Domain: []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}}),
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErrSub: "tuples",
		},
		{
			name:   "oversized body is 413",
			method: http.MethodPost, path: "/v2/check",
			body:       `{"program": "` + strings.Repeat("x", maxBodyBytes) + `"}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			wantCode:   CodeTooLarge,
			wantErrSub: "body",
		},
		{
			name:   "unknown job is 404",
			method: http.MethodGet, path: "/v1/jobs/job-424242",
			wantStatus: http.StatusNotFound,
			wantCode:   CodeNotFound,
			wantErrSub: "unknown job",
		},
		{
			name:   "unknown v2 job is 404",
			method: http.MethodGet, path: "/v2/jobs/job-424242",
			wantStatus: http.StatusNotFound,
			wantCode:   CodeNotFound,
			wantErrSub: "unknown job",
		},
		{
			name:   "cancel of unknown job is 404",
			method: http.MethodDelete, path: "/v2/jobs/job-424242",
			wantStatus: http.StatusNotFound,
			wantCode:   CodeNotFound,
			wantErrSub: "unknown job",
		},
		{
			name:   "events of unknown job is 404",
			method: http.MethodGet, path: "/v2/jobs/job-424242/events",
			wantStatus: http.StatusNotFound,
			wantCode:   CodeNotFound,
			wantErrSub: "unknown job",
		},
		{
			name:   "empty batch is 400",
			method: http.MethodPost, path: "/v2/check",
			body:       "[]",
			wantStatus: http.StatusBadRequest,
			wantCode:   CodeBadRequest,
			wantErrSub: "empty batch",
		},
		{
			name:   "GET on check is method not allowed",
			method: http.MethodGet, path: "/v1/check",
			wantStatus: http.StatusMethodNotAllowed,
		},
		{
			name:   "POST on stats is method not allowed",
			method: http.MethodPost, path: "/v1/stats",
			wantStatus: http.StatusMethodNotAllowed,
		},
		{
			name:   "unknown path is 404",
			method: http.MethodGet, path: "/v2/other",
			wantStatus: http.StatusNotFound,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if tc.wantErrSub != "" {
				var e errorResponse
				if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
					t.Fatalf("decoding error body: %v", err)
				}
				if e.Error.Code != tc.wantCode {
					t.Errorf("error code = %q, want %q", e.Error.Code, tc.wantCode)
				}
				if !strings.Contains(e.Error.Message, tc.wantErrSub) {
					t.Errorf("error %q does not mention %q", e.Error.Message, tc.wantErrSub)
				}
			}
		})
	}
}

func TestHTTPSubmitPollStats(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 2})
	body := marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})

	var sub SubmitResponse
	resp := doJSON(t, srv, http.MethodPost, "/v1/check", body, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if sub.ID == "" || sub.Cached {
		t.Fatalf("submit response = %+v, want fresh job with ID", sub)
	}
	if sub.Total != 9 {
		t.Errorf("total = %d, want 9", sub.Total)
	}

	st := pollDone(t, srv, sub.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", st.State, st.Error)
	}
	if st.Result == nil || !st.Result.Sound || st.Result.Checked != 9 {
		t.Fatalf("result = %+v, want sound over 9 inputs", st.Result)
	}
	if st.Progress.Done != 9 || st.Progress.Total != 9 {
		t.Errorf("progress = %+v, want 9/9", st.Progress)
	}

	var stats Stats
	resp = doJSON(t, srv, http.MethodGet, "/v1/stats", "", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if len(stats.Pools) != 2 {
		t.Fatalf("stats has %d pools, want 2", len(stats.Pools))
	}
	if stats.Jobs.Done != 1 {
		t.Errorf("stats.Jobs = %+v, want 1 done", stats.Jobs)
	}
}

// TestHTTPCacheHitOnSecondSubmission is the acceptance case: an identical
// second submission must report cached: true, skip the compile phase, and
// produce an equal verdict.
func TestHTTPCacheHitOnSecondSubmission(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pools: 1})
	body := marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})

	var first SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v1/check", body, &first)
	if first.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	firstStatus := pollDone(t, srv, first.ID)

	var second SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v1/check", body, &second)
	if !second.Cached {
		t.Fatal("second identical submission did not report cached: true")
	}
	secondStatus := pollDone(t, srv, second.ID)

	if firstStatus.Result.Sound != secondStatus.Result.Sound ||
		firstStatus.Result.Checked != secondStatus.Result.Checked {
		t.Errorf("cached verdict differs: %+v vs %+v", firstStatus.Result, secondStatus.Result)
	}
	if !secondStatus.Cached {
		t.Error("job status lost the cached flag")
	}
	if misses := svc.cache.Stats().Misses; misses != 1 {
		t.Errorf("compile-cache misses = %d, want 1 (compile phase must be skipped)", misses)
	}
}

func TestHTTPMaximalVerdict(t *testing.T) {
	_, srv := newTestServer(t, Config{Pools: 1})
	body := marshalReq(t, CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}, Maximal: true})
	var sub SubmitResponse
	doJSON(t, srv, http.MethodPost, "/v1/check", body, &sub)
	st := pollDone(t, srv, sub.ID)
	if st.State != StateDone {
		t.Fatalf("state = %s, want done", st.State)
	}
	if st.Result.Maximal == nil {
		t.Fatal("maximal verdict missing from result")
	}
}
