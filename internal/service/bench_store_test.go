package service

import (
	"fmt"
	"runtime"
	"testing"

	"spm/internal/store"
)

// storeSweepProg mirrors the root-level 160k-tuple sweep fixture: a small
// loop on the outer input, a pass-through of the inner one.
const storeSweepProg = `
program sweepdemo
inputs x1 x2
    i := x1 & 127
Loop: if i == 0 goto Done else Body
Body: i := i - 1
      goto Loop
Done: y := x2
      halt
`

// storeSweepReq is a 160,000-tuple soundness check (400² grid), the same
// scale as the BENCH_prefix.json trajectory fixture.
func storeSweepReq() CheckRequest {
	dom := make([]int64, 400)
	for i := range dom {
		dom[i] = int64(i)
	}
	return CheckRequest{Program: storeSweepProg, Policy: "{2}", Raw: true, Domain: dom}
}

// BenchmarkStoreVerdict is the verdict-store trajectory: the same
// 160k-tuple submission cold (full sweep, checkpointing to the store),
// as a verdict-store hit (no sweep at all — the persisted verdict
// answers), and resumed from a mid-sweep checkpoint (half the domain
// re-swept). CI converts this to BENCH_store.json.
func BenchmarkStoreVerdict(b *testing.B) {
	req := storeSweepReq()

	b.Run("cold", func(b *testing.B) {
		b.ReportMetric(160000, "inputs/check")
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			s := New(Config{Pools: 1, Store: st})
			b.StartTimer()
			j, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			<-j.Done()
			b.StopTimer()
			s.Close()
			st.Close()
			b.StartTimer()
		}
	})

	b.Run("verdict-hit", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		s := New(Config{Pools: 1, Store: st})
		defer s.Close()
		j, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		<-j.Done()
		b.ReportMetric(160000, "inputs/check")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hit, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			<-hit.Done()
			if !hit.CachedVerdict {
				b.Fatal("repeat submission missed the verdict store")
			}
		}
	})

	b.Run("resume-half", func(b *testing.B) {
		b.ReportMetric(160000, "inputs/check")
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, id := seedResumableJob(b, req, 80000)
			st, err := store.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			s := New(Config{Pools: 1, Store: st})
			j, err := s.Job(id)
			if err != nil {
				b.Fatalf("restart did not resume %s: %v", id, err)
			}
			b.StartTimer()
			<-j.Done()
			b.StopTimer()
			if j.stateNow() != StateDone {
				b.Fatalf("resumed job ended %q", j.stateNow())
			}
			s.Close()
			st.Close()
			b.StartTimer()
		}
	})
}

// seedResumableJob writes a store directory containing one pending job
// checkpointed at cursor tuples: run the check with CheckpointEvery set to
// cursor, and crash (close the store under the service) as soon as the
// sweep has moved past the checkpoint — the save between segments is
// synchronous, so progress beyond cursor means the checkpoint is on disk.
// The crash races job completion (a finished job clears its pending
// record), so a seed that lost the race is discarded and retried.
func seedResumableJob(b *testing.B, req CheckRequest, cursor int64) (string, string) {
	b.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		dir := b.TempDir()
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		s := New(Config{Pools: 1, Store: st, CheckpointEvery: cursor})
		j, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		for j.Progress() <= cursor && !j.stateNow().Terminal() {
			runtime.Gosched()
		}
		st.Close()
		j.cancel()
		<-j.Done()
		s.Close()

		chk, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		pending := chk.PendingJobs()
		chk.Close()
		if len(pending) == 1 {
			return dir, j.ID
		}
	}
	b.Fatal("could not seed a resumable job in 20 attempts")
	return "", ""
}

// BenchmarkStoreAppend measures the raw persistence layer: one fsync'd
// verdict append, and one buffered cursor record.
func BenchmarkStoreAppend(b *testing.B) {
	key := func(i int) store.Key {
		return store.Key{Fingerprint: fmt.Sprintf("fp-%d", i), Policy: "{2}", Variant: "untimed", Count: 9}
	}
	b.Run("verdict-fsync", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		payload := []byte(`{"sound":true,"checked":9}`)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.PutVerdict(key(i), payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cursor-buffered", func(b *testing.B) {
		st, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if err := st.PutPending(store.Pending{ID: "job-1", Key: key(0), Payload: []byte("{}")}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Cursor("job-1", int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
