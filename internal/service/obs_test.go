package service

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spm/internal/obs"
)

// TestMetricsExposition pins the /v2/metrics surface end to end: after a
// few jobs have run, the endpoint must serve valid Prometheus text
// exposition (obs.ParseExposition validates the histogram invariants)
// covering the scheduler, cache, store, memo, batch, and sweep layers.
func TestMetricsExposition(t *testing.T) {
	s := storedService(t, t.TempDir(), Config{Pools: 2, SweepWorkers: 1})
	h := s.Handler()

	for _, req := range []CheckRequest{
		{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}},
		{Program: testProg, Policy: "{2}", Maximal: true, Domain: []int64{0, 1, 2}},
	} {
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if st := waitJob(t, j); st.State != StateDone {
			t.Fatalf("job ended %q: %+v", st.State, st)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v2/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /v2/metrics = %d: %s", rec.Code, rec.Body.String())
	}
	fams, err := obs.ParseExposition(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	counter := func(name string) float64 {
		t.Helper()
		f := fams[name]
		if f == nil {
			t.Fatalf("metric %q missing from exposition", name)
		}
		v, ok := f.Get(nil)
		if !ok {
			t.Fatalf("metric %q has no unlabeled sample", name)
		}
		return v
	}
	if got := counter("spm_jobs_done_total"); got < 2 {
		t.Errorf("spm_jobs_done_total = %v, want >= 2", got)
	}
	if counter("spm_compile_cache_hits_total")+counter("spm_compile_cache_misses_total") < 2 {
		t.Error("compile cache counters do not cover the submissions")
	}
	if counter("spm_stack_full_total") == 0 {
		t.Error("no snapshot-stack recordings surfaced — the execution tally is not wired")
	}
	if counter("spm_stack_full_total")+counter("spm_stack_replays_total")+
		counter("spm_stack_constants_total")+counter("spm_stack_rowhits_total") < 18 {
		t.Error("stack answers do not cover the swept tuples")
	}
	// 2-ary testProg over {0,1,2} is 9 tuples; maximal adds two passes.
	if got := counter("spm_sweep_tuples_total"); got < 18 {
		t.Errorf("spm_sweep_tuples_total = %v, want >= 18", got)
	}
	if counter("spm_store_lookups_total") == 0 {
		t.Error("store lookups not surfaced")
	}
	for _, name := range []string{"spm_batch_strides_total", "spm_memo_captures_total",
		"spm_stack_replay_depth", "spm_jobs_queued",
		"spm_jobs_running", "spm_store_verdicts"} {
		if fams[name] == nil {
			t.Errorf("metric %q missing from exposition", name)
		}
	}

	wait := fams["spm_job_queue_wait_seconds"]
	if wait == nil {
		t.Fatal("queue-wait histogram missing")
	}
	total := 0.0
	for _, sm := range wait.Samples {
		if sm.Name == "spm_job_queue_wait_seconds_count" {
			total += sm.Value
		}
	}
	if total < 2 {
		t.Errorf("queue-wait histogram observed %v jobs, want >= 2", total)
	}
	run := fams["spm_job_run_seconds"]
	if run == nil {
		t.Fatal("run-duration histogram missing")
	}
	if fams["spm_pool_queue_depth"] == nil {
		t.Error("per-pool gauges missing")
	}
}

// TestTraceTimeline pins the trace span contract: a finished job's
// timeline runs submit → compile → queue → dispatch → sweep → ... →
// merge → done with non-decreasing offsets, and the /v2/jobs/{id}/trace
// endpoint serves it.
func TestTraceTimeline(t *testing.T) {
	s := newTestService(t, Config{Pools: 1, SweepWorkers: 1})
	j, err := s.Submit(CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j); st.State != StateDone {
		t.Fatalf("job ended %q", st.State)
	}

	td, ok := s.JobTrace(j.ID)
	if !ok {
		t.Fatal("no trace recorded for finished job")
	}
	want := []string{"submit", "compile", "queue", "dispatch", "sweep", "sound", "merge", "done"}
	pos := 0
	var last time.Duration
	for _, e := range td.Events {
		if e.At < last {
			t.Errorf("event %q at %v precedes previous event at %v", e.Name, e.At, last)
		}
		last = e.At
		if pos < len(want) && e.Name == want[pos] {
			pos++
		}
	}
	if pos != len(want) {
		t.Errorf("timeline missing %q (events: %+v)", want[pos], td.Events)
	}

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v2/jobs/"+j.ID+"/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("GET trace = %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v2/jobs/nope/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("GET unknown trace = %d, want 404", rec.Code)
	}
}

// TestTraceCancelledJob asserts a cancelled running job's timeline ends
// with the cancel request followed by the cancelled terminal event, in
// order.
func TestTraceCancelledJob(t *testing.T) {
	s := newTestService(t, Config{Pools: 1, SweepWorkers: 1})
	j, err := s.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 10*time.Second)
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitJob(t, j); st.State != StateCancelled {
		t.Fatalf("job ended %q, want cancelled", st.State)
	}
	td, ok := s.JobTrace(j.ID)
	if !ok {
		t.Fatal("no trace for cancelled job")
	}
	cancelAt, cancelledAt := time.Duration(-1), time.Duration(-1)
	for _, e := range td.Events {
		switch e.Name {
		case "cancel":
			cancelAt = e.At
		case "cancelled":
			cancelledAt = e.At
		case "done", "merge":
			t.Errorf("cancelled job recorded %q", e.Name)
		}
	}
	if cancelAt < 0 || cancelledAt < 0 {
		t.Fatalf("cancel events missing from timeline: %+v", td.Events)
	}
	if cancelledAt < cancelAt {
		t.Errorf("terminal event at %v precedes cancel request at %v", cancelledAt, cancelAt)
	}
}

// TestStatsUnderChurn hammers Stats, metrics scrapes, submits, and
// cancels concurrently (the race detector is the real assertion), then
// checks the lifecycle tallies balance once the dust settles.
func TestStatsUnderChurn(t *testing.T) {
	s := newTestService(t, Config{Pools: 2, SweepWorkers: 1, QueueCap: 8})

	const submitters = 4
	const perSubmitter = 6
	ids := make(chan string, submitters*perSubmitter)
	stop := make(chan struct{})

	var subWG sync.WaitGroup
	for g := 0; g < submitters; g++ {
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for i := 0; i < perSubmitter; i++ {
				j, err := s.Submit(CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})
				if err != nil {
					continue // busy is fine under churn
				}
				ids <- j.ID
			}
		}()
	}

	var auxWG sync.WaitGroup
	auxWG.Add(1)
	go func() { // canceller: races cancels against the pools
		defer auxWG.Done()
		for id := range ids {
			s.Cancel(id) //nolint:errcheck // terminal jobs are expected
		}
	}()
	for g := 0; g < 2; g++ {
		auxWG.Add(1)
		go func() { // readers: Stats and metrics scrapes throughout
			defer auxWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Stats()
				rec := httptest.NewRecorder()
				s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v2/metrics", nil))
			}
		}()
	}

	subWG.Wait()
	close(ids) // canceller drains the backlog and exits

	// Drain: every submitted job reaches a terminal state.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.Jobs.Queued == 0 && st.Jobs.Running == 0 &&
			st.Jobs.Done+st.Jobs.Failed+st.Jobs.Cancelled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service did not drain: %+v", s.Stats().Jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	auxWG.Wait()

	st := s.Stats()
	if st.Jobs.Queued != 0 || st.Jobs.Running != 0 {
		t.Errorf("non-zero occupancy after drain: %+v", st.Jobs)
	}
	if st.Jobs.Failed != 0 {
		t.Errorf("%d jobs failed under churn", st.Jobs.Failed)
	}
}
