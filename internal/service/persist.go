package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"spm/internal/check"
	"spm/internal/core"
	"spm/internal/store"
)

// jobCheckpoint is the service's serialized resume state, stored as the
// opaque checkpoint bytes of a store.Pending record. A job is at most two
// checkpointed sweeps — soundness, then (if requested) the maximality
// evidence pass — so the phase tag plus the engine checkpoint pins
// exactly where the crash hit.
type jobCheckpoint struct {
	// Phase is the sweep the checkpoint belongs to: "sound" or "max".
	Phase string `json:"phase"`
	// Cursor and Partial are the engine checkpoint of the current phase
	// (see check.Checkpoint).
	Cursor  int64          `json:"cursor"`
	Partial *check.Verdict `json:"partial,omitempty"`
	// Sound carries the finished soundness verdict once Phase is "max",
	// so resuming the maximality pass never re-sweeps soundness.
	Sound *check.Verdict `json:"sound,omitempty"`
}

// storeKey content-addresses the verdict a request decides: canonical
// program fingerprint, normalized policy and variant, the domain value
// list, and the shard. Raw, timed, and maximal all change the verdict, so
// they fold into the variant tag.
func storeKey(entry *compiled, req CheckRequest) store.Key {
	return store.Key{
		Fingerprint: entry.fingerprint,
		Policy:      entry.polName,
		Variant:     variantTag(entry, req),
		Domain:      domainString(req.Domain),
		Offset:      req.Offset,
		Count:       req.Count,
	}
}

func variantTag(entry *compiled, req CheckRequest) string {
	tag := entry.variantName
	if req.Raw {
		tag += "+raw"
	}
	if req.Timed {
		tag += "+timed"
	}
	if req.Maximal {
		tag += "+max"
	}
	return tag
}

func domainString(values []int64) string {
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = strconv.FormatInt(v, 10)
	}
	return strings.Join(parts, ",")
}

// StoreStats is the persistence section of Stats, present when the
// service runs with a verdict store.
type StoreStats struct {
	// Verdicts and Pending are current index occupancy.
	Verdicts int `json:"verdicts"`
	Pending  int `json:"pending"`
	// VerdictHits counts submissions answered straight from the store
	// without dispatching a sweep.
	VerdictHits int64 `json:"verdict_hits"`
	// Lookups counts store probes (hits + misses).
	Lookups int64 `json:"lookups"`
	// ResumedJobs counts jobs re-enqueued from a pending checkpoint at
	// startup.
	ResumedJobs int64 `json:"resumed_jobs"`
	// BytesAppended counts log bytes persisted since the store opened.
	BytesAppended int64 `json:"bytes_appended"`
	// Compacted reports whether opening the store rewrote its log.
	Compacted bool `json:"compacted"`
}

func (s *Service) storeStats() *StoreStats {
	if s.store == nil {
		return nil
	}
	st := s.store.Stats()
	return &StoreStats{
		Verdicts:      st.Verdicts,
		Pending:       st.Pending,
		VerdictHits:   s.nVerdictHits.Load(),
		Lookups:       st.Hits + st.Misses,
		ResumedJobs:   s.nResumed.Load(),
		BytesAppended: st.BytesAppended,
		Compacted:     st.Compacted,
	}
}

// resumePending re-admits every job the store recorded as unfinished:
// same ID, same request, sweeping only past the last checkpoint. Jobs
// whose payload no longer admits (or that cannot be decoded) are cleared
// rather than wedged. Called from New before the service accepts traffic.
func (s *Service) resumePending() {
	jobs := s.store.PendingJobs()
	// New jobs must not collide with resumed IDs.
	var max uint64
	for _, p := range jobs {
		if n, ok := strings.CutPrefix(p.ID, "job-"); ok {
			if v, err := strconv.ParseUint(n, 10, 64); err == nil && v > max {
				max = v
			}
		}
	}
	if max > s.seq.Load() {
		s.seq.Store(max)
	}
	for _, p := range jobs {
		var req CheckRequest
		if err := json.Unmarshal(p.Payload, &req); err != nil {
			s.store.ClearPending(p.ID)
			continue
		}
		var resume *jobCheckpoint
		if len(p.Checkpoint) > 0 {
			var ck jobCheckpoint
			if err := json.Unmarshal(p.Checkpoint, &ck); err == nil {
				resume = &ck
			}
		}
		if _, err := s.submit(req, p.ID, resume, ""); err != nil {
			s.store.ClearPending(p.ID)
			continue
		}
		s.nResumed.Add(1)
	}
}

// cachedJob materializes a store verdict hit as an already-done job: the
// client sees the normal job lifecycle, fast-forwarded to its terminal
// state, with CachedVerdict set.
func (s *Service) cachedJob(req CheckRequest, entry *compiled, total int64, raw json.RawMessage) (*Job, error) {
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, fmt.Errorf("service: stored verdict corrupt: %w", err)
	}
	// The stored timings describe the run that computed the verdict, not
	// this lookup; report the lookup as (effectively) instant.
	res.ElapsedSeconds = 0
	res.InputsPerSec = 0
	j := newJob(fmt.Sprintf("job-%d", s.seq.Add(1)), req, entry, true, total)
	j.CachedVerdict = true
	j.progress.Store(total)
	j.trace = s.metrics.tracer.Begin(j.ID)
	j.trace.Event("submit", fmt.Sprintf("total=%d", total))
	j.trace.Event("store-hit", "verdict served from store; no sweep")
	j.finish(&res, nil)

	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.evictLocked()
	s.mu.Unlock()
	s.nDone.Add(1)
	s.nVerdictHits.Add(1)
	return j, nil
}

// checkStore is the persistent variant of check: the same verdicts, but
// swept through check.RunCheckpointed with the job's fold persisted to
// the store after every segment, plus a fine chunk-level cursor between
// checkpoints. A job interrupted by a crash resumes from the last
// checkpoint that reached disk; the resumed verdict matches the
// uninterrupted one (byte-identically at one sweep worker — see
// check.RunCheckpointed).
func (s *Service) checkStore(ctx context.Context, j *Job) (*Result, error) {
	entry := j.entry
	pol := core.NewAllowSet(entry.prog.Arity(), entry.allowed)
	dom := core.Grid(entry.prog.Arity(), j.Req.Domain...)
	obs := core.ObserveValue
	if j.Req.Timed {
		obs = core.ObserveValueAndTime
	}
	span := j.span
	every := s.cfg.CheckpointEvery

	// The fine cursor is job-relative: the maximality pass continues
	// where the soundness pass ended, so the persisted cursor (and the
	// progress bar it feeds after a resume) is monotone across phases.
	phaseBase := int64(0)
	commit := check.WithCommit(func(done int64) {
		s.store.Cursor(j.ID, phaseBase+done)
	})
	opts := []check.Option{
		check.WithWorkers(s.cfg.SweepWorkers),
		check.WithBatch(s.cfg.SweepBatch),
		check.WithProgress(&j.progress),
		check.WithThrottle(s.cfg.Throttle),
		check.WithObserver(&jobObserver{m: s.metrics, tr: j.trace}),
		check.WithExecTally(s.metrics.exec),
		commit,
	}
	shard := check.Shard{Offset: j.Req.Offset, Count: j.Req.Count}

	var soundV check.Verdict
	resume := j.resume
	start := time.Now()
	if resume != nil && resume.Phase == "max" && resume.Sound != nil {
		// The soundness pass finished before the crash; don't redo it.
		soundV = *resume.Sound
		j.progress.Store(span)
	} else {
		var from *check.Checkpoint
		if resume != nil && resume.Phase == "sound" {
			from = &check.Checkpoint{Cursor: resume.Cursor, Partial: resume.Partial}
			j.progress.Store(resume.Cursor)
		}
		j.trace.Event("sweep", "phase=sound")
		v, err := check.RunCheckpointed(ctx, check.Spec{
			Kind:        check.Soundness,
			Mechanism:   entry.mech,
			Policy:      pol,
			Domain:      dom,
			Observation: obs,
			Shard:       shard,
		}, from, every, func(ck check.Checkpoint) error {
			return s.saveCheckpoint(j, jobCheckpoint{Phase: "sound", Cursor: ck.Cursor, Partial: ck.Partial}, ck.Cursor)
		}, opts...)
		if err != nil {
			return nil, err
		}
		j.trace.Span("sound", fmt.Sprintf("checked=%d", v.Checked), time.Since(start))
		soundV = v
	}

	res := &Result{
		Mechanism:   soundV.Mechanism,
		Policy:      soundV.Policy,
		Observation: soundV.Observation,
		Sound:       soundV.Sound,
		Checked:     soundV.Checked,
		WitnessA:    soundV.WitnessA,
		WitnessB:    soundV.WitnessB,
		ObsA:        soundV.ObsA,
		ObsB:        soundV.ObsB,
		Offset:      j.Req.Offset,
		Count:       j.Req.Count,
		Views:       soundV.Views,
	}
	if j.Req.Maximal {
		phaseBase = span
		var from *check.Checkpoint
		if resume != nil && resume.Phase == "max" {
			from = &check.Checkpoint{Cursor: resume.Cursor, Partial: resume.Partial}
			j.progress.Store(span + resume.Cursor)
		}
		mstart := time.Now()
		j.trace.Event("sweep", "phase=max")
		mv, err := check.RunCheckpointed(ctx, check.Spec{
			Kind:        check.Maximality,
			Mechanism:   entry.mech,
			Program:     entry.bare,
			Policy:      pol,
			Domain:      dom,
			Observation: obs,
			Shard:       shard,
		}, from, every, func(ck check.Checkpoint) error {
			return s.saveCheckpoint(j, jobCheckpoint{Phase: "max", Cursor: ck.Cursor, Partial: ck.Partial, Sound: &soundV}, span+ck.Cursor)
		}, opts...)
		if err != nil {
			return nil, err
		}
		j.trace.Span("max", fmt.Sprintf("checked=%d", mv.Checked), time.Since(mstart))
		maximal := mv.Maximal
		res.Program = mv.Program
		res.Maximal = &maximal
		res.MaximalWitness = mv.Witness
		res.MaximalReason = mv.Reason
		res.Classes = mv.Classes
	}
	j.trace.Event("merge", "assembling result")
	elapsed := time.Since(start)
	res.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		res.InputsPerSec = float64(j.Progress()) / elapsed.Seconds()
	}
	return res, nil
}

func (s *Service) saveCheckpoint(j *Job, ck jobCheckpoint, cursor int64) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	j.trace.Event("segment", fmt.Sprintf("phase=%s cursor=%d", ck.Phase, cursor))
	return s.store.Checkpoint(j.ID, data, cursor)
}

// settleStore finishes a job's store bookkeeping after its run: a
// successful verdict is durably recorded under the job's key, and the
// pending record is cleared in every terminal case (done, failed,
// cancelled) — only a crash leaves a job pending.
func (s *Service) settleStore(j *Job, res *Result, err error) {
	if err == nil && res != nil {
		if data, merr := json.Marshal(res); merr == nil {
			s.store.PutVerdict(j.storeKey, data)
		}
	}
	s.store.ClearPending(j.ID)
}
