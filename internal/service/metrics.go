package service

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"spm/internal/core"
	"spm/internal/obs"
)

// serviceMetrics owns the service's observability state: the metrics
// registry behind GET /v2/metrics, the per-job trace recorder behind
// GET /v2/jobs/{id}/trace, and the execution tally every job's sweep
// reports into. Instrument handles are resolved once here; the per-job
// hot paths (jobObserver, the execution tiers) only touch atomics.
type serviceMetrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	exec   *core.ExecTally

	// Dispatch latency and sweep duration, by pool and by tenant.
	queueWait  *obs.HistogramVec
	runDur     *obs.HistogramVec
	tenantWait *obs.HistogramVec
	tenantRun  *obs.HistogramVec

	// Sweep-engine chunk counters, fed by jobObserver.
	sweepChunks  *obs.Counter
	sweepTuples  *obs.Counter
	chunkSeconds *obs.Histogram

	// Sampled at scrape time from Scheduler.Stats / tenantGate.stats.
	poolDepth      *obs.GaugeVec
	poolPeak       *obs.GaugeVec
	poolDispatched *obs.GaugeVec
	poolCompleted  *obs.GaugeVec
	tenantQueued   *obs.GaugeVec
	tenantAdmitted *obs.GaugeVec
	tenantRejected *obs.GaugeVec
	tenantTuples   *obs.GaugeVec
}

// newServiceMetrics builds the registry and binds every counter source
// the service already keeps: lifecycle atomics, compile-cache and
// verdict-store counters, the execution tally, and scrape-time samples
// of the scheduler and tenant gate. Called from New after the scheduler
// and tenant gate exist; the gather hook and the *Func families read s
// only at scrape time.
func newServiceMetrics(s *Service) *serviceMetrics {
	reg := obs.New()
	m := &serviceMetrics{
		reg:    reg,
		tracer: obs.NewTracer(0, 0),
		exec:   &core.ExecTally{},
	}

	m.queueWait = reg.HistogramVec("spm_job_queue_wait_seconds",
		"Time from submission to dispatch onto a pool worker.", nil, "pool")
	m.runDur = reg.HistogramVec("spm_job_run_seconds",
		"Wall-clock sweep time of jobs that ran, by pool.", nil, "pool")
	m.tenantWait = reg.HistogramVec("spm_tenant_queue_wait_seconds",
		"Time from submission to dispatch, by tenant.", nil, "tenant")
	m.tenantRun = reg.HistogramVec("spm_tenant_run_seconds",
		"Wall-clock sweep time of jobs that ran, by tenant.", nil, "tenant")

	m.sweepChunks = reg.Counter("spm_sweep_chunks_total",
		"Sweep chunks completed across all jobs.")
	m.sweepTuples = reg.Counter("spm_sweep_tuples_total",
		"Tuples enumerated across all jobs.")
	m.chunkSeconds = reg.Histogram("spm_sweep_chunk_seconds",
		"Duration of individual sweep chunks.", nil)

	reg.GaugeFunc("spm_jobs_queued",
		"Jobs currently waiting in pool queues.",
		func() float64 { return float64(s.nQueued.Load()) })
	reg.GaugeFunc("spm_jobs_running",
		"Jobs currently sweeping.",
		func() float64 { return float64(s.nRunning.Load()) })
	reg.CounterFunc("spm_jobs_done_total",
		"Jobs finished successfully.",
		func() float64 { return float64(s.nDone.Load()) })
	reg.CounterFunc("spm_jobs_failed_total",
		"Jobs that ended in an error.",
		func() float64 { return float64(s.nFailed.Load()) })
	reg.CounterFunc("spm_jobs_cancelled_total",
		"Jobs cancelled before or during their sweep.",
		func() float64 { return float64(s.nCancelled.Load()) })

	reg.CounterFunc("spm_compile_cache_hits_total",
		"Submissions that skipped parse+instrument+Compile.",
		func() float64 { return float64(s.cache.hits.Load()) })
	reg.CounterFunc("spm_compile_cache_misses_total",
		"Submissions that paid a full compile.",
		func() float64 { return float64(s.cache.misses.Load()) })
	reg.GaugeFunc("spm_compile_cache_entries",
		"Compiled entries currently cached.",
		func() float64 { return float64(s.cache.Stats().Entries) })

	reg.CounterFunc("spm_memo_captures_total",
		"Prefix-memo snapshot captures (fresh odometer rows).",
		func() float64 { return float64(m.exec.Counts().MemoCaptures) })
	reg.CounterFunc("spm_memo_replays_total",
		"Executions resumed from a prefix snapshot.",
		func() float64 { return float64(m.exec.Counts().MemoReplays) })
	reg.CounterFunc("spm_memo_invalidations_total",
		"Snapshot replays abandoned for a full re-run.",
		func() float64 { return float64(m.exec.Counts().MemoInvalid) })
	reg.CounterFunc("spm_batch_strides_total",
		"Batch-tier strides executed.",
		func() float64 { return float64(m.exec.Counts().BatchStrides) })
	reg.CounterFunc("spm_batch_lanes_total",
		"Tuples executed on batch lanes.",
		func() float64 { return float64(m.exec.Counts().BatchLanes) })
	reg.CounterFunc("spm_batch_diverged_total",
		"Batch lanes that diverged to the scalar fallback.",
		func() float64 { return float64(m.exec.Counts().BatchDiverged) })
	reg.CounterFunc("spm_stack_full_total",
		"Snapshot-stack recordings from instruction zero.",
		func() float64 { return float64(m.exec.Counts().StackFull) })
	reg.CounterFunc("spm_stack_replays_total",
		"Executions resumed from a per-axis stack capture.",
		func() float64 { return float64(m.exec.Counts().StackReplays) })
	reg.CounterFunc("spm_stack_constants_total",
		"Tuples answered by a constant suffix entry without executing.",
		func() float64 { return float64(m.exec.Counts().StackConstants) })
	reg.CounterFunc("spm_stack_rowhits_total",
		"Tuples answered from the content-addressed row cache.",
		func() float64 { return float64(m.exec.Counts().StackRowHits) })
	stackDepth := reg.GaugeVec("spm_stack_replay_depth",
		"Stack replays by resume depth (deeper = shorter tail).", "depth")
	reg.OnGather(func() {
		c := m.exec.Counts()
		for d, n := range c.StackReplayDepth {
			stackDepth.With(strconv.Itoa(d)).Set(float64(n))
		}
	})

	if s.store != nil {
		reg.CounterFunc("spm_store_verdict_hits_total",
			"Submissions answered straight from the verdict store.",
			func() float64 { return float64(s.nVerdictHits.Load()) })
		reg.CounterFunc("spm_store_resumed_jobs_total",
			"Jobs re-enqueued from a crash checkpoint at startup.",
			func() float64 { return float64(s.nResumed.Load()) })
		reg.CounterFunc("spm_store_lookups_total",
			"Verdict-store probes (hits plus misses).",
			func() float64 { st := s.store.Stats(); return float64(st.Hits + st.Misses) })
		reg.CounterFunc("spm_store_bytes_appended_total",
			"Log bytes persisted since the store opened.",
			func() float64 { return float64(s.store.Stats().BytesAppended) })
		reg.GaugeFunc("spm_store_verdicts",
			"Verdicts currently indexed by the store.",
			func() float64 { return float64(s.store.Stats().Verdicts) })
		reg.GaugeFunc("spm_store_pending",
			"In-flight jobs the store would resume after a crash.",
			func() float64 { return float64(s.store.Stats().Pending) })
	}

	m.poolDepth = reg.GaugeVec("spm_pool_queue_depth",
		"Jobs waiting in each pool queue.", "pool")
	m.poolPeak = reg.GaugeVec("spm_pool_queue_peak",
		"High-water queue depth of each pool.", "pool")
	m.poolDispatched = reg.GaugeVec("spm_pool_dispatched_jobs",
		"Jobs dispatched to each pool since start.", "pool")
	m.poolCompleted = reg.GaugeVec("spm_pool_completed_jobs",
		"Jobs each pool finished since start.", "pool")
	m.tenantQueued = reg.GaugeVec("spm_tenant_queued_jobs",
		"Jobs in each tenant's DRR backlog.", "tenant")
	m.tenantAdmitted = reg.GaugeVec("spm_tenant_admitted_jobs",
		"Submissions admitted past each tenant's token bucket.", "tenant")
	m.tenantRejected = reg.GaugeVec("spm_tenant_rejected_jobs",
		"Submissions stopped by each tenant's token bucket.", "tenant")
	m.tenantTuples = reg.GaugeVec("spm_tenant_admitted_tuples",
		"Tuple volume admitted for each tenant.", "tenant")
	reg.OnGather(func() {
		for i, p := range s.sched.Stats() {
			pool := strconv.Itoa(i)
			m.poolDepth.With(pool).Set(float64(p.Depth))
			m.poolPeak.With(pool).Set(float64(p.Peak))
			m.poolDispatched.With(pool).Set(float64(p.Dispatched))
			m.poolCompleted.With(pool).Set(float64(p.Completed))
		}
		for _, t := range s.tenants.stats() {
			m.tenantQueued.With(t.Tenant).Set(float64(t.Queued))
			m.tenantAdmitted.With(t.Tenant).Set(float64(t.Admitted))
			m.tenantRejected.With(t.Tenant).Set(float64(t.Rejected))
			m.tenantTuples.With(t.Tenant).Set(float64(t.TuplesAdmitted))
		}
	})
	return m
}

// observeDispatch records a job leaving its queue for a pool worker:
// the queue-wait histograms and the trace's dispatch span.
func (m *serviceMetrics) observeDispatch(j *Job, pool int, wait time.Duration) {
	p := strconv.Itoa(pool)
	m.queueWait.With(p).Observe(wait.Seconds())
	m.tenantWait.With(j.tenant).Observe(wait.Seconds())
	j.trace.Span("dispatch", "pool="+p, wait)
}

// observeRun records a finished sweep's wall-clock duration.
func (m *serviceMetrics) observeRun(j *Job, pool int, d time.Duration) {
	p := strconv.Itoa(pool)
	m.runDur.With(p).Observe(d.Seconds())
	m.tenantRun.With(j.tenant).Observe(d.Seconds())
}

// jobObserver is the per-job sweep.Observer: every completed chunk
// bumps the service-wide chunk counters and lands on the job's trace
// timeline. One is built per job run, so the trace pointer needs no
// lookup on the chunk path.
type jobObserver struct {
	m  *serviceMetrics
	tr *obs.Trace
}

func (o *jobObserver) ChunkDone(worker, tuples int, d time.Duration) {
	o.m.sweepChunks.Inc()
	o.m.sweepTuples.Add(int64(tuples))
	o.m.chunkSeconds.Observe(d.Seconds())
	o.tr.Span("chunk", fmt.Sprintf("worker=%d tuples=%d", worker, tuples), d)
}

// Metrics returns the service's metrics registry — the handler behind
// GET /v2/metrics, also mountable on additional muxes (the cluster
// admin surface exposes it as /metrics).
func (s *Service) Metrics() *obs.Registry { return s.metrics.reg }

// JobTrace returns the recorded timeline of a job, if the tracer still
// holds it (traces outlive the job history bound but are themselves
// bounded; see obs.NewTracer).
func (s *Service) JobTrace(id string) (obs.TraceData, bool) {
	t := s.metrics.tracer.Lookup(id)
	if t == nil {
		return obs.TraceData{}, false
	}
	return t.Snapshot(), true
}

// handleTrace is GET /v2/jobs/{id}/trace: the job's event timeline as
// JSON, 404 once the trace has been evicted (or the ID never existed).
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	td, ok := s.JobTrace(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("service: no trace for job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, td)
}
