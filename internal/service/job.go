package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's position in the queued → running → done/failed
// lifecycle.
type State string

// Job states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Result is the verdict of a finished check job.
type Result struct {
	Sound   bool `json:"sound"`
	Checked int  `json:"checked"`
	// On an unsound verdict, two inputs sharing a policy view with
	// different observations.
	WitnessA []int64 `json:"witness_a,omitempty"`
	WitnessB []int64 `json:"witness_b,omitempty"`
	ObsA     string  `json:"obs_a,omitempty"`
	ObsB     string  `json:"obs_b,omitempty"`

	// Maximality verdict, present only when the job requested it.
	Maximal        *bool   `json:"maximal,omitempty"`
	MaximalWitness []int64 `json:"maximal_witness,omitempty"`
	MaximalReason  string  `json:"maximal_reason,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
	InputsPerSec   float64 `json:"inputs_per_sec"`
}

// Job is one submitted check: request, placement, progress, and verdict.
// The progress counter is the sweep engine's chunk cursor (see
// sweep.Config.Progress); Total counts every tuple the job will visit
// across all enumeration passes, so done/total is a true fraction.
type Job struct {
	ID       string
	Req      CheckRequest
	CacheHit bool
	Total    int64

	// entry is the compile-cache value resolved at submission, so the
	// worker never re-hashes or re-looks-up the program.
	entry *compiled

	progress atomic.Int64
	created  time.Time

	mu       sync.Mutex
	pool     int
	state    State
	started  time.Time
	finished time.Time
	result   *Result
	errMsg   string

	done chan struct{}
}

func newJob(id string, req CheckRequest, entry *compiled, cacheHit bool, total int64) *Job {
	return &Job{
		ID:       id,
		Req:      req,
		CacheHit: cacheHit,
		Total:    total,
		entry:    entry,
		created:  time.Now(),
		state:    StateQueued,
		done:     make(chan struct{}),
	}
}

// Pool returns the worker pool the job was dispatched to.
func (j *Job) Pool() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pool
}

func (j *Job) setPool(pool int) {
	j.mu.Lock()
	j.pool = pool
	j.mu.Unlock()
}

// Progress returns the number of tuples visited so far.
func (j *Job) Progress() int64 { return j.progress.Load() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) finish(res *Result, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
	} else {
		j.state = StateDone
		j.result = res
	}
	j.mu.Unlock()
	close(j.done)
}

// JobStatus is the wire form of GET /v1/jobs/{id}.
type JobStatus struct {
	ID             string       `json:"id"`
	State          State        `json:"state"`
	Cached         bool         `json:"cached"`
	Pool           int          `json:"pool"`
	Progress       ProgressInfo `json:"progress"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Result         *Result      `json:"result,omitempty"`
	Error          string       `json:"error,omitempty"`
}

// ProgressInfo is the done/total pair inside JobStatus.
type ProgressInfo struct {
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.ID,
		State:    j.state,
		Cached:   j.CacheHit,
		Pool:     j.pool,
		Progress: ProgressInfo{Done: j.progress.Load(), Total: j.Total},
		Result:   j.result,
		Error:    j.errMsg,
	}
	switch j.state {
	case StateQueued:
		st.ElapsedSeconds = time.Since(j.created).Seconds()
	case StateRunning:
		st.ElapsedSeconds = time.Since(j.started).Seconds()
	default:
		st.ElapsedSeconds = j.finished.Sub(j.started).Seconds()
	}
	return st
}

// stateNow reads the job's current lifecycle state.
func (j *Job) stateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
