package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"spm/internal/core"
	"spm/internal/obs"
	"spm/internal/store"
)

// State is a job's position in the queued → running → done/failed/cancelled
// lifecycle.
type State string

// Job states. Done, Failed, and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Result is the verdict of a finished check job. For sharded jobs
// (CheckRequest.Offset/Count) it is partial evidence rather than a final
// answer: Sound and Maximal report only what the shard could decide
// locally, and the Views/Classes tables carry what a coordinator needs to
// fold every shard of a partition into the exact whole-domain verdict with
// check.Merge.
type Result struct {
	// Names of the checked artifacts, as the verdict engine reports them —
	// what check.Merge validates across shards.
	Mechanism   string `json:"mechanism,omitempty"`
	Policy      string `json:"policy,omitempty"`
	Observation string `json:"observation,omitempty"`
	// Program is the maximality reference Q's name, set when the job
	// checked maximality.
	Program string `json:"program,omitempty"`

	Sound   bool `json:"sound"`
	Checked int  `json:"checked"`
	// On an unsound verdict, two inputs sharing a policy view with
	// different observations.
	WitnessA []int64 `json:"witness_a,omitempty"`
	WitnessB []int64 `json:"witness_b,omitempty"`
	ObsA     string  `json:"obs_a,omitempty"`
	ObsB     string  `json:"obs_b,omitempty"`

	// Maximality verdict, present only when the job requested it. On a
	// sharded job, true means "no locally-definitive deviation" — the
	// global answer is whatever check.Merge renders from every shard's
	// Classes.
	Maximal        *bool   `json:"maximal,omitempty"`
	MaximalWitness []int64 `json:"maximal_witness,omitempty"`
	MaximalReason  string  `json:"maximal_reason,omitempty"`

	// Shard echo and cross-shard evidence of a sharded job; zero/nil on
	// whole-domain jobs.
	Offset  int64                        `json:"offset,omitempty"`
	Count   int64                        `json:"count,omitempty"`
	Views   map[string]core.ViewObs      `json:"views,omitempty"`
	Classes map[string]core.ClassSummary `json:"classes,omitempty"`

	ElapsedSeconds float64 `json:"elapsed_seconds"`
	InputsPerSec   float64 `json:"inputs_per_sec"`
}

// Job is one submitted check: request, placement, progress, and verdict.
// The progress counter is the sweep engine's chunk cursor (see
// sweep.Config.Progress); Total counts every tuple the job will visit
// across all enumeration passes, so done/total is a true fraction. Every
// job carries its own context: cancelling it (Service.Cancel, the v2
// DELETE endpoint) stops a running sweep within one chunk and marks a
// still-queued job cancelled without ever occupying its pool.
type Job struct {
	ID       string
	Req      CheckRequest
	CacheHit bool
	Total    int64
	// CachedVerdict marks a job answered straight from the persistent
	// verdict store: it was born done, and no sweep ran.
	CachedVerdict bool

	// entry is the compile-cache value resolved at submission, so the
	// worker never re-hashes or re-looks-up the program.
	entry *compiled

	// Persistence state, set when the service runs with a verdict store:
	// the job's content address, its single-pass tuple span (the cursor
	// space of a checkpoint phase), and — for crash-resumed jobs — the
	// checkpoint to continue from.
	storeKey store.Key
	span     int64
	resume   *jobCheckpoint

	// tenant is the submitting tenant ("" when tenancy is off), for
	// admission accounting and DRR dispatch.
	tenant string

	// trace is the job's event timeline (GET /v2/jobs/{id}/trace).
	// Nil-safe throughout: jobs built outside a full service record
	// nothing.
	trace *obs.Trace

	// ctx is cancelled by Service.Cancel; the sweep engine observes it
	// between chunks.
	ctx    context.Context
	cancel context.CancelFunc

	progress atomic.Int64
	created  time.Time

	mu       sync.Mutex
	pool     int
	state    State
	started  time.Time
	finished time.Time
	result   *Result
	errMsg   string

	done chan struct{}
}

func newJob(id string, req CheckRequest, entry *compiled, cacheHit bool, total int64) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{
		ID:       id,
		Req:      req,
		CacheHit: cacheHit,
		Total:    total,
		entry:    entry,
		ctx:      ctx,
		cancel:   cancel,
		created:  time.Now(),
		state:    StateQueued,
		done:     make(chan struct{}),
	}
}

// Pool returns the worker pool the job was dispatched to.
func (j *Job) Pool() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pool
}

func (j *Job) setPool(pool int) {
	j.mu.Lock()
	j.pool = pool
	j.mu.Unlock()
}

// Progress returns the number of tuples visited so far.
func (j *Job) Progress() int64 { return j.progress.Load() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// tryStart moves a queued job to running. It returns false when the job is
// no longer queued — cancelled while waiting in its pool queue — in which
// case the worker must skip it.
func (j *Job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// cancelRequest asks the job to stop. A queued job transitions straight to
// cancelled (the pool will skip it); a running job has its context
// cancelled and reaches the cancelled state once the sweep notices, within
// one chunk. The return values are the state observed at the moment of the
// request and whether the request had any effect (false for jobs already
// terminal).
func (j *Job) cancelRequest() (State, bool) {
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.errMsg = context.Canceled.Error()
		j.finished = time.Now()
		j.mu.Unlock()
		j.cancel()
		j.trace.Event("cancelled", "while queued")
		close(j.done)
		return StateQueued, true
	case StateRunning:
		j.mu.Unlock()
		j.cancel()
		j.trace.Event("cancel", "requested; sweep stops within one chunk")
		return StateRunning, true
	default:
		st := j.state
		j.mu.Unlock()
		return st, false
	}
}

// finish records the terminal state of a job that ran: done on success,
// cancelled when the error is the job context's cancellation, failed
// otherwise.
func (j *Job) finish(res *Result, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	st, msg := j.state, j.errMsg
	j.mu.Unlock()
	j.trace.Event(string(st), msg)
	j.cancel()
	close(j.done)
}

// JobStatus is the wire form of GET /v1/jobs/{id} and /v2/jobs/{id}, and
// the payload of every /v2/jobs/{id}/events event.
type JobStatus struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Cached reports a compile-cache hit (the parse+instrument+Compile
	// phase was skipped); CachedVerdict reports a verdict-store hit (the
	// whole sweep was skipped and the job was born done).
	Cached         bool         `json:"cached"`
	CachedVerdict  bool         `json:"cached_verdict,omitempty"`
	Pool           int          `json:"pool"`
	Progress       ProgressInfo `json:"progress"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Result         *Result      `json:"result,omitempty"`
	Error          string       `json:"error,omitempty"`
}

// ProgressInfo is the done/total pair inside JobStatus.
type ProgressInfo struct {
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:            j.ID,
		State:         j.state,
		Cached:        j.CacheHit,
		CachedVerdict: j.CachedVerdict,
		Pool:          j.pool,
		Progress:      ProgressInfo{Done: j.progress.Load(), Total: j.Total},
		Result:        j.result,
		Error:         j.errMsg,
	}
	switch j.state {
	case StateQueued:
		st.ElapsedSeconds = time.Since(j.created).Seconds()
	case StateRunning:
		st.ElapsedSeconds = time.Since(j.started).Seconds()
	default:
		// Jobs cancelled before starting never ran; measure from
		// submission for them.
		from := j.started
		if from.IsZero() {
			from = j.created
		}
		st.ElapsedSeconds = j.finished.Sub(from).Seconds()
	}
	return st
}

// stateNow reads the job's current lifecycle state.
func (j *Job) stateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
