package service

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrBusy is returned by Submit when every pool queue is full. HTTP maps
// it to 503 so closed-loop clients back off and retry.
var ErrBusy = errors.New("service: all worker queues are full")

// Scheduler is a fixed fleet of worker pools, each a single goroutine
// draining its own bounded queue. Incoming jobs are dispatched
// join-the-shortest-queue: the submitter scans the instantaneous queue
// depths and enqueues on a minimum, with a rotating scan offset so ties do
// not all land on pool 0. JSQ keeps the pool depths tightly clustered
// under general arrivals — the stability and convergence-rate results of
// Abramov and Ma & Maguluri — which the service test asserts as a ≤ 2×
// max/mean skew bound.
type Scheduler struct {
	queues     []chan *Job
	dispatched []atomic.Int64
	completed  []atomic.Int64
	peak       []atomic.Int64
	offset     atomic.Uint64
	wg         sync.WaitGroup

	closeOnce sync.Once
}

// NewScheduler starts pools worker goroutines, each with a queue bounded
// at queueCap, running run for every dispatched job.
func NewScheduler(pools, queueCap int, run func(pool int, j *Job)) *Scheduler {
	if pools <= 0 {
		pools = 1
	}
	if queueCap <= 0 {
		queueCap = 1
	}
	s := &Scheduler{
		queues:     make([]chan *Job, pools),
		dispatched: make([]atomic.Int64, pools),
		completed:  make([]atomic.Int64, pools),
		peak:       make([]atomic.Int64, pools),
	}
	for i := range s.queues {
		s.queues[i] = make(chan *Job, queueCap)
		s.wg.Add(1)
		go func(pool int) {
			defer s.wg.Done()
			for j := range s.queues[pool] {
				run(pool, j)
				s.completed[pool].Add(1)
			}
		}(i)
	}
	return s
}

// Pools returns the fleet size.
func (s *Scheduler) Pools() int { return len(s.queues) }

// Submit dispatches j join-the-shortest-queue and returns the chosen pool.
// The depth metric is dispatched − completed — jobs queued plus the job in
// service — so an idle pool always beats a pool grinding a long job even
// when both queues are empty. If the chosen queue fills between the scan
// and the send (another submitter won the slot), the scan retries once per
// pool before giving up with ErrBusy.
func (s *Scheduler) Submit(j *Job) (int, error) {
	for attempt := 0; attempt <= len(s.queues); attempt++ {
		best, bestDepth := -1, int64(^uint64(0)>>1)
		off := int(s.offset.Add(1) % uint64(len(s.queues)))
		for i := range s.queues {
			k := (i + off) % len(s.queues)
			if d := s.dispatched[k].Load() - s.completed[k].Load(); d < bestDepth {
				best, bestDepth = k, d
			}
		}
		j.setPool(best)
		// Count the dispatch before the send: if the worker dequeues and
		// completes the job first, a depth read between send and a late
		// Add would go negative and herd concurrent submitters here.
		s.dispatched[best].Add(1)
		select {
		case s.queues[best] <- j:
			s.notePeak(best, len(s.queues[best]))
			return best, nil
		default:
			// Lost the race for the last slot; undo and rescan.
			s.dispatched[best].Add(-1)
		}
	}
	return 0, ErrBusy
}

func (s *Scheduler) notePeak(pool, depth int) {
	for {
		cur := s.peak[pool].Load()
		if int64(depth) <= cur || s.peak[pool].CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// PoolStats is one pool's row in /v1/stats.
type PoolStats struct {
	Depth      int   `json:"depth"`
	Peak       int64 `json:"peak"`
	Dispatched int64 `json:"dispatched"`
	Completed  int64 `json:"completed"`
}

// Stats snapshots every pool.
func (s *Scheduler) Stats() []PoolStats {
	out := make([]PoolStats, len(s.queues))
	for i := range s.queues {
		out[i] = PoolStats{
			Depth:      len(s.queues[i]),
			Peak:       s.peak[i].Load(),
			Dispatched: s.dispatched[i].Load(),
			Completed:  s.completed[i].Load(),
		}
	}
	return out
}

// Close stops accepting work and waits for queued jobs to drain. Submit
// must not be called after Close.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		for _, q := range s.queues {
			close(q)
		}
	})
	s.wg.Wait()
}
