package service

import (
	"errors"
	"testing"
	"time"
)

// slowProg spins a counted loop before producing output, making every
// domain tuple expensive enough that a sweep over a few hundred tuples
// stays observably "running" long enough to cancel. The trip count reads
// x2 so the prefix-memoized fast path cannot hoist the loop out of the
// innermost axis — every tuple must pay it.
const slowProg = `
program slow
inputs x1 x2
    r := 100000 + (x2 & 1)
Loop: if r == 0 goto Done else Body
Body: r := r - 1
      goto Loop
Done: y := x2
      halt
`

// slowRequest sweeps slowProg over a 256-tuple grid: several hundred
// milliseconds of work on one sweep worker, cancellable at every chunk.
func slowRequest() CheckRequest {
	return CheckRequest{
		Program: slowProg,
		Policy:  "{2}",
		Raw:     true,
		Domain:  []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
	}
}

// waitState polls a job until it reaches want, failing at the deadline.
func waitState(t *testing.T, j *Job, want State, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for j.stateNow() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", j.ID, j.stateNow(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCancelRunningJobFreesPoolSlot(t *testing.T) {
	s := newTestService(t, Config{Pools: 1, SweepWorkers: 1})
	slow, err := s.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, slow, StateRunning, 10*time.Second)

	// Queue a second job behind the slow one on the single pool; it can
	// only run if cancellation actually frees the slot.
	quick, err := s.Submit(CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Cancel(slow.ID); err != nil {
		t.Fatalf("cancel running job: %v", err)
	}
	st := waitJob(t, slow)
	if st.State != StateCancelled {
		t.Fatalf("cancelled job state = %q, want cancelled", st.State)
	}
	if st.Result != nil {
		t.Error("cancelled job carries a result")
	}
	if st.Progress.Done >= st.Progress.Total {
		t.Errorf("cancelled job swept %d/%d tuples — it ran to completion", st.Progress.Done, st.Progress.Total)
	}

	if qst := waitJob(t, quick); qst.State != StateDone {
		t.Fatalf("job behind the cancelled one ended %q, want done", qst.State)
	}

	jobs := s.Stats().Jobs
	if jobs.Cancelled != 1 || jobs.Done != 1 || jobs.Failed != 0 {
		t.Errorf("job tallies = %+v, want 1 cancelled, 1 done, 0 failed", jobs)
	}
	// Second Cancel on an already-cancelled job is an idempotent success.
	if _, err := s.Cancel(slow.ID); err != nil {
		t.Errorf("re-cancel of cancelled job: %v", err)
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	s := newTestService(t, Config{Pools: 1, SweepWorkers: 1})
	slow, err := s.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, slow, StateRunning, 10*time.Second)
	queued, err := s.Submit(slowRequest())
	if err != nil {
		t.Fatal(err)
	}
	if got := queued.stateNow(); got != StateQueued {
		t.Fatalf("second job on the busy pool is %q, want queued", got)
	}

	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatalf("cancel queued job: %v", err)
	}
	// The transition is immediate: no pool ever picks the job up.
	select {
	case <-queued.Done():
	default:
		t.Fatal("queued job not terminal immediately after cancel")
	}
	if st := queued.Status(); st.State != StateCancelled || st.Progress.Done != 0 {
		t.Fatalf("queued-cancelled job status = %+v, want cancelled with zero progress", st)
	}

	// Unblock the pool and let Close drain: the skipped job must not run.
	if _, err := s.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, slow)
	if got := queued.Progress(); got != 0 {
		t.Errorf("cancelled-while-queued job swept %d tuples", got)
	}
	if jobs := s.Stats().Jobs; jobs.Cancelled != 2 || jobs.Queued != 0 || jobs.Running != 0 {
		t.Errorf("job tallies = %+v, want 2 cancelled and no occupancy", jobs)
	}
}

func TestCancelErrors(t *testing.T) {
	s := newTestService(t, Config{Pools: 1})
	if _, err := s.Cancel("job-404"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel unknown: err = %v, want ErrUnknownJob", err)
	}
	j, err := s.Submit(CheckRequest{Program: testProg, Policy: "{2}", Domain: []int64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if _, err := s.Cancel(j.ID); !errors.Is(err, ErrJobTerminal) {
		t.Errorf("cancel finished: err = %v, want ErrJobTerminal", err)
	}
}

// TestLoadgenDeadlineCancelsServerSide drives the closed loop against a
// server whose jobs cannot meet the per-job deadline and asserts the
// deadline path cancels them server-side: the report counts them as
// cancelled (not failed) and the service's tallies agree.
func TestLoadgenDeadlineCancelsServerSide(t *testing.T) {
	svc, srv := newTestServer(t, Config{Pools: 1, SweepWorkers: 1})
	rep, err := Loadgen(LoadgenConfig{
		BaseURL:     srv.URL,
		Jobs:        3,
		Concurrency: 1,
		Request:     slowRequest(),
		JobTimeout:  50 * time.Millisecond,
		Client:      srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cancelled == 0 {
		t.Fatalf("report = %+v: no jobs cancelled at a 50ms deadline", rep)
	}
	if rep.Failed != 0 {
		t.Errorf("report counts %d deadline jobs as failed; cancellations are not failures", rep.Failed)
	}
	// The cancels must have reached the server, not just abandoned the
	// client-side wait. Cancellation is async for running jobs; give the
	// sweep a moment to observe it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		jobs := svc.Stats().Jobs
		if jobs.Cancelled >= int64(rep.Cancelled) && jobs.Running == 0 && jobs.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server tallies %+v never caught up to %d client cancels", jobs, rep.Cancelled)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
