package static

import (
	"strings"
	"testing"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
)

// progEx9 is the paper's Example 9: branch on the allowed x1, one arm
// clean, the other reading the disallowed x2.
const progEx9 = `
program ex9
inputs x1 x2
    if x1 == 0 goto A else B
A:  y := 1
    goto J
B:  y := x2
    goto J
J:  halt
`

func dom2() core.Domain { return core.Grid(2, 0, 1, 2) }

func TestCertifyStraightLine(t *testing.T) {
	q := flowchart.MustParse(`
inputs x1 x2
    y := x2 + 1
    halt
`)
	rep, err := Certify(q, lattice.NewIndexSet(2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("clean program rejected: %s", rep)
	}
	if rep.OutputClasses != lattice.NewIndexSet(2) {
		t.Errorf("output classes = %v, want {2}", rep.OutputClasses)
	}
	if !strings.Contains(rep.String(), "certified") {
		t.Errorf("report: %s", rep)
	}
}

func TestCertifyDirectFlowRejected(t *testing.T) {
	q := flowchart.MustParse("inputs x1 x2\n y := x1\n halt\n")
	rep, err := Certify(q, lattice.NewIndexSet(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Error("direct disallowed flow certified")
	}
	if len(rep.Violations) != 1 || !rep.Violations[0].Excess.Contains(1) {
		t.Errorf("violations = %+v", rep.Violations)
	}
	if !strings.Contains(rep.String(), "NOT certifiable") {
		t.Errorf("report: %s", rep)
	}
}

func TestCertifyImplicitFlowRejected(t *testing.T) {
	// One-armed if: y is assigned only when x1 == 1. The all-paths
	// analysis must taint y with {1} — this is the negative-inference
	// case a run-time monitor cannot reject on the silent path.
	q := flowchart.MustParse(`
inputs x1
    if x1 == 1 goto A else B
A:  y := 1
    goto B2
B:  goto B2
B2: halt
`)
	rep, err := Certify(q, lattice.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Error("implicit flow through one-armed if certified for allow()")
	}
}

func TestCertifyHaltInRegionRejected(t *testing.T) {
	// Halting position itself depends on the disallowed test: the halts
	// are inside the decision's region, so the pc classes flag them even
	// though y is never assigned.
	q := flowchart.MustParse(`
inputs x1
    if x1 == 0 goto A else B
A:  y := 1
    halt
B:  y := 2
    halt
`)
	rep, err := Certify(q, lattice.EmptySet)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Error("pc-dependent halt certified for allow()")
	}
}

func TestCertifyLoopConverges(t *testing.T) {
	q := flowchart.MustParse(`
inputs x1 x2
    r := x1
Loop: if r > 0 goto Body else Done
Body: r := r - 1
      s := s + x2
      goto Loop
Done: y := s
      halt
`)
	// y accumulates x2 under a loop tested on x1-derived data: classes
	// {1,2}.
	rep, err := Certify(q, lattice.AllInputs(2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("allow(1,2) should certify: %s", rep)
	}
	if rep.OutputClasses != lattice.NewIndexSet(1, 2) {
		t.Errorf("output classes = %v, want {1,2}", rep.OutputClasses)
	}
	rep, err = Certify(q, lattice.NewIndexSet(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Error("loop-carried implicit flow certified for allow(2)")
	}
}

func TestCertifyForgettingIsStatic(t *testing.T) {
	// Static analysis, unlike high-water, does track strong updates along
	// straight lines: r := x1; r := 0 leaves r clean.
	q := flowchart.MustParse(`
inputs x1 x2
    r := x1
    r := 0
    y := r + x2
    halt
`)
	rep, err := Certify(q, lattice.NewIndexSet(2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("overwritten class should be forgotten: %s", rep)
	}
}

func TestStaticMechanismZeroOverhead(t *testing.T) {
	q := flowchart.MustParse("inputs x1 x2\n y := x2\n halt\n")
	m, rep, err := Mechanism(q, lattice.NewIndexSet(2))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("expected certification: %s", rep)
	}
	// The mechanism runs the program unchanged: identical steps.
	qr, _ := q.Run([]int64{5, 9})
	mo, err := m.Run([]int64{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if mo.Value != 9 || mo.Steps != qr.Steps {
		t.Errorf("certified mechanism altered behaviour: %v vs %v", mo, qr)
	}
	// Rejected program becomes the null mechanism.
	q2 := flowchart.MustParse("inputs x1 x2\n y := x1\n halt\n")
	m2, rep2, err := Mechanism(q2, lattice.NewIndexSet(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK {
		t.Fatal("expected rejection")
	}
	o, err := m2.Run([]int64{5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Violation {
		t.Errorf("null mechanism should violate: %v", o)
	}
}

func TestExample9Specialization(t *testing.T) {
	q := flowchart.MustParse(progEx9)
	allow1 := lattice.NewIndexSet(1)

	// Whole-program certification fails...
	rep, err := Certify(q, allow1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("Example 9 program should not certify whole")
	}

	// ...but specialisation produces the paper's mechanism: violation
	// only in case x1 ≠ 0.
	gm, err := Specialize(q, allow1, -1)
	if err != nil {
		t.Fatal(err)
	}
	accept, deny := gm.Leaves()
	if accept != 1 || deny != 1 {
		t.Errorf("leaves = %d accept / %d deny, want 1/1\n%s", accept, deny, gm.Describe())
	}
	err = dom2().Enumerate(func(in []int64) error {
		o, err := gm.Run(in)
		if err != nil {
			return err
		}
		if in[0] == 0 {
			if o.Violation || o.Value != 1 {
				t.Errorf("specialized%v = %v, want 1", in, o)
			}
		} else if !o.Violation {
			t.Errorf("specialized%v = %v, want Λ", in, o)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sound for allow(1), and strictly more complete than the
	// all-or-nothing static mechanism (which is null here).
	pol := core.NewAllowSet(2, allow1)
	sr, err := core.CheckSoundness(gm, pol, dom2(), core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Sound {
		t.Errorf("specialized mechanism unsound: %s", sr)
	}
	whole, _, err := Mechanism(q, allow1)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := core.Compare(gm, whole, dom2())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Relation != core.MoreComplete {
		t.Errorf("specialized vs whole: %s, want more complete", cmp)
	}
	if !strings.Contains(gm.Describe(), "if x1 == 0") {
		t.Errorf("Describe:\n%s", gm.Describe())
	}
}

func TestSpecializeCertifiedProgramIsSingleLeaf(t *testing.T) {
	q := flowchart.MustParse("inputs x1 x2\n y := x2\n halt\n")
	gm, err := Specialize(q, lattice.NewIndexSet(2), -1)
	if err != nil {
		t.Fatal(err)
	}
	accept, deny := gm.Leaves()
	if accept != 1 || deny != 0 {
		t.Errorf("leaves = %d/%d", accept, deny)
	}
	o, err := gm.Run([]int64{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	if o.Violation || o.Value != 8 {
		t.Errorf("Run = %v", o)
	}
}

func TestSpecializeNoGateableDecision(t *testing.T) {
	// The only decision tests a *disallowed* input, so specialisation
	// cannot split and must deny everything.
	q := flowchart.MustParse(`
inputs x1 x2
    if x2 == 0 goto A else B
A:  y := x2
    goto J
B:  y := 0
    goto J
J:  halt
`)
	gm, err := Specialize(q, lattice.NewIndexSet(1), -1)
	if err != nil {
		t.Fatal(err)
	}
	accept, deny := gm.Leaves()
	if accept != 0 || deny != 1 {
		t.Errorf("leaves = %d/%d, want 0/1", accept, deny)
	}
	// Still sound (it is null).
	sr, err := core.CheckSoundness(gm, core.NewAllow(2, 1), dom2(), core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Sound {
		t.Errorf("%s", sr)
	}
}

func TestSpecializeDepthZero(t *testing.T) {
	q := flowchart.MustParse(progEx9)
	gm, err := Specialize(q, lattice.NewIndexSet(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	accept, deny := gm.Leaves()
	if accept != 0 || deny != 1 {
		t.Errorf("depth-0 leaves = %d/%d, want 0/1", accept, deny)
	}
}

func TestSpecializeNestedDecisions(t *testing.T) {
	// Two allowed tests gate three residuals; only the doubly-guarded
	// clean one accepts plus one more.
	q := flowchart.MustParse(`
program nested
inputs x1 x2 x3
    if x1 == 0 goto L else R
L:  if x2 == 0 goto LL else LR
LL: y := 1
    halt
LR: y := x3
    halt
R:  y := x3 + 1
    halt
`)
	allowed := lattice.NewIndexSet(1, 2)
	gm, err := Specialize(q, allowed, -1)
	if err != nil {
		t.Fatal(err)
	}
	dom := core.Grid(3, 0, 1)
	pol := core.NewAllowSet(3, allowed)
	sr, err := core.CheckSoundness(gm, pol, dom, core.ObserveValue)
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Sound {
		t.Errorf("nested specialization unsound: %s", sr)
	}
	// Exactly the x1==0 && x2==0 inputs pass.
	err = dom.Enumerate(func(in []int64) error {
		o, err := gm.Run(in)
		if err != nil {
			return err
		}
		wantPass := in[0] == 0 && in[1] == 0
		if wantPass != !o.Violation {
			t.Errorf("nested%v = %v", in, o)
		}
		if wantPass && o.Value != 1 {
			t.Errorf("nested%v value = %d", in, o.Value)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCertifyErrors(t *testing.T) {
	q := flowchart.MustParse("inputs x\n y := x\n halt\n")
	if _, err := Certify(q, lattice.NewIndexSet(3)); err == nil {
		t.Error("allow(3) on arity-1 accepted")
	}
	bad := &flowchart.Program{Name: "bad"}
	if _, err := Certify(bad, lattice.EmptySet); err == nil {
		t.Error("invalid program accepted")
	}
	if _, err := Specialize(bad, lattice.EmptySet, -1); err == nil {
		t.Error("Specialize of invalid program accepted")
	}
}

func TestGuardedArityChecked(t *testing.T) {
	q := flowchart.MustParse(progEx9)
	gm, err := Specialize(q, lattice.NewIndexSet(1), -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gm.Run([]int64{1}); err == nil {
		t.Error("arity mismatch accepted")
	}
}
