// Package static implements the compile-time enforcement of Section 5 of
// Jones & Lipton: static information-flow certification in the style of
// Denning & Denning (the paper's reference [3], sketched by Moore [8]),
// plus the duplication/specialisation transform of Example 9 that makes
// compile-time mechanisms more complete.
//
// Certification runs a fixpoint taint analysis over the flowchart: each
// variable's security class (a set of input indices) is propagated through
// assignments, joined at control-flow merges, and — crucially — every
// assignment and halt inside the region of a decision (the nodes between
// the decision and its immediate postdominator) absorbs the decision
// predicate's classes. This captures flow "through the program counter",
// avoiding the negative-inference leaks of Section 2, because it is an
// all-paths analysis: unlike a run-time monitor, it taints a variable even
// on executions that skip the assignment.
//
// A certified program runs with zero enforcement overhead: the mechanism
// is the program itself. An uncertified program is replaced outright by
// the null mechanism — unless specialisation (Example 9) can split it on
// decisions over allowed inputs and certify some residuals.
package static

import (
	"fmt"
	"sort"
	"strings"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/transform"
)

// Report is the result of certification.
type Report struct {
	Program string
	Allowed lattice.IndexSet
	// OK means every normal halt releases only allowed classes.
	OK bool
	// OutputClasses is the join of the output variable's classes (plus
	// program-counter classes) over all normal halt boxes.
	OutputClasses lattice.IndexSet
	// VarClasses is the final class of every variable, joined over halts.
	VarClasses map[string]lattice.IndexSet
	// Violations lists, per offending halt node, the disallowed classes.
	Violations []Violation
}

// Violation identifies a halt whose release would carry disallowed
// classes.
type Violation struct {
	Halt    flowchart.NodeID
	Classes lattice.IndexSet // the full class set at the halt
	Excess  lattice.IndexSet // Classes \ J
}

// String summarises the report.
func (r Report) String() string {
	if r.OK {
		return fmt.Sprintf("program %q certified for allow%v: output classes %v",
			r.Program, r.Allowed, r.OutputClasses)
	}
	parts := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		parts[i] = fmt.Sprintf("halt@%d carries %v (disallowed %v)", v.Halt, v.Classes, v.Excess)
	}
	return fmt.Sprintf("program %q NOT certifiable for allow%v: %s",
		r.Program, r.Allowed, strings.Join(parts, "; "))
}

// Certify runs the static information-flow analysis of q against
// allow(J).
func Certify(q *flowchart.Program, allowed lattice.IndexSet) (Report, error) {
	rep := Report{Program: q.Name, Allowed: allowed, VarClasses: make(map[string]lattice.IndexSet)}
	g, err := transform.Analyze(q)
	if err != nil {
		return rep, err
	}
	k := q.Arity()
	if k > lattice.MaxIndex {
		return rep, fmt.Errorf("static: arity %d exceeds %d", k, lattice.MaxIndex)
	}
	if !allowed.SubsetOf(lattice.AllInputs(k)) {
		return rep, fmt.Errorf("static: allow%v names inputs beyond arity %d", allowed, k)
	}

	// memberOf[n] = decisions whose region contains n.
	memberOf := make([][]flowchart.NodeID, len(q.Nodes))
	for _, d := range g.Decisions() {
		region, err := g.Region(d)
		if err != nil {
			return rep, err
		}
		for _, n := range region {
			memberOf[n] = append(memberOf[n], d)
		}
	}

	// in[n]: variable classes on entry to n.
	in := make([]map[string]lattice.IndexSet, len(q.Nodes))
	for i := range in {
		in[i] = make(map[string]lattice.IndexSet)
	}
	for i, name := range q.Inputs {
		in[q.Start][name] = lattice.NewIndexSet(i + 1)
	}

	exprClasses := func(env map[string]lattice.IndexSet, node interface{ AddVars(map[string]bool) }) lattice.IndexSet {
		cls := lattice.EmptySet
		for _, v := range flowchart.Vars(node) {
			cls = cls.Union(env[v])
		}
		return cls
	}
	pcClasses := func(n flowchart.NodeID) lattice.IndexSet {
		cls := lattice.EmptySet
		for _, d := range memberOf[n] {
			cls = cls.Union(exprClasses(in[d], q.Nodes[d].Cond))
		}
		return cls
	}

	// joinInto merges src into in[dst]; reports change.
	joinInto := func(dst flowchart.NodeID, src map[string]lattice.IndexSet) bool {
		changed := false
		tgt := in[dst]
		for v, c := range src {
			if merged := tgt[v].Union(c); merged != tgt[v] {
				tgt[v] = merged
				changed = true
			}
		}
		return changed
	}

	// Worklist fixpoint. When a decision's in-state changes, its whole
	// region is re-queued because the region's pc classes changed.
	work := []flowchart.NodeID{q.Start}
	queued := make([]bool, len(q.Nodes))
	queued[q.Start] = true
	push := func(id flowchart.NodeID) {
		if !queued[id] {
			queued[id] = true
			work = append(work, id)
		}
	}
	// succEdges honours constant predicates: a decision on the constant
	// true/false has a single live successor. Specialisation relies on
	// this to prune pinned branches.
	succEdges := func(n *flowchart.Node) []flowchart.NodeID {
		if n.Kind == flowchart.KindDecision {
			if bc, ok := n.Cond.(flowchart.BoolConst); ok {
				if bool(bc) {
					return []flowchart.NodeID{n.True}
				}
				return []flowchart.NodeID{n.False}
			}
		}
		return n.Succs()
	}
	for iter := 0; len(work) > 0; iter++ {
		if iter > 1_000_000 {
			return rep, fmt.Errorf("static: fixpoint did not converge (program %q)", q.Name)
		}
		id := work[len(work)-1]
		work = work[:len(work)-1]
		queued[id] = false
		n := &q.Nodes[id]
		// Compute out-state.
		var out map[string]lattice.IndexSet
		switch n.Kind {
		case flowchart.KindAssign:
			out = make(map[string]lattice.IndexSet, len(in[id])+1)
			for v, c := range in[id] {
				out[v] = c
			}
			out[n.Target] = exprClasses(in[id], n.Expr).Union(pcClasses(id))
		default:
			out = in[id]
		}
		for _, s := range succEdges(n) {
			if joinInto(s, out) {
				push(s)
				if q.Nodes[s].Kind == flowchart.KindDecision {
					region, err := g.Region(s)
					if err != nil {
						return rep, err
					}
					for _, m := range region {
						push(m)
					}
				}
			}
		}
	}

	// Collect per-halt output classes.
	outVar := q.OutputVar()
	for i := range q.Nodes {
		n := &q.Nodes[i]
		if n.Kind != flowchart.KindHalt || n.Violation || !g.Reachable[i] {
			continue
		}
		id := flowchart.NodeID(i)
		cls := in[id][outVar].Union(pcClasses(id))
		rep.OutputClasses = rep.OutputClasses.Union(cls)
		for v, c := range in[id] {
			rep.VarClasses[v] = rep.VarClasses[v].Union(c)
		}
		if !cls.SubsetOf(allowed) {
			rep.Violations = append(rep.Violations, Violation{
				Halt:    id,
				Classes: cls,
				Excess:  cls.Minus(allowed),
			})
		}
	}
	sort.Slice(rep.Violations, func(a, b int) bool { return rep.Violations[a].Halt < rep.Violations[b].Halt })
	rep.OK = len(rep.Violations) == 0
	return rep, nil
}

// Mechanism returns the compile-time protection mechanism for q and
// allow(J): the program itself when certification succeeds (zero run-time
// overhead), or the null mechanism when it fails. This is the
// all-or-nothing compile-time enforcement of Section 5; see Specialize for
// the more complete variant.
func Mechanism(q *flowchart.Program, allowed lattice.IndexSet) (core.Mechanism, Report, error) {
	rep, err := Certify(q, allowed)
	if err != nil {
		return nil, rep, err
	}
	if rep.OK {
		return core.FromProgram(q), rep, nil
	}
	return core.NewNull(q.Arity()), rep, nil
}
