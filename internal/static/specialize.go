package static

import (
	"fmt"
	"strings"

	"spm/internal/core"
	"spm/internal/flowchart"
	"spm/internal/lattice"
	"spm/internal/transform"
)

// Guarded is the specialised compile-time mechanism of Example 9: a
// decision tree over predicates of *allowed input variables*, whose leaves
// are either a certified residual program (run unmodified) or an immediate
// violation notice. It generalises the paper's "if x1 ≠ 0 then Λ else run"
// mechanism.
type Guarded struct {
	MechName string
	K        int
	Root     *guardNode
	MaxSteps int64
}

type guardNode struct {
	// Leaf cases: exactly one of prog / deny is set.
	prog *flowchart.Program
	deny bool
	// Interior case: evaluate pred on the inputs and descend.
	pred        flowchart.Pred
	yes, no     *guardNode
	inputsByVar map[string]int // input name -> 0-based position
}

// Name implements core.Mechanism.
func (gm *Guarded) Name() string { return gm.MechName }

// Arity implements core.Mechanism.
func (gm *Guarded) Arity() int { return gm.K }

// Run implements core.Mechanism.
func (gm *Guarded) Run(input []int64) (core.Outcome, error) {
	if len(input) != gm.K {
		return core.Outcome{}, fmt.Errorf("static: mechanism %q: got %d inputs, want %d", gm.MechName, len(input), gm.K)
	}
	node := gm.Root
	var guardSteps int64
	for node.pred != nil {
		env := make(flowchart.Env, len(node.inputsByVar))
		for name, pos := range node.inputsByVar {
			env[name] = input[pos]
		}
		guardSteps++
		if node.pred.Eval(env) {
			node = node.yes
		} else {
			node = node.no
		}
	}
	if node.deny {
		return core.Outcome{Violation: true, Notice: "statically rejected residual", Steps: guardSteps}, nil
	}
	res, err := node.prog.RunBudget(input, gm.MaxSteps, nil)
	if err != nil {
		return core.Outcome{}, err
	}
	return core.Outcome{Value: res.Value, Steps: guardSteps + res.Steps, Violation: res.Violation, Notice: res.Notice}, nil
}

// Leaves returns (accepting, denying) leaf counts, for reports.
func (gm *Guarded) Leaves() (accept, deny int) {
	var walk func(n *guardNode)
	walk = func(n *guardNode) {
		if n.pred != nil {
			walk(n.yes)
			walk(n.no)
			return
		}
		if n.deny {
			deny++
		} else {
			accept++
		}
	}
	walk(gm.Root)
	return accept, deny
}

// Describe renders the decision tree, e.g. "if x1 == 0 then run else Λ".
func (gm *Guarded) Describe() string {
	var b strings.Builder
	var walk func(n *guardNode, indent string)
	walk = func(n *guardNode, indent string) {
		if n.pred == nil {
			if n.deny {
				b.WriteString(indent + "Λ\n")
			} else {
				b.WriteString(indent + "run " + n.prog.Name + "\n")
			}
			return
		}
		b.WriteString(indent + "if " + n.pred.String() + ":\n")
		walk(n.yes, indent+"  ")
		b.WriteString(indent + "else:\n")
		walk(n.no, indent+"  ")
	}
	walk(gm.Root, "")
	return b.String()
}

// DefaultSpecializeDepth bounds the specialisation recursion.
const DefaultSpecializeDepth = 8

// Specialize builds the duplication-transform mechanism of Example 9 for q
// and allow(J). It certifies q; on failure it looks for a reachable
// decision whose predicate mentions only *allowed input variables* (so the
// gatekeeper can evaluate it before running anything), pins the decision
// both ways, and recurses on the residual programs up to maxDepth splits.
// Residuals that certify run unmodified; the rest become violation
// notices.
//
// The result is always sound for allow(J): the guards test only allowed
// inputs, each accepted residual is certified, and each residual is
// functionally equal to q on the inputs routed to it.
func Specialize(q *flowchart.Program, allowed lattice.IndexSet, maxDepth int) (*Guarded, error) {
	if maxDepth < 0 {
		maxDepth = DefaultSpecializeDepth
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	inputsByVar := make(map[string]int, q.Arity())
	for i, name := range q.Inputs {
		inputsByVar[name] = i
	}
	root, err := specialize(q, allowed, maxDepth, inputsByVar)
	if err != nil {
		return nil, err
	}
	return &Guarded{
		MechName: fmt.Sprintf("%s_specialized", q.Name),
		K:        q.Arity(),
		Root:     root,
		MaxSteps: flowchart.DefaultMaxSteps,
	}, nil
}

func specialize(q *flowchart.Program, allowed lattice.IndexSet, depth int, inputsByVar map[string]int) (*guardNode, error) {
	rep, err := Certify(q, allowed)
	if err != nil {
		return nil, err
	}
	if rep.OK {
		return &guardNode{prog: q}, nil
	}
	if depth == 0 {
		return &guardNode{deny: true}, nil
	}
	d := findGateableDecision(q, allowed, inputsByVar)
	if d == flowchart.NoNode {
		return &guardNode{deny: true}, nil
	}
	cond := q.Nodes[d].Cond
	yesProg, err := pin(q, d, true)
	if err != nil {
		return nil, err
	}
	noProg, err := pin(q, d, false)
	if err != nil {
		return nil, err
	}
	yes, err := specialize(yesProg, allowed, depth-1, inputsByVar)
	if err != nil {
		return nil, err
	}
	no, err := specialize(noProg, allowed, depth-1, inputsByVar)
	if err != nil {
		return nil, err
	}
	return &guardNode{pred: cond, yes: yes, no: no, inputsByVar: inputsByVar}, nil
}

// findGateableDecision returns a reachable decision whose predicate reads
// only allowed input variables (and is not already constant), or NoNode.
func findGateableDecision(q *flowchart.Program, allowed lattice.IndexSet, inputsByVar map[string]int) flowchart.NodeID {
	g, err := transform.Analyze(q)
	if err != nil {
		return flowchart.NoNode
	}
	for _, d := range g.Decisions() {
		cond := q.Nodes[d].Cond
		if _, isConst := cond.(flowchart.BoolConst); isConst {
			continue
		}
		ok := true
		for _, v := range flowchart.Vars(cond) {
			pos, isInput := inputsByVar[v]
			if !isInput || !allowed.Contains(pos+1) {
				ok = false
				break
			}
		}
		if ok {
			return d
		}
	}
	return flowchart.NoNode
}

// pin returns a clone of q in which decision d is replaced by a direct
// edge to the chosen arm (a no-op assignment to a fresh dead variable, so
// incoming edges stay valid and the untaken subtree becomes unreachable).
func pin(q *flowchart.Program, d flowchart.NodeID, branch bool) (*flowchart.Program, error) {
	c := q.Clone()
	n := &c.Nodes[d]
	if n.Kind != flowchart.KindDecision {
		return nil, fmt.Errorf("static: pin target %d is %s", d, n.Kind)
	}
	target := n.False
	if branch {
		target = n.True
	}
	dead := freshPinVar(c)
	*n = flowchart.Node{
		Kind:   flowchart.KindAssign,
		Target: dead,
		Expr:   flowchart.C(0),
		Next:   target,
		Label:  n.Label,
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func freshPinVar(p *flowchart.Program) string {
	used := make(map[string]bool)
	for _, v := range p.Variables() {
		used[v] = true
	}
	for i := 0; ; i++ {
		cand := fmt.Sprintf("pin_%d", i)
		if !used[cand] {
			return cand
		}
	}
}
